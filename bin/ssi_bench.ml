(* Command-line front-end for the reproduction:

   - [list]         enumerate the experiments (paper figures + ablations)
   - [run IDS..]    run experiments and print their tables
   - [sdg NAME]     static dependency graph analysis (§2.6/§2.8)
   - [interleave]   exhaustive interleaving sweeps (§4.7)
   - [explore]      DPOR schedule exploration (same coverage, far fewer runs)
   - [fuzz]         differential history fuzzing with the MVSG oracle

   Examples:
     ssi_bench run fig6.1 fig6.8 --seeds 3 --duration 1.0
     ssi_bench sdg smallbank
     ssi_bench interleave --spec write-skew --isolation si
     ssi_bench explore --spec write-skew-4 --isolation ssi --stats -j 4
     ssi_bench fuzz --cases 10000 --seed 1 --matrix full --shrink-anomalies
     ssi_bench fuzz --replay fuzz-001.repro *)

open Cmdliner

let list_cmd =
  let run () =
    print_endline "Available experiments (see DESIGN.md for the per-figure index):";
    List.iter
      (fun (id, title) -> Printf.printf "  %-18s %s\n" id title)
      Experiments.titles
  in
  Cmd.v (Cmd.info "list" ~doc:"List available experiments") Term.(const run $ const ())

let ids_arg =
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc:"Experiment ids (see list)")

let quick_arg = Arg.(value & flag & info [ "quick" ] ~doc:"Fast smoke budget")

(* Shared [-j N]: run independent jobs (experiment points, per-seed runs,
   fuzz shards) on a domain pool. The output contract is that results are
   byte-identical for every N; the dune rules in bin/dune diff -j 1 against
   -j N runs to enforce it. *)
let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Run independent jobs on $(docv) domains (output is identical for any $(docv))")

let with_jobs j f =
  if j <= 1 then f None else Par.with_pool ~j (fun p -> f (Some p))

let read_file f =
  let ic = open_in_bin f in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file f s =
  let oc = open_out_bin f in
  output_string oc s;
  close_out oc

(* Shared by [bench] and [report]. *)
let isolation_of_string = function
  | "si" -> Some Core.Types.Snapshot
  | "ssi" -> Some Core.Types.Serializable
  | "s2pl" -> Some Core.Types.S2pl
  | "rc" -> Some Core.Types.Read_committed
  | _ -> None

let workload_of_string ?(tweak = fun c -> c) = function
  | "smallbank" ->
      Some
        ( (fun sim ->
            let db = Core.Db.create ~config:(tweak (Core.Config.bdb ())) sim in
            Smallbank.setup db ~customers:20_000 ();
            db),
          Smallbank.mix ~customers:20_000 () )
  | "sibench" ->
      Some
        ( (fun sim ->
            let db = Core.Db.create ~config:(tweak (Core.Config.innodb ())) sim in
            Sibench.setup db ~items:100 ();
            db),
          Sibench.mix ~items:100 () )
  | _ -> None

let seeds_arg =
  Arg.(value & opt int 2 & info [ "seeds" ] ~doc:"Number of random seeds per point")

let duration_arg =
  Arg.(value & opt float 0.5 & info [ "duration" ] ~doc:"Measured simulated seconds per run")

let mpl_arg =
  Arg.(
    value
    & opt (list int) [ 1; 2; 5; 10; 20 ]
    & info [ "mpl" ] ~doc:"Comma-separated multiprogramming levels")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Collect and print engine metrics (conflict-edge sources, lock waits, high-water marks)")

let run_cmd =
  let run ids quick seeds duration mpls metrics jobs =
    let budget =
      if quick then { Experiments.quick_budget with Experiments.with_metrics = metrics }
      else
        {
          Experiments.seeds = List.init seeds (fun i -> i + 1);
          duration;
          warmup = duration /. 4.0;
          mpls;
          with_metrics = metrics;
        }
    in
    let ids = if ids = [] then List.map fst Experiments.all_figures else ids in
    with_jobs jobs (fun pool -> Experiments.run_many ?pool ~budget Fmt.stdout ids)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run experiments and print throughput/abort tables")
    Term.(
      const run $ ids_arg $ quick_arg $ seeds_arg $ duration_arg $ mpl_arg $ metrics_arg
      $ jobs_arg)

(* One measured benchmark run, with optional Chrome-trace capture. The
   stdout report is byte-identical with or without --trace: tracing records
   events out-of-band and never perturbs the simulation. *)
let bench_cmd =
  let workload_arg =
    Arg.(
      value
      & opt string "smallbank"
      & info [ "workload" ] ~docv:"NAME" ~doc:"Workload: smallbank | sibench")
  in
  let mpl_arg =
    Arg.(value & opt int 10 & info [ "mpl" ] ~doc:"Number of concurrent clients")
  in
  let duration_arg =
    Arg.(value & opt float 0.5 & info [ "duration" ] ~doc:"Measured simulated seconds")
  in
  let warmup_arg =
    Arg.(value & opt float 0.1 & info [ "warmup" ] ~doc:"Warmup simulated seconds")
  in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed") in
  let iso_arg =
    Arg.(value & opt string "ssi" & info [ "isolation" ] ~doc:"si | ssi | s2pl | rc")
  in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Write a Chrome-trace JSON array (chrome://tracing, ui.perfetto.dev) to $(docv)")
  in
  let bench_seeds_arg =
    Arg.(
      value & opt int 1
      & info [ "seeds" ] ~docv:"N"
          ~doc:
            "Aggregate over $(docv) seeds (base seed, base+1, ...) instead of one detailed run; \
             pairs with -j to run the seeds in parallel")
  in
  let memb_arg =
    Arg.(
      value & opt int 0
      & info [ "memory-budget" ] ~docv:"N"
          ~doc:
            "Bound SIREAD/retained-transaction memory to $(docv) entries (0 = unbounded): \
             row SIREADs promote to page granularity and old committed transactions are \
             folded into a conservative summary under pressure")
  in
  let run workload mpl duration warmup seed iso trace metrics nseeds mem_budget jobs =
    let isolation =
      match isolation_of_string iso with
      | Some i -> i
      | None ->
          prerr_endline ("unknown isolation: " ^ iso);
          exit 1
    in
    let tweak c =
      if mem_budget > 0 then { c with Core.Config.memory_budget = Some mem_budget } else c
    in
    let make_db, mix =
      match workload_of_string ~tweak workload with
      | Some w -> w
      | None ->
          prerr_endline ("unknown workload: " ^ workload);
          exit 1
    in
    let cfg =
      { Driver.default_config with Driver.isolation; mpl; warmup; duration; seed }
    in
    let pp_memory m =
      Printf.printf "  memory budget:    %d entries\n" mem_budget;
      Printf.printf "    siread-live hwm:  %d\n" m.Obs.m_siread_live_hwm;
      Printf.printf "    retained hwm:     %d (siread=%d plain=%d)\n" m.Obs.m_retained_hwm
        m.Obs.m_retained_siread_hwm m.Obs.m_retained_record_hwm;
      Printf.printf "    promotions:       %d\n" m.Obs.m_promotions;
      Printf.printf "    summarized txns:  %d\n" m.Obs.m_summarized;
      Printf.printf "    summary hwm:      %d\n" m.Obs.m_summary_hwm;
      Printf.printf "    pressure events:  %d\n" m.Obs.m_budget_pressure
    in
    if nseeds > 1 then begin
      (* Aggregate mode: several independent seeds, optionally in parallel.
         Per-run traces would interleave, so --trace is single-run only. *)
      if trace <> None then begin
        prerr_endline "--trace requires --seeds 1 (a trace captures one run)";
        exit 1
      end;
      let seeds = List.init nseeds (fun i -> seed + i) in
      let s =
        with_jobs jobs (fun pool ->
            Driver.run_seeds ?pool
              ~with_metrics:(metrics || mem_budget > 0)
              ~make_db ~mix ~seeds cfg)
      in
      Printf.printf "workload=%s isolation=%s mpl=%d seeds=%d..%d window=%.2fs\n" workload iso
        mpl seed (seed + nseeds - 1) duration;
      Printf.printf "  throughput:       %.1f +/- %.1f tps (95%% ci)\n" s.Driver.s_throughput
        s.Driver.s_ci;
      Printf.printf "  deadlocks/commit: %.4f\n" s.Driver.s_deadlock_rate;
      Printf.printf "  conflicts/commit: %.4f\n" s.Driver.s_conflict_rate;
      Printf.printf "  unsafe/commit:    %.4f\n" s.Driver.s_unsafe_rate;
      Printf.printf "  user aborts:      %.4f /commit\n" s.Driver.s_user_abort_rate;
      Printf.printf "  mean response:    %.6fs\n" s.Driver.s_mean_response;
      Printf.printf "  lock table:       %.1f entries at close\n" s.Driver.s_lock_table;
      (match s.Driver.s_metrics with
      | Some m when mem_budget > 0 -> pp_memory m
      | _ -> ());
      match s.Driver.s_metrics with
      | Some m when metrics -> Fmt.pr "%a@." Obs.pp_metrics m
      | _ -> ()
    end
    else begin
    let obs =
      if trace <> None || metrics || mem_budget > 0 then
        Some (Obs.create ~trace:(trace <> None) ())
      else None
    in
    let r = Driver.run_once ?obs ~make_db ~mix cfg in
    Printf.printf "workload=%s isolation=%s mpl=%d seed=%d window=%.2fs\n" workload iso mpl
      seed duration;
    Printf.printf "  commits:          %d (%.0f tps)\n" r.Driver.commits r.Driver.throughput;
    Printf.printf "  user aborts:      %d\n" r.Driver.user_aborts;
    Printf.printf "  deadlocks:        %d\n" r.Driver.deadlocks;
    Printf.printf "  fcw conflicts:    %d\n" r.Driver.conflicts;
    Printf.printf "  unsafe aborts:    %d\n" r.Driver.unsafe;
    Printf.printf "  other aborts:     %d\n" r.Driver.other_aborts;
    Printf.printf "  mean response:    %.6fs\n" r.Driver.mean_response;
    Printf.printf "  aborts/commit:    %.4f\n" r.Driver.aborts_per_commit;
    if mem_budget > 0 then pp_memory r.Driver.metrics;
    List.iter
      (fun ps ->
        Printf.printf "  program %-10s commits=%d user_aborts=%d aborts=%d p50=%.2gs p99=%.2gs\n"
          ps.Driver.ps_name ps.Driver.ps_commits ps.Driver.ps_user_aborts ps.Driver.ps_aborts
          (Obs.hist_percentile ps.Driver.ps_latency 0.50)
          (Obs.hist_percentile ps.Driver.ps_latency 0.99))
      r.Driver.programs;
    if metrics then Fmt.pr "%a@." Obs.pp_metrics r.Driver.metrics;
    (match (trace, obs) with
    | Some file, Some o ->
        Obs.write_trace_file file o;
        (* stderr, so stdout stays identical with and without --trace *)
        Printf.eprintf "trace: %d events written to %s\n%!" (Obs.event_count o) file
    | _ -> ())
    end
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:"One measured benchmark run; optionally capture a Chrome trace and engine metrics")
    Term.(
      const run $ workload_arg $ mpl_arg $ duration_arg $ warmup_arg $ seed_arg $ iso_arg
      $ trace_arg $ metrics_arg $ bench_seeds_arg $ memb_arg $ jobs_arg)

(* Windowed sim-time telemetry: run a workload under a tracing sink, build
   a Timeline (lib/obs/timeline.ml) per seed, merge, and export. Stdout is
   byte-identical at any -j (per-seed worlds are independent; the merge is
   order-insensitive), which the dune rules diff to enforce. *)
let timeline_cmd =
  let workload_arg =
    Arg.(
      value
      & opt string "sibench"
      & info [ "workload" ] ~docv:"NAME"
          ~doc:
            "Workload: smallbank | sibench | retention (bounded-memory loop with a pinned \
             snapshot released at 60% of the horizon; ignores --isolation)")
  in
  let mpl_arg = Arg.(value & opt int 10 & info [ "mpl" ] ~doc:"Number of concurrent clients") in
  let duration_arg =
    Arg.(value & opt float 0.5 & info [ "duration" ] ~doc:"Measured simulated seconds")
  in
  let warmup_arg =
    Arg.(value & opt float 0.1 & info [ "warmup" ] ~doc:"Warmup simulated seconds")
  in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Base random seed") in
  let iso_arg =
    Arg.(value & opt string "ssi" & info [ "isolation" ] ~doc:"si | ssi | s2pl | rc")
  in
  let tl_seeds_arg =
    Arg.(
      value & opt int 1
      & info [ "seeds" ] ~docv:"N"
          ~doc:"Merge timelines over $(docv) seeds (base, base+1, ...); pairs with -j")
  in
  let window_arg =
    Arg.(
      value & opt float 0.05
      & info [ "window" ] ~docv:"SECONDS" ~doc:"Window width in simulated seconds")
  in
  let series_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "series" ] ~docv:"NAMES"
          ~doc:"Comma-separated series to export (default: all; see the CSV header)")
  in
  let csv_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Write the CSV to $(docv) instead of stdout")
  in
  let ndjson_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "ndjson" ] ~docv:"FILE" ~doc:"Also write one JSON object per window to $(docv)")
  in
  let slo_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "slo" ] ~docv:"RATE,P95"
          ~doc:
            "Evaluate per-class SLOs: max error aborts per completed transaction and max p95 \
             response (simulated seconds), e.g. 0.2,0.01")
  in
  let annotate_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "annotate" ] ~docv:"SERIES"
          ~doc:"Detect regime shifts (Page-Hinkley) on $(docv) and print the marks")
  in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write one Chrome-trace file combining lifecycle spans, resource counters and the \
             timeline series as counter tracks (requires --seeds 1)")
  in
  let memb_arg =
    Arg.(
      value & opt int 0
      & info [ "memory-budget" ] ~docv:"N"
          ~doc:"Bound SIREAD/retained-transaction memory to $(docv) entries (0 = unbounded)")
  in
  let run workload mpl duration warmup seed iso nseeds window series_sel csv ndjson slo annotate
      trace mem_budget jobs =
    if window <= 0.0 then begin
      prerr_endline "--window must be positive";
      exit 1
    end;
    if trace <> None && nseeds > 1 then begin
      prerr_endline "--trace requires --seeds 1 (a trace captures one run)";
      exit 1
    end;
    let columns =
      match series_sel with
      | None -> None
      | Some s ->
          let cols = String.split_on_char ',' s |> List.filter (fun c -> c <> "") in
          List.iter
            (fun c ->
              if not (List.mem c Timeline.series_names) then begin
                prerr_endline
                  ("unknown series: " ^ c ^ " (known: "
                  ^ String.concat ", " Timeline.series_names
                  ^ ")");
                exit 1
              end)
            cols;
          Some cols
    in
    let horizon = warmup +. duration in
    let memory_budget = if mem_budget > 0 then Some mem_budget else None in
    let run_seed s : Timeline.t * Obs.t =
      if workload = "retention" then begin
        let obs, hz =
          Experiments.retention_timeline_run ?memory_budget ~mpl ~warmup ~duration ~seed:s ()
        in
        (Option.get (Timeline.of_obs ~window ~horizon:hz obs), obs)
      end
      else begin
        let isolation =
          match isolation_of_string iso with
          | Some i -> i
          | None ->
              prerr_endline ("unknown isolation: " ^ iso);
              exit 1
        in
        let tweak c =
          if mem_budget > 0 then { c with Core.Config.memory_budget = Some mem_budget } else c
        in
        let make_db, mix =
          match workload_of_string ~tweak workload with
          | Some w -> w
          | None ->
              prerr_endline ("unknown workload: " ^ workload);
              exit 1
        in
        let obs = Obs.create ~trace:true ~provenance:true ~metrics:true () in
        let cfg =
          { Driver.default_config with Driver.isolation; mpl; warmup; duration; seed = s }
        in
        ignore (Driver.run_once ~obs ~make_db ~mix cfg);
        (Option.get (Timeline.of_obs ~window ~horizon obs), obs)
      end
    in
    let seeds = List.init nseeds (fun i -> seed + i) in
    let per_seed = with_jobs jobs (fun pool -> Par.map ?pool run_seed seeds) in
    let tl = Timeline.merge (List.map fst per_seed) in
    Printf.printf "timeline workload=%s isolation=%s mpl=%d seeds=%d..%d window=%.4fs windows=%d\n"
      workload
      (if workload = "retention" then "ssi" else iso)
      mpl seed
      (seed + nseeds - 1)
      tl.Timeline.tl_width
      (Array.length tl.Timeline.tl_windows);
    let tt = Timeline.totals tl in
    Printf.printf
      "totals: commits=%d aborts=%d user-aborts=%d work-committed=%.6fs work-wasted=%.6fs\n"
      tt.Timeline.tt_commits tt.Timeline.tt_aborts tt.Timeline.tt_user
      tt.Timeline.tt_work_committed tt.Timeline.tt_work_wasted;
    let csv_buf = Buffer.create 4096 in
    Timeline.to_csv ?columns csv_buf tl;
    (match csv with
    | None -> print_string (Buffer.contents csv_buf)
    | Some file ->
        write_file file (Buffer.contents csv_buf);
        Printf.eprintf "csv: %d windows written to %s\n%!" (Array.length tl.Timeline.tl_windows)
          file);
    (match ndjson with
    | None -> ()
    | Some file ->
        let buf = Buffer.create 4096 in
        Timeline.to_ndjson buf tl;
        write_file file (Buffer.contents buf);
        Printf.eprintf "ndjson: %d windows written to %s\n%!"
          (Array.length tl.Timeline.tl_windows) file);
    (match slo with
    | None -> ()
    | Some spec ->
        let slo =
          match String.split_on_char ',' spec with
          | [ a; p ] -> (
              match (float_of_string_opt a, float_of_string_opt p) with
              | Some slo_abort_rate, Some slo_p95 -> { Timeline.slo_abort_rate; slo_p95 }
              | _ ->
                  prerr_endline ("bad --slo (want RATE,P95): " ^ spec);
                  exit 1)
          | _ ->
              prerr_endline ("bad --slo (want RATE,P95): " ^ spec);
              exit 1
        in
        List.iter
          (fun sr ->
            Printf.printf
              "slo class=%s active=%d violations=%d (abort-rate=%d p95=%d) \
               time-in-violation=%.4fs worst-abort-rate=%.4g worst-p95=%.4gs\n"
              sr.Timeline.sr_class sr.Timeline.sr_active sr.Timeline.sr_violations
              sr.Timeline.sr_abort_viol sr.Timeline.sr_p95_viol sr.Timeline.sr_time_in_violation
              sr.Timeline.sr_worst_abort_rate sr.Timeline.sr_worst_p95)
          (Timeline.slo_eval tl slo));
    (match annotate with
    | None -> ()
    | Some name ->
        if not (List.mem name Timeline.series_names) then begin
          prerr_endline ("unknown series: " ^ name);
          exit 1
        end;
        let marks = Timeline.change_points tl ~series:name in
        Printf.printf "regime-shifts series=%s count=%d\n" name (List.length marks);
        List.iter
          (fun mk ->
            Printf.printf "mark series=%s window=%d t0=%.4fs direction=%s\n" mk.Timeline.mk_series
              mk.Timeline.mk_window mk.Timeline.mk_ts
              (match mk.Timeline.mk_direction with `Up -> "up" | `Down -> "down"))
          marks);
    match (trace, per_seed) with
    | Some file, (_, o) :: _ ->
        Obs.write_trace_file ~extra:(Timeline.counter_records ?columns tl) file o;
        Printf.eprintf "trace: %d events + timeline counters written to %s\n%!"
          (Obs.event_count o) file
    | _ -> ()
  in
  Cmd.v
    (Cmd.info "timeline"
       ~doc:
         "Windowed sim-time telemetry: throughput, abort taxonomy, latency percentiles, \
          retention gauges, wasted work, per-class SLOs and regime-shift marks")
    Term.(
      const run $ workload_arg $ mpl_arg $ duration_arg $ warmup_arg $ seed_arg $ iso_arg
      $ tl_seeds_arg $ window_arg $ series_arg $ csv_arg $ ndjson_arg $ slo_arg $ annotate_arg
      $ trace_arg $ memb_arg $ jobs_arg)

let attribute_cmd =
  let workload_arg =
    Arg.(
      value
      & opt string "sibench"
      & info [ "workload" ] ~docv:"NAME" ~doc:"Workload: smallbank | sibench")
  in
  let mpl_arg = Arg.(value & opt int 10 & info [ "mpl" ] ~doc:"Number of concurrent clients") in
  let duration_arg =
    Arg.(value & opt float 0.5 & info [ "duration" ] ~doc:"Measured simulated seconds")
  in
  let warmup_arg =
    Arg.(value & opt float 0.1 & info [ "warmup" ] ~doc:"Warmup simulated seconds")
  in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Base random seed") in
  let iso_arg =
    Arg.(value & opt string "ssi" & info [ "isolation" ] ~doc:"si | ssi | s2pl | rc")
  in
  let at_seeds_arg =
    Arg.(
      value & opt int 1
      & info [ "seeds" ] ~docv:"N"
          ~doc:"Merge sketches over $(docv) seeds (base, base+1, ...); pairs with -j")
  in
  let window_arg =
    Arg.(
      value & opt float 0.05
      & info [ "window" ] ~docv:"SECONDS"
          ~doc:"Window width for the per-window blame series, simulated seconds")
  in
  let top_arg =
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"K" ~doc:"Rows in the contention table")
  in
  let sketch_arg =
    Arg.(
      value & opt int 256
      & info [ "sketch" ] ~docv:"CAP"
          ~doc:"Space-saving sketch capacity (distinct resources tracked; bounds the error)")
  in
  let csv_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Write the per-window blame series as CSV to $(docv)")
  in
  let ndjson_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "ndjson" ] ~docv:"FILE"
          ~doc:"Write the per-window blame series as one JSON object per line to $(docv)")
  in
  let flightrec_arg =
    Arg.(
      value & opt int 0
      & info [ "flightrec" ] ~docv:"CAP"
          ~doc:
            "Attach a flight recorder with a $(docv)-event ring to the base seed's run (0 = \
             off); pairs with --trigger and --bundle")
  in
  let trigger_arg =
    Arg.(
      value
      & opt string "abort_rate:0.5"
      & info [ "trigger" ] ~docv:"SPEC"
          ~doc:"Trigger: abort_rate:X | slo | slo:RATE:P95 | regime | regime:SERIES")
  in
  let bundle_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "bundle" ] ~docv:"FILE"
          ~doc:"Write the post-mortem bundle to $(docv) when the trigger fires")
  in
  let memb_arg =
    Arg.(
      value & opt int 0
      & info [ "memory-budget" ] ~docv:"N"
          ~doc:"Bound SIREAD/retained-transaction memory to $(docv) entries (0 = unbounded)")
  in
  let run workload mpl duration warmup seed iso nseeds window top sketch_cap csv ndjson
      flightrec trigger bundle mem_budget jobs =
    if window <= 0.0 then begin
      prerr_endline "--window must be positive";
      exit 1
    end;
    if sketch_cap < 1 then begin
      prerr_endline "--sketch must be at least 1";
      exit 1
    end;
    if top < 1 then begin
      prerr_endline "--top must be at least 1";
      exit 1
    end;
    let trig =
      if flightrec = 0 then None
      else
        match Flightrec.trigger_of_string trigger with
        | Ok t -> Some t
        | Error e ->
            prerr_endline ("bad --trigger: " ^ e);
            exit 1
    in
    let isolation =
      match isolation_of_string iso with
      | Some i -> i
      | None ->
          prerr_endline ("unknown isolation: " ^ iso);
          exit 1
    in
    let tweak c =
      if mem_budget > 0 then { c with Core.Config.memory_budget = Some mem_budget } else c
    in
    let make_db, mix =
      match workload_of_string ~tweak workload with
      | Some w -> w
      | None ->
          prerr_endline ("unknown workload: " ^ workload);
          exit 1
    in
    let horizon = warmup +. duration in
    let run_seed s : Obs.t =
      let obs = Obs.create ~trace:true ~provenance:true ~metrics:true ~sketch:sketch_cap () in
      let cfg =
        { Driver.default_config with Driver.isolation; mpl; warmup; duration; seed = s }
      in
      ignore (Driver.run_once ~obs ~make_db ~mix cfg);
      obs
    in
    let seeds = List.init nseeds (fun i -> seed + i) in
    let per_seed = with_jobs jobs (fun pool -> Par.map ?pool run_seed seeds) in
    (* Merge per-seed sketches and fold certificate blame, both in seed
       order — Par.map already returns in input order, so the result is
       byte-identical at any -j. *)
    let sk = Sketch.create ~capacity:sketch_cap in
    List.iter (fun o -> Sketch.merge ~into:sk (Option.get (Obs.sketch o))) per_seed;
    let all_certs = List.concat_map Obs.certs per_seed in
    Attrib.blame sk all_certs;
    Printf.printf
      "attribution workload=%s isolation=%s mpl=%d seeds=%d..%d window=%.4fs sketch-capacity=%d\n"
      workload iso mpl seed
      (seed + nseeds - 1)
      window sketch_cap;
    let buf = Buffer.create 4096 in
    Attrib.render_summary buf sk;
    Attrib.render_table buf ~top sk;
    print_string (Buffer.contents buf);
    (match csv with
    | None -> ()
    | Some file ->
        let rows = Attrib.blame_windows ~window ~horizon all_certs in
        let b = Buffer.create 4096 in
        Attrib.windows_csv b rows;
        write_file file (Buffer.contents b);
        Printf.eprintf "csv: %d blame rows written to %s\n%!" (List.length rows) file);
    (match ndjson with
    | None -> ()
    | Some file ->
        let rows = Attrib.blame_windows ~window ~horizon all_certs in
        let b = Buffer.create 4096 in
        Attrib.windows_ndjson b rows;
        write_file file (Buffer.contents b);
        Printf.eprintf "ndjson: %d blame rows written to %s\n%!" (List.length rows) file);
    match (trig, per_seed) with
    | Some trigger, o :: _ ->
        let events = Obs.events o and certs = Obs.certs o in
        let recorder, incident =
          Flightrec.run ~capacity:flightrec ~window ~horizon ~trigger events certs
        in
        (match incident with
        | None ->
            Printf.printf "flight-recorder: no incident (trigger %s; ring %d/%d, %d dropped)\n"
              (Flightrec.trigger_to_string trigger)
              (Flightrec.length recorder) (Flightrec.capacity recorder)
              (Flightrec.drops recorder)
        | Some inc ->
            Printf.printf "flight-recorder: incident window=%d t=%.4fs %s\n"
              inc.Flightrec.in_window inc.Flightrec.in_ts inc.Flightrec.in_detail;
            let b = Buffer.create 4096 in
            Flightrec.write_bundle b ~recorder ~incident:inc ~sk ~top ~certs;
            (match bundle with
            | Some file ->
                write_file file (Buffer.contents b);
                Printf.eprintf "bundle: %d bytes written to %s\n%!" (Buffer.length b) file
            | None -> print_string (Buffer.contents b)))
    | _ -> ()
  in
  Cmd.v
    (Cmd.info "attribute"
       ~doc:
         "Root-cause attribution: per-resource contention profile (space-saving sketch over \
          conflict edges, lock waits, SIREAD grants and FCW blocks, with abort blame split by \
          certificate edge role) plus an anomaly-triggered flight recorder")
    Term.(
      const run $ workload_arg $ mpl_arg $ duration_arg $ warmup_arg $ seed_arg $ iso_arg
      $ at_seeds_arg $ window_arg $ top_arg $ sketch_arg $ csv_arg $ ndjson_arg $ flightrec_arg
      $ trigger_arg $ bundle_arg $ memb_arg $ jobs_arg)

let sdg_cmd =
  let name_arg =
    Arg.(
      value
      & pos 0 string "smallbank"
      & info [] ~docv:"NAME"
          ~doc:
            "Graph: smallbank | smallbank-materialize-wt | smallbank-promote-wt | \
             smallbank-materialize-bw | smallbank-promote-bw | tpcc | tpccpp")
  in
  let run name =
    let g =
      match name with
      | "smallbank" -> Some (Catalog.smallbank ())
      | "smallbank-materialize-wt" -> Some (Catalog.smallbank_materialize_wt ())
      | "smallbank-promote-wt" -> Some (Catalog.smallbank_promote_wt ())
      | "smallbank-materialize-bw" -> Some (Catalog.smallbank_materialize_bw ())
      | "smallbank-promote-bw" -> Some (Catalog.smallbank_promote_bw ())
      | "tpcc" -> Some (Catalog.tpcc ())
      | "tpccpp" -> Some (Catalog.tpccpp ())
      | _ -> None
    in
    match g with
    | None ->
        prerr_endline ("unknown graph: " ^ name);
        exit 1
    | Some g ->
        Fmt.pr "Static dependency graph '%s' (rw! = vulnerable anti-dependency):@.%a@." name
          Sdg.pp g;
        let ds = Sdg.dangerous_structures g in
        if ds = [] then
          Fmt.pr "No dangerous structure: every SI execution is serializable (Theorem 3).@."
        else begin
          Fmt.pr "DANGEROUS: pivots %a@." Fmt.(list ~sep:comma string) (Sdg.pivots g);
          List.iter
            (fun d ->
              Fmt.pr "  %s -rw!-> %s -rw!-> %s@." d.Sdg.d_in d.Sdg.d_pivot d.Sdg.d_out)
            ds
        end
  in
  Cmd.v
    (Cmd.info "sdg" ~doc:"Analyse a static dependency graph for dangerous structures")
    Term.(const run $ name_arg)

(* Shared by [interleave] and [explore]. *)
let spec_of_string = function
  | "write-skew" -> Some Interleave.write_skew_spec
  | "read-only-anomaly" -> Some Interleave.read_only_anomaly_spec
  | "paper-4.7" -> Some Interleave.paper_spec
  | "paper-4.7-4" -> Some Interleave.paper_spec_4
  | "paper-4.7-5" -> Some Interleave.paper_spec_5
  | "write-skew-3" -> Some Interleave.write_skew_spec_3
  | "write-skew-4" -> Some Interleave.write_skew_spec_4
  | "read-only-anomaly-4" -> Some Interleave.read_only_anomaly_spec_4
  | _ -> None

let spec_doc =
  "write-skew | read-only-anomaly | paper-4.7 | paper-4.7-4 | paper-4.7-5 | write-skew-3 | \
   write-skew-4 | read-only-anomaly-4"

let interleave_cmd =
  let spec_arg =
    Arg.(
      value
      & opt string "write-skew"
      & info [ "spec" ] ~doc:("Transaction set: " ^ spec_doc))
  in
  let iso_arg =
    Arg.(value & opt string "si" & info [ "isolation" ] ~doc:"si | ssi | s2pl | rc")
  in
  let run spec iso =
    let spec_txns =
      match spec_of_string spec with
      | Some s -> s
      | None ->
          prerr_endline ("unknown spec: " ^ spec);
          exit 1
    in
    let isolation =
      match isolation_of_string iso with
      | Some i -> i
      | None ->
          prerr_endline ("unknown isolation: " ^ iso);
          exit 1
    in
    let s = Interleave.sweep ~isolation spec_txns in
    Printf.printf
      "spec=%s isolation=%s: %d interleavings\n\
      \  all-committed:    %d\n\
      \  non-serializable: %d\n\
      \  unsafe aborts:    %d\n\
      \  other aborts:     %d\n"
      spec iso s.Interleave.total s.Interleave.all_committed s.Interleave.non_serializable
      s.Interleave.unsafe_aborts s.Interleave.other_aborts
  in
  Cmd.v
    (Cmd.info "interleave"
       ~doc:"Exhaustively execute all interleavings of a transaction set (§4.7)")
    Term.(const run $ spec_arg $ iso_arg)

(* [explore]: the DPOR schedule explorer — same outcome coverage as a full
   [interleave] sweep at a fraction of the executions. Output is sorted and
   deterministic, byte-identical at any -j (bin/dune diffs -j1 vs -j4). *)
let explore_cmd =
  let spec_arg =
    Arg.(
      value
      & opt string "write-skew"
      & info [ "spec" ] ~doc:("Transaction set: " ^ spec_doc))
  in
  let iso_arg =
    Arg.(value & opt string "ssi" & info [ "isolation" ] ~doc:"si | ssi | s2pl | rc")
  in
  let matrix_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "matrix" ] ~docv:"NAME"
          ~doc:
            "Explore once per configuration point of the named matrix (default | full) \
             instead of the single test configuration")
  in
  let stats_arg =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"Print reduction metrics (backtracks, sleep hits, duplicate traces)")
  in
  let validate_arg =
    Arg.(
      value & flag
      & info [ "validate" ]
          ~doc:
            "Also run the full enumeration and fail unless its outcome-digest set matches \
             (multinomial cost: small specs only)")
  in
  let run spec iso matrix stats validate jobs =
    let spec_txns =
      match spec_of_string spec with
      | Some s -> s
      | None ->
          prerr_endline ("unknown spec: " ^ spec);
          exit 1
    in
    let isolation =
      match isolation_of_string iso with
      | Some i -> i
      | None ->
          prerr_endline ("unknown isolation: " ^ iso);
          exit 1
    in
    let points =
      match matrix with
      | None -> [ None ]
      | Some name -> (
          match Fuzzcase.matrix_of_string name with
          | Some m -> List.map (fun p -> Some p) m
          | None ->
              prerr_endline ("unknown matrix: " ^ name);
              exit 1)
    in
    let failed = ref false in
    with_jobs jobs (fun pool ->
        List.iter
          (fun point ->
            let config = Option.map Fuzzcase.config_of_point point in
            let label =
              match point with
              | None -> "test"
              | Some p -> Fuzzcase.point_to_string p
            in
            let digests, st = Explore.explore ?config ?pool ~isolation spec_txns in
            Printf.printf "spec=%s isolation=%s config=%s\n" spec iso label;
            Printf.printf "  schedules executed: %d of %d (%.1fx reduction)\n"
              st.Explore.executed st.Explore.bound
              (float_of_int st.Explore.bound /. float_of_int (max 1 st.Explore.executed));
            Printf.printf "  distinct outcomes:  %d\n" (List.length digests);
            if stats then begin
              Printf.printf "  backtracks:         %d\n" st.Explore.backtracks;
              Printf.printf "  sleep hits:         %d\n" st.Explore.sleep_hits;
              Printf.printf "  sleep blocked:      %d\n" st.Explore.sleep_blocked;
              Printf.printf "  duplicate traces:   %d\n" st.Explore.duplicates
            end;
            List.iter (fun d -> Printf.printf "  outcome %s\n" d) digests;
            if validate then begin
              let full = Explore.sweep_digests ?config ~isolation spec_txns in
              if full = digests then
                Printf.printf "  validate: OK (full enumeration agrees, %d outcomes)\n"
                  (List.length full)
              else begin
                Printf.printf "  validate: MISMATCH (dpor %d outcomes, full %d)\n"
                  (List.length digests) (List.length full);
                failed := true
              end
            end)
          points);
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "DPOR schedule explorer: exhaustively check a transaction set's outcomes while \
          executing only race-distinct interleavings")
    Term.(const run $ spec_arg $ iso_arg $ matrix_arg $ stats_arg $ validate_arg $ jobs_arg)

let fuzz_cmd =
  let cases_arg =
    Arg.(value & opt int 1000 & info [ "cases" ] ~doc:"Number of generated cases")
  in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Campaign seed") in
  let matrix_arg =
    Arg.(
      value & opt string "full"
      & info [ "matrix" ]
          ~doc:"Configuration matrix: full (all knob combinations) | default (paper profiles)")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"DIR" ~doc:"Write a repro file per oracle violation into $(docv)")
  in
  let shrink_arg =
    Arg.(
      value & flag
      & info [ "shrink-anomalies" ]
          ~doc:"Also minimise committed SI anomalies and print one repro per class")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:"Replay a repro file and verify the recorded history digests; ignores other flags")
  in
  let demo_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "demo-repro" ] ~docv:"FILE"
          ~doc:
            "Write the shrunk write-skew SI anomaly found by the campaign to $(docv) (implies \
             --shrink-anomalies)")
  in
  let crash_arg =
    Arg.(
      value & flag
      & info [ "crash" ]
          ~doc:
            "Crash-recovery campaign: per case, sweep deterministic crash points (append / \
             mid-flush torn tail / commit window), recover from the WAL's durable prefix and \
             verify the committed-prefix, horizon and continuation-serializability oracles")
  in
  let print_case c = print_string (Fuzzcase.to_string c) in
  (* A crash repro carries its fault plan as a '# crash <plan>' comment;
     route those to the crash-recovery replayer. *)
  let do_crash_replay file content =
    match Fuzzrecover.replay_string content with
    | Error e ->
        Printf.eprintf "replay %s: %s\n" file e;
        exit 1
    | Ok o -> (
        Printf.printf "crash plan %s\n" (Wal.plan_to_string o.Fuzzrecover.o_plan);
        (match o.Fuzzrecover.o_report with
        | Some rep ->
            Printf.printf
              "recovered: %d records, %d committed, %d in-doubt, %d aborted, %d torn bytes, \
               horizon %d\n"
              rep.Core.Db.r_replayed rep.Core.Db.r_committed rep.Core.Db.r_in_doubt
              rep.Core.Db.r_aborted rep.Core.Db.r_torn_bytes rep.Core.Db.r_last_commit_ts
        | None -> ());
        match o.Fuzzrecover.o_violation with
        | None -> print_endline "replay OK: recovery matches the committed prefix"
        | Some v ->
            Printf.printf "oracle violation: %s\n" (Fuzzrecover.violation_to_string v);
            print_endline "replay FAILED";
            exit 1)
  in
  let do_replay file =
    match Fuzz.replay_string (read_file file) with
    | Error e ->
        Printf.eprintf "replay %s: %s\n" file e;
        exit 1
    | Ok r ->
        List.iter
          (fun rc ->
            Printf.printf "%-4s expected=%s got=%s %s\n" rc.Fuzz.rc_level rc.Fuzz.rc_expected
              rc.Fuzz.rc_got
              (if rc.Fuzz.rc_ok then "OK" else "MISMATCH"))
          r.Fuzz.rp_checks;
        (match r.Fuzz.rp_violation with
        | Some v -> Printf.printf "oracle violation: %s\n" (Fuzzrun.violation_to_string v)
        | None -> ());
        if not r.Fuzz.rp_ok then
          List.iter
            (fun lr ->
              Printf.printf "-- %s history --\n%s\n"
                (Fuzzrun.level_name lr.Fuzzrun.l_isolation)
                lr.Fuzzrun.l_history_text)
            r.Fuzz.rp_reports;
        if r.Fuzz.rp_ok then print_endline "replay OK: histories identical at every level"
        else begin
          print_endline "replay FAILED";
          exit 1
        end
  in
  let campaign cases seed matrix_name out shrink demo jobs =
    let matrix =
      match Fuzzcase.matrix_of_string matrix_name with
      | Some m -> m
      | None ->
          prerr_endline ("unknown matrix: " ^ matrix_name);
          exit 1
    in
    let on_progress p =
      Printf.eprintf "  %d/%d cases (si anomalies %d, unsafe %d)\n%!" p.Fuzz.pr_done
        p.Fuzz.pr_total p.Fuzz.pr_anomalies p.Fuzz.pr_unsafe
    in
    let shrink_anomalies = shrink || demo <> None in
    let s =
      with_jobs jobs (fun pool ->
          Fuzz.run_campaign ?pool ~shrink_anomalies ~on_progress ~seed ~cases ~matrix ())
    in
    Printf.printf
      "fuzz seed=%d matrix=%s (%d points): %d cases\n\
      \  si anomalies:     %d\n\
      \  ssi unsafe:       %d\n\
      \  false positives:  %d (%.1f%% of unsafe)\n\
      \  oracle failures:  %d\n"
      seed matrix_name (List.length matrix) s.Fuzz.s_cases s.Fuzz.s_si_anomalies
      s.Fuzz.s_ssi_unsafe s.Fuzz.s_false_positives
      (if s.Fuzz.s_ssi_unsafe = 0 then 0.0
       else 100.0 *. float_of_int s.Fuzz.s_false_positives /. float_of_int s.Fuzz.s_ssi_unsafe)
      (List.length s.Fuzz.s_failures);
    (match out with
    | Some dir when s.Fuzz.s_failures <> [] ->
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        List.iteri
          (fun i f ->
            let file = Filename.concat dir (Printf.sprintf "fuzz-%03d.repro" i) in
            write_file file
              (Fuzz.repro_string
                 ~comment:[ Fuzzrun.violation_to_string f.Fuzz.f_violation ]
                 f.Fuzz.f_shrunk);
            Printf.printf "  wrote %s (%s)\n" file
              (Fuzzrun.violation_to_string f.Fuzz.f_violation))
          s.Fuzz.s_failures
    | _ -> ());
    if shrink_anomalies then
      List.iter
        (fun (cls, c) ->
          Printf.printf "\nshrunk SI anomaly [%s]:\n" cls;
          print_case c)
        s.Fuzz.s_anomalies;
    (match demo with
    | Some file -> (
        match
          match List.assoc_opt "write-skew" s.Fuzz.s_anomalies with
          | Some c -> Some ("write-skew", c)
          | None -> (
              match s.Fuzz.s_anomalies with a :: _ -> Some a | [] -> None)
        with
        | Some (cls, c) ->
            write_file file (Fuzz.repro_string ~comment:[ "shrunk SI anomaly: " ^ cls ] c);
            Printf.printf "\ndemo repro [%s] written to %s\n" cls file
        | None ->
            prerr_endline "no SI anomaly found to write as demo repro";
            exit 1)
    | None -> ());
    List.iter
      (fun f ->
        Printf.printf "\nVIOLATION: %s\nshrunk case:\n"
          (Fuzzrun.violation_to_string f.Fuzz.f_violation);
        print_case f.Fuzz.f_shrunk)
      s.Fuzz.s_failures;
    if s.Fuzz.s_failures <> [] then exit 1
  in
  let crash_campaign cases seed matrix_name out jobs =
    let matrix =
      match Fuzzcase.matrix_of_string matrix_name with
      | Some m -> m
      | None ->
          prerr_endline ("unknown matrix: " ^ matrix_name);
          exit 1
    in
    let on_progress p =
      Printf.eprintf "  %d/%d cases (%d crash runs, %d failures)\n%!" p.Fuzzrecover.cp_done
        p.Fuzzrecover.cp_total p.Fuzzrecover.cp_runs p.Fuzzrecover.cp_failures
    in
    let s =
      with_jobs jobs (fun pool ->
          Fuzzrecover.run_campaign ?pool ~on_progress ~seed ~cases ~matrix ())
    in
    Printf.printf
      "fuzz --crash seed=%d matrix=%s: %d cases, %d crash runs\n\
      \  crashes fired:    %d\n\
      \  torn tails:       %d\n\
      \  records replayed: %d\n\
      \  committed txns:   %d\n\
      \  in-doubt dropped: %d\n\
      \  logged aborts:    %d\n\
      \  oracle failures:  %d\n"
      seed matrix_name s.Fuzzrecover.cs_cases s.Fuzzrecover.cs_runs s.Fuzzrecover.cs_crashes
      s.Fuzzrecover.cs_torn s.Fuzzrecover.cs_replayed s.Fuzzrecover.cs_committed
      s.Fuzzrecover.cs_in_doubt s.Fuzzrecover.cs_aborted
      (List.length s.Fuzzrecover.cs_failures);
    (match out with
    | Some dir when s.Fuzzrecover.cs_failures <> [] ->
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        List.iteri
          (fun i f ->
            let file = Filename.concat dir (Printf.sprintf "crash-%03d.repro" i) in
            write_file file (Fuzzrecover.repro_string f);
            Printf.printf "  wrote %s (%s)\n" file
              (Fuzzrecover.violation_to_string f.Fuzzrecover.cf_violation))
          s.Fuzzrecover.cs_failures
    | _ -> ());
    List.iter
      (fun f ->
        Printf.printf "\nVIOLATION at case %d, plan %s: %s\ncase:\n" f.Fuzzrecover.cf_index
          (Wal.plan_to_string f.Fuzzrecover.cf_plan)
          (Fuzzrecover.violation_to_string f.Fuzzrecover.cf_violation);
        print_case f.Fuzzrecover.cf_case)
      s.Fuzzrecover.cs_failures;
    if s.Fuzzrecover.cs_failures <> [] then exit 1
  in
  let run cases seed matrix out shrink replay demo crash jobs =
    match replay with
    | Some file ->
        let content = read_file file in
        let is_crash_repro =
          List.exists
            (fun l ->
              let l = String.trim l in
              String.length l > 7 && String.sub l 0 8 = "# crash ")
            (String.split_on_char '\n' content)
        in
        if is_crash_repro then do_crash_replay file content else do_replay file
    | None ->
        if crash then crash_campaign cases seed matrix out jobs
        else campaign cases seed matrix out shrink demo jobs
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential history fuzzing: random transaction programs executed under SSI/SI/S2PL \
          and judged by the MVSG oracle; --crash sweeps WAL crash points against the recovery \
          oracle instead")
    Term.(
      const run $ cases_arg $ seed_arg $ matrix_arg $ out_arg $ shrink_arg $ replay_arg
      $ demo_arg $ crash_arg $ jobs_arg)

(* [recover]: one deterministic crash+recover+verify roundtrip, printed in
   full — the quickstart (and CI smoke) companion to [fuzz --crash]. *)
let recover_cmd =
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Case-selection seed") in
  let plan_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "plan" ] ~docv:"PLAN"
          ~doc:
            "Fault plan: append:N | flush:F:K:T | window:N (default: crash halfway through \
             the case's WAL appends)")
  in
  let run seed plan =
    let plan =
      match plan with
      | None -> None
      | Some s -> (
          match Wal.plan_of_string s with
          | Some p -> Some p
          | None ->
              prerr_endline ("bad plan: " ^ s);
              exit 1)
    in
    let d = Fuzzrecover.demo ?plan ~seed () in
    Printf.printf "case (seed %d):\n%s" seed (Fuzzcase.to_string d.Fuzzrecover.d_case);
    Printf.printf "crash plan: %s\n" (Wal.plan_to_string d.Fuzzrecover.d_plan);
    let o = d.Fuzzrecover.d_outcome in
    (match o.Fuzzrecover.o_report with
    | Some rep ->
        Printf.printf
          "recovery: replayed %d records -> %d committed, %d in-doubt rolled back, %d logged \
           aborts, %d torn bytes discarded\n\
           restored horizon: last_commit_ts=%d, retention watermark=%d\n"
          rep.Core.Db.r_replayed rep.Core.Db.r_committed rep.Core.Db.r_in_doubt
          rep.Core.Db.r_aborted rep.Core.Db.r_torn_bytes rep.Core.Db.r_last_commit_ts
          rep.Core.Db.r_watermark
    | None -> ());
    match o.Fuzzrecover.o_violation with
    | None -> print_endline "verify OK: recovered store equals the committed prefix"
    | Some v ->
        Printf.printf "verify FAILED: %s\n" (Fuzzrecover.violation_to_string v);
        exit 1
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:
         "Crash one generated workload at a deterministic WAL fault point, recover from the \
          durable log prefix and verify the recovery oracle")
    Term.(const run $ seed_arg $ plan_arg)

(* [report]: one self-contained Markdown document from three ingredient
   sets — figure sweeps, a profiled benchmark run (with ASCII utilisation
   sparklines on simulated time) and the abort-provenance harvest of a
   fixed-seed fuzz campaign. Everything derives from simulated time and
   fixed seeds, so the same invocation is byte-identical on any host and
   at any -j; bin/dune diffs -j1 against -j4 to enforce it. *)
let report_cmd =
  let figures_arg =
    Arg.(
      value
      & opt (list string) [ "fig6.7" ]
      & info [ "figures" ] ~docv:"IDS"
          ~doc:"Comma-separated experiment ids to include as figure tables (see list)")
  in
  let workload_arg =
    Arg.(
      value & opt string "sibench"
      & info [ "workload" ] ~docv:"NAME"
          ~doc:"Workload of the profiled run: smallbank | sibench")
  in
  let bmpl_arg =
    Arg.(value & opt int 10 & info [ "bench-mpl" ] ~doc:"Clients in the profiled run")
  in
  let bdur_arg =
    Arg.(
      value & opt float 0.5
      & info [ "bench-duration" ] ~doc:"Measured simulated seconds of the profiled run")
  in
  let bwarm_arg =
    Arg.(
      value & opt float 0.1
      & info [ "bench-warmup" ] ~doc:"Warmup simulated seconds of the profiled run")
  in
  let bseed_arg =
    Arg.(value & opt int 1 & info [ "bench-seed" ] ~doc:"Seed of the profiled run")
  in
  let biso_arg =
    Arg.(
      value & opt string "ssi"
      & info [ "bench-isolation" ] ~doc:"Isolation of the profiled run: si | ssi | s2pl | rc")
  in
  let fcases_arg =
    Arg.(
      value & opt int 200
      & info [ "fuzz-cases" ] ~doc:"Cases in the provenance-harvest fuzz campaign")
  in
  let fseed_arg =
    Arg.(value & opt int 1 & info [ "fuzz-seed" ] ~doc:"Seed of the fuzz campaign")
  in
  let matrix_arg =
    Arg.(
      value & opt string "default"
      & info [ "matrix" ] ~doc:"Fuzz configuration matrix: full | default")
  in
  let topk_arg =
    Arg.(
      value & opt int 5
      & info [ "topk" ] ~doc:"Distinct certificate shapes detailed in the provenance section")
  in
  let bins_arg =
    Arg.(
      value & opt int 64 & info [ "bins" ] ~doc:"Width of the utilisation sparklines, in bins")
  in
  let out_arg =
    Arg.(
      value & opt string "-"
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Write the report to $(docv) (- for stdout)")
  in
  let dot_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"FILE"
          ~doc:
            "Also write one abort certificate's Graphviz snapshot (the dependency graph at \
             abort time) to $(docv); prefers an SSI pivot certificate, synthesises the \
             write-skew demo if the campaign emitted none")
  in
  let check_dot_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "check-dot" ] ~docv:"FILE"
          ~doc:
            "Validate $(docv) with the in-repo DOT parser and exit (used by the CI smoke \
             rule); ignores every other flag")
  in
  (* The write-skew demo schedule: both transactions read both keys on
     overlapping snapshots, then write disjoint keys. Under SSI the final
     write completes a two-transaction rw cycle, so the engine aborts the
     writer with a pivot certificate. *)
  let demo_dot () =
    let obs = Obs.create ~trace:false ~metrics:false ~provenance:true () in
    let _ =
      Interleave.run_interleaving ~obs ~isolation:Core.Types.Serializable
        Interleave.write_skew_spec
        Interleave.[ (0, R "x"); (0, R "y"); (1, R "x"); (1, R "y"); (0, W "x"); (1, W "y") ]
    in
    match Obs.certs obs with
    | c :: _ -> c.Obs.c_dot
    | [] ->
        prerr_endline "internal error: write-skew demo emitted no certificate";
        exit 1
  in
  let run figures quick seeds duration mpls workload bmpl bdur bwarm bseed biso fcases fseed
      matrix_name topk bins out dot check_dot jobs =
    match check_dot with
    | Some file -> (
        match Obs.dot_validate (read_file file) with
        | Ok () -> Printf.printf "%s: DOT OK\n" file
        | Error e ->
            Printf.eprintf "%s: invalid DOT: %s\n" file e;
            exit 1)
    | None ->
        let isolation =
          match isolation_of_string biso with
          | Some i -> i
          | None ->
              prerr_endline ("unknown isolation: " ^ biso);
              exit 1
        in
        let make_db, mix =
          match workload_of_string workload with
          | Some w -> w
          | None ->
              prerr_endline ("unknown workload: " ^ workload);
              exit 1
        in
        let matrix =
          match Fuzzcase.matrix_of_string matrix_name with
          | Some m -> m
          | None ->
              prerr_endline ("unknown matrix: " ^ matrix_name);
              exit 1
        in
        let budget =
          if quick then Experiments.quick_budget
          else
            {
              Experiments.seeds = List.init seeds (fun i -> i + 1);
              duration;
              warmup = duration /. 4.0;
              mpls;
              with_metrics = false;
            }
        in
        let plans =
          List.filter_map
            (fun id ->
              match Experiments.find_figure id with
              | Some mk -> Some (mk budget)
              | None ->
                  Printf.eprintf "unknown experiment %s (skipped)\n%!" id;
                  None)
            figures
        in
        let figs = with_jobs jobs (fun pool -> Experiments.eval_plans ?pool plans) in
        (* Profiled run: trace on (lifecycle spans + resource samples),
           metrics on, plus the contention sketch and certificates feeding
           the report's hot-resources and incidents sections. Tracing is
           out-of-band, so the measured numbers are identical to an
           untraced run. *)
        let obs = Obs.create ~trace:true ~provenance:true ~sketch:256 () in
        let cfg =
          {
            Driver.default_config with
            Driver.isolation;
            mpl = bmpl;
            warmup = bwarm;
            duration = bdur;
            seed = bseed;
          }
        in
        let r = Driver.run_once ~obs ~make_db ~mix cfg in
        let bench =
          {
            Report.b_label =
              Printf.sprintf "%s %s mpl=%d seed=%d window=%.2fs" workload biso bmpl bseed bdur;
            b_result = r;
            b_obs = obs;
            b_t0 = bwarm;
            b_t1 = bwarm +. bdur;
          }
        in
        let certs = Fuzzcert.collect_certs ~seed:fseed ~cases:fcases ~matrix () in
        let campaign =
          [
            Printf.sprintf
              "Harvest of a fixed-seed fuzz campaign: seed=%d, %d cases over the `%s` matrix \
               (%d points), run at SSI with provenance enabled. Each shape below carries one \
               example certificate and the codec line that replays it."
              fseed fcases matrix_name (List.length matrix);
          ]
        in
        let preamble =
          [
            "Everything below derives from simulated time and fixed seeds: re-running the";
            "same `ssi_bench report` invocation reproduces this file byte for byte, on any";
            "host and at any `-j`.";
            "";
            Printf.sprintf "- figure sweeps: %s (seeds=%d, window=%.2fs, mpl=%s)"
              (match figures with [] -> "none" | l -> String.concat ", " l)
              (List.length budget.Experiments.seeds)
              budget.Experiments.duration
              (String.concat "," (List.map string_of_int budget.Experiments.mpls));
            Printf.sprintf "- profiled run: %s at %s, mpl=%d, seed=%d, %.2fs after %.2fs warmup"
              workload biso bmpl bseed bdur bwarm;
            Printf.sprintf "- abort provenance: %d fuzz cases, seed=%d, matrix=%s" fcases fseed
              matrix_name;
          ]
        in
        let doc =
          Report.build ~bins ~topk ~title:"SSI reproduction — experiment report" ~preamble
            ~figures:figs ~bench:(Some bench) ~campaign ~certs ()
        in
        (match out with
        | "-" -> print_string doc
        | file ->
            write_file file doc;
            Printf.eprintf "report: %d bytes written to %s\n%!" (String.length doc) file);
        match dot with
        | None -> ()
        | Some file ->
            let d =
              match
                List.find_opt
                  (fun ((c : Obs.certificate), _) ->
                    match c.Obs.c_cert with Obs.Ssi_pivot _ -> true | _ -> false)
                  certs
              with
              | Some (c, _) -> c.Obs.c_dot
              | None -> (
                  match certs with (c, _) :: _ -> c.Obs.c_dot | [] -> demo_dot ())
            in
            (match Obs.dot_validate d with
            | Ok () -> ()
            | Error e ->
                Printf.eprintf "internal error: emitted invalid DOT: %s\n" e;
                exit 1);
            write_file file d;
            Printf.eprintf "dot: %d bytes written to %s\n%!" (String.length d) file
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Render one self-contained Markdown report: figure tables, a profiled run with \
          utilisation sparklines, and top-k abort certificates from a fuzz campaign")
    Term.(
      const run $ figures_arg $ quick_arg $ seeds_arg $ duration_arg $ mpl_arg $ workload_arg
      $ bmpl_arg $ bdur_arg $ bwarm_arg $ bseed_arg $ biso_arg $ fcases_arg $ fseed_arg
      $ matrix_arg $ topk_arg $ bins_arg $ out_arg $ dot_arg $ check_dot_arg $ jobs_arg)

let () =
  let info =
    Cmd.info "ssi_bench" ~version:"1.0"
      ~doc:"Reproduction toolkit for 'Serializable Isolation for Snapshot Databases'"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd;
            run_cmd;
            bench_cmd;
            timeline_cmd;
            attribute_cmd;
            report_cmd;
            sdg_cmd;
            interleave_cmd;
            explore_cmd;
            fuzz_cmd;
            recover_cmd;
            Perf_cmd.cmd;
          ]))
