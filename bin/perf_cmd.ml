(* [ssi_bench perf]: hot-path microbenchmarks plus a timed end-to-end sweep,
   emitted as machine-readable BENCH_ssi.json for the perf-regression gate
   (tools/check_bench.sh).

   Two different contracts coexist here and must not be confused:

   - Wall-clock numbers (wall_s, rate, the -j speedup curve) measure *this
     machine right now*; they vary run to run and are compared against a
     checked-in baseline only up to a generous regression factor.

   - The [check] value of each microbench and the end-to-end summary carried
     by the speedup sweep are *simulated* results: fully deterministic, and
     required to be identical at every -j. A mismatch is a correctness bug
     and fails the run immediately (exit 2), independent of any baseline. *)

open Cmdliner

let time f =
  let t0 = Unix.gettimeofday () in
  let check = f () in
  (Unix.gettimeofday () -. t0, check)

type entry = { e_name : string; e_runs : int; e_wall : float; e_check : float }

let rate e = if e.e_wall > 0.0 then float_of_int e.e_runs /. e.e_wall else 0.0

(* {1 Microbenchmarks} *)

(* Full read+update transactions against a populated table: begin, snapshot
   read, write, first-committer-wins check, commit. [null_sink] attaches an
   observability sink with every channel off — the A/B side of the
   obs-overhead guard below. *)
let bench_commit_path ?(null_sink = false) runs () =
  let sim = Sim.create () in
  let db = Core.Db.create ~config:(Core.Config.bdb ()) sim in
  if null_sink then Core.Db.set_obs db (Obs.create ~trace:false ~metrics:false ());
  let rows = List.init 256 (fun i -> (Printf.sprintf "k%03d" i, "0")) in
  ignore (Core.Db.create_table db "t");
  Core.Db.load db "t" rows;
  Sim.spawn sim (fun () ->
      for i = 0 to runs - 1 do
        let key = Printf.sprintf "k%03d" (i mod 256) in
        match
          Core.Db.run db Core.Types.Serializable (fun t ->
              let v = Core.Txn.read_exn t "t" key in
              Core.Txn.write t "t" key (string_of_int (String.length v)))
        with
        | Ok () -> ()
        | Error _ -> ()
      done);
  Sim.run sim;
  float_of_int (Core.Db.stats db).Core.Internal.commits

(* Raw lock-manager work: S grant, S->X upgrade, release, over a small hot
   set of resources (uncontended: measures table/queue bookkeeping). *)
let bench_lock_path ?(null_sink = false) runs () =
  let sim = Sim.create () in
  let lm = Lockmgr.create sim in
  if null_sink then Lockmgr.set_obs lm (Obs.create ~trace:false ~metrics:false ());
  Sim.spawn sim (fun () ->
      for i = 0 to runs - 1 do
        let r = "r" ^ string_of_int (i mod 64) in
        Lockmgr.acquire lm ~owner:i ~mode:Lockmgr.S r;
        Lockmgr.acquire lm ~owner:i ~mode:Lockmgr.X r;
        Lockmgr.release_all lm i
      done);
  Sim.run sim;
  float_of_int runs

(* Read-only SSI transactions: every read takes a SIREAD lock and the commit
   path suspends/cleans the transaction record (§3.3 bookkeeping). *)
let bench_siread_path runs () =
  let sim = Sim.create () in
  let db = Core.Db.create ~config:(Core.Config.bdb ()) sim in
  let rows = List.init 256 (fun i -> (Printf.sprintf "k%03d" i, "v")) in
  ignore (Core.Db.create_table db "t");
  Core.Db.load db "t" rows;
  Sim.spawn sim (fun () ->
      for i = 0 to runs - 1 do
        let key = Printf.sprintf "k%03d" (i mod 256) in
        match
          Core.Db.run db Core.Types.Serializable (fun t ->
              ignore (Core.Txn.read t "t" key);
              ignore (Core.Txn.read t "t" "k000"))
        with
        | Ok () -> ()
        | Error _ -> ()
      done);
  Sim.run sim;
  float_of_int (Core.Db.stats db).Core.Internal.commits

(* Shared bounded-memory workload: read-modify-write SSI transactions over a
   32-key hot set under a pinned snapshot and a small memory budget, so every
   commit exercises the budget-pressure path — row→page SIREAD promotion,
   committed-transaction summarization and summary expiry all fire (the pin
   keeps the oldest-active-snapshot watermark from reclaiming anything the
   easy way). [on_commit] is called after every writer commit, for probes
   that sample lock-table pressure. Fully simulated, hence deterministic. *)
let bounded_run ~runs ~on_commit =
  let sim = Sim.create () in
  let config =
    {
      (Core.Config.test ()) with
      Core.Config.record_history = false;
      memory_budget = Some 64;
      promote_threshold = 4;
    }
  in
  let db = Core.Db.create ~config sim in
  let keys = Array.init 32 (fun i -> Printf.sprintf "k%02d" i) in
  ignore (Core.Db.create_table db "t");
  Core.Db.load db "t" (("pin", "0") :: (Array.to_list keys |> List.map (fun k -> (k, "0"))));
  Sim.spawn sim (fun () ->
      ignore
        (Core.Db.run db Core.Types.Serializable (fun t ->
             ignore (Core.Txn.read t "t" "pin");
             for i = 0 to 11 do
               ignore (Core.Txn.read t "t" keys.(i))
             done;
             Sim.delay sim 1.0e6)));
  Sim.spawn sim (fun () ->
      Sim.delay sim 0.001;
      for i = 1 to runs do
        ignore
          (Core.Db.run db Core.Types.Serializable (fun t ->
               (* read a *different* key than we write: the SIREAD survives
                  commit (no §3.7.3 upgrade-release), so summarization has
                  lock-table entries to fold into the summary pool *)
               ignore (Core.Txn.read t "t" keys.((i + 7) mod 32));
               Core.Txn.write t "t" keys.(i mod 32) (string_of_int i)));
        on_commit db
      done);
  Sim.run sim;
  db

(* Bounded-memory hot path (§4.8 / Ports & Grittner-style summarization).
   The check folds in the summarized-transaction count so a silently
   disabled bounded mode shows up as a check mismatch, not as a fast no-op. *)
let bench_summarize_path runs () =
  let db = bounded_run ~runs ~on_commit:(fun _ -> ()) in
  float_of_int ((Core.Db.stats db).Core.Internal.commits + Core.Db.summarized_count db)

(* B+tree inserts in pseudo-random key order (forcing splits at fanout 16)
   followed by a full range scan. *)
let bench_btree runs () =
  let t = Btree.create ~fanout:16 () in
  let x = ref 12345 in
  for _ = 1 to runs do
    (* deterministic LCG so the split pattern is fixed *)
    x := ((!x * 1103515245) + 12345) land 0xFFFFFF;
    ignore (Btree.insert t (Printf.sprintf "k%08d" !x) !x)
  done;
  let n = ref 0 in
  Btree.iter_range t (fun _ _ -> incr n);
  float_of_int !n

(* MVSG build + cycle search over a synthetic 100-transaction history with a
   read/write overlap pattern dense enough to produce real edges. *)
let bench_mvsg runs () =
  let txns = 100 in
  let history =
    List.init txns (fun i ->
        let key j = Printf.sprintf "k%02d" (j mod 17) in
        {
          Core.Types.h_id = i + 1;
          h_isolation = Core.Types.Serializable;
          h_snapshot = 2 * i;
          h_commit = (2 * i) + 3;
          h_reads =
            [
              { Core.Types.r_table = "t"; r_key = key i; r_version = i };
              { Core.Types.r_table = "t"; r_key = key (i + 5); r_version = i };
            ];
          h_writes = [ ("t", key (i + 1)); ("t", key (i + 9)) ];
        })
  in
  let cycles = ref 0 in
  for _ = 1 to runs do
    let g = Mvsg.build history in
    if Mvsg.find_cycle g <> None then incr cycles
  done;
  float_of_int !cycles /. float_of_int runs

let micros ~quick =
  let s = if quick then 1 else 8 in
  [
    ("commit-path", 1000 * s, fun runs -> bench_commit_path runs);
    ("lock-acquire-release", 5000 * s, fun runs -> bench_lock_path runs);
    ("siread-bookkeeping", 1000 * s, bench_siread_path);
    ("summarize-path", 1000 * s, bench_summarize_path);
    ("btree-insert-scan", 20000 * s, bench_btree);
    ("mvsg-check", 50 * s, bench_mvsg);
  ]

(* Timeline-build arm: both sides run the same traced commit-path workload;
   the B side additionally builds the windowed timeline (64 windows), runs
   change-point detection and renders the CSV from the captured buffer. The
   delta therefore bounds the cost of the timeline layer itself on top of a
   traced run — a single post-hoc pass over the event list, far off the
   simulation's own cost — and is gated by the same OBS_OVERHEAD_MAX as the
   disabled-sink arms. *)
let bench_timeline_path ?(null_sink = false) runs () =
  let sim = Sim.create () in
  let db = Core.Db.create ~config:(Core.Config.bdb ()) sim in
  let obs = Obs.create ~trace:true ~provenance:true () in
  Core.Db.set_obs db obs;
  let rows = List.init 256 (fun i -> (Printf.sprintf "k%03d" i, "0")) in
  ignore (Core.Db.create_table db "t");
  Core.Db.load db "t" rows;
  Sim.spawn sim (fun () ->
      for i = 0 to runs - 1 do
        let key = Printf.sprintf "k%03d" (i mod 256) in
        match
          Core.Db.run db Core.Types.Serializable (fun t ->
              let v = Core.Txn.read_exn t "t" key in
              Core.Txn.write t "t" key (string_of_int (String.length v)))
        with
        | Ok () -> ()
        | Error _ -> ()
      done);
  Sim.run sim;
  let commits = float_of_int (Core.Db.stats db).Core.Internal.commits in
  if not null_sink then commits
  else
    match Timeline.of_obs ~window:(Sim.now sim /. 64.0) ~horizon:(Sim.now sim) obs with
    | None -> commits
    | Some tl ->
        let buf = Buffer.create 4096 in
        Timeline.to_csv buf tl;
        ignore (Timeline.change_points tl ~series:"throughput");
        commits

(* Sketch arm: the B side attaches a sink with *only* the attribution
   sketch on, so the measured delta bounds the cost of the per-resource
   heavy-hitter updates (one hash probe + counter bump per conflict edge,
   SIREAD grant or lock wait) in the live commit path. Gated by the same
   OBS_OVERHEAD_MAX as the channels-off arms. *)
let bench_commit_path_sketch ?(null_sink = false) runs () =
  let sim = Sim.create () in
  let db = Core.Db.create ~config:(Core.Config.bdb ()) sim in
  if null_sink then Core.Db.set_obs db (Obs.create ~trace:false ~metrics:false ~sketch:256 ());
  let rows = List.init 256 (fun i -> (Printf.sprintf "k%03d" i, "0")) in
  ignore (Core.Db.create_table db "t");
  Core.Db.load db "t" rows;
  Sim.spawn sim (fun () ->
      for i = 0 to runs - 1 do
        let key = Printf.sprintf "k%03d" (i mod 256) in
        match
          Core.Db.run db Core.Types.Serializable (fun t ->
              let v = Core.Txn.read_exn t "t" key in
              Core.Txn.write t "t" key (string_of_int (String.length v)))
        with
        | Ok () -> ()
        | Error _ -> ()
      done);
  Sim.run sim;
  float_of_int (Core.Db.stats db).Core.Internal.commits

(* {1 Observability-overhead guard}

   "Zero cost when no sink is installed": every hot-path observability call
   is guarded on the sink's channel flags, and the default sink
   [Obs.disabled] has every channel off. The A/B below runs the two hottest
   microbenches in both modes — stock (no sink installed) and with a
   freshly created sink attached whose channels are all off — back to back,
   gating on the best paired ratio so scheduler noise largely cancels. The
   attached run does strictly more work than the no-sink run (installation
   propagates the sink to the lock manager, WAL and resources), so the
   measured delta bounds the cost of carrying the instrumentation in the
   disabled hot paths. tools/check_bench.sh fails `@ci` when any delta
   exceeds OBS_OVERHEAD_MAX percent (default 2). *)

type ab = {
  ab_name : string;
  ab_runs : int;
  ab_off : float;  (** median wall, no sink installed *)
  ab_null : float;  (** median wall, channels-off sink installed *)
  ab_delta_pct : float;  (** best (smallest) paired per-rep ratio, as a percentage *)
}

let median l =
  let a = List.sort compare l in
  List.nth a (List.length a / 2)

let obs_overhead ~quick =
  (* Each rep measures the two modes back to back and contributes one
     paired ratio; the reported delta is the *best* ratio across reps.
     Pairing cancels slow drift (thermal, co-tenants), and taking the best
     pair makes the gate robust to one-sided noise spikes on a shared
     machine: a real systematic overhead shifts every ratio up, so even the
     best pair exceeds the threshold, while scheduler noise leaves at least
     one clean pair. The per-rep workloads are larger than the plain
     microbenches so timer noise shrinks relative to the run. *)
  let s = if quick then 8 else 32 in
  let reps = if quick then 7 else 9 in
  let measure name runs (f : ?null_sink:bool -> int -> unit -> float) =
    let pairs =
      List.init reps (fun _ ->
          let w, _ = time (fun () -> f ~null_sink:false runs ()) in
          let w', _ = time (fun () -> f ~null_sink:true runs ()) in
          (w, w'))
    in
    let ratio (w, w') = if w > 0.0 then w' /. w else 1.0 in
    {
      ab_name = name;
      ab_runs = runs;
      ab_off = median (List.map fst pairs);
      ab_null = median (List.map snd pairs);
      ab_delta_pct =
        100.0 *. (List.fold_left min infinity (List.map ratio pairs) -. 1.0);
    }
  in
  [
    measure "commit-path" (1000 * s) bench_commit_path;
    measure "lock-acquire-release" (5000 * s) bench_lock_path;
    measure "timeline-build" (1000 * s) bench_timeline_path;
    measure "commit-path-sketch" (1000 * s) bench_commit_path_sketch;
  ]

(* {1 Timeline probe}

   Deterministic checks for the windowed-telemetry layer, same contract as
   the memory/recovery probes: a contended traced run whose commit count,
   wasted-work total and window count are simulated results (identical on
   every host), plus the wall-clock cost of one timeline build+CSV render
   and the ledger conservation verdict. tools/check_bench.sh fails `@ci`
   unless [conserved] — a false here means a commit or abort path skipped
   its work-banking hook. *)

type timeline_probe = {
  tp_commits : int;  (** deterministic *)
  tp_aborts : int;  (** deterministic: error aborts in the timeline *)
  tp_windows : int;  (** deterministic *)
  tp_wasted : float;  (** deterministic: total wasted sim-time work *)
  tp_conserved : bool;  (** ledger conservation at end of run *)
  tp_build_s : float;  (** median wall seconds per build+CSV render *)
}

let timeline_probe ~quick =
  let clients = 8 in
  let per_client = (if quick then 4000 else 16_000) / clients in
  let keys = 64 in
  let sim = Sim.create () in
  let db = Core.Db.create ~config:(Core.Config.bdb ()) sim in
  let obs = Obs.create ~trace:true ~provenance:true () in
  Core.Db.set_obs db obs;
  ignore (Core.Db.create_table db "t");
  Core.Db.load db "t" (List.init keys (fun i -> (Printf.sprintf "k%03d" i, "0")));
  (* Contended read+write mix so the trace carries real aborts and the
     wasted-work side of the ledger is exercised, not just commits. *)
  for client = 1 to clients do
    Sim.spawn sim (fun () ->
        let st = Random.State.make [| 7; client |] in
        for _ = 1 to per_client do
          let r = Printf.sprintf "k%03d" (Random.State.int st keys) in
          let w = Printf.sprintf "k%03d" (Random.State.int st keys) in
          match
            Core.Db.run db Core.Types.Serializable (fun t ->
                ignore (Core.Txn.read t "t" r);
                Core.Txn.write t "t" w "1")
          with
          | Ok () | Error _ -> ()
        done)
  done;
  Sim.run sim;
  let conserved = Core.Db.work_conserved db in
  let wp = Core.Db.work_profile db in
  let horizon = Sim.now sim in
  let build () =
    match Timeline.of_obs ~window:(horizon /. 64.0) ~horizon obs with
    | None -> assert false
    | Some tl ->
        let buf = Buffer.create 4096 in
        Timeline.to_csv buf tl;
        ignore (Timeline.change_points tl ~series:"throughput");
        tl
  in
  let walls = List.init 5 (fun _ -> fst (time (fun () -> ignore (build ()); 0.0))) in
  let tl = build () in
  let tt = Timeline.totals tl in
  {
    tp_commits = tt.Timeline.tt_commits;
    tp_aborts = tt.Timeline.tt_aborts;
    tp_windows = Array.length tl.Timeline.tl_windows;
    tp_wasted = wp.Core.Db.wp_wasted;
    tp_conserved = conserved;
    tp_build_s = median walls;
  }

(* {1 Bounded-memory probe}

   A fixed 10k-commit bounded run (same workload as the summarize-path
   microbench) sampled after every commit. Everything here is simulated, so
   the numbers are deterministic and gateable: tools/check_bench.sh fails
   `@ci` unless [within_budget] — retained committed-transaction records
   plus live SIREAD lock-table entries never exceeded the budget. *)

type memory_probe = {
  mp_budget : int;
  mp_commits : int;
  mp_max_pressure : int;  (** max over commits of retained records + live SIREAD entries *)
  mp_summarized : int;
  mp_promotions : int;
  mp_summary_hwm : int;
}

let mp_within_budget m = m.mp_max_pressure <= m.mp_budget

let memory_probe () =
  let max_pressure = ref 0 in
  let summary_hwm = ref 0 in
  let db =
    bounded_run ~runs:10_000 ~on_commit:(fun db ->
        let p = Core.Db.retained_count db + Core.Db.siread_entry_count db in
        if p > !max_pressure then max_pressure := p;
        let s = Core.Db.summary_size db in
        if s > !summary_hwm then summary_hwm := s)
  in
  {
    mp_budget = 64;
    mp_commits = (Core.Db.stats db).Core.Internal.commits;
    mp_max_pressure = !max_pressure;
    mp_summarized = Core.Db.summarized_count db;
    mp_promotions = Core.Db.promotion_count db;
    mp_summary_hwm = !summary_hwm;
  }

(* {1 Recovery probe}

   Replay cost of the crash-recovery path (PR 6): a simulated workload of
   read-modify-write transactions with periodic checkpoints produces a WAL
   image, which is then recovered repeatedly into fresh engines. Wall-clock
   µs/record is the baseline-gated rate; the committed count and restored
   horizon are simulated results — deterministic, identical on every run —
   so a recovery that silently drops transactions shows up as a changed
   check, not just a faster replay. Checkpoint cost is measured separately
   on a standalone log (append + checkpoint per iteration). *)

type recovery_probe = {
  rv_records : int;  (** log records replayed per recovery *)
  rv_replay_s : float;  (** median wall seconds per recovery *)
  rv_us_per_record : float;
  rv_checkpoint_us : float;  (** median wall µs per checkpoint (append+harden) *)
  rv_committed : int;  (** deterministic: committed transactions recovered *)
  rv_horizon : int;  (** deterministic: restored last_commit_ts *)
}

let recovery_probe ~quick =
  let txns = if quick then 2_000 else 8_000 in
  let log =
    let sim = Sim.create () in
    let config =
      {
        (Core.Config.test ()) with
        Core.Config.record_history = false;
        checkpoint_interval = Some 64;
      }
    in
    let db = Core.Db.create ~config sim in
    ignore (Core.Db.create_table db "t");
    Core.Db.load db "t" (List.init 64 (fun i -> (Printf.sprintf "k%02d" i, "0")));
    Sim.spawn sim (fun () ->
        for i = 1 to txns do
          ignore
            (Core.Db.run db Core.Types.Serializable (fun t ->
                 ignore (Core.Txn.read t "t" (Printf.sprintf "k%02d" (i mod 64)));
                 Core.Txn.write t "t"
                   (Printf.sprintf "k%02d" (i * 7 mod 64))
                   (string_of_int i)))
        done);
    Sim.run sim;
    Wal.harden (Core.Db.wal db);
    Wal.durable_log (Core.Db.wal db)
  in
  let recover_once () =
    match Core.Db.recover (Sim.create ()) ~log with
    | Ok (db, rep) -> (Core.Db.last_commit_ts db, rep)
    | Error e ->
        Printf.eprintf "FATAL: recovery probe failed to recover its own log: %s\n" e;
        exit 2
  in
  let reps = if quick then 5 else 9 in
  let walls = List.init reps (fun _ -> fst (time recover_once)) in
  let horizon, rep = recover_once () in
  let replay_s = median walls in
  let checkpoint_us =
    let iters = if quick then 2_000 else 10_000 in
    let sim = Sim.create () in
    let wal = Wal.create sim ~mode:Wal.No_flush in
    let wall, _ =
      time (fun () ->
          for i = 1 to iters do
            Wal.append wal (Wal.Write { txn = i; table = "t"; key = "k"; value = "v" });
            Wal.checkpoint wal ~watermark:i ~next_ts:i
          done;
          0.0)
    in
    1.0e6 *. wall /. float_of_int iters
  in
  {
    rv_records = rep.Core.Db.r_replayed;
    rv_replay_s = replay_s;
    rv_us_per_record =
      (if rep.Core.Db.r_replayed > 0 then
         1.0e6 *. replay_s /. float_of_int rep.Core.Db.r_replayed
       else 0.0);
    rv_checkpoint_us = checkpoint_us;
    rv_committed = rep.Core.Db.r_committed;
    rv_horizon = horizon;
  }

(* {1 Exploration probe}

   The DPOR schedule explorer on the write-skew 4-cycle (full mode) or the
   §4.7 5-chain (quick): wall-clock schedules/sec is the baseline-style
   rate, while the executed count, distinct-outcome count and reduction
   factor are simulated results — deterministic, identical on every run.
   tools/check_bench.sh fails `@ci` if the reduction factor drops below 4
   (the acceptance threshold; in practice it is orders of magnitude
   higher). *)

type explore_probe = {
  xp_spec : string;
  xp_executed : int;  (** deterministic: schedules executed *)
  xp_bound : int;  (** multinomial brute-force count *)
  xp_outcomes : int;  (** deterministic: distinct outcome digests *)
  xp_reduction : float;  (** bound / executed *)
  xp_wall : float;
  xp_rate : float;  (** schedules per wall second *)
}

let explore_probe ~quick =
  let spec_name, spec =
    if quick then ("paper-4.7-5", Interleave.paper_spec_5)
    else ("write-skew-4", Interleave.write_skew_spec_4)
  in
  let wall, (digests, st) =
    time (fun () -> Explore.explore ~isolation:Core.Types.Serializable spec)
  in
  {
    xp_spec = spec_name;
    xp_executed = st.Explore.executed;
    xp_bound = st.Explore.bound;
    xp_outcomes = List.length digests;
    xp_reduction =
      float_of_int st.Explore.bound /. float_of_int (max 1 st.Explore.executed);
    xp_wall = wall;
    xp_rate = (if wall > 0.0 then float_of_int st.Explore.executed /. wall else 0.0);
  }

(* {1 Attribution probe}

   The per-resource contention sketch (PR 10): the deterministic side runs
   the timeline probe's contended workload with a sketch-carrying sink and
   reports the update count, tracked cardinality, worst per-entry overcount
   and total certificate blame — all simulated results, identical on every
   host. The wall side is a pure sketch microbench (capacity 256 under a
   4096-key LCG stream, so evictions fire constantly) reported as ns per
   update. tools/check_bench.sh fails `@ci` if the deterministic side
   recorded nothing or the overcount breaks the N/capacity bound. *)

type attrib_probe = {
  at_updates : int;  (** deterministic: sketch updates in the traced run *)
  at_tracked : int;  (** deterministic: resources tracked at end of run *)
  at_error_bound : int;  (** deterministic: max per-entry overcount *)
  at_blame : int;  (** deterministic: blame counters after the cert fold *)
  at_update_ns : float;  (** median wall ns per sketch update *)
}

let attrib_probe ~quick =
  let clients = 8 in
  let per_client = (if quick then 4000 else 16_000) / clients in
  let keys = 64 in
  let sim = Sim.create () in
  let db = Core.Db.create ~config:(Core.Config.bdb ()) sim in
  let obs = Obs.create ~trace:false ~metrics:false ~provenance:true ~sketch:256 () in
  Core.Db.set_obs db obs;
  ignore (Core.Db.create_table db "t");
  Core.Db.load db "t" (List.init keys (fun i -> (Printf.sprintf "k%03d" i, "0")));
  for client = 1 to clients do
    Sim.spawn sim (fun () ->
        let st = Random.State.make [| 7; client |] in
        for _ = 1 to per_client do
          let r = Printf.sprintf "k%03d" (Random.State.int st keys) in
          let w = Printf.sprintf "k%03d" (Random.State.int st keys) in
          match
            Core.Db.run db Core.Types.Serializable (fun t ->
                ignore (Core.Txn.read t "t" r);
                Core.Txn.write t "t" w "1")
          with
          | Ok () | Error _ -> ()
        done)
  done;
  Sim.run sim;
  let sk = Option.get (Obs.sketch obs) in
  Attrib.blame sk (Obs.certs obs);
  let blame =
    List.fold_left
      (fun acc (_, s) ->
        acc + s.Sketch.st_blame_in + s.Sketch.st_blame_out + s.Sketch.st_blame_fcw)
      0 (Sketch.entries sk)
  in
  (* Pure update cost: precomputed keys so the measurement is the sketch
     probe + bump, not string formatting. *)
  let pool = Array.init 4096 (Printf.sprintf "r/t/k%04d") in
  let n = (if quick then 200_000 else 1_000_000) in
  let bench () =
    let s = Sketch.create ~capacity:256 in
    let x = ref 12345 in
    for _ = 1 to n do
      x := ((!x * 1103515245) + 12345) land 0xFFF;
      let st = Sketch.touch s pool.(!x) in
      st.Sketch.st_conflicts <- st.Sketch.st_conflicts + 1
    done;
    0.0
  in
  let walls = List.init 5 (fun _ -> fst (time bench)) in
  {
    at_updates = Sketch.total sk;
    at_tracked = Sketch.cardinality sk;
    at_error_bound = Sketch.error_bound sk;
    at_blame = blame;
    at_update_ns = median walls /. float_of_int n *. 1e9;
  }

(* {1 End-to-end sweep: wall time and determinism across -j} *)

type sweep_point = { sp_j : int; sp_wall : float; sp_speedup : float }

(* Run the same fuzz campaign at each -j: wall time gives the speedup curve;
   the summaries must be identical or the harness itself is broken. *)
let sweep ~quick =
  let cases = if quick then 400 else 2000 in
  let campaign pool =
    Fuzz.run_campaign ?pool ~seed:3 ~cases ~matrix:Fuzzcase.matrix_full ()
  in
  let fingerprint (s : Fuzz.summary) =
    (s.Fuzz.s_cases, s.Fuzz.s_si_anomalies, s.Fuzz.s_ssi_unsafe, s.Fuzz.s_false_positives,
     List.length s.Fuzz.s_failures)
  in
  let points =
    List.map
      (fun j ->
        let wall, s =
          time (fun () ->
              if j = 1 then campaign None else Par.with_pool ~j (fun p -> campaign (Some p)))
        in
        (j, wall, fingerprint s))
      [ 1; 2; 4 ]
  in
  let _, base_wall, base_fp = List.hd points in
  List.iter
    (fun (j, _, fp) ->
      if fp <> base_fp then begin
        Printf.eprintf "FATAL: end-to-end sweep result differs between -j 1 and -j %d\n" j;
        exit 2
      end)
    points;
  List.map
    (fun (j, wall, _) ->
      { sp_j = j; sp_wall = wall; sp_speedup = (if wall > 0.0 then base_wall /. wall else 0.0) })
    points

(* {1 JSON emission and baseline parsing} *)

(* One bench object per line, so the baseline comparison (here and in
   tools/check_bench.sh) can parse without a JSON library. *)
let emit_json oc ~quick entries sweep_points ab_entries tp mp rv xp ap =
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"schema\": \"ssi-bench/1\",\n";
  Printf.fprintf oc "  \"quick\": %b,\n" quick;
  Printf.fprintf oc "  \"recommended_domains\": %d,\n" (Par.recommended ());
  Printf.fprintf oc "  \"benches\": [\n";
  let n = List.length entries in
  List.iteri
    (fun i e ->
      Printf.fprintf oc
        "    {\"name\": \"%s\", \"runs\": %d, \"wall_s\": %.6f, \"rate\": %.1f, \"check\": %.6f}%s\n"
        e.e_name e.e_runs e.e_wall (rate e) e.e_check
        (if i = n - 1 then "" else ","))
    entries;
  Printf.fprintf oc "  ],\n";
  Printf.fprintf oc "  \"speedup\": [\n";
  let m = List.length sweep_points in
  List.iteri
    (fun i p ->
      Printf.fprintf oc "    {\"j\": %d, \"wall_s\": %.6f, \"speedup\": %.3f}%s\n" p.sp_j
        p.sp_wall p.sp_speedup
        (if i = m - 1 then "" else ","))
    sweep_points;
  Printf.fprintf oc "  ],\n";
  Printf.fprintf oc "  \"obs_overhead\": [\n";
  let k = List.length ab_entries in
  List.iteri
    (fun i a ->
      Printf.fprintf oc
        "    {\"name\": \"%s\", \"runs\": %d, \"no_sink_s\": %.6f, \"null_sink_s\": %.6f, \
         \"delta_pct\": %.3f}%s\n"
        a.ab_name a.ab_runs a.ab_off a.ab_null a.ab_delta_pct
        (if i = k - 1 then "" else ","))
    ab_entries;
  Printf.fprintf oc "  ],\n";
  (* Timeline probe: deterministic commit/abort/window/wasted-work checks
     plus the conservation verdict and the wall cost of one build (one
     line, same greppable convention). *)
  Printf.fprintf oc
    "  \"timeline\": {\"commits\": %d, \"aborts\": %d, \"windows\": %d, \"wasted_s\": %.6f, \
     \"conserved\": %b, \"build_s\": %.6f},\n"
    tp.tp_commits tp.tp_aborts tp.tp_windows tp.tp_wasted tp.tp_conserved tp.tp_build_s;
  (* Deterministic bounded-memory columns (one line, greppable without a JSON
     library — same convention as the bench lines above). *)
  Printf.fprintf oc
    "  \"memory\": {\"budget\": %d, \"commits\": %d, \"max_pressure\": %d, \"within_budget\": \
     %b, \"summarized\": %d, \"promotions\": %d, \"summary_hwm\": %d},\n"
    mp.mp_budget mp.mp_commits mp.mp_max_pressure (mp_within_budget mp) mp.mp_summarized
    mp.mp_promotions mp.mp_summary_hwm;
  (* Recovery replay rate plus its deterministic committed/horizon checks
     (one line, same greppable convention). *)
  Printf.fprintf oc
    "  \"recovery\": {\"records\": %d, \"replay_s\": %.6f, \"us_per_record\": %.3f, \
     \"checkpoint_us\": %.3f, \"committed\": %d, \"horizon\": %d},\n"
    rv.rv_records rv.rv_replay_s rv.rv_us_per_record rv.rv_checkpoint_us rv.rv_committed
    rv.rv_horizon;
  (* DPOR explorer line: executed/bound/outcomes are deterministic, the rate
     is wall-clock (one line, same greppable convention). *)
  Printf.fprintf oc
    "  \"exploration\": {\"spec\": \"%s\", \"executed\": %d, \"bound\": %d, \"outcomes\": %d, \
     \"reduction\": %.1f, \"wall_s\": %.6f, \"schedules_per_s\": %.1f},\n"
    xp.xp_spec xp.xp_executed xp.xp_bound xp.xp_outcomes xp.xp_reduction xp.xp_wall xp.xp_rate;
  (* Attribution sketch: deterministic update/cardinality/overcount/blame
     checks plus the sketch-update wall cost (one line, same greppable
     convention; deliberately no "name"/"rate" pair, which would make
     [parse_baseline] read it as a bench line). *)
  Printf.fprintf oc
    "  \"attribution\": {\"updates\": %d, \"tracked\": %d, \"error_bound\": %d, \"blame\": %d, \
     \"sketch_update_ns\": %.2f}\n"
    ap.at_updates ap.at_tracked ap.at_error_bound ap.at_blame ap.at_update_ns;
  Printf.fprintf oc "}\n"

(* Tiny substring scanners so the baseline loads without a JSON library. *)
let after line marker =
  let ml = String.length marker in
  let n = String.length line in
  let rec go i =
    if i + ml > n then None
    else if String.sub line i ml = marker then Some (i + ml)
    else go (i + 1)
  in
  go 0

let find_quoted line marker =
  match after line marker with
  | None -> None
  | Some i -> (
      match String.index_from_opt line i '"' with
      | None -> None
      | Some j -> Some (String.sub line i (j - i)))

let find_float line marker =
  match after line marker with
  | None -> None
  | Some i ->
      let n = String.length line in
      let j = ref i in
      while
        !j < n
        && (match line.[!j] with '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true | _ -> false)
      do
        incr j
      done;
      float_of_string_opt (String.sub line i (!j - i))

(* Extract ("name", rate) pairs from a BENCH_ssi.json written by [emit_json]
   (or hand-maintained in the same one-object-per-line shape). *)
let parse_baseline file : (string * float) list =
  let ic = open_in file in
  let out = ref [] in
  (try
     while true do
       let line = input_line ic in
       (* only bench lines carry both a name and a rate *)
       match (find_quoted line "\"name\": \"", find_float line "\"rate\": ") with
       | Some name, Some r -> out := (name, r) :: !out
       | _ -> ()
     done
   with End_of_file -> close_in ic);
  List.rev !out

let compare_baseline ~max_regress entries baseline =
  let failures = ref 0 in
  List.iter
    (fun e ->
      match List.assoc_opt e.e_name baseline with
      | None -> Printf.printf "  %-22s %10.0f /s  (no baseline)\n" e.e_name (rate e)
      | Some base_rate ->
          let r = rate e in
          let factor = if r > 0.0 then base_rate /. r else infinity in
          let flag = factor > max_regress in
          if flag then incr failures;
          Printf.printf "  %-22s %10.0f /s  baseline %10.0f /s  x%.2f%s\n" e.e_name r base_rate
            factor
            (if flag then "  REGRESSION" else ""))
    entries;
  !failures

let run quick out baseline max_regress =
  let entries =
    List.map
      (fun (name, runs, f) ->
        let wall, check = time (fun () -> f runs ()) in
        let e = { e_name = name; e_runs = runs; e_wall = wall; e_check = check } in
        Printf.printf "  %-22s %8d runs  %8.3fs  %10.0f /s  check=%g\n%!" name runs wall
          (rate e) check;
        e)
      (micros ~quick)
  in
  print_endline "  end-to-end fuzz sweep (identical results required at every -j):";
  let sw = sweep ~quick in
  List.iter
    (fun p -> Printf.printf "    -j %d  %8.3fs  speedup x%.2f\n%!" p.sp_j p.sp_wall p.sp_speedup)
    sw;
  print_endline "  obs overhead (best wall, no sink vs channels-off sink installed):";
  let ab = obs_overhead ~quick in
  List.iter
    (fun a ->
      Printf.printf "    %-22s %8.3fs vs %8.3fs  delta %+.2f%%\n%!" a.ab_name a.ab_off a.ab_null
        a.ab_delta_pct)
    ab;
  print_endline "  timeline probe (traced contended run, deterministic checks):";
  let tp = timeline_probe ~quick in
  Printf.printf
    "    %d commits  %d aborts  %d windows  wasted %.4fs  build %.4fs  %s\n%!" tp.tp_commits
    tp.tp_aborts tp.tp_windows tp.tp_wasted tp.tp_build_s
    (if tp.tp_conserved then "CONSERVED" else "LEDGER VIOLATION");
  if not tp.tp_conserved then begin
    Printf.eprintf "FATAL: wasted-work ledger violated conservation\n";
    exit 2
  end;
  print_endline "  bounded-memory probe (10k commits under budget 64, deterministic):";
  let mp = memory_probe () in
  Printf.printf "    max pressure %d/%d  summarized %d  promotions %d  summary hwm %d  %s\n%!"
    mp.mp_max_pressure mp.mp_budget mp.mp_summarized mp.mp_promotions mp.mp_summary_hwm
    (if mp_within_budget mp then "WITHIN BUDGET" else "OVER BUDGET");
  if not (mp_within_budget mp) then begin
    Printf.eprintf "FATAL: bounded run exceeded its memory budget (%d > %d)\n" mp.mp_max_pressure
      mp.mp_budget;
    exit 2
  end;
  print_endline "  recovery probe (WAL replay into a fresh engine, deterministic checks):";
  let rv = recovery_probe ~quick in
  Printf.printf
    "    %d records in %.3fs (%.2f us/record)  checkpoint %.2f us  committed %d  horizon %d\n%!"
    rv.rv_records rv.rv_replay_s rv.rv_us_per_record rv.rv_checkpoint_us rv.rv_committed
    rv.rv_horizon;
  print_endline "  exploration probe (DPOR vs multinomial bound, deterministic counts):";
  let xp = explore_probe ~quick in
  Printf.printf
    "    %s: %d of %d schedules (%.1fx reduction)  %d outcomes  %.3fs  %.0f schedules/s\n%!"
    xp.xp_spec xp.xp_executed xp.xp_bound xp.xp_reduction xp.xp_outcomes xp.xp_wall xp.xp_rate;
  print_endline "  attribution probe (contention sketch, deterministic checks):";
  let ap = attrib_probe ~quick in
  Printf.printf "    %d updates  %d tracked  overcount<=%d  blame %d  %.1f ns/update\n%!"
    ap.at_updates ap.at_tracked ap.at_error_bound ap.at_blame ap.at_update_ns;
  let oc = open_out out in
  emit_json oc ~quick entries sw ab tp mp rv xp ap;
  close_out oc;
  Printf.printf "  wrote %s\n" out;
  match baseline with
  | None -> ()
  | Some file ->
      Printf.printf "  baseline %s (max regression factor %.1f):\n" file max_regress;
      let failures = compare_baseline ~max_regress entries (parse_baseline file) in
      if failures > 0 then begin
        Printf.printf "  %d bench(es) regressed more than %.1fx\n" failures max_regress;
        exit 1
      end

let cmd =
  let quick_arg = Arg.(value & flag & info [ "quick" ] ~doc:"Reduced iteration counts") in
  let out_arg =
    Arg.(
      value
      & opt string "BENCH_ssi.json"
      & info [ "out" ] ~docv:"FILE" ~doc:"Where to write the JSON report")
  in
  let baseline_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:"Compare against a previous report; exit 1 on regression")
  in
  let regress_arg =
    Arg.(
      value & opt float 2.0
      & info [ "max-regress" ] ~docv:"F"
          ~doc:"Maximum allowed slowdown factor vs the baseline (wall clock is noisy; keep generous)")
  in
  Cmd.v
    (Cmd.info "perf"
       ~doc:
         "Hot-path microbenchmarks and a timed end-to-end sweep; writes BENCH_ssi.json and \
          optionally gates on a baseline")
    Term.(const run $ quick_arg $ out_arg $ baseline_arg $ regress_arg)
