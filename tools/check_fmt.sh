#!/bin/sh
# Formatting gate: `dune build @fmt` against the committed .ocamlformat.
#
# The build container does not ship the ocamlformat binary (only the dune
# side of the toolchain), so the check is gated: when ocamlformat is
# missing we skip with a notice instead of failing every build. CI images
# that do install ocamlformat get the real check.
set -e
cd "$(dirname "$0")/.."
if command -v ocamlformat >/dev/null 2>&1; then
  exec dune build @fmt
else
  echo "check_fmt: ocamlformat not installed; skipping format check" >&2
  exit 0
fi
