#!/bin/sh
# Formatting gate: `dune build @fmt` against the committed .ocamlformat.
#
# The build container does not ship the ocamlformat binary (only the dune
# side of the toolchain), so the check is gated: when ocamlformat is
# missing we skip with a notice instead of failing every build. CI images
# that do install ocamlformat get the real check.
set -e
cd "$(dirname "$0")/.."
if command -v ocamlformat >/dev/null 2>&1; then
  if [ -n "${INSIDE_DUNE:-}" ]; then
    # A dune action may not invoke dune recursively (the build lock is
    # held), so when the @ci alias runs this script we check the sources
    # directly instead of via @fmt.
    find bin bench examples lib test -name '.*' -type d -prune -o \
      \( -name '*.ml' -o -name '*.mli' \) -print0 \
      | xargs -0 ocamlformat --check
  else
    exec dune build @fmt
  fi
else
  echo "check_fmt: ocamlformat not installed; skipping format check" >&2
  exit 0
fi
