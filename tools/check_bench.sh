#!/bin/sh
# Perf-regression gate: run `ssi_bench perf --quick`, validate the
# BENCH_ssi.json schema, and fail if any hot-path microbenchmark regressed
# more than MAX_REGRESS (default 2x) against the checked-in baseline.
#
# The 2x factor is deliberately generous: wall clock on shared CI machines
# is noisy, and the baseline in tools/bench_baseline.json was recorded on a
# single-core container. The deterministic cross-check (identical simulated
# results at every -j) is enforced by `perf` itself and is not subject to
# the factor — it fails the run outright.
#
# Inside a dune action (INSIDE_DUNE set) we may not invoke dune again, so
# the rule passes the already-built binary via SSI_BENCH.
set -e
cd "$(dirname "$0")/.."

BIN="${SSI_BENCH:-}"
if [ -z "$BIN" ]; then
  if [ -n "${INSIDE_DUNE:-}" ]; then
    echo "check_bench: INSIDE_DUNE but SSI_BENCH not set" >&2
    exit 1
  fi
  dune build bin/ssi_bench.exe
  BIN=_build/default/bin/ssi_bench.exe
fi

out="${TMPDIR:-/tmp}/BENCH_ssi.$$.json"
trap 'rm -f "$out"' EXIT

"$BIN" perf --quick --out "$out" \
  --baseline tools/bench_baseline.json --max-regress "${MAX_REGRESS:-2.0}"

# Schema validation: the one-object-per-line shape downstream tooling (and
# perf --baseline itself) relies on.
grep -q '"schema": "ssi-bench/1"' "$out" || { echo "check_bench: missing/unknown schema" >&2; exit 1; }
grep -q '"benches": \[' "$out" || { echo "check_bench: missing benches array" >&2; exit 1; }
grep -q '"speedup": \[' "$out" || { echo "check_bench: missing speedup array" >&2; exit 1; }
n=$(grep -c '"name": "' "$out")
if [ "$n" -lt 6 ]; then
  echo "check_bench: expected >= 6 microbenches, found $n" >&2
  exit 1
fi
grep -q '"name": "summarize-path"' "$out" || { echo "check_bench: missing summarize-path microbench" >&2; exit 1; }
j=$(grep -c '"j": ' "$out")
if [ "$j" -lt 3 ]; then
  echo "check_bench: expected >= 3 speedup points, found $j" >&2
  exit 1
fi

# Observability-overhead gate: with no sink installed the engine hot paths
# must carry no observability cost. `perf` measures the commit-path and
# lock-manager microbenches with and without a channels-off sink attached
# (paired reps, best ratio — see bin/perf_cmd.ml) and reports the delta as
# a percentage; any delta above OBS_OVERHEAD_MAX (default 2%) fails.
grep -q '"obs_overhead": \[' "$out" || { echo "check_bench: missing obs_overhead section" >&2; exit 1; }
obs_max="${OBS_OVERHEAD_MAX:-2.0}"
deltas=$(sed -n 's/.*"delta_pct": \(-\{0,1\}[0-9.][0-9.]*\).*/\1/p' "$out")
[ -n "$deltas" ] || { echo "check_bench: no obs_overhead deltas found" >&2; exit 1; }
k=0
for d in $deltas; do
  k=$((k + 1))
  if awk -v d="$d" -v max="$obs_max" 'BEGIN { exit !(d > max) }'; then
    echo "check_bench: observability overhead ${d}% exceeds ${obs_max}% with no sink installed" >&2
    exit 1
  fi
done
if [ "$k" -lt 4 ]; then
  echo "check_bench: expected >= 4 obs_overhead entries (commit path, lock manager, timeline build, sketch-on commit path), found $k" >&2
  exit 1
fi

# Timeline gate: the windowed-telemetry probe must be present, must have
# bucketed a non-trivial run into windows, and the wasted-work ledger must
# balance (committed + wasted + in-flight covers every begin->outcome span).
# `perf` itself exits 2 on a ledger violation; the greps also protect
# against the probe being silently dropped from the report.
grep -q '"timeline": {' "$out" || { echo "check_bench: missing timeline section" >&2; exit 1; }
grep -q '"timeline": {[^}]*"conserved": true' "$out" || { echo "check_bench: timeline probe reports a wasted-work ledger violation" >&2; exit 1; }
tlwin=$(sed -n 's/.*"timeline": {[^}]*"windows": \([0-9][0-9]*\).*/\1/p' "$out")
if [ -z "$tlwin" ] || [ "$tlwin" -eq 0 ]; then
  echo "check_bench: timeline probe produced no windows" >&2
  exit 1
fi

# Bounded-memory gate: the deterministic 10k-commit bounded run recorded in
# the report must have kept retained committed-transaction records plus live
# SIREAD lock-table entries within its memory budget at every commit —
# i.e. granularity promotion + summarization actually reclaim memory.
# `perf` itself exits 2 if the budget is breached; the greps here also
# protect against the probe being silently dropped from the report.
grep -q '"memory": {' "$out" || { echo "check_bench: missing memory section" >&2; exit 1; }
grep -q '"within_budget": true' "$out" || { echo "check_bench: bounded run exceeded its memory budget" >&2; exit 1; }
summarized=$(sed -n 's/.*"summarized": \([0-9][0-9]*\).*/\1/p' "$out")
if [ -z "$summarized" ] || [ "$summarized" -eq 0 ]; then
  echo "check_bench: bounded run never summarized a committed transaction" >&2
  exit 1
fi

# Recovery gate: the WAL-replay probe must be present and must actually have
# recovered transactions — a recovery path that silently drops committed
# work would report committed=0 here long before any fuzz campaign notices.
grep -q '"recovery": {' "$out" || { echo "check_bench: missing recovery section" >&2; exit 1; }
recovered=$(sed -n 's/.*"recovery": {[^}]*"committed": \([0-9][0-9]*\).*/\1/p' "$out")
if [ -z "$recovered" ] || [ "$recovered" -eq 0 ]; then
  echo "check_bench: recovery probe recovered no committed transactions" >&2
  exit 1
fi
replayed=$(sed -n 's/.*"recovery": {"records": \([0-9][0-9]*\).*/\1/p' "$out")
if [ -z "$replayed" ] || [ "$replayed" -eq 0 ]; then
  echo "check_bench: recovery probe replayed no records" >&2
  exit 1
fi

# Exploration gate: the DPOR probe must be present, must beat brute-force
# enumeration by at least 4x (the acceptance threshold; in practice the
# reduction is an order of magnitude larger), and must report a positive
# schedules/sec rate. executed/bound/outcomes are deterministic, so a
# reduction regression here means the race analysis got weaker, not that
# the machine was slow.
grep -q '"exploration": {' "$out" || { echo "check_bench: missing exploration section" >&2; exit 1; }
reduction=$(sed -n 's/.*"reduction": \([0-9.][0-9.]*\).*/\1/p' "$out")
[ -n "$reduction" ] || { echo "check_bench: exploration section has no reduction factor" >&2; exit 1; }
if awk -v r="$reduction" 'BEGIN { exit !(r < 4.0) }'; then
  echo "check_bench: DPOR reduction factor ${reduction}x below the 4x threshold" >&2
  exit 1
fi
schedrate=$(sed -n 's/.*"schedules_per_s": \([0-9.][0-9.]*\).*/\1/p' "$out")
[ -n "$schedrate" ] || { echo "check_bench: exploration section has no schedules_per_s" >&2; exit 1; }
if awk -v r="$schedrate" 'BEGIN { exit !(r <= 0.0) }'; then
  echo "check_bench: exploration rate ${schedrate} schedules/s is not positive" >&2
  exit 1
fi

# Attribution gate: the contention-sketch probe must be present, must have
# recorded updates from the contended run (an engine hook that silently
# stopped feeding the sketch shows up as updates=0 here), and the measured
# sketch-update cost must be a positive number. updates/tracked/
# error_bound/blame are deterministic simulated results.
grep -q '"attribution": {' "$out" || { echo "check_bench: missing attribution section" >&2; exit 1; }
atupd=$(sed -n 's/.*"attribution": {"updates": \([0-9][0-9]*\).*/\1/p' "$out")
if [ -z "$atupd" ] || [ "$atupd" -eq 0 ]; then
  echo "check_bench: attribution sketch recorded no updates" >&2
  exit 1
fi
atns=$(sed -n 's/.*"sketch_update_ns": \([0-9.][0-9.]*\).*/\1/p' "$out")
[ -n "$atns" ] || { echo "check_bench: attribution section has no sketch_update_ns" >&2; exit 1; }
if awk -v r="$atns" 'BEGIN { exit !(r <= 0.0) }'; then
  echo "check_bench: sketch update cost ${atns} ns is not positive" >&2
  exit 1
fi

echo "check_bench: OK ($n benches within ${MAX_REGRESS:-2.0}x of baseline, $j speedup points, obs overhead <= ${obs_max}% on $k hot paths, bounded run within budget with $summarized txns summarized, recovery replayed $replayed records / $recovered commits, DPOR reduction ${reduction}x at ${schedrate} schedules/s, timeline ledger conserved over $tlwin windows, attribution sketch $atupd updates at ${atns} ns/update)"
