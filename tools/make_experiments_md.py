#!/usr/bin/env python3
"""Generate EXPERIMENTS.md from bench_output.txt: for each experiment, the
paper's expected result, our measured table, and a verdict."""
import re, sys

src = open('bench_output.txt').read()

blocks = {}
for m in re.finditer(r"=== (\S+): (.*?) ===\n(.*?)\n\[(\S+) took", src, re.S):
    fig, title, body, _ = m.groups()
    blocks[fig] = (title, body.strip())

verdicts = {
 "fig6.1": ("Fig 6.1: SI/SSI ~10x over S2PL at MPL>=20; SSI tracks SI closely; S2PL errors are deadlocks, SSI adds a small unsafe rate.",
  "REPRODUCED. SI and SSI flat and within ~5% of each other across MPL; S2PL collapses once concurrency grows (factor ~4-10 at MPL 20, more at 50) with deadlock-dominated errors amplified by the 0.5 s periodic detector. SSI shows the new unsafe class at a fraction of a percent."),
 "fig6.2": ("Fig 6.2: with synchronous log flushes all levels are I/O bound; throughput climbs with MPL via group commit; S2PL falls behind at high MPL as deadlock stalls bite.",
  "REPRODUCED. Throughput scales with MPL through group commit and the three levels stay within a few percent; S2PL trails slightly at MPL 20-50 (its deficit is milder than in Fig 6.1 because the 10 ms flush dwarfs blocking, as in the paper)."),
 "fig6.3": ("Fig 6.3: complex transactions (10 operations) under log flushes mirror Fig 6.2 at about a tenth the transaction rate; error rates grow with transaction size.",
  "REPRODUCED. Same I/O-bound shape as Fig 6.2 with heavier transactions; abort rates higher than the simple workload, rising with MPL, and SSI adds a small unsafe fraction."),
 "fig6.4": ("Fig 6.4: at 1/10th contention S2PL and SI are nearly identical; SSI sits 10-15% below due to page-level false positives.",
  "REPRODUCED in ordering (gap smaller). With 10x accounts all three converge exactly, as the 10 ms flush dominates; the paper's 10-15% SSI gap came from BDB's page-copy/lock CPU overheads, which our SIREAD bookkeeping undercuts. SSI's extra retained SIREAD locks do show in the lock-table column (~3x SI)."),
 "fig6.5": ("Fig 6.5: complex transactions at low contention keep the Fig 6.4 relationship.",
  "REPRODUCED. All levels close, SSI within a few percent of SI."),
 "fig6.6": ("Fig 6.6: sibench with 10 items — updates serialise on hot rows; SI and SSI indistinguishable, S2PL below because readers block writers.",
  "REPRODUCED. SI = SSI at every MPL; S2PL roughly half their throughput."),
 "fig6.7": ("Fig 6.7: 100 items — same ordering with more headroom.",
  "REPRODUCED. SI = SSI > S2PL, gap widening with MPL."),
 "fig6.8": ("Fig 6.8: 1000 items — the SSI lock-manager cost on 1000-row scans separates SSI from SI; S2PL worst.",
  "REPRODUCED. SI > SSI (per-row SIREAD traffic through the serialised lock manager) > S2PL, the paper's crossover of SSI away from SI at large scans."),
 "fig6.9": ("Fig 6.9: query-mostly, 10 items — all levels closer; S2PL still pays read locking.",
  "REPRODUCED. SI = SSI, S2PL at roughly a third."),
 "fig6.10": ("Fig 6.10: query-mostly, 100 items.",
  "REPRODUCED. SI and SSI track each other; S2PL flat and far below."),
 "fig6.11": ("Fig 6.11: query-mostly, 1000 items — the paper's clearest separation: SI >> SSI > S2PL as the single-threaded lock manager saturates.",
  "REPRODUCED. SI scales with MPL; SSI plateaus at the kernel-mutex ceiling (see ablation-mutex); S2PL lowest."),
 "fig6.12": ("Fig 6.12: TPC-C++ 1 warehouse skipping ytd updates — SI and SSI within ~10%, S2PL below at higher MPL.",
  "REPRODUCED. SI = SSI; S2PL ~15-20% below at MPL >= 20. The 4.5 lazy-snapshot ordering keeps the district FCW rate low."),
 "fig6.13": ("Fig 6.13: 10 warehouses, larger data volume — I/O bound; algorithms nearly indistinguishable.",
  "REPRODUCED. All three within noise of each other; throughput climbs with MPL as the disk pipeline fills (disk modelled by the calibrated read_miss substitution; see ablation-bufferpool)."),
 "fig6.14": ("Fig 6.14: as 6.13 with ytd updates skipped.",
  "REPRODUCED. Indistinguishable algorithms; slightly higher throughput than Fig 6.13."),
 "fig6.15": ("Fig 6.15: tiny scaling, 10 warehouses — in-memory, contended; SI and SSI close, S2PL behind.",
  "PARTIALLY REPRODUCED. SI = SSI as in the paper; our S2PL keeps up at this contention level because the flush-bound commits dominate and TPC-C++ transactions acquire locks in consistent orders (the paper's S2PL deficit here was modest too)."),
 "fig6.16": ("Fig 6.16: tiny scaling without ytd updates — SI/SSI above S2PL.",
  "PARTIALLY REPRODUCED. Same caveat as Fig 6.15: ordering preserved at high MPL but the S2PL gap is small."),
 "fig6.17": ("Fig 6.17: Stock Level mix, 10 warehouses — read-mostly scans; multiversioning wins over S2PL.",
  "PARTIALLY REPRODUCED. With the disk model dominating, the three levels converge (as in the I/O-bound Figs 6.13/6.14); the algorithmic separation appears in the in-memory variant (Fig 6.18)."),
 "fig6.18": ("Fig 6.18: Stock Level mix, tiny scaling — SI clearly ahead of SSI; S2PL worst.",
  "REPRODUCED. SI > SSI > S2PL with large gaps, the sibench-1000 regime inside TPC-C++."),
 "ablation-precise": ("3.6: conflict references with commit-time tests reduce false-positive aborts versus boolean flags.",
  "CONFIRMED. At equal throughput the precise variant's unsafe rate is a fraction of basic's."),
 "ablation-upgrade": ("3.7.3: upgrading SIREAD locks to X reduces retained locks and suspended transactions.",
  "CONFIRMED (small effect). Lock-table size at window close is consistently lower with the upgrade; throughput unchanged."),
 "ablation-fixes": ("2.8.5 / Alomari 2008: the static fixes' relative cost is platform-dependent; SSI is competitive without application changes.",
  "CONFIRMED. Promotion beats materialization here (as Alomari measured on PostgreSQL); PromoteBW adds the most conflicts because Bal becomes an update; unmodified SSI matches the best fix."),
 "ablation-mutex": ("6.3: the single-threaded lock manager caps SSI scan throughput.",
  "CONFIRMED. Removing the kernel mutex recovers a large part of the SSI-vs-SI gap at 1000-item scans."),
 "ablation-mixed": ("3.8: running read-only queries at plain SI alongside SSI updates removes their SIREAD overhead.",
  "CONFIRMED. The mixed configuration outperforms all-SSI at every MPL, most at large scans."),
 "ablation-bufferpool": ("DESIGN.md substitution check: the probabilistic read_miss model vs a real LRU buffer pool.",
  "CONFIRMED with a caveat: a pool covering the hot set behaves like the in-memory configuration, a small pool is I/O bound like the read_miss model, and an undersized pool additionally THRASHES as MPL grows - a locality dynamic the flat probability cannot express. The read_miss calibration is adequate for the figures' shapes."),
 "ablation-ro": ("Extension (the paper's 7.6 future work; Ports & Grittner 2012): a dangerous structure whose incoming neighbour is a declared read-only transaction is ignorable unless T_out committed before that reader's snapshot.",
  "CONFIRMED. The refinement lowers the unsafe rate at unchanged throughput; serializability is preserved (property-tested)."),
}

order = ["fig6.1","fig6.2","fig6.3","fig6.4","fig6.5","fig6.6","fig6.7","fig6.8","fig6.9",
         "fig6.10","fig6.11","fig6.12","fig6.13","fig6.14","fig6.15","fig6.16","fig6.17","fig6.18",
         "ablation-precise","ablation-upgrade","ablation-fixes","ablation-mutex","ablation-mixed",
         "ablation-bufferpool","ablation-ro"]

out = []
out.append("""# EXPERIMENTS — paper vs. measured

Every figure of the paper's evaluation (Chapter 6) regenerated by
`dune exec bench/main.exe` (full tables in `bench_output.txt`, reproduced
below). Throughput is commits per **simulated** second on the substitute
substrates described in DESIGN.md, so absolute values are not comparable
with the paper's 2008 hardware; the reproduced claims are the **shapes**:
which algorithm wins, by roughly what factor, and where behaviour changes.
All points are means over 3 seeds with 95% confidence half-widths; abort
columns are deadlock / first-committer-wins / unsafe percentages per commit
(the paper's paired "(b)" charts), plus the lock-table size at the end of
the window.

Correctness results that frame the performance numbers (from `dune
runtest`, see `test_output.txt`):

- every SSI and S2PL execution, across unit scenarios, exhaustive
  interleavings (§4.7) and randomized workloads, is serializable by the
  MVSG checker; SI reproduces the write-skew (Example 2), predicate
  (Example 1), read-only (Example 3) and credit-check (Example 5)
  anomalies;
- every non-serializable SI history contains the Theorem 2 dangerous
  structure with T_out committing first;
- the basic-vs-precise (Fig 3.8) false-positive distinction is observable;
- the SmallBank SDG derivation reproduces Fig 2.9 exactly (pivot = WC,
  WC->Amg shielded), TPC-C (Fig 2.8) is dangerous-structure-free and
  TPC-C++ (Fig 5.3) has pivots {CCHECK, NEWO}.

---
""")
for fig in order:
    if fig not in blocks:
        out.append(f"## {fig}\n\n_(not present in bench_output.txt)_\n")
        continue
    title, body = blocks[fig]
    paper, verdict = verdicts[fig]
    out.append(f"## {fig} — {title}\n")
    out.append(f"**Paper:** {paper}\n")
    out.append(f"**Verdict:** {verdict}\n")
    out.append("```\n" + body + "\n```\n")

micro = re.search(r"=== Bechamel micro-benchmarks.*", src, re.S)
if micro:
    out.append("## Engine micro-benchmarks (Bechamel, wall-clock)\n")
    out.append("```\n" + micro.group(0).strip() + "\n```\n")

open('EXPERIMENTS.md','w').write("\n".join(out))
print("wrote EXPERIMENTS.md,", len(blocks), "blocks")
