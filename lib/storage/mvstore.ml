(* Multiversion storage: per-key version chains over a B+tree index.

   Each key maps to a chain of committed versions, newest first. A version
   carries the commit timestamp of its creator, so snapshot visibility is a
   single comparison (§2.4-2.5); [None] values are tombstones left by
   deletes, which stay visible to the conflict-detection machinery (§3.5)
   until garbage collection removes them.

   Uncommitted writes never appear here — the transaction engine buffers
   them in per-transaction write sets and installs them at commit, under the
   exclusive lock that implements first-committer-wins. *)

type ts = int

type txn_id = int

type version = {
  value : string option; (* None = tombstone *)
  commit_ts : ts;
  creator : txn_id;
}

type chain = { mutable versions : version list (* newest first *) }

type t = {
  name : string;
  tree : chain Btree.t;
}

let create ?fanout name = { name; tree = Btree.create ?fanout () }

let name t = t.name

let index t = t.tree

(* Chain for [key], if an index entry exists. *)
let find_chain t key = Btree.find t.tree key

let find_chain_path t key = Btree.find_path t.tree key

(* Chain for [key], creating an empty one (and its index entry) if missing.
   Returns the btree access so page-level locking can cover index writes. *)
let ensure_chain t key =
  match Btree.find_path t.tree key with
  | Some c, access -> (c, access)
  | None, _ ->
      let c = { versions = [] } in
      let access = Btree.insert t.tree key c in
      (c, access)

(* Newest version with commit_ts <= snapshot: what an SI read sees. *)
let visible chain ~snapshot =
  let rec go = function
    | [] -> None
    | v :: rest -> if v.commit_ts <= snapshot then Some v else go rest
  in
  go chain.versions

(* Newest committed version regardless of snapshot: what S2PL reads. *)
let latest chain = match chain.versions with [] -> None | v :: _ -> Some v

(* Committed versions newer than [than] — the "ignored newer versions" that
   flag rw-dependencies in Fig 3.4 and trigger first-committer-wins. *)
let newer_versions chain ~than =
  let rec go acc = function
    | [] -> List.rev acc
    | v :: rest -> if v.commit_ts > than then go (v :: acc) rest else List.rev acc
  in
  go [] chain.versions

let has_newer chain ~than =
  match chain.versions with [] -> false | v :: _ -> v.commit_ts > than

(* Install a committed version at the head of the chain. Versions must be
   installed in commit-timestamp order (the engine holds X locks and commits
   are atomic in the simulator, so this holds by construction). *)
let install chain ~value ~commit_ts ~creator =
  (match chain.versions with
  | v :: _ when v.commit_ts >= commit_ts ->
      invalid_arg "Mvstore.install: commit timestamps must increase along a chain"
  | _ -> ());
  chain.versions <- { value; commit_ts; creator } :: chain.versions

(* Value as of [snapshot], skipping tombstones. *)
let read t key ~snapshot =
  match find_chain t key with
  | None -> None
  | Some c -> ( match visible c ~snapshot with Some { value = Some v; _ } -> Some v | _ -> None)

let read_latest t key =
  match find_chain t key with
  | None -> None
  | Some c -> ( match latest c with Some { value = Some v; _ } -> Some v | _ -> None)

(* Next key in index order after [key] — the gap-locking successor. [None]
   means the supremum (Figs 3.6/3.7). *)
let successor t key = Btree.successor t.tree key

let min_key t = Btree.min_key t.tree

(* Iterate index entries in [lo, hi] (inclusive), exposing the whole chain so
   the engine can both read the snapshot-visible version and detect ignored
   newer versions / tombstones. Returns the btree access footprint. *)
let scan_chains t ?lo ?hi f = Btree.iter_range_access t.tree ?lo ?hi f

(* Canonical textual image of the committed store, the recovery oracle's
   store-equivalence witness: one line per version, keys in index order,
   each chain oldest-first, versions above [max_ts] omitted. Key and value
   are length-prefixed so arbitrary bytes (fuzzer keys contain anything)
   cannot make two different stores render identically. *)
let dump ?(max_ts = max_int) t buf =
  ignore
    (scan_chains t (fun key chain ->
         List.iter
           (fun v ->
             if v.commit_ts <= max_ts then begin
               Buffer.add_string buf
                 (Printf.sprintf "%s/%d:%s@%d=" t.name (String.length key) key v.commit_ts);
               (match v.value with
               | Some s -> Buffer.add_string buf (Printf.sprintf "%d:%s" (String.length s) s)
               | None -> Buffer.add_char buf '~');
               Buffer.add_char buf '\n'
             end)
           (List.rev chain.versions)))

(* Number of distinct keys with an index entry (live or tombstoned). *)
let key_count t = Btree.length t.tree

let version_count t =
  Btree.fold_range t.tree ?lo:None ?hi:None ~init:0 ~f:(fun acc _ c ->
      acc + List.length c.versions)

(* Drop versions that no current or future snapshot can read: keep the
   newest version with commit_ts <= min_snapshot plus everything newer.
   Chains reduced to a lone tombstone older than [min_snapshot] are removed
   from the index entirely (§3.5: a tombstone can go once no transaction
   could read the last live version). *)
let gc t ~min_snapshot =
  let doomed = ref [] in
  Btree.iter_range t.tree (fun key c ->
      let rec keep = function
        | [] -> []
        | v :: rest ->
            if v.commit_ts <= min_snapshot then [ v ] (* newest visible-to-all; drop older *)
            else v :: keep rest
      in
      c.versions <- keep c.versions;
      match c.versions with
      | [ { value = None; commit_ts; _ } ] when commit_ts <= min_snapshot ->
          doomed := key :: !doomed
      | [] -> doomed := key :: !doomed
      | _ -> ());
  List.iter (fun k -> ignore (Btree.remove t.tree k)) !doomed;
  List.length !doomed
