(** Multiversion storage: per-key version chains over a {!Btree} index.

    Pure data layer — no locking, no simulated time. The transaction engine
    buffers uncommitted writes and installs committed versions here, newest
    first. Deleted keys keep a tombstone version so snapshot reads and
    conflict detection keep working until {!gc} reclaims them (§3.5). *)

type ts = int

type txn_id = int

type version = {
  value : string option;  (** [None] is a tombstone *)
  commit_ts : ts;
  creator : txn_id;
}

(** Mutable chain of committed versions, newest first. *)
type chain = { mutable versions : version list }

type t

val create : ?fanout:int -> string -> t

val name : t -> string

(** The underlying index (page ids are used for page-granularity locking). *)
val index : t -> chain Btree.t

val find_chain : t -> string -> chain option

val find_chain_path : t -> string -> chain option * Btree.access

(** Chain for a key, creating an empty one (and the index entry) if missing. *)
val ensure_chain : t -> string -> chain * Btree.access

(** Newest version with [commit_ts <= snapshot] — what an SI read sees. *)
val visible : chain -> snapshot:ts -> version option

(** Newest committed version — what an S2PL read sees. *)
val latest : chain -> version option

(** Committed versions newer than [than], newest first: the ignored newer
    versions of Fig 3.4 and the first-committer-wins witnesses. *)
val newer_versions : chain -> than:ts -> version list

val has_newer : chain -> than:ts -> bool

(** Install a committed version; timestamps must increase along a chain. *)
val install : chain -> value:string option -> commit_ts:ts -> creator:txn_id -> unit

(** Snapshot read of a key, skipping tombstones. *)
val read : t -> string -> snapshot:ts -> string option

val read_latest : t -> string -> string option

(** Next index key after [key] ([None] = supremum) for gap locking. *)
val successor : t -> string -> string option

val min_key : t -> string option

(** Inclusive range iteration over chains, reporting the index pages used. *)
val scan_chains : t -> ?lo:string -> ?hi:string -> (string -> chain -> unit) -> Btree.access

(** Append a canonical textual image of the committed store: one line per
    version ([<table>/<len>:<key>@<ts>=<len>:<value>], [~] for a
    tombstone), keys in index order, chains oldest-first, versions above
    [max_ts] omitted. Byte-equality of dumps is the recovery oracle's
    store-equivalence check. *)
val dump : ?max_ts:ts -> t -> Buffer.t -> unit

val key_count : t -> int

val version_count : t -> int

(** Reclaim versions no snapshot [>= min_snapshot] can read; returns the
    number of index entries removed outright. *)
val gc : t -> min_snapshot:ts -> int
