(* Write-ahead log with group commit, logical redo records and deterministic
   crash injection.

   Commit durability dominates transaction response time in the paper's
   "long transactions" experiments (Fig 6.2-6.5): a synchronous log flush
   costs ~10ms, but one physical flush hardens every record appended before
   it was issued, so concurrent committers share flushes (group commit,
   enabled by default in both Berkeley DB and InnoDB).

   Since PR 6 the log carries logical redo records: appends buffer encoded
   frames into the open epoch, a physical flush (or a checkpoint / an
   explicit harden) moves whole epochs into the durable image, and a seeded
   crash plan can cut the run at a chosen append, mid-flush with a torn
   tail, or inside the commit window. Two invariants matter for recovery:

   - Epochs are sealed in order and hardened whole (except for the injected
     torn tail), so [durable_log] is always a byte-prefix of the log a
     crash-free run would have written.

   - Commit records are appended in commit-ts order (the engine allocates
     the ts and appends in one atomic simulated step), so the durable
     committed set is always a ts-prefix of the logged commits. *)

type mode =
  | No_flush (* commit returns once the record is buffered (Fig 6.1) *)
  | Flush_per_commit of float (* synchronous flush with given latency *)

(* {1 Logical records and the frame codec} *)

type record =
  | Begin of { txn : int }
  | Write of { txn : int; table : string; key : string; value : string }
  | Insert of { txn : int; table : string; key : string; value : string }
  | Delete of { txn : int; table : string; key : string }
  | Commit of { txn : int; ts : int }
  | Abort of { txn : int }
  | Checkpoint of { watermark : int; next_ts : int }

let header = "ssi-wal v1\n"

(* Payload fields are space-separated; any byte outside a conservative
   plain set is %HH-escaped so fields can carry spaces, newlines, '%' and
   arbitrary binary (the fuzzer generates such keys). *)
let plain c =
  match c with
  | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '_' | '.' | ',' | '~' | '/' | '-' -> true
  | _ -> false

let esc s =
  let n = String.length s in
  let plain_only = ref true in
  for i = 0 to n - 1 do
    if not (plain s.[i]) then plain_only := false
  done;
  if !plain_only then s
  else begin
    let buf = Buffer.create (n + 8) in
    String.iter
      (fun c ->
        if plain c then Buffer.add_char buf c
        else Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c)))
      s;
    Buffer.contents buf
  end

let unesc s =
  let n = String.length s in
  let buf = Buffer.create n in
  let i = ref 0 in
  let ok = ref true in
  while !ok && !i < n do
    let c = s.[!i] in
    if c = '%' then
      if !i + 2 < n then begin
        (match int_of_string_opt ("0x" ^ String.sub s (!i + 1) 2) with
        | Some b when b >= 0 && b <= 255 -> Buffer.add_char buf (Char.chr b)
        | _ -> ok := false);
        i := !i + 3
      end
      else ok := false
    else begin
      Buffer.add_char buf c;
      incr i
    end
  done;
  if !ok then Some (Buffer.contents buf) else None

let payload_of_record r =
  match r with
  | Begin { txn } -> Printf.sprintf "B %d" txn
  | Write { txn; table; key; value } ->
      Printf.sprintf "W %d %s %s %s" txn (esc table) (esc key) (esc value)
  | Insert { txn; table; key; value } ->
      Printf.sprintf "I %d %s %s %s" txn (esc table) (esc key) (esc value)
  | Delete { txn; table; key } -> Printf.sprintf "D %d %s %s" txn (esc table) (esc key)
  | Commit { txn; ts } -> Printf.sprintf "C %d %d" txn ts
  | Abort { txn } -> Printf.sprintf "A %d" txn
  | Checkpoint { watermark; next_ts } -> Printf.sprintf "K %d %d" watermark next_ts

let frame r =
  let p = payload_of_record r in
  Printf.sprintf "%d:%s\n" (String.length p) p

let record_of_payload p =
  let fields = String.split_on_char ' ' p in
  let int_of s = int_of_string_opt s in
  match fields with
  | [ "B"; txn ] -> ( match int_of txn with Some txn -> Some (Begin { txn }) | None -> None)
  | [ "W"; txn; table; key; value ] -> (
      match (int_of txn, unesc table, unesc key, unesc value) with
      | Some txn, Some table, Some key, Some value -> Some (Write { txn; table; key; value })
      | _ -> None)
  | [ "I"; txn; table; key; value ] -> (
      match (int_of txn, unesc table, unesc key, unesc value) with
      | Some txn, Some table, Some key, Some value -> Some (Insert { txn; table; key; value })
      | _ -> None)
  | [ "D"; txn; table; key ] -> (
      match (int_of txn, unesc table, unesc key) with
      | Some txn, Some table, Some key -> Some (Delete { txn; table; key })
      | _ -> None)
  | [ "C"; txn; ts ] -> (
      match (int_of txn, int_of ts) with
      | Some txn, Some ts -> Some (Commit { txn; ts })
      | _ -> None)
  | [ "A"; txn ] -> ( match int_of txn with Some txn -> Some (Abort { txn }) | None -> None)
  | [ "K"; watermark; next_ts ] -> (
      match (int_of watermark, int_of next_ts) with
      | Some watermark, Some next_ts -> Some (Checkpoint { watermark; next_ts })
      | _ -> None)
  | _ -> None

let encode records =
  let buf = Buffer.create 256 in
  Buffer.add_string buf header;
  List.iter (fun r -> Buffer.add_string buf (frame r)) records;
  Buffer.contents buf

(* Decode a log image. Truncation anywhere — inside the header, inside a
   frame's length prefix, inside its payload, or before its terminating
   newline — is reported as a torn tail of that many bytes, never as an
   error; only in-bounds corruption is. *)
let decode s =
  let n = String.length s in
  let hn = String.length header in
  if n < hn then
    if String.equal s (String.sub header 0 n) then Ok ([], n)
    else Error "bad log header"
  else if not (String.equal (String.sub s 0 hn) header) then Error "bad log header"
  else begin
    let records = ref [] in
    let pos = ref hn in
    let result = ref None in
    while !result = None && !pos < n do
      let start = !pos in
      (* length prefix: digits up to ':' *)
      let j = ref start in
      while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do
        incr j
      done;
      if !j = start then result := Some (Error (Printf.sprintf "byte %d: expected frame length" start))
      else if !j >= n then result := Some (Ok (List.rev !records, n - start)) (* torn length *)
      else if s.[!j] <> ':' then
        result := Some (Error (Printf.sprintf "byte %d: expected ':' after frame length" !j))
      else begin
        let len = int_of_string (String.sub s start (!j - start)) in
        let p0 = !j + 1 in
        if p0 + len >= n + 1 then result := Some (Ok (List.rev !records, n - start)) (* torn payload *)
        else if p0 + len = n then result := Some (Ok (List.rev !records, n - start)) (* torn: missing \n *)
        else if s.[p0 + len] <> '\n' then
          result := Some (Error (Printf.sprintf "byte %d: frame not newline-terminated" (p0 + len)))
        else
          match record_of_payload (String.sub s p0 len) with
          | Some r ->
              records := r :: !records;
              pos := p0 + len + 1
          | None -> result := Some (Error (Printf.sprintf "byte %d: malformed record payload" p0))
      end
    done;
    match !result with Some r -> r | None -> Ok (List.rev !records, 0)
  end

(* {1 Crash plans} *)

type plan =
  | Crash_on_append of int
  | Crash_mid_flush of { flush : int; keep : int; torn : int }
  | Crash_at_commit_window of int

exception Crash

let plan_to_string = function
  | Crash_on_append n -> Printf.sprintf "append:%d" n
  | Crash_mid_flush { flush; keep; torn } -> Printf.sprintf "flush:%d:%d:%d" flush keep torn
  | Crash_at_commit_window n -> Printf.sprintf "window:%d" n

let plan_of_string s =
  match String.split_on_char ':' s with
  | [ "append"; n ] -> Option.map (fun n -> Crash_on_append n) (int_of_string_opt n)
  | [ "flush"; f; k; t ] -> (
      match (int_of_string_opt f, int_of_string_opt k, int_of_string_opt t) with
      | Some flush, Some keep, Some torn -> Some (Crash_mid_flush { flush; keep; torn })
      | _ -> None)
  | [ "window"; n ] -> Option.map (fun n -> Crash_at_commit_window n) (int_of_string_opt n)
  | _ -> None

(* {1 The log} *)

type t = {
  sim : Sim.t;
  mode : mode;
  mutable epoch : int; (* current open batch *)
  mutable flushed : int; (* highest hardened batch *)
  mutable flusher_active : bool;
  flushed_cond : Sim.cond;
  mutable pending : (int * record) list; (* (epoch, record), newest first *)
  durable : Buffer.t; (* the durable log image, header included *)
  mutable appends : int;
  mutable flushes : int;
  mutable checkpoints : int;
  mutable windows : int;
  mutable plan : plan option;
  (* Trigger counters, zeroed by [arm] so fault plans count from the arming
     point (after Db.load), not from db creation. *)
  mutable p_appends : int;
  mutable p_flushes : int;
  mutable p_windows : int;
  mutable obs : Obs.t; (* observability sink; Obs.disabled costs one branch *)
}

let create sim ~mode =
  let durable = Buffer.create 1024 in
  Buffer.add_string durable header;
  {
    sim;
    mode;
    epoch = 0;
    flushed = -1;
    flusher_active = false;
    flushed_cond = Sim.cond ();
    pending = [];
    durable;
    appends = 0;
    flushes = 0;
    checkpoints = 0;
    windows = 0;
    plan = None;
    p_appends = 0;
    p_flushes = 0;
    p_windows = 0;
    obs = Obs.disabled;
  }

let set_obs t obs = t.obs <- obs

let mode t = t.mode

let arm t plan =
  t.plan <- Some plan;
  t.p_appends <- 0;
  t.p_flushes <- 0;
  t.p_windows <- 0

let crash t plan =
  if Obs.tracing t.obs then
    Obs.emit t.obs ~ts:(Sim.now t.sim) (Obs.Crash_inject { plan = plan_to_string plan });
  raise Crash

(* Buffer a log record; cheap, cost accounted by the caller's CPU model.
   A matching [Crash_on_append] fires *instead of* the append: the record
   is never buffered, modeling a failure before the in-memory log write. *)
let append t r =
  (match t.plan with
  | Some (Crash_on_append n as p) ->
      t.p_appends <- t.p_appends + 1;
      if t.p_appends = n then crash t p
  | Some _ -> t.p_appends <- t.p_appends + 1
  | None -> ());
  t.pending <- (t.epoch, r) :: t.pending;
  t.appends <- t.appends + 1

(* Move every pending record of epoch <= target into the durable image.
   [pending] is newest-first and epochs only grow, so the kept/hardened
   split preserves append order (the hardened part is an exact prefix of
   the pending log). *)
let harden_upto t target =
  let hardened, kept = List.partition (fun (e, _) -> e <= target) t.pending in
  t.pending <- kept;
  List.iter (fun (_, r) -> Buffer.add_string t.durable (frame r)) (List.rev hardened);
  if t.flushed < target then t.flushed <- target

(* Injected mid-flush failure: harden [keep] whole frames of the sealed
   batch plus [torn] bytes of the following frame, then crash. Clamped so
   the tear is always a strict frame prefix (a whole extra frame would be a
   clean boundary, not a tear). *)
let tear_and_crash t target ~keep ~torn plan =
  let batch = List.rev (List.filter (fun (e, _) -> e <= target) t.pending) in
  let frames = List.map (fun (_, r) -> frame r) batch in
  let keep = max 0 (min keep (List.length frames)) in
  List.iteri (fun i f -> if i < keep then Buffer.add_string t.durable f) frames;
  (match List.nth_opt frames keep with
  | Some f when torn > 0 ->
      let torn = min torn (String.length f - 1) in
      Buffer.add_string t.durable (String.sub f 0 torn)
  | _ -> ());
  crash t plan

let rec ensure_flushed t ~latency ~upto =
  if t.flushed >= upto then ()
  else if t.flusher_active then begin
    Sim.wait t.sim t.flushed_cond;
    ensure_flushed t ~latency ~upto
  end
  else begin
    (* Become the flush leader: seal the open batch, write it, repeat while
       our own record is still unhardened. *)
    t.flusher_active <- true;
    let target = t.epoch in
    t.epoch <- t.epoch + 1;
    Sim.delay t.sim latency;
    t.flushes <- t.flushes + 1;
    (match t.plan with
    | Some (Crash_mid_flush { flush; keep; torn } as p) ->
        t.p_flushes <- t.p_flushes + 1;
        if t.p_flushes = flush then tear_and_crash t target ~keep ~torn p
    | Some _ -> t.p_flushes <- t.p_flushes + 1
    | None -> ());
    harden_upto t target;
    Obs.record_wal_flush t.obs;
    if Obs.tracing t.obs then
      Obs.emit t.obs ~ts:(Sim.now t.sim)
        (Obs.Wal_flush { epoch = target; latency; queued = List.length t.pending });
    t.flusher_active <- false;
    Sim.broadcast t.sim t.flushed_cond;
    ensure_flushed t ~latency ~upto
  end

(* Make every record appended so far durable; returns when a flush covering
   the caller's batch completes. *)
let commit_flush t =
  match t.mode with
  | No_flush -> ()
  | Flush_per_commit latency -> ensure_flushed t ~latency ~upto:t.epoch

let commit_window_check t =
  t.windows <- t.windows + 1;
  match t.plan with
  | Some (Crash_at_commit_window n as p) ->
      t.p_windows <- t.p_windows + 1;
      if t.p_windows = n then crash t p
  | Some _ -> t.p_windows <- t.p_windows + 1
  | None -> ()

(* Checkpoints model background I/O that overlaps normal processing, so
   they take no simulated time: seal the open batch (records of an epoch an
   in-flight group flush already sealed may be hardened here first; the
   flush leader's later [harden_upto] then finds them gone and the
   max-guard on [flushed] keeps the watermark monotone) and write it plus
   the checkpoint record synchronously. *)
let checkpoint t ~watermark ~next_ts =
  t.pending <- (t.epoch, Checkpoint { watermark; next_ts }) :: t.pending;
  let target = t.epoch in
  t.epoch <- t.epoch + 1;
  harden_upto t target;
  t.checkpoints <- t.checkpoints + 1;
  Obs.record_checkpoint t.obs;
  if Obs.tracing t.obs then
    Obs.emit t.obs ~ts:(Sim.now t.sim)
      (Obs.Wal_checkpoint { epoch = target; watermark; next_ts })

let harden t =
  let target = t.epoch in
  t.epoch <- t.epoch + 1;
  harden_upto t target

let durable_log t = Buffer.contents t.durable

let durable_bytes t = Buffer.length t.durable

let appends t = t.appends

let flushes t = t.flushes

let checkpoints t = t.checkpoints

let commit_windows t = t.windows

(* Events seen since [arm] — the trigger-counter values a fault plan indexes
   into. Arming a plan that can never fire (e.g. [Crash_on_append max_int])
   turns a crash-free run into a census of its crashable points. *)
let armed_appends t = t.p_appends

let armed_flushes t = t.p_flushes

let armed_windows t = t.p_windows

(* Counters only. The buffered batch, durable image and epoch/flush
   bookkeeping survive a reset: zeroing [epoch]/[flushed] here (or dropping
   [pending]) while a group flush is in flight would lose the in-flight
   batch — pinned by test_recovery's reset_stats regression. *)
let reset_stats t =
  t.appends <- 0;
  t.flushes <- 0;
  t.checkpoints <- 0;
  t.windows <- 0
