(** FIFO k-server resource: CPU cores, a disk, or a capacity-1 mutex.

    [use r dt f] waits for a free server, holds it for [dt] simulated seconds,
    runs [f] and releases. Waiters are served in arrival order. *)

type t

val create : Sim.t -> name:string -> capacity:int -> t

(** Attach a profiler sink: a {!Obs.Res_sample} (servers busy, queue depth)
    is emitted at every acquire/release state change while the sink is
    tracing. The default {!Obs.disabled} sink costs one branch per state
    change and never reads simulated time. *)
val set_obs : t -> Obs.t -> unit

val name : t -> string

val capacity : t -> int

(** Servers currently held. *)
val in_use : t -> int

(** Processes waiting for a server. *)
val queued : t -> int

(** Block until a server is free, then hold it (pair with {!release}). *)
val acquire : t -> unit

val release : t -> unit

(** [use t dt f]: acquire, spend [dt] simulated seconds, run [f], release.
    Releases on exception too. *)
val use : t -> float -> (unit -> 'a) -> 'a

(** [consume t dt] = [use t dt (fun () -> ())]. *)
val consume : t -> float -> unit

(** {1 Statistics} *)

(** Total server-seconds consumed through {!use}/{!consume}. *)
val busy_time : t -> float

val acquisitions : t -> int

(** Fraction of capacity busy over an [elapsed]-second window. *)
val utilisation : t -> elapsed:float -> float

val reset_stats : t -> unit
