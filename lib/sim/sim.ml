(* Discrete-event simulator.

   Processes are direct-style OCaml functions run under an effect handler.
   Two effects exist: [Delay dt], which reschedules the process [dt] simulated
   seconds in the future, and [Suspend register], which parks the process and
   hands a {!waker} to [register]; whoever holds the waker later resumes (or
   kills) the process.  Everything runs on one OS thread, so code between two
   effect performs is atomic — this stands in for the latches of the paper's
   "atomic begin/end" blocks. *)

type waker = {
  mutable fired : bool;
  fire : (unit, exn) result -> unit;
}

type t = {
  mutable now : float;
  mutable seq : int;
  events : (unit -> unit) Pqueue.t;
  mutable live_procs : int;
}

type _ Effect.t +=
  | Delay : t * float -> unit Effect.t
  | Suspend : t * (waker -> unit) -> unit Effect.t

let create () = { now = 0.0; seq = 0; events = Pqueue.create (); live_procs = 0 }

let now t = t.now

let live_procs t = t.live_procs

let schedule t ~after thunk =
  if after < 0.0 then invalid_arg "Sim.schedule: negative delay";
  t.seq <- t.seq + 1;
  Pqueue.push t.events ~time:(t.now +. after) ~seq:t.seq thunk

let delay t dt = Effect.perform (Delay (t, dt))

let yield t = delay t 0.0

let suspend t register = Effect.perform (Suspend (t, register))

let wake t w =
  if not w.fired then begin
    w.fired <- true;
    schedule t ~after:0.0 (fun () -> w.fire (Ok ()))
  end

let kill t w exn =
  if not w.fired then begin
    w.fired <- true;
    schedule t ~after:0.0 (fun () -> w.fire (Error exn))
  end

let waker_fired w = w.fired

let spawn t f =
  let open Effect.Deep in
  t.live_procs <- t.live_procs + 1;
  let body () =
    match_with f ()
      {
        retc = (fun () -> t.live_procs <- t.live_procs - 1);
        exnc =
          (fun e ->
            t.live_procs <- t.live_procs - 1;
            raise e);
        effc =
          (fun (type b) (eff : b Effect.t) ->
            match eff with
            | Delay (sim, dt) ->
                Some
                  (fun (k : (b, unit) continuation) ->
                    schedule sim ~after:dt (fun () -> continue k ()))
            | Suspend (sim, register) ->
                Some
                  (fun (k : (b, unit) continuation) ->
                    let w =
                      {
                        fired = false;
                        fire =
                          (function
                          | Ok () -> continue k ()
                          | Error e -> discontinue k e);
                      }
                    in
                    ignore sim;
                    register w)
            | _ -> None);
      }
  in
  schedule t ~after:0.0 body

(* Condition variables: broadcast-only wakeups over a waiter list. *)

type cond = { mutable waiters : waker list }

let cond () = { waiters = [] }

let wait t c = suspend t (fun w -> c.waiters <- c.waiters @ [ w ])

let broadcast t c =
  let ws = c.waiters in
  c.waiters <- [];
  List.iter (fun w -> wake t w) ws

let signal t c =
  match c.waiters with
  | [] -> ()
  | w :: rest ->
      c.waiters <- rest;
      wake t w

let run ?(until = infinity) t =
  let continue_ = ref true in
  while !continue_ do
    match Pqueue.peek t.events with
    | None -> continue_ := false
    | Some (time, _) ->
        if time > until then begin
          (* Leave the clock at the horizon; remaining events stay queued
             (peek, don't pop: a later [run] must be able to resume). *)
          t.now <- until;
          continue_ := false
        end
        else begin
          (match Pqueue.pop t.events with
          | Some (time', thunk) ->
              t.now <- time';
              thunk ()
          | None -> continue_ := false)
        end
  done

let pending_events t = Pqueue.length t.events
