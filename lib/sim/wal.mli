(** Simulated write-ahead log with group commit, logical redo records and
    deterministic crash injection.

    In [No_flush] mode a commit only buffers its record (the paper's
    Fig 6.1 configuration, standing in for battery-backed storage); buffered
    records become durable only at a checkpoint or an explicit {!harden}.
    In [Flush_per_commit latency] mode a commit blocks until a physical
    flush covering its record completes; concurrent committers share one
    flush (group commit), so throughput rises with MPL even on one disk.

    The log carries logical redo {!record}s behind a versioned frame codec
    (["ssi-wal v1"]). {!durable_log} is always a byte-prefix of the log the
    engine would have produced without a crash, which is what makes the
    recovery oracle's committed-prefix comparison sound. *)

type mode =
  | No_flush
  | Flush_per_commit of float  (** flush latency in simulated seconds *)

type t

(** {1 Logical redo records} *)

type record =
  | Begin of { txn : int }
  | Write of { txn : int; table : string; key : string; value : string }
  | Insert of { txn : int; table : string; key : string; value : string }
  | Delete of { txn : int; table : string; key : string }
  | Commit of { txn : int; ts : int }
  | Abort of { txn : int }
  | Checkpoint of { watermark : int; next_ts : int }
      (** [watermark] is the oldest active snapshot at checkpoint time,
          [next_ts] the commit-ts allocator value *)

(** {2 Codec}

    A log image is the header line {!header} followed by length-prefixed
    frames [<len>:<payload>\n]; payload bytes outside [[A-Za-z0-9_.,~/-]]
    are escaped as [%HH], so [len] is the exact escaped-payload byte count
    and truncation is detected positionally. *)

val header : string

(** Encode records into a complete log image (header included). *)
val encode : record list -> string

(** [decode s] splits a log image into its complete records plus the byte
    length of a trailing incomplete (torn) frame, [0] when the image ends on
    a frame boundary. In-bounds corruption — bad header, bad escape, frame
    not terminated by a newline, unknown tag — is an [Error]; truncation
    never is. Every strict prefix of a valid image decodes to a prefix of
    its records with the remainder reported as torn. *)
val decode : string -> (record list * int, string) result

(** {1 Crash plans}

    A deterministic fault plan armed with {!arm}. Trigger counters start at
    the arming point, so identically-seeded runs crash at identical logical
    points regardless of wall clock. The firing site raises {!Crash}, which
    no engine handler catches — it propagates out of [Sim.run], abandoning
    the simulated machine with the log's durable prefix as the only
    surviving state. *)

type plan =
  | Crash_on_append of int
      (** crash in place of the [n]-th (1-based) record append *)
  | Crash_mid_flush of { flush : int; keep : int; torn : int }
      (** at the [flush]-th physical flush, harden only [keep] whole frames
          of the batch plus [torn] bytes of the next frame, then crash
          (both clamped to the batch) *)
  | Crash_at_commit_window of int
      (** crash at the [n]-th commit-ts-assigned-but-not-yet-flushed window *)

exception Crash

val arm : t -> plan -> unit

(** Compact one-token form, e.g. ["append:5"], ["flush:2:1:3"],
    ["window:1"]; [plan_of_string] inverts it. *)
val plan_to_string : plan -> string

val plan_of_string : string -> plan option

(** {1 Log lifecycle} *)

val create : Sim.t -> mode:mode -> t

(** Attach an observability sink (flush/checkpoint/crash events and
    counters). Default {!Obs.disabled}. *)
val set_obs : t -> Obs.t -> unit

val mode : t -> mode

(** Buffer one logical record into the open batch. *)
val append : t -> record -> unit

(** Block until every record appended so far is durable (no-op for
    [No_flush]). *)
val commit_flush : t -> unit

(** Crash-injection probe for the window between commit-ts assignment and
    the commit flush; fires {!Crash} when a [Crash_at_commit_window] plan
    matches, counts the window otherwise. *)
val commit_window_check : t -> unit

(** Seal the open batch and harden it together with a [Checkpoint] record,
    without simulated delay (checkpoints are background I/O overlapping
    normal processing). In [No_flush] mode this bounds the crash loss
    window to the records since the previous checkpoint. *)
val checkpoint : t -> watermark:int -> next_ts:int -> unit

(** Harden everything buffered so far without simulated delay. Setup-time
    convenience ([Db.load] runs outside any simulated process and may not
    block); not a substitute for {!commit_flush}. *)
val harden : t -> unit

(** The durable log image: exactly the bytes that survive a crash. *)
val durable_log : t -> string

val durable_bytes : t -> int

(** {1 Statistics} *)

val appends : t -> int

(** Physical flushes performed; [appends / flushes] is the group-commit
    batching factor. *)
val flushes : t -> int

val checkpoints : t -> int

(** Commit windows observed (commit-ts assigned, flush not yet issued);
    the sample space for [Crash_at_commit_window]. *)
val commit_windows : t -> int

(** {2 Since-arm trigger counters}

    Appends / flushes / commit windows seen since {!arm} — the index space a
    fault plan's 1-based trigger counts over. Arming a plan that can never
    fire (e.g. [Crash_on_append max_int]) makes a crash-free run report
    exactly how many crashable points of each kind it has, which is how the
    crash fuzzer samples plans guaranteed to fire. *)

val armed_appends : t -> int

val armed_flushes : t -> int

val armed_windows : t -> int

(** Zero the counters only. Never touches the buffered batch, the durable
    image or the epoch/flush bookkeeping, so a reset concurrent with an
    in-flight group flush cannot lose records. *)
val reset_stats : t -> unit
