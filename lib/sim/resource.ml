(* A k-server FIFO resource: models CPU cores, a disk, or a global mutex
   (capacity 1, e.g. InnoDB's kernel mutex). *)

type t = {
  sim : Sim.t;
  name : string;
  capacity : int;
  mutable in_use : int;
  queue : Sim.waker Queue.t;
  mutable busy_time : float; (* total server-seconds consumed *)
  mutable acquisitions : int;
  mutable last_acquire : float;
  mutable obs : Obs.t;
      (* profiler sink: a state sample (servers busy, queue depth) is
         emitted on every acquire/release state change, but only when the
         sink is tracing — the disabled sink costs one branch and reads no
         simulated time. *)
}

let create sim ~name ~capacity =
  if capacity < 1 then invalid_arg "Resource.create: capacity must be >= 1";
  {
    sim;
    name;
    capacity;
    in_use = 0;
    queue = Queue.create ();
    busy_time = 0.0;
    acquisitions = 0;
    last_acquire = 0.0;
    obs = Obs.disabled;
  }

let set_obs t obs = t.obs <- obs

let sample t =
  if Obs.tracing t.obs then
    Obs.emit t.obs ~ts:(Sim.now t.sim)
      (Obs.Res_sample { res = t.name; in_use = t.in_use; queued = Queue.length t.queue })

let name t = t.name

let capacity t = t.capacity

let in_use t = t.in_use

let queued t = Queue.length t.queue

let acquire t =
  if t.in_use < t.capacity then begin
    t.in_use <- t.in_use + 1;
    sample t
  end
  else begin
    Sim.suspend t.sim (fun w ->
        Queue.add w t.queue;
        sample t);
    (* The releaser transferred its slot to us; in_use stays constant. *)
  end;
  t.acquisitions <- t.acquisitions + 1

let release t =
  let rec go () =
    match Queue.take_opt t.queue with
    | None -> t.in_use <- t.in_use - 1
    | Some w ->
        if Sim.waker_fired w then go () (* waiter was killed; skip it *)
        else Sim.wake t.sim w
  in
  go ();
  sample t

let use t dt f =
  acquire t;
  let finish () =
    t.busy_time <- t.busy_time +. dt;
    release t
  in
  match
    Sim.delay t.sim dt;
    f ()
  with
  | v ->
      finish ();
      v
  | exception e ->
      finish ();
      raise e

let consume t dt = use t dt (fun () -> ())

let busy_time t = t.busy_time

let acquisitions t = t.acquisitions

(* Utilisation over a window of [elapsed] seconds. *)
let utilisation t ~elapsed =
  if elapsed <= 0.0 then 0.0
  else t.busy_time /. (elapsed *. float_of_int t.capacity)

let reset_stats t =
  t.busy_time <- 0.0;
  t.acquisitions <- 0
