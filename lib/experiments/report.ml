(* Self-contained Markdown experiment report.

   [build] renders one document from three optional ingredient sets —
   figure sweeps (throughput/abort tables), a profiled benchmark run
   (headline numbers, per-resource ASCII utilisation sparklines on
   simulated time, lifecycle-span counts, latency percentiles) and the
   abort-provenance harvest of a fuzz campaign (top-k certificate shapes
   with one JSON certificate and codec repro line per shape).

   Everything printed derives from simulated time and fixed seeds: the same
   invocation produces byte-identical reports on any host and at any -j,
   which is what lets the CI smoke rule diff reports instead of eyeballing
   them. *)

let bpf = Printf.bprintf

(* {1 ASCII sparklines} *)

(* 9-level ASCII ramp: index 0 is "idle", 8 is "full". *)
let ramp = " .:-=+*#@"

let spark_char ~vmax v =
  if v <= 0 || vmax <= 0 then ramp.[0]
  else
    let idx =
      int_of_float (Float.ceil (float_of_int v /. float_of_int vmax *. 8.0))
    in
    ramp.[max 1 (min 8 idx)]

let sparkline ~vmax values =
  String.init (Array.length values) (fun i -> spark_char ~vmax values.(i))

(* Float variant, self-normalising to the series max. *)
let sparkline_f values =
  let vmax = Array.fold_left Float.max 0.0 values in
  String.init (Array.length values) (fun i ->
      let v = values.(i) in
      if v <= 0.0 || vmax <= 0.0 then ramp.[0]
      else ramp.[max 1 (min 8 (int_of_float (Float.ceil (v /. vmax *. 8.0))))])

(* Bin a chronological step series [(ts, v)] into [bins] buckets over
   [t0, t1]: each bucket keeps the max of the values in force during it
   (samples are state changes; the value holds until the next sample). *)
let bin_series ~t0 ~t1 ~bins samples =
  let arr = Array.make bins 0 in
  if t1 <= t0 then arr
  else begin
    let bin_of ts = int_of_float (float_of_int bins *. (ts -. t0) /. (t1 -. t0)) in
    let cur = ref 0 and j = ref 0 in
    List.iter
      (fun (ts, v) ->
        let b = bin_of ts in
        while !j < b && !j < bins do
          arr.(!j) <- max arr.(!j) !cur;
          incr j
        done;
        if b >= 0 && b < bins then arr.(b) <- max arr.(b) v;
        cur := v)
      samples;
    while !j < bins do
      arr.(!j) <- max arr.(!j) !cur;
      incr j
    done;
    arr
  end

(* {1 Figure tables} *)

let figure_md buf (f : Experiments.figure) =
  bpf buf "### %s — %s\n\n" f.Experiments.fig_id f.Experiments.title;
  bpf buf "Paper expectation: %s\n\n" f.Experiments.expected;
  (* throughput *)
  bpf buf "| MPL |";
  List.iter (fun s -> bpf buf " %s tps (±95%%) |" s.Experiments.label) f.Experiments.series;
  bpf buf "\n|---|";
  List.iter (fun _ -> bpf buf "---|") f.Experiments.series;
  bpf buf "\n";
  List.iteri
    (fun i mpl ->
      bpf buf "| %d |" mpl;
      List.iter
        (fun s ->
          let p = List.nth s.Experiments.points i in
          bpf buf " %.0f ±%.0f |" p.Driver.s_throughput p.Driver.s_ci)
        f.Experiments.series;
      bpf buf "\n")
    f.Experiments.mpls;
  (* abort rates, % of commits *)
  bpf buf "\n| MPL |";
  List.iter
    (fun s -> bpf buf " %s dl/fcw/unsafe %%commits |" s.Experiments.label)
    f.Experiments.series;
  bpf buf "\n|---|";
  List.iter (fun _ -> bpf buf "---|") f.Experiments.series;
  bpf buf "\n";
  List.iteri
    (fun i mpl ->
      bpf buf "| %d |" mpl;
      List.iter
        (fun s ->
          let p = List.nth s.Experiments.points i in
          bpf buf " %.2f / %.2f / %.2f |"
            (100.0 *. p.Driver.s_deadlock_rate)
            (100.0 *. p.Driver.s_conflict_rate)
            (100.0 *. p.Driver.s_unsafe_rate))
        f.Experiments.series;
      bpf buf "\n")
    f.Experiments.mpls;
  bpf buf "\n"

(* {1 Profiled benchmark section} *)

type bench_section = {
  b_label : string;  (** e.g. ["sibench ssi mpl=10 seed=1"] *)
  b_result : Driver.result;
  b_obs : Obs.t;  (** the tracing sink the run was measured with *)
  b_t0 : float;  (** window start (end of warmup), simulated seconds *)
  b_t1 : float;  (** window end *)
}

let span_counts obs =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (_, e) ->
      match e with
      | Obs.Span_b { name; _ } ->
          Hashtbl.replace tbl name (1 + Option.value ~default:0 (Hashtbl.find_opt tbl name))
      | _ -> ())
    (Obs.events obs);
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let bench_md buf ~bins (b : bench_section) =
  let r = b.b_result in
  bpf buf "### Profiled run — %s\n\n" b.b_label;
  bpf buf "| metric | value |\n|---|---|\n";
  bpf buf "| commits | %d (%.0f tps) |\n" r.Driver.commits r.Driver.throughput;
  bpf buf "| deadlocks | %d |\n" r.Driver.deadlocks;
  bpf buf "| fcw conflicts | %d |\n" r.Driver.conflicts;
  bpf buf "| unsafe aborts | %d |\n" r.Driver.unsafe;
  bpf buf "| other aborts | %d |\n" r.Driver.other_aborts;
  bpf buf "| mean response | %.6f s |\n" r.Driver.mean_response;
  let m = r.Driver.metrics in
  bpf buf "| commit latency p50/p99 | %.2g / %.2g s |\n"
    (Obs.hist_percentile m.Obs.m_commit_latency 0.50)
    (Obs.hist_percentile m.Obs.m_commit_latency 0.99);
  bpf buf "| lock-wait p99 | %.2g s |\n" (Obs.hist_percentile m.Obs.m_lock_wait 0.99);
  bpf buf "| rw edges (nv/sx/ps/gap/uw) | %d/%d/%d/%d/%d |\n" m.Obs.m_conflict_newer_version
    m.Obs.m_conflict_siread_x m.Obs.m_conflict_page_stamp m.Obs.m_conflict_gap
    m.Obs.m_conflict_unknown;
  bpf buf "| doomed victims | %d |\n" m.Obs.m_doomed;
  bpf buf "| siread / retained HWM | %d / %d |\n" m.Obs.m_siread_hwm m.Obs.m_retained_hwm;
  bpf buf "| work committed / wasted | %.4f / %.4f s |\n" r.Driver.work_committed
    r.Driver.work_wasted;
  (match span_counts b.b_obs with
  | [] -> ()
  | spans ->
      bpf buf "\nLifecycle spans recorded: %s.\n"
        (String.concat ", " (List.map (fun (n, c) -> Printf.sprintf "%s ×%d" n c) spans)));
  (* per-resource utilisation timelines, max per bin over the window *)
  let series = Obs.resource_series b.b_obs in
  if series <> [] then begin
    bpf buf
      "\nResource timelines over the %.2fs–%.2fs window (simulated time, `%s` = idle→full, \
       max per bin):\n\n```\n"
      b.b_t0 b.b_t1 ramp;
    let width =
      List.fold_left (fun w (name, _) -> max w (String.length name)) 0 series
    in
    List.iter
      (fun (name, samples) ->
        let busy =
          bin_series ~t0:b.b_t0 ~t1:b.b_t1 ~bins
            (List.map (fun (ts, in_use, _) -> (ts, in_use)) samples)
        in
        let queue =
          bin_series ~t0:b.b_t0 ~t1:b.b_t1 ~bins
            (List.map (fun (ts, _, q) -> (ts, q)) samples)
        in
        let bmax = Array.fold_left max 0 busy and qmax = Array.fold_left max 0 queue in
        bpf buf "%-*s busy  |%s| max %d\n" width name (sparkline ~vmax:bmax busy) bmax;
        bpf buf "%-*s queue |%s| max %d\n" width "" (sparkline ~vmax:qmax queue) qmax)
      series;
    bpf buf "```\n"
  end;
  (* Windowed timeline sparklines: the same data the `timeline` subcommand
     exports as CSV, rendered inline. One window per bin over the whole run
     (warmup included, unlike the resource timelines above), each series
     self-normalised; `^` marks are Page–Hinkley regime shifts detected on
     the throughput series. *)
  (match Timeline.of_obs ~window:(b.b_t1 /. float_of_int bins) ~horizon:b.b_t1 b.b_obs with
  | None -> ()
  | Some tl ->
      let pick =
        [ "throughput"; "abort-rate"; "p95-response"; "siread"; "retained"; "work-wasted" ]
      in
      bpf buf
        "\nTimeline over 0–%.2fs (%d windows of %.4fs, `%s` = min→max per series):\n\n```\n"
        b.b_t1 (Array.length tl.Timeline.tl_windows) tl.Timeline.tl_width ramp;
      let width = List.fold_left (fun w n -> max w (String.length n)) 0 pick in
      List.iter
        (fun name ->
          let xs = Timeline.series tl name in
          let vmax = Array.fold_left Float.max 0.0 xs in
          bpf buf "%-*s |%s| max %.4g\n" width name (sparkline_f xs) vmax)
        pick;
      (* A stiffer lambda than the change_points default (2x the series mean
         instead of 0.5x): at 64 fine-grained windows ordinary
         window-to-window oscillation would otherwise alarm constantly, and
         the report should only flag sustained shifts. *)
      let tput = Timeline.series tl "throughput" in
      let mean =
        if Array.length tput = 0 then 0.0
        else Array.fold_left ( +. ) 0.0 tput /. float_of_int (Array.length tput)
      in
      (match
         (if mean > 0.0 then Timeline.change_points ~lambda:(2.0 *. mean) tl ~series:"throughput"
          else Timeline.change_points tl ~series:"throughput")
       with
      | [] -> ()
      | marks ->
          let line = Bytes.make (Array.length tl.Timeline.tl_windows) ' ' in
          List.iter
            (fun mk ->
              if mk.Timeline.mk_window < Bytes.length line then
                Bytes.set line mk.Timeline.mk_window '^')
            marks;
          bpf buf "%-*s |%s| %s\n" width "regime" (Bytes.to_string line)
            (String.concat ", "
               (List.map
                  (fun mk ->
                    Printf.sprintf "%s@%.2fs"
                      (match mk.Timeline.mk_direction with `Up -> "up" | `Down -> "down")
                      mk.Timeline.mk_ts)
                  marks)));
      bpf buf "```\n");
  (* Hot resources: the top of the per-resource contention sketch, with
     certificate blame folded in, when the profiled run carried one. *)
  (match Obs.sketch b.b_obs with
  | None -> ()
  | Some sk ->
      Attrib.blame sk (Obs.certs b.b_obs);
      let rows = Attrib.table ~top:5 sk in
      if rows <> [] then begin
        let summary = Buffer.create 96 in
        Attrib.render_summary summary sk;
        bpf buf "\nHot resources (top %d of the contention sketch; %s):\n\n" (List.length rows)
          (String.trim (Buffer.contents summary));
        bpf buf "| resource | count | conflicts | blame in/out/fcw | lock-wait s | siread |\n";
        bpf buf "|---|---|---|---|---|---|\n";
        List.iter
          (fun (r, s) ->
            bpf buf "| `%s` | %d | %d | %d/%d/%d | %.9g | %d |\n" (Obs.res_id_escape r)
              s.Sketch.st_count s.Sketch.st_conflicts s.Sketch.st_blame_in s.Sketch.st_blame_out
              s.Sketch.st_blame_fcw s.Sketch.st_lock_wait s.Sketch.st_siread)
          rows
      end);
  (* Incidents: replay the run through an abort-storm flight recorder on
     the sparkline window grid; report the firing (or its absence) so a
     quiet run still shows the trigger that was armed. *)
  (if Obs.tracing b.b_obs then begin
     let window = b.b_t1 /. 64.0 in
     let trigger = Flightrec.Abort_storm 0.3 in
     let recorder, incident =
       Flightrec.run ~capacity:64 ~window ~horizon:b.b_t1 ~trigger (Obs.events b.b_obs)
         (Obs.certs b.b_obs)
     in
     match incident with
     | None ->
         bpf buf "\nIncidents: none (flight recorder armed with trigger `%s`, ring %d/%d).\n"
           (Flightrec.trigger_to_string trigger)
           (Flightrec.length recorder) (Flightrec.capacity recorder)
     | Some inc ->
         bpf buf "\nIncidents: trigger `%s` fired at window %d (t=%.4fs): %s; frozen ring %d/%d \
                  (%d dropped).\n"
           inc.Flightrec.in_trigger inc.Flightrec.in_window inc.Flightrec.in_ts
           inc.Flightrec.in_detail (Flightrec.length recorder) (Flightrec.capacity recorder)
           (Flightrec.drops recorder)
   end);
  bpf buf "\n"

(* {1 Abort-provenance section} *)

(* Group certificates by shape, count them, keep the first example of each
   (with its repro line), order by count descending then shape. *)
let group_certs (certs : (Obs.certificate * string) list) =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (c, repro) ->
      let shape = Obs.cert_shape c in
      match Hashtbl.find_opt tbl shape with
      | Some (n, ex) -> Hashtbl.replace tbl shape (n + 1, ex)
      | None -> Hashtbl.add tbl shape (1, (c, repro)))
    certs;
  Hashtbl.fold (fun shape (n, ex) acc -> (shape, n, ex) :: acc) tbl []
  |> List.sort (fun (s1, n1, _) (s2, n2, _) ->
         match compare n2 n1 with 0 -> compare s1 s2 | c -> c)

let certs_md buf ~topk ~campaign (certs : (Obs.certificate * string) list) =
  bpf buf "## Abort provenance\n\n";
  List.iter (fun line -> bpf buf "%s\n" line) campaign;
  if campaign <> [] then bpf buf "\n";
  if certs = [] then bpf buf "No abort certificates were emitted.\n\n"
  else begin
    let groups = group_certs certs in
    bpf buf "%d certificates, %d distinct shapes. Top %d:\n\n" (List.length certs)
      (List.length groups)
      (min topk (List.length groups));
    bpf buf "| # | count | shape |\n|---|---|---|\n";
    List.iteri
      (fun i (shape, n, _) -> if i < topk then bpf buf "| %d | %d | %s |\n" (i + 1) n shape)
      groups;
    bpf buf "\n";
    List.iteri
      (fun i (shape, n, (c, repro)) ->
        if i < topk then begin
          bpf buf "### #%d %s (×%d)\n\n" (i + 1) shape n;
          bpf buf "Example certificate (reason `%s`, victim T%d, t=%.4fs):\n\n```json\n%s\n```\n\n"
            c.Obs.c_reason (Obs.cert_victim c) c.Obs.c_ts (Obs.cert_to_json c);
          bpf buf "Replay it (`ssi_bench fuzz --replay` on this codec case):\n\n```\n%s```\n\n"
            repro
        end)
      groups
  end

(* {1 Assembly} *)

let build ?(bins = 64) ?(topk = 5) ~title ~preamble ~figures ~bench ~campaign ~certs () =
  let buf = Buffer.create 8192 in
  bpf buf "# %s\n\n" title;
  List.iter (fun line -> bpf buf "%s\n" line) preamble;
  if preamble <> [] then bpf buf "\n";
  if figures <> [] then begin
    bpf buf "## Figures\n\n";
    List.iter (figure_md buf) figures
  end;
  (match bench with
  | None -> ()
  | Some b ->
      bpf buf "## Profiler\n\n";
      bench_md buf ~bins b);
  certs_md buf ~topk ~campaign certs;
  Buffer.contents buf
