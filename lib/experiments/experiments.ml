(* Reproduction harness: one entry per table/figure of the paper's
   evaluation (Chapter 6), plus the ablations called out in DESIGN.md.

   Every experiment sweeps MPL for the three concurrency control algorithms
   (SI, Serializable SI, S2PL), printing throughput with 95% confidence
   intervals and the abort-rate breakdown (deadlock / FCW conflict / unsafe)
   that the paper shows as the paired (b) charts. Absolute numbers are
   simulated-time throughput; the claims under reproduction are the shapes
   (ordering, gaps, crossovers), recorded in EXPERIMENTS.md. *)

open Core

type budget = {
  seeds : int list;
  duration : float;
  warmup : float;
  mpls : int list;
  with_metrics : bool; (* collect engine metrics (Obs) per run *)
}

let full_budget =
  {
    seeds = [ 1; 2; 3 ];
    duration = 0.8;
    warmup = 0.15;
    mpls = [ 1; 2; 5; 10; 20; 50 ];
    with_metrics = false;
  }

let quick_budget =
  { seeds = [ 1 ]; duration = 0.25; warmup = 0.05; mpls = [ 1; 5; 20 ]; with_metrics = false }

let levels =
  [ ("SI", Types.Snapshot); ("SSI", Types.Serializable); ("S2PL", Types.S2pl) ]

type series = { label : string; points : Driver.summary list }

type figure = {
  fig_id : string;
  title : string;
  expected : string; (* the paper's qualitative result for this figure *)
  mpls : int list;
  series : series list;
}

(* {1 Plans: figures as data, evaluated as one parallel batch}

   A [plan] is a figure whose measurement points have not run yet: each
   series is a label plus a closure from MPL to a summary. [eval_plans]
   flattens every (figure, series, MPL) point of a whole batch of plans
   into one job list for the domain pool — points parallelise within a
   sweep *and* across figures — and re-assembles the results in submission
   order, so the printed tables are byte-identical to a sequential run.

   The point closures must not touch the pool themselves (nested
   submission is rejected); each builds its own simulated world via
   [Driver.run_seeds]/[Driver.run_once]. *)

type plan = {
  pl_id : string;
  pl_title : string;
  pl_expected : string;
  pl_mpls : int list;
  pl_series : (string * (int -> Driver.summary)) list; (* label, mpl -> point *)
}

let eval_plans ?pool (plans : plan list) : figure list =
  let jobs =
    List.concat_map
      (fun p ->
        List.concat_map
          (fun (_, point) -> List.map (fun mpl () -> point mpl) p.pl_mpls)
          p.pl_series)
      plans
  in
  let results = ref (Par.map ?pool (fun job -> job ()) jobs) in
  let take n =
    let rec go n acc =
      if n = 0 then List.rev acc
      else
        match !results with
        | [] -> invalid_arg "eval_plans: job/result mismatch"
        | r :: rest ->
            results := rest;
            go (n - 1) (r :: acc)
    in
    go n []
  in
  List.map
    (fun p ->
      {
        fig_id = p.pl_id;
        title = p.pl_title;
        expected = p.pl_expected;
        mpls = p.pl_mpls;
        series =
          List.map
            (fun (label, _) -> { label; points = take (List.length p.pl_mpls) })
            p.pl_series;
      })
    plans

(* One measurement point: [run_seeds] over the budget's seed list. *)
let point ~budget ~make_db ~mix ~isolation mpl =
  Driver.run_seeds ~with_metrics:budget.with_metrics ~make_db ~mix ~seeds:budget.seeds
    {
      Driver.default_config with
      Driver.isolation;
      mpl;
      warmup = budget.warmup;
      duration = budget.duration;
    }

let sweep_series ?(levels = levels) ~make_db ~mix (budget : budget) =
  List.map
    (fun (label, isolation) -> (label, point ~budget ~make_db ~mix ~isolation))
    levels

let print_figure fmt f =
  Fmt.pf fmt "@.=== %s: %s ===@." f.fig_id f.title;
  Fmt.pf fmt "paper: %s@." f.expected;
  (* throughput table *)
  Fmt.pf fmt "@.%-6s" "MPL";
  List.iter (fun s -> Fmt.pf fmt "%22s" (s.label ^ " tps (±95%)")) f.series;
  Fmt.pf fmt "@.";
  List.iteri
    (fun i mpl ->
      Fmt.pf fmt "%-6d" mpl;
      List.iter
        (fun s ->
          let p = List.nth s.points i in
          Fmt.pf fmt "%15.0f ±%5.0f" p.Driver.s_throughput p.Driver.s_ci)
        f.series;
      Fmt.pf fmt "@.")
    f.mpls;
  (* abort-rate table (the paper's (b) charts), % of commits *)
  Fmt.pf fmt "@.%-6s" "MPL";
  List.iter
    (fun s -> Fmt.pf fmt "  %30s" (s.label ^ " dl/conf/unsafe% (locks)"))
    f.series;
  Fmt.pf fmt "@.";
  List.iteri
    (fun i mpl ->
      Fmt.pf fmt "%-6d" mpl;
      List.iter
        (fun s ->
          let p = List.nth s.points i in
          Fmt.pf fmt "  %6.2f/%6.2f/%6.2f (%5.0f)"
            (100.0 *. p.Driver.s_deadlock_rate)
            (100.0 *. p.Driver.s_conflict_rate)
            (100.0 *. p.Driver.s_unsafe_rate)
            p.Driver.s_lock_table)
        f.series;
      Fmt.pf fmt "@.")
    f.mpls;
  (* engine-metrics table (budget.with_metrics): rw-edge counts by detection
     source plus lock-wait and retained-record pressure, per series/MPL *)
  let has_metrics =
    List.exists (fun s -> List.exists (fun p -> p.Driver.s_metrics <> None) s.points) f.series
  in
  if has_metrics then begin
    Fmt.pf fmt "@.%-6s" "MPL";
    List.iter
      (fun s -> Fmt.pf fmt "  %44s" (s.label ^ " edges nv/sx/ps/gap/uw doom wait ret"))
      f.series;
    Fmt.pf fmt "@.";
    List.iteri
      (fun i mpl ->
        Fmt.pf fmt "%-6d" mpl;
        List.iter
          (fun s ->
            let p = List.nth s.points i in
            match p.Driver.s_metrics with
            | None -> Fmt.pf fmt "  %44s" "-"
            | Some m ->
                Fmt.pf fmt "  %8d/%d/%d/%d/%d %6d %8.2gs %7d"
                  m.Obs.m_conflict_newer_version m.Obs.m_conflict_siread_x
                  m.Obs.m_conflict_page_stamp m.Obs.m_conflict_gap m.Obs.m_conflict_unknown
                  m.Obs.m_doomed
                  (Obs.hist_mean m.Obs.m_lock_wait)
                  m.Obs.m_retained_hwm)
          f.series;
        Fmt.pf fmt "@.")
      f.mpls
  end

(* {1 Berkeley DB / SmallBank experiments (§6.1)} *)

(* The 0.5s periodic deadlock detector makes S2PL results meaningless on
   sub-second windows; stretch the measurement for the BDB figures. *)
let bdb_budget (b : budget) =
  { b with duration = Float.max b.duration 1.5; warmup = Float.max b.warmup 0.25 }

let smallbank_db ?(customers = 20_000) ?(wal_mode = Wal.No_flush) () =
 fun sim ->
  let db = Db.create ~config:(Config.bdb ~wal_mode ()) sim in
  Smallbank.setup db ~customers ();
  db

let fig6_1 (budget : budget) =
  let budget = bdb_budget budget in
  {
    pl_id = "fig6.1";
    pl_title = "Berkeley DB SmallBank, no log flush (throughput vs MPL)";
    pl_expected =
      "SI and SSI track each other and far exceed S2PL (~10x at MPL 20); S2PL errors are \
       deadlocks, SSI adds unsafe aborts";
    pl_mpls = budget.mpls;
    pl_series =
      sweep_series ~make_db:(smallbank_db ()) ~mix:(Smallbank.mix ~customers:20_000 ()) budget;
  }

let fig6_2 (budget : budget) =
  let budget = bdb_budget budget in
  {
    pl_id = "fig6.2";
    pl_title = "Berkeley DB SmallBank, log flushed at commit";
    pl_expected =
      "I/O-bound: throughput rises with MPL via group commit; levels close until S2PL's \
       deadlock stalls bite at high MPL";
    pl_mpls = budget.mpls;
    pl_series =
      sweep_series
        ~make_db:(smallbank_db ~wal_mode:(Wal.Flush_per_commit 0.01) ())
        ~mix:(Smallbank.mix ~customers:20_000 ())
        budget;
  }

let fig6_3 (budget : budget) =
  let budget = bdb_budget budget in
  {
    pl_id = "fig6.3";
    pl_title = "Berkeley DB SmallBank, complex transactions (10 ops), log flush";
    pl_expected = "still I/O-bound; results mirror Fig 6.2 though each txn does 10x the work";
    pl_mpls = budget.mpls;
    pl_series =
      sweep_series
        ~make_db:(smallbank_db ~wal_mode:(Wal.Flush_per_commit 0.01) ())
        ~mix:(Smallbank.mix ~customers:20_000 ~ops_per_txn:10 ())
        budget;
  }

let fig6_4 (budget : budget) =
  let budget = bdb_budget budget in
  {
    pl_id = "fig6.4";
    pl_title = "Berkeley DB SmallBank, 1/10th contention (10x accounts), log flush";
    pl_expected =
      "S2PL and SI nearly identical; SSI 10-15% below due to page-level false positives \
       (higher unsafe rate than true conflicts would justify)";
    pl_mpls = budget.mpls;
    pl_series =
      sweep_series
        ~make_db:(smallbank_db ~customers:200_000 ~wal_mode:(Wal.Flush_per_commit 0.01) ())
        ~mix:(Smallbank.mix ~customers:200_000 ())
        budget;
  }

let fig6_5 (budget : budget) =
  let budget = bdb_budget budget in
  {
    pl_id = "fig6.5";
    pl_title = "Berkeley DB SmallBank, complex transactions + low contention";
    pl_expected = "like Fig 6.4 with 10x work per txn; SSI overhead stays in the 10-15% band";
    pl_mpls = budget.mpls;
    pl_series =
      sweep_series
        ~make_db:(smallbank_db ~customers:200_000 ~wal_mode:(Wal.Flush_per_commit 0.01) ())
        ~mix:(Smallbank.mix ~customers:200_000 ~ops_per_txn:10 ())
        budget;
  }

(* {1 InnoDB / sibench experiments (§6.3)} *)

let sibench_db ?(config = Config.innodb ()) ~items () =
 fun sim ->
  let db = Db.create ~config sim in
  Sibench.setup db ~items ();
  db

let sibench_fig ~fig_id ~items ~queries_per_update ~expected (budget : budget) =
  {
    pl_id = fig_id;
    pl_title =
      Printf.sprintf "InnoDB sibench, %d items, %d quer%s per update" items queries_per_update
        (if queries_per_update = 1 then "y" else "ies");
    pl_expected = expected;
    pl_mpls = budget.mpls;
    pl_series =
      sweep_series
        ~make_db:(sibench_db ~items ())
        ~mix:(Sibench.mix ~items ~queries_per_update ())
        budget;
  }

let fig6_6 = sibench_fig ~fig_id:"fig6.6" ~items:10 ~queries_per_update:1
    ~expected:"small table: updates serialise on hot rows; SI and SSI equal, S2PL below \
               (readers block writers)"

let fig6_7 = sibench_fig ~fig_id:"fig6.7" ~items:100 ~queries_per_update:1
    ~expected:"SI and SSI still close; S2PL clearly below"

let fig6_8 = sibench_fig ~fig_id:"fig6.8" ~items:1000 ~queries_per_update:1
    ~expected:"1000-row scans: SSI pays per-row SIREAD costs through the single-threaded \
               lock manager and falls below SI; S2PL worst"

let fig6_9 = sibench_fig ~fig_id:"fig6.9" ~items:10 ~queries_per_update:10
    ~expected:"query-mostly, 10 items: all levels closer; S2PL still pays read locking"

let fig6_10 = sibench_fig ~fig_id:"fig6.10" ~items:100 ~queries_per_update:10
    ~expected:"query-mostly, 100 items: SI ahead; SSI between SI and S2PL"

let fig6_11 = sibench_fig ~fig_id:"fig6.11" ~items:1000 ~queries_per_update:10
    ~expected:"query-mostly, 1000 items: lock-manager traffic dominates; SI >> SSI > S2PL"

(* {1 InnoDB / TPC-C++ experiments (§6.4)} *)

let tpcc_db ?(read_miss = 0.0) ~scale () =
 fun sim ->
  let config = { (Config.innodb ()) with Config.read_miss } in
  let db = Db.create ~config sim in
  Tpcc.setup db ~scale ();
  db

let tpcc_fig ~fig_id ~title ~expected ~scale ?(read_miss = 0.0) ?(skip_ytd = false)
    ?(stock_level = false) (budget : budget) =
  let mix = if stock_level then Tpcc.stock_level_mix scale else Tpcc.mix ~skip_ytd scale in
  {
    pl_id = fig_id;
    pl_title = title;
    pl_expected = expected;
    pl_mpls = budget.mpls;
    pl_series = sweep_series ~make_db:(tpcc_db ~read_miss ~scale ()) ~mix budget;
  }

let fig6_12 (budget : budget) =
  tpcc_fig ~fig_id:"fig6.12" ~title:"TPC-C++ 1 warehouse, skipping year-to-date updates"
    ~scale:(Tpcc.standard ~warehouses:1) ~skip_ytd:true
    ~expected:"in-memory, one warehouse: SI and SSI within ~10%; S2PL lower once MPL grows \
               (SLEV/OSTAT read locks block NEWO)"
    budget

let fig6_13 (budget : budget) =
  tpcc_fig ~fig_id:"fig6.13" ~title:"TPC-C++ 10 warehouses (larger data volume)"
    ~scale:(Tpcc.standard ~warehouses:10) ~read_miss:0.05
    ~expected:"I/O-bound: all three algorithms nearly indistinguishable; throughput rises \
               with MPL as the disk pipeline fills"
    budget

let fig6_14 (budget : budget) =
  tpcc_fig ~fig_id:"fig6.14" ~title:"TPC-C++ 10 warehouses, skipping ytd updates"
    ~scale:(Tpcc.standard ~warehouses:10) ~read_miss:0.05 ~skip_ytd:true
    ~expected:"still I/O-bound; skipping the ytd hotspots changes little at this scale"
    budget

let fig6_15 (budget : budget) =
  tpcc_fig ~fig_id:"fig6.15" ~title:"TPC-C++ 10 warehouses, tiny data scaling (high contention)"
    ~scale:(Tpcc.tiny ~warehouses:10)
    ~expected:"in-memory and contended: SI and SSI stay close; S2PL falls behind as blocking \
               grows; SSI unsafe aborts visible but small"
    budget

let fig6_16 (budget : budget) =
  tpcc_fig ~fig_id:"fig6.16" ~title:"TPC-C++ tiny scaling, skipping ytd updates"
    ~scale:(Tpcc.tiny ~warehouses:10) ~skip_ytd:true
    ~expected:"removing the Payment ytd hotspot lifts SI/SSI further above S2PL"
    budget

let fig6_17 (budget : budget) =
  tpcc_fig ~fig_id:"fig6.17" ~title:"TPC-C++ Stock Level mix, 10 warehouses"
    ~scale:(Tpcc.standard ~warehouses:10) ~read_miss:0.05 ~stock_level:true
    ~expected:"read-mostly mix dominated by large scans: multiversioning wins; S2PL's read \
               locks on stock rows block New Order"
    budget

let fig6_18 (budget : budget) =
  tpcc_fig ~fig_id:"fig6.18" ~title:"TPC-C++ Stock Level mix, tiny scaling"
    ~scale:(Tpcc.tiny ~warehouses:10) ~stock_level:true
    ~expected:"in-memory scans: SI clearly ahead of SSI (per-row SIREAD cost), S2PL worst — \
               the sibench 100-item regime writ large"
    budget

(* {1 Ablations (§3.6, §3.7, §2.8.5)} *)

(* Basic vs precise SSI: false-positive rate and throughput (§3.6). *)
let ablation_precise (budget : budget) =
  let budget = bdb_budget budget in
  (* High contention (few accounts) so that unsafe aborts are frequent
     enough to show the basic-vs-precise difference. *)
  let make_db variant sim =
    let config = { (Config.bdb ()) with Config.ssi = variant } in
    let db = Db.create ~config sim in
    Smallbank.setup db ~customers:1_000 ();
    db
  in
  {
    pl_id = "ablation-precise";
    pl_title = "SSI basic flags (§3.2) vs precise conflict references (§3.6), SmallBank";
    pl_expected = "precise mode (conflict references + commit-time tests) has a lower unsafe \
                rate than the boolean flags at equal or better throughput";
    pl_mpls = budget.mpls;
    pl_series =
      List.map
        (fun (label, variant) ->
          ( label,
            point ~budget ~make_db:(make_db variant)
              ~mix:(Smallbank.mix ~customers:1_000 ())
              ~isolation:Types.Serializable ))
        [ ("SSI-basic", Config.Basic); ("SSI-precise", Config.Precise) ];
  }

(* SIREAD upgrade (§3.7.3) on/off. *)
let ablation_upgrade (budget : budget) =
  let budget = bdb_budget budget in
  let make_db upgrade sim =
    let config = { (Config.bdb ()) with Config.upgrade_siread = upgrade } in
    let db = Db.create ~config sim in
    Smallbank.setup db ~customers:20_000 ();
    db
  in
  {
    pl_id = "ablation-upgrade";
    pl_title = "SIREAD->X upgrade optimisation (§3.7.3) on vs off, SmallBank SSI";
    pl_expected = "upgrade reduces retained locks and suspended transactions; throughput equal \
                or better";
    pl_mpls = budget.mpls;
    pl_series =
      List.map
        (fun (label, upgrade) ->
          ( label,
            point ~budget ~make_db:(make_db upgrade)
              ~mix:(Smallbank.mix ~customers:20_000 ())
              ~isolation:Types.Serializable ))
        [ ("upgrade-on", true); ("upgrade-off", false) ];
  }

(* The §2.8.5 static fixes under plain SI vs Serializable SI: the
   alternative the paper's approach replaces (cf. Alomari et al. 2008). *)
let ablation_fixes (budget : budget) =
  let budget = bdb_budget budget in
  let make_db sim =
    let db = Db.create ~config:(Config.bdb ()) sim in
    Smallbank.setup db ~customers:20_000 ();
    db
  in
  let series_of label isolation fix =
    (label, point ~budget ~make_db ~mix:(Smallbank.mix ~fix ~customers:20_000 ()) ~isolation)
  in
  {
    pl_id = "ablation-fixes";
    pl_title = "Making SmallBank serializable: static fixes at SI vs Serializable SI (§2.8.5)";
    pl_expected = "which fix wins is platform-dependent (Alomari 2008): here promotion beats \
                materialization (as on PostgreSQL) and PromoteBW adds the most conflicts \
                (it turns the read-only Bal into an update); SSI is competitive with the \
                best fix without any application change";
    pl_mpls = budget.mpls;
    pl_series =
      [
        series_of "SSI" Types.Serializable Smallbank.No_fix;
        series_of "SI+MatWT" Types.Snapshot Smallbank.Materialize_wt;
        series_of "SI+PromWT" Types.Snapshot Smallbank.Promote_wt;
        series_of "SI+MatBW" Types.Snapshot Smallbank.Materialize_bw;
        series_of "SI+PromBW" Types.Snapshot Smallbank.Promote_bw;
      ];
  }

(* Kernel-mutex (single-threaded lock manager) ablation for the §6.3
   bottleneck analysis. *)
let ablation_lock_mutex (budget : budget) =
  let make_db mutex sim =
    let config = { (Config.innodb ()) with Config.lock_mutex = mutex } in
    let db = Db.create ~config sim in
    Sibench.setup db ~items:1000 ();
    db
  in
  {
    pl_id = "ablation-mutex";
    pl_title = "InnoDB kernel mutex on/off, sibench 1000 items, SSI";
    pl_expected = "serialised lock manager caps SSI scan throughput (§6.3); removing it \
                recovers most of the gap to SI";
    pl_mpls = budget.mpls;
    pl_series =
      List.map
        (fun (label, mutex) ->
          ( label,
            point ~budget ~make_db:(make_db mutex)
              ~mix:(Sibench.mix ~items:1000 ())
              ~isolation:Types.Serializable ))
        [ ("mutex-on", true); ("mutex-off", false) ];
  }

(* Mixed mode (§3.8): read-only queries at plain SI alongside SSI updates. *)
let ablation_mixed (budget : budget) =
  let make_db sim =
    let db = Db.create ~config:(Config.innodb ()) sim in
    Sibench.setup db ~items:1000 ();
    db
  in
  (* The driver applies one isolation level per run; mixed mode is driven by
     a custom client loop instead. *)
  let run_mixed ~queries_at mpl seed =
    let sim = Sim.create () in
    let db = make_db sim in
    let commits = ref 0 in
    let unsafe = ref 0 in
    let horizon = budget.warmup +. budget.duration in
    for client = 1 to mpl do
      Sim.spawn sim (fun () ->
          let st = Random.State.make [| seed; client |] in
          let rec loop () =
            if Sim.now sim < horizon then begin
              let query = Random.State.bool st in
              let isolation = if query then queries_at else Types.Serializable in
              let body t =
                if query then ignore (Sibench.query t) else Sibench.update ~items:1000 st t
              in
              (match Db.run db isolation body with
              | Ok () -> if Sim.now sim >= budget.warmup then incr commits
              | Error Types.Unsafe ->
                  if Sim.now sim >= budget.warmup then incr unsafe
              | Error _ -> ());
              loop ()
            end
          in
          loop ())
    done;
    Sim.run ~until:horizon sim;
    (float_of_int !commits /. budget.duration, !unsafe)
  in
  let mixed_point queries_at mpl =
    let tps = List.map (fun seed -> fst (run_mixed ~queries_at mpl seed)) budget.seeds in
    let m, ci = Stats.ci95 tps in
    {
      Driver.s_mpl = mpl;
      s_throughput = m;
      s_ci = ci;
      s_deadlock_rate = 0.0;
      s_conflict_rate = 0.0;
      s_unsafe_rate = 0.0;
      s_user_abort_rate = 0.0;
      s_mean_response = 0.0;
      s_lock_table = 0.0;
      s_metrics = None;
    }
  in
  {
    pl_id = "ablation-mixed";
    pl_title = "Queries at plain SI mixed with SSI updates (§3.8), sibench 1000";
    pl_expected = "running read-only queries at SI removes their SIREAD overhead and unsafe \
                aborts; total throughput improves";
    pl_mpls = budget.mpls;
    pl_series =
      List.map
        (fun (label, queries_at) -> (label, mixed_point queries_at))
        [ ("queries@SSI", Types.Serializable); ("queries@SI", Types.Snapshot) ];
  }

(* Read-only snapshot refinement (extension) on/off: high-contention
   SmallBank, where Bal is a declared read-only query. *)
let ablation_ro (budget : budget) =
  let budget = bdb_budget budget in
  let make_db refinement sim =
    (* Precise mode: the refinement extends the conflict-reference tests. *)
    let config =
      { (Config.bdb ()) with Config.ssi = Config.Precise; Config.ro_refinement = refinement }
    in
    let db = Db.create ~config sim in
    Smallbank.setup db ~customers:1_000 ();
    db
  in
  {
    pl_id = "ablation-ro";
    pl_title = "Read-only snapshot refinement on/off, SmallBank SSI (extension)";
    pl_expected =
      "pivots whose incoming neighbour is a declared read-only Bal that began before \
       T_out committed are spared: lower unsafe rate at equal or better throughput";
    pl_mpls = budget.mpls;
    pl_series =
      List.map
        (fun (label, refinement) ->
          ( label,
            point ~budget ~make_db:(make_db refinement)
              ~mix:(Smallbank.mix ~customers:1_000 ())
              ~isolation:Types.Serializable ))
        [ ("refinement-off", false); ("refinement-on", true) ];
  }

(* Bounded-memory SIREAD retention (Config.memory_budget): a pinned
   read-only snapshot keeps the oldest-active-snapshot watermark from
   reclaiming anything, so unbounded SSI retention (§4.8) grows with every
   commit for as long as the pin holds. The budget caps it with row->page
   promotion and committed-transaction summarization, at the price of
   conservative (false-positive) unsafe aborts. The driver applies one
   isolation level per run and has no pinned client, so this figure runs a
   custom loop like ablation-mixed; the "(locks)" column reports the
   retained-records + live-SIREAD-entries high-water mark. *)
let ablation_retention (budget : budget) =
  let keys = 256 in
  let key i = Printf.sprintf "k%03d" i in
  let run_bounded ~memory_budget mpl seed =
    let sim = Sim.create () in
    let config =
      {
        (Config.innodb ~wal_mode:Wal.No_flush ()) with
        Config.lock_mutex = false;
        memory_budget;
        promote_threshold = 4;
      }
    in
    let db = Db.create ~config sim in
    ignore (Db.create_table db "t");
    Db.load db "t" (List.init keys (fun i -> (key i, "0")));
    let horizon = budget.warmup +. budget.duration in
    (* the pin: a read-only SSI snapshot held for the whole window *)
    Sim.spawn sim (fun () ->
        ignore
          (Db.run db Types.Serializable (fun t ->
               for i = 0 to 7 do
                 ignore (Txn.read t "t" (key i))
               done;
               Sim.delay sim horizon)));
    let commits = ref 0 and unsafe = ref 0 and hwm = ref 0 in
    for client = 1 to mpl do
      Sim.spawn sim (fun () ->
          let st = Random.State.make [| seed; client |] in
          let rec loop () =
            if Sim.now sim < horizon then begin
              let r = key (Random.State.int st keys) in
              let w = key (Random.State.int st keys) in
              (match
                 Db.run db Types.Serializable (fun t ->
                     ignore (Txn.read t "t" r);
                     Txn.write t "t" w "1")
               with
              | Ok () -> if Sim.now sim >= budget.warmup then incr commits
              | Error Types.Unsafe -> if Sim.now sim >= budget.warmup then incr unsafe
              | Error _ -> ());
              let p = Db.retained_count db + Db.siread_entry_count db in
              if p > !hwm then hwm := p;
              loop ()
            end
          in
          loop ())
    done;
    Sim.run ~until:horizon sim;
    (float_of_int !commits /. budget.duration, !unsafe, !commits, !hwm)
  in
  let bounded_point memory_budget mpl =
    let runs = List.map (fun seed -> run_bounded ~memory_budget mpl seed) budget.seeds in
    let m, ci = Stats.ci95 (List.map (fun (tps, _, _, _) -> tps) runs) in
    let unsafe = List.fold_left (fun acc (_, u, _, _) -> acc + u) 0 runs in
    let commits = List.fold_left (fun acc (_, _, c, _) -> acc + c) 0 runs in
    let hwm = List.fold_left (fun acc (_, _, _, h) -> max acc h) 0 runs in
    {
      Driver.s_mpl = mpl;
      s_throughput = m;
      s_ci = ci;
      s_deadlock_rate = 0.0;
      s_conflict_rate = 0.0;
      s_unsafe_rate =
        (if commits > 0 then float_of_int unsafe /. float_of_int commits else 0.0);
      s_user_abort_rate = 0.0;
      s_mean_response = 0.0;
      s_lock_table = float_of_int hwm;
      s_metrics = None;
    }
  in
  {
    pl_id = "retention-budget";
    pl_title = "SIREAD retention under a pinned snapshot: unbounded vs memory budget 256";
    pl_expected =
      "unbounded retention grows with every commit while the pin holds (the lock column is \
       the retained+SIREAD high-water mark, far above MPL); the budget caps it near 256 via \
       promotion and summarization, costing a modest rise in conservative unsafe aborts at \
       similar throughput";
    pl_mpls = budget.mpls;
    pl_series =
      [ ("unbounded", bounded_point None); ("budget=256", bounded_point (Some 256)) ];
  }

(* Timeline variant of the retention experiment: the same bounded-memory
   loop, but the pinned read-only snapshot RELEASES at 60% of the horizon
   and the run carries a tracing+provenance sink. The timeline's retention
   gauges then show the §4.8 mechanism as a time series instead of a single
   high-water mark: SIREAD/retained ramp monotonically while the pin holds
   the oldest-active-snapshot watermark back, then fall after the release
   drains the suspended queue. Returns the sink and the horizon (pass both
   to [Timeline.of_obs ~horizon] so trailing quiet windows materialise). *)
let retention_timeline_run ?memory_budget ~mpl ~warmup ~duration ~seed () =
  let keys = 256 in
  let key i = Printf.sprintf "k%03d" i in
  let sim = Sim.create () in
  let config =
    {
      (Config.innodb ~wal_mode:Wal.No_flush ()) with
      Config.lock_mutex = false;
      memory_budget;
      promote_threshold = 4;
    }
  in
  let db = Db.create ~config sim in
  let obs = Obs.create ~trace:true ~provenance:true ~metrics:true () in
  Db.set_obs db obs;
  ignore (Db.create_table db "t");
  Db.load db "t" (List.init keys (fun i -> (key i, "0")));
  let horizon = warmup +. duration in
  let pin_release = warmup +. (0.6 *. duration) in
  Sim.spawn sim (fun () ->
      ignore
        (Db.run db Types.Serializable (fun t ->
             for i = 0 to 7 do
               ignore (Txn.read t "t" (key i))
             done;
             Sim.delay sim (pin_release -. Sim.now sim))));
  for client = 1 to mpl do
    Sim.spawn sim (fun () ->
        let st = Random.State.make [| seed; client |] in
        let rec loop () =
          if Sim.now sim < horizon then begin
            let r = key (Random.State.int st keys) in
            let w = key (Random.State.int st keys) in
            ignore
              (Db.run db Types.Serializable (fun t ->
                   ignore (Txn.read t "t" r);
                   Txn.write t "t" w "1"));
            loop ()
          end
        in
        loop ())
  done;
  Sim.run ~until:horizon sim;
  if not (Db.work_conserved db) then
    failwith "retention_timeline_run: wasted-work conservation violated";
  (obs, horizon)

(* Real LRU buffer pool vs the probabilistic read_miss model on the
   I/O-bound TPC-C++ configuration of Fig 6.13 — validating the DESIGN.md
   substitution. *)
let ablation_bufferpool (budget : budget) =
  let scale = Tpcc.standard ~warehouses:10 in
  let make_db variant sim =
    let config =
      match variant with
      | `Probabilistic -> { (Config.innodb ()) with Config.read_miss = 0.05 }
      | `Pool pages -> { (Config.innodb ()) with Config.buffer_pool = Some pages }
    in
    let db = Db.create ~config sim in
    Tpcc.setup db ~scale ();
    Db.prewarm_cache db;
    db
  in
  {
    pl_id = "ablation-bufferpool";
    pl_title = "TPC-C++ 10 warehouses: probabilistic miss model vs real LRU buffer pool";
    pl_expected =
      "a pool smaller than the hot set is I/O bound and thrashes as MPL grows (locality \
       dynamics the flat read_miss model cannot show); a pool covering the hot set recovers \
       in-memory throughput — validating the DESIGN.md substitution for Fig 6.13";
    pl_mpls = budget.mpls;
    pl_series =
      List.map
        (fun (label, variant) ->
          ( label,
            point ~budget ~make_db:(make_db variant) ~mix:(Tpcc.mix scale)
              ~isolation:Types.Serializable ))
        [
          ("read-miss 5%", `Probabilistic);
          ("LRU small", `Pool 2_500);
          ("LRU big", `Pool 200_000);
        ];
  }

(* {1 Registry} *)

let all_figures =
  [
    ("fig6.1", fig6_1);
    ("fig6.2", fig6_2);
    ("fig6.3", fig6_3);
    ("fig6.4", fig6_4);
    ("fig6.5", fig6_5);
    ("fig6.6", fig6_6);
    ("fig6.7", fig6_7);
    ("fig6.8", fig6_8);
    ("fig6.9", fig6_9);
    ("fig6.10", fig6_10);
    ("fig6.11", fig6_11);
    ("fig6.12", fig6_12);
    ("fig6.13", fig6_13);
    ("fig6.14", fig6_14);
    ("fig6.15", fig6_15);
    ("fig6.16", fig6_16);
    ("fig6.17", fig6_17);
    ("fig6.18", fig6_18);
    ("ablation-precise", ablation_precise);
    ("ablation-upgrade", ablation_upgrade);
    ("ablation-fixes", ablation_fixes);
    ("ablation-mutex", ablation_lock_mutex);
    ("ablation-mixed", ablation_mixed);
    ("ablation-bufferpool", ablation_bufferpool);
    ("ablation-ro", ablation_ro);
    ("retention-budget", ablation_retention);
  ]

(* Static titles so `list` does not need to run anything. *)
let titles =
  [
    ("fig6.1", "Berkeley DB SmallBank, no log flush");
    ("fig6.2", "Berkeley DB SmallBank, log flushed at commit");
    ("fig6.3", "Berkeley DB SmallBank, complex transactions, log flush");
    ("fig6.4", "Berkeley DB SmallBank, low contention (10x accounts)");
    ("fig6.5", "Berkeley DB SmallBank, complex + low contention");
    ("fig6.6", "InnoDB sibench, 10 items, mixed workload");
    ("fig6.7", "InnoDB sibench, 100 items, mixed workload");
    ("fig6.8", "InnoDB sibench, 1000 items, mixed workload");
    ("fig6.9", "InnoDB sibench, 10 items, query-mostly");
    ("fig6.10", "InnoDB sibench, 100 items, query-mostly");
    ("fig6.11", "InnoDB sibench, 1000 items, query-mostly");
    ("fig6.12", "TPC-C++ 1 warehouse, skip ytd");
    ("fig6.13", "TPC-C++ 10 warehouses (I/O bound)");
    ("fig6.14", "TPC-C++ 10 warehouses, skip ytd");
    ("fig6.15", "TPC-C++ tiny scaling (high contention)");
    ("fig6.16", "TPC-C++ tiny scaling, skip ytd");
    ("fig6.17", "TPC-C++ Stock Level mix, 10 warehouses");
    ("fig6.18", "TPC-C++ Stock Level mix, tiny scaling");
    ("ablation-precise", "SSI basic vs precise conflict tracking (3.6)");
    ("ablation-upgrade", "SIREAD upgrade optimisation on/off (3.7.3)");
    ("ablation-fixes", "SmallBank static fixes at SI vs SSI (2.8.5)");
    ("ablation-mutex", "lock-manager kernel mutex on/off (6.3)");
    ("ablation-mixed", "SI queries mixed with SSI updates (3.8)");
    ("ablation-bufferpool", "probabilistic read_miss vs real LRU buffer pool");
    ("ablation-ro", "read-only snapshot refinement on/off (extension)");
    ("retention-budget", "bounded SIREAD memory: unbounded vs budget (4.8 extension)");
  ]

let find_figure id = List.assoc_opt id all_figures

(* Run a batch of experiments: every (figure, series, MPL) point across
   all requested ids is submitted to the pool as one flat job list, then
   the figures print in request order — identical bytes to a sequential
   run, arbitrary parallelism across sweeps and figures. *)
let run_many ?pool ?(budget = full_budget) fmt ids =
  let items = List.map (fun id -> (id, Option.map (fun mk -> mk budget) (find_figure id))) ids in
  let figures = ref (eval_plans ?pool (List.filter_map snd items)) in
  List.iter
    (fun (id, plan) ->
      match plan with
      | None -> Fmt.pf fmt "unknown experiment %s@." id
      | Some _ -> (
          match !figures with
          | f :: rest ->
              figures := rest;
              print_figure fmt f
          | [] -> assert false))
    items

let run_and_print ?pool ?(budget = full_budget) fmt id = run_many ?pool ~budget fmt [ id ]
