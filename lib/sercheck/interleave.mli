(** Interleaving tester, replicating and generalising §4.7: run every (or a
    chosen / randomly sampled) interleaving of small transaction scripts
    against a fresh engine and verify serializability outcomes per isolation
    level.

    Scheduling is blocking-capable: each transaction runs in its own
    simulator process and a scheduler process grants one-operation turns in
    the requested order. Operations that block (write-write lock waits, S2PL
    read locks, gap and page locks) park their transaction; its remaining
    turns are skipped until the lock is granted and any leftovers run in a
    final drain phase, so scripts with cross-transaction write-write
    conflicts execute deterministically and always terminate. *)

type op =
  | R of string  (** point read *)
  | W of string  (** blind write *)
  | Rfu of string  (** SELECT ... FOR UPDATE (§4.5 fast path) *)
  | Insert of string  (** insert a fresh key (gap-locked, Fig 3.7) *)
  | Delete of string  (** delete (tombstone write) *)
  | Scan of string option * string option * int option
      (** range scan [lo, hi] with optional LIMIT (next-key locking,
          Fig 3.6) *)
  | Abort_op  (** user-requested rollback; ends the script *)

type spec = op list

val table : string

val op_to_string : op -> string

(** Ops joined with ";", e.g. ["r(x);w(y)"]. *)
val spec_to_string : spec -> string

(** The rows loaded by default before an interleaving runs: value ["0"] for
    every key named by a read, write, locking read or delete. Insert targets
    are excluded so inserts have fresh keys to create. *)
val default_init : spec list -> (string * string) list

(** All merges of the scripts' operation sequences, produced lazily in
    lexicographic transaction-index order; memory is O(total ops) however
    many interleavings there are. *)
val interleavings_seq : spec list -> (int * op) list Seq.t

(** {!interleavings_seq} materialized (multinomial count — keep the specs
    small). *)
val interleavings : spec list -> (int * op) list list

(** Multinomial schedule count [(Σ len_i)! / Π len_i!] — the brute-force
    bound the explorer's reduction factor is measured against. *)
val count_interleavings : spec list -> int

(** One random merge, uniform over the multinomial interleaving set (the
    next transaction is weighted by its remaining-operation count). *)
val random_order : Random.State.t -> spec list -> (int * op) list

type result = {
  outcomes : Core.Types.abort_reason option list;  (** [None] = committed *)
  history : Core.Types.committed_record list;
  serializable : bool;
  crashed : bool;  (** an armed [Wal] crash plan fired during the run *)
  db : Core.Db.t;  (** the engine the interleaving ran against *)
  txn_ids : int list;
      (** engine transaction id per spec index ([-1] if never begun), so
          outcome digests can rename schedule-dependent ids to indices *)
}

(** Execute one interleaving at the given isolation. [init] overrides the
    {!default_init} rows; [ro] declares transactions READ ONLY at begin
    (must match the spec count). [obs] attaches an observability sink to the
    freshly created engine before any transaction starts (abort-provenance
    certificates, trace spans). Each transaction commits right after its
    last operation. Turns offered to a blocked transaction are skipped and
    its remaining operations run in a drain phase, so every transaction
    terminates (commit or abort) before the call returns.

    [db] switches to continuation mode: the interleaving runs against the
    given (e.g. freshly recovered) engine and its simulation instead of a
    fresh one — no table creation, no bulk load, [config] ignored. [crash]
    arms a deterministic fault plan after the bulk load; if it fires, the
    simulated machine is abandoned mid-run, [crashed] is set, and the
    surviving state is the WAL's durable prefix (feed
    [Wal.durable_log (Db.wal result.db)] to [Db.recover]). *)
val run_interleaving :
  ?config:Core.Config.t ->
  ?obs:Obs.t ->
  ?init:(string * string) list ->
  ?ro:bool list ->
  ?db:Core.Db.t ->
  ?crash:Wal.plan ->
  isolation:Core.Types.isolation ->
  spec list ->
  (int * op) list ->
  result

(** One scheduler turn of a {!run_directed} run. [ds_free] distinguishes
    genuine choice points from canonical drain-phase grants (once every
    unfinished transaction is parked, any order list falls into the same
    index-order drain — those grants are not schedule branch points).
    Footprints are mutable: a parked operation keeps touching resources as
    it resumes during later turns, so they are only complete once the run
    has finished. *)
type dstep = {
  ds_txn : int;  (** spec index granted this turn *)
  ds_enabled : int list;  (** grantable spec indices at that moment, ascending *)
  ds_free : bool;  (** true = free choice point; false = canonical drain *)
  mutable ds_reads : string list;  (** resources the op read (unordered) *)
  mutable ds_writes : string list;  (** resources the op wrote *)
}

(** Execute the scripts granting turns via [pick ~step ~enabled ~steps]
    ([enabled] ascending and non-empty, [steps] newest first with partial
    footprints), recording each turn's observed read/write footprint via the
    engine's [Db.set_on_touch] hook. Once no transaction is grantable the
    run switches permanently to the canonical drain loop. [begin_marker]
    makes every transaction's first turn write a shared ["tid"]
    pseudo-resource, for configurations whose behaviour depends on
    transaction-id order (Prefer_younger victims, the periodic detector's
    kill-the-youngest rule). Raises [Invalid_argument] if [pick] returns a
    transaction not in [enabled]. *)
val run_directed :
  ?config:Core.Config.t ->
  ?obs:Obs.t ->
  ?init:(string * string) list ->
  ?ro:bool list ->
  ?begin_marker:bool ->
  isolation:Core.Types.isolation ->
  spec list ->
  pick:(step:int -> enabled:int list -> steps:dstep list -> int) ->
  result * dstep list

type summary = {
  total : int;
  all_committed : int;
  non_serializable : int;
  unsafe_aborts : int;
  other_aborts : int;
}

(** Run every interleaving and summarise. *)
val sweep : ?config:Core.Config.t -> isolation:Core.Types.isolation -> spec list -> summary

(** The paper's §4.7 detection set: T1: r(x); T2: r(y) w(x); T3: w(y) —
    a dependency path, always serializable, but SSI must flag T2. *)
val paper_spec : spec list

(** Classic write skew: both read x and y; one writes x, the other y. *)
val write_skew_spec : spec list

(** Example 3 (read-only anomaly): some interleavings are genuinely
    non-serializable under SI. *)
val read_only_anomaly_spec : spec list

(** {1 4–5-transaction variants} — exhaustively checkable only through the
    DPOR explorer (multinomial counts from thousands to hundreds of
    thousands). *)

(** §4.7 stretched to a dependency 4-chain (180 interleavings). *)
val paper_spec_4 : spec list

(** §4.7 stretched to a 5-chain (5040 interleavings). *)
val paper_spec_5 : spec list

(** Write skew closed into a 3-cycle (1680 interleavings). *)
val write_skew_spec_3 : spec list

(** Write skew as a 4-cycle (369600 interleavings — past the CI budget for
    full enumeration; the explorer's showcase). *)
val write_skew_spec_4 : spec list

(** Read-only anomaly plus a second independent observer (2520). *)
val read_only_anomaly_spec_4 : spec list
