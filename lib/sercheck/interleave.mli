(** Interleaving tester, replicating and generalising §4.7: run every (or a
    chosen / randomly sampled) interleaving of small transaction scripts
    against a fresh engine and verify serializability outcomes per isolation
    level.

    Scheduling is blocking-capable: each transaction runs in its own
    simulator process and a scheduler process grants one-operation turns in
    the requested order. Operations that block (write-write lock waits, S2PL
    read locks, gap and page locks) park their transaction; its remaining
    turns are skipped until the lock is granted and any leftovers run in a
    final drain phase, so scripts with cross-transaction write-write
    conflicts execute deterministically and always terminate. *)

type op =
  | R of string  (** point read *)
  | W of string  (** blind write *)
  | Rfu of string  (** SELECT ... FOR UPDATE (§4.5 fast path) *)
  | Insert of string  (** insert a fresh key (gap-locked, Fig 3.7) *)
  | Delete of string  (** delete (tombstone write) *)
  | Scan of string option * string option * int option
      (** range scan [lo, hi] with optional LIMIT (next-key locking,
          Fig 3.6) *)
  | Abort_op  (** user-requested rollback; ends the script *)

type spec = op list

val table : string

val op_to_string : op -> string

(** Ops joined with ";", e.g. ["r(x);w(y)"]. *)
val spec_to_string : spec -> string

(** The rows loaded by default before an interleaving runs: value ["0"] for
    every key named by a read, write, locking read or delete. Insert targets
    are excluded so inserts have fresh keys to create. *)
val default_init : spec list -> (string * string) list

(** All merges of the scripts' operation sequences (multinomial count —
    keep the specs small), each op tagged with its transaction index. *)
val interleavings : spec list -> (int * op) list list

(** One random merge, uniform over the multinomial interleaving set (the
    next transaction is weighted by its remaining-operation count). *)
val random_order : Random.State.t -> spec list -> (int * op) list

type result = {
  outcomes : Core.Types.abort_reason option list;  (** [None] = committed *)
  history : Core.Types.committed_record list;
  serializable : bool;
  crashed : bool;  (** an armed [Wal] crash plan fired during the run *)
  db : Core.Db.t;  (** the engine the interleaving ran against *)
}

(** Execute one interleaving at the given isolation. [init] overrides the
    {!default_init} rows; [ro] declares transactions READ ONLY at begin
    (must match the spec count). [obs] attaches an observability sink to the
    freshly created engine before any transaction starts (abort-provenance
    certificates, trace spans). Each transaction commits right after its
    last operation. Turns offered to a blocked transaction are skipped and
    its remaining operations run in a drain phase, so every transaction
    terminates (commit or abort) before the call returns.

    [db] switches to continuation mode: the interleaving runs against the
    given (e.g. freshly recovered) engine and its simulation instead of a
    fresh one — no table creation, no bulk load, [config] ignored. [crash]
    arms a deterministic fault plan after the bulk load; if it fires, the
    simulated machine is abandoned mid-run, [crashed] is set, and the
    surviving state is the WAL's durable prefix (feed
    [Wal.durable_log (Db.wal result.db)] to [Db.recover]). *)
val run_interleaving :
  ?config:Core.Config.t ->
  ?obs:Obs.t ->
  ?init:(string * string) list ->
  ?ro:bool list ->
  ?db:Core.Db.t ->
  ?crash:Wal.plan ->
  isolation:Core.Types.isolation ->
  spec list ->
  (int * op) list ->
  result

type summary = {
  total : int;
  all_committed : int;
  non_serializable : int;
  unsafe_aborts : int;
  other_aborts : int;
}

(** Run every interleaving and summarise. *)
val sweep : ?config:Core.Config.t -> isolation:Core.Types.isolation -> spec list -> summary

(** The paper's §4.7 detection set: T1: r(x); T2: r(y) w(x); T3: w(y) —
    a dependency path, always serializable, but SSI must flag T2. *)
val paper_spec : spec list

(** Classic write skew: both read x and y; one writes x, the other y. *)
val write_skew_spec : spec list

(** Example 3 (read-only anomaly): some interleavings are genuinely
    non-serializable under SI. *)
val read_only_anomaly_spec : spec list
