(* DPOR schedule explorer (tentpole of the state-space exploration work):
   replay-based depth-first exploration with backtrack (source) sets and
   sleep sets over the engine's *observed* dependency relation.

   Where `Interleave.sweep` executes every merge of the transaction scripts
   (the multinomial bound), the explorer executes one schedule, records the
   resources each scheduler turn actually touched (row versions, page
   stamps, gaps, lock-manager entries, doom flags — the footprint hook of
   {!Db.set_on_touch}), and only branches where two turns of different
   transactions touched the same resource with at least one write. Turns
   with disjoint footprints commute: executing them in either order reaches
   the same engine state, so one order suffices. The cross-validation
   harness ({!cross_validate}) checks the resulting soundness claim
   wholesale: on every program small enough to enumerate, the explorer must
   produce exactly the set of distinct outcome digests the full sweep does.

   Exploration is organised as a frontier worklist rather than literal
   recursion: each queue entry is a choice-sequence prefix to replay plus a
   sleep set, executions of a frontier batch are embarrassingly parallel
   (fresh simulator and engine per run — {!Par}), and race analysis runs
   sequentially in enqueue order, so output is byte-identical at any [-j].

   The drain phase folds into happens-before for free: once no transaction
   is grantable, `run_directed` switches to the canonical index-order drain
   and marks those turns [ds_free = false]. Drain turns still carry
   footprints (they order against earlier turns) but are never branch
   points — any turn order reaching the same free-choice prefix performs
   the identical drain, exactly the skipped-turn semantics of
   `run_interleaving`. *)

open Core

module ISet = Set.Make (Int)
module SSet = Set.Make (String)

type stats = {
  executed : int;  (* schedules actually run *)
  bound : int;  (* multinomial brute-force schedule count *)
  backtracks : int;  (* branch points added by race analysis *)
  sleep_hits : int;  (* backtrack candidates suppressed as already covered *)
  sleep_blocked : int;  (* picks where every enabled transaction slept *)
  duplicates : int;  (* runs that re-arrived at an already-analyzed trace *)
}

(* {1 Outcome digests}

   The equivalence classes the explorer preserves are *semantic* outcomes,
   so the digest must not embed schedule artifacts: engine transaction ids,
   begin/commit timestamps and SIREAD bookkeeping all differ between
   schedules that are observationally identical. Everything is renamed
   through the spec index: per-index verdict (committed or abort reason),
   each committed read as (table, key, writer index), the final store as
   the per-key last writer index, and the MVSG serializability verdict. *)

let outcome_digest (r : Interleave.result) : string =
  let id_to_index = Hashtbl.create 8 in
  List.iteri (fun i id -> if id >= 0 then Hashtbl.replace id_to_index id i) r.txn_ids;
  (* Version timestamps are commit timestamps; map them back to the writer's
     spec index. [0] is the initial bulk load; any other unknown writer
     (pre-workload setup in continuation-style harnesses) also canonicalises
     to the load. *)
  let commit_writer = Hashtbl.create 8 in
  List.iter
    (fun h ->
      match Hashtbl.find_opt id_to_index h.Types.h_id with
      | Some i -> Hashtbl.replace commit_writer h.Types.h_commit i
      | None -> ())
    r.history;
  let writer_name ts =
    match Hashtbl.find_opt commit_writer ts with
    | Some i -> "t" ^ string_of_int i
    | None -> "init"
  in
  let b = Buffer.create 256 in
  List.iteri
    (fun i o ->
      Buffer.add_string b
        (Printf.sprintf "o%d=%s\n" i
           (match o with
           | None -> "commit"
           | Some reason -> Types.abort_reason_to_string reason)))
    r.outcomes;
  let recs =
    List.filter_map
      (fun h ->
        match Hashtbl.find_opt id_to_index h.Types.h_id with
        | Some i -> Some (i, h)
        | None -> None)
      r.history
  in
  let recs = List.sort (fun (a, _) (b, _) -> compare a b) recs in
  List.iter
    (fun (i, h) ->
      Buffer.add_string b (Printf.sprintf "r%d:" i);
      List.iter
        (fun rr ->
          Buffer.add_string b
            (Printf.sprintf " %s/%s=%s" rr.Types.r_table rr.Types.r_key
               (writer_name rr.Types.r_version)))
        h.Types.h_reads;
      Buffer.add_char b '\n')
    recs;
  (* Final store: the last committed writer of every written key. *)
  let final = Hashtbl.create 8 in
  List.iter
    (fun (i, h) ->
      List.iter
        (fun (tbl, key) ->
          match Hashtbl.find_opt final (tbl, key) with
          | Some (ts, _) when ts >= h.Types.h_commit -> ()
          | _ -> Hashtbl.replace final (tbl, key) (h.Types.h_commit, i))
        h.Types.h_writes)
    recs;
  let final_rows =
    List.sort compare (Hashtbl.fold (fun (t, k) (_, i) acc -> (t, k, i) :: acc) final [])
  in
  List.iter (fun (t, k, i) -> Buffer.add_string b (Printf.sprintf "f %s/%s=t%d\n" t k i)) final_rows;
  Buffer.add_string b (if r.serializable then "ser\n" else "non-ser\n");
  Digest.to_hex (Digest.string (Buffer.contents b))

(* {1 The dependency relation}

   Two turns are dependent iff the same transaction issued both (program
   order) or their observed footprints intersect on a resource at least one
   of them wrote. Read-read sharing commutes — this is where most of the
   reduction comes from (every SIREAD acquisition of a hot row would
   otherwise order all readers). *)

(* Visibility shadows ("c/<resource>", written by commits at publication,
   read at snapshot-pin turns) get one special rule: the write/read pair is
   a real dependency — it decides whether the commit is inside the reader's
   snapshot; the write-skew serial orders hinge on it — but two shadow
   *writes* commute: the horizon is monotonic, and every observer orders
   itself against each advance through its own pin-read race. Without the
   exemption any two commits touching the same data would be dependent
   even when the row-level races already order them. *)
let shadowed res = String.length res >= 2 && res.[0] = 'c' && res.[1] = '/'

let fp_conflict (r1, w1) (r2, w2) =
  List.exists (fun res -> List.mem res r2 || ((not (shadowed res)) && List.mem res w2)) w1
  || List.exists (fun res -> List.mem res r1) w2

(* Configurations whose behaviour depends on transaction-id *order* need the
   begin marker: ids are handed out in begin order, so two first turns must
   never be treated as commuting under Prefer_younger victim selection or
   the periodic detector's kill-the-youngest rule. *)
let needs_begin_marker (config : Config.t) =
  config.Config.victim = Config.Prefer_younger
  || match config.Config.detection with Lockmgr.Periodic _ -> true | Lockmgr.Immediate -> false

(* A sleep entry: transaction [sl_txn] was explored from the node at free
   depth [sl_depth] with final footprint [sl_fp]; re-picking it is redundant
   until some later turn conflicts with that footprint. *)
type sentry = { sl_txn : int; sl_depth : int; sl_fp : string list * string list }

type branch = { br_prefix : int list (* oldest first *); br_sleep : sentry list }

(* Per choice-prefix node bookkeeping. [nd_done] records choices whose
   execution through this node has completed, with final footprints (these
   seed sibling sleep sets); [nd_sched] is every choice explored or already
   enqueued from here, the dedup set. *)
type node = { mutable nd_done : (int * (string list * string list)) list; mutable nd_sched : ISet.t }

let default_config () = { (Config.test ()) with Config.record_history = true }

(* {1 One directed execution}

   Pure: fresh simulator and engine per run, no shared state — safe to farm
   out to a {!Par} pool. Returns the run result, the recorded schedule
   (footprints final) and the number of sleep-blocked picks. *)
let execute ~config ~begin_marker ?init ?ro ~isolation (specs : Interleave.spec list)
    (br : branch) =
  let prefix = Array.of_list br.br_prefix in
  let structural =
    Array.of_list
      (List.map
         (fun spec ->
           Array.of_list
             (List.map
                (function Interleave.Insert _ | Interleave.Delete _ -> true | _ -> false)
                spec))
         specs)
  in
  let sleep_blocked = ref 0 in
  let pick ~step ~enabled ~steps =
    if step < Array.length prefix then prefix.(step)
    else begin
      (* Recompute wakes from scratch at every pick: footprints of parked
         operations keep growing as they resume, so incremental removal
         would miss late touches. [steps] holds only free turns here (the
         drain phase never calls [pick]), newest first. *)
      let sarr = Array.of_list (List.rev steps) in
      let op_index k =
        (* how many earlier turns the turn at free depth [k] follows for its
           own transaction = index of the operation it ran *)
        let t = sarr.(k).Interleave.ds_txn in
        let c = ref 0 in
        for j = 0 to k - 1 do
          if sarr.(j).Interleave.ds_txn = t then incr c
        done;
        !c
      in
      let wakes entry k =
        let s = sarr.(k) in
        s.Interleave.ds_txn = entry.sl_txn
        || structural.(s.Interleave.ds_txn).(op_index k)
        || fp_conflict (s.Interleave.ds_reads, s.Interleave.ds_writes) entry.sl_fp
      in
      let asleep entry =
        let awake = ref false in
        for k = entry.sl_depth to step - 1 do
          if not !awake then awake := wakes entry k
        done;
        not !awake
      in
      let sleeping =
        List.filter_map
          (fun e -> if List.mem e.sl_txn enabled && asleep e then Some e.sl_txn else None)
          br.br_sleep
      in
      match List.filter (fun i -> not (List.mem i sleeping)) enabled with
      | i :: _ -> i
      | [] ->
          (* Every enabled transaction sleeps: this whole continuation is
             covered elsewhere, but a directed run cannot stop mid-flight —
             finish it (the digest set is idempotent) and count the waste. *)
          incr sleep_blocked;
          List.hd enabled
    end
  in
  let result, steps =
    Interleave.run_directed ~config ~begin_marker ?init ?ro ~isolation specs ~pick
  in
  (* Snapshot-pin rewrite: the turn that pinned a transaction's read view
     (marked "clock" by the engine) logically performed the visibility
     check for everything the transaction goes on to observe. Give it a
     read of the visibility shadow of every data resource in the
     transaction's cumulative footprint, so a commit publishing any of
     them races with the pin itself — reversing that pair is what makes
     both serial orders of disjoint-footprint begin/commit turns
     reachable. (Engine pseudo-resources — doom flags, the begin marker,
     shadows themselves — are not data and are skipped.) *)
  let data_resource res =
    res <> "clock" && res <> "tid"
    && not (String.length res >= 2 && res.[1] = '/' && (res.[0] = 'x' || res.[0] = 'c'))
  in
  let cumulative = Array.make (List.length specs) [] in
  List.iter
    (fun s ->
      let add res =
        if data_resource res && not (List.mem res cumulative.(s.Interleave.ds_txn)) then
          cumulative.(s.Interleave.ds_txn) <- res :: cumulative.(s.Interleave.ds_txn)
      in
      List.iter add s.Interleave.ds_reads;
      List.iter add s.Interleave.ds_writes)
    steps;
  let pinned = Array.make (List.length specs) false in
  List.iter
    (fun s ->
      let i = s.Interleave.ds_txn in
      if (not pinned.(i)) && List.mem "clock" s.Interleave.ds_reads then begin
        pinned.(i) <- true;
        s.Interleave.ds_reads <-
          List.rev_append (List.rev_map (fun res -> "c/" ^ res) cumulative.(i)) s.Interleave.ds_reads
      end)
    steps;
  (result, steps, !sleep_blocked)

(* {1 Race analysis}

   Classic DPOR over the recorded schedule: build happens-before as the
   transitive closure of the dependency relation, find *immediate* races
   (dependent pairs with no intervening happens-before chain), and at each
   race's first turn schedule an alternative first choice that lets the
   other side go first. Candidate selection prefers the racing turn's own
   transaction, falls back to the earliest transaction that reaches it, and
   conservatively adds every enabled alternative when no candidate was
   enabled at the branch point. *)

type world = {
  mutable executed : int;
  mutable backtracks : int;
  mutable sleep_hits : int;
  mutable sleep_blocked : int;
  mutable duplicates : int;
  mutable digests : SSet.t;
  mutable traces : SSet.t;  (* canonical trace signatures already analyzed *)
  nodes : (int list, node) Hashtbl.t;  (* keyed by reversed choice prefix *)
  queue : branch Queue.t;
}

let get_node w key =
  match Hashtbl.find_opt w.nodes key with
  | Some n -> n
  | None ->
      let n = { nd_done = []; nd_sched = ISet.empty } in
      Hashtbl.add w.nodes key n;
      n

(* Canonical signature of a run's Mazurkiewicz trace: the turns named
   schedule-independently as (spec index, per-transaction turn number) with
   their footprints, plus the orientation of every cross-transaction
   dependent pair. Two runs with equal signatures are linearizations of the
   same trace — they commute into each other, reach identical engine states
   and carry identical races. Doom resources embed engine transaction ids
   (begin-order-dependent), so they are renamed through the spec index to
   keep the signature linearization-free. *)
let trace_signature (result : Interleave.result) sarr dep =
  let n = Array.length sarr in
  let rename =
    let tbl = Hashtbl.create 8 in
    List.iteri
      (fun i id ->
        if id >= 0 then Hashtbl.replace tbl ("x/" ^ string_of_int id) ("x/T" ^ string_of_int i))
      result.Interleave.txn_ids;
    fun res -> match Hashtbl.find_opt tbl res with Some r -> r | None -> res
  in
  let opidx = Array.make n 0 in
  let counts = Hashtbl.create 8 in
  for k = 0 to n - 1 do
    let t = sarr.(k).Interleave.ds_txn in
    let c = try Hashtbl.find counts t with Not_found -> 0 in
    opidx.(k) <- c;
    Hashtbl.replace counts t (c + 1)
  done;
  let b = Buffer.create 512 in
  let lines = ref [] in
  for k = 0 to n - 1 do
    lines :=
      Printf.sprintf "T%d.%d r[%s] w[%s]\n" sarr.(k).Interleave.ds_txn opidx.(k)
        (String.concat " " (List.sort_uniq compare (List.map rename sarr.(k).Interleave.ds_reads)))
        (String.concat " " (List.sort_uniq compare (List.map rename sarr.(k).Interleave.ds_writes)))
      :: !lines
  done;
  List.iter (Buffer.add_string b) (List.sort compare !lines);
  let pairs = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let ti = sarr.(i).Interleave.ds_txn and tj = sarr.(j).Interleave.ds_txn in
      if ti <> tj && dep.(i).(j) then
        pairs := Printf.sprintf "T%d.%d<T%d.%d" ti opidx.(i) tj opidx.(j) :: !pairs
    done
  done;
  List.iter
    (fun p ->
      Buffer.add_string b p;
      Buffer.add_char b '\n')
    (List.sort compare !pairs);
  Digest.string (Buffer.contents b)

let analyze ?(on_run = fun _ -> ()) w br (result, steps, sleep_blocked) =
  on_run result;
  w.executed <- w.executed + 1;
  w.sleep_blocked <- w.sleep_blocked + sleep_blocked;
  w.digests <- SSet.add (outcome_digest result) w.digests;
  let sarr = Array.of_list steps in
  let n = Array.length sarr in
  let fp k = (sarr.(k).Interleave.ds_reads, sarr.(k).Interleave.ds_writes) in
  let txn k = sarr.(k).Interleave.ds_txn in
  (* Dependence and its transitive closure (happens-before). *)
  let dep = Array.make_matrix n n false in
  let hb = Array.make_matrix n n false in
  for j = 1 to n - 1 do
    for i = 0 to j - 1 do
      dep.(i).(j) <- txn i = txn j || fp_conflict (fp i) (fp j);
      if dep.(i).(j) then hb.(i).(j) <- true
      else begin
        let k = ref (i + 1) in
        while (not hb.(i).(j)) && !k < j do
          if hb.(i).(!k) && dep.(!k).(j) then hb.(i).(j) <- true;
          incr k
        done
      end
    done
  done;
  (* Trace memoization: race analysis is a function of the trace, not the
     linearization — the races, their happens-before structure and the
     reachable reversals are identical for every schedule of one trace.
     Per-node sleep machinery cannot see that two *different* prefixes have
     commuted into the same class (that needs optimal-DPOR wakeup trees),
     so duplicate arrivals do happen; analyzing them would clone whole
     subtrees. One representative per class spawns children; the rest stop
     here (measured: ~12x fewer executions on the §4.7 5-chain, with digest
     sets unchanged across the cross-validation matrix). *)
  let sg = trace_signature result sarr dep in
  if SSet.mem sg w.traces then w.duplicates <- w.duplicates + 1
  else begin
  w.traces <- SSet.add sg w.traces;
  (* Free-depth of each turn, and the (reversed) choice prefix before it. *)
  let freedepth = Array.make n (-1) in
  let prefix_of = Array.make n [] in
  let choices = ref [] in
  let d = ref 0 in
  for k = 0 to n - 1 do
    if sarr.(k).Interleave.ds_free then begin
      freedepth.(k) <- !d;
      prefix_of.(k) <- !choices;
      incr d;
      choices := txn k :: !choices;
      (* Register the choice at its node (dedup + sibling sleep seeds). *)
      let node = get_node w prefix_of.(k) in
      node.nd_sched <- ISet.add (txn k) node.nd_sched;
      if not (List.mem_assoc (txn k) node.nd_done) then
        node.nd_done <- (txn k, fp k) :: node.nd_done
    end
  done;
  let schedule_alternative i q =
    let node = get_node w prefix_of.(i) in
    if ISet.mem q node.nd_sched then w.sleep_hits <- w.sleep_hits + 1
    else begin
      node.nd_sched <- ISet.add q node.nd_sched;
      w.backtracks <- w.backtracks + 1;
      let depth = freedepth.(i) in
      (* Sleep inheritance: entries of the spawning execution's own sleep
         set rooted at or above this node stay valid for the new branch —
         it replays the identical prefix, so the new run's wake check
         re-evaluates them over the very same turns. *)
      let inherited =
        List.filter (fun e -> e.sl_depth <= depth && e.sl_txn <> q) br.br_sleep
      in
      let siblings =
        List.filter_map
          (fun (p, pfp) ->
            if p = q then None else Some { sl_txn = p; sl_depth = depth; sl_fp = pfp })
          node.nd_done
      in
      Queue.add { br_prefix = List.rev (q :: prefix_of.(i)); br_sleep = siblings @ inherited }
        w.queue
    end
  in
  for i = 0 to n - 1 do
    if sarr.(i).Interleave.ds_free then
      for j = i + 1 to n - 1 do
        if txn i <> txn j && dep.(i).(j) then begin
          (* Immediate races only: transitively implied orderings branch at
             the earlier race that implies them. *)
          let implied = ref false in
          for k = i + 1 to j - 1 do
            if hb.(i).(k) && hb.(k).(j) then implied := true
          done;
          if not !implied then begin
            let enabled = sarr.(i).Interleave.ds_enabled in
            let candidates = ref ISet.empty in
            for k = i + 1 to j do
              if (k = j || hb.(k).(j)) && List.mem (txn k) enabled && txn k <> txn i then
                candidates := ISet.add (txn k) !candidates
            done;
            if ISet.is_empty !candidates then
              (* No reaching transaction was grantable at the branch point
                 (it was parked, or only begins later): fall back to every
                 enabled alternative so the reversal is not lost. *)
              List.iter (fun q -> if q <> txn i then schedule_alternative i q) enabled
            else
              schedule_alternative i
                (if ISet.mem (txn j) !candidates then txn j else ISet.min_elt !candidates)
          end
        end
      done
  done
  end

(* {1 The frontier loop} *)

let explore ?config ?obs ?pool ?on_run ?init ?ro ~isolation (specs : Interleave.spec list) :
    string list * stats =
  let config = match config with Some c -> c | None -> default_config () in
  let config = { config with Config.record_history = true } in
  let begin_marker = needs_begin_marker config in
  let w =
    {
      executed = 0;
      backtracks = 0;
      sleep_hits = 0;
      sleep_blocked = 0;
      duplicates = 0;
      digests = SSet.empty;
      traces = SSet.empty;
      nodes = Hashtbl.create 64;
      queue = Queue.create ();
    }
  in
  Queue.add { br_prefix = []; br_sleep = [] } w.queue;
  while not (Queue.is_empty w.queue) do
    (* Drain the whole frontier each round: the batch content and order are
       independent of the pool size, executions are pure, and analysis runs
       sequentially in enqueue order — output is byte-identical at any -j. *)
    let batch = ref [] in
    while not (Queue.is_empty w.queue) do
      batch := Queue.pop w.queue :: !batch
    done;
    let batch = List.rev !batch in
    let runs =
      Par.map ?pool (execute ~config ~begin_marker ?init ?ro ~isolation specs) batch
    in
    List.iter2 (analyze ?on_run w) batch runs
  done;
  let stats =
    {
      executed = w.executed;
      bound = Interleave.count_interleavings specs;
      backtracks = w.backtracks;
      sleep_hits = w.sleep_hits;
      sleep_blocked = w.sleep_blocked;
      duplicates = w.duplicates;
    }
  in
  (match obs with
  | Some o ->
      Obs.record_explored o ~schedules:stats.executed ~bound:stats.bound;
      Obs.record_backtracks o ~n:stats.backtracks;
      Obs.record_sleep_hits o ~n:stats.sleep_hits
  | None -> ());
  (SSet.elements w.digests, stats)

(* {1 Full-enumeration digests and cross-validation} *)

let sweep_digests ?config ?init ?ro ~isolation (specs : Interleave.spec list) : string list =
  let config = match config with Some c -> c | None -> default_config () in
  let config = { config with Config.record_history = true } in
  let digests =
    Seq.fold_left
      (fun acc order ->
        let r = Interleave.run_interleaving ~config ?init ?ro ~isolation specs order in
        SSet.add (outcome_digest r) acc)
      SSet.empty
      (Interleave.interleavings_seq specs)
  in
  SSet.elements digests

type validation = {
  v_match : bool;
  v_dpor : string list;
  v_full : string list;
  v_stats : stats;
}

let cross_validate ?config ?pool ?init ?ro ~isolation specs =
  let v_dpor, v_stats = explore ?config ?pool ?init ?ro ~isolation specs in
  let v_full = sweep_digests ?config ?init ?ro ~isolation specs in
  { v_match = v_dpor = v_full; v_dpor; v_full; v_stats }
