(** DPOR schedule explorer: exhaustive serializability checking without
    brute-force enumeration.

    Explores the schedule space of an {!Interleave} program by dynamic
    partial-order reduction: one schedule is executed, the resources each
    scheduler turn touched (row versions, page stamps, gaps, lock-manager
    entries, doom flags) are captured through the engine's footprint hook
    ({!Core.Db.set_on_touch}), and new schedules are branched only where two
    turns of different transactions raced on a resource at least one of them
    wrote. Commuting turns are never reordered, so the explorer visits every
    *semantic* outcome while executing a small fraction of the multinomial
    schedule count — §4.7-style matrices extend to 4–5-transaction programs
    whose full enumeration does not fit a CI budget.

    Soundness is checked empirically rather than assumed:
    {!cross_validate} compares the explorer's outcome-digest set against the
    full enumeration on every program small enough to enumerate. *)

(** Reduction metrics of one exploration. *)
type stats = {
  executed : int;  (** schedules actually run *)
  bound : int;  (** multinomial brute-force schedule count *)
  backtracks : int;  (** branch points added by race analysis *)
  sleep_hits : int;  (** backtrack candidates suppressed as already covered *)
  sleep_blocked : int;  (** picks where every enabled transaction slept *)
  duplicates : int;
      (** executed runs that turned out to be a second linearization of an
          already-analyzed trace (they spawn no further branches) *)
}

(** Schedule-artifact-free digest of a run's semantic outcome: per-index
    verdict (committed / abort reason), committed reads as (table, key,
    writer {e spec index}), final store as per-key last-writer index, and
    the MVSG serializability verdict. Engine transaction ids and timestamps
    are renamed out, so observationally identical schedules collide. *)
val outcome_digest : Interleave.result -> string

(** True when [config] makes behaviour depend on transaction-id order
    (Prefer_younger victims, periodic kill-the-youngest deadlock detection)
    — {!explore} then treats any two transaction begins as dependent. *)
val needs_begin_marker : Core.Config.t -> bool

(** [explore ~isolation specs] runs DPOR to completion and returns the
    sorted set of distinct outcome digests plus reduction metrics.
    [config] defaults to the history-recording test configuration
    ([record_history] is forced on regardless). [pool] parallelises
    frontier batches — results are byte-identical at any pool size.
    [obs] receives the reduction metrics ({!Obs.record_explored} etc.);
    per-run engines are not instrumented. [on_run] fires once per executed
    schedule, on the submitting thread, in deterministic order (oracles over
    explored runs — e.g. asserting zero MVSG violations). [init]/[ro] as in
    {!Interleave.run_interleaving}.

    Bounded-memory configurations ([memory_budget]) are outside the
    explorer's dependency model: SIREAD summarization keys off a global
    watermark, which makes footprint-disjoint turns non-commuting. Explore
    them with {!Interleave.sweep} instead. *)
val explore :
  ?config:Core.Config.t ->
  ?obs:Obs.t ->
  ?pool:Par.t ->
  ?on_run:(Interleave.result -> unit) ->
  ?init:(string * string) list ->
  ?ro:bool list ->
  isolation:Core.Types.isolation ->
  Interleave.spec list ->
  string list * stats

(** The ground truth: run {e every} interleaving and collect the distinct
    outcome digests (sorted). Multinomial cost — small programs only. *)
val sweep_digests :
  ?config:Core.Config.t ->
  ?init:(string * string) list ->
  ?ro:bool list ->
  isolation:Core.Types.isolation ->
  Interleave.spec list ->
  string list

type validation = {
  v_match : bool;  (** digest sets identical *)
  v_dpor : string list;
  v_full : string list;
  v_stats : stats;
}

(** Run {!explore} and {!sweep_digests} on the same program and compare. *)
val cross_validate :
  ?config:Core.Config.t ->
  ?pool:Par.t ->
  ?init:(string * string) list ->
  ?ro:bool list ->
  isolation:Core.Types.isolation ->
  Interleave.spec list ->
  validation
