(* Interleaving tester, replicating and generalising the methodology of
   §4.7: execute a chosen interleaving of small transaction scripts against
   a fresh database and check that (a) the committed history is always
   serializable under SSI/S2PL, and (b) the known anomalies appear under SI.

   Scheduling is blocking-capable. Every transaction runs in its own
   simulator process; a scheduler process hands out one-operation turns
   following the requested order. An operation that blocks (a write-write
   lock wait, S2PL read locks, gap locks, page locks) parks its transaction
   inside the lock manager; the scheduler detects this via
   {!Lockmgr.is_waiting} and moves on to the next runnable turn, so scripts
   with cross-transaction write-write conflicts — which the original §4.7
   harness could not express — execute deterministically. Blocked
   transactions resume when their lock is granted (or the deadlock detector
   kills them) and consume any remaining turns in a final drain phase. *)

open Core

type op =
  | R of string  (** point read *)
  | W of string  (** blind write *)
  | Rfu of string  (** SELECT ... FOR UPDATE (§4.5 fast path) *)
  | Insert of string
  | Delete of string
  | Scan of string option * string option * int option  (** lo, hi, limit *)
  | Abort_op  (** user-requested rollback; ends the script *)

type spec = op list

let table = "t"

let op_to_string = function
  | R k -> "r(" ^ k ^ ")"
  | W k -> "w(" ^ k ^ ")"
  | Rfu k -> "u(" ^ k ^ ")"
  | Insert k -> "ins(" ^ k ^ ")"
  | Delete k -> "del(" ^ k ^ ")"
  | Scan (lo, hi, limit) ->
      let b = function Some k -> k | None -> "-" in
      let l = match limit with Some n -> string_of_int n | None -> "-" in
      "scan(" ^ b lo ^ "," ^ b hi ^ "," ^ l ^ ")"
  | Abort_op -> "abort"

let spec_to_string spec = String.concat ";" (List.map op_to_string spec)

(* Keys a script expects to exist: everything read, written or deleted by
   name. Insert targets and scan bounds are intentionally excluded, so
   inserts have free keys to create. *)
let default_init (specs : spec list) =
  let keys =
    List.concat_map
      (List.concat_map (function
        | R k | W k | Rfu k | Delete k -> [ k ]
        | Insert _ | Scan _ | Abort_op -> []))
      specs
  in
  List.map (fun k -> (k, "0")) (List.sort_uniq compare keys)

(* All merges of the transactions' op sequences, each op tagged with its
   transaction index. Count = multinomial coefficient; keep specs small. *)
let interleavings (specs : spec list) : (int * op) list list =
  let rec go (pending : (int * op list) list) =
    if List.for_all (fun (_, ops) -> ops = []) pending then [ [] ]
    else
      List.concat_map
        (fun (i, ops) ->
          match ops with
          | [] -> []
          | op :: rest ->
              let pending' =
                List.map (fun (j, ops') -> if j = i then (j, rest) else (j, ops')) pending
              in
              List.map (fun tail -> (i, op) :: tail) (go pending'))
        pending
  in
  go (List.mapi (fun i s -> (i, s)) specs)

(* A single random merge of the op sequences, for sampled sweeps where the
   full interleaving set is too large.

   The transaction supplying the next operation is chosen with probability
   proportional to its *remaining* operation count, not uniformly over
   nonempty transactions: a complete merge is then drawn with probability
   (Π len_i!) / total!, i.e. uniformly over the multinomial set of
   interleavings. (The old uniform-over-transactions rule oversampled
   orders that exhaust short transactions late.) *)
let random_order st (specs : spec list) : (int * op) list =
  let pending = Array.of_list (List.map (fun s -> ref s) specs) in
  let remaining = Array.of_list (List.map List.length specs) in
  let total = ref (Array.fold_left ( + ) 0 remaining) in
  let order = ref [] in
  while !total > 0 do
    let u = Random.State.int st !total in
    let i = ref 0 and acc = ref 0 in
    while u >= !acc + remaining.(!i) do
      acc := !acc + remaining.(!i);
      incr i
    done;
    let i = !i in
    (match !(pending.(i)) with
    | op :: rest ->
        pending.(i) := rest;
        remaining.(i) <- remaining.(i) - 1;
        order := (i, op) :: !order
    | [] -> assert false);
    decr total
  done;
  List.rev !order

type result = {
  outcomes : Types.abort_reason option list; (* None = committed, per txn *)
  history : Types.committed_record list;
  serializable : bool;
  crashed : bool; (* an armed Wal crash plan fired during the run *)
  db : Db.t; (* the engine the interleaving ran against *)
}

(* Execute one interleaving at [isolation]. [init] rows are bulk-loaded
   first (default: value "0" for every key named by a read/write/delete).
   Each transaction commits right after its last operation; [ro] marks
   transactions declared READ ONLY at begin (enabling the read-only
   refinement when configured).

   The [order] list is a sequence of turns: each entry grants its
   transaction permission to run its *next* pending operation (the op
   component of the pair is advisory — execution always follows the
   script). A turn offered to a transaction that is still blocked inside a
   previous operation is skipped; leftover operations run in a round-robin
   drain phase after the schedule is exhausted, so every transaction always
   finishes (commit or abort) before the function returns. *)
let run_interleaving ?config ?obs ?init ?ro ?db ?crash ~isolation (specs : spec list)
    (order : (int * op) list) : result =
  let sim, db =
    match db with
    | Some db ->
        (* Continuation mode (post-recovery workloads): reuse an existing
           engine and its simulation; no table creation or bulk load — the
           recovered store is the starting state. *)
        if Db.table db table = None then ignore (Db.create_table db table);
        (Db.sim db, db)
    | None ->
        let config =
          match config with
          | Some c -> c
          | None -> { (Config.test ()) with Config.record_history = true }
        in
        let sim = Sim.create () in
        let db = Db.create ~config sim in
        ignore (Db.create_table db table);
        let init = match init with Some rows -> rows | None -> default_init specs in
        if init <> [] then Db.load db table init;
        (sim, db)
  in
  (match obs with Some o -> Db.set_obs db o | None -> ());
  (* Fault plans arm after the bulk load so crash-trigger counters number
     workload events only, keeping crash points comparable between runs. *)
  (match crash with Some plan -> Wal.arm (Db.wal db) plan | None -> ());
  let n = List.length specs in
  let ro = match ro with Some l -> Array.of_list l | None -> Array.make n false in
  if Array.length ro <> n then invalid_arg "run_interleaving: ro length mismatch";
  let outcomes = Array.make n None in
  let finished = Array.make n false in
  let pending = Array.of_list (List.map (fun s -> ref s) specs) in
  let granted = Array.make n 0 in
  let completed = Array.make n 0 in
  let txn_ids = Array.make n (-1) in
  let turn = Sim.cond () in
  for i = 0 to n - 1 do
    Sim.spawn sim (fun () ->
        let txn = ref None in
        let get_txn () =
          match !txn with
          | Some t -> t
          | None ->
              let t = Db.begin_txn ~read_only:ro.(i) db isolation in
              txn_ids.(i) <- Txn.id t;
              txn := Some t;
              t
        in
        try
          while not finished.(i) do
            while granted.(i) <= completed.(i) do
              Sim.wait sim turn
            done;
            (match !(pending.(i)) with
            | [] ->
                (* empty script: a begin/commit pair *)
                Txn.commit (get_txn ());
                finished.(i) <- true
            | op :: rest ->
                let t = get_txn () in
                pending.(i) := rest;
                (match op with
                | R k -> ignore (Txn.read t table k)
                | W k -> Txn.write t table k (Printf.sprintf "t%d" i)
                | Rfu k -> ignore (Txn.read_for_update t table k)
                | Insert k -> Txn.insert t table k (Printf.sprintf "t%d" i)
                | Delete k -> ignore (Txn.delete t table k)
                | Scan (lo, hi, limit) -> ignore (Txn.scan ?lo ?hi ?limit t table)
                | Abort_op ->
                    Txn.abort t;
                    outcomes.(i) <- Some Types.User_abort;
                    finished.(i) <- true);
                if rest = [] && not finished.(i) then begin
                  Txn.commit t;
                  finished.(i) <- true
                end);
            completed.(i) <- completed.(i) + 1
          done
        with Types.Abort r ->
          outcomes.(i) <- Some r;
          finished.(i) <- true;
          completed.(i) <- completed.(i) + 1)
  done;
  let locks = Db.locks db in
  let unfinished () = Array.exists not finished in
  let idle i = (not finished.(i)) && granted.(i) = completed.(i) in
  let tick = 1.0e-6 in
  (* Grant one turn and wait until the operation settles: completes, aborts,
     or parks in the lock manager. Operation work is simulated CPU/IO time,
     so settling is driven by small clock ticks. *)
  let issue i =
    granted.(i) <- granted.(i) + 1;
    Sim.broadcast sim turn;
    while
      (not finished.(i))
      && completed.(i) < granted.(i)
      && not (txn_ids.(i) >= 0 && Lockmgr.is_waiting locks txn_ids.(i))
    do
      Sim.delay sim tick
    done
  in
  Sim.spawn sim (fun () ->
      List.iter (fun (i, _) -> if idle i then issue i) order;
      (* Drain: run turns that were skipped while their transaction was
         blocked. When every remaining transaction is mid-operation, advance
         time so lock grants and the (possibly periodic) deadlock detector
         can make progress. *)
      while unfinished () do
        let made = ref false in
        for i = 0 to n - 1 do
          if idle i then begin
            made := true;
            issue i
          end
        done;
        if (not !made) && unfinished () then Sim.delay sim 0.01
      done);
  let crashed =
    (* An injected crash escapes the faulting transaction's process and
       aborts the whole simulated machine: the run ends here with whatever
       the WAL's durable prefix holds, which is exactly the state recovery
       gets to see. *)
    try
      Sim.run ~until:1.0e6 sim;
      false
    with Wal.Crash -> true
  in
  (* A transaction that never finished would mean the harness or engine
     hung (or the machine crashed); surface it as an abort the oracle will
     flag (crashed runs are exempt: their outcomes are not a verdict). *)
  for i = 0 to n - 1 do
    if not finished.(i) then
      outcomes.(i) <-
        Some
          (Types.Internal_error
             (if crashed then "interleave: crashed" else "interleave: transaction never finished"))
  done;
  let history = Db.history db in
  {
    outcomes = Array.to_list outcomes;
    history;
    serializable = Mvsg.is_serializable history;
    crashed;
    db;
  }

type summary = {
  total : int;
  all_committed : int; (* interleavings where every transaction committed *)
  non_serializable : int; (* ... and the result was not serializable *)
  unsafe_aborts : int; (* interleavings with at least one Unsafe abort *)
  other_aborts : int;
}

(* Run every interleaving of [specs] at [isolation] and summarise. *)
let sweep ?config ~isolation specs =
  let all = interleavings specs in
  List.fold_left
    (fun acc order ->
      let r = run_interleaving ?config ~isolation specs order in
      let committed_all = List.for_all (( = ) None) r.outcomes in
      {
        total = acc.total + 1;
        all_committed = (acc.all_committed + if committed_all then 1 else 0);
        non_serializable =
          (acc.non_serializable + if not r.serializable then 1 else 0);
        unsafe_aborts =
          (acc.unsafe_aborts
          + if List.exists (( = ) (Some Types.Unsafe)) r.outcomes then 1 else 0);
        other_aborts =
          (acc.other_aborts
          +
          if
            List.exists
              (function Some r when r <> Types.Unsafe -> true | _ -> false)
              r.outcomes
          then 1
          else 0);
      })
    { total = 0; all_committed = 0; non_serializable = 0; unsafe_aborts = 0; other_aborts = 0 }
    all

(* The paper's §4.7 test set: T1: r(x); T2: r(y) w(x); T3: w(y). Note that
   this set forms a *path* T1 -> T2 -> T3 in the dependency graph, never a
   cycle: every execution is serializable, but SSI still flags T2 as a pivot
   in some interleavings — the paper used it to verify that conflicts are
   detected in all code paths. *)
let paper_spec = [ [ R "x" ]; [ R "y"; W "x" ]; [ W "y" ] ]

(* Classic write skew: T1: r(x) r(y) w(x); T2: r(x) r(y) w(y). *)
let write_skew_spec = [ [ R "x"; R "y"; W "x" ]; [ R "x"; R "y"; W "y" ] ]

(* Example 3 (read-only anomaly): Tpivot: r(y) w(x); Tout: w(y) w(z);
   Tin: r(x) r(z). Some interleavings are genuinely non-serializable. *)
let read_only_anomaly_spec =
  [ [ R "y"; W "x" ]; [ W "y"; W "z" ]; [ R "x"; R "z" ] ]
