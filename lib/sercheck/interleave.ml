(* Interleaving tester, replicating and generalising the methodology of
   §4.7: execute a chosen interleaving of small transaction scripts against
   a fresh database and check that (a) the committed history is always
   serializable under SSI/S2PL, and (b) the known anomalies appear under SI.

   Scheduling is blocking-capable. Every transaction runs in its own
   simulator process; a scheduler process hands out one-operation turns
   following the requested order. An operation that blocks (a write-write
   lock wait, S2PL read locks, gap locks, page locks) parks its transaction
   inside the lock manager; the scheduler detects this via
   {!Lockmgr.is_waiting} and moves on to the next runnable turn, so scripts
   with cross-transaction write-write conflicts — which the original §4.7
   harness could not express — execute deterministically. Blocked
   transactions resume when their lock is granted (or the deadlock detector
   kills them) and consume any remaining turns in a final drain phase. *)

open Core

type op =
  | R of string  (** point read *)
  | W of string  (** blind write *)
  | Rfu of string  (** SELECT ... FOR UPDATE (§4.5 fast path) *)
  | Insert of string
  | Delete of string
  | Scan of string option * string option * int option  (** lo, hi, limit *)
  | Abort_op  (** user-requested rollback; ends the script *)

type spec = op list

let table = "t"

let op_to_string = function
  | R k -> "r(" ^ k ^ ")"
  | W k -> "w(" ^ k ^ ")"
  | Rfu k -> "u(" ^ k ^ ")"
  | Insert k -> "ins(" ^ k ^ ")"
  | Delete k -> "del(" ^ k ^ ")"
  | Scan (lo, hi, limit) ->
      let b = function Some k -> k | None -> "-" in
      let l = match limit with Some n -> string_of_int n | None -> "-" in
      "scan(" ^ b lo ^ "," ^ b hi ^ "," ^ l ^ ")"
  | Abort_op -> "abort"

let spec_to_string spec = String.concat ";" (List.map op_to_string spec)

(* Keys a script expects to exist: everything read, written or deleted by
   name. Insert targets and scan bounds are intentionally excluded, so
   inserts have free keys to create. *)
let default_init (specs : spec list) =
  let keys =
    List.concat_map
      (List.concat_map (function
        | R k | W k | Rfu k | Delete k -> [ k ]
        | Insert _ | Scan _ | Abort_op -> []))
      specs
  in
  List.map (fun k -> (k, "0")) (List.sort_uniq compare keys)

(* All merges of the transactions' op sequences, each op tagged with its
   transaction index, produced lazily in lexicographic transaction-index
   order. Count = multinomial coefficient; memory is O(total ops) — one
   path through the merge tree — however many interleavings there are, so
   sweeps over 4-txn specs no longer materialize hundreds of thousands of
   schedules up front. *)
let interleavings_seq (specs : spec list) : (int * op) list Seq.t =
  let rec go (pending : (int * op list) list) : (int * op) list Seq.t =
    if List.for_all (fun (_, ops) -> ops = []) pending then Seq.return []
    else
      Seq.concat_map
        (fun (i, ops) ->
          match ops with
          | [] -> Seq.empty
          | op :: rest ->
              let pending' =
                List.map (fun (j, ops') -> if j = i then (j, rest) else (j, ops')) pending
              in
              Seq.map (fun tail -> (i, op) :: tail) (go pending'))
        (List.to_seq pending)
  in
  go (List.mapi (fun i s -> (i, s)) specs)

let interleavings (specs : spec list) : (int * op) list list =
  List.of_seq (interleavings_seq specs)

(* Multinomial schedule count (total ops)! / prod (len_i!), computed as a
   product of binomials so intermediate values stay integral. *)
let count_interleavings (specs : spec list) : int =
  let choose n k =
    let k = min k (n - k) in
    let c = ref 1 in
    for i = 1 to k do
      c := !c * (n - k + i) / i
    done;
    !c
  in
  let _, count =
    List.fold_left
      (fun (total, acc) spec ->
        let len = List.length spec in
        (total + len, acc * choose (total + len) len))
      (0, 1) specs
  in
  count

(* A single random merge of the op sequences, for sampled sweeps where the
   full interleaving set is too large.

   The transaction supplying the next operation is chosen with probability
   proportional to its *remaining* operation count, not uniformly over
   nonempty transactions: a complete merge is then drawn with probability
   (Π len_i!) / total!, i.e. uniformly over the multinomial set of
   interleavings. (The old uniform-over-transactions rule oversampled
   orders that exhaust short transactions late.) *)
let random_order st (specs : spec list) : (int * op) list =
  let pending = Array.of_list (List.map (fun s -> ref s) specs) in
  let remaining = Array.of_list (List.map List.length specs) in
  let total = ref (Array.fold_left ( + ) 0 remaining) in
  let order = ref [] in
  while !total > 0 do
    let u = Random.State.int st !total in
    let i = ref 0 and acc = ref 0 in
    while u >= !acc + remaining.(!i) do
      acc := !acc + remaining.(!i);
      incr i
    done;
    let i = !i in
    (match !(pending.(i)) with
    | op :: rest ->
        pending.(i) := rest;
        remaining.(i) <- remaining.(i) - 1;
        order := (i, op) :: !order
    | [] -> assert false);
    decr total
  done;
  List.rev !order

type result = {
  outcomes : Types.abort_reason option list; (* None = committed, per txn *)
  history : Types.committed_record list;
  serializable : bool;
  crashed : bool; (* an armed Wal crash plan fired during the run *)
  db : Db.t; (* the engine the interleaving ran against *)
  txn_ids : int list;
      (* engine transaction id per spec index (-1 if never begun), so
         outcome digests can rename schedule-dependent ids back to indices *)
}

(* Scheduler context handed to a driver (the scheduler process body):
   [x_idle i] is true when transaction [i] can be granted a turn; [x_issue i]
   grants one and returns when the operation settles (completes, aborts, or
   parks in the lock manager); [x_unfinished ()] is true while any script has
   ops (or its commit) left. *)
type sched_ctx = {
  x_n : int;
  x_sim : Sim.t;
  x_db : Db.t;
  x_txn_ids : int array;
  x_granted : int array;
  x_idle : int -> bool;
  x_issue : int -> unit;
  x_unfinished : unit -> bool;
}

(* Execute the scripts at [isolation] under a caller-supplied scheduler.
   [init] rows are bulk-loaded first (default: value "0" for every key named
   by a read/write/delete). Each transaction commits right after its last
   operation; [ro] marks transactions declared READ ONLY at begin (enabling
   the read-only refinement when configured). [driver] runs as the scheduler
   process and decides which transaction each turn goes to;
   [run_interleaving] drives it from an order list, [run_directed] from a
   pick callback. *)
let run_driven ?config ?obs ?init ?ro ?db ?crash ~isolation (specs : spec list)
    ~(driver : sched_ctx -> unit) : result =
  let sim, db =
    match db with
    | Some db ->
        (* Continuation mode (post-recovery workloads): reuse an existing
           engine and its simulation; no table creation or bulk load — the
           recovered store is the starting state. *)
        if Db.table db table = None then ignore (Db.create_table db table);
        (Db.sim db, db)
    | None ->
        let config =
          match config with
          | Some c -> c
          | None -> { (Config.test ()) with Config.record_history = true }
        in
        let sim = Sim.create () in
        let db = Db.create ~config sim in
        ignore (Db.create_table db table);
        let init = match init with Some rows -> rows | None -> default_init specs in
        if init <> [] then Db.load db table init;
        (sim, db)
  in
  (match obs with Some o -> Db.set_obs db o | None -> ());
  (* Fault plans arm after the bulk load so crash-trigger counters number
     workload events only, keeping crash points comparable between runs. *)
  (match crash with Some plan -> Wal.arm (Db.wal db) plan | None -> ());
  let n = List.length specs in
  let ro = match ro with Some l -> Array.of_list l | None -> Array.make n false in
  if Array.length ro <> n then invalid_arg "run_interleaving: ro length mismatch";
  let outcomes = Array.make n None in
  let finished = Array.make n false in
  let pending = Array.of_list (List.map (fun s -> ref s) specs) in
  let granted = Array.make n 0 in
  let completed = Array.make n 0 in
  let txn_ids = Array.make n (-1) in
  let turn = Sim.cond () in
  for i = 0 to n - 1 do
    Sim.spawn sim (fun () ->
        let txn = ref None in
        let get_txn () =
          match !txn with
          | Some t -> t
          | None ->
              let t = Db.begin_txn ~read_only:ro.(i) db isolation in
              txn_ids.(i) <- Txn.id t;
              txn := Some t;
              t
        in
        try
          while not finished.(i) do
            while granted.(i) <= completed.(i) do
              Sim.wait sim turn
            done;
            (match !(pending.(i)) with
            | [] ->
                (* empty script: a begin/commit pair *)
                Txn.commit (get_txn ());
                finished.(i) <- true
            | op :: rest ->
                let t = get_txn () in
                pending.(i) := rest;
                (match op with
                | R k -> ignore (Txn.read t table k)
                | W k -> Txn.write t table k (Printf.sprintf "t%d" i)
                | Rfu k -> ignore (Txn.read_for_update t table k)
                | Insert k -> Txn.insert t table k (Printf.sprintf "t%d" i)
                | Delete k -> ignore (Txn.delete t table k)
                | Scan (lo, hi, limit) -> ignore (Txn.scan ?lo ?hi ?limit t table)
                | Abort_op ->
                    Txn.abort t;
                    outcomes.(i) <- Some Types.User_abort;
                    finished.(i) <- true);
                if rest = [] && not finished.(i) then begin
                  Txn.commit t;
                  finished.(i) <- true
                end);
            completed.(i) <- completed.(i) + 1
          done
        with Types.Abort r ->
          outcomes.(i) <- Some r;
          finished.(i) <- true;
          completed.(i) <- completed.(i) + 1)
  done;
  let locks = Db.locks db in
  let unfinished () = Array.exists not finished in
  let idle i = (not finished.(i)) && granted.(i) = completed.(i) in
  let tick = 1.0e-6 in
  (* Grant one turn and wait until the operation settles: completes, aborts,
     or parks in the lock manager. Operation work is simulated CPU/IO time,
     so settling is driven by small clock ticks. *)
  let issue i =
    granted.(i) <- granted.(i) + 1;
    Sim.broadcast sim turn;
    while
      (not finished.(i))
      && completed.(i) < granted.(i)
      && not (txn_ids.(i) >= 0 && Lockmgr.is_waiting locks txn_ids.(i))
    do
      Sim.delay sim tick
    done
  in
  Sim.spawn sim (fun () ->
      driver
        {
          x_n = n;
          x_sim = sim;
          x_db = db;
          x_txn_ids = txn_ids;
          x_granted = granted;
          x_idle = idle;
          x_issue = issue;
          x_unfinished = unfinished;
        });
  let crashed =
    (* An injected crash escapes the faulting transaction's process and
       aborts the whole simulated machine: the run ends here with whatever
       the WAL's durable prefix holds, which is exactly the state recovery
       gets to see. *)
    try
      Sim.run ~until:1.0e6 sim;
      false
    with Wal.Crash -> true
  in
  (* A transaction that never finished would mean the harness or engine
     hung (or the machine crashed); surface it as an abort the oracle will
     flag (crashed runs are exempt: their outcomes are not a verdict). *)
  for i = 0 to n - 1 do
    if not finished.(i) then
      outcomes.(i) <-
        Some
          (Types.Internal_error
             (if crashed then "interleave: crashed" else "interleave: transaction never finished"))
  done;
  let history = Db.history db in
  {
    outcomes = Array.to_list outcomes;
    history;
    serializable = Mvsg.is_serializable history;
    crashed;
    db;
    txn_ids = Array.to_list txn_ids;
  }

(* The canonical drain loop shared by both schedulers: grant leftover turns
   in index order; when every remaining transaction is mid-operation,
   advance time so lock grants and the (possibly periodic) deadlock
   detector can make progress. [on_grant] fires just before each grant. *)
let drain_loop ?(on_grant = fun _ -> ()) (c : sched_ctx) =
  while c.x_unfinished () do
    let made = ref false in
    for i = 0 to c.x_n - 1 do
      if c.x_idle i then begin
        made := true;
        on_grant i;
        c.x_issue i
      end
    done;
    if (not !made) && c.x_unfinished () then Sim.delay c.x_sim 0.01
  done

let run_interleaving ?config ?obs ?init ?ro ?db ?crash ~isolation (specs : spec list)
    (order : (int * op) list) : result =
  run_driven ?config ?obs ?init ?ro ?db ?crash ~isolation specs ~driver:(fun c ->
      (* The [order] list is a sequence of turns: each entry grants its
         transaction permission to run its *next* pending operation (the op
         component of the pair is advisory — execution always follows the
         script). A turn offered to a transaction that is still blocked
         inside a previous operation is skipped (costing no simulated time);
         leftover operations run in the drain phase, so every transaction
         always finishes (commit or abort) before the function returns. *)
      List.iter (fun (i, _) -> if c.x_idle i then c.x_issue i) order;
      drain_loop c)

(* {1 Directed execution with footprint capture (the DPOR explorer's engine
   interface)} *)

(* One scheduler turn of a directed run. [ds_free] distinguishes genuine
   choice points from drain-phase grants: once every unfinished transaction
   is simultaneously parked, any order list would consume its remaining
   entries without advancing time and fall into the same canonical drain
   loop, so drain grants are not schedule branch points — this is how the
   skipped-turn/drain semantics fold into the happens-before relation.
   Footprints are mutable because a parked operation keeps touching
   resources when it resumes during later turns; readers of a trace must
   only consume them after the run completes (or treat them as partial). *)
type dstep = {
  ds_txn : int; (* spec index granted this turn *)
  ds_enabled : int list; (* spec indices grantable at that moment, ascending *)
  ds_free : bool; (* true = free choice point; false = canonical drain *)
  mutable ds_reads : string list; (* resources read by the op (unordered) *)
  mutable ds_writes : string list; (* resources written by the op *)
}

(* Execute the scripts granting turns via [pick ~step ~enabled ~steps]:
   [enabled] is the ascending list of grantable transactions, [steps] the
   turns recorded so far (newest first, footprints partial for parked ops).
   Once no transaction is grantable the run switches permanently to the
   canonical drain loop (see {!dstep}). Returns the recorded schedule
   alongside the result.

   [begin_marker] makes every transaction's first turn write a shared "tid"
   pseudo-resource: engine transaction ids are handed out in begin order, so
   configurations whose behaviour depends on id *order* (Prefer_younger
   victims, the periodic detector's kill-the-youngest rule) make any two
   first turns non-commuting; the marker exposes that to the explorer's
   dependency relation. *)
let run_directed ?config ?obs ?init ?ro ?(begin_marker = false) ~isolation (specs : spec list)
    ~(pick : step:int -> enabled:int list -> steps:dstep list -> int) :
    result * dstep list =
  let steps = ref [] in
  let result =
    run_driven ?config ?obs ?init ?ro ~isolation specs ~driver:(fun c ->
        let cur = Array.make c.x_n None in
        (* Footprint hook: attribute each touch to the owner's newest turn.
           Unknown owners (the summarization sentinel, bulk load) have no
           turn and are ignored. *)
        Db.set_on_touch c.x_db
          (Some
             (fun id is_write resource ->
               let rec find i =
                 if i >= c.x_n then ()
                 else if c.x_txn_ids.(i) = id then (
                   match cur.(i) with
                   | Some s ->
                       if is_write then s.ds_writes <- resource :: s.ds_writes
                       else s.ds_reads <- resource :: s.ds_reads
                   | None -> ())
                 else find (i + 1)
               in
               find 0));
        let record i enabled free =
          let s =
            { ds_txn = i; ds_enabled = enabled; ds_free = free; ds_reads = []; ds_writes = [] }
          in
          if begin_marker && c.x_granted.(i) = 0 then s.ds_writes <- [ "tid" ];
          steps := s :: !steps;
          cur.(i) <- Some s
        in
        let stepno = ref 0 in
        let free = ref true in
        while c.x_unfinished () do
          if !free then begin
            let enabled = ref [] in
            for i = c.x_n - 1 downto 0 do
              if c.x_idle i then enabled := i :: !enabled
            done;
            match !enabled with
            | [] -> free := false (* permanent: fall to the canonical drain *)
            | enabled ->
                let i = pick ~step:!stepno ~enabled ~steps:!steps in
                if not (List.mem i enabled) then
                  invalid_arg "run_directed: pick chose a non-enabled transaction";
                incr stepno;
                record i enabled true;
                c.x_issue i
          end
          else drain_loop ~on_grant:(fun i -> record i [ i ] false) c
        done;
        Db.set_on_touch c.x_db None)
  in
  (result, List.rev !steps)

type summary = {
  total : int;
  all_committed : int; (* interleavings where every transaction committed *)
  non_serializable : int; (* ... and the result was not serializable *)
  unsafe_aborts : int; (* interleavings with at least one Unsafe abort *)
  other_aborts : int;
}

(* Run every interleaving of [specs] at [isolation] and summarise. Streams
   the enumeration: memory stays constant in the number of schedules. *)
let sweep ?config ~isolation specs =
  let all = interleavings_seq specs in
  Seq.fold_left
    (fun acc order ->
      let r = run_interleaving ?config ~isolation specs order in
      let committed_all = List.for_all (( = ) None) r.outcomes in
      {
        total = acc.total + 1;
        all_committed = (acc.all_committed + if committed_all then 1 else 0);
        non_serializable =
          (acc.non_serializable + if not r.serializable then 1 else 0);
        unsafe_aborts =
          (acc.unsafe_aborts
          + if List.exists (( = ) (Some Types.Unsafe)) r.outcomes then 1 else 0);
        other_aborts =
          (acc.other_aborts
          +
          if
            List.exists
              (function Some r when r <> Types.Unsafe -> true | _ -> false)
              r.outcomes
          then 1
          else 0);
      })
    { total = 0; all_committed = 0; non_serializable = 0; unsafe_aborts = 0; other_aborts = 0 }
    all

(* The paper's §4.7 test set: T1: r(x); T2: r(y) w(x); T3: w(y). Note that
   this set forms a *path* T1 -> T2 -> T3 in the dependency graph, never a
   cycle: every execution is serializable, but SSI still flags T2 as a pivot
   in some interleavings — the paper used it to verify that conflicts are
   detected in all code paths. *)
let paper_spec = [ [ R "x" ]; [ R "y"; W "x" ]; [ W "y" ] ]

(* Classic write skew: T1: r(x) r(y) w(x); T2: r(x) r(y) w(y). *)
let write_skew_spec = [ [ R "x"; R "y"; W "x" ]; [ R "x"; R "y"; W "y" ] ]

(* Example 3 (read-only anomaly): Tpivot: r(y) w(x); Tout: w(y) w(z);
   Tin: r(x) r(z). Some interleavings are genuinely non-serializable. *)
let read_only_anomaly_spec =
  [ [ R "y"; W "x" ]; [ W "y"; W "z" ]; [ R "x"; R "z" ] ]

(* {1 4–5-transaction variants}

   Checked exhaustively through the DPOR explorer; their multinomial counts
   (tens of thousands to hundreds of thousands of schedules) put full
   enumeration beyond the CI budget. *)

(* §4.7 family stretched to a 4-chain: T1 -> T2 -> T3 -> T4 in the
   dependency graph — still a path, never a cycle, so every execution must
   stay serializable while SSI sees two potential pivots (T2, T3).
   6 ops: 6!/(1!·2!·2!·1!) = 180 interleavings. *)
let paper_spec_4 = [ [ R "x" ]; [ R "y"; W "x" ]; [ R "z"; W "y" ]; [ W "z" ] ]

(* §4.7 family as a 5-chain; 8 ops, 8!/(1!·2!·2!·2!·1!) = 5040. *)
let paper_spec_5 =
  [ [ R "v" ]; [ R "w"; W "v" ]; [ R "x"; W "w" ]; [ R "y"; W "x" ]; [ W "y" ] ]

(* Write skew closed into a 3-cycle: each transaction reads its own and the
   next key and writes its own. 9 ops, 9!/(3!)^3 = 1680 interleavings. *)
let write_skew_spec_3 =
  [ [ R "x"; R "y"; W "x" ]; [ R "y"; R "z"; W "y" ]; [ R "z"; R "x"; W "z" ] ]

(* The 4-cycle of the same shape: 12 ops, 12!/(3!)^4 = 369600 interleavings
   — far past what `sweep` can execute in CI, the explorer's showcase. *)
let write_skew_spec_4 =
  [
    [ R "a"; R "b"; W "a" ];
    [ R "b"; R "c"; W "b" ];
    [ R "c"; R "d"; W "c" ];
    [ R "d"; R "a"; W "d" ];
  ]

(* Read-only anomaly with a second independent observer transaction.
   8 ops: 8!/(2!·2!·2!·2!) = 2520 interleavings. *)
let read_only_anomaly_spec_4 =
  [ [ R "y"; W "x" ]; [ W "y"; W "z" ]; [ R "x"; R "z" ]; [ R "z"; R "x" ] ]
