(* Lock manager with the paper's SIREAD mode.

   Modes: S (shared), X (exclusive) and SIREAD. S and X behave as in a
   classical strict-2PL lock manager, with FIFO queuing and deadlock
   handling. SIREAD (§3.2) never blocks and never delays anyone; it is a
   lock-table *annotation* recording that an SI transaction read an item, so
   that a later X acquisition can detect the rw-dependency. The engine layer
   inspects {!holders} after each grant to run markConflict.

   Resources are strings; the engine encodes row keys, gap keys and page ids
   into them. Owners are integer transaction ids.

   Deadlock detection is either [Immediate] (a waits-for cycle check on every
   block, InnoDB-style) or [Periodic dt] (a detector process that scans every
   [dt] simulated seconds, like Berkeley DB's db_perf setup in §6.1 — the
   detection delay is itself a measured effect in Fig 6.2). *)

type mode = S | X | Siread

let mode_to_string = function S -> "S" | X -> "X" | Siread -> "SIREAD"

type owner = int

exception Deadlock_victim

(* Only S-X, X-S and X-X block; SIREAD conflicts with nothing. *)
let blocks requested held =
  match (requested, held) with
  | X, X | X, S | S, X -> true
  | S, S | Siread, _ | _, Siread -> false

type counts = { mutable s : int; mutable x : int; mutable siread : int }

let count_of c = function S -> c.s | X -> c.x | Siread -> c.siread

let add_count c m n =
  match m with
  | S -> c.s <- c.s + n
  | X -> c.x <- c.x + n
  | Siread -> c.siread <- c.siread + n

type waiter = { wowner : owner; wmode : mode; waker : Sim.waker }

type lock = {
  resource : string;
  holds : (owner, counts) Hashtbl.t;
  mutable queue : waiter list; (* FIFO: head is served first *)
}

type detection = Immediate | Periodic of float

type t = {
  sim : Sim.t;
  detection : detection;
  table : (string, lock) Hashtbl.t;
  owned : (owner, (string, unit) Hashtbl.t) Hashtbl.t;
  waiting : (owner, string) Hashtbl.t; (* owner -> resource it blocks on *)
  mutable requests : int;
  mutable waits : int;
  mutable deadlocks : int;
  mutable detector_running : bool;
  mutable obs : Obs.t; (* observability sink; Obs.disabled costs one branch *)
  (* Footprint hook for the DPOR explorer: called on every acquisition with
     the owner, whether the access is a write (X; S and SIREAD are reads)
     and the resource. [None] (the default) costs one branch per request. *)
  mutable on_touch : (int -> bool -> string -> unit) option;
}

let create ?(detection = Immediate) sim =
  {
    sim;
    detection;
    table = Hashtbl.create 4096;
    owned = Hashtbl.create 256;
    waiting = Hashtbl.create 64;
    requests = 0;
    waits = 0;
    deadlocks = 0;
    detector_running = false;
    obs = Obs.disabled;
    on_touch = None;
  }

let set_obs t obs = t.obs <- obs

let set_on_touch t f = t.on_touch <- f

(* Every resource [owner] currently holds at least one mode on (sorted, so
   callers iterating it stay deterministic). *)
let owned_resources t owner =
  match Hashtbl.find_opt t.owned owner with
  | None -> []
  | Some set -> List.sort compare (Hashtbl.fold (fun r () acc -> r :: acc) set [])

let get_lock t resource =
  match Hashtbl.find_opt t.table resource with
  | Some l -> l
  | None ->
      let l = { resource; holds = Hashtbl.create 4; queue = [] } in
      Hashtbl.replace t.table resource l;
      l

let note_owned t owner resource =
  let set =
    match Hashtbl.find_opt t.owned owner with
    | Some s -> s
    | None ->
        let s = Hashtbl.create 16 in
        Hashtbl.replace t.owned owner s;
        s
  in
  Hashtbl.replace set resource ()

(* Modes currently held by [owner] on [resource]. *)
let holds_of t ~owner resource =
  match Hashtbl.find_opt t.table resource with
  | None -> []
  | Some l -> (
      match Hashtbl.find_opt l.holds owner with
      | None -> []
      | Some c ->
          List.filter (fun m -> count_of c m > 0) [ X; S; Siread ])

let holders t resource =
  match Hashtbl.find_opt t.table resource with
  | None -> []
  | Some l ->
      Hashtbl.fold
        (fun owner c acc ->
          List.fold_left
            (fun acc m -> if count_of c m > 0 then (owner, m) :: acc else acc)
            acc [ X; S; Siread ])
        l.holds []

(* Would a request by [owner] for [mode] conflict with current holders? *)
let conflicts_with_holders l ~owner ~mode =
  Hashtbl.fold
    (fun o c acc ->
      acc
      || (o <> owner
         && List.exists (fun m -> count_of c m > 0 && blocks mode m) [ X; S; Siread ]))
    l.holds false

let conflicts_with_queue l ~owner ~mode =
  List.exists
    (fun w -> (not (Sim.waker_fired w.waker)) && w.wowner <> owner && blocks mode w.wmode)
    l.queue

let do_grant t l ~owner ~mode =
  let c =
    match Hashtbl.find_opt l.holds owner with
    | Some c -> c
    | None ->
        let c = { s = 0; x = 0; siread = 0 } in
        Hashtbl.replace l.holds owner c;
        c
  in
  add_count c mode 1;
  note_owned t owner l.resource

(* Blocked owners and who they wait for: edges from a waiter to every
   conflicting holder and every conflicting earlier waiter. *)
let waits_for_edges t =
  let edges = ref [] in
  Hashtbl.iter
    (fun _ l ->
      let earlier = ref [] in
      List.iter
        (fun w ->
          if not (Sim.waker_fired w.waker) then begin
            Hashtbl.iter
              (fun o c ->
                if
                  o <> w.wowner
                  && List.exists (fun m -> count_of c m > 0 && blocks w.wmode m) [ X; S; Siread ]
                then edges := (w.wowner, o) :: !edges)
              l.holds;
            List.iter
              (fun w' ->
                if w'.wowner <> w.wowner && blocks w.wmode w'.wmode then
                  edges := (w.wowner, w'.wowner) :: !edges)
              !earlier;
            earlier := w :: !earlier
          end)
        l.queue)
    t.table;
  !edges

(* Is [start] part of a waits-for cycle reachable from itself? *)
let in_cycle edges start =
  let adj = Hashtbl.create 16 in
  List.iter
    (fun (a, b) ->
      let cur = try Hashtbl.find adj a with Not_found -> [] in
      Hashtbl.replace adj a (b :: cur))
    edges;
  let visited = Hashtbl.create 16 in
  let rec dfs node =
    if node = start then true
    else if Hashtbl.mem visited node then false
    else begin
      Hashtbl.replace visited node ();
      let succs = try Hashtbl.find adj node with Not_found -> [] in
      List.exists dfs succs
    end
  in
  let succs = try Hashtbl.find adj start with Not_found -> [] in
  List.exists dfs succs

(* Find all cycles' members: owners that can reach themselves. *)
let cycle_members edges =
  let owners = List.sort_uniq compare (List.map fst edges) in
  List.filter (fun o -> in_cycle edges o) owners

(* The actual waits-for cycle through [start]: a path [start; a; b; ...]
   where each owner waits for the next and the last waits for [start].
   Successors are explored in sorted order so the extracted witness is
   deterministic. Returns [[start]] if no cycle exists (defensive; callers
   only ask after {!in_cycle}). *)
let cycle_path edges start =
  let adj = Hashtbl.create 16 in
  List.iter
    (fun (a, b) ->
      let cur = try Hashtbl.find adj a with Not_found -> [] in
      Hashtbl.replace adj a (b :: cur))
    edges;
  let succs n = List.sort_uniq compare (try Hashtbl.find adj n with Not_found -> []) in
  let visited = Hashtbl.create 16 in
  let rec dfs node path =
    let ss = succs node in
    if List.mem start ss then Some (List.rev path)
    else
      List.fold_left
        (fun acc s ->
          match acc with
          | Some _ -> acc
          | None ->
              if Hashtbl.mem visited s then None
              else begin
                Hashtbl.replace visited s ();
                dfs s (s :: path)
              end)
        None ss
  in
  match dfs start [ start ] with Some p -> p | None -> [ start ]

(* Certificate support: the resource each owner in [cycle] is blocked on.
   [extra] supplies the requester's own (owner, resource) pair when it has
   not been entered into [t.waiting] yet (Immediate detection fires before
   enqueueing). *)
let cycle_waits t ?extra cycle =
  List.filter_map
    (fun o ->
      match extra with
      | Some (o', r) when o' = o -> Some (o, r)
      | _ -> ( match Hashtbl.find_opt t.waiting o with Some r -> Some (o, r) | None -> None))
    cycle

(* DOT snapshot of the waits-for graph at deadlock time: every blocked owner
   and the edges that close the cycle; the victim is filled red. *)
let waits_dot t ?extra ~victim ~cycle edges =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "digraph deadlock {\n";
  Buffer.add_string buf "  rankdir=LR;\n  node [shape=box fontname=\"monospace\"];\n";
  let owners =
    List.sort_uniq compare (cycle @ List.concat_map (fun (a, b) -> [ a; b ]) edges)
  in
  let waits = cycle_waits t ?extra owners in
  List.iter
    (fun o ->
      let wait =
        match List.assoc_opt o waits with
        | Some r -> "\\nwaits: " ^ Obs.dot_escape r
        | None -> ""
      in
      let attrs =
        if o = victim then " color=red style=filled fillcolor=\"#ffdddd\""
        else if List.mem o cycle then " peripheries=2"
        else ""
      in
      Buffer.add_string buf (Printf.sprintf "  t%d [label=\"T%d%s\"%s];\n" o o wait attrs))
    owners;
  List.iter
    (fun (a, b) -> Buffer.add_string buf (Printf.sprintf "  t%d -> t%d;\n" a b))
    (List.sort_uniq compare edges);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* Build and record the deadlock certificate: the cycle through [victim]
   (owners in wait order), each member's blocked resource, and a waits-for
   DOT snapshot. Only does work when the sink has provenance on. *)
let emit_deadlock_cert t ?extra ~victim edges =
  if Obs.provenance_on t.obs then begin
    let cycle = cycle_path edges victim in
    Obs.add_cert t.obs
      {
        Obs.c_ts = Sim.now t.sim;
        c_reason = "deadlock";
        c_cert =
          Obs.Deadlock_cycle
            { dc_victim = victim; dc_cycle = cycle; dc_waits = cycle_waits t ?extra cycle };
        c_dot = waits_dot t ?extra ~victim ~cycle edges;
      }
  end

let grant_waiters t l =
  (* FIFO: grant from the head while compatible; stop at the first blocked
     live waiter. Fired (killed) waiters are discarded. *)
  let rec go queue =
    match queue with
    | [] -> []
    | w :: rest ->
        if Sim.waker_fired w.waker then go rest
        else if conflicts_with_holders l ~owner:w.wowner ~mode:w.wmode then w :: rest
        else begin
          do_grant t l ~owner:w.wowner ~mode:w.wmode;
          Hashtbl.remove t.waiting w.wowner;
          Sim.wake t.sim w.waker;
          go rest
        end
  in
  l.queue <- go l.queue

let run_detector_pass t =
  let edges = waits_for_edges t in
  let victims = cycle_members edges in
  (* Kill the youngest (largest id) member of each cycle; killing one may
     break several cycles, which is fine — the next pass handles the rest. *)
  match List.rev (List.sort compare victims) with
  | [] -> 0
  | v :: _ ->
      (match Hashtbl.find_opt t.waiting v with
      | None -> 0
      | Some resource -> (
          match Hashtbl.find_opt t.table resource with
          | None -> 0
          | Some l ->
              let found = ref 0 in
              List.iter
                (fun w ->
                  if w.wowner = v && not (Sim.waker_fired w.waker) then begin
                    t.deadlocks <- t.deadlocks + 1;
                    incr found;
                    (* Certificate before the victim is removed from
                       [t.waiting], so its own blocked resource is cited. *)
                    emit_deadlock_cert t ~victim:v edges;
                    Hashtbl.remove t.waiting v;
                    if Obs.tracing t.obs then
                      Obs.emit t.obs ~ts:(Sim.now t.sim) (Obs.Deadlock { victim = v; resource });
                    Sim.kill t.sim w.waker Deadlock_victim
                  end)
                l.queue;
              grant_waiters t l;
              !found))

let start_detector t =
  match t.detection with
  | Immediate -> ()
  | Periodic dt ->
      if not t.detector_running then begin
        t.detector_running <- true;
        (* The detector terminates once nothing is blocked (so simulations
           can drain their event queues); the next blocking request restarts
           it. *)
        let rec loop () =
          Sim.delay t.sim dt;
          let rec drain () = if run_detector_pass t > 0 then drain () in
          drain ();
          if Hashtbl.length t.waiting > 0 then loop () else t.detector_running <- false
        in
        Sim.spawn t.sim loop
      end

let acquire t ~owner ~mode resource =
  t.requests <- t.requests + 1;
  (match t.on_touch with Some f -> f owner (mode = X) resource | None -> ());
  let l = get_lock t resource in
  let emit_granted () =
    if Obs.tracing t.obs then
      Obs.emit t.obs ~ts:(Sim.now t.sim)
        (Obs.Lock_acquire { owner; mode = mode_to_string mode; resource })
  in
  (* Re-entrant and conversion requests by an existing holder must not queue
     behind strangers (a holder waiting behind someone who waits for it
     would self-deadlock); they only wait for conflicting *holders*, and
     when they do wait, they wait at the front of the queue. *)
  let already_holds =
    match Hashtbl.find_opt l.holds owner with
    | Some c -> c.s > 0 || c.x > 0 || c.siread > 0
    | None -> false
  in
  if mode = Siread then begin
    do_grant t l ~owner ~mode;
    emit_granted ()
  end
  else if
    (not (conflicts_with_holders l ~owner ~mode))
    && (already_holds || not (conflicts_with_queue l ~owner ~mode))
  then begin
    do_grant t l ~owner ~mode;
    emit_granted ()
  end
  else begin
    t.waits <- t.waits + 1;
    (match t.detection with
    | Immediate ->
        (* Would waiting close a cycle? Check with the hypothetical edge set
           including our new wait. *)
        let hypothetical =
          let held_edges =
            Hashtbl.fold
              (fun o c acc ->
                if
                  o <> owner
                  && List.exists (fun m -> count_of c m > 0 && blocks mode m) [ X; S; Siread ]
                then (owner, o) :: acc
                else acc)
              l.holds []
          in
          (* A conversion (already_holds) goes to the queue front: it never
             waits behind queued strangers, so they add no edges. *)
          let queue_edges =
            if already_holds then []
            else
              List.filter_map
                (fun w ->
                  if
                    (not (Sim.waker_fired w.waker))
                    && w.wowner <> owner && blocks mode w.wmode
                  then Some (owner, w.wowner)
                  else None)
                l.queue
          in
          held_edges @ queue_edges @ waits_for_edges t
        in
        if in_cycle hypothetical owner then begin
          (* Certificate first: the requester is the victim, and its wait is
             only hypothetical (never entered into [t.waiting]), so the
             resource is supplied explicitly. *)
          emit_deadlock_cert t ~extra:(owner, resource) ~victim:owner hypothetical;
          (if Sys.getenv_opt "LOCKMGR_DEBUG" <> None then begin
             Printf.eprintf "DEADLOCK owner=%d mode=%s res=%s\n" owner (mode_to_string mode) resource;
             List.iter (fun (a, b) -> Printf.eprintf "  edge %d -> %d\n" a b) hypothetical;
             Hashtbl.iter (fun o r -> Printf.eprintf "  waiting: %d on %s\n" o r) t.waiting;
             Hashtbl.iter
               (fun o set ->
                 Hashtbl.iter
                   (fun r () ->
                     Printf.eprintf "  owned: %d %s [%s]\n" o r
                       (String.concat "," (List.map mode_to_string (holds_of t ~owner:o r))))
                   set)
               t.owned
           end);
          t.deadlocks <- t.deadlocks + 1;
          if Obs.tracing t.obs then
            Obs.emit t.obs ~ts:(Sim.now t.sim) (Obs.Deadlock { victim = owner; resource });
          raise Deadlock_victim
        end
    | Periodic _ -> start_detector t);
    Hashtbl.replace t.waiting owner resource;
    let blocked_at = Sim.now t.sim in
    if Obs.tracing t.obs then begin
      Obs.emit t.obs ~ts:blocked_at
        (Obs.Lock_block { owner; mode = mode_to_string mode; resource });
      Obs.emit t.obs ~ts:blocked_at
        (Obs.Span_b { tid = owner; name = "lock-wait"; cat = "lock" })
    end;
    let enqueue w =
      let entry = { wowner = owner; wmode = mode; waker = w } in
      if already_holds then l.queue <- entry :: l.queue
      else l.queue <- l.queue @ [ entry ]
    in
    (try Sim.suspend t.sim enqueue
     with e ->
       Hashtbl.remove t.waiting owner;
       if Obs.tracing t.obs then
         Obs.emit t.obs ~ts:(Sim.now t.sim)
           (Obs.Span_e { tid = owner; name = "lock-wait"; cat = "lock" });
       raise e);
    (* When woken normally the grant was already performed by grant_waiters. *)
    let waited = Sim.now t.sim -. blocked_at in
    Obs.record_lock_wait t.obs waited;
    Obs.attrib_lock_wait t.obs resource waited;
    if Obs.tracing t.obs then begin
      Obs.emit t.obs ~ts:(Sim.now t.sim)
        (Obs.Span_e { tid = owner; name = "lock-wait"; cat = "lock" });
      Obs.emit t.obs ~ts:(Sim.now t.sim)
        (Obs.Lock_grant { owner; mode = mode_to_string mode; resource; waited })
    end
  end

let release_one t ~owner ~mode resource =
  match Hashtbl.find_opt t.table resource with
  | None -> ()
  | Some l -> (
      match Hashtbl.find_opt l.holds owner with
      | None -> ()
      | Some c ->
          if count_of c mode > 0 then begin
            add_count c mode (-count_of c mode);
            if c.s = 0 && c.x = 0 && c.siread = 0 then begin
              Hashtbl.remove l.holds owner;
              (match Hashtbl.find_opt t.owned owner with
              | Some set -> Hashtbl.remove set resource
              | None -> ())
            end;
            grant_waiters t l;
            if Hashtbl.length l.holds = 0 && l.queue = [] then Hashtbl.remove t.table resource
          end)

(* Release every lock [owner] holds, optionally keeping SIREAD entries (a
   committing SSI transaction keeps them while suspended, §3.3). *)
let release_all ?(keep_siread = false) t owner =
  if Obs.tracing t.obs then
    Obs.emit t.obs ~ts:(Sim.now t.sim) (Obs.Lock_release_all { owner; kept_siread = keep_siread });
  match Hashtbl.find_opt t.owned owner with
  | None -> ()
  | Some set ->
      let resources = Hashtbl.fold (fun r () acc -> r :: acc) set [] in
      List.iter
        (fun resource ->
          match Hashtbl.find_opt t.table resource with
          | None -> Hashtbl.remove set resource
          | Some l -> (
              match Hashtbl.find_opt l.holds owner with
              | None -> Hashtbl.remove set resource
              | Some c ->
                  c.s <- 0;
                  c.x <- 0;
                  if not keep_siread then c.siread <- 0;
                  if c.siread = 0 then begin
                    Hashtbl.remove l.holds owner;
                    Hashtbl.remove set resource
                  end;
                  grant_waiters t l;
                  if Hashtbl.length l.holds = 0 && l.queue = [] then
                    Hashtbl.remove t.table resource))
        resources;
      if Hashtbl.length set = 0 then Hashtbl.remove t.owned owner

(* Move every SIREAD annotation of [owner] onto [to_owner], merging with any
   the target already holds there (SIREAD is a set-like annotation: one entry
   per (owner, resource) is enough). S/X holds are untouched — callers
   transfer only committed suspended owners, which hold nothing else. SIREAD
   blocks nobody, so no waiter can become grantable. Used by
   committed-transaction summarization to pool old owners' entries under one
   sentinel owner, bounding the lock table. Returns each transferred
   resource paired with whether the target already held a SIREAD there (the
   table shrinks by one entry in that case). *)
let transfer_sireads t ~owner ~to_owner =
  match Hashtbl.find_opt t.owned owner with
  | None -> []
  | Some set ->
      let resources = Hashtbl.fold (fun r () acc -> r :: acc) set [] in
      let moved =
        List.filter_map
          (fun resource ->
            match Hashtbl.find_opt t.table resource with
            | None ->
                Hashtbl.remove set resource;
                None
            | Some l -> (
                match Hashtbl.find_opt l.holds owner with
                | None ->
                    Hashtbl.remove set resource;
                    None
                | Some c ->
                    if c.siread = 0 then None
                    else begin
                      c.siread <- 0;
                      if c.s = 0 && c.x = 0 then begin
                        Hashtbl.remove l.holds owner;
                        Hashtbl.remove set resource
                      end;
                      let merged =
                        match Hashtbl.find_opt l.holds to_owner with
                        | Some tc ->
                            let had = tc.siread > 0 in
                            if not had then tc.siread <- 1;
                            had
                        | None ->
                            Hashtbl.replace l.holds to_owner { s = 0; x = 0; siread = 1 };
                            false
                      in
                      note_owned t to_owner resource;
                      Some (resource, merged)
                    end))
          resources
      in
      if Hashtbl.length set = 0 then Hashtbl.remove t.owned owner;
      moved

(* Abort an owner that is currently blocked: raise [exn] inside it. *)
let cancel_wait t owner exn =
  match Hashtbl.find_opt t.waiting owner with
  | None -> false
  | Some resource -> (
      Hashtbl.remove t.waiting owner;
      match Hashtbl.find_opt t.table resource with
      | None -> false
      | Some l ->
          let found = ref false in
          List.iter
            (fun w ->
              if w.wowner = owner && not (Sim.waker_fired w.waker) then begin
                found := true;
                Sim.kill t.sim w.waker exn
              end)
            l.queue;
          grant_waiters t l;
          !found)

let is_waiting t owner = Hashtbl.mem t.waiting owner

let lock_table_size t =
  Hashtbl.fold (fun _ l acc -> acc + Hashtbl.length l.holds) t.table 0

let requests t = t.requests

let waits t = t.waits

let deadlocks t = t.deadlocks

let reset_stats t =
  t.requests <- 0;
  t.waits <- 0;
  t.deadlocks <- 0
