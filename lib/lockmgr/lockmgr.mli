(** Lock manager with the paper's non-blocking SIREAD mode (§3.2).

    Resources are strings (the engine encodes row keys, gap keys and page
    ids); owners are integer transaction ids. S and X behave like a classic
    strict-2PL lock manager with FIFO queues; SIREAD grants instantly, delays
    nobody, and exists only so a later X acquisition can observe that a
    concurrent SI transaction read the item. Conflict *flagging* is done by
    the engine layer, which inspects {!holders} after each grant.

    Re-entrant: an owner may hold several modes on one resource; its own
    holds never block it (so an S→X upgrade waits only for other owners). *)

type mode = S | X | Siread

val mode_to_string : mode -> string

type owner = int

(** Raised inside a blocked process chosen as deadlock victim, and by
    {!acquire} itself under [Immediate] detection when waiting would close a
    waits-for cycle. *)
exception Deadlock_victim

(** Whether a requested mode must wait for a held mode. *)
val blocks : mode -> mode -> bool

type detection =
  | Immediate  (** cycle check on every block (InnoDB-style) *)
  | Periodic of float
      (** detector process scanning every [dt] simulated seconds
          (Berkeley DB db_perf-style, twice per second in §6.1) *)

type t

val create : ?detection:detection -> Sim.t -> t

(** Attach an observability sink (lock acquire/block/grant/release and
    deadlock events, lock-wait histogram). Default {!Obs.disabled}. *)
val set_obs : t -> Obs.t -> unit

(** Footprint hook for the DPOR explorer: [f owner is_write resource] is
    called on every {!acquire} (X counts as a write; S and SIREAD are
    reads), before the request can block. [None] (default) disables it. *)
val set_on_touch : t -> (owner -> bool -> string -> unit) option -> unit

(** Every resource [owner] currently holds at least one mode on, sorted. *)
val owned_resources : t -> owner -> string list

(** [acquire t ~owner ~mode resource] grants or blocks (process context).
    SIREAD never blocks. May raise {!Deadlock_victim}. *)
val acquire : t -> owner:owner -> mode:mode -> string -> unit

(** All (owner, mode) holds on a resource, including suspended committed
    SIREAD owners. *)
val holders : t -> string -> (owner * mode) list

(** Modes [owner] currently holds on [resource]. *)
val holds_of : t -> owner:owner -> string -> mode list

(** Drop one mode (all its recursive acquisitions) of [owner] on [resource];
    wakes newly compatible waiters. *)
val release_one : t -> owner:owner -> mode:mode -> string -> unit

(** Release everything [owner] holds. With [~keep_siread:true], SIREAD
    entries survive — a committing SSI transaction keeps them while
    suspended (§3.3). *)
val release_all : ?keep_siread:bool -> t -> owner -> unit

(** If [owner] is blocked in {!acquire}, raise [exn] inside it and return
    [true]. Used to abort a blocked transaction from markConflict. *)
val cancel_wait : t -> owner -> exn -> bool

(** [transfer_sireads t ~owner ~to_owner] moves every SIREAD annotation of
    [owner] onto [to_owner], merging where the target already holds one.
    Returns the transferred resources, each paired with [true] when it was
    merged (the table shrank by one entry). Used by committed-transaction
    summarization to pool old owners' SIREADs under a sentinel owner. *)
val transfer_sireads : t -> owner:owner -> to_owner:owner -> (string * bool) list

(** {1 Waits-for introspection} *)

(** Current waits-for edges: a blocked owner points at every conflicting
    holder and every conflicting earlier waiter. *)
val waits_for_edges : t -> (owner * owner) list

(** The waits-for cycle through [start] in [edges]: a path
    [[start; a; b; ...]] where each owner waits for the next and the last
    waits for [start]; [[start]] if there is none. Deterministic
    (successors explored in sorted order). *)
val cycle_path : (owner * owner) list -> owner -> owner list

val is_waiting : t -> owner -> bool

(** {1 Statistics} *)

(** Total (owner, resource, mode) holds currently in the table. *)
val lock_table_size : t -> int

val requests : t -> int

(** Requests that blocked. *)
val waits : t -> int

(** Deadlock victims chosen. *)
val deadlocks : t -> int

val reset_stats : t -> unit
