(** In-memory B+tree with leaf chaining and page-id tracking.

    Ordered-index substrate standing in for Berkeley DB's Btree access method
    and InnoDB's clustered index. Keys are strings (composite keys are
    encoded by the caller); values are arbitrary — the MVCC layer stores
    mutable version chains in them.

    Every page (node) has a stable integer id, and each operation reports its
    {!access} footprint: the descent path, the leaf pages visited, and any
    pages structurally modified by splits. The transaction engine uses these
    ids for page-granularity locking (the Berkeley DB configuration of the
    paper), where a root-page split conflicts with every concurrent reader.

    Deletion is lazy (no rebalancing): version-chain entries are only removed
    by garbage collection, so underflowing pages are harmless and simply
    stay. *)

type 'a t

(** Footprint of one tree operation, as page ids. *)
type access = {
  path : int list;  (** descent path, root first *)
  leaves : int list;  (** leaf pages visited (scans may visit several) *)
  modified : int list;  (** pages structurally modified by splits *)
  splits : (int * int) list;
      (** (old page, new right sibling) for each split performed: entries that
          lived on the old page may now live on the new one, so page-level
          conflict state (stamps, SIREAD locks) must be carried across. *)
}

val no_access : access

(** [create ~fanout ()] makes an empty tree. [fanout] is the maximum number
    of keys per leaf and children per internal node (default 64, min 4). *)
val create : ?fanout:int -> unit -> 'a t

val length : 'a t -> int

val fanout : 'a t -> int

(** Current root page id (changes when the root splits). *)
val root_id : 'a t -> int

val find : 'a t -> string -> 'a option

(** Like {!find} but also reports the pages read. *)
val find_path : 'a t -> string -> 'a option * access

val mem : 'a t -> string -> bool

(** Insert or replace. The returned access lists split-modified pages, which
    is how page-level writers conflict with concurrent readers of internal
    pages. *)
val insert : 'a t -> string -> 'a -> access

(** Physically remove a key (used by garbage collection, not by transactions,
    which write tombstones instead). Returns whether the key was present. *)
val remove : 'a t -> string -> bool

val min_key : 'a t -> string option

val max_key : 'a t -> string option

(** Least key strictly greater than the argument — the "next key" of
    next-key/gap locking (Figs 3.6/3.7). *)
val successor : 'a t -> string -> string option

(** Inclusive range iteration in key order. *)
val iter_range : 'a t -> ?lo:string -> ?hi:string -> (string -> 'a -> unit) -> unit

(** Like {!iter_range}, reporting the descent path and leaves visited. *)
val iter_range_access : 'a t -> ?lo:string -> ?hi:string -> (string -> 'a -> unit) -> access

val fold_range :
  'a t -> ?lo:string -> ?hi:string -> init:'acc -> f:('acc -> string -> 'a -> 'acc) -> 'acc

val to_list : 'a t -> (string * 'a) list

(** Tree height in levels (1 = a single leaf). *)
val height : 'a t -> int

val page_count : 'a t -> int

(** All page ids, root first. *)
val all_pages : 'a t -> int list

exception Invariant_violation of string

(** Check structural invariants (sortedness, uniform depth, separator bounds,
    leaf-chain consistency, size). Raises {!Invariant_violation}. For tests. *)
val check_invariants : 'a t -> unit
