(** Engine configuration: the knobs that distinguish the paper's two
    prototype substrates and the SSI variants/ablations. *)

(** Locking/conflict granularity (§4): [Row] is the InnoDB prototype
    (record + gap locks); [Page] is the Berkeley DB prototype (B+tree page
    locks, no gap locks, page-level first-committer-wins). *)
type granularity = Row | Page

(** SSI conflict bookkeeping: [Basic] uses the two boolean flags of §3.2;
    [Precise] uses conflict references and commit-time comparisons (§3.6),
    eliminating the Fig 3.8 class of false positives. *)
type ssi_variant = Basic | Precise

(** Victim selection when a dangerous structure is detected early (§3.7.2):
    [Prefer_pivot] aborts the transaction with both edges (the paper's
    default); [Prefer_younger] aborts the younger of the two transactions
    involved, which favours long/complex transactions running to
    completion. *)
type victim_policy = Prefer_pivot | Prefer_younger

(** Simulated CPU cost (seconds) of engine primitives. These set the scale
    of throughput numbers; relative results are insensitive to them. *)
type cost = {
  c_lock : float;  (** one lock-manager call *)
  c_read : float;  (** point read (visibility check + fetch) *)
  c_write : float;  (** buffering one write + index maintenance *)
  c_scan_row : float;  (** per row visited by a scan *)
  c_txn : float;  (** begin/commit bookkeeping *)
  c_commit_install : float;  (** per written row at commit *)
}

type t = {
  granularity : granularity;
  ssi : ssi_variant;
  upgrade_siread : bool;  (** drop SIREAD when the same txn takes X (§3.7.3) *)
  abort_early : bool;  (** abort pivots as soon as both edges appear (§3.7.1) *)
  victim : victim_policy;  (** who dies when a dangerous structure appears (§3.7.2) *)
  ro_refinement : bool;
      (** extension beyond the paper (its §7.6 future work; later formalised
          for PostgreSQL by Ports & Grittner 2012): when the incoming
          neighbour T_in is a committed read-only transaction, the dangerous
          structure is real only if T_out committed before T_in's snapshot *)
  gap_locking : bool;  (** next-key gap locks for phantoms (§3.5, row mode) *)
  detection : Lockmgr.detection;
  n_cpus : int;
  wal_mode : Wal.mode;
  lock_mutex : bool;
      (** serialise lock-manager calls through a capacity-1 resource —
          InnoDB's global kernel mutex (§4.4), the bottleneck in §6.3 *)
  cost : cost;
  record_history : bool;  (** log committed txns for the serializability checker *)
  btree_fanout : int;
  buffer_pool : int option;
      (** real LRU buffer cache capacity in B+tree pages; [None] falls back
          to the probabilistic [read_miss] model *)
  read_miss : float;
      (** probability a row read misses the buffer cache and pays a disk
          read — the knob that makes the large-data TPC-C++ configurations
          I/O bound (§6.4.1) *)
  miss_latency : float;  (** disk read latency in simulated seconds *)
  disk_arms : int;  (** concurrent disk operations (RAID arms) *)
  memory_budget : int option;
      (** bound on SSI conflict-tracking memory: live lock-table entries plus
          retained committed-transaction records. [None] (the paper's
          unbounded retention, §3.3/§4.8) keeps every overlapping committed
          txn; [Some b] enforces the bound with granularity promotion and
          committed-transaction summarization (Ports & Grittner 2012 style) —
          conservatively, so false-positive aborts may rise but no
          serializability violation is ever admitted *)
  promote_threshold : int;
      (** granularity promotion: once a transaction holds this many row
          SIREADs on one leaf page they collapse into a single page SIREAD.
          Only active when [memory_budget] is set (row granularity) *)
  checkpoint_interval : int option;
      (** append a WAL checkpoint record (oldest-active-snapshot watermark +
          commit-ts allocator) and harden the open batch every [k] commits;
          [None] disables checkpointing. In [Wal.No_flush] mode the interval
          bounds the crash loss window; in [Flush_per_commit] it only bounds
          recovery replay length *)
}

let default_cost =
  {
    c_lock = 0.5e-6;
    c_read = 2.5e-6;
    c_write = 3.0e-6;
    c_scan_row = 1.5e-6;
    c_txn = 5.0e-6;
    c_commit_install = 2.0e-6;
  }

(** Berkeley DB profile (§6.1): page-level locking and versioning, periodic
    deadlock detection (db_perf runs the detector twice per second), one CPU
    (the evaluation machine was a single-core Athlon64). *)
let bdb ?(wal_mode = Wal.No_flush) () =
  {
    granularity = Page;
    ssi = Basic;
    upgrade_siread = true;
    abort_early = true;
    victim = Prefer_pivot;
    ro_refinement = false;
    gap_locking = false;
    detection = Lockmgr.Periodic 0.5;
    n_cpus = 1;
    wal_mode;
    lock_mutex = false;
    cost = default_cost;
    record_history = false;
    btree_fanout = 64;
    buffer_pool = None;
    read_miss = 0.0;
    miss_latency = 0.004;
    disk_arms = 4;
    memory_budget = None;
    promote_threshold = 16;
    checkpoint_interval = None;
  }

(** InnoDB profile (§6.2): row-level locking with gap locks, immediate
    deadlock detection, precise SSI (§3.6 was implemented in the InnoDB
    prototype), a multi-core CPU and a serialised lock manager. *)
let innodb ?(wal_mode = Wal.Flush_per_commit 0.01) () =
  {
    granularity = Row;
    ssi = Precise;
    upgrade_siread = true;
    abort_early = true;
    victim = Prefer_pivot;
    ro_refinement = false;
    gap_locking = true;
    detection = Lockmgr.Immediate;
    n_cpus = 8;
    wal_mode;
    lock_mutex = true;
    cost = default_cost;
    record_history = false;
    btree_fanout = 64;
    buffer_pool = None;
    read_miss = 0.0;
    miss_latency = 0.004;
    disk_arms = 4;
    memory_budget = None;
    promote_threshold = 16;
    checkpoint_interval = None;
  }

(** Plain default for tests and examples: row-level, precise, no I/O waits,
    history recording on. *)
let test () =
  {
    (innodb ~wal_mode:Wal.No_flush ()) with
    lock_mutex = false;
    n_cpus = 4;
    record_history = true;
    btree_fanout = 8;
  }
