(* Abort provenance: structured certificates explaining *why* the engine
   aborted a transaction, plus a Graphviz DOT snapshot of the live
   dependency graph at decision time.

   An SSI [Unsafe] abort exists only because a dangerous structure
   T_in ->rw T_pivot ->rw T_out was found (§3; Fekete et al.'s pivot); the
   certificate records that triple with the resource and detection source
   behind each edge, the commit-state of the endpoints, and which
   victim-policy rule fired. First-committer-wins aborts carry the blocking
   version; deadlock certificates are built by the lock manager, which owns
   the waits-for graph.

   Everything here is gated on [Obs.provenance_on]: with provenance off no
   edge detail is logged and no certificate is built, so the hot path pays
   a single branch. *)

open Internal

let on db = Obs.provenance_on db.obs [@@inline]

let state_of (t : txn) : Obs.endpoint_state =
  match t.state with
  | Active -> Obs.Ep_active
  | Committing -> Obs.Ep_committing
  | Committed -> Obs.Ep_committed
  | Aborted -> Obs.Ep_aborted

(* Log a detected rw-antidependency with its resource on both endpoints, so
   a later certificate naming this pair can cite the key/page behind the
   edge. Observability only; never changes conflict flags. *)
let record_edge ~(reader : txn) ~(writer : txn) ~source ~resource =
  if on reader.db then begin
    let e =
      { Obs.ce_reader = reader.id; ce_writer = writer.id; ce_source = source;
        ce_resource = resource }
    in
    reader.out_edges <- e :: reader.out_edges;
    writer.in_edges <- e :: writer.in_edges
  end

(* The [mark_unknown_writer] case: the version's creator is gone
   (bulk-loaded data); the conservative self-flag gets an edge with writer
   id 0. *)
let record_unknown_edge ~(reader : txn) ~resource =
  if on reader.db then
    reader.out_edges <-
      { Obs.ce_reader = reader.id; ce_writer = 0; ce_source = Obs.Unknown_writer;
        ce_resource = resource }
      :: reader.out_edges

(* Bounded-memory mode: an edge whose other endpoint was folded into the
   summary table; the sentinel owner id stands in for the gone transaction.
   [incoming] says the summarized side is the reader (a writer met the
   pooled SIREAD); otherwise it is the writer (a read ignored a summarized
   creator's version). *)
let record_summary_edge ~(self : txn) ~source ~resource ~incoming =
  if on self.db then
    if incoming then
      self.in_edges <-
        { Obs.ce_reader = summary_owner; ce_writer = self.id; ce_source = source;
          ce_resource = resource }
        :: self.in_edges
    else
      self.out_edges <-
        { Obs.ce_reader = self.id; ce_writer = summary_owner; ce_source = source;
          ce_resource = resource }
        :: self.out_edges

(* {1 DOT snapshot}

   The live dependency graph: every transaction record the engine still
   retains (active, committing, suspended committed) as a node, every
   recorded rw-antidependency as an edge labelled with its detection source
   and resource. Self-conflict flags (squashed neighbour sets, §3.6) are
   dashed self-loops. The victim is filled red, the pivot double-bordered.
   Node order is sorted by id and edges are deduplicated, so the output is
   deterministic. *)

let dot_snapshot ?victim ?pivot db =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph ssi {\n";
  Buffer.add_string buf "  rankdir=LR;\n  node [shape=box fontname=\"monospace\"];\n";
  let txns = Hashtbl.fold (fun _ t acc -> t :: acc) db.txn_by_id [] in
  let txns = List.sort (fun a b -> compare a.id b.id) txns in
  List.iter
    (fun t ->
      let attrs =
        match (victim, pivot) with
        | Some v, _ when v = t.id -> " color=red style=filled fillcolor=\"#ffdddd\""
        | _, Some p when p = t.id -> " peripheries=2"
        | _ -> ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  t%d [label=\"T%d\\n%s\"%s];\n" t.id t.id
           (Obs.endpoint_state_to_string (state_of t))
           attrs))
    txns;
  let seen = Hashtbl.create 64 in
  List.iter
    (fun t ->
      List.iter
        (fun (e : Obs.cert_edge) ->
          let k = (e.Obs.ce_reader, e.Obs.ce_writer, e.Obs.ce_resource, e.Obs.ce_source) in
          if not (Hashtbl.mem seen k) then begin
            Hashtbl.add seen k ();
            Buffer.add_string buf
              (Printf.sprintf "  t%d -> t%d [label=\"rw:%s\\n%s\"];\n" e.Obs.ce_reader
                 e.Obs.ce_writer
                 (Obs.conflict_source_to_string e.Obs.ce_source)
                 (* res_id_escape output is dot_escape-invariant, so the one
                    canonical escaping serves every exporter (satellite: one
                    shared resource-id escape). *)
                 (Obs.res_id_escape e.Obs.ce_resource))
          end)
        (List.rev t.out_edges))
    txns;
  let is_self = function Self_conflict -> true | No_conflict | Conflict_with _ -> false in
  List.iter
    (fun t ->
      if is_self t.in_conflict || is_self t.out_conflict then
        Buffer.add_string buf
          (Printf.sprintf "  t%d -> t%d [style=dashed label=\"self\"];\n" t.id t.id))
    txns;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* {1 Certificate emission} *)

(* A pivot neighbour as known at the decision site: either the concrete
   transaction on the edge being processed, or whatever the pivot's conflict
   reference says (a squashed [Self_conflict] resolves to [None]). *)
type neighbour = Nb of txn | Nb_ref of conflict_ref

let resolve_neighbour = function
  | Nb t -> (Some t.id, state_of t)
  | Nb_ref No_conflict -> (None, Obs.Ep_gone)
  | Nb_ref Self_conflict -> (None, Obs.Ep_gone)
  | Nb_ref (Conflict_with t) -> (Some t.id, state_of t)

let find_in_edge (pivot : txn) = function
  | Some id -> List.find_opt (fun e -> e.Obs.ce_reader = id) pivot.in_edges
  | None -> ( match pivot.in_edges with e :: _ -> Some e | [] -> None)

let find_out_edge (pivot : txn) = function
  | Some id -> List.find_opt (fun e -> e.Obs.ce_writer = id) pivot.out_edges
  | None -> ( match pivot.out_edges with e :: _ -> Some e | [] -> None)

(* Certificate for an SSI [Unsafe] abort: [victim] is the transaction being
   aborted, [pivot] the transaction with both rw edges, [policy] names the
   rule that chose the victim ("committed-pivot", "prefer-pivot",
   "prefer-younger", "commit-time-check", "unknown-writer"). Call *before*
   {!Conflict.claim_victim}, which may raise. *)
let emit_ssi ~(victim : txn) ~policy ~(pivot : txn) ~t_in ~t_out =
  let db = pivot.db in
  if on db then begin
    let in_id, in_state = resolve_neighbour t_in in
    let out_id, out_state = resolve_neighbour t_out in
    let cert =
      Obs.Ssi_pivot
        {
          sp_victim = victim.id;
          sp_policy = policy;
          sp_pivot = pivot.id;
          sp_t_in = in_id;
          sp_in_state = in_state;
          sp_t_out = out_id;
          sp_out_state = out_state;
          sp_in_edge = find_in_edge pivot in_id;
          sp_out_edge = find_out_edge pivot out_id;
        }
    in
    Obs.add_cert db.obs
      {
        Obs.c_ts = Sim.now db.sim;
        c_reason = Types.abort_reason_to_string Types.Unsafe;
        c_cert = cert;
        c_dot = dot_snapshot ~victim:victim.id ~pivot:pivot.id db;
      }
  end

(* Certificate for a first-committer-wins abort: [t] ignored a version (or
   page stamp) committed after its snapshot on [resource]. *)
let emit_fcw (t : txn) ~resource ~blocking_commit ~blocking_writer =
  let db = t.db in
  (* FCW blame feeds the sketch live (unlike pivot blame, which needs the
     certificate's edge roles) so it works with provenance off. *)
  Obs.attrib_fcw db.obs resource;
  if on db then
    Obs.add_cert db.obs
      {
        Obs.c_ts = Sim.now db.sim;
        c_reason = Types.abort_reason_to_string Types.Update_conflict;
        c_cert =
          Obs.Fcw_block
            {
              fb_txn = t.id;
              fb_resource = resource;
              fb_blocking_commit = blocking_commit;
              fb_blocking_writer = blocking_writer;
              fb_snapshot = (match t.snapshot with Some s -> s | None -> 0);
            };
        c_dot = dot_snapshot ~victim:t.id db;
      }
