(* Operation execution for the four concurrency control algorithms.

   Each public operation runs inside [guard], which converts lock-manager
   deadlock victims into aborts, notices dooming by other transactions, and
   rolls the transaction back before letting the Abort exception escape.
   Simulated CPU is charged before each critical section, so the conflict
   bookkeeping itself runs atomically (the simulator is cooperative). *)

open Types
open Internal

let check_doom t =
  touch_doom_read t;
  match t.doomed with Some r -> raise (Abort r) | None -> ()

(* Roll back an Active or Committing transaction: drop buffered writes,
   release every lock (including SIREAD entries) and forget the transaction.

   The Committing case is the crash-safety path: an exception escaping
   [do_commit] after [t.state <- Committing] (a WAL failure, an internal
   error during version install) must not leak the transaction in
   [db.active]/[db.txn_by_id] with its locks held forever. Rolling back here
   is safe because [install_writes] runs atomically in simulator terms (no
   suspension points), so either no version was published or the engine is
   aborting on an internal error where conservative cleanup is the best
   available outcome (any stray installed version keeps working: readers of
   a version whose creator is gone mark a conservative self-conflict). *)
let rollback_now t reason =
  match t.state with
  | Active | Committing ->
      t.state <- Aborted;
      (* A Committing transaction rolled back between commit-ts allocation
         and publication leaves a hole in the timestamp sequence: publish
         the skipped ts so the snapshot horizon can advance past it, and
         log an Abort record so recovery never applies redo records that
         may already be durable for this transaction. *)
      (match t.commit_ts with
      | Some ts ->
          publish_commit_ts t.db ts;
          t.commit_ts <- None
      | None -> ());
      if t.logged then begin
        Wal.append t.db.wal (Wal.Abort { txn = t.id });
        t.logged <- false
      end;
      t.db.n_siread_entries <- t.db.n_siread_entries - t.siread_count;
      t.siread_count <- 0;
      (* Footprint: releasing locks changes state every waiter and later
         acquirer of these resources observes. Read-strength touches are
         enough: any waiter or conflicting acquirer touched the resource
         with its own lock mode, and write-write conflicts (this rollback
         against an X acquirer) were recorded when this transaction
         acquired the lock. *)
      if t.db.on_touch <> None then
        List.iter (touch t) (Lockmgr.owned_resources t.db.locks t.id);
      Lockmgr.release_all t.db.locks t.id;
      Hashtbl.remove t.db.active t.id;
      Hashtbl.remove t.db.txn_by_id t.id;
      count_abort t.db.stats reason;
      let abort_now = Sim.now t.db.sim in
      t.db.work_wasted <- t.db.work_wasted +. (abort_now -. t.start_time);
      t.db.work_ledger <- t.db.work_ledger +. abort_now;
      let obs = t.db.obs in
      if Obs.metrics_on obs then
        Obs.record_abort obs ~latency:(Sim.now t.db.sim -. t.start_time);
      if Obs.tracing obs then begin
        Obs.emit obs ~ts:(Sim.now t.db.sim)
          (Obs.Txn_abort
             { txn = t.id; start = t.start_time; reason = abort_reason_to_string reason });
        Obs.emit obs ~ts:(Sim.now t.db.sim) (Obs.Span_e { tid = t.id; name = "txn"; cat = "txn" })
      end
  | Committed | Aborted -> ()

let reject_ro t =
  if t.declared_ro then raise (Abort (Internal_error "write in a READ ONLY transaction"))

let guard t f =
  touch_doom_read t;
  (match t.doomed with
  | Some r ->
      rollback_now t r;
      raise (Abort r)
  | None -> ());
  if t.state <> Active then raise (Abort (Internal_error "transaction is not active"));
  try f () with
  | Abort r ->
      rollback_now t r;
      raise (Abort r)
  | Lockmgr.Deadlock_victim ->
      rollback_now t Deadlock;
      raise (Abort Deadlock)

(* {1 Lock helpers} *)

(* Charge [n] lock-manager interactions, serialising through the kernel
   mutex when configured (§4.4). The engine aggregates per-scan charges into
   one resource use; total mutex occupancy is preserved. *)
let charge_lock_ops db n =
  if n > 0 then begin
    let cost = float_of_int n *. db.config.Config.cost.Config.c_lock in
    match db.lock_mutex with
    | Some m -> Resource.consume m cost
    | None -> charge_cpu db cost
  end

let acquire t mode resource =
  charge_lock_ops t.db 1;
  Lockmgr.acquire t.db.locks ~owner:t.id ~mode resource;
  check_doom t

(* SIREAD acquisition: never blocks, at most one entry per resource. *)
let acquire_siread ?(charge = true) t resource =
  if not (List.mem Lockmgr.Siread (Lockmgr.holds_of t.db.locks ~owner:t.id resource)) then begin
    if charge then charge_lock_ops t.db 1;
    Lockmgr.acquire t.db.locks ~owner:t.id ~mode:Lockmgr.Siread resource;
    t.siread_count <- t.siread_count + 1;
    t.db.n_siread_entries <- t.db.n_siread_entries + 1;
    Obs.note_siread t.db.obs t.siread_count;
    Obs.note_siread_live t.db.obs t.db.n_siread_entries;
    Obs.attrib_siread t.db.obs resource
  end

(* {1 Granularity promotion (bounded-memory mode)}

   Once a transaction's point reads have SIREAD-locked
   [Config.promote_threshold] rows of one leaf page, the row entries
   collapse into a single page SIREAD (Ports & Grittner §4's lock
   promotion). Writers compensate: in bounded mode [lock_for_write] also
   marks SIREAD holders on the page resources of the leaves it modifies, so
   a promoted reader is still found — for every row of the page, which is
   the over-approximation that makes promotion conservative rather than
   lossy. Scan SIREADs (rows and gaps) are not tracked for promotion; they
   keep the paper's exact row/gap granularity. *)

let promote_page t table_name page pr =
  let db = t.db in
  List.iter
    (fun key ->
      let r = row_resource table_name key in
      if List.mem Lockmgr.Siread (Lockmgr.holds_of db.locks ~owner:t.id r) then begin
        Lockmgr.release_one db.locks ~owner:t.id ~mode:Lockmgr.Siread r;
        t.siread_count <- t.siread_count - 1;
        db.n_siread_entries <- db.n_siread_entries - 1
      end)
    pr.pr_rows;
  pr.pr_rows <- [];
  pr.pr_promoted <- true;
  acquire_siread ~charge:false t (page_resource table_name page);
  db.n_promotions <- db.n_promotions + 1;
  Obs.record_promotion db.obs;
  Obs.attrib_promotion db.obs (page_resource table_name page);
  if Obs.tracing db.obs then
    Obs.emit db.obs ~ts:(Sim.now db.sim)
      (Obs.Promotion { txn = t.id; table = table_name; page; rows = pr.pr_count })

(* Row SIREAD for a point read, routed through the promotion tracker when a
   memory budget is configured. A promoted page already covers the row, so
   no new entry is needed (the caller still runs [mark_x_holders] on the
   row itself). *)
let siread_row t table_name key ~leaves =
  let db = t.db in
  match leaves with
  | page :: _ when bounded db ->
      let pr =
        match Hashtbl.find_opt t.page_reads (table_name, page) with
        | Some pr -> pr
        | None ->
            let pr = { pr_rows = []; pr_count = 0; pr_promoted = false } in
            Hashtbl.replace t.page_reads (table_name, page) pr;
            pr
      in
      if not pr.pr_promoted then begin
        acquire_siread t (row_resource table_name key);
        if not (List.mem key pr.pr_rows) then begin
          pr.pr_rows <- key :: pr.pr_rows;
          pr.pr_count <- pr.pr_count + 1;
          if pr.pr_count >= db.config.Config.promote_threshold then
            promote_page t table_name page pr
        end
      end
  | _ -> acquire_siread t (row_resource table_name key)

(* Fig 3.4 line 3 / Fig 3.6 line 3: after taking SIREAD, every concurrently
   held X lock on the resource marks an rw-edge from us to its owner.
   [source] tags the edge for the conflict-source counters (a gap resource
   passes [Obs.Gap]). *)
let mark_x_holders ?(source = Obs.Siread_vs_x) t resource =
  touch t resource;
  List.iter
    (fun (owner, mode) ->
      if mode = Lockmgr.X && owner <> t.id then
        match find_txn t.db owner with
        | Some writer -> Conflict.mark ~source ~resource ~self:t ~reader:t ~writer
        | None -> ())
    (Lockmgr.holders t.db.locks resource)

(* Fig 3.5 lines 4-6 / Fig 3.7: after taking X, every SIREAD on the resource
   whose owner overlaps us (not yet committed, or committed after our read
   view) marks an rw-edge from the reader to us. The sentinel owner pools
   the SIREADs of summarized committed readers (bounded-memory mode); the
   summary entry's max commit timestamp runs the same overlap test,
   conservatively (it is >= every folded reader's actual commit). *)
let mark_siread_holders ?(source = Obs.Siread_vs_x) t resource =
  touch t resource;
  let snap = snapshot_exn t in
  List.iter
    (fun (owner, mode) ->
      if mode = Lockmgr.Siread && owner <> t.id then
        match find_txn t.db owner with
        | Some reader ->
            if (not (has_committed reader)) || commit_time reader > float_of_int snap then
              Conflict.mark ~source ~resource ~self:t ~reader ~writer:t
        | None ->
            if owner = summary_owner then (
              match find_summary t.db resource with
              | Some s when s.sm_commit_ts > snap ->
                  Conflict.mark_summarized_reader ~source ~resource ~self:t ~sm_in:s.sm_in
              | _ -> ()))
    (Lockmgr.holders t.db.locks resource)

(* Fig 3.4 lines 8-9: versions of the item newer than our snapshot were
   ignored by this read; each marks an rw-edge from us to its creator.
   Because committed transactions are retained while any overlapping
   transaction runs, a creator of a version newer than our snapshot is
   always findable; if it is somehow gone (bulk-loaded data), we set our
   outgoing flag conservatively. *)
let mark_newer_versions t table_name key chain snap =
  let resource = row_resource table_name key in
  touch t resource;
  List.iter
    (fun (v : Mvstore.version) ->
      if v.creator <> t.id then
        match find_txn t.db v.creator with
        | Some writer -> Conflict.mark ~source:Obs.Newer_version ~resource ~self:t ~reader:t ~writer
        | None ->
            if v.creator <> 0 then (
              (* Bounded-memory mode: a creator newer than our snapshot can
                 also be gone because it was summarized; its folded out-flag
                 (if any) survives in the summary entry for this row. *)
              match find_summary t.db resource with
              | Some s ->
                  Conflict.mark_summarized_writer ~source:Obs.Newer_version ~resource ~self:t
                    ~sm_out:s.sm_out t
              | None -> Conflict.mark_unknown_writer ~resource ~self:t t))
    (Mvstore.newer_versions chain ~than:snap)

(* Page-granularity analogue: the Berkeley DB prototype versions whole pages,
   so a page updated after our snapshot is an ignored newer version of
   everything on it (the false-positive source of §6.1.5). *)
let mark_page_stamp t table_name page snap =
  touch t (page_resource table_name page);
  match Hashtbl.find_opt t.db.page_stamps (table_name, page) with
  | Some (ts, writer_id) when ts > snap && writer_id <> t.id -> (
      let resource = page_resource table_name page in
      match find_txn t.db writer_id with
      | Some writer -> Conflict.mark ~source:Obs.Page_stamp ~resource ~self:t ~reader:t ~writer
      | None ->
          (* With unbounded retention a stamping writer newer than our
             snapshot is always findable; in bounded mode it may have been
             summarized, leaving its out-flag on the page's summary entry. *)
          if writer_id <> 0 then (
            match find_summary t.db resource with
            | Some s ->
                Conflict.mark_summarized_writer ~source:Obs.Page_stamp ~resource ~self:t
                  ~sm_out:s.sm_out t
            | None -> ()))
  | _ -> ()

let page_newer_than db table_name page snap =
  match Hashtbl.find_opt db.page_stamps (table_name, page) with
  | Some (ts, _) -> ts > snap
  | None -> false

(* Carry page-level conflict state across B+tree splits (the paper's
   Berkeley DB change #3, §4.4: "propagate SIREAD locks appropriately during
   Btree page splits"). A split moves entries to a freshly allocated sibling
   page, where neither the old page's version stamp nor the SIREAD locks of
   transactions that read those entries would be found — later writers of the
   moved entries would escape both detection mechanisms. Copy the stamp and
   re-grant every SIREAD onto the new page. Splits are performed by whichever
   insert overflows the page and survive even if that transaction aborts (the
   index restructuring is not versioned), so propagation must happen at split
   time, not at the splitter's commit. SIREAD grants never block, so this is
   safe from any context. *)
let propagate_splits db table_name (access : Btree.access) =
  let page_mode = db.config.Config.granularity = Config.Page in
  (* Bounded row mode holds page SIREADs too (granularity promotion and the
     summarized-reader pool), so splits must propagate them there as well;
     page version stamps remain a page-mode mechanism. *)
  if page_mode || bounded db then
    List.iter
      (fun (old_page, new_page) ->
        (if page_mode then
           match Hashtbl.find_opt db.page_stamps (table_name, old_page) with
           | Some stamp -> Hashtbl.replace db.page_stamps (table_name, new_page) stamp
           | None -> ());
        let old_r = page_resource table_name old_page in
        let new_r = page_resource table_name new_page in
        (* A summarized reader's (or writer's) conservative remains must
           follow the entries that moved to the sibling page. *)
        (match find_summary db old_r with
        | Some s ->
            summary_add db new_r ~commit_ts:s.sm_commit_ts ~in_conflict:s.sm_in
              ~out_conflict:s.sm_out
        | None -> ());
        List.iter
          (fun (owner, mode) ->
            if
              mode = Lockmgr.Siread
              && not (List.mem Lockmgr.Siread (Lockmgr.holds_of db.locks ~owner new_r))
            then begin
              Lockmgr.acquire db.locks ~owner ~mode:Lockmgr.Siread new_r;
              db.n_siread_entries <- db.n_siread_entries + 1;
              match find_txn db owner with
              | Some reader -> reader.siread_count <- reader.siread_count + 1
              | None -> ()
            end)
          (Lockmgr.holders db.locks old_r))
      access.Btree.splits

let is_ssi t = t.isolation = Serializable

let log_read t table_name key version =
  if t.db.config.Config.record_history then
    t.reads_log <- { r_table = table_name; r_key = key; r_version = version } :: t.reads_log

let own_write t table_name key = Hashtbl.find_opt t.writes (table_name, key)

let buffer_write t table_name key value =
  if not (Hashtbl.mem t.writes (table_name, key)) then
    t.write_order <- (table_name, key) :: t.write_order;
  Hashtbl.replace t.writes (table_name, key) value

(* {1 Read} *)

(* Page-mode helper: read-lock (S or SIREAD) the leaf pages, as Berkeley DB
   does (internal pages are only latched during the descent). Version-based
   conflicts with structural changes to internal pages are caught by the
   page-stamp checks along the descent path (see [mark_path_stamps]). *)
let lock_pages_for_read t table_name (access : Btree.access) =
  let pages = access.Btree.leaves in
  match t.isolation with
  | S2pl ->
      List.iter (fun p -> acquire t Lockmgr.S (page_resource table_name p)) pages
  | Serializable ->
      charge_lock_ops t.db (List.length pages);
      List.iter
        (fun p ->
          let r = page_resource table_name p in
          acquire_siread ~charge:false t r;
          mark_x_holders t r)
        pages
  | Snapshot | Read_committed -> ()

(* A page anywhere on the descent path updated since our snapshot is an
   ignored newer page version — including root/internal pages modified by
   splits, the false-positive source of §6.1.5. *)
let mark_path_stamps t table_name (access : Btree.access) snap =
  List.iter
    (fun p -> mark_page_stamp t table_name p snap)
    (access.Btree.path @ access.Btree.leaves)

let visible_value (v : Mvstore.version option) =
  match v with Some { value = Some s; _ } -> Some s | _ -> None

let version_ts (v : Mvstore.version option) = match v with Some v -> v.commit_ts | None -> 0

let do_read t table_name key =
  guard t (fun () ->
      match own_write t table_name key with
      | Some v -> v
      | None -> (
          let db = t.db in
          let table = table_exn db table_name in
          charge_cpu db db.config.Config.cost.Config.c_read;
          charge_row_io db 1;
          check_doom t;
          (* Footprint: every isolation level reads this key's version
             chain, with or without locks (RC/SI take none). *)
          touch t (row_resource table_name key);
          match t.isolation with
          | Read_committed ->
              let chain, access = Mvstore.find_chain_path table key in
              touch_pages db table_name access;
              let v = Option.bind chain Mvstore.latest in
              log_read t table_name key (version_ts v);
              visible_value v
          | S2pl ->
              (* The S acquisition can block behind a writer's X; everything
                 observed before the wait is stale once we resume (the writer
                 may have created the key's chain or split its leaf), so
                 re-descend after locking until the leaf set is stable. *)
              let rec locked_access () =
                let _, access = Mvstore.find_chain_path table key in
                (match db.config.Config.granularity with
                | Config.Row -> acquire t Lockmgr.S (row_resource table_name key)
                | Config.Page -> lock_pages_for_read t table_name access);
                let _, access' = Mvstore.find_chain_path table key in
                if access'.Btree.leaves <> access.Btree.leaves then locked_access ()
                else access'
              in
              let access = locked_access () in
              touch_pages db table_name access;
              let v = Option.bind (Mvstore.find_chain table key) Mvstore.latest in
              log_read t table_name key (version_ts v);
              visible_value v
          | Snapshot | Serializable ->
              let snap = ensure_snapshot t in
              let chain, access = Mvstore.find_chain_path table key in
              touch_pages db table_name access;
              if is_ssi t then begin
                (match db.config.Config.granularity with
                | Config.Row ->
                    siread_row t table_name key ~leaves:access.Btree.leaves;
                    mark_x_holders t (row_resource table_name key)
                | Config.Page ->
                    lock_pages_for_read t table_name access;
                    mark_path_stamps t table_name access snap);
                match chain with
                | Some c -> mark_newer_versions t table_name key c snap
                | None -> ()
              end;
              let v = Option.bind chain (fun c -> Mvstore.visible c ~snapshot:snap) in
              log_read t table_name key (version_ts v);
              visible_value v))

(* {1 Write (update / logical delete of an existing key)} *)

(* Acquire the X lock protecting [key]'s row or page, honouring the SIREAD
   upgrade optimisation (§3.7.3), then run first-committer-wins and the
   write-side conflict checks. Returns the chain to buffer against.

   [will_write] tells us the caller is certain to buffer a write: only then
   may an existing SIREAD be discarded under §3.7.3, because the upgrade is
   sound only once a version is actually installed — the installed version
   lets later concurrent writers fail first-committer-wins and later
   concurrent readers mark the rw-edge via [mark_newer_versions]. A locking
   read (or a delete that finds nothing) installs no version, so dropping
   its SIREAD would erase the read from conflict tracking the moment the X
   lock is released at commit. *)
let lock_for_write t table_name key ~will_write =
  let db = t.db in
  let table = table_exn db table_name in
  let config = db.config in
  (* Footprint: the row's chain is read (first-committer-wins) and will gain
     a version — at Page granularity no row lock reports it. *)
  touch_w t (row_resource table_name key);
  (match config.Config.granularity with
  | Config.Row ->
      let r = row_resource table_name key in
      if
        config.Config.upgrade_siread && is_ssi t && will_write
        && List.mem Lockmgr.Siread (Lockmgr.holds_of db.locks ~owner:t.id r)
      then begin
        Lockmgr.release_one db.locks ~owner:t.id ~mode:Lockmgr.Siread r;
        t.siread_count <- t.siread_count - 1;
        db.n_siread_entries <- db.n_siread_entries - 1
      end;
      acquire t Lockmgr.X r
  | Config.Page ->
      let _, access = Mvstore.find_chain_path table key in
      List.iter
        (fun p ->
          let r = page_resource table_name p in
          if
            config.Config.upgrade_siread && is_ssi t && will_write
            && List.mem Lockmgr.Siread (Lockmgr.holds_of db.locks ~owner:t.id r)
          then begin
            Lockmgr.release_one db.locks ~owner:t.id ~mode:Lockmgr.Siread r;
            t.siread_count <- t.siread_count - 1;
            db.n_siread_entries <- db.n_siread_entries - 1
          end;
          acquire t Lockmgr.X r)
        access.Btree.leaves);
  (* Read view only after the first lock is granted (§4.5): single-statement
     updates never abort under first-committer-wins. *)
  let snap = ensure_snapshot t in
  check_doom t;
  let chain, access = Mvstore.ensure_chain table key in
  propagate_splits db table_name access;
  touch_pages ~dirty:true db table_name access;
  (* Page-mode structural changes (index entry creation, splits) X-lock the
     modified pages; a root split therefore conflicts with every reader.
     The pages are remembered so commit can stamp them with the new
     version's timestamp. *)
  (match config.Config.granularity with
  | Config.Page ->
      List.iter (fun p -> acquire t Lockmgr.X (page_resource table_name p)) access.Btree.modified;
      t.touched_pages <-
        List.map (fun p -> (table_name, p)) access.Btree.modified @ t.touched_pages
  | Config.Row -> ());
  (* First-committer-wins (§2.5): a version committed after our read view.
     The abort certificate names the blocking version (its commit timestamp
     and writer) — the evidence that FCW, not SSI, killed this txn. *)
  (match t.isolation with
  | Snapshot | Serializable ->
      if Mvstore.has_newer chain ~than:snap then begin
        (match Mvstore.newer_versions chain ~than:snap with
        | v :: _ ->
            Provenance.emit_fcw t
              ~resource:(row_resource table_name key)
              ~blocking_commit:v.Mvstore.commit_ts ~blocking_writer:v.Mvstore.creator
        | [] -> ());
        raise (Abort Update_conflict)
      end;
      (match config.Config.granularity with
      | Config.Page ->
          List.iter
            (fun p ->
              match Hashtbl.find_opt db.page_stamps (table_name, p) with
              | Some (ts, writer_id) when ts > snap ->
                  Provenance.emit_fcw t
                    ~resource:(page_resource table_name p)
                    ~blocking_commit:ts ~blocking_writer:writer_id;
                  raise (Abort Update_conflict)
              | _ -> ())
            access.Btree.leaves
      | Config.Row -> ())
  | Read_committed | S2pl -> ());
  if is_ssi t then begin
    (match config.Config.granularity with
    | Config.Row ->
        mark_siread_holders t (row_resource table_name key);
        (* Bounded-memory mode: promoted readers and the summarized-reader
           pool hold page SIREADs instead of row SIREADs, so the write must
           also be checked against the page resources of the leaves it
           lands on. *)
        if bounded db then
          List.iter
            (fun p -> mark_siread_holders t (page_resource table_name p))
            access.Btree.leaves
    | Config.Page ->
        List.iter
          (fun p -> mark_siread_holders t (page_resource table_name p))
          (access.Btree.leaves @ access.Btree.modified))
  end;
  chain

(* The SIREAD trace of a locking read that installs no version: the X lock
   subsumes SIREAD only while held, and write locks are released at commit.
   No [mark_x_holders] pass is needed — we hold the X lock ourselves, so no
   concurrent writer can. *)
let siread_after_x t table_name key =
  match t.db.config.Config.granularity with
  | Config.Row -> acquire_siread t (row_resource table_name key)
  | Config.Page ->
      let table = table_exn t.db table_name in
      let _, access = Mvstore.find_chain_path table key in
      List.iter (fun p -> acquire_siread t (page_resource table_name p)) access.Btree.leaves

(* Locking read (SELECT ... FOR UPDATE / the read half of an UPDATE): takes
   the exclusive lock first, then reads. Under SI/SSI this is the §4.5 fast
   path — the snapshot is chosen after the lock, so a transaction whose
   first statement is an update never aborts under first-committer-wins —
   and it subsumes the SIREAD upgrade of §3.7.3. *)
let do_read_for_update t table_name key =
  guard t (fun () ->
      reject_ro t;
      let db = t.db in
      charge_cpu db db.config.Config.cost.Config.c_read;
      charge_row_io db 1;
      check_doom t;
      match own_write t table_name key with
      | Some v -> v
      | None ->
          let chain = lock_for_write t table_name key ~will_write:false in
          if is_ssi t then siread_after_x t table_name key;
          let v =
            match t.isolation with
            | Read_committed | S2pl -> Mvstore.latest chain
            | Snapshot | Serializable ->
                (* The FCW check in lock_for_write guarantees the snapshot
                   version is also the latest committed one. *)
                Mvstore.visible chain ~snapshot:(snapshot_exn t)
          in
          log_read t table_name key (version_ts v);
          visible_value v)

let do_write t table_name key value =
  guard t (fun () ->
      reject_ro t;
      let db = t.db in
      charge_cpu db db.config.Config.cost.Config.c_write;
      charge_row_io db 1;
      check_doom t;
      let _chain = lock_for_write t table_name key ~will_write:true in
      buffer_write t table_name key (Some value))

(* {1 Insert / Delete with phantom protection (Fig 3.7)} *)

let gap_of_successor table_name = function
  | Some next_key -> gap_resource table_name next_key
  | None -> gap_supremum table_name

(* Next key with at least one committed version. Index entries created by
   still-uncommitted inserts are skipped so that two inserts into the same
   gap target the same gap lock as the scans protecting it. *)
let committed_successor table key =
  let rec go k =
    match Mvstore.successor table k with
    | None -> None
    | Some k' -> (
        match Mvstore.find_chain table k' with
        | Some c when c.Mvstore.versions <> [] -> Some k'
        | _ -> go k')
  in
  go key

let lock_gap_for_write t table_name key =
  let db = t.db in
  (* Footprint: an insert/delete changes what a scan of the surrounding gap
     observes even when no gap lock is configured (SI/RC scans lock
     nothing), so the gap name is always touched. *)
  if db.on_touch <> None then
    touch_w t (gap_of_successor table_name (committed_successor (table_exn db table_name) key));
  if db.config.Config.gap_locking && db.config.Config.granularity = Config.Row then begin
    let table = table_exn db table_name in
    (* Acquiring the gap lock can block behind another inserter into the
       same gap; once it commits, the committed successor — and therefore
       the gap resource protecting [key] — may have changed. Re-resolve
       until the name is stable under the lock (next-key locking's standard
       re-check). *)
    let rec locked_gap () =
      let gap = gap_of_successor table_name (committed_successor table key) in
      acquire t Lockmgr.X gap;
      let gap' = gap_of_successor table_name (committed_successor table key) in
      if gap' <> gap then locked_gap () else gap
    in
    let gap = locked_gap () in
    if is_ssi t then mark_siread_holders ~source:Obs.Gap t gap
  end

let do_insert t table_name key value =
  guard t (fun () ->
      reject_ro t;
      let db = t.db in
      charge_cpu db db.config.Config.cost.Config.c_write;
      check_doom t;
      (* Gap lock first (before the index entry appears), then the row. *)
      lock_gap_for_write t table_name key;
      let chain = lock_for_write t table_name key ~will_write:true in
      (* Duplicate detection: a live committed latest version, or our own
         buffered live write; our own buffered delete makes the key free. *)
      (match own_write t table_name key with
      | Some (Some _) -> raise (Abort Duplicate_key)
      | Some None -> ()
      | None -> (
          match Mvstore.latest chain with
          | Some { value = Some _; _ } -> raise (Abort Duplicate_key)
          | _ -> ()));
      buffer_write t table_name key (Some value))

let do_delete t table_name key =
  guard t (fun () ->
      reject_ro t;
      let db = t.db in
      charge_cpu db db.config.Config.cost.Config.c_write;
      check_doom t;
      lock_gap_for_write t table_name key;
      let chain = lock_for_write t table_name key ~will_write:false in
      (* A delete is a locking read of the row's visibility followed by a
         conditional write; the read is logged so the MVSG checker sees the
         rw-edge when someone re-creates the key. *)
      let existed =
        match own_write t table_name key with
        | Some (Some _) -> true
        | Some None -> false
        | None ->
            let v =
              match t.isolation with
              | Read_committed | S2pl -> Mvstore.latest chain
              | Snapshot | Serializable -> Mvstore.visible chain ~snapshot:(snapshot_exn t)
            in
            log_read t table_name key (version_ts v);
            (match v with Some { value = Some _; _ } -> true | _ -> false)
      in
      if existed then buffer_write t table_name key None
      else if is_ssi t then siread_after_x t table_name key;
      existed)

(* {1 Predicate read (range scan) with next-key gap locking (Fig 3.6)} *)

let do_scan ?lo ?hi ?limit t table_name =
  guard t (fun () ->
      let db = t.db in
      let config = db.config in
      let table = table_exn db table_name in
      let snap =
        match t.isolation with
        | Snapshot | Serializable -> ensure_snapshot t
        | Read_committed | S2pl -> 0
      in
      (* Collect the index entries atomically, then pay costs and run the
         locking protocol; committed changes racing with the scan are caught
         by the newer-version checks. With [limit], stop as soon as enough
         visible rows have been seen (next-key locks then cover only the
         examined prefix, like a LIMIT scan). *)
      let visited = ref [] in
      let visible_seen = ref 0 in
      let row_visible key chain =
        match own_write t table_name key with
        | Some (Some _) -> true
        | Some None -> false
        | None -> (
            match t.isolation with
            | Read_committed | S2pl -> (
                match Mvstore.latest chain with Some { value = Some _; _ } -> true | _ -> false)
            | Snapshot | Serializable -> (
                match Mvstore.visible chain ~snapshot:snap with
                | Some { value = Some _; _ } -> true
                | _ -> false))
      in
      let access =
        Mvstore.scan_chains table ?lo ?hi (fun k c ->
            visited := (k, c) :: !visited;
            match limit with
            | Some n ->
                if row_visible k c then begin
                  incr visible_seen;
                  if !visible_seen >= n then raise Exit
                end
            | None -> ())
      in
      let visited = List.rev !visited in
      (* Footprint: a scan reads every visited chain and the gaps between
         them regardless of isolation level (SI/RC scans take no locks); the
         names are recorded before the locking loop below so they are
         visible even if an acquisition blocks. *)
      if db.on_touch <> None then begin
        List.iter
          (fun (key, _) ->
            touch t (row_resource table_name key);
            if config.Config.granularity = Config.Row then
              touch t (gap_resource table_name key))
          visited;
        (match config.Config.granularity with
        | Config.Page ->
            List.iter
              (fun p -> touch t (page_resource table_name p))
              (access.Btree.path @ access.Btree.leaves)
        | Config.Row ->
            let stopped_early =
              match limit with None -> false | Some n -> !visible_seen >= n
            in
            if not stopped_early then
              let from = match hi with Some h -> h | None -> "\xff\xff(sup)" in
              touch t (gap_of_successor table_name (committed_successor table from)))
      end;
      touch_pages db table_name access;
      let n = List.length visited in
      charge_cpu db (float_of_int (max 1 n) *. config.Config.cost.Config.c_scan_row);
      charge_row_io db n;
      check_doom t;
      let gap_lockable = config.Config.gap_locking && config.Config.granularity = Config.Row in
      (* Pre-charge the lock-manager work for the whole scan. *)
      (match t.isolation with
      | S2pl | Serializable ->
          let per_row = if gap_lockable then 2 else 1 in
          (match config.Config.granularity with
          | Config.Row -> charge_lock_ops db ((n * per_row) + if gap_lockable then 1 else 0)
          | Config.Page -> charge_lock_ops db (List.length access.Btree.leaves))
      | Snapshot | Read_committed -> ());
      check_doom t;
      (match (t.isolation, config.Config.granularity) with
      | (S2pl | Serializable), Config.Page ->
          (* Page locks cover both the rows and the gaps (§3.5). *)
          let pages =
            List.sort_uniq compare (access.Btree.path @ access.Btree.leaves)
          in
          List.iter
            (fun p ->
              let r = page_resource table_name p in
              match t.isolation with
              | S2pl -> Lockmgr.acquire db.locks ~owner:t.id ~mode:Lockmgr.S r
              | _ ->
                  acquire_siread ~charge:false t r;
                  mark_x_holders t r;
                  mark_page_stamp t table_name p snap)
            pages;
          check_doom t
      | _ -> ());
      let results = ref [] in
      List.iter
        (fun (key, chain) ->
          (match (t.isolation, config.Config.granularity) with
          | S2pl, Config.Row ->
              Lockmgr.acquire db.locks ~owner:t.id ~mode:Lockmgr.S (row_resource table_name key);
              check_doom t;
              if gap_lockable then begin
                Lockmgr.acquire db.locks ~owner:t.id ~mode:Lockmgr.S (gap_resource table_name key);
                check_doom t
              end
          | Serializable, Config.Row ->
              let r = row_resource table_name key in
              acquire_siread ~charge:false t r;
              mark_x_holders t r;
              if gap_lockable then begin
                let g = gap_resource table_name key in
                acquire_siread ~charge:false t g;
                mark_x_holders ~source:Obs.Gap t g
              end;
              mark_newer_versions t table_name key chain snap
          | _ -> ());
          let v =
            match own_write t table_name key with
            | Some v -> v
            | None -> (
                match t.isolation with
                | Read_committed | S2pl -> visible_value (Mvstore.latest chain)
                | Snapshot | Serializable ->
                    visible_value (Mvstore.visible chain ~snapshot:snap))
          in
          (if config.Config.record_history then
             let ver =
               match t.isolation with
               | Read_committed | S2pl -> version_ts (Mvstore.latest chain)
               | Snapshot | Serializable -> version_ts (Mvstore.visible chain ~snapshot:snap)
             in
             log_read t table_name key ver);
          match v with Some v -> results := (key, v) :: !results | None -> ())
        visited;
      (* Terminal gap: protects inserts beyond the last visited key
         (including into an empty range). Not needed if a LIMIT stopped the
         scan early — the examined range ends at the last visited row. *)
      let exhausted = match limit with None -> true | Some n -> !visible_seen < n in
      if exhausted && gap_lockable && (t.isolation = S2pl || is_ssi t) then begin
        let from = match hi with Some h -> h | None -> "\xff\xff(sup)" in
        let resolve () = gap_of_successor table_name (committed_successor table from) in
        match t.isolation with
        | S2pl ->
            (* Blocking acquire: re-resolve the gap name until stable, as in
               [lock_gap_for_write]. *)
            let rec locked_terminal () =
              let terminal = resolve () in
              Lockmgr.acquire db.locks ~owner:t.id ~mode:Lockmgr.S terminal;
              if resolve () <> terminal then locked_terminal ()
            in
            locked_terminal ();
            check_doom t
        | _ ->
            let terminal = resolve () in
            acquire_siread ~charge:false t terminal;
            mark_x_holders ~source:Obs.Gap t terminal
      end;
      (* Buffered inserts of our own that fall inside the range. *)
      let own_inserts =
        List.filter_map
          (fun (tbl, k) ->
            if
              tbl = table_name
              && (match lo with Some lo -> k >= lo | None -> true)
              && (match hi with Some hi -> k <= hi | None -> true)
              && not (List.exists (fun (k', _) -> k' = k) visited)
            then
              match Hashtbl.find_opt t.writes (tbl, k) with
              | Some (Some v) -> Some (k, v)
              | _ -> None
            else None)
          t.write_order
      in
      let all = List.sort (fun (a, _) (b, _) -> compare a b) (own_inserts @ List.rev !results) in
      match limit with
      | None -> all
      | Some n -> List.filteri (fun i _ -> i < n) all)

(* {1 Commit / rollback} *)

let install_writes t commit_ts =
  let db = t.db in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (table_name, key) ->
      if not (Hashtbl.mem seen (table_name, key)) then begin
        Hashtbl.add seen (table_name, key) ();
        let table = table_exn db table_name in
        let chain, access = Mvstore.ensure_chain table key in
        propagate_splits db table_name access;
        let value = Hashtbl.find t.writes (table_name, key) in
        Mvstore.install chain ~value ~commit_ts ~creator:t.id;
        if db.config.Config.granularity = Config.Page then begin
          let _, access = Mvstore.find_chain_path table key in
          List.iter
            (fun p ->
              Hashtbl.replace db.page_stamps (table_name, p) (commit_ts, t.id);
              (* Remembered so a later summarization of this transaction can
                 leave its out-flag on the stamped pages' summary entries. *)
              if not (List.mem (table_name, p) t.touched_pages) then
                t.touched_pages <- (table_name, p) :: t.touched_pages)
            access.Btree.leaves
        end
      end)
    (List.rev t.write_order);
  if db.config.Config.granularity = Config.Page then
    List.iter
      (fun (tbl, p) -> Hashtbl.replace db.page_stamps (tbl, p) (commit_ts, t.id))
      t.touched_pages

let record_history t =
  let db = t.db in
  if db.config.Config.record_history then
    db.history <-
      {
        h_id = t.id;
        h_isolation = t.isolation;
        h_snapshot = (match t.snapshot with Some s -> s | None -> db.last_commit_ts);
        h_commit = (match t.commit_ts with Some c -> c | None -> 0);
        h_reads = List.rev t.reads_log;
        h_writes = List.rev t.write_order;
      }
      :: db.history

(* {2 Bounded-memory mode: committed-transaction summarization}

   Ports & Grittner's OldCommittedSxact, adapted: under budget pressure the
   oldest suspended committed transaction is folded into the per-resource
   summary table and its record dropped. Its SIREAD locks move to the
   sentinel pool owner (so writers still find *something* on the resource)
   and every moved resource gets a summary entry carrying the max folded
   commit timestamp and the OR of the folded in/out flags. The entry is
   created even when both flags are clear: a writer meeting the pooled
   SIREAD must still set its own incoming self-flag. Write-side entries
   (written rows, stamped pages) are only needed when the out-flag is set —
   for a flag-less creator the no-entry fallback [mark_unknown_writer] is
   behaviourally identical. Dropping the record loses the ability to update
   the folded flags later, which is safe: in any MVSG cycle the critical
   pivot acquires its out-edge before it commits (its out-neighbour commits
   first), so the fold always captures that flag; late-forming in-edges are
   handled by dooming the live endpoint (see [Conflict.mark_summarized_*]). *)
let summarize_oldest db =
  let s = Queue.pop db.suspended in
  if s.siread_count > 0 then db.n_retained_siread <- db.n_retained_siread - 1
  else db.n_retained_record <- db.n_retained_record - 1;
  let commit_ts = match s.commit_ts with Some c -> c | None -> db.last_commit_ts in
  let in_conflict = ref_is_set s.in_conflict in
  let out_conflict = ref_is_set s.out_conflict in
  let moved = Lockmgr.transfer_sireads db.locks ~owner:s.id ~to_owner:summary_owner in
  s.siread_count <- 0;
  let entries = ref 0 in
  List.iter
    (fun (resource, merged) ->
      (* Merging into an existing sentinel SIREAD frees one lock-table
         entry; a fresh sentinel entry keeps the count unchanged. *)
      if merged then db.n_siread_entries <- db.n_siread_entries - 1;
      summary_add db resource ~commit_ts ~in_conflict ~out_conflict;
      Obs.attrib_summarized db.obs resource;
      incr entries)
    moved;
  if out_conflict then begin
    List.iter
      (fun (table_name, key) ->
        summary_add db (row_resource table_name key) ~commit_ts ~in_conflict:false
          ~out_conflict:true;
        incr entries)
      s.write_order;
    List.iter
      (fun (table_name, page) ->
        summary_add db (page_resource table_name page) ~commit_ts ~in_conflict:false
          ~out_conflict:true;
        incr entries)
      s.touched_pages
  end;
  Hashtbl.remove db.txn_by_id s.id;
  db.n_summarized <- db.n_summarized + 1;
  !entries

(* Expire summary entries no active transaction can still conflict with.
   The expiry queue is filled in summarization order, so timestamps are
   nondecreasing except for split-propagation copies, which can only delay
   an entry past its natural slot — removal re-checks the entry's own (upsert
   max) timestamp, so nothing expires early. A resource can be re-queued by
   later upserts; stale queue entries find the table entry already gone (or
   too new) and are skipped. *)
let drain_summary db min_snap =
  let rec go () =
    match Queue.peek_opt db.summary_expiry with
    | Some (ts, resource) when ts <= min_snap ->
        ignore (Queue.pop db.summary_expiry);
        (match Hashtbl.find_opt db.summary resource with
        | Some s when s.sm_commit_ts <= min_snap ->
            Hashtbl.remove db.summary resource;
            if
              List.mem Lockmgr.Siread
                (Lockmgr.holds_of db.locks ~owner:summary_owner resource)
            then begin
              Lockmgr.release_one db.locks ~owner:summary_owner ~mode:Lockmgr.Siread resource;
              db.n_siread_entries <- db.n_siread_entries - 1
            end
        | _ -> ());
        go ()
    | _ -> ()
  in
  go ()

(* Release suspended transactions that no active transaction overlaps
   (§3.3/§4.6.1): safe once every active read view begins at or after their
   commit. The queue is ordered by commit timestamp (commits append in
   timestamp order), so draining eligible entries from the front preserves
   the oldest-commit-first discipline and keeps each pass O(released). *)
let cleanup_suspended db =
  let min_snap = min_active_snapshot db in
  let released = ref 0 in
  let rec drain () =
    match Queue.peek_opt db.suspended with
    | Some s when (match s.commit_ts with Some c -> c <= min_snap | None -> false) ->
        ignore (Queue.pop db.suspended);
        if s.siread_count > 0 then begin
          db.n_retained_siread <- db.n_retained_siread - 1;
          db.n_siread_entries <- db.n_siread_entries - s.siread_count;
          s.siread_count <- 0
        end
        else db.n_retained_record <- db.n_retained_record - 1;
        Lockmgr.release_all db.locks s.id;
        Hashtbl.remove db.txn_by_id s.id;
        incr released;
        drain ()
    | _ -> ()
  in
  drain ();
  if bounded db then drain_summary db min_snap;
  if !released > 0 then begin
    let obs = db.obs in
    Obs.record_cleanup obs ~released:!released ~retained:(Queue.length db.suspended);
    if Obs.tracing obs then
      Obs.emit obs ~ts:(Sim.now db.sim)
        (Obs.Cleanup { released = !released; retained = Queue.length db.suspended })
  end

let do_commit t =
  guard t (fun () ->
      let db = t.db in
      let config = db.config in
      let n_writes = List.length t.write_order in
      charge_cpu db
        (config.Config.cost.Config.c_txn
        +. (float_of_int n_writes *. config.Config.cost.Config.c_commit_install));
      check_doom t;
      (* Footprint: committing publishes every buffered version (writes of
         the updated rows), retires the held locks and reads the conflict
         flags other transactions set through those resources. Held locks
         are read-strength touches: every conflicting peer (a writer of a
         row this transaction SIREAD-holds, a waiter on an X entry) touched
         the resource at write strength itself, while two readers' commits
         must stay commuting. *)
      if db.on_touch <> None then begin
        List.iter (touch t) (Lockmgr.owned_resources db.locks t.id);
        List.iter (fun (tbl, key) -> touch_w t (row_resource tbl key)) t.write_order
      end;
      (* Fig 3.2 atomic block: dangerous-structure check, then mark committed
         so later conflicts treat us as such. *)
      if is_ssi t then Conflict.check_commit t;
      t.state <- Committing;
      (* Durability before visibility (§4.4: locks released after the log
         flush; group commit batches concurrent committers). The flush is a
         profiler span: its duration is where group-commit batching shows
         up in a trace.

         Writing transactions draw their commit timestamp *before* the
         flush so the WAL Commit record can carry it; allocation and the
         appends are one atomic simulated step, which keeps Commit records
         in timestamp order in the log (recovery's prefix oracle relies on
         this). The timestamp stays unpublished — invisible to snapshots
         and comparing as +infinity — until the versions install below. *)
      let commit_ts =
        if n_writes > 0 then begin
          let commit_ts = alloc_commit_ts db in
          t.commit_ts <- Some commit_ts;
          if Obs.tracing db.obs then
            Obs.emit db.obs ~ts:(Sim.now db.sim)
              (Obs.Span_b { tid = t.id; name = "log-flush"; cat = "wal" });
          Wal.append db.wal (Wal.Begin { txn = t.id });
          let seen = Hashtbl.create 16 in
          List.iter
            (fun (table_name, key) ->
              if not (Hashtbl.mem seen (table_name, key)) then begin
                Hashtbl.add seen (table_name, key) ();
                match Hashtbl.find t.writes (table_name, key) with
                | Some value ->
                    Wal.append db.wal (Wal.Write { txn = t.id; table = table_name; key; value })
                | None -> Wal.append db.wal (Wal.Delete { txn = t.id; table = table_name; key })
              end)
            (List.rev t.write_order);
          Wal.append db.wal (Wal.Commit { txn = t.id; ts = commit_ts });
          t.logged <- true;
          Wal.commit_window_check db.wal;
          Wal.commit_flush db.wal;
          if Obs.tracing db.obs then
            Obs.emit db.obs ~ts:(Sim.now db.sim)
              (Obs.Span_e { tid = t.id; name = "log-flush"; cat = "wal" });
          commit_ts
        end
        else begin
          (* Read-only / no-write commit: nothing to log, so allocation and
             publication collapse into the atomic block below. A fresh
             timestamp is still taken — overlap tests ("commit(owner) >
             begin(T)", Fig 3.5) need commits and begins totally ordered. *)
          let commit_ts = alloc_commit_ts db in
          t.commit_ts <- Some commit_ts;
          commit_ts
        end
      in
      (* Atomic publication: install all versions and advance the snapshot
         horizon in one step, so snapshots are consistent. *)
      if n_writes > 0 then install_writes t commit_ts;
      (* Footprint: pages stamped during install (Page granularity; includes
         split-allocated siblings not known before install). *)
      if db.on_touch <> None then
        List.iter (fun (tbl, p) -> touch_w t (page_resource tbl p)) t.touched_pages;
      publish_commit_ts db commit_ts;
      (* Footprint: publication advances what later snapshots observe, and
         the overlap tests of Fig 3.5 compare this commit against other
         transactions' begins. Both are per-resource facts, so the commit
         writes a visibility shadow ["c/<resource>"] for everything it
         published or held — a transaction whose read view covers one of
         these resources reads the same shadow at its snapshot-pin turn
         (the explorer adds those reads from the recorded footprint). A
         single global clock resource would order every commit against
         every begin and destroy the reduction. *)
      if db.on_touch <> None then begin
        List.iter (fun res -> touch_w t ("c/" ^ res)) (Lockmgr.owned_resources db.locks t.id);
        List.iter
          (fun (tbl, key) -> touch_w t ("c/" ^ row_resource tbl key))
          t.write_order;
        List.iter
          (fun (tbl, p) -> touch_w t ("c/" ^ page_resource tbl p))
          t.touched_pages
      end;
      t.logged <- false;
      t.state <- Committed;
      db.stats.commits <- db.stats.commits + 1;
      let commit_now = Sim.now db.sim in
      db.work_committed <- db.work_committed +. (commit_now -. t.start_time);
      db.work_ledger <- db.work_ledger +. commit_now;
      record_history t;
      Hashtbl.remove db.active t.id;
      (* Retention (§3.3, §4.8): every committed transaction's record (its
         conflict flags and commit time) must survive while any overlapping
         transaction is active — even a pure writer can sit inside a cycle
         through its wr-edges, so a later reader that ignores its version
         must still find it and set its own outgoing flag. SSI transactions
         additionally keep their SIREAD locks (suspension); everyone else
         releases all locks now. *)
      Conflict.seal_references t;
      Lockmgr.release_all ~keep_siread:(is_ssi t) db.locks t.id;
      Queue.add t db.suspended;
      if t.siread_count > 0 then db.n_retained_siread <- db.n_retained_siread + 1
      else db.n_retained_record <- db.n_retained_record + 1;
      let obs = db.obs in
      if Obs.metrics_on obs then begin
        Obs.record_commit obs ~latency:(Sim.now db.sim -. t.start_time);
        Obs.note_retained obs ~siread:db.n_retained_siread ~record:db.n_retained_record
      end;
      if Obs.tracing obs then begin
        Obs.emit obs ~ts:(Sim.now db.sim)
          (Obs.Txn_commit { txn = t.id; start = t.start_time; commit_ts; n_writes });
        Obs.emit obs ~ts:(Sim.now db.sim) (Obs.Span_e { tid = t.id; name = "txn"; cat = "txn" })
      end;
      cleanup_suspended db;
      (* Budget enforcement: after the watermark cleanup, if retained records
         plus live SIREAD lock-table entries still exceed the budget, fold
         oldest committed transactions into the summary until under budget or
         the suspended queue is empty (the summary's own sentinel entries are
         bounded by the resource universe, not by transaction count). *)
      (match config.Config.memory_budget with
      | None -> ()
      | Some budget ->
          let pressure () = Queue.length db.suspended + db.n_siread_entries in
          if pressure () > budget && Queue.length db.suspended > 0 then begin
            let txns = ref 0 and entries = ref 0 in
            while Queue.length db.suspended > 0 && pressure () > budget do
              entries := !entries + summarize_oldest db;
              incr txns
            done;
            Obs.record_budget_pressure obs;
            Obs.record_summarized obs ~txns:!txns;
            Obs.note_summary obs (Hashtbl.length db.summary);
            if Obs.tracing obs then
              Obs.emit obs ~ts:(Sim.now db.sim)
                (Obs.Summarize
                   {
                     txns = !txns;
                     entries = !entries;
                     retained = Queue.length db.suspended;
                   })
          end);
      (* Retention gauges for the timeline: sample after watermark cleanup
         and budget enforcement, so the point reflects the state actually
         left in force by this commit. Trace-only, like the other events. *)
      if Obs.tracing obs then
        Obs.emit obs ~ts:(Sim.now db.sim)
          (Obs.Mem_sample
             {
               siread = db.n_siread_entries;
               retained_siread = db.n_retained_siread;
               retained_record = db.n_retained_record;
               summary = Hashtbl.length db.summary;
             });
      (* Periodic checkpoint: every [checkpoint_interval] commits, harden
         the open WAL batch together with a checkpoint record carrying the
         oldest-active-snapshot watermark and the commit-ts allocator. In
         No_flush mode this is what bounds the crash loss window; recovery
         restores the watermark for PR 5-style retention. *)
      match config.Config.checkpoint_interval with
      | Some k when k > 0 && db.stats.commits mod k = 0 ->
          let watermark = min (min_active_snapshot db) db.last_commit_ts in
          Wal.checkpoint db.wal ~watermark ~next_ts:db.next_commit_ts
      | _ -> ())

let do_rollback t reason =
  match t.state with
  | Active | Committing ->
      rollback_now t reason;
      cleanup_suspended t.db
  | Committed | Aborted -> ()
