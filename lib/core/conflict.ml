(* The heart of Serializable Snapshot Isolation: rw-dependency flagging
   (markConflict, Figs 3.3/3.9), the dangerous-structure tests, and the
   machinery for aborting some *other* transaction ("dooming" it).

   A transaction can only be rolled back by its own process, so when the
   victim of a conflict is a different transaction we set [doomed] on it; it
   notices at its next operation or commit. If it is blocked in the lock
   manager we additionally cancel its wait so it notices immediately. *)

open Types
open Internal

(* Whether [t]'s conflict edges form the dangerous pattern: both edges
   present, and the outgoing neighbour committed first (no later than the
   incoming neighbour commits). In basic mode (§3.2) the commit-time
   refinement is disabled and two edges alone are dangerous. *)
let is_dangerous config t =
  ref_is_set t.in_conflict && ref_is_set t.out_conflict
  &&
  match config.Config.ssi with
  | Config.Basic -> true
  | Config.Precise ->
      (* Precise mode disregards edges to aborted transactions (their reads
         and writes no longer exist) and requires the outgoing neighbour to
         have committed first. *)
      let live = function
        | No_conflict -> false
        | Self_conflict -> true
        | Conflict_with u -> u.state <> Aborted
      in
      let out_committed =
        match t.out_conflict with
        | Self_conflict -> true (* conservative: some neighbour may have committed *)
        | Conflict_with u -> has_committed u
        | No_conflict -> false
      in
      live t.in_conflict && live t.out_conflict && out_committed
      && ref_commit_time ~if_self:neg_infinity t.out_conflict
         <= ref_commit_time ~if_self:infinity t.in_conflict
      &&
      (* Read-only refinement (extension; see Config.ro_refinement): a cycle
         through a committed read-only T_in requires a path T_out ->* T_in
         of wr/ww edges, all of which point at transactions that began after
         T_out committed — so T_out must have committed before T_in's
         snapshot. *)
      (match (config.Config.ro_refinement, t.in_conflict) with
      | true, Conflict_with tin when known_read_only tin -> (
          match tin.snapshot with
          | Some snap ->
              ref_commit_time ~if_self:neg_infinity t.out_conflict <= float_of_int snap
          | None -> true)
      | _ -> true)

(* Abort [victim]. If it is the transaction whose process is running right
   now ([self]), raise directly; otherwise doom it and break any lock wait. *)
let claim_victim ~self victim reason =
  if victim == self then raise (Abort reason)
  else if victim.state = Active && victim.doomed = None then begin
    (* Footprint: dooming writes a flag only the victim reads (each of its
       operations touches its own doom resource), so the explorer sees the
       doomer and every victim operation as dependent. *)
    (match self.db.on_touch with
    | Some f -> f self.id true (doom_resource victim.id)
    | None -> ());
    victim.doomed <- Some reason;
    let db = victim.db in
    Obs.record_doomed db.obs;
    if Obs.tracing db.obs then
      Obs.emit db.obs ~ts:(Sim.now db.sim)
        (Obs.Victim_doomed
           { victim = victim.id; by = self.id; reason = abort_reason_to_string reason });
    ignore (Lockmgr.cancel_wait victim.db.locks victim.id (Abort reason))
  end

let set_out t other =
  t.out_conflict <-
    (match t.out_conflict with
    | No_conflict -> Conflict_with other
    | Conflict_with u when u == other -> Conflict_with other
    | _ -> Self_conflict)

let set_in t other =
  t.in_conflict <-
    (match t.in_conflict with
    | No_conflict -> Conflict_with other
    | Conflict_with u when u == other -> Conflict_with other
    | _ -> Self_conflict)

(* Record an rw-edge for observability: counter split by detection source
   (§6.1.5's false-positive analysis) and an optional trace event. *)
let observe_edge ~self ~reader ~writer ~resource source =
  let db = self.db in
  Obs.record_conflict db.obs source;
  Obs.attrib_conflict db.obs resource;
  if Obs.tracing db.obs then
    Obs.emit db.obs ~ts:(Sim.now db.sim)
      (Obs.Conflict_edge { reader = reader.id; writer = writer.id; source })

let policy_name = function
  | Config.Prefer_pivot -> "prefer-pivot"
  | Config.Prefer_younger -> "prefer-younger"

(* markConflict(reader, writer): record the rw-dependency reader -> writer.
   [self] is the transaction running this code (either [reader] or
   [writer]); it absorbs the abort when it is chosen as victim. [source]
   says which detection mechanism noticed the dependency and [resource] the
   row/gap/page behind it (observability only; no behavioural effect).

   Follows Fig 3.3 (basic) / Fig 3.9 (precise), plus the §3.7.1 enhancements:
   conflicts are not recorded against aborted or doomed transactions, and an
   active transaction whose edges become dangerous aborts immediately rather
   than at commit. *)
let mark ~source ~resource ~self ~reader ~writer =
  if reader == writer then ()
  else if reader.state = Aborted || writer.state = Aborted then ()
  else if reader.doomed <> None || writer.doomed <> None then ()
  else begin
    let config = self.db.config in
    (* Provenance first: the edge was *detected* here whether or not the
       flag is recorded below (a committed-pivot branch dooms an endpoint
       instead), and the certificate for that doom cites this edge. *)
    Provenance.record_edge ~reader ~writer ~source ~resource;
    (* Abort-early (§3.7.1): once the new edge makes a dangerous structure,
       pick a victim among the two endpoints per §3.7.2 — either breaks the
       structure, since removing one endpoint removes this rw edge. *)
    let abort_early_check () =
      if config.Config.abort_early then begin
        let reader_dangerous = reader.state = Active && is_dangerous config reader in
        let writer_dangerous = writer.state = Active && is_dangerous config writer in
        if reader_dangerous || writer_dangerous then
          let victim =
            match config.Config.victim with
            | Config.Prefer_pivot ->
                (* the endpoint that is itself the pivot; reader first when
                   both are (deterministic tie-break) *)
                if reader_dangerous then Some reader else Some writer
            | Config.Prefer_younger -> (
                (* Total by construction: selection must stay well-defined
                   even if an endpoint left [Active] between danger
                   detection and victim choice (the former [List.hd] here
                   raised on an empty candidate list). With no Active
                   candidate there is nothing left to break. *)
                match List.filter (fun t -> t.state = Active) [ reader; writer ] with
                | [] -> None
                | c :: cs ->
                    Some (List.fold_left (fun a b -> if b.id > a.id then b else a) c cs))
          in
          match victim with
          | Some v ->
              let pivot = if reader_dangerous then reader else writer in
              Provenance.emit_ssi ~victim:v
                ~policy:(policy_name config.Config.victim)
                ~pivot ~t_in:(Provenance.Nb_ref pivot.in_conflict)
                ~t_out:(Provenance.Nb_ref pivot.out_conflict);
              claim_victim ~self v Unsafe
          | None -> ()
      end
    in
    match config.Config.ssi with
    | Config.Basic ->
        if has_committed writer && ref_is_set writer.out_conflict then begin
          (* The new edge reader -> writer makes the committed [writer] a
             pivot; the flags are not recorded, so name the neighbours
             explicitly: T_in is [reader] (this edge), T_out is whatever the
             writer's outgoing flag says. *)
          Provenance.emit_ssi ~victim:reader ~policy:"committed-pivot" ~pivot:writer
            ~t_in:(Provenance.Nb reader) ~t_out:(Provenance.Nb_ref writer.out_conflict);
          claim_victim ~self reader Unsafe
        end
        else if has_committed reader && ref_is_set reader.in_conflict then begin
          Provenance.emit_ssi ~victim:writer ~policy:"committed-pivot" ~pivot:reader
            ~t_in:(Provenance.Nb_ref reader.in_conflict) ~t_out:(Provenance.Nb writer);
          claim_victim ~self writer Unsafe
        end
        else begin
          set_out reader writer;
          set_in writer reader;
          observe_edge ~self ~reader ~writer ~resource source;
          abort_early_check ()
        end
    | Config.Precise ->
        (* Fig 3.9: a committed writer that is a pivot whose outgoing
           neighbour committed no later than it dooms the reader. The
           symmetric committed-reader check is unnecessary: the writer (its
           outgoing neighbour) is still running, so it did not commit first. *)
        if
          has_committed writer
          && ref_is_set writer.out_conflict
          && ref_commit_time ~if_self:neg_infinity writer.out_conflict <= commit_time writer
        then begin
          Provenance.emit_ssi ~victim:reader ~policy:"committed-pivot" ~pivot:writer
            ~t_in:(Provenance.Nb reader) ~t_out:(Provenance.Nb_ref writer.out_conflict);
          claim_victim ~self reader Unsafe
        end
        else begin
          set_out reader writer;
          set_in writer reader;
          observe_edge ~self ~reader ~writer ~resource source;
          abort_early_check ()
        end
  end

(* An rw-dependency whose writer's record is no longer available (only
   possible for bulk-loaded versions): conservatively record an outgoing
   self-conflict on the reader. *)
let mark_unknown_writer ~resource ~self reader =
  if reader.state = Aborted || reader.doomed <> None then ()
  else if reader.isolation = Serializable then begin
    reader.out_conflict <- Self_conflict;
    let db = reader.db in
    Provenance.record_unknown_edge ~reader ~resource;
    Obs.record_conflict db.obs Obs.Unknown_writer;
    Obs.attrib_conflict db.obs resource;
    if Obs.tracing db.obs then
      Obs.emit db.obs ~ts:(Sim.now db.sim)
        (Obs.Conflict_edge { reader = reader.id; writer = 0; source = Obs.Unknown_writer });
    let config = reader.db.config in
    if config.Config.abort_early && reader.state = Active && is_dangerous config reader then begin
      Provenance.emit_ssi ~victim:reader ~policy:"unknown-writer" ~pivot:reader
        ~t_in:(Provenance.Nb_ref reader.in_conflict)
        ~t_out:(Provenance.Nb_ref reader.out_conflict);
      claim_victim ~self reader Unsafe
    end
  end

(* {1 Bounded-memory mode: edges against summarized committed transactions}

   When [Config.memory_budget] folds old committed transactions into the
   per-resource summary table (see [Internal.summary]), their records are
   gone but their conflict state survives as OR'd flags under a max commit
   timestamp. These two entry points mirror [mark] with one committed
   endpoint, erring conservative: the loss of precision only ever moves
   towards more aborts, never towards admitting a dangerous structure.
   Post-fold flag updates to the summarized side are dropped, which is safe
   because the critical pivot of any MVSG cycle acquires its outgoing edge
   before it commits (its out-neighbour commits first of the three), so that
   flag is always captured by the fold; every structure the dropped updates
   could have flagged is caught from one of the live endpoints instead. *)

(* [self] (an active writer) met the pooled SIREAD of summarized committed
   readers on [resource]; the caller checked that the folded commit span
   overlaps [self]'s snapshot. In basic mode a folded in-flag means some
   committed reader was a pivot — Fig 3.3's committed-reader branch dooms
   the writer. Otherwise the writer's incoming reference becomes a
   self-reference (+infinity commit time, so every later dangerous-structure
   test errs towards aborting); precise mode, like [mark], has no
   committed-reader pivot check to run. *)
let mark_summarized_reader ~source ~resource ~self ~sm_in =
  if self.state = Aborted || self.doomed <> None then ()
  else begin
    let db = self.db in
    let config = db.config in
    Provenance.record_summary_edge ~self ~source ~resource ~incoming:true;
    Obs.record_conflict db.obs source;
    Obs.attrib_conflict db.obs resource;
    if Obs.tracing db.obs then
      Obs.emit db.obs ~ts:(Sim.now db.sim)
        (Obs.Conflict_edge { reader = summary_owner; writer = self.id; source });
    if config.Config.ssi = Config.Basic && sm_in then begin
      Provenance.emit_ssi ~victim:self ~policy:"summarized-pivot" ~pivot:self
        ~t_in:(Provenance.Nb_ref self.in_conflict)
        ~t_out:(Provenance.Nb_ref self.out_conflict);
      claim_victim ~self self Unsafe
    end
    else begin
      self.in_conflict <- Self_conflict;
      if config.Config.abort_early && self.state = Active && is_dangerous config self then begin
        Provenance.emit_ssi ~victim:self ~policy:"summarized-reader" ~pivot:self
          ~t_in:(Provenance.Nb_ref self.in_conflict)
          ~t_out:(Provenance.Nb_ref self.out_conflict);
        claim_victim ~self self Unsafe
      end
    end
  end

(* [reader] (== [self], active) ignored a version or page stamp newer than
   its snapshot whose creator was summarized away. A folded out-flag means
   some summarized creator may be a committed pivot whose out-neighbour
   committed first; without its commit times the committed-pivot test of
   [mark] cannot discharge it, so the reader dies (a false positive exactly
   in the cases precise mode would have cleared). With no out-flag this is
   the [mark_unknown_writer] situation: a conservative outgoing
   self-reference. *)
let mark_summarized_writer ~source ~resource ~self ~sm_out reader =
  if reader.state = Aborted || reader.doomed <> None then ()
  else if reader.isolation = Serializable then begin
    if sm_out then begin
      let db = reader.db in
      Provenance.record_summary_edge ~self:reader ~source ~resource ~incoming:false;
      Obs.record_conflict db.obs source;
      Obs.attrib_conflict db.obs resource;
      if Obs.tracing db.obs then
        Obs.emit db.obs ~ts:(Sim.now db.sim)
          (Obs.Conflict_edge { reader = reader.id; writer = summary_owner; source });
      Provenance.emit_ssi ~victim:reader ~policy:"summarized-pivot" ~pivot:reader
        ~t_in:(Provenance.Nb_ref reader.in_conflict)
        ~t_out:(Provenance.Nb_ref reader.out_conflict);
      claim_victim ~self reader Unsafe
    end
    else mark_unknown_writer ~resource ~self reader
  end

(* Commit-time check of Figs 3.2/3.10: called with the transaction still
   Active; raises [Abort Unsafe] if committing would complete a dangerous
   structure. *)
let check_commit t =
  if is_dangerous t.db.config t then begin
    Provenance.emit_ssi ~victim:t ~policy:"commit-time-check" ~pivot:t
      ~t_in:(Provenance.Nb_ref t.in_conflict) ~t_out:(Provenance.Nb_ref t.out_conflict);
    raise (Abort Unsafe)
  end

(* Fig 3.10 lines 9-12: before suspension, replace references to
   already-committed transactions with self-references, so a suspended
   transaction never references anything that commits (and is cleaned up)
   before it. *)
let seal_references t =
  (match t.in_conflict with
  | Conflict_with u when has_committed u -> t.in_conflict <- Self_conflict
  | _ -> ());
  match t.out_conflict with
  | Conflict_with u when has_committed u -> t.out_conflict <- Self_conflict
  | _ -> ()
