(* Internal shared state of the engine: the database and transaction
   records, resource-name encodings, and small helpers. The public API lives
   in Db and Txn; the SSI logic in Conflict; operation execution in Exec. *)

open Types

type txn_state =
  | Active
  | Committing (* §3.2: flags checked, "marked committed", flushing the log *)
  | Committed
  | Aborted

type conflict_ref =
  | No_conflict
  | Conflict_with of txn (* single in/out neighbour (§3.6 precise mode) *)
  | Self_conflict (* several neighbours; conservative self-reference *)

and txn = {
  id : int;
  isolation : isolation;
  declared_ro : bool; (* BEGIN TRANSACTION READ ONLY *)
  db : db;
  start_time : float;
  mutable state : txn_state;
  mutable snapshot : int option; (* read view; assigned lazily (§4.5) *)
  mutable commit_ts : int option;
  mutable doomed : abort_reason option; (* set by others, noticed at next op *)
  mutable in_conflict : conflict_ref;
  mutable out_conflict : conflict_ref;
  writes : (string * string, string option) Hashtbl.t; (* buffered writes *)
  mutable write_order : (string * string) list; (* newest first *)
  mutable siread_count : int; (* distinct resources SIREAD-locked *)
  mutable logged : bool; (* redo records appended to the WAL this commit *)
  mutable touched_pages : (string * int) list; (* pages split by our writes *)
  mutable reads_log : read_record list; (* only when record_history *)
  mutable in_edges : Obs.cert_edge list;
      (* rw edges r ->rw t where this txn is the writer; newest first.
         Recorded only when the sink has provenance on (abort certificates
         cite the resource and detection source behind each pivot edge). *)
  mutable out_edges : Obs.cert_edge list; (* rw edges t ->rw w; newest first *)
  page_reads : (string * int, page_reads) Hashtbl.t;
      (* bounded-memory mode only: per (table, leaf page), the row SIREADs
         this txn holds there, so granularity promotion can collapse them
         into one page SIREAD once Config.promote_threshold is reached *)
}

and page_reads = {
  mutable pr_rows : string list; (* row resources SIREAD-locked on the page *)
  mutable pr_count : int;
  mutable pr_promoted : bool; (* page SIREAD held; row SIREADs released *)
}

(* Conservative remains of summarized committed transactions, keyed by lock
   resource ("r/", "g/" or "p/" encodings). When the retained queue exceeds
   Config.memory_budget, the oldest committed txns are folded in here: per
   resource, the latest contributing commit timestamp plus the OR of the
   contributors' conflict flags. Readers/writers that meet a summarized
   owner consult this instead of the (gone) transaction record; the folding
   loses precision, never conflicts (false positives up, safety intact). *)
and summary = {
  mutable sm_commit_ts : int; (* max commit ts of summarized contributors *)
  mutable sm_in : bool; (* any contributor had in_conflict set *)
  mutable sm_out : bool; (* any contributor had out_conflict set *)
}

and db = {
  sim : Sim.t;
  config : Config.t;
  locks : Lockmgr.t;
  wal : Wal.t;
  cpu : Resource.t;
  disk : Resource.t;
  cache : Bufcache.t option;
  io_rng : Random.State.t;
  lock_mutex : Resource.t option;
  tables : (string, Mvstore.t) Hashtbl.t;
  mutable last_commit_ts : int;
      (* highest *published* commit timestamp: every commit at or below it
         is installed, so snapshots read it directly. Since PR 6 allocation
         and publication are split (see [next_commit_ts]) *)
  mutable next_commit_ts : int; (* commit-ts allocator (highest handed out) *)
  published : (int, unit) Hashtbl.t;
      (* allocated timestamps whose installation finished while an earlier
         one is still flushing; drained contiguously into [last_commit_ts] *)
  mutable next_txn_id : int;
  txn_by_id : (int, txn) Hashtbl.t; (* active + committing + suspended *)
  active : (int, txn) Hashtbl.t;
  suspended : txn Queue.t;
      (* retained committed txns, oldest commit first; a Queue so that the
         per-commit append is O(1) (a list append was quadratic over a run) *)
  mutable n_retained_siread : int;
      (* suspended entries still holding SIREAD locks; the rest are plain
         committed records awaiting overlap cleanup (kept incrementally so
         per-commit budget checks stay O(1)) *)
  mutable n_retained_record : int;
  mutable n_siread_entries : int; (* live SIREAD lock-table entries *)
  mutable n_promotions : int; (* row->page SIREAD promotions performed *)
  mutable n_summarized : int; (* committed txns folded into [summary] *)
  snap_order : txn Queue.t;
      (* txns in snapshot-assignment order (snapshots are handed out
         monotonically), drained lazily: the front active entry is the
         oldest-active-snapshot watermark, so cleanup no longer scans the
         whole active table per commit *)
  summary : (string, summary) Hashtbl.t;
  summary_expiry : (int * string) Queue.t;
      (* (commit_ts, resource) records in nondecreasing ts order; drained
         against the watermark to expire summary entries *)
  mutable obs : Obs.t;
      (* observability sink (events + metrics); Obs.disabled costs one
         branch per hook. Attach via Db.set_obs so the lock manager and WAL
         share it. *)
  page_stamps : (string * int, int * int) Hashtbl.t;
      (* (table, page) -> (last commit ts, last writer id); page-level FCW *)
  mutable history : committed_record list; (* newest first *)
  stats : stats;
  (* Wasted-work ledger (sim-time seconds; always on — three float adds per
     txn lifecycle). At any instant
       work_ledger + sum(start_i over active txns) = work_committed + work_wasted
     because begin subtracts the start time, and outcome adds the outcome
     time and banks the span on one side. Db.work_conserved checks the
     invariant against an independent scan of the active table. *)
  mutable work_committed : float; (* begin->commit spans of committed txns *)
  mutable work_wasted : float; (* begin->abort spans, any abort reason *)
  mutable work_ledger : float;
  mutable on_touch : (int -> bool -> string -> unit) option;
      (* DPOR footprint hook: [f id is_write resource] on every shared-state
         access not already visible through the lock manager (version-chain
         reads, page stamps, doom flags, commit/rollback effects). [None]
         costs one branch per site. *)
}

and stats = {
  mutable commits : int;
  mutable aborts_deadlock : int;
  mutable aborts_conflict : int;
  mutable aborts_unsafe : int;
  mutable aborts_user : int;
      (* application-requested rollbacks; kept apart from error aborts so
         driver-level "completed work" accounting and Db-level counters
         agree (User_abort used to be double-booked under aborts_other) *)
  mutable aborts_other : int;
}

let new_stats () =
  {
    commits = 0;
    aborts_deadlock = 0;
    aborts_conflict = 0;
    aborts_unsafe = 0;
    aborts_user = 0;
    aborts_other = 0;
  }

let count_abort stats = function
  | Deadlock -> stats.aborts_deadlock <- stats.aborts_deadlock + 1
  | Update_conflict -> stats.aborts_conflict <- stats.aborts_conflict + 1
  | Unsafe -> stats.aborts_unsafe <- stats.aborts_unsafe + 1
  | User_abort -> stats.aborts_user <- stats.aborts_user + 1
  | Duplicate_key | Internal_error _ -> stats.aborts_other <- stats.aborts_other + 1

(* A transaction counts as committed for conflict purposes from the moment
   its commit-time flag check passed (§3.2: "after the flags have been
   checked during commit, a transaction can no longer abort due to the
   conflict flags"). *)
let has_committed t = match t.state with Committing | Committed -> true | Active | Aborted -> false

(* Commit time for precise-mode comparisons: a Committing transaction's
   timestamp is either not assigned yet or assigned but not yet published
   (allocated before the commit flush since PR 6); in both cases its writes
   are not installed, so it must keep comparing as +infinity until the
   transition to Committed. *)
let commit_time t =
  match (t.state, t.commit_ts) with
  | Committing, _ -> infinity
  | _, Some ts -> float_of_int ts
  | _, None -> infinity

(* Commit time of a conflict reference, seen from [self] (§3.6). A
   self-reference stands for "several neighbours" and must err conservative:
   as an out-reference it compares as "committed first" (-inf), as an
   in-reference as "committed last" (+inf); callers pick the direction. *)
let ref_commit_time ~if_self = function
  | No_conflict -> nan
  | Self_conflict -> if_self
  | Conflict_with t -> commit_time t

let ref_is_set = function No_conflict -> false | Self_conflict | Conflict_with _ -> true

(* {1 Lock resource encodings} *)

let row_resource table key = "r/" ^ table ^ "/" ^ key

let gap_resource table key = "g/" ^ table ^ "/" ^ key

let gap_supremum table = "g/" ^ table ^ "/\xff\xff(sup)"

let page_resource table page = Printf.sprintf "p/%s/%d" table page

(* Per-transaction doom flag, as a resource name for the DPOR footprint:
   Conflict.claim_victim writes it, every check_doom reads its own. The "x/"
   prefix is disjoint from the row/gap/page encodings above. *)
let doom_resource id = "x/" ^ string_of_int id

(* {1 DPOR footprint hook}

   [touch t resource] records that the operation currently executing on
   behalf of [t] read shared state named [resource] outside the lock manager
   (which reports its own acquisitions); [touch_w] records a write. No-ops
   (one branch) unless an explorer installed a hook via Db.set_on_touch. *)

let touch t resource =
  match t.db.on_touch with Some f -> f t.id false resource | None -> ()

let touch_w t resource =
  match t.db.on_touch with Some f -> f t.id true resource | None -> ()

let touch_doom_read t =
  match t.db.on_touch with Some f -> f t.id false (doom_resource t.id) | None -> ()

(* {1 CPU and lock-manager cost accounting} *)

let charge_cpu db cost = if cost > 0.0 then Resource.consume db.cpu cost

(* One lock-manager interaction: optionally serialised through the global
   kernel mutex (§4.4), charging its CPU inside the critical section. *)
let with_lock_mutex db f =
  match db.lock_mutex with
  | Some m -> Resource.use m db.config.Config.cost.Config.c_lock f
  | None ->
      charge_cpu db db.config.Config.cost.Config.c_lock;
      f ()

(* Probabilistic buffer-cache model: each of [n] row touches misses with
   probability [read_miss] and pays a disk read (§6.4.1's I/O-bound
   configurations). Inactive when a real buffer pool is configured. *)
let charge_row_io db n =
  let p = db.config.Config.read_miss in
  if p > 0.0 && db.cache = None then
    for _ = 1 to n do
      if Random.State.float db.io_rng 1.0 < p then
        Resource.consume db.disk db.config.Config.miss_latency
    done

(* Real buffer pool: run every page of an access footprint through the LRU
   cache (descent path clean, leaves optionally dirty). *)
let touch_pages ?(dirty = false) db table_name (access : Btree.access) =
  match db.cache with
  | None -> ()
  | Some c ->
      List.iter (fun p -> Bufcache.touch c ~table:table_name ~page:p) access.Btree.path;
      List.iter
        (fun p -> Bufcache.touch ~dirty c ~table:table_name ~page:p)
        (access.Btree.leaves @ access.Btree.modified)

let table_exn db name =
  match Hashtbl.find_opt db.tables name with
  | Some t -> t
  | None -> raise (Abort (Internal_error ("no such table: " ^ name)))

(* Read view: latest commit timestamp at assignment time. Lazy (§4.5): the
   caller must only invoke this *after* acquiring any lock needed by the
   transaction's first statement. *)
let ensure_snapshot t =
  match t.snapshot with
  | Some s -> s
  | None ->
      (* Footprint: mark the turn that pins this transaction's read view.
         The explorer rewrites the marker into per-resource visibility
         reads ("c/<resource>" for the transaction's whole footprint), so
         commits publishing anything this transaction observes are ordered
         against the pin, not just against the later read turns. *)
      touch t "clock";
      let s = t.db.last_commit_ts in
      t.snapshot <- Some s;
      Queue.add t t.db.snap_order;
      s

let snapshot_exn t =
  match t.snapshot with Some s -> s | None -> ensure_snapshot t

(* Oldest read view among active transactions — the watermark driving
   suspended-transaction cleanup (§3.3), summary expiry and version GC.
   Snapshots are assigned in nondecreasing order, so [snap_order] front
   entries whose transaction has finished are dropped lazily and the first
   live entry is the minimum; each transaction is popped exactly once, so the
   amortized cost is O(1) (the previous implementation folded over the whole
   active table on every commit). Transactions that have not chosen a
   snapshot yet will see only the present or later, so they do not constrain
   cleanup. *)
let min_active_snapshot db =
  let rec front () =
    match Queue.peek_opt db.snap_order with
    | Some t when not (Hashtbl.mem db.active t.id) ->
        ignore (Queue.pop db.snap_order);
        front ()
    | Some t -> ( match t.snapshot with Some s -> s | None -> max_int)
    | None -> max_int
  in
  front ()

let find_txn db id = Hashtbl.find_opt db.txn_by_id id

(* {1 Commit-timestamp allocation}

   Split allocate/publish discipline (PR 6): a writing transaction draws its
   timestamp from [next_commit_ts] *before* the commit flush so the WAL's
   Commit record can carry it (allocation and the append happen in one
   atomic simulated step, which keeps Commit records in ts order — the
   invariant recovery's prefix oracle relies on). [last_commit_ts] — the
   snapshot horizon — advances only when every earlier timestamp has been
   published, so a snapshot can never see ts k+1 while k is still flushing.
   A transaction that dies between allocation and publication skips its
   timestamp via [publish_commit_ts] too (the hole must not wedge the
   horizon). *)

let alloc_commit_ts db =
  db.next_commit_ts <- db.next_commit_ts + 1;
  db.next_commit_ts

let publish_commit_ts db ts =
  Hashtbl.replace db.published ts ();
  let continue = ref true in
  while !continue do
    let next = db.last_commit_ts + 1 in
    if Hashtbl.mem db.published next then begin
      Hashtbl.remove db.published next;
      db.last_commit_ts <- next
    end
    else continue := false
  done

(* {1 Bounded-memory mode (Config.memory_budget)} *)

(* Lock-table owner id under which summarized committed transactions' SIREAD
   entries are pooled (PostgreSQL's OldCommittedSxact, Ports & Grittner
   §6.2). Real transaction ids start at 1; version creator 0 means
   bulk-loaded. *)
let summary_owner = -1

let bounded db = db.config.Config.memory_budget <> None

let find_summary db resource = Hashtbl.find_opt db.summary resource

(* Fold one summarized transaction's contribution for [resource]: flags OR,
   commit timestamp max (both directions conservative). Every update also
   appends an expiry record so the entry dies once the watermark passes. *)
let summary_add db resource ~commit_ts ~in_conflict ~out_conflict =
  (match Hashtbl.find_opt db.summary resource with
  | Some s ->
      if commit_ts > s.sm_commit_ts then s.sm_commit_ts <- commit_ts;
      s.sm_in <- s.sm_in || in_conflict;
      s.sm_out <- s.sm_out || out_conflict
  | None ->
      Hashtbl.replace db.summary resource
        { sm_commit_ts = commit_ts; sm_in = in_conflict; sm_out = out_conflict });
  Queue.add (commit_ts, resource) db.summary_expiry

(* Known read-only: declared so at begin, or committed without writes. *)
let known_read_only t = t.declared_ro || (has_committed t && t.write_order = [])
