(** Database handle: tables, transactions, statistics and maintenance.

    A database lives inside a {!Sim.t} simulation. All transactional work
    must happen in simulator processes ({!Sim.spawn}); creating tables and
    bulk-loading may happen outside. *)

type t = Internal.db

(** Create a database on a simulated machine. The {!Config.t} selects the
    substrate profile (row- vs page-granularity, SSI variant, deadlock
    detection, CPU/disk/WAL models); defaults to {!Config.test}. *)
val create : ?config:Config.t -> Sim.t -> t

(** Attach an observability sink ({!Obs.t}): structured engine events
    (txn/lock/WAL/conflict/GC), metrics, and — when the sink has provenance
    on — abort certificates. Propagates to the lock manager, the WAL and
    the simulated resources (CPU, disk, kernel mutex) so their events land
    in the same trace. The default sink is {!Obs.disabled}, whose hooks
    cost a single branch. *)
val set_obs : t -> Obs.t -> unit

(** Install (or remove, with [None]) the DPOR footprint hook:
    [f id is_write resource] fires on every shared-state access an operation
    performs — lock-manager acquisitions (via {!Lockmgr.set_on_touch}),
    version-chain reads, page-stamp reads/writes, doom flags, and
    commit/rollback effects on held resources. Disabled by default (one
    branch per site). Used by the schedule explorer to observe the
    dependency relation between operations. *)
val set_on_touch : t -> (int -> bool -> string -> unit) option -> unit

val obs : t -> Obs.t

val sim : t -> Sim.t

val config : t -> Config.t

(** Create a new empty table. Raises [Invalid_argument] on duplicates. *)
val create_table : t -> string -> Mvstore.t

val table : t -> string -> Mvstore.t option

(** Like {!table} but raises {!Types.Abort} with [Internal_error]. *)
val table_exn : t -> string -> Mvstore.t

(** Start a transaction at the given isolation level. [read_only]
    transactions reject writes and enable the read-only snapshot refinement
    ([Config.ro_refinement]). Prefer {!run}, which also handles commit and
    rollback. *)
val begin_txn : ?read_only:bool -> t -> Types.isolation -> Internal.txn

(** [run t isolation body] executes [body] in a fresh transaction and
    commits it; on {!Types.Abort} (or at commit time) the transaction is
    rolled back and the reason returned as [Error]. Other exceptions roll
    back and re-raise. Must be called from a simulator process. *)
val run :
  ?read_only:bool -> t -> Types.isolation -> (Internal.txn -> 'a) -> ('a, Types.abort_reason) result

(** Like {!run} but retries deadlock/conflict/unsafe aborts (as the paper's
    workload drivers do), up to [max_attempts]. [User_abort] is not
    retried. *)
val run_retry :
  ?max_attempts:int ->
  ?read_only:bool ->
  t ->
  Types.isolation ->
  (Internal.txn -> 'a) ->
  ('a, Types.abort_reason) result

(** Bulk-load committed rows outside any transaction (initial population).
    All rows receive one fresh commit timestamp. *)
val load : t -> string -> (string * string) list -> unit

(** {1 Introspection} *)

(** Commit/abort counters since creation (or {!reset_stats}). *)
val stats : t -> Internal.stats

(** Committed-transaction log, oldest first (only populated when
    [config.record_history] is set); feed it to {!Mvsg.build}. *)
val history : t -> Types.committed_record list

val clear_history : t -> unit

val last_commit_ts : t -> int

val active_count : t -> int

(** Committed SSI transactions still suspended with their SIREAD locks
    (§3.3). Same value as {!retained_siread_count}. *)
val suspended_count : t -> int

(** Retained committed transactions that still hold SIREAD locks — the
    memory the paper's §3.3 retention rule actually pins. *)
val retained_siread_count : t -> int

(** Retained committed transactions holding no SIREAD locks: plain records
    kept only until no active transaction overlaps them (precise-mode
    commit-time comparisons may still reference them). *)
val retained_record_count : t -> int

(** All committed transaction records retained for conflict detection
    (§4.8): cleaned up once no active transaction overlaps them. Equals
    [retained_siread_count + retained_record_count]. *)
val retained_count : t -> int

(** {1 Bounded-memory mode introspection} ([Config.memory_budget]) *)

(** Live SIREAD lock-table entries (all owners, including the summarized
    pool). *)
val siread_entry_count : t -> int

(** Committed transactions folded into the conservative summary table. *)
val summarized_count : t -> int

(** Row→page SIREAD granularity promotions performed. *)
val promotion_count : t -> int

(** Live entries in the per-resource summary table. *)
val summary_size : t -> int

val lock_table_size : t -> int

val locks : t -> Lockmgr.t

val cpu : t -> Resource.t

val wal : t -> Wal.t

(** The LRU buffer pool, when [config.buffer_pool] is set. *)
val cache : t -> Bufcache.t option

(** {1 Durability & recovery} *)

(** Canonical textual image of every table's committed store (tables in
    name order, keys in index order, chains oldest-first), optionally
    truncated to versions with [commit_ts <= max_ts]. Byte-equality of
    dumps is the recovery oracle's store-equivalence check. *)
val dump_store : ?max_ts:int -> t -> string

type recovery_report = {
  r_replayed : int;  (** log records replayed from the durable prefix *)
  r_committed : int;  (** committed transactions applied (incl. bulk loads) *)
  r_in_doubt : int;  (** in-doubt transactions rolled back (no Commit) *)
  r_aborted : int;  (** transactions dropped due to a logged Abort *)
  r_torn_bytes : int;  (** bytes of torn trailing frame discarded *)
  r_watermark : int;  (** retention watermark from the last checkpoint *)
  r_last_commit_ts : int;  (** restored snapshot horizon *)
}

(** [recover sim ~log] replays the durable log prefix (as produced by
    [Wal.durable_log]) into a fresh database on [sim]: committed
    transactions are reinstalled at their original timestamps, in-doubt and
    logged-abort transactions are dropped, the commit-ts allocator and
    snapshot horizon are restored, and every recovered commit above the
    checkpoint watermark leaves conservative summary-table entries (SIREAD
    locks are volatile, so post-recovery SSI errs toward aborting).
    Returns [Error] on a corrupt (not merely truncated) log. *)
val recover :
  ?config:Config.t ->
  ?obs:Obs.t ->
  Sim.t ->
  log:string ->
  (t * recovery_report, string) result

(** {1 Maintenance} *)

(** Pre-fault loaded pages into the buffer pool (no simulated I/O) and reset
    its statistics; no-op without a pool. Call after bulk loading. *)
val prewarm_cache : t -> unit

(** Reclaim versions that no active snapshot can read; returns the number
    of index entries removed outright. *)
val gc : t -> int

(** Graphviz DOT snapshot of the live dependency graph: every retained
    transaction record as a node, recorded rw-antidependencies (provenance
    sinks only) and squashed self-conflict flags as edges. Deterministic
    (nodes sorted by id, edges deduplicated). *)
val dot_snapshot : t -> string

(** Zero the counters above (plus the lock manager's, the WAL's and the CPU
    resource's) and the wasted-work sums. The work ledger is rebased over
    the transactions currently in flight, so {!work_conserved} keeps
    holding across a mid-run reset. *)
val reset_stats : t -> unit

(** {1 Wasted-work accounting}

    Sim-time spent inside transactions, split by outcome (after "A Critique
    of Snapshot Isolation"-style wasted-work arguments): a transaction's
    begin→outcome span is banked as committed or wasted work at the moment
    it resolves. Application rollbacks ([User_abort]) count as wasted at
    this level — the engine ran them to no committed effect; the driver
    separates them in its own accounting. Always on: three float adds per
    transaction lifecycle. *)

type work_profile = {
  wp_committed : float;  (** spans of committed transactions, sim seconds *)
  wp_wasted : float;  (** spans of aborted transactions, any reason *)
  wp_in_flight : float;  (** partial spans of still-active transactions *)
}

val work_profile : t -> work_profile

(** Conservation check: the incrementally-maintained ledger equals an
    independent scan of the active table, i.e. total elapsed transaction
    time = committed + wasted + in-flight. [eps] is a relative tolerance
    (default [1e-6]) for float rounding on long runs. *)
val work_conserved : ?eps:float -> t -> bool
