open Types

type t = Internal.db

let create ?(config = Config.test ()) sim =
  let open Internal in
  let disk = Resource.create sim ~name:"disk" ~capacity:(max 1 config.Config.disk_arms) in
  let cache =
    Option.map
      (fun capacity ->
        Bufcache.create sim ~capacity ~disk ~read_latency:config.Config.miss_latency
          ~write_latency:config.Config.miss_latency ())
      config.Config.buffer_pool
  in
  {
    sim;
    config;
    locks = Lockmgr.create ~detection:config.Config.detection sim;
    wal = Wal.create sim ~mode:config.Config.wal_mode;
    cpu = Resource.create sim ~name:"cpu" ~capacity:config.Config.n_cpus;
    disk;
    cache;
    io_rng = Random.State.make [| 0xD15C |];
    lock_mutex =
      (if config.Config.lock_mutex then
         Some (Resource.create sim ~name:"lock-mutex" ~capacity:1)
       else None);
    tables = Hashtbl.create 16;
    last_commit_ts = 0;
    next_txn_id = 0;
    txn_by_id = Hashtbl.create 1024;
    active = Hashtbl.create 256;
    suspended = Queue.create ();
    n_retained_siread = 0;
    n_retained_record = 0;
    n_siread_entries = 0;
    n_promotions = 0;
    n_summarized = 0;
    snap_order = Queue.create ();
    summary = Hashtbl.create 64;
    summary_expiry = Queue.create ();
    obs = Obs.disabled;
    page_stamps = Hashtbl.create 4096;
    history = [];
    stats = Internal.new_stats ();
  }

(* Attach an observability sink; shared with the lock manager, WAL and the
   simulated resources (CPU k-server, disk, kernel mutex) so lock-wait,
   flush and utilization/queue-depth samples land in the same trace. *)
let set_obs (t : t) obs =
  t.Internal.obs <- obs;
  Lockmgr.set_obs t.Internal.locks obs;
  Wal.set_obs t.Internal.wal obs;
  Resource.set_obs t.Internal.cpu obs;
  Resource.set_obs t.Internal.disk obs;
  match t.Internal.lock_mutex with Some m -> Resource.set_obs m obs | None -> ()

let obs (t : t) = t.Internal.obs

let sim (t : t) = t.Internal.sim

let config (t : t) = t.Internal.config

let create_table (t : t) name =
  if Hashtbl.mem t.Internal.tables name then invalid_arg ("Db.create_table: duplicate " ^ name);
  let table = Mvstore.create ~fanout:t.Internal.config.Config.btree_fanout name in
  Hashtbl.replace t.Internal.tables name table;
  table

let table (t : t) name = Hashtbl.find_opt t.Internal.tables name

let table_exn (t : t) name = Internal.table_exn t name

let begin_txn ?(read_only = false) (t : t) isolation =
  let open Internal in
  t.next_txn_id <- t.next_txn_id + 1;
  let txn =
    {
      id = t.next_txn_id;
      isolation;
      declared_ro = read_only;
      db = t;
      start_time = Sim.now t.sim;
      state = Active;
      snapshot = None;
      commit_ts = None;
      doomed = None;
      in_conflict = No_conflict;
      out_conflict = No_conflict;
      writes = Hashtbl.create 8;
      write_order = [];
      siread_count = 0;
      touched_pages = [];
      reads_log = [];
      in_edges = [];
      out_edges = [];
      page_reads = Hashtbl.create 4;
    }
  in
  Hashtbl.replace t.txn_by_id txn.id txn;
  Hashtbl.replace t.active txn.id txn;
  if Obs.tracing t.obs then begin
    Obs.emit t.obs ~ts:(Sim.now t.sim)
      (Obs.Txn_begin
         { txn = txn.id; iso = Types.isolation_to_string isolation; ro = read_only });
    Obs.emit t.obs ~ts:(Sim.now t.sim) (Obs.Span_b { tid = txn.id; name = "txn"; cat = "txn" })
  end;
  txn

(* Run [body] in a fresh transaction; commit on success, roll back on any
   exception. Abort reasons are returned as [Error]. *)
let run ?read_only (t : t) isolation body =
  let txn = begin_txn ?read_only t isolation in
  match body txn with
  | v ->
      (try
         Exec.do_commit txn;
         Ok v
       with Abort r -> Error r)
  | exception Abort r ->
      Exec.do_rollback txn r;
      Error r
  | exception e ->
      Exec.do_rollback txn User_abort;
      raise e

(* Like {!run} but retries aborted transactions, as the paper's workload
   drivers do; counts each attempt's outcome through the stats already, so
   callers get the final result. *)
let run_retry ?(max_attempts = 100) ?read_only (t : t) isolation body =
  let rec go attempt last =
    if attempt > max_attempts then Error last
    else
      match run ?read_only t isolation body with
      | Ok v -> Ok v
      | Error User_abort -> Error User_abort (* application rollbacks don't retry *)
      | Error r -> go (attempt + 1) r
  in
  go 1 Deadlock

let stats (t : t) = t.Internal.stats

let history (t : t) = List.rev t.Internal.history

let clear_history (t : t) = t.Internal.history <- []

let last_commit_ts (t : t) = t.Internal.last_commit_ts

let active_count (t : t) = Hashtbl.length t.Internal.active

(* Committed SSI transactions still holding SIREAD locks. Kept as an
   incremental counter (the Queue.fold this replaced was O(retained) per
   probe — quadratic over a pinned-snapshot run); the class of a suspended
   txn is stable, since only holders that already have a SIREAD can gain
   more (page-split propagation), so the commit-time classification holds
   until cleanup. *)
let suspended_count (t : t) = t.Internal.n_retained_siread

let retained_siread_count (t : t) = t.Internal.n_retained_siread

let retained_record_count (t : t) = t.Internal.n_retained_record

let retained_count (t : t) = Queue.length t.Internal.suspended

let siread_entry_count (t : t) = t.Internal.n_siread_entries
let summarized_count (t : t) = t.Internal.n_summarized

let promotion_count (t : t) = t.Internal.n_promotions

let summary_size (t : t) = Hashtbl.length t.Internal.summary

let lock_table_size (t : t) = Lockmgr.lock_table_size t.Internal.locks

let locks (t : t) = t.Internal.locks

let cpu (t : t) = t.Internal.cpu

let wal (t : t) = t.Internal.wal

let cache (t : t) = t.Internal.cache

(* Bulk-load committed rows outside any transaction (initial population of
   benchmark tables). All rows get one fresh commit timestamp. *)
let load (t : t) table_name rows =
  let open Internal in
  let table = Internal.table_exn t table_name in
  t.last_commit_ts <- t.last_commit_ts + 1;
  let ts = t.last_commit_ts in
  List.iter
    (fun (key, value) ->
      let chain, _ = Mvstore.ensure_chain table key in
      Mvstore.install chain ~value:(Some value) ~commit_ts:ts ~creator:0)
    rows

(* Fill the buffer pool with as many pages as fit, newest tables last (so
   the initial load does not count as misses). No-op without a pool. *)
let prewarm_cache (t : t) =
  match t.Internal.cache with
  | None -> ()
  | Some cache ->
      Hashtbl.iter
        (fun name table ->
          Bufcache.prewarm cache
            (List.map (fun p -> (name, p)) (Btree.all_pages (Mvstore.index table))))
        t.Internal.tables;
      Bufcache.reset_stats cache

(* Reclaim versions no active snapshot can read. *)
let gc (t : t) =
  let min_snap =
    min (Internal.min_active_snapshot t) t.Internal.last_commit_ts
  in
  Hashtbl.fold (fun _ tbl acc -> acc + Mvstore.gc tbl ~min_snapshot:min_snap) t.Internal.tables 0

(* Graphviz snapshot of the live dependency graph (all retained transaction
   records, recorded rw-antidependencies when provenance is on, squashed
   self-conflict flags). Independent of any abort — useful for ad-hoc
   inspection and the `report` subcommand's DOT output. *)
let dot_snapshot (t : t) = Provenance.dot_snapshot t

let reset_stats (t : t) =
  let s = t.Internal.stats in
  s.Internal.commits <- 0;
  s.Internal.aborts_deadlock <- 0;
  s.Internal.aborts_conflict <- 0;
  s.Internal.aborts_unsafe <- 0;
  s.Internal.aborts_user <- 0;
  s.Internal.aborts_other <- 0;
  Lockmgr.reset_stats t.Internal.locks;
  Wal.reset_stats t.Internal.wal;
  Resource.reset_stats t.Internal.cpu;
  match t.Internal.lock_mutex with Some m -> Resource.reset_stats m | None -> ()
