open Types

type t = Internal.db

let create ?(config = Config.test ()) sim =
  let open Internal in
  let disk = Resource.create sim ~name:"disk" ~capacity:(max 1 config.Config.disk_arms) in
  let cache =
    Option.map
      (fun capacity ->
        Bufcache.create sim ~capacity ~disk ~read_latency:config.Config.miss_latency
          ~write_latency:config.Config.miss_latency ())
      config.Config.buffer_pool
  in
  {
    sim;
    config;
    locks = Lockmgr.create ~detection:config.Config.detection sim;
    wal = Wal.create sim ~mode:config.Config.wal_mode;
    cpu = Resource.create sim ~name:"cpu" ~capacity:config.Config.n_cpus;
    disk;
    cache;
    io_rng = Random.State.make [| 0xD15C |];
    lock_mutex =
      (if config.Config.lock_mutex then
         Some (Resource.create sim ~name:"lock-mutex" ~capacity:1)
       else None);
    tables = Hashtbl.create 16;
    last_commit_ts = 0;
    next_commit_ts = 0;
    published = Hashtbl.create 16;
    next_txn_id = 0;
    txn_by_id = Hashtbl.create 1024;
    active = Hashtbl.create 256;
    suspended = Queue.create ();
    n_retained_siread = 0;
    n_retained_record = 0;
    n_siread_entries = 0;
    n_promotions = 0;
    n_summarized = 0;
    snap_order = Queue.create ();
    summary = Hashtbl.create 64;
    summary_expiry = Queue.create ();
    obs = Obs.disabled;
    page_stamps = Hashtbl.create 4096;
    history = [];
    stats = Internal.new_stats ();
    on_touch = None;
    work_committed = 0.0;
    work_wasted = 0.0;
    work_ledger = 0.0;
  }

(* Attach an observability sink; shared with the lock manager, WAL and the
   simulated resources (CPU k-server, disk, kernel mutex) so lock-wait,
   flush and utilization/queue-depth samples land in the same trace. *)
(* Install (or remove) the DPOR footprint hook on the engine and its lock
   manager in one step; the explorer is the only caller. *)
let set_on_touch (t : t) f =
  t.Internal.on_touch <- f;
  Lockmgr.set_on_touch t.Internal.locks f

let set_obs (t : t) obs =
  t.Internal.obs <- obs;
  Lockmgr.set_obs t.Internal.locks obs;
  Wal.set_obs t.Internal.wal obs;
  Resource.set_obs t.Internal.cpu obs;
  Resource.set_obs t.Internal.disk obs;
  match t.Internal.lock_mutex with Some m -> Resource.set_obs m obs | None -> ()

let obs (t : t) = t.Internal.obs

let sim (t : t) = t.Internal.sim

let config (t : t) = t.Internal.config

let create_table (t : t) name =
  if Hashtbl.mem t.Internal.tables name then invalid_arg ("Db.create_table: duplicate " ^ name);
  let table = Mvstore.create ~fanout:t.Internal.config.Config.btree_fanout name in
  Hashtbl.replace t.Internal.tables name table;
  table

let table (t : t) name = Hashtbl.find_opt t.Internal.tables name

let table_exn (t : t) name = Internal.table_exn t name

let begin_txn ?(read_only = false) (t : t) isolation =
  let open Internal in
  t.next_txn_id <- t.next_txn_id + 1;
  let txn =
    {
      id = t.next_txn_id;
      isolation;
      declared_ro = read_only;
      db = t;
      start_time = Sim.now t.sim;
      state = Active;
      snapshot = None;
      commit_ts = None;
      doomed = None;
      in_conflict = No_conflict;
      out_conflict = No_conflict;
      writes = Hashtbl.create 8;
      write_order = [];
      siread_count = 0;
      logged = false;
      touched_pages = [];
      reads_log = [];
      in_edges = [];
      out_edges = [];
      page_reads = Hashtbl.create 4;
    }
  in
  Hashtbl.replace t.txn_by_id txn.id txn;
  Hashtbl.replace t.active txn.id txn;
  t.work_ledger <- t.work_ledger -. txn.start_time;
  if Obs.tracing t.obs then begin
    Obs.emit t.obs ~ts:(Sim.now t.sim)
      (Obs.Txn_begin
         { txn = txn.id; iso = Types.isolation_to_string isolation; ro = read_only });
    Obs.emit t.obs ~ts:(Sim.now t.sim) (Obs.Span_b { tid = txn.id; name = "txn"; cat = "txn" })
  end;
  txn

(* Run [body] in a fresh transaction; commit on success, roll back on any
   exception. Abort reasons are returned as [Error]. *)
let run ?read_only (t : t) isolation body =
  let txn = begin_txn ?read_only t isolation in
  match body txn with
  | v ->
      (try
         Exec.do_commit txn;
         Ok v
       with Abort r -> Error r)
  | exception Abort r ->
      Exec.do_rollback txn r;
      Error r
  | exception e ->
      Exec.do_rollback txn User_abort;
      raise e

(* Like {!run} but retries aborted transactions, as the paper's workload
   drivers do; counts each attempt's outcome through the stats already, so
   callers get the final result. *)
let run_retry ?(max_attempts = 100) ?read_only (t : t) isolation body =
  let rec go attempt last =
    if attempt > max_attempts then Error last
    else
      match run ?read_only t isolation body with
      | Ok v -> Ok v
      | Error User_abort -> Error User_abort (* application rollbacks don't retry *)
      | Error r -> go (attempt + 1) r
  in
  go 1 Deadlock

let stats (t : t) = t.Internal.stats

let history (t : t) = List.rev t.Internal.history

let clear_history (t : t) = t.Internal.history <- []

let last_commit_ts (t : t) = t.Internal.last_commit_ts

let active_count (t : t) = Hashtbl.length t.Internal.active

(* Committed SSI transactions still holding SIREAD locks. Kept as an
   incremental counter (the Queue.fold this replaced was O(retained) per
   probe — quadratic over a pinned-snapshot run); the class of a suspended
   txn is stable, since only holders that already have a SIREAD can gain
   more (page-split propagation), so the commit-time classification holds
   until cleanup. *)
let suspended_count (t : t) = t.Internal.n_retained_siread

let retained_siread_count (t : t) = t.Internal.n_retained_siread

let retained_record_count (t : t) = t.Internal.n_retained_record

let retained_count (t : t) = Queue.length t.Internal.suspended

let siread_entry_count (t : t) = t.Internal.n_siread_entries
let summarized_count (t : t) = t.Internal.n_summarized

let promotion_count (t : t) = t.Internal.n_promotions

let summary_size (t : t) = Hashtbl.length t.Internal.summary

let lock_table_size (t : t) = Lockmgr.lock_table_size t.Internal.locks

let locks (t : t) = t.Internal.locks

let cpu (t : t) = t.Internal.cpu

let wal (t : t) = t.Internal.wal

let cache (t : t) = t.Internal.cache

(* Bulk-load committed rows outside any transaction (initial population of
   benchmark tables). All rows get one fresh commit timestamp. The load is
   logged under the reserved bulk-load id 0 and hardened immediately
   (without simulated delay — load runs outside any simulated process), so
   a recovered database starts from the same base image. *)
let load (t : t) table_name rows =
  let open Internal in
  let table = Internal.table_exn t table_name in
  let ts = Internal.alloc_commit_ts t in
  Wal.append t.wal (Wal.Begin { txn = 0 });
  List.iter
    (fun (key, value) -> Wal.append t.wal (Wal.Write { txn = 0; table = table_name; key; value }))
    rows;
  Wal.append t.wal (Wal.Commit { txn = 0; ts });
  Wal.harden t.wal;
  List.iter
    (fun (key, value) ->
      let chain, _ = Mvstore.ensure_chain table key in
      Mvstore.install chain ~value:(Some value) ~commit_ts:ts ~creator:0)
    rows;
  Internal.publish_commit_ts t ts

(* Canonical textual image of every table's committed store (tables in name
   order, keys in index order, chains oldest-first), optionally truncated to
   versions at or below [max_ts]. Byte-equality of dumps is the recovery
   oracle's store-equivalence check: recovered db ≡ reference db filtered to
   the recovered snapshot horizon. *)
let dump_store ?max_ts (t : t) =
  let buf = Buffer.create 1024 in
  let names = Hashtbl.fold (fun name _ acc -> name :: acc) t.Internal.tables [] in
  List.iter
    (fun name -> Mvstore.dump ?max_ts (Hashtbl.find t.Internal.tables name) buf)
    (List.sort compare names);
  Buffer.contents buf

type recovery_report = {
  r_replayed : int;
  r_committed : int;
  r_in_doubt : int;
  r_aborted : int;
  r_torn_bytes : int;
  r_watermark : int;
  r_last_commit_ts : int;
}

(* Replay the durable log prefix into a fresh database.

   The engine appends a transaction's redo records and its Commit record in
   one atomic simulated step right after allocating the commit timestamp,
   so Commit records appear in timestamp order and the durable image is
   always a byte-prefix of the crash-free log. Replaying every durable
   Commit therefore reconstructs exactly the committed prefix: the set of
   commits with ts <= the restored horizon, with no in-doubt write visible.

   In-doubt transactions (Begin without a durable Commit) are dropped;
   transactions with a logged Abort are dropped even if their Commit record
   made it to disk (the Committing-state rollback path). SIREAD locks are
   volatile, so serializability state cannot be restored exactly; instead
   every recovered commit above the checkpoint watermark leaves
   conservative summary-table entries (PR 5 machinery, Ports & Grittner's
   OldCommittedSxact) with both conflict flags set, and readers that meet a
   recovered version whose creator record is gone already fall back to the
   conservative unknown-writer self-edge. False positives may rise after
   recovery; no serializability violation is admitted. *)
let recover ?(config = Config.test ()) ?obs sim ~log =
  match Wal.decode log with
  | Error e -> Error e
  | Ok (records, torn_bytes) ->
      let db = create ~config sim in
      (match obs with Some o -> set_obs db o | None -> ());
      let open Internal in
      (* A transaction with a logged Abort must not be applied even when its
         Commit record is durable. Transaction ids are never reused across
         commit attempts (the bulk-load id 0 never aborts), so one pre-pass
         suffices. *)
      let aborted_ids = Hashtbl.create 8 in
      List.iter
        (function Wal.Abort { txn } -> Hashtbl.replace aborted_ids txn () | _ -> ())
        records;
      let buffered = Hashtbl.create 16 in
      let committed = ref 0 and n_aborted = ref 0 in
      let watermark = ref 0 and horizon = ref 0 and max_txn = ref 0 in
      let buffer txn w =
        let prev = Option.value ~default:[] (Hashtbl.find_opt buffered txn) in
        Hashtbl.replace buffered txn (w :: prev)
      in
      let apply txn ts writes =
        (* Last write per key wins, first-touch order — the engine logs one
           record per key already; hand-written logs may not. *)
        let final = Hashtbl.create 8 in
        let order = ref [] in
        List.iter
          (fun (tbl, key, value) ->
            if not (Hashtbl.mem final (tbl, key)) then order := (tbl, key) :: !order;
            Hashtbl.replace final (tbl, key) value)
          writes;
        List.iter
          (fun (tbl, key) ->
            let table =
              match Hashtbl.find_opt db.tables tbl with
              | Some t -> t
              | None -> create_table db tbl
            in
            let chain, access = Mvstore.ensure_chain table key in
            Mvstore.install chain ~value:(Hashtbl.find final (tbl, key)) ~commit_ts:ts
              ~creator:txn;
            if config.Config.granularity = Config.Page then
              List.iter
                (fun p -> Hashtbl.replace db.page_stamps (tbl, p) (ts, txn))
                access.Btree.leaves;
            (* Volatile-SIREAD conservatism: flag the written rows of every
               recovered commit still above the watermark in both directions,
               so post-recovery SSI errs toward aborting. *)
            if txn <> 0 && ts > !watermark then begin
              summary_add db (row_resource tbl key) ~commit_ts:ts ~in_conflict:true
                ~out_conflict:true;
              if config.Config.granularity = Config.Page then
                List.iter
                  (fun p ->
                    summary_add db (page_resource tbl p) ~commit_ts:ts ~in_conflict:true
                      ~out_conflict:true)
                  access.Btree.leaves
            end)
          (List.rev !order)
      in
      List.iter
        (fun r ->
          match r with
          | Wal.Begin { txn } ->
              Hashtbl.replace buffered txn [];
              if txn > !max_txn then max_txn := txn
          | Wal.Write { txn; table; key; value } | Wal.Insert { txn; table; key; value } ->
              buffer txn (table, key, Some value)
          | Wal.Delete { txn; table; key } -> buffer txn (table, key, None)
          | Wal.Abort { txn } ->
              if Hashtbl.mem buffered txn then begin
                incr n_aborted;
                Hashtbl.remove buffered txn
              end
          | Wal.Checkpoint { watermark = w; next_ts } ->
              if w > !watermark then watermark := w;
              if next_ts > !horizon then horizon := next_ts
          | Wal.Commit { txn; ts } ->
              if ts > !horizon then horizon := ts;
              if Hashtbl.mem aborted_ids txn then begin
                incr n_aborted;
                Hashtbl.remove buffered txn
              end
              else begin
                let writes = List.rev (Option.value ~default:[] (Hashtbl.find_opt buffered txn)) in
                Hashtbl.remove buffered txn;
                apply txn ts writes;
                incr committed
              end)
        records;
      db.last_commit_ts <- !horizon;
      db.next_commit_ts <- !horizon;
      if !max_txn > db.next_txn_id then db.next_txn_id <- !max_txn;
      let in_doubt = Hashtbl.length buffered in
      (* Start the recovered log generation with a checkpoint so a later
         crash of the recovered instance knows its base horizon. *)
      Wal.append db.wal (Wal.Checkpoint { watermark = !horizon; next_ts = !horizon });
      Wal.harden db.wal;
      Obs.record_replayed db.obs ~n:(List.length records);
      if Obs.tracing db.obs then
        Obs.emit db.obs ~ts:(Sim.now sim)
          (Obs.Recovery
             { replayed = List.length records; committed = !committed; in_doubt; torn_bytes });
      Ok
        ( db,
          {
            r_replayed = List.length records;
            r_committed = !committed;
            r_in_doubt = in_doubt;
            r_aborted = !n_aborted;
            r_torn_bytes = torn_bytes;
            r_watermark = !watermark;
            r_last_commit_ts = !horizon;
          } )

(* Fill the buffer pool with as many pages as fit, newest tables last (so
   the initial load does not count as misses). No-op without a pool. *)
let prewarm_cache (t : t) =
  match t.Internal.cache with
  | None -> ()
  | Some cache ->
      Hashtbl.iter
        (fun name table ->
          Bufcache.prewarm cache
            (List.map (fun p -> (name, p)) (Btree.all_pages (Mvstore.index table))))
        t.Internal.tables;
      Bufcache.reset_stats cache

(* Reclaim versions no active snapshot can read. *)
let gc (t : t) =
  let min_snap =
    min (Internal.min_active_snapshot t) t.Internal.last_commit_ts
  in
  Hashtbl.fold (fun _ tbl acc -> acc + Mvstore.gc tbl ~min_snapshot:min_snap) t.Internal.tables 0

(* Graphviz snapshot of the live dependency graph (all retained transaction
   records, recorded rw-antidependencies when provenance is on, squashed
   self-conflict flags). Independent of any abort — useful for ad-hoc
   inspection and the `report` subcommand's DOT output. *)
let dot_snapshot (t : t) = Provenance.dot_snapshot t

let reset_stats (t : t) =
  let s = t.Internal.stats in
  s.Internal.commits <- 0;
  s.Internal.aborts_deadlock <- 0;
  s.Internal.aborts_conflict <- 0;
  s.Internal.aborts_unsafe <- 0;
  s.Internal.aborts_user <- 0;
  s.Internal.aborts_other <- 0;
  Lockmgr.reset_stats t.Internal.locks;
  Wal.reset_stats t.Internal.wal;
  Resource.reset_stats t.Internal.cpu;
  (match t.Internal.lock_mutex with Some m -> Resource.reset_stats m | None -> ());
  (* Wasted-work ledger: zero the banked sums and REBASE the ledger so the
     conservation invariant keeps holding for transactions already in
     flight — their spans will be banked against the post-reset epoch. A
     plain zero here would leave the ledger owing the in-flight start
     times and every later conservation check would fail. *)
  t.Internal.work_committed <- 0.0;
  t.Internal.work_wasted <- 0.0;
  t.Internal.work_ledger <-
    Hashtbl.fold
      (fun _ txn acc -> acc -. txn.Internal.start_time)
      t.Internal.active 0.0

(* {1 Wasted-work accounting} *)

type work_profile = { wp_committed : float; wp_wasted : float; wp_in_flight : float }

let work_profile (t : t) =
  let now = Sim.now t.Internal.sim in
  let in_flight =
    Hashtbl.fold
      (fun _ txn acc -> acc +. (now -. txn.Internal.start_time))
      t.Internal.active 0.0
  in
  {
    wp_committed = t.Internal.work_committed;
    wp_wasted = t.Internal.work_wasted;
    wp_in_flight = in_flight;
  }

(* Conservation: the incrementally-maintained ledger must agree with an
   independent scan of the active table. [eps] absorbs float rounding on
   long runs (sums of many ~1e3-magnitude sim times). *)
let work_conserved ?(eps = 1e-6) (t : t) =
  let starts =
    Hashtbl.fold
      (fun _ txn acc -> acc +. txn.Internal.start_time)
      t.Internal.active 0.0
  in
  let lhs = t.Internal.work_ledger +. starts in
  let rhs = t.Internal.work_committed +. t.Internal.work_wasted in
  Float.abs (lhs -. rhs) <= eps *. Float.max 1.0 (Float.max (Float.abs lhs) (Float.abs rhs))
