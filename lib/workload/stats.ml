(* Small statistics helpers for the benchmark harness: means and 95%
   confidence intervals across seeds, as in the paper's plots ("all graphs
   include 95% confidence intervals", §6.1.1). *)

let mean xs =
  match xs with [] -> 0.0 | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean xs in
      let n = float_of_int (List.length xs) in
      let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
      sqrt (ss /. (n -. 1.0))

(* Two-sided Student t critical values at 95% for n-1 degrees of freedom,
   tabulated through n = 30; beyond that the distribution is close enough to
   normal that we use 2.0 (vs the asymptotic 1.960) as a slightly
   conservative fallback. *)
let t95 n =
  match n with
  | 0 | 1 -> 0.0
  | 2 -> 12.706
  | 3 -> 4.303
  | 4 -> 3.182
  | 5 -> 2.776
  | 6 -> 2.571
  | 7 -> 2.447
  | 8 -> 2.365
  | 9 -> 2.306
  | 10 -> 2.262
  | 11 -> 2.228
  | 12 -> 2.201
  | 13 -> 2.179
  | 14 -> 2.160
  | 15 -> 2.145
  | 16 -> 2.131
  | 17 -> 2.120
  | 18 -> 2.110
  | 19 -> 2.101
  | 20 -> 2.093
  | 21 -> 2.086
  | 22 -> 2.080
  | 23 -> 2.074
  | 24 -> 2.069
  | 25 -> 2.064
  | 26 -> 2.060
  | 27 -> 2.056
  | 28 -> 2.052
  | 29 -> 2.048
  | 30 -> 2.045
  | _ -> 2.0

(* Mean and 95% confidence half-width. *)
let ci95 xs =
  let n = List.length xs in
  let m = mean xs in
  if n < 2 then (m, 0.0) else (m, t95 n *. stddev xs /. sqrt (float_of_int n))
