(* Benchmark workload driver, modelled on db_perf (§6.1): MPL client
   processes each run a stream of transactions drawn from a weighted mix,
   with aborted transactions retried, and throughput / abort rates measured
   over a window after a warmup period. *)

open Core

type program = {
  p_name : string;
  p_weight : float;
  p_read_only : bool; (* declared READ ONLY (enables the RO refinement) *)
  (* The body runs inside a transaction; it may raise Types.Abort (e.g. an
     application rollback) and uses the per-client RNG for parameters. *)
  p_body : Random.State.t -> Txn.t -> unit;
}

let program ?(weight = 1.0) ?(read_only = false) name body =
  { p_name = name; p_weight = weight; p_read_only = read_only; p_body = body }

(* Per-program measurement: commits (completed work, including application
   rollbacks), the application-rollback subset, error-abort attempts, and a
   response-time histogram over completed transactions. *)
type program_stats = {
  ps_name : string;
  mutable ps_commits : int;
  mutable ps_user_aborts : int;
  mutable ps_aborts : int;
  ps_latency : Obs.hist;
}

type counters = {
  mutable commits : int;
  mutable user_aborts : int;
  mutable deadlocks : int;
  mutable conflicts : int;
  mutable unsafe : int;
  mutable other_aborts : int;
  mutable response_sum : float;
  by_program : (string, program_stats) Hashtbl.t;
}

type result = {
  mpl : int;
  seed : int;
  elapsed : float;
  commits : int;
  throughput : float; (* commits per simulated second *)
  user_aborts : int; (* application rollbacks among [commits] *)
  deadlocks : int;
  conflicts : int;
  unsafe : int;
  other_aborts : int;
  mean_response : float;
  aborts_per_commit : float;
  per_program : (string * int) list; (* commits by program name *)
  programs : program_stats list; (* full per-program stats, sorted by name *)
  metrics : Obs.metrics; (* engine metrics (zeros unless [obs] was passed) *)
  end_lock_table : int; (* lock-table entries when the window closed *)
  end_retained : int; (* committed transaction records still retained *)
  work_committed : float; (* engine ledger: begin->commit spans, sim s *)
  work_wasted : float; (* begin->abort spans (any reason), sim s *)
  work_in_flight : float; (* partial spans still open at the horizon *)
}

type config = {
  isolation : Types.isolation;
  mpl : int;
  warmup : float;
  duration : float;
  think_time : float;
  seed : int;
  max_retries : int;
}

let default_config =
  {
    isolation = Types.Snapshot;
    mpl = 1;
    warmup = 0.5;
    duration = 3.0;
    think_time = 0.0;
    seed = 1;
    max_retries = 1000;
  }

(* Weighted choice from the mix. *)
let pick mix st =
  let total = List.fold_left (fun acc p -> acc +. p.p_weight) 0.0 mix in
  let x = Random.State.float st total in
  let rec go acc = function
    | [] -> List.hd mix
    | p :: rest -> if x < acc +. p.p_weight then p else go (acc +. p.p_weight) rest
  in
  go 0.0 mix

let program_stats c name =
  match Hashtbl.find_opt c.by_program name with
  | Some ps -> ps
  | None ->
      let ps =
        {
          ps_name = name;
          ps_commits = 0;
          ps_user_aborts = 0;
          ps_aborts = 0;
          ps_latency = Obs.hist_create ();
        }
      in
      Hashtbl.replace c.by_program name ps;
      ps

(* Run one (db, mix, config) measurement: returns counters over the window
   [warmup, warmup + duration]. [make_db] builds and populates the database
   (fresh per run so seeds are independent). When [obs] is given it is
   attached to the database (Db.set_obs) and its metrics snapshot lands in
   [result.metrics]; recording never perturbs the simulation, so results
   are identical with or without it. *)
let run_once ?obs ~make_db ~mix (cfg : config) : result =
  let sim = Sim.create () in
  let db : Db.t = make_db sim in
  (match obs with Some o -> Db.set_obs db o | None -> ());
  (* Progress guarantee: a transaction that consumed no simulated time at
     all (e.g. an immediate application rollback) must not let the client
     loop spin forever at one instant. *)
  let min_step = 1e-6 in
  let horizon = cfg.warmup +. cfg.duration in
  let c =
    {
      commits = 0;
      user_aborts = 0;
      deadlocks = 0;
      conflicts = 0;
      unsafe = 0;
      other_aborts = 0;
      response_sum = 0.0;
      by_program = Hashtbl.create 8;
    }
  in
  let in_window () =
    let now = Sim.now sim in
    now >= cfg.warmup && now < horizon
  in
  let count_abort name reason =
    if in_window () then begin
      let ps = program_stats c name in
      ps.ps_aborts <- ps.ps_aborts + 1;
      match reason with
      | Types.Deadlock -> c.deadlocks <- c.deadlocks + 1
      | Types.Update_conflict -> c.conflicts <- c.conflicts + 1
      | Types.Unsafe -> c.unsafe <- c.unsafe + 1
      | Types.Duplicate_key | Types.User_abort | Types.Internal_error _ ->
          c.other_aborts <- c.other_aborts + 1
    end
  in
  let count_commit ?(user_abort = false) name started =
    if in_window () then begin
      let latency = Sim.now sim -. started in
      c.commits <- c.commits + 1;
      c.response_sum <- c.response_sum +. latency;
      if user_abort then c.user_aborts <- c.user_aborts + 1;
      let ps = program_stats c name in
      ps.ps_commits <- ps.ps_commits + 1;
      if user_abort then ps.ps_user_aborts <- ps.ps_user_aborts + 1;
      Obs.hist_add ps.ps_latency latency
    end
  in
  for client = 1 to cfg.mpl do
    Sim.spawn sim (fun () ->
        let st = Random.State.make [| cfg.seed; client; 0x551 |] in
        let rec session () =
          if Sim.now sim < horizon then begin
            if cfg.think_time > 0.0 then Sim.delay sim (Random.State.float st (2.0 *. cfg.think_time));
            let prog = pick mix st in
            let started = Sim.now sim in
            (* Driver-level lifecycle span: one [prog:<name>] B/E pair per
               program execution, spanning every retry. Out-of-band like
               all obs recording — derives only from simulated time, so
               traced and untraced runs measure identically. *)
            let span which =
              match obs with
              | Some o when Obs.tracing o ->
                  let name = "prog:" ^ prog.p_name in
                  Obs.emit o ~ts:(Sim.now sim)
                    (match which with
                    | `B -> Obs.Span_b { tid = client; name; cat = "driver" }
                    | `E -> Obs.Span_e { tid = client; name; cat = "driver" })
              | _ -> ()
            in
            span `B;
            (* Class-outcome event for the timeline: one per transaction
               attempt outcome, tagged with the program (class) name. Not
               gated by the measurement window — the timeline covers the
               whole run, warmup included. *)
            let class_emit outcome latency =
              match obs with
              | Some o when Obs.tracing o ->
                  Obs.emit o ~ts:(Sim.now sim)
                    (Obs.Class_outcome { cls = prog.p_name; outcome; latency })
              | _ -> ()
            in
            let rec attempt retries =
              let attempt_start = Sim.now sim in
              match Db.run ~read_only:prog.p_read_only db cfg.isolation (prog.p_body st) with
              | Ok () ->
                  class_emit "commit" (Sim.now sim -. started);
                  count_commit prog.p_name started
              | Error Types.User_abort ->
                  (* Application rollback (e.g. SmallBank insufficient
                     funds): completed work, not an error — but counted
                     apart so abort accounting stays honest. *)
                  class_emit "user-abort" (Sim.now sim -. started);
                  count_commit ~user_abort:true prog.p_name started
              | Error reason ->
                  class_emit (Types.abort_reason_to_string reason) (Sim.now sim -. attempt_start);
                  count_abort prog.p_name reason;
                  if retries < cfg.max_retries && Sim.now sim < horizon then attempt (retries + 1)
            in
            attempt 0;
            span `E;
            if Sim.now sim = started then Sim.delay sim min_step;
            session ()
          end
        in
        session ())
  done;
  Sim.run ~until:horizon sim;
  (* Wasted-work conservation: the engine's incrementally-maintained ledger
     must agree with an independent scan of the active table on every run —
     a violation means an abort or commit path skipped its banking hook, so
     fail loudly rather than report silently-wrong wasted-work numbers. *)
  if not (Db.work_conserved db) then
    failwith "Driver.run_once: wasted-work conservation violated (ledger out of balance)";
  let wp = Db.work_profile db in
  let programs =
    Hashtbl.fold (fun _ ps acc -> ps :: acc) c.by_program []
    |> List.sort (fun a b -> compare a.ps_name b.ps_name)
  in
  {
    end_lock_table = Db.lock_table_size db;
    end_retained = Db.retained_count db;
    work_committed = wp.Db.wp_committed;
    work_wasted = wp.Db.wp_wasted;
    work_in_flight = wp.Db.wp_in_flight;
    mpl = cfg.mpl;
    seed = cfg.seed;
    elapsed = cfg.duration;
    commits = c.commits;
    throughput = float_of_int c.commits /. cfg.duration;
    user_aborts = c.user_aborts;
    deadlocks = c.deadlocks;
    conflicts = c.conflicts;
    unsafe = c.unsafe;
    other_aborts = c.other_aborts;
    mean_response = (if c.commits = 0 then 0.0 else c.response_sum /. float_of_int c.commits);
    per_program = List.map (fun ps -> (ps.ps_name, ps.ps_commits)) programs;
    programs;
    metrics =
      (match obs with Some o -> Obs.metrics_snapshot o | None -> Obs.metrics_create ());
    aborts_per_commit =
      (let aborts = c.deadlocks + c.conflicts + c.unsafe + c.other_aborts in
       if c.commits = 0 then float_of_int aborts
       else float_of_int aborts /. float_of_int c.commits);
  }

type summary = {
  s_mpl : int;
  s_throughput : float;
  s_ci : float;
  s_deadlock_rate : float; (* per commit *)
  s_conflict_rate : float;
  s_unsafe_rate : float;
  s_user_abort_rate : float; (* application rollbacks per commit *)
  s_mean_response : float; (* weighted by per-seed commit counts *)
  s_lock_table : float; (* mean lock-table entries at window close *)
  s_metrics : Obs.metrics option; (* merged engine metrics (with_metrics) *)
}

(* Run the same configuration across several seeds and aggregate. With
   [with_metrics] each run carries a metrics-only Obs sink and the merged
   metrics land in [s_metrics]. With [pool] the per-seed runs execute on
   the domain pool; each run is an isolated simulated world (fresh Sim, Db
   and Obs built inside the job), and results come back in seed order, so
   the summary is identical to the sequential path. *)
let run_seeds ?pool ?(with_metrics = false) ~make_db ~mix ~seeds (cfg : config) : summary =
  let results =
    Par.map ?pool
      (fun seed ->
        let obs = if with_metrics then Some (Obs.create ~metrics:true ()) else None in
        run_once ?obs ~make_db ~mix { cfg with seed })
      seeds
  in
  let tps = List.map (fun r -> r.throughput) results in
  let m, ci = Stats.ci95 tps in
  let total_commits = List.fold_left (fun a r -> a + r.commits) 0 results in
  let rate f =
    if total_commits = 0 then 0.0
    else float_of_int (List.fold_left (fun a r -> a + f r) 0 results) /. float_of_int total_commits
  in
  (* Mean response weighted by per-seed commit counts: the plain mean of
     per-seed means over-weighted seeds that happened to commit little. *)
  let mean_response =
    if total_commits = 0 then 0.0
    else
      List.fold_left (fun a r -> a +. (r.mean_response *. float_of_int r.commits)) 0.0 results
      /. float_of_int total_commits
  in
  let merged_metrics =
    if with_metrics then begin
      let into = Obs.metrics_create () in
      List.iter (fun r -> Obs.metrics_merge ~into r.metrics) results;
      Some into
    end
    else None
  in
  {
    s_mpl = cfg.mpl;
    s_throughput = m;
    s_ci = ci;
    s_deadlock_rate = rate (fun r -> r.deadlocks);
    s_conflict_rate = rate (fun r -> r.conflicts);
    s_unsafe_rate = rate (fun r -> r.unsafe);
    s_user_abort_rate = rate (fun r -> r.user_aborts);
    s_mean_response = mean_response;
    s_lock_table = Stats.mean (List.map (fun r -> float_of_int r.end_lock_table) results);
    s_metrics = merged_metrics;
  }
