(** Benchmark workload driver, modelled on the paper's db_perf setup (§6.1):
    MPL client processes each run a stream of transactions drawn from a
    weighted mix; aborted transactions are retried; throughput and abort
    rates are measured over a window after a warmup period. *)

(** A transaction program in a mix. *)
type program = {
  p_name : string;
  p_weight : float;
  p_read_only : bool;  (** declared READ ONLY (enables the RO refinement) *)
  p_body : Random.State.t -> Core.Txn.t -> unit;
      (** runs inside a transaction; may raise {!Core.Types.Abort} (e.g. an
          application rollback); parameters come from the per-client RNG *)
}

val program :
  ?weight:float -> ?read_only:bool -> string -> (Random.State.t -> Core.Txn.t -> unit) -> program

(** Weighted random choice from a mix. *)
val pick : program list -> Random.State.t -> program

(** Per-program measurement over the window. *)
type program_stats = {
  ps_name : string;
  mutable ps_commits : int;  (** completed (incl. application rollbacks) *)
  mutable ps_user_aborts : int;  (** application rollbacks among commits *)
  mutable ps_aborts : int;  (** error-abort attempts (deadlock/conflict/unsafe) *)
  ps_latency : Obs.hist;  (** response time over completed transactions *)
}

type result = {
  mpl : int;
  seed : int;
  elapsed : float;
  commits : int;  (** completed transactions in the window *)
  throughput : float;  (** commits per simulated second *)
  user_aborts : int;  (** application rollbacks among [commits] *)
  deadlocks : int;
  conflicts : int;  (** first-committer-wins aborts *)
  unsafe : int;  (** Serializable SI dangerous-structure aborts *)
  other_aborts : int;
  mean_response : float;
  aborts_per_commit : float;  (** error aborts only; user aborts excluded *)
  per_program : (string * int) list;  (** commits by program name *)
  programs : program_stats list;  (** full per-program stats, sorted by name *)
  metrics : Obs.metrics;
      (** engine metrics snapshot (all zero unless [obs] was passed) *)
  end_lock_table : int;  (** lock-table entries when the window closed *)
  end_retained : int;  (** committed transaction records still retained *)
  work_committed : float;
      (** engine wasted-work ledger: begin→commit spans, simulated seconds
          (whole run, not just the measurement window) *)
  work_wasted : float;  (** begin→abort spans, any abort reason *)
  work_in_flight : float;  (** partial spans still open at the horizon *)
}

type config = {
  isolation : Core.Types.isolation;
  mpl : int;  (** number of concurrent clients *)
  warmup : float;  (** simulated seconds before measurement starts *)
  duration : float;  (** measured simulated seconds *)
  think_time : float;  (** mean delay between transactions (0 = closed loop) *)
  seed : int;
  max_retries : int;
}

val default_config : config

(** One measurement: build a fresh database via [make_db], run [mix] with
    [cfg.mpl] clients and count commits/aborts in the measurement window.
    Deterministic given the seed; passing [obs] (attached via
    {!Core.Db.set_obs}) changes no benchmark number, only fills
    [result.metrics] and, if the sink traces, its event buffer. *)
val run_once :
  ?obs:Obs.t -> make_db:(Sim.t -> Core.Db.t) -> mix:program list -> config -> result

type summary = {
  s_mpl : int;
  s_throughput : float;  (** mean across seeds *)
  s_ci : float;  (** 95% confidence half-width *)
  s_deadlock_rate : float;  (** aborts per commit *)
  s_conflict_rate : float;
  s_unsafe_rate : float;
  s_user_abort_rate : float;  (** application rollbacks per commit *)
  s_mean_response : float;  (** weighted by per-seed commit counts *)
  s_lock_table : float;  (** mean lock-table entries at window close *)
  s_metrics : Obs.metrics option;  (** merged engine metrics (with_metrics) *)
}

(** Run the same configuration across several seeds and aggregate. With
    [with_metrics] each run carries a metrics-only {!Obs.t} and the merged
    metrics appear in [s_metrics]. With [pool] the per-seed runs execute on
    the domain pool; each run is an isolated simulated world, and results
    come back in seed order, so the summary is byte-identical to the
    sequential path. *)
val run_seeds :
  ?pool:Par.t ->
  ?with_metrics:bool ->
  make_db:(Sim.t -> Core.Db.t) ->
  mix:program list ->
  seeds:int list ->
  config ->
  summary
