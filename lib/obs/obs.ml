(* Observability subsystem: a structured event sink with a Chrome-trace
   exporter, plus low-overhead metrics (log-bucket latency histograms and
   conflict-source counters).

   Design constraints (see DESIGN.md "Observability"):

   - Zero overhead when off. Every hot-path call site guards with
     [tracing]/[metrics_on] (single mutable-field loads) before building any
     event or computing any latency, so a disabled [t] costs one branch.

   - Determinism. Events and metrics derive only from simulated time,
     transaction ids and resource names. Recording them never touches the
     simulator, any RNG, or cost accounting, so benchmark results are
     byte-identical with tracing enabled or disabled.

   - No dependencies. Timestamps are supplied by the caller (simulated
     seconds); this library never reads a clock itself. *)

(* {1 Conflict-edge sources}

   Where an rw-antidependency edge was detected (§3 of the paper); splitting
   the counters by source makes the §6.1.5 false-positive discussion (page
   stamps vs true row conflicts) directly measurable. *)

type conflict_source =
  | Newer_version (* read ignored a version newer than the snapshot *)
  | Siread_vs_x (* SIREAD met a concurrent X lock (either order) *)
  | Page_stamp (* page updated after the snapshot (Berkeley DB mode) *)
  | Gap (* edge on a next-key gap resource (phantom protection) *)
  | Unknown_writer (* writer's record already gone; conservative self-edge *)

let conflict_source_to_string = function
  | Newer_version -> "newer-version"
  | Siread_vs_x -> "siread-x"
  | Page_stamp -> "page-stamp"
  | Gap -> "gap"
  | Unknown_writer -> "unknown-writer"

(* {1 Abort provenance}

   Structured certificates attached to aborts. An SSI [Unsafe] abort exists
   only because a dangerous structure T_in ->rw T_pivot ->rw T_out was found
   (the paper's §3 / Fekete et al.'s pivot); the certificate records that
   triple with the resource and detection source behind each edge, the
   commit-state of the endpoints at decision time, and which victim-policy
   rule fired. S2PL aborts carry the deadlock cycle; first-committer-wins
   aborts carry the blocking version. Certificates are plain int/string
   data so this leaf library stays dependency-free; the engine (lib/core)
   fills them in and renders the DOT snapshot. *)

(* Commit-state of a pivot neighbour at the instant the victim was chosen. *)
type endpoint_state = Ep_active | Ep_committing | Ep_committed | Ep_aborted | Ep_gone

let endpoint_state_to_string = function
  | Ep_active -> "active"
  | Ep_committing -> "committing"
  | Ep_committed -> "committed"
  | Ep_aborted -> "aborted"
  | Ep_gone -> "gone"

(* One recorded rw-antidependency: [ce_reader] read something [ce_writer]
   (concurrently) wrote, detected via [ce_source] on [ce_resource]
   ("r/<table>/<key>", "g/<table>/<key>", or "p/<table>/<page>"). *)
type cert_edge = {
  ce_reader : int;
  ce_writer : int;
  ce_source : conflict_source;
  ce_resource : string;
}

type cert =
  | Ssi_pivot of {
      sp_victim : int;
      sp_policy : string; (* which victim rule fired, e.g. "prefer-pivot" *)
      sp_pivot : int;
      sp_t_in : int option; (* None: self-edge / squashed Self_conflict *)
      sp_in_state : endpoint_state;
      sp_t_out : int option;
      sp_out_state : endpoint_state;
      sp_in_edge : cert_edge option; (* detail, when provenance was on *)
      sp_out_edge : cert_edge option;
    }
  | Deadlock_cycle of {
      dc_victim : int;
      dc_cycle : int list; (* owners in cycle order, victim first *)
      dc_waits : (int * string) list; (* owner -> resource it waits on *)
    }
  | Fcw_block of {
      fb_txn : int;
      fb_resource : string;
      fb_blocking_commit : int; (* commit ts of the blocking version *)
      fb_blocking_writer : int; (* -1 when the writer id is unknown *)
      fb_snapshot : int;
    }

type certificate = {
  c_ts : float; (* simulated time of the abort decision *)
  c_reason : string; (* abort_reason, e.g. "unsafe", "deadlock" *)
  c_cert : cert;
  c_dot : string; (* Graphviz snapshot of the live dep graph; "" if off *)
}

let cert_victim c =
  match c.c_cert with
  | Ssi_pivot { sp_victim; _ } -> sp_victim
  | Deadlock_cycle { dc_victim; _ } -> dc_victim
  | Fcw_block { fb_txn; _ } -> fb_txn

(* A short canonical label for grouping certificates in reports: the pivot
   shape (edge sources + endpoint states) for SSI, cycle length for
   deadlocks, resource kind for FCW. *)
let cert_shape c =
  match c.c_cert with
  | Ssi_pivot { sp_in_state; sp_out_state; sp_in_edge; sp_out_edge; sp_t_in; sp_t_out; _ } ->
      let src = function Some e -> conflict_source_to_string e.ce_source | None -> "?" in
      let self = function None -> "self" | Some _ -> "" in
      Printf.sprintf "ssi-pivot in=%s(%s%s) out=%s(%s%s)" (src sp_in_edge)
        (endpoint_state_to_string sp_in_state)
        (self sp_t_in) (src sp_out_edge)
        (endpoint_state_to_string sp_out_state)
        (self sp_t_out)
  | Deadlock_cycle { dc_cycle; _ } -> Printf.sprintf "deadlock cycle=%d" (List.length dc_cycle)
  | Fcw_block { fb_resource; _ } ->
      let kind = if String.length fb_resource >= 2 && fb_resource.[0] = 'p' then "page" else "row" in
      Printf.sprintf "fcw blocking=%s" kind

(* {1 Log-bucket histograms}

   Fixed array of power-of-two buckets starting at 1ns; recording is
   allocation-free. Bucket [i] covers [2^i, 2^{i+1}) nanoseconds. *)

let hist_buckets = 64

type hist = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_max : float;
  h_b : int array;
}

let hist_create () = { h_count = 0; h_sum = 0.0; h_max = 0.0; h_b = Array.make hist_buckets 0 }

(* Exact power-of-two bucketing. Bucket [i] covers [2^i, 2^{i+1}) ns,
   lower-inclusive. [Float.frexp] decomposes v_ns = m * 2^e with m in
   [0.5, 1), so floor(log2 v_ns) = e - 1 *exactly* — a value sitting
   precisely on a bucket boundary (v_ns = 2^i) lands in bucket [i] on every
   platform. The previous [Float.log2]-based version depended on libm
   rounding, which could return 9.999... or 10.0 for 2^10 depending on the
   host and put boundary values in either of two buckets. *)
let hist_bucket_of_ns v_ns =
  if not (v_ns >= 1.0) (* also catches nan *) then 0
  else if v_ns = Float.infinity (* frexp inf has no exponent *) then hist_buckets - 1
  else
    let _, e = Float.frexp v_ns in
    let i = e - 1 in
    if i >= hist_buckets then hist_buckets - 1 else i

let bucket_of v = hist_bucket_of_ns (v *. 1e9)

let hist_add h v =
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v > h.h_max then h.h_max <- v;
  let i = bucket_of v in
  h.h_b.(i) <- h.h_b.(i) + 1

let hist_count h = h.h_count

let hist_mean h = if h.h_count = 0 then 0.0 else h.h_sum /. float_of_int h.h_count

let hist_max h = h.h_max

(* p-quantile estimate with within-bucket linear interpolation. The target
   rank lands in some bucket [i] covering [lo, hi) ns (lo = 0 for bucket 0,
   since sub-ns values clamp there); assuming ranks spread uniformly across
   the bucket, the estimate is lo + frac * (hi - lo) where frac is the
   target's position among the bucket's own samples. Always clamped to
   [h_max], so n=1 and p=1.0 return the exact maximum instead of a bucket
   edge. The previous version returned the upper bucket edge outright — a
   conservative over-estimate by up to 2x. *)
let hist_percentile h p =
  if h.h_count = 0 then 0.0
  else begin
    let target =
      let t = int_of_float (ceil (p *. float_of_int h.h_count)) in
      if t < 1 then 1 else if t > h.h_count then h.h_count else t
    in
    let cum = ref 0 in
    let result = ref h.h_max in
    (try
       for i = 0 to hist_buckets - 1 do
         let before = !cum in
         cum := !cum + h.h_b.(i);
         if !cum >= target then begin
           let lo = if i = 0 then 0.0 else Float.ldexp 1.0 i in
           let hi = Float.ldexp 1.0 (i + 1) in
           let frac = float_of_int (target - before) /. float_of_int h.h_b.(i) in
           result := min h.h_max (1e-9 *. (lo +. (frac *. (hi -. lo))));
           raise Exit
         end
       done
     with Exit -> ());
    !result
  end

let hist_copy h = { h with h_b = Array.copy h.h_b }

let hist_merge ~into h =
  into.h_count <- into.h_count + h.h_count;
  into.h_sum <- into.h_sum +. h.h_sum;
  if h.h_max > into.h_max then into.h_max <- h.h_max;
  Array.iteri (fun i n -> into.h_b.(i) <- into.h_b.(i) + n) h.h_b

(* {1 Metrics} *)

type metrics = {
  m_commit_latency : hist; (* begin -> commit, simulated seconds *)
  m_abort_latency : hist; (* begin -> rollback *)
  m_lock_wait : hist; (* per blocking lock acquisition *)
  mutable m_conflict_newer_version : int;
  mutable m_conflict_siread_x : int;
  mutable m_conflict_page_stamp : int;
  mutable m_conflict_gap : int;
  mutable m_conflict_unknown : int;
  mutable m_doomed : int; (* victims doomed by another transaction *)
  mutable m_wal_flushes : int;
  mutable m_cleanup_runs : int; (* cleanup passes that released something *)
  mutable m_cleanup_released : int; (* committed records released *)
  mutable m_siread_hwm : int; (* max SIREAD locks held by one txn *)
  mutable m_retained_hwm : int; (* max retained committed-txn records (both kinds) *)
  mutable m_retained_siread_hwm : int; (* ... still holding SIREAD locks *)
  mutable m_retained_record_hwm : int; (* ... plain records awaiting cleanup *)
  mutable m_siread_live_hwm : int; (* max live SIREAD lock-table entries *)
  mutable m_promotions : int; (* row->page SIREAD granularity promotions *)
  mutable m_summarized : int; (* committed txns folded into the summary *)
  mutable m_summary_hwm : int; (* max summary-table entries *)
  mutable m_budget_pressure : int; (* commits that triggered summarization *)
  mutable m_checkpoints : int; (* WAL checkpoint records hardened *)
  mutable m_replayed : int; (* log records replayed by recovery *)
  mutable m_explored : int; (* schedules the DPOR explorer executed *)
  mutable m_explore_bound : int; (* sum of the multinomial bounds *)
  mutable m_backtracks : int; (* backtrack points added by race analysis *)
  mutable m_sleep_hits : int; (* candidates suppressed by a sleep set *)
}

let metrics_create () =
  {
    m_commit_latency = hist_create ();
    m_abort_latency = hist_create ();
    m_lock_wait = hist_create ();
    m_conflict_newer_version = 0;
    m_conflict_siread_x = 0;
    m_conflict_page_stamp = 0;
    m_conflict_gap = 0;
    m_conflict_unknown = 0;
    m_doomed = 0;
    m_wal_flushes = 0;
    m_cleanup_runs = 0;
    m_cleanup_released = 0;
    m_siread_hwm = 0;
    m_retained_hwm = 0;
    m_retained_siread_hwm = 0;
    m_retained_record_hwm = 0;
    m_siread_live_hwm = 0;
    m_promotions = 0;
    m_summarized = 0;
    m_summary_hwm = 0;
    m_budget_pressure = 0;
    m_checkpoints = 0;
    m_replayed = 0;
    m_explored = 0;
    m_explore_bound = 0;
    m_backtracks = 0;
    m_sleep_hits = 0;
  }

let metrics_copy m =
  {
    m with
    m_commit_latency = hist_copy m.m_commit_latency;
    m_abort_latency = hist_copy m.m_abort_latency;
    m_lock_wait = hist_copy m.m_lock_wait;
  }

let metrics_merge ~into m =
  hist_merge ~into:into.m_commit_latency m.m_commit_latency;
  hist_merge ~into:into.m_abort_latency m.m_abort_latency;
  hist_merge ~into:into.m_lock_wait m.m_lock_wait;
  into.m_conflict_newer_version <- into.m_conflict_newer_version + m.m_conflict_newer_version;
  into.m_conflict_siread_x <- into.m_conflict_siread_x + m.m_conflict_siread_x;
  into.m_conflict_page_stamp <- into.m_conflict_page_stamp + m.m_conflict_page_stamp;
  into.m_conflict_gap <- into.m_conflict_gap + m.m_conflict_gap;
  into.m_conflict_unknown <- into.m_conflict_unknown + m.m_conflict_unknown;
  into.m_doomed <- into.m_doomed + m.m_doomed;
  into.m_wal_flushes <- into.m_wal_flushes + m.m_wal_flushes;
  into.m_cleanup_runs <- into.m_cleanup_runs + m.m_cleanup_runs;
  into.m_cleanup_released <- into.m_cleanup_released + m.m_cleanup_released;
  if m.m_siread_hwm > into.m_siread_hwm then into.m_siread_hwm <- m.m_siread_hwm;
  if m.m_retained_hwm > into.m_retained_hwm then into.m_retained_hwm <- m.m_retained_hwm;
  if m.m_retained_siread_hwm > into.m_retained_siread_hwm then
    into.m_retained_siread_hwm <- m.m_retained_siread_hwm;
  if m.m_retained_record_hwm > into.m_retained_record_hwm then
    into.m_retained_record_hwm <- m.m_retained_record_hwm;
  if m.m_siread_live_hwm > into.m_siread_live_hwm then
    into.m_siread_live_hwm <- m.m_siread_live_hwm;
  into.m_promotions <- into.m_promotions + m.m_promotions;
  into.m_summarized <- into.m_summarized + m.m_summarized;
  if m.m_summary_hwm > into.m_summary_hwm then into.m_summary_hwm <- m.m_summary_hwm;
  into.m_budget_pressure <- into.m_budget_pressure + m.m_budget_pressure;
  into.m_checkpoints <- into.m_checkpoints + m.m_checkpoints;
  into.m_replayed <- into.m_replayed + m.m_replayed;
  into.m_explored <- into.m_explored + m.m_explored;
  into.m_explore_bound <- into.m_explore_bound + m.m_explore_bound;
  into.m_backtracks <- into.m_backtracks + m.m_backtracks;
  into.m_sleep_hits <- into.m_sleep_hits + m.m_sleep_hits

let conflict_sources m =
  [
    (Newer_version, m.m_conflict_newer_version);
    (Siread_vs_x, m.m_conflict_siread_x);
    (Page_stamp, m.m_conflict_page_stamp);
    (Gap, m.m_conflict_gap);
    (Unknown_writer, m.m_conflict_unknown);
  ]

let conflict_total m =
  m.m_conflict_newer_version + m.m_conflict_siread_x + m.m_conflict_page_stamp + m.m_conflict_gap
  + m.m_conflict_unknown

let pp_metrics fmt m =
  let us v = v *. 1e6 in
  Format.fprintf fmt "commit latency: n=%d mean=%.1fus p95=%.1fus max=%.1fus@."
    (hist_count m.m_commit_latency)
    (us (hist_mean m.m_commit_latency))
    (us (hist_percentile m.m_commit_latency 0.95))
    (us (hist_max m.m_commit_latency));
  Format.fprintf fmt "abort latency:  n=%d mean=%.1fus@." (hist_count m.m_abort_latency)
    (us (hist_mean m.m_abort_latency));
  Format.fprintf fmt "lock waits:     n=%d mean=%.1fus max=%.1fus@." (hist_count m.m_lock_wait)
    (us (hist_mean m.m_lock_wait))
    (us (hist_max m.m_lock_wait));
  Format.fprintf fmt "conflict edges: %s (total %d)@."
    (String.concat ", "
       (List.map
          (fun (s, n) -> Printf.sprintf "%s=%d" (conflict_source_to_string s) n)
          (conflict_sources m)))
    (conflict_total m);
  Format.fprintf fmt "doomed victims: %d; wal flushes: %d; cleanup: %d passes / %d released@."
    m.m_doomed m.m_wal_flushes m.m_cleanup_runs m.m_cleanup_released;
  Format.fprintf fmt
    "high-water:     siread/txn=%d retained-records=%d (siread=%d plain=%d) siread-live=%d@."
    m.m_siread_hwm m.m_retained_hwm m.m_retained_siread_hwm m.m_retained_record_hwm
    m.m_siread_live_hwm;
  if m.m_promotions + m.m_summarized + m.m_budget_pressure > 0 then
    Format.fprintf fmt
      "memory budget:  promotions=%d summarized-txns=%d summary-hwm=%d pressure-events=%d@."
      m.m_promotions m.m_summarized m.m_summary_hwm m.m_budget_pressure;
  if m.m_checkpoints + m.m_replayed > 0 then
    Format.fprintf fmt "durability:     checkpoints=%d replayed-records=%d@." m.m_checkpoints
      m.m_replayed;
  if m.m_explored > 0 then
    Format.fprintf fmt
      "exploration:    schedules=%d bound=%d backtracks=%d sleep-hits=%d@." m.m_explored
      m.m_explore_bound m.m_backtracks m.m_sleep_hits

(* {1 Events} *)

type event =
  | Txn_begin of { txn : int; iso : string; ro : bool }
  | Txn_commit of { txn : int; start : float; commit_ts : int; n_writes : int }
  | Txn_abort of { txn : int; start : float; reason : string }
  | Lock_acquire of { owner : int; mode : string; resource : string }
  | Lock_block of { owner : int; mode : string; resource : string }
  | Lock_grant of { owner : int; mode : string; resource : string; waited : float }
  | Lock_release_all of { owner : int; kept_siread : bool }
  | Deadlock of { victim : int; resource : string }
  | Wal_flush of { epoch : int; latency : float; queued : int }
  | Conflict_edge of { reader : int; writer : int; source : conflict_source }
  | Victim_doomed of { victim : int; by : int; reason : string }
  | Cleanup of { released : int; retained : int }
  (* Bounded-memory mode (Config.memory_budget): a row->page SIREAD
     granularity promotion, and a budget-pressure summarization pass folding
     the oldest retained committed txns into the summary table. *)
  | Promotion of { txn : int; table : string; page : int; rows : int }
  | Summarize of { txns : int; entries : int; retained : int }
  (* Profiler spans (Chrome-trace "B"/"E" duration events). The engine opens
     a [txn] span at begin, nests a [span] per lock wait and log flush, and
     closes the txn span at commit/abort. Pairing is by (tid, nesting). *)
  (* Durability subsystem: a hardened checkpoint record, an injected crash
     (the fault plan that fired, rendered as its compact string form), and a
     completed recovery replay. *)
  | Wal_checkpoint of { epoch : int; watermark : int; next_ts : int }
  | Crash_inject of { plan : string }
  | Recovery of { replayed : int; committed : int; in_doubt : int; torn_bytes : int }
  | Span_b of { tid : int; name : string; cat : string }
  | Span_e of { tid : int; name : string; cat : string }
  (* Per-resource state sample, emitted by the simulator's k-server
     resources on every acquire/release state change: servers busy and
     queue depth at simulated time ts (Chrome-trace "C" counter events). *)
  | Res_sample of { res : string; in_use : int; queued : int }
  (* Memory-pressure sample, emitted by the engine at each commit when
     tracing: live SIREAD lock-table entries, retained committed txns (by
     kind) and summary-table size. The timeline layer turns these into
     per-window retention-growth series the PR 5 high-water marks hide. *)
  | Mem_sample of { siread : int; retained_siread : int; retained_record : int; summary : int }
  (* Workload-driver outcome of one transaction attempt: the program
     (transaction class) name, the outcome ("commit", "user-abort", or an
     abort-reason string) and the attempt's response time. Feeds per-class
     SLO accounting in the timeline layer. *)
  | Class_outcome of { cls : string; outcome : string; latency : float }

type t = {
  t_tracing : bool;
  t_metrics : bool;
  t_prov : bool;
  t_sketch : Sketch.t option; (* per-resource attribution sketch *)
  mutable t_events : (float * event) list; (* newest first *)
  mutable t_event_count : int;
  mutable t_certs : certificate list; (* newest first *)
  mutable t_cert_count : int;
  t_m : metrics;
}

let create ?(trace = false) ?(metrics = true) ?(provenance = false) ?sketch () =
  {
    t_tracing = trace;
    t_metrics = metrics;
    t_prov = provenance;
    t_sketch =
      (match sketch with
      | Some cap when cap > 0 -> Some (Sketch.create ~capacity:cap)
      | _ -> None);
    t_events = [];
    t_event_count = 0;
    t_certs = [];
    t_cert_count = 0;
    t_m = metrics_create ();
  }

let disabled = create ~trace:false ~metrics:false ()

let tracing t = t.t_tracing [@@inline]

let metrics_on t = t.t_metrics [@@inline]

let provenance_on t = t.t_prov [@@inline]

let sketch t = t.t_sketch [@@inline]

let sketch_on t = t.t_sketch <> None [@@inline]

let enabled t = t.t_tracing || t.t_metrics || t.t_prov || t.t_sketch <> None

let add_cert t c =
  if t.t_prov then begin
    t.t_certs <- c :: t.t_certs;
    t.t_cert_count <- t.t_cert_count + 1
  end

let cert_count t = t.t_cert_count

let certs t = List.rev t.t_certs

let emit t ~ts e =
  if t.t_tracing then begin
    t.t_events <- (ts, e) :: t.t_events;
    t.t_event_count <- t.t_event_count + 1
  end

let event_count t = t.t_event_count

let events t = List.rev t.t_events

let metrics t = t.t_m

let metrics_snapshot t = metrics_copy t.t_m

(* {2 Metric recorders} — each checks [t_metrics] so call sites may skip the
   guard when no argument computation is needed. *)

let record_commit t ~latency = if t.t_metrics then hist_add t.t_m.m_commit_latency latency

let record_abort t ~latency = if t.t_metrics then hist_add t.t_m.m_abort_latency latency

let record_lock_wait t w = if t.t_metrics then hist_add t.t_m.m_lock_wait w

let record_conflict t source =
  if t.t_metrics then
    match source with
    | Newer_version -> t.t_m.m_conflict_newer_version <- t.t_m.m_conflict_newer_version + 1
    | Siread_vs_x -> t.t_m.m_conflict_siread_x <- t.t_m.m_conflict_siread_x + 1
    | Page_stamp -> t.t_m.m_conflict_page_stamp <- t.t_m.m_conflict_page_stamp + 1
    | Gap -> t.t_m.m_conflict_gap <- t.t_m.m_conflict_gap + 1
    | Unknown_writer -> t.t_m.m_conflict_unknown <- t.t_m.m_conflict_unknown + 1

let record_doomed t = if t.t_metrics then t.t_m.m_doomed <- t.t_m.m_doomed + 1

let record_wal_flush t = if t.t_metrics then t.t_m.m_wal_flushes <- t.t_m.m_wal_flushes + 1

(* [retained] is the post-cleanup queue length; it can never exceed the
   value {!note_retained} saw when the newest entry was appended, so this
   recorder no longer advances the high-water mark (it used to, which
   double-counted the probe: the mark moved both when a record was added and
   again when its neighbours were cleaned). *)
let record_cleanup t ~released ~retained:_ =
  if t.t_metrics && released > 0 then begin
    t.t_m.m_cleanup_runs <- t.t_m.m_cleanup_runs + 1;
    t.t_m.m_cleanup_released <- t.t_m.m_cleanup_released + released
  end

let note_siread t n =
  if t.t_metrics && n > t.t_m.m_siread_hwm then t.t_m.m_siread_hwm <- n

let note_retained t ~siread ~record =
  if t.t_metrics then begin
    let m = t.t_m in
    if siread + record > m.m_retained_hwm then m.m_retained_hwm <- siread + record;
    if siread > m.m_retained_siread_hwm then m.m_retained_siread_hwm <- siread;
    if record > m.m_retained_record_hwm then m.m_retained_record_hwm <- record
  end

let note_siread_live t n =
  if t.t_metrics && n > t.t_m.m_siread_live_hwm then t.t_m.m_siread_live_hwm <- n

let record_promotion t = if t.t_metrics then t.t_m.m_promotions <- t.t_m.m_promotions + 1

let record_summarized t ~txns =
  if t.t_metrics then t.t_m.m_summarized <- t.t_m.m_summarized + txns

let note_summary t n =
  if t.t_metrics && n > t.t_m.m_summary_hwm then t.t_m.m_summary_hwm <- n

let record_explored t ~schedules ~bound =
  if t.t_metrics then begin
    t.t_m.m_explored <- t.t_m.m_explored + schedules;
    t.t_m.m_explore_bound <- t.t_m.m_explore_bound + bound
  end

let record_backtracks t ~n = if t.t_metrics then t.t_m.m_backtracks <- t.t_m.m_backtracks + n

let record_sleep_hits t ~n = if t.t_metrics then t.t_m.m_sleep_hits <- t.t_m.m_sleep_hits + n

let record_budget_pressure t =
  if t.t_metrics then t.t_m.m_budget_pressure <- t.t_m.m_budget_pressure + 1

let record_checkpoint t = if t.t_metrics then t.t_m.m_checkpoints <- t.t_m.m_checkpoints + 1

let record_replayed t ~n = if t.t_metrics then t.t_m.m_replayed <- t.t_m.m_replayed + n

(* {2 Attribution recorders} — feed the per-resource space-saving sketch.
   Each is one branch when no sketch is installed; with one installed the
   cost is a hash lookup plus a counter bump (the eviction scan runs only
   when the sketch is full AND the key untracked). Like every recorder,
   these derive only from resource names and sim-time values already in the
   caller's hands, so the engine's behaviour is byte-identical with the
   sketch on or off. *)

let attrib_conflict t resource =
  match t.t_sketch with
  | None -> ()
  | Some sk ->
      let s = Sketch.touch sk resource in
      s.Sketch.st_conflicts <- s.Sketch.st_conflicts + 1

let attrib_lock_wait t resource waited =
  match t.t_sketch with
  | None -> ()
  | Some sk ->
      let s = Sketch.touch sk resource in
      s.Sketch.st_lock_waits <- s.Sketch.st_lock_waits + 1;
      s.Sketch.st_lock_wait <- s.Sketch.st_lock_wait +. waited

let attrib_siread t resource =
  match t.t_sketch with
  | None -> ()
  | Some sk ->
      let s = Sketch.touch sk resource in
      s.Sketch.st_siread <- s.Sketch.st_siread + 1

(* First-committer-wins blocks are blamed live (the blocking resource is in
   hand at the abort site and needs no certificate), unlike the pivot
   in/out-edge blame which Attrib folds from certificates post-run. *)
let attrib_fcw t resource =
  match t.t_sketch with
  | None -> ()
  | Some sk ->
      let s = Sketch.touch sk resource in
      s.Sketch.st_blame_fcw <- s.Sketch.st_blame_fcw + 1

let attrib_promotion t resource =
  match t.t_sketch with
  | None -> ()
  | Some sk ->
      let s = Sketch.touch sk resource in
      s.Sketch.st_promotions <- s.Sketch.st_promotions + 1

let attrib_summarized t resource =
  match t.t_sketch with
  | None -> ()
  | Some sk ->
      let s = Sketch.touch sk resource in
      s.Sketch.st_summarized <- s.Sketch.st_summarized + 1

(* {1 Chrome-trace export}

   One JSON array of trace events (the "JSON array format" accepted by
   chrome://tracing and https://ui.perfetto.dev). Simulated seconds map to
   trace microseconds; tid is the transaction (or lock owner) id. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 || Char.code c >= 0x7f ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* ph "i" = instant, ph "X" = complete (with dur); ts in microseconds. *)
let trace_record buf ~name ~cat ~ph ~ts ?dur ~tid args =
  Buffer.add_string buf
    (Printf.sprintf {|{"name":"%s","cat":"%s","ph":"%s","ts":%.3f|} (json_escape name)
       (json_escape cat) ph (ts *. 1e6));
  (match dur with
  | Some d -> Buffer.add_string buf (Printf.sprintf {|,"dur":%.3f|} (Float.max 0.0 d *. 1e6))
  | None -> ());
  Buffer.add_string buf (Printf.sprintf {|,"pid":1,"tid":%d|} tid);
  if ph = "i" then Buffer.add_string buf {|,"s":"t"|};
  (match args with
  | [] -> ()
  | args ->
      Buffer.add_string buf {|,"args":{|};
      Buffer.add_string buf
        (String.concat "," (List.map (fun (k, v) -> Printf.sprintf {|"%s":%s|} (json_escape k) v) args));
      Buffer.add_char buf '}');
  Buffer.add_char buf '}'

let str v = "\"" ^ json_escape v ^ "\""

(* Canonical exporter-safe form of a resource id. Bytes outside printable
   ASCII — notably the gap supremum's 0xff pair — plus the characters that
   are structural in some exporter ('%' itself, the CSV comma, the JSON/DOT
   quote and backslash) become lowercase %HH. The result contains only
   printable ASCII with no separators or escapes left, so every exporter
   (CSV cells, ndjson strings, DOT labels, Chrome-trace names) can embed it
   verbatim: one escaping rule instead of four. *)
let res_id_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '%' | ',' | '"' | '\\' -> Buffer.add_string buf (Printf.sprintf "%%%02x" (Char.code c))
      | c when Char.code c < 0x21 || Char.code c >= 0x7f ->
          Buffer.add_string buf (Printf.sprintf "%%%02x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Escape a string for use inside a double-quoted Graphviz DOT label:
   quotes and backslashes are escaped, non-printable bytes become a literal
   [\xHH] (rendered as-is by Graphviz), so the gap supremum's 0xff bytes
   survive any DOT toolchain. *)
let dot_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 || Char.code c >= 0x7f ->
          Buffer.add_string buf (Printf.sprintf "\\\\x%02x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Tiny structural DOT check, shared by the test suite and the CI smoke
   target: accepts exactly the shape the snapshot builders emit — a
   [digraph <id> {] header, per-line balanced double-quoted strings with
   backslash escapes (dot_escape never emits a raw newline inside a label),
   every body statement terminated with [;] (or opening/closing a block),
   balanced braces, and at least one statement. Not a full DOT grammar;
   enough to catch an unescaped quote, a truncated write or a missing
   terminator without shelling out to Graphviz. *)
let dot_validate s =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let lines = List.filter_map
      (fun l -> match String.trim l with "" -> None | t -> Some t)
      (String.split_on_char '\n' s)
  in
  match lines with
  | [] -> Error "empty document"
  | header :: body ->
      if not (String.length header >= 9 && String.sub header 0 8 = "digraph ") then
        err "missing digraph header: %s" header
      else if header.[String.length header - 1] <> '{' then
        err "header does not open a block: %s" header
      else begin
        let depth = ref 1 and stmts = ref 0 and bad = ref None in
        let check line =
          if !bad = None then begin
            let in_str = ref false and esc = ref false in
            String.iter
              (fun c ->
                if !in_str then
                  if !esc then esc := false
                  else if c = '\\' then esc := true
                  else if c = '"' then in_str := false
                  else ()
                else if c = '"' then in_str := true)
              line;
            if !in_str then bad := Some (Printf.sprintf "unterminated string: %s" line)
            else if line = "}" then decr depth
            else if line.[String.length line - 1] = '{' then incr depth
            else if line.[String.length line - 1] = ';' then incr stmts
            else bad := Some (Printf.sprintf "statement missing ';': %s" line)
          end
        in
        List.iter check body;
        match !bad with
        | Some m -> Error m
        | None ->
            if !depth <> 0 then err "unbalanced braces: %d open at end of document" !depth
            else if !stmts = 0 then Error "no statements"
            else Ok ()
      end

let bool_ b = if b then "true" else "false"

let event_to_buf buf (ts, e) =
  match e with
  | Txn_begin { txn; iso; ro } ->
      trace_record buf ~name:"begin" ~cat:"txn" ~ph:"i" ~ts ~tid:txn
        [ ("iso", str iso); ("read_only", bool_ ro) ]
  | Txn_commit { txn; start; commit_ts; n_writes } ->
      trace_record buf ~name:"txn" ~cat:"txn" ~ph:"X" ~ts:start ~dur:(ts -. start) ~tid:txn
        [ ("outcome", str "commit"); ("commit_ts", string_of_int commit_ts);
          ("writes", string_of_int n_writes) ]
  | Txn_abort { txn; start; reason } ->
      trace_record buf ~name:"txn" ~cat:"txn" ~ph:"X" ~ts:start ~dur:(ts -. start) ~tid:txn
        [ ("outcome", str "abort"); ("reason", str reason) ]
  | Lock_acquire { owner; mode; resource } ->
      trace_record buf ~name:"acquire" ~cat:"lock" ~ph:"i" ~ts ~tid:owner
        [ ("mode", str mode); ("resource", str (res_id_escape resource)) ]
  | Lock_block { owner; mode; resource } ->
      trace_record buf ~name:"block" ~cat:"lock" ~ph:"i" ~ts ~tid:owner
        [ ("mode", str mode); ("resource", str (res_id_escape resource)) ]
  | Lock_grant { owner; mode; resource; waited } ->
      trace_record buf ~name:"lock-wait" ~cat:"lock" ~ph:"X" ~ts:(ts -. waited) ~dur:waited
        ~tid:owner
        [ ("mode", str mode); ("resource", str (res_id_escape resource)) ]
  | Lock_release_all { owner; kept_siread } ->
      trace_record buf ~name:"release-all" ~cat:"lock" ~ph:"i" ~ts ~tid:owner
        [ ("kept_siread", bool_ kept_siread) ]
  | Deadlock { victim; resource } ->
      trace_record buf ~name:"deadlock" ~cat:"lock" ~ph:"i" ~ts ~tid:victim
        [ ("resource", str (res_id_escape resource)) ]
  | Wal_flush { epoch; latency; queued } ->
      trace_record buf ~name:"flush" ~cat:"wal" ~ph:"X" ~ts:(ts -. latency) ~dur:latency ~tid:0
        [ ("epoch", string_of_int epoch); ("queued", string_of_int queued) ]
  | Conflict_edge { reader; writer; source } ->
      trace_record buf ~name:"rw-edge" ~cat:"ssi" ~ph:"i" ~ts ~tid:reader
        [ ("writer", string_of_int writer); ("source", str (conflict_source_to_string source)) ]
  | Victim_doomed { victim; by; reason } ->
      trace_record buf ~name:"doomed" ~cat:"ssi" ~ph:"i" ~ts ~tid:victim
        [ ("by", string_of_int by); ("reason", str reason) ]
  | Cleanup { released; retained } ->
      trace_record buf ~name:"cleanup" ~cat:"gc" ~ph:"i" ~ts ~tid:0
        [ ("released", string_of_int released); ("retained", string_of_int retained) ]
  | Promotion { txn; table; page; rows } ->
      trace_record buf ~name:"promotion" ~cat:"budget" ~ph:"i" ~ts ~tid:txn
        [ ("table", str table); ("page", string_of_int page); ("rows", string_of_int rows) ]
  | Summarize { txns; entries; retained } ->
      trace_record buf ~name:"summarize" ~cat:"budget" ~ph:"i" ~ts ~tid:0
        [ ("txns", string_of_int txns); ("entries", string_of_int entries);
          ("retained", string_of_int retained) ]
  | Wal_checkpoint { epoch; watermark; next_ts } ->
      trace_record buf ~name:"checkpoint" ~cat:"wal" ~ph:"i" ~ts ~tid:0
        [ ("epoch", string_of_int epoch); ("watermark", string_of_int watermark);
          ("next_ts", string_of_int next_ts) ]
  | Crash_inject { plan } ->
      trace_record buf ~name:"crash" ~cat:"wal" ~ph:"i" ~ts ~tid:0 [ ("plan", str plan) ]
  | Recovery { replayed; committed; in_doubt; torn_bytes } ->
      trace_record buf ~name:"recovery" ~cat:"wal" ~ph:"i" ~ts ~tid:0
        [ ("replayed", string_of_int replayed); ("committed", string_of_int committed);
          ("in_doubt", string_of_int in_doubt); ("torn_bytes", string_of_int torn_bytes) ]
  | Span_b { tid; name; cat } -> trace_record buf ~name ~cat ~ph:"B" ~ts ~tid []
  | Span_e { tid; name; cat } -> trace_record buf ~name ~cat ~ph:"E" ~ts ~tid []
  | Res_sample { res; in_use; queued } ->
      trace_record buf ~name:(res_id_escape res) ~cat:"resource" ~ph:"C" ~ts ~tid:0
        [ ("in_use", string_of_int in_use); ("queued", string_of_int queued) ]
  | Mem_sample { siread; retained_siread; retained_record; summary } ->
      trace_record buf ~name:"memory" ~cat:"memory" ~ph:"C" ~ts ~tid:0
        [ ("siread", string_of_int siread);
          ("retained_siread", string_of_int retained_siread);
          ("retained_record", string_of_int retained_record);
          ("summary", string_of_int summary) ]
  | Class_outcome { cls; outcome; latency } ->
      trace_record buf ~name:("class:" ^ cls) ~cat:"driver" ~ph:"i" ~ts ~tid:0
        [ ("outcome", str outcome); ("latency", Printf.sprintf "%.9f" latency) ]

(* Render one Chrome-trace counter ("C") record — the form the timeline
   layer uses to append its per-window series to a trace file, so spans,
   resource occupancy and timeline series land in a single viewer. *)
let trace_counter buf ~name ~ts args = trace_record buf ~name ~cat:"timeline" ~ph:"C" ~ts ~tid:0 args

(* One event as its standalone trace-record JSON object — the line format
   of the flight recorder's ring dump. *)
let event_json ev =
  let buf = Buffer.create 96 in
  event_to_buf buf ev;
  Buffer.contents buf

let write_trace ?(extra = []) oc t =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "[";
  let first = ref true in
  let sep () = if !first then first := false else Buffer.add_string buf ",\n" in
  List.iter
    (fun ev ->
      sep ();
      event_to_buf buf ev)
    (events t);
  List.iter
    (fun record ->
      sep ();
      Buffer.add_string buf record)
    extra;
  Buffer.add_string buf "]\n";
  Buffer.output_buffer oc buf

let write_trace_file ?extra path t =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_trace ?extra oc t)

(* {1 Certificate JSON}

   One self-contained JSON object per certificate (one line, no trailing
   newline); parseable without a JSON library for the same reason
   BENCH_ssi.json is. *)

let edge_to_json e =
  Printf.sprintf {|{"reader":%d,"writer":%d,"source":%s,"resource":%s}|} e.ce_reader e.ce_writer
    (str (conflict_source_to_string e.ce_source))
    (str (res_id_escape e.ce_resource))

let opt_int = function Some i -> string_of_int i | None -> "null"

let opt_edge = function Some e -> edge_to_json e | None -> "null"

let cert_to_json c =
  let body =
    match c.c_cert with
    | Ssi_pivot p ->
        Printf.sprintf
          {|"kind":"ssi-pivot","victim":%d,"policy":%s,"pivot":%d,"t_in":%s,"in_state":%s,"t_out":%s,"out_state":%s,"in_edge":%s,"out_edge":%s|}
          p.sp_victim (str p.sp_policy) p.sp_pivot (opt_int p.sp_t_in)
          (str (endpoint_state_to_string p.sp_in_state))
          (opt_int p.sp_t_out)
          (str (endpoint_state_to_string p.sp_out_state))
          (opt_edge p.sp_in_edge) (opt_edge p.sp_out_edge)
    | Deadlock_cycle d ->
        Printf.sprintf {|"kind":"deadlock","victim":%d,"cycle":[%s],"waits":[%s]|} d.dc_victim
          (String.concat "," (List.map string_of_int d.dc_cycle))
          (String.concat ","
             (List.map
                (fun (o, r) -> Printf.sprintf {|{"owner":%d,"resource":%s}|} o (str (res_id_escape r)))
                d.dc_waits))
    | Fcw_block f ->
        Printf.sprintf
          {|"kind":"fcw","txn":%d,"resource":%s,"blocking_commit":%d,"blocking_writer":%s,"snapshot":%d|}
          f.fb_txn (str (res_id_escape f.fb_resource)) f.fb_blocking_commit
          (if f.fb_blocking_writer < 0 then "null" else string_of_int f.fb_blocking_writer)
          f.fb_snapshot
  in
  Printf.sprintf {|{"ts":%.9f,"reason":%s,%s,"shape":%s,"dot":%s}|} c.c_ts (str c.c_reason) body
    (str (cert_shape c)) (str c.c_dot)

let write_certs oc t =
  List.iter
    (fun c ->
      output_string oc (cert_to_json c);
      output_char oc '\n')
    (certs t)

(* {1 Resource series}

   Chronological (ts, in_use, queued) samples per resource name, extracted
   from the trace buffer; the report renders these as sparklines. *)

let resource_series t =
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (ts, e) ->
      match e with
      | Res_sample { res; in_use; queued } ->
          let l =
            match Hashtbl.find_opt tbl res with
            | Some l -> l
            | None ->
                let l = ref [] in
                Hashtbl.add tbl res l;
                order := res :: !order;
                l
          in
          l := (ts, in_use, queued) :: !l
      | _ -> ())
    t.t_events;
  (* t_events is newest-first, so each accumulated list is chronological. *)
  List.rev_map (fun res -> (res, !(Hashtbl.find tbl res))) !order
