(** Observability: structured engine events with a Chrome-trace exporter,
    plus allocation-free metrics (log-bucket latency histograms, conflict
    counters, high-water marks).

    Everything recorded derives only from simulated time, transaction ids
    and resource names; recording never touches the simulator or any RNG, so
    benchmark results are byte-identical with tracing on or off. Hot-path
    call sites must guard with {!tracing}/{!metrics_on} before building
    events, making a disabled sink cost a single branch. *)

(** {1 Conflict-edge sources} *)

(** Where an rw-antidependency was detected; splitting counters by source
    makes the paper's §6.1.5 false-positive discussion measurable. *)
type conflict_source =
  | Newer_version  (** read ignored a version newer than the snapshot *)
  | Siread_vs_x  (** SIREAD met a concurrent X lock (either order) *)
  | Page_stamp  (** page updated after the snapshot (Berkeley DB mode) *)
  | Gap  (** edge on a next-key gap resource (phantom protection) *)
  | Unknown_writer  (** writer's record gone; conservative self-edge *)

val conflict_source_to_string : conflict_source -> string

(** {1 Abort provenance}

    Structured certificates attached to aborts: for SSI the full pivot
    triple [T_in ->rw T_pivot ->rw T_out] with the resource and detection
    source behind each edge, endpoint commit-states and the victim-policy
    rule that fired; for S2PL the deadlock cycle; for first-committer-wins
    the blocking version. Plain int/string data — the engine fills these in
    and renders the DOT snapshot. *)

(** Commit-state of a pivot neighbour at the instant the victim was
    chosen. *)
type endpoint_state = Ep_active | Ep_committing | Ep_committed | Ep_aborted | Ep_gone

val endpoint_state_to_string : endpoint_state -> string

(** One recorded rw-antidependency: [ce_reader] read something [ce_writer]
    (concurrently) wrote, detected via [ce_source] on [ce_resource]
    (["r/<table>/<key>"], ["g/<table>/<key>"], or ["p/<table>/<page>"]). *)
type cert_edge = {
  ce_reader : int;
  ce_writer : int;
  ce_source : conflict_source;
  ce_resource : string;
}

type cert =
  | Ssi_pivot of {
      sp_victim : int;
      sp_policy : string;  (** which victim rule fired, e.g. ["prefer-pivot"] *)
      sp_pivot : int;
      sp_t_in : int option;  (** [None]: self-edge (squashed [Self_conflict]) *)
      sp_in_state : endpoint_state;
      sp_t_out : int option;
      sp_out_state : endpoint_state;
      sp_in_edge : cert_edge option;  (** edge detail, when recorded *)
      sp_out_edge : cert_edge option;
    }
  | Deadlock_cycle of {
      dc_victim : int;
      dc_cycle : int list;  (** owners in cycle order, victim first *)
      dc_waits : (int * string) list;  (** owner -> resource it waits on *)
    }
  | Fcw_block of {
      fb_txn : int;
      fb_resource : string;
      fb_blocking_commit : int;  (** commit ts of the blocking version *)
      fb_blocking_writer : int;  (** [-1] when the writer id is unknown *)
      fb_snapshot : int;
    }

type certificate = {
  c_ts : float;  (** simulated time of the abort decision *)
  c_reason : string;  (** abort reason, e.g. ["unsafe"], ["deadlock"] *)
  c_cert : cert;
  c_dot : string;  (** Graphviz snapshot of the live dep graph; [""] if off *)
}

val cert_victim : certificate -> int

(** Canonical grouping label: pivot shape (edge sources + endpoint states)
    for SSI, cycle length for deadlocks, resource kind for FCW. *)
val cert_shape : certificate -> string

(** One self-contained JSON object, single line, no trailing newline. *)
val cert_to_json : certificate -> string

(** Escape a string for a double-quoted Graphviz DOT label (quotes,
    backslashes, non-printable bytes). *)
val dot_escape : string -> string

(** Structural well-formedness check for the DOT snapshots emitted with
    {!dot_escape}-escaped labels: digraph header, per-line balanced quoted
    strings, [;]-terminated statements, balanced braces. Returns the first
    offending line on failure. Used by the test suite and the CI smoke
    target (no Graphviz needed). *)
val dot_validate : string -> (unit, string) result

(** {1 Log-bucket histograms} *)

(** Fixed power-of-two buckets from 1ns; {!hist_add} allocates nothing. *)
type hist = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_max : float;
  h_b : int array;
}

val hist_create : unit -> hist

(** Bucket index for a latency of [v_ns] nanoseconds: bucket [i] covers
    [[2^i, 2^{i+1})] ns, lower-inclusive, computed with [Float.frexp] so a
    value exactly on a bucket boundary lands in the same bucket on every
    platform (no libm [log2] rounding). Values below 1ns clamp to bucket 0,
    values at or above [2^64] ns to the last bucket. *)
val hist_bucket_of_ns : float -> int

val hist_add : hist -> float -> unit

val hist_count : hist -> int

val hist_mean : hist -> float

val hist_max : hist -> float

(** p-quantile estimate, linearly interpolated within the target bucket
    (assuming a uniform spread of ranks across the bucket) and clamped to
    {!hist_max} — so a one-sample histogram returns the exact value. *)
val hist_percentile : hist -> float -> float

val hist_copy : hist -> hist

val hist_merge : into:hist -> hist -> unit

(** {1 Metrics} *)

type metrics = {
  m_commit_latency : hist;  (** begin to commit, simulated seconds *)
  m_abort_latency : hist;  (** begin to rollback *)
  m_lock_wait : hist;  (** per blocking lock acquisition *)
  mutable m_conflict_newer_version : int;
  mutable m_conflict_siread_x : int;
  mutable m_conflict_page_stamp : int;
  mutable m_conflict_gap : int;
  mutable m_conflict_unknown : int;
  mutable m_doomed : int;  (** victims doomed by another transaction *)
  mutable m_wal_flushes : int;
  mutable m_cleanup_runs : int;  (** cleanup passes that released records *)
  mutable m_cleanup_released : int;  (** committed records released *)
  mutable m_siread_hwm : int;  (** max SIREAD locks held by one txn *)
  mutable m_retained_hwm : int;
      (** max retained committed-txn records (both kinds together) *)
  mutable m_retained_siread_hwm : int;
      (** max retained committed txns still holding SIREAD locks *)
  mutable m_retained_record_hwm : int;
      (** max retained plain committed records (no SIREADs) *)
  mutable m_siread_live_hwm : int;  (** max live SIREAD lock-table entries *)
  mutable m_promotions : int;  (** row→page SIREAD granularity promotions *)
  mutable m_summarized : int;  (** committed txns folded into the summary *)
  mutable m_summary_hwm : int;  (** max summary-table entries *)
  mutable m_budget_pressure : int;  (** commits that triggered summarization *)
  mutable m_checkpoints : int;  (** WAL checkpoint records hardened *)
  mutable m_replayed : int;  (** log records replayed by recovery *)
  mutable m_explored : int;  (** schedules the DPOR explorer executed *)
  mutable m_explore_bound : int;  (** sum of the multinomial bounds *)
  mutable m_backtracks : int;  (** backtrack points added by race analysis *)
  mutable m_sleep_hits : int;  (** candidates suppressed by a sleep set *)
}

val metrics_create : unit -> metrics

val metrics_copy : metrics -> metrics

val metrics_merge : into:metrics -> metrics -> unit

val conflict_sources : metrics -> (conflict_source * int) list

val conflict_total : metrics -> int

val pp_metrics : Format.formatter -> metrics -> unit

(** {1 Events} *)

type event =
  | Txn_begin of { txn : int; iso : string; ro : bool }
  | Txn_commit of { txn : int; start : float; commit_ts : int; n_writes : int }
  | Txn_abort of { txn : int; start : float; reason : string }
  | Lock_acquire of { owner : int; mode : string; resource : string }
  | Lock_block of { owner : int; mode : string; resource : string }
  | Lock_grant of { owner : int; mode : string; resource : string; waited : float }
  | Lock_release_all of { owner : int; kept_siread : bool }
  | Deadlock of { victim : int; resource : string }
  | Wal_flush of { epoch : int; latency : float; queued : int }
      (** group-commit flush completion; [queued] is the number of records
          still pending (later epochs) when the flush hardened *)
  | Conflict_edge of { reader : int; writer : int; source : conflict_source }
  | Victim_doomed of { victim : int; by : int; reason : string }
  | Cleanup of { released : int; retained : int }
  | Promotion of { txn : int; table : string; page : int; rows : int }
      (** bounded-memory mode: [rows] row SIREADs on [page] collapsed into
          one page SIREAD *)
  | Summarize of { txns : int; entries : int; retained : int }
      (** bounded-memory mode: a budget-pressure pass folded [txns] retained
          committed txns into [entries] summary-table records *)
  | Wal_checkpoint of { epoch : int; watermark : int; next_ts : int }
      (** a checkpoint record was hardened: [watermark] is the oldest active
          snapshot, [next_ts] the commit-ts allocator at checkpoint time *)
  | Crash_inject of { plan : string }
      (** a seeded fault plan fired (compact [Wal.plan_to_string] form) *)
  | Recovery of { replayed : int; committed : int; in_doubt : int; torn_bytes : int }
      (** recovery replayed the durable log prefix *)
  | Span_b of { tid : int; name : string; cat : string }
      (** Profiler span open (Chrome-trace ["B"]); paired by (tid, nesting). *)
  | Span_e of { tid : int; name : string; cat : string }
      (** Profiler span close (Chrome-trace ["E"]). *)
  | Res_sample of { res : string; in_use : int; queued : int }
      (** k-server resource state at a state change: busy servers and queue
          depth (exported as Chrome-trace ["C"] counter events). *)
  | Mem_sample of { siread : int; retained_siread : int; retained_record : int; summary : int }
      (** per-commit memory-pressure sample: live SIREAD lock-table entries,
          retained committed txns by kind, summary-table size *)
  | Class_outcome of { cls : string; outcome : string; latency : float }
      (** workload-driver outcome of one transaction attempt: program
          (class) name, outcome (["commit"], ["user-abort"], or an
          abort-reason string) and response time *)

(** {1 The sink} *)

type t

(** [create ~trace ~metrics ~provenance ~sketch ()]: [trace] buffers
    structured events for {!write_trace}; [metrics] enables the
    counters/histograms; [provenance] makes the engine record per-edge
    conflict detail and attach a {!certificate} to every abort; [sketch]
    (a capacity, 0 or absent = off) installs a per-resource attribution
    {!Sketch.t} fed by the [attrib_*] recorders. Defaults: trace off,
    metrics on, provenance off, sketch off. *)
val create : ?trace:bool -> ?metrics:bool -> ?provenance:bool -> ?sketch:int -> unit -> t

(** A shared, permanently-off sink; the default carried by a database. *)
val disabled : t

val tracing : t -> bool

val metrics_on : t -> bool

val provenance_on : t -> bool

(** The attribution sketch, when one was installed at {!create}. *)
val sketch : t -> Sketch.t option

val sketch_on : t -> bool

val enabled : t -> bool

(** Append a certificate. No-op unless {!provenance_on}. *)
val add_cert : t -> certificate -> unit

val cert_count : t -> int

(** Chronological certificate list. *)
val certs : t -> certificate list

(** Certificates as JSON, one object per line. *)
val write_certs : out_channel -> t -> unit

(** Append an event at simulated time [ts]. No-op unless {!tracing}; call
    sites should still guard to avoid building the event. *)
val emit : t -> ts:float -> event -> unit

val event_count : t -> int

(** Chronological event list. *)
val events : t -> (float * event) list

(** The live metrics record (mutated in place as the engine runs). *)
val metrics : t -> metrics

(** An independent copy of the current metrics. *)
val metrics_snapshot : t -> metrics

(** {2 Metric recorders} — each is a no-op unless {!metrics_on}. *)

val record_commit : t -> latency:float -> unit

val record_abort : t -> latency:float -> unit

val record_lock_wait : t -> float -> unit

val record_conflict : t -> conflict_source -> unit

val record_doomed : t -> unit

val record_wal_flush : t -> unit

(** [record_cleanup ~released ~retained] after a suspended-list cleanup
    pass. Does not advance the retained high-water marks: the post-cleanup
    count never exceeds what {!note_retained} already saw at append time
    (advancing it here double-counted the probe). *)
val record_cleanup : t -> released:int -> retained:int -> unit

(** Advance the per-transaction SIREAD-count high-water mark. *)
val note_siread : t -> int -> unit

(** [note_retained ~siread ~record] advances the retained high-water marks:
    committed txns still holding SIREADs, plain committed records, and their
    sum. *)
val note_retained : t -> siread:int -> record:int -> unit

(** Advance the live SIREAD lock-table-entry high-water mark. *)
val note_siread_live : t -> int -> unit

(** {2 Bounded-memory mode recorders} ([Config.memory_budget]) *)

(** Count one row→page SIREAD granularity promotion. *)
val record_promotion : t -> unit

(** Count [txns] committed transactions folded into the summary table. *)
val record_summarized : t -> txns:int -> unit

(** Advance the summary-table-size high-water mark. *)
val note_summary : t -> int -> unit

(** Count one budget-pressure event (a commit that forced summarization). *)
val record_budget_pressure : t -> unit

(** {2 Durability recorders} *)

(** Count one hardened WAL checkpoint record. *)
val record_checkpoint : t -> unit

(** Count [n] log records replayed by a recovery pass. *)
val record_replayed : t -> n:int -> unit

(** {2 Exploration recorders (the DPOR schedule explorer)} *)

(** Count one exploration: [schedules] executed against a multinomial bound
    of [bound]. *)
val record_explored : t -> schedules:int -> bound:int -> unit

(** Count [n] backtrack points added by race analysis. *)
val record_backtracks : t -> n:int -> unit

(** Count [n] sleep-set suppressions (a backtrack candidate whose subtree
    was already covered elsewhere). *)
val record_sleep_hits : t -> n:int -> unit

(** {2 Attribution recorders} — each feeds the per-resource space-saving
    sketch and is a single branch unless one was installed ([?sketch] at
    {!create}). Resource ids are the canonical encodings
    (["r|p|g/<table>/<key>"]). Recording derives only from values already in
    the caller's hands, so engine behaviour is identical with the sketch on
    or off. *)

(** One rw-antidependency edge detected on the resource. *)
val attrib_conflict : t -> string -> unit

(** One blocking lock acquisition on the resource that waited [float]
    simulated seconds. *)
val attrib_lock_wait : t -> string -> float -> unit

(** One SIREAD grant on the resource (residency proxy). *)
val attrib_siread : t -> string -> unit

(** One first-committer-wins abort blocked by a version/stamp on the
    resource. Blamed live at the abort site — the pivot in/out-edge blame,
    by contrast, is folded from certificates by {!Attrib.blame}. *)
val attrib_fcw : t -> string -> unit

(** One row→page SIREAD promotion landing on the (page) resource. *)
val attrib_promotion : t -> string -> unit

(** One summarization fold touching the resource's summary entry. *)
val attrib_summarized : t -> string -> unit

(** {1 Chrome-trace export}

    One JSON array of trace events (the array format accepted by
    chrome://tracing and ui.perfetto.dev). Simulated seconds map to trace
    microseconds; [tid] is the transaction (or lock owner) id. *)

(** [extra] is a list of pre-rendered trace records (e.g. from
    {!trace_counter}) appended after the event records, inside the same
    JSON array. *)
val write_trace : ?extra:string list -> out_channel -> t -> unit

val write_trace_file : ?extra:string list -> string -> t -> unit

(** Render one Chrome-trace counter (["C"]) record into [buf] — how the
    timeline layer appends its per-window series to a trace file. [args]
    values are raw JSON fragments (typically numbers). *)
val trace_counter : Buffer.t -> name:string -> ts:float -> (string * string) list -> unit

(** One event as its standalone trace-record JSON object (no trailing
    newline) — the flight recorder's ring-dump line format. *)
val event_json : float * event -> string

(** Canonical exporter-safe form of a resource id: bytes outside printable
    ASCII (the gap supremum's 0xff pair included) plus ['%'], [','], ['"']
    and ['\\'] become lowercase [%HH]. The result embeds verbatim in CSV
    cells, ndjson strings, DOT labels and Chrome-trace names — one shared
    escaping rule across all exporters. *)
val res_id_escape : string -> string

(** {1 Resource series}

    Chronological [(ts, in_use, queued)] samples per resource name,
    extracted from the trace buffer (requires {!tracing}); resources appear
    in order of first sample. *)
val resource_series : t -> (string * (float * int * int) list) list
