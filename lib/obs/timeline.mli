(** Windowed sim-time telemetry over an {!Obs} event buffer.

    A timeline slices simulated time into fixed-width windows
    [[k*w, (k+1)*w)] and maintains, per window: commit throughput, aborts
    split by the full reason taxonomy (and unsafe aborts further split by
    rw-edge detection source when the sink recorded certificates),
    response-time and lock-wait histograms, memory-retention gauges (live
    SIREAD entries / retained records / summary size), WAL flush counts and
    queue depth, and committed vs. wasted sim-time work. On top sit
    per-transaction-class SLO accounting and a deterministic two-sided
    Page–Hinkley change-point detector.

    Everything derives from the event buffer alone — building a timeline
    never touches the simulator, so it is byte-identical at any [-j] and a
    run with no tracing sink pays nothing ({!of_obs} returns [None]). *)

(** Error-abort counts by reason ({!Core}'s taxonomy; user aborts are
    completed work but counted apart). *)
type reason_counts = {
  mutable rc_deadlock : int;
  mutable rc_fcw : int;  (** first-committer-wins ([Update_conflict]) *)
  mutable rc_unsafe : int;  (** SSI dangerous-structure aborts *)
  mutable rc_user : int;  (** application rollbacks *)
  mutable rc_other : int;  (** duplicate-key / internal errors *)
}

(** One fixed-width window of series state. Gauges ([w_siread],
    [w_retained], [w_summary]) hold the last sample at or before the end of
    the window (empty windows are densified by carrying the previous value
    forward); everything else counts events inside the window. *)
type window = {
  mutable w_commits : int;
  w_aborts : reason_counts;
  w_unsafe_src : int array;
      (** unsafe aborts by certificate edge source — indices follow
          {!unsafe_src_names}; the last slot is "unattributed" (no
          certificate, e.g. provenance off) *)
  w_unsafe_gran : int array;
      (** the same unsafe aborts by blamed-resource granularity
          (row/page/gap from the canonical id prefix, falling back to the
          other pivot edge when the preferred one has no recognisable
          prefix) — indices follow {!unsafe_gran_names}; both splits sum
          with their unattributed slot to [rc_unsafe] per window *)
  w_response : Obs.hist;  (** begin→commit latency of commits in the window *)
  w_lock_wait : Obs.hist;  (** blocking lock waits granted in the window *)
  mutable w_wal_flushes : int;
  mutable w_wal_queue : int;  (** max records still pending at a flush *)
  mutable w_siread : int;  (** live SIREAD lock-table entries *)
  mutable w_retained : int;  (** retained committed-transaction records *)
  mutable w_summary : int;  (** summary-table entries *)
  mutable w_work_committed : float;
      (** sim-time span (begin→commit) of transactions committing here *)
  mutable w_work_wasted : float;
      (** sim-time span (begin→abort) of transactions aborting here —
          the work thrown away, whatever the abort reason *)
}

val unsafe_src_names : string array

val unsafe_gran_names : string array

(** Per-class (workload program) per-window state, from [Class_outcome]
    events. [cw_commits] includes application rollbacks (completed work);
    [cw_aborts] counts error-abort attempts. *)
type class_window = {
  mutable cw_commits : int;
  mutable cw_aborts : int;
  cw_latency : Obs.hist;  (** response time of completed transactions *)
}

type t = {
  tl_width : float;  (** window width, simulated seconds *)
  tl_windows : window array;
  tl_classes : (string * class_window array) list;  (** sorted by name *)
}

(** {1 Construction} *)

(** Build a timeline from chronological events and certificates. [horizon]
    fixes the window count ([ceil (horizon / window)], minimum 1) so
    trailing quiet windows are materialised (densification); it defaults to
    the last event timestamp. Events at or beyond the horizon clamp into
    the last window. [window] must be positive. *)
val of_events :
  window:float ->
  ?horizon:float ->
  (float * Obs.event) list ->
  Obs.certificate list ->
  t

(** [of_obs ~window obs] builds a timeline from a tracing sink's buffer;
    [None] unless {!Obs.tracing} — a disabled sink allocates no series
    state. *)
val of_obs : window:float -> ?horizon:float -> Obs.t -> t option

(** Merge per-seed timelines (same window width, or [Invalid_argument]):
    counts, histograms and work sums add; retention gauges take the
    cross-seed max (each seed is an independent simulated world, so the
    merged gauge reads "worst seed at this time"). Class lists union by
    name. [merge []] is [Invalid_argument]. *)
val merge : t list -> t

(** {1 Series access} *)

(** Names accepted by {!series} (and the CSV/ndjson column set). *)
val series_names : string list

(** One per-window float series by name; raises [Invalid_argument] on an
    unknown name. Derived series: ["throughput"] = commits/width,
    ["abort-rate"] = error aborts / (commits + error aborts),
    ["p95-response"] / ["mean-response"] / ["mean-lock-wait"] come from the
    per-window histograms. *)
val series : t -> string -> float array

type totals = {
  tt_commits : int;
  tt_aborts : int;  (** error aborts; user aborts are in [tt_user] *)
  tt_user : int;
  tt_work_committed : float;
  tt_work_wasted : float;
}

val totals : t -> totals

(** {1 Export} *)

(** CSV: header then one row per window ([window,t0,...] plus [columns],
    default {!series_names}). Numbers are printed with a fixed format, so
    identical timelines render byte-identically. *)
val to_csv : ?columns:string list -> Buffer.t -> t -> unit

(** One JSON object per window per line, same fields as the CSV. *)
val to_ndjson : Buffer.t -> t -> unit

(** Chrome-trace counter records (one ["C"] record per series per window,
    named ["tl:<series>"]) for {!Obs.write_trace}'s [extra] — the timeline
    renders alongside spans and resource counters in one viewer. *)
val counter_records : ?columns:string list -> t -> string list

(** {1 Per-class SLOs} *)

type slo = {
  slo_abort_rate : float;  (** max error aborts per completed transaction *)
  slo_p95 : float;  (** max p95 response, simulated seconds *)
}

type slo_report = {
  sr_class : string;
  sr_active : int;  (** windows with any activity for this class *)
  sr_violations : int;  (** windows violating either target *)
  sr_abort_viol : int;
  sr_p95_viol : int;
  sr_time_in_violation : float;  (** [violations * width], simulated seconds *)
  sr_worst_abort_rate : float;
  sr_worst_p95 : float;
}

(** Evaluate [slo] per class per window. A window with completions but no
    commits and at least one error abort counts as an abort-rate violation
    (rate is taken as infinite). Quiet windows are skipped. *)
val slo_eval : t -> slo -> slo_report list

(** {1 Change-point detection}

    Two-sided Page–Hinkley over a named series. Deterministic pure fold:
    running mean [mu_t], cumulative deviation [m_t += x_t - mu_t -. delta]
    (and the mirrored sum for downward shifts), alarm when the deviation
    exceeds its running minimum by more than [lambda]; state resets after
    each alarm. [delta] defaults to [0.05 * mean(series)], [lambda] to
    [0.5 * mean(series)] — scale-free defaults that fire on a sustained
    step and stay quiet on a stationary series. *)

type mark = {
  mk_window : int;
  mk_ts : float;  (** window start time *)
  mk_series : string;
  mk_direction : [ `Up | `Down ];
}

val change_points : ?delta:float -> ?lambda:float -> t -> series:string -> mark list
