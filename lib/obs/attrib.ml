(* Blame pass and contention-table rendering (see attrib.mli and DESIGN.md
   "Attribution & flight recorder").

   The sketch arrives populated by the live feed sites (conflict edges,
   lock waits, SIREAD grants, FCW blocks, promotions, summarizations);
   [blame] adds the one attribution only certificates can supply — which
   resource sat under each pivot edge of an unsafe abort. All rendering
   uses one numeric format and {!Obs.res_id_escape}, so equal data prints
   byte-identically (the -j1/-j4 diff rules lean on this). *)

let num v = Printf.sprintf "%.9g" v

let blame sk certs =
  List.iter
    (fun c ->
      if c.Obs.c_reason = "unsafe" then
        match c.Obs.c_cert with
        | Obs.Ssi_pivot { sp_in_edge; sp_out_edge; _ } ->
            (match sp_out_edge with
            | Some e ->
                let s = Sketch.touch sk e.Obs.ce_resource in
                s.Sketch.st_blame_out <- s.Sketch.st_blame_out + 1
            | None -> ());
            (match sp_in_edge with
            | Some e ->
                let s = Sketch.touch sk e.Obs.ce_resource in
                s.Sketch.st_blame_in <- s.Sketch.st_blame_in + 1
            | None -> ())
        | _ -> ())
    certs

let table ?top sk =
  match top with None -> Sketch.entries sk | Some k -> Sketch.top sk k

let render_summary buf sk =
  let n = Sketch.total sk and cap = Sketch.capacity sk in
  Printf.bprintf buf
    "sketch: updates=%d capacity=%d tracked=%d max-overcount=%d bound<=N/capacity=%d\n" n cap
    (Sketch.cardinality sk) (Sketch.error_bound sk) (n / cap)

let columns =
  [
    "count";
    "err";
    "conflicts";
    "blame-in";
    "blame-out";
    "blame-fcw";
    "lock-waits";
    "lock-wait-s";
    "siread";
    "promoted";
    "summarized";
  ]

let cells (s : Sketch.stats) =
  [
    string_of_int s.Sketch.st_count;
    string_of_int s.Sketch.st_err;
    string_of_int s.Sketch.st_conflicts;
    string_of_int s.Sketch.st_blame_in;
    string_of_int s.Sketch.st_blame_out;
    string_of_int s.Sketch.st_blame_fcw;
    string_of_int s.Sketch.st_lock_waits;
    num s.Sketch.st_lock_wait;
    string_of_int s.Sketch.st_siread;
    string_of_int s.Sketch.st_promotions;
    string_of_int s.Sketch.st_summarized;
  ]

let render_table buf ?top sk =
  let rows =
    List.map (fun (r, s) -> (Obs.res_id_escape r, cells s)) (table ?top sk)
  in
  let rwidth =
    List.fold_left (fun acc (r, _) -> max acc (String.length r)) (String.length "resource") rows
  in
  let widths =
    List.fold_left
      (fun acc (_, cs) -> List.map2 (fun w c -> max w (String.length c)) acc cs)
      (List.map String.length columns) rows
  in
  let pad_left w s = String.make (w - String.length s) ' ' ^ s in
  let pad_right w s = s ^ String.make (w - String.length s) ' ' in
  Buffer.add_string buf (pad_right rwidth "resource");
  List.iter2
    (fun w c ->
      Buffer.add_string buf "  ";
      Buffer.add_string buf (pad_left w c))
    widths columns;
  Buffer.add_char buf '\n';
  List.iter
    (fun (r, cs) ->
      Buffer.add_string buf (pad_right rwidth r);
      List.iter2
        (fun w c ->
          Buffer.add_string buf "  ";
          Buffer.add_string buf (pad_left w c))
        widths cs;
      Buffer.add_char buf '\n')
    rows

let to_csv buf ?top sk =
  Buffer.add_string buf "resource";
  List.iter
    (fun c ->
      Buffer.add_char buf ',';
      Buffer.add_string buf c)
    columns;
  Buffer.add_char buf '\n';
  List.iter
    (fun (r, s) ->
      Buffer.add_string buf (Obs.res_id_escape r);
      List.iter
        (fun c ->
          Buffer.add_char buf ',';
          Buffer.add_string buf c)
        (cells s);
      Buffer.add_char buf '\n')
    (table ?top sk)

let to_ndjson buf ?top sk =
  List.iter
    (fun (r, s) ->
      Printf.bprintf buf
        {|{"resource":"%s","count":%d,"err":%d,"conflicts":%d,"blame_in":%d,"blame_out":%d,"blame_fcw":%d,"lock_waits":%d,"lock_wait_s":%s,"siread":%d,"promoted":%d,"summarized":%d}|}
        (Obs.res_id_escape r) s.Sketch.st_count s.Sketch.st_err s.Sketch.st_conflicts
        s.Sketch.st_blame_in s.Sketch.st_blame_out s.Sketch.st_blame_fcw s.Sketch.st_lock_waits
        (num s.Sketch.st_lock_wait) s.Sketch.st_siread s.Sketch.st_promotions
        s.Sketch.st_summarized;
      Buffer.add_char buf '\n')
    (table ?top sk)

(* {1 Per-window blame series} *)

type wblame = {
  wb_window : int;
  wb_t0 : float;
  wb_resource : string;
  wb_in : int;
  wb_out : int;
  wb_fcw : int;
}

let blame_windows ~window ?horizon certs =
  if not (window > 0.0) then invalid_arg "Attrib.blame_windows: window width must be positive";
  let horizon =
    match horizon with
    | Some h -> h
    | None -> List.fold_left (fun acc c -> Float.max acc c.Obs.c_ts) 0.0 certs
  in
  let n = max 1 (int_of_float (Float.ceil (horizon /. window))) in
  let idx ts =
    let i = int_of_float (Float.floor (ts /. window)) in
    if i < 0 then 0 else if i >= n then n - 1 else i
  in
  let tbl : (int * string, int * int * int) Hashtbl.t = Hashtbl.create 64 in
  let bump key f =
    let cur = Option.value (Hashtbl.find_opt tbl key) ~default:(0, 0, 0) in
    Hashtbl.replace tbl key (f cur)
  in
  List.iter
    (fun c ->
      let w = idx c.Obs.c_ts in
      match c.Obs.c_cert with
      | Obs.Ssi_pivot { sp_in_edge; sp_out_edge; _ } when c.Obs.c_reason = "unsafe" ->
          (match sp_out_edge with
          | Some e -> bump (w, e.Obs.ce_resource) (fun (i, o, f) -> (i, o + 1, f))
          | None -> ());
          (match sp_in_edge with
          | Some e -> bump (w, e.Obs.ce_resource) (fun (i, o, f) -> (i + 1, o, f))
          | None -> ())
      | Obs.Fcw_block { fb_resource; _ } ->
          bump (w, fb_resource) (fun (i, o, f) -> (i, o, f + 1))
      | _ -> ())
    certs;
  Hashtbl.fold
    (fun (w, r) (i, o, f) acc ->
      {
        wb_window = w;
        wb_t0 = float_of_int w *. window;
        wb_resource = r;
        wb_in = i;
        wb_out = o;
        wb_fcw = f;
      }
      :: acc)
    tbl []
  |> List.sort (fun a b ->
         if a.wb_window <> b.wb_window then compare a.wb_window b.wb_window
         else compare a.wb_resource b.wb_resource)

let windows_csv buf rows =
  Buffer.add_string buf "window,t0,resource,blame_in,blame_out,blame_fcw\n";
  List.iter
    (fun r ->
      Printf.bprintf buf "%d,%s,%s,%d,%d,%d\n" r.wb_window (num r.wb_t0)
        (Obs.res_id_escape r.wb_resource)
        r.wb_in r.wb_out r.wb_fcw)
    rows

let windows_ndjson buf rows =
  List.iter
    (fun r ->
      Printf.bprintf buf
        {|{"window":%d,"t0":%s,"resource":"%s","blame_in":%d,"blame_out":%d,"blame_fcw":%d}|}
        r.wb_window (num r.wb_t0)
        (Obs.res_id_escape r.wb_resource)
        r.wb_in r.wb_out r.wb_fcw;
      Buffer.add_char buf '\n')
    rows
