(* Windowed sim-time telemetry built from an Obs event buffer (see
   timeline.mli and DESIGN.md "Timeline telemetry").

   Construction is a single chronological pass over the events plus one
   pass over the certificates: O(1) work per event into a preallocated
   window array, no simulator access, no RNG, no wall clock — so a
   timeline is a pure function of the trace and byte-identical wherever it
   is built (any -j, any host). A run without a tracing sink never reaches
   this module ([of_obs] returns [None] before allocating anything). *)

type reason_counts = {
  mutable rc_deadlock : int;
  mutable rc_fcw : int;
  mutable rc_unsafe : int;
  mutable rc_user : int;
  mutable rc_other : int;
}

type window = {
  mutable w_commits : int;
  w_aborts : reason_counts;
  w_unsafe_src : int array;
  w_unsafe_gran : int array;
  w_response : Obs.hist;
  w_lock_wait : Obs.hist;
  mutable w_wal_flushes : int;
  mutable w_wal_queue : int;
  mutable w_siread : int;
  mutable w_retained : int;
  mutable w_summary : int;
  mutable w_work_committed : float;
  mutable w_work_wasted : float;
}

(* Indices 0-4 follow Obs.conflict_source declaration order; the last slot
   collects unsafe aborts with no certificate edge to attribute (for
   example when the sink had provenance off). *)
let unsafe_src_names =
  [| "newer-version"; "siread-x"; "page-stamp"; "gap"; "unknown-writer"; "unattributed" |]

let src_index = function
  | Obs.Newer_version -> 0
  | Obs.Siread_vs_x -> 1
  | Obs.Page_stamp -> 2
  | Obs.Gap -> 3
  | Obs.Unknown_writer -> 4

(* Second attribution axis over the same certificates: the granularity of
   the blamed resource, read off the canonical id prefix ("r|p|g/..."). The
   last slot again absorbs whatever no certificate edge could attribute. *)
let unsafe_gran_names = [| "row"; "page"; "gap"; "unattributed" |]

let gran_index resource =
  if String.length resource = 0 then None
  else
    match resource.[0] with
    | 'r' -> Some 0
    | 'p' -> Some 1
    | 'g' -> Some 2
    | _ -> None

type class_window = {
  mutable cw_commits : int;
  mutable cw_aborts : int;
  cw_latency : Obs.hist;
}

type t = {
  tl_width : float;
  tl_windows : window array;
  tl_classes : (string * class_window array) list;
}

let window_create () =
  {
    w_commits = 0;
    w_aborts = { rc_deadlock = 0; rc_fcw = 0; rc_unsafe = 0; rc_user = 0; rc_other = 0 };
    w_unsafe_src = Array.make (Array.length unsafe_src_names) 0;
    w_unsafe_gran = Array.make (Array.length unsafe_gran_names) 0;
    w_response = Obs.hist_create ();
    w_lock_wait = Obs.hist_create ();
    w_wal_flushes = 0;
    w_wal_queue = 0;
    w_siread = 0;
    w_retained = 0;
    w_summary = 0;
    w_work_committed = 0.0;
    w_work_wasted = 0.0;
  }

let class_window_create () = { cw_commits = 0; cw_aborts = 0; cw_latency = Obs.hist_create () }

(* {1 Construction} *)

let of_events ~window ?horizon events certs =
  if not (window > 0.0) then invalid_arg "Timeline.of_events: window width must be positive";
  let horizon =
    match horizon with
    | Some h -> h
    | None ->
        let last = List.fold_left (fun acc (ts, _) -> Float.max acc ts) 0.0 events in
        List.fold_left (fun acc c -> Float.max acc c.Obs.c_ts) last certs
  in
  let n = max 1 (int_of_float (Float.ceil (horizon /. window))) in
  let w = Array.init n (fun _ -> window_create ()) in
  (* Window of a timestamp: floor(ts / width), clamped — an event exactly
     at k*window lands in window k (lower-inclusive), and events at or past
     the horizon (e.g. the closing instant itself) clamp into the last
     window rather than growing the array. *)
  let idx ts =
    let i = int_of_float (Float.floor (ts /. window)) in
    if i < 0 then 0 else if i >= n then n - 1 else i
  in
  let has_mem = Array.make n false in
  let classes : (string, class_window array) Hashtbl.t = Hashtbl.create 8 in
  let class_rows cls =
    match Hashtbl.find_opt classes cls with
    | Some rows -> rows
    | None ->
        let rows = Array.init n (fun _ -> class_window_create ()) in
        Hashtbl.add classes cls rows;
        rows
  in
  List.iter
    (fun (ts, e) ->
      match e with
      | Obs.Txn_commit { start; _ } ->
          let b = w.(idx ts) in
          let span = ts -. start in
          b.w_commits <- b.w_commits + 1;
          Obs.hist_add b.w_response span;
          b.w_work_committed <- b.w_work_committed +. span
      | Obs.Txn_abort { start; reason; _ } ->
          let b = w.(idx ts) in
          let rc = b.w_aborts in
          (match reason with
          | "deadlock" -> rc.rc_deadlock <- rc.rc_deadlock + 1
          | "update-conflict" -> rc.rc_fcw <- rc.rc_fcw + 1
          | "unsafe" -> rc.rc_unsafe <- rc.rc_unsafe + 1
          | "user-abort" -> rc.rc_user <- rc.rc_user + 1
          | _ -> rc.rc_other <- rc.rc_other + 1);
          (* Wasted work: the whole begin->abort span is attributed to the
             abort window, for every reason including application rollbacks
             — at the engine level the span produced no committed effect. *)
          b.w_work_wasted <- b.w_work_wasted +. (ts -. start)
      | Obs.Lock_grant { waited; _ } ->
          if waited > 0.0 then Obs.hist_add w.(idx ts).w_lock_wait waited
      | Obs.Wal_flush { queued; _ } ->
          let b = w.(idx ts) in
          b.w_wal_flushes <- b.w_wal_flushes + 1;
          if queued > b.w_wal_queue then b.w_wal_queue <- queued
      | Obs.Mem_sample { siread; retained_siread; retained_record; summary } ->
          (* Gauge: the last sample in the window wins (chronological
             iteration), densified across quiet windows below. *)
          let i = idx ts in
          w.(i).w_siread <- siread;
          w.(i).w_retained <- retained_siread + retained_record;
          w.(i).w_summary <- summary;
          has_mem.(i) <- true
      | Obs.Class_outcome { cls; outcome; latency } -> (
          let cw = (class_rows cls).(idx ts) in
          match outcome with
          | "commit" | "user-abort" ->
              cw.cw_commits <- cw.cw_commits + 1;
              Obs.hist_add cw.cw_latency latency
          | _ -> cw.cw_aborts <- cw.cw_aborts + 1)
      | _ -> ())
    events;
  (* Unsafe-abort attribution, two axes over the same certificates: the
     detection source of the pivot edge (outgoing edge preferred — it is
     the edge that completed the dangerous structure) and the granularity
     of the blamed resource (row/page/gap from the canonical id prefix).
     The granularity axis falls back to the other edge's resource when the
     preferred edge's id has no recognisable prefix, so fewer aborts land
     in its unattributed slot. *)
  List.iter
    (fun c ->
      if c.Obs.c_reason = "unsafe" then
        match c.Obs.c_cert with
        | Obs.Ssi_pivot { sp_out_edge; sp_in_edge; _ } -> (
            match (sp_out_edge, sp_in_edge) with
            | Some e, other | (None as other), Some e ->
                let b = w.(idx c.Obs.c_ts) in
                let s = src_index e.Obs.ce_source in
                b.w_unsafe_src.(s) <- b.w_unsafe_src.(s) + 1;
                let gran =
                  match gran_index e.Obs.ce_resource with
                  | Some g -> Some g
                  | None -> Option.bind other (fun o -> gran_index o.Obs.ce_resource)
                in
                Option.iter
                  (fun g -> b.w_unsafe_gran.(g) <- b.w_unsafe_gran.(g) + 1)
                  gran
            | None, None -> ())
        | _ -> ())
    certs;
  (* Whatever the certificates could not attribute stays visible as its own
     slot instead of silently vanishing from either split. *)
  Array.iter
    (fun b ->
      let attributed = ref 0 in
      for s = 0 to 4 do
        attributed := !attributed + b.w_unsafe_src.(s)
      done;
      b.w_unsafe_src.(5) <- max 0 (b.w_aborts.rc_unsafe - !attributed);
      let gran_attributed = ref 0 in
      for g = 0 to 2 do
        gran_attributed := !gran_attributed + b.w_unsafe_gran.(g)
      done;
      b.w_unsafe_gran.(3) <- max 0 (b.w_aborts.rc_unsafe - !gran_attributed))
    w;
  (* Densify the retention gauges: a window with no commit (hence no
     Mem_sample) carries the previous window's state forward, so the series
     reads as the level that was actually in force, not as a dip to zero. *)
  for i = 1 to n - 1 do
    if not has_mem.(i) then begin
      w.(i).w_siread <- w.(i - 1).w_siread;
      w.(i).w_retained <- w.(i - 1).w_retained;
      w.(i).w_summary <- w.(i - 1).w_summary
    end
  done;
  let tl_classes =
    Hashtbl.fold (fun name rows acc -> (name, rows) :: acc) classes []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  { tl_width = window; tl_windows = w; tl_classes }

let of_obs ~window ?horizon obs =
  if not (Obs.tracing obs) then None
  else Some (of_events ~window ?horizon (Obs.events obs) (Obs.certs obs))

(* {1 Merge} *)

let merge = function
  | [] -> invalid_arg "Timeline.merge: empty list"
  | first :: _ as tls ->
      let width = first.tl_width in
      List.iter
        (fun tl ->
          if tl.tl_width <> width then
            invalid_arg "Timeline.merge: window widths differ")
        tls;
      let n = List.fold_left (fun acc tl -> max acc (Array.length tl.tl_windows)) 0 tls in
      let w = Array.init n (fun _ -> window_create ()) in
      List.iter
        (fun tl ->
          Array.iteri
            (fun i src ->
              let dst = w.(i) in
              dst.w_commits <- dst.w_commits + src.w_commits;
              dst.w_aborts.rc_deadlock <- dst.w_aborts.rc_deadlock + src.w_aborts.rc_deadlock;
              dst.w_aborts.rc_fcw <- dst.w_aborts.rc_fcw + src.w_aborts.rc_fcw;
              dst.w_aborts.rc_unsafe <- dst.w_aborts.rc_unsafe + src.w_aborts.rc_unsafe;
              dst.w_aborts.rc_user <- dst.w_aborts.rc_user + src.w_aborts.rc_user;
              dst.w_aborts.rc_other <- dst.w_aborts.rc_other + src.w_aborts.rc_other;
              Array.iteri
                (fun s v -> dst.w_unsafe_src.(s) <- dst.w_unsafe_src.(s) + v)
                src.w_unsafe_src;
              Array.iteri
                (fun g v -> dst.w_unsafe_gran.(g) <- dst.w_unsafe_gran.(g) + v)
                src.w_unsafe_gran;
              Obs.hist_merge ~into:dst.w_response src.w_response;
              Obs.hist_merge ~into:dst.w_lock_wait src.w_lock_wait;
              dst.w_wal_flushes <- dst.w_wal_flushes + src.w_wal_flushes;
              if src.w_wal_queue > dst.w_wal_queue then dst.w_wal_queue <- src.w_wal_queue;
              (* Seeds are independent simulated worlds, so summing their
                 retention gauges would describe no real machine; the max
                 reads as "worst seed at this point of the run". *)
              if src.w_siread > dst.w_siread then dst.w_siread <- src.w_siread;
              if src.w_retained > dst.w_retained then dst.w_retained <- src.w_retained;
              if src.w_summary > dst.w_summary then dst.w_summary <- src.w_summary;
              dst.w_work_committed <- dst.w_work_committed +. src.w_work_committed;
              dst.w_work_wasted <- dst.w_work_wasted +. src.w_work_wasted)
            tl.tl_windows)
        tls;
      let class_tbl : (string, class_window array) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun tl ->
          List.iter
            (fun (name, rows) ->
              let dst =
                match Hashtbl.find_opt class_tbl name with
                | Some d -> d
                | None ->
                    let d = Array.init n (fun _ -> class_window_create ()) in
                    Hashtbl.add class_tbl name d;
                    d
              in
              Array.iteri
                (fun i src ->
                  dst.(i).cw_commits <- dst.(i).cw_commits + src.cw_commits;
                  dst.(i).cw_aborts <- dst.(i).cw_aborts + src.cw_aborts;
                  Obs.hist_merge ~into:dst.(i).cw_latency src.cw_latency)
                rows)
            tl.tl_classes)
        tls;
      let tl_classes =
        Hashtbl.fold (fun name rows acc -> (name, rows) :: acc) class_tbl []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      { tl_width = width; tl_windows = w; tl_classes }

(* {1 Series access} *)

let series_names =
  [
    "throughput";
    "commits";
    "aborts";
    "abort-rate";
    "deadlock";
    "fcw";
    "unsafe";
    "user-abort";
    "other";
    "unsafe-newer-version";
    "unsafe-siread-x";
    "unsafe-page-stamp";
    "unsafe-gap";
    "unsafe-unknown-writer";
    "unsafe-unattributed";
    "unsafe-res-row";
    "unsafe-res-page";
    "unsafe-res-gap";
    "unsafe-res-unattributed";
    "mean-response";
    "p95-response";
    "lock-waits";
    "mean-lock-wait";
    "siread";
    "retained";
    "summary";
    "wal-flushes";
    "wal-queue";
    "work-committed";
    "work-wasted";
  ]

let error_aborts b =
  b.w_aborts.rc_deadlock + b.w_aborts.rc_fcw + b.w_aborts.rc_unsafe + b.w_aborts.rc_other

let series tl name =
  let f =
    match name with
    | "throughput" -> fun b -> float_of_int b.w_commits /. tl.tl_width
    | "commits" -> fun b -> float_of_int b.w_commits
    | "aborts" -> fun b -> float_of_int (error_aborts b)
    | "abort-rate" ->
        fun b ->
          let a = error_aborts b in
          let total = b.w_commits + a in
          if total = 0 then 0.0 else float_of_int a /. float_of_int total
    | "deadlock" -> fun b -> float_of_int b.w_aborts.rc_deadlock
    | "fcw" -> fun b -> float_of_int b.w_aborts.rc_fcw
    | "unsafe" -> fun b -> float_of_int b.w_aborts.rc_unsafe
    | "user-abort" -> fun b -> float_of_int b.w_aborts.rc_user
    | "other" -> fun b -> float_of_int b.w_aborts.rc_other
    | "unsafe-newer-version" -> fun b -> float_of_int b.w_unsafe_src.(0)
    | "unsafe-siread-x" -> fun b -> float_of_int b.w_unsafe_src.(1)
    | "unsafe-page-stamp" -> fun b -> float_of_int b.w_unsafe_src.(2)
    | "unsafe-gap" -> fun b -> float_of_int b.w_unsafe_src.(3)
    | "unsafe-unknown-writer" -> fun b -> float_of_int b.w_unsafe_src.(4)
    | "unsafe-unattributed" -> fun b -> float_of_int b.w_unsafe_src.(5)
    | "unsafe-res-row" -> fun b -> float_of_int b.w_unsafe_gran.(0)
    | "unsafe-res-page" -> fun b -> float_of_int b.w_unsafe_gran.(1)
    | "unsafe-res-gap" -> fun b -> float_of_int b.w_unsafe_gran.(2)
    | "unsafe-res-unattributed" -> fun b -> float_of_int b.w_unsafe_gran.(3)
    | "mean-response" -> fun b -> Obs.hist_mean b.w_response
    | "p95-response" ->
        fun b -> if Obs.hist_count b.w_response = 0 then 0.0 else Obs.hist_percentile b.w_response 0.95
    | "lock-waits" -> fun b -> float_of_int (Obs.hist_count b.w_lock_wait)
    | "mean-lock-wait" -> fun b -> Obs.hist_mean b.w_lock_wait
    | "siread" -> fun b -> float_of_int b.w_siread
    | "retained" -> fun b -> float_of_int b.w_retained
    | "summary" -> fun b -> float_of_int b.w_summary
    | "wal-flushes" -> fun b -> float_of_int b.w_wal_flushes
    | "wal-queue" -> fun b -> float_of_int b.w_wal_queue
    | "work-committed" -> fun b -> b.w_work_committed
    | "work-wasted" -> fun b -> b.w_work_wasted
    | _ -> invalid_arg ("Timeline.series: unknown series " ^ name)
  in
  Array.map f tl.tl_windows

type totals = {
  tt_commits : int;
  tt_aborts : int;
  tt_user : int;
  tt_work_committed : float;
  tt_work_wasted : float;
}

let totals tl =
  Array.fold_left
    (fun acc b ->
      {
        tt_commits = acc.tt_commits + b.w_commits;
        tt_aborts = acc.tt_aborts + error_aborts b;
        tt_user = acc.tt_user + b.w_aborts.rc_user;
        tt_work_committed = acc.tt_work_committed +. b.w_work_committed;
        tt_work_wasted = acc.tt_work_wasted +. b.w_work_wasted;
      })
    { tt_commits = 0; tt_aborts = 0; tt_user = 0; tt_work_committed = 0.0; tt_work_wasted = 0.0 }
    tl.tl_windows

(* {1 Export}

   One fixed numeric format ("%.9g": enough digits to round-trip the
   counts and sim-time sums that actually occur, no trailing-zero noise)
   so equal timelines print byte-identically — the property the -j1/-j4
   diff rules pin. *)

let num v = Printf.sprintf "%.9g" v

let to_csv ?(columns = series_names) buf tl =
  let cols = List.map (fun c -> (c, series tl c)) columns in
  Buffer.add_string buf "window,t0";
  List.iter
    (fun (c, _) ->
      Buffer.add_char buf ',';
      Buffer.add_string buf c)
    cols;
  Buffer.add_char buf '\n';
  Array.iteri
    (fun i _ ->
      Buffer.add_string buf (string_of_int i);
      Buffer.add_char buf ',';
      Buffer.add_string buf (num (float_of_int i *. tl.tl_width));
      List.iter
        (fun (_, xs) ->
          Buffer.add_char buf ',';
          Buffer.add_string buf (num xs.(i)))
        cols;
      Buffer.add_char buf '\n')
    tl.tl_windows

let to_ndjson buf tl =
  let cols = List.map (fun c -> (c, series tl c)) series_names in
  Array.iteri
    (fun i _ ->
      Buffer.add_string buf (Printf.sprintf {|{"window":%d,"t0":%s|} i (num (float_of_int i *. tl.tl_width)));
      List.iter
        (fun (c, xs) -> Buffer.add_string buf (Printf.sprintf {|,"%s":%s|} c (num xs.(i))))
        cols;
      Buffer.add_string buf "}\n")
    tl.tl_windows

let counter_records ?(columns = series_names) tl =
  let cols = List.map (fun c -> (c, series tl c)) columns in
  let out = ref [] in
  Array.iteri
    (fun i _ ->
      let ts = float_of_int i *. tl.tl_width in
      List.iter
        (fun (c, xs) ->
          let buf = Buffer.create 96 in
          Obs.trace_counter buf ~name:("tl:" ^ c) ~ts [ ("v", num xs.(i)) ];
          out := Buffer.contents buf :: !out)
        cols)
    tl.tl_windows;
  List.rev !out

(* {1 Per-class SLOs} *)

type slo = { slo_abort_rate : float; slo_p95 : float }

type slo_report = {
  sr_class : string;
  sr_active : int;
  sr_violations : int;
  sr_abort_viol : int;
  sr_p95_viol : int;
  sr_time_in_violation : float;
  sr_worst_abort_rate : float;
  sr_worst_p95 : float;
}

let slo_eval tl slo =
  List.map
    (fun (name, rows) ->
      let active = ref 0 and viol = ref 0 and aviol = ref 0 and pviol = ref 0 in
      let worst_rate = ref 0.0 and worst_p95 = ref 0.0 in
      Array.iter
        (fun cw ->
          if cw.cw_commits + cw.cw_aborts > 0 then begin
            incr active;
            let rate =
              if cw.cw_commits > 0 then float_of_int cw.cw_aborts /. float_of_int cw.cw_commits
              else if cw.cw_aborts > 0 then infinity
              else 0.0
            in
            let p95 =
              if Obs.hist_count cw.cw_latency = 0 then 0.0
              else Obs.hist_percentile cw.cw_latency 0.95
            in
            if rate > !worst_rate then worst_rate := rate;
            if p95 > !worst_p95 then worst_p95 := p95;
            let av = rate > slo.slo_abort_rate in
            let pv = p95 > slo.slo_p95 in
            if av then incr aviol;
            if pv then incr pviol;
            if av || pv then incr viol
          end)
        rows;
      {
        sr_class = name;
        sr_active = !active;
        sr_violations = !viol;
        sr_abort_viol = !aviol;
        sr_p95_viol = !pviol;
        sr_time_in_violation = float_of_int !viol *. tl.tl_width;
        sr_worst_abort_rate = !worst_rate;
        sr_worst_p95 = !worst_p95;
      })
    tl.tl_classes

(* {1 Change-point detection}

   Two-sided Page-Hinkley. For an upward shift: with a running mean mu_t,
   accumulate m_t += x_t - mu_t - delta and track its minimum M_t; under a
   stationary series m_t drifts down (the -delta drag) together with M_t,
   while after a sustained upward step x_t - mu_t stays positive and
   m_t - M_t grows past lambda. The downward side mirrors the deviation.
   State resets after each alarm so consecutive shifts each get a mark.
   Pure fold over the series: no RNG, no clock, deterministic. *)

type mark = {
  mk_window : int;
  mk_ts : float;
  mk_series : string;
  mk_direction : [ `Up | `Down ];
}

let change_points ?delta ?lambda tl ~series:name =
  let xs = series tl name in
  let n = Array.length xs in
  let mean = if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n in
  let delta = match delta with Some d -> d | None -> 0.05 *. mean in
  let lambda = match lambda with Some l -> l | None -> 0.5 *. mean in
  if not (lambda > 0.0) then []
  else begin
    let marks = ref [] in
    let count = ref 0 and mu = ref 0.0 in
    let m_up = ref 0.0 and min_up = ref 0.0 in
    let m_dn = ref 0.0 and min_dn = ref 0.0 in
    let reset () =
      count := 0;
      mu := 0.0;
      m_up := 0.0;
      min_up := 0.0;
      m_dn := 0.0;
      min_dn := 0.0
    in
    Array.iteri
      (fun i x ->
        incr count;
        mu := !mu +. ((x -. !mu) /. float_of_int !count);
        m_up := !m_up +. (x -. !mu -. delta);
        if !m_up < !min_up then min_up := !m_up;
        m_dn := !m_dn +. (!mu -. x -. delta);
        if !m_dn < !min_dn then min_dn := !m_dn;
        let mk direction =
          marks :=
            { mk_window = i; mk_ts = float_of_int i *. tl.tl_width; mk_series = name; mk_direction = direction }
            :: !marks;
          reset ()
        in
        if !m_up -. !min_up > lambda then mk `Up
        else if !m_dn -. !min_dn > lambda then mk `Down)
      xs;
    List.rev !marks
  end
