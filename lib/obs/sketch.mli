(** Bounded heavy-hitter tracking for canonical resource ids.

    A space-saving sketch (Metwally, Agrawal & El Abbadi, "Efficient
    computation of frequent and top-k elements in data streams"): at most
    [capacity] tracked entries, each update either increments an existing
    entry or evicts the minimum-count entry and inherits its count. The
    classic guarantees follow: every entry overcounts by at most its
    recorded [st_err], [st_err <= N / capacity] (N = total updates), and any
    key whose true frequency exceeds [N / capacity] is guaranteed to be
    tracked — the top-k list is a superset of the exact heavy hitters above
    that threshold.

    Each entry carries per-resource attribution counters alongside the
    ordering count. Payload counters reset when an entry is recycled by an
    eviction, so they are exact for keys never evicted and conservative
    (undercounting) otherwise; only [st_count] carries the overcount bound.

    Purely deterministic: eviction ties break on the lexicographically
    smallest key, and {!entries} orders by (count desc, key asc), so equal
    update sequences yield byte-identical tables on any host or [-j]. *)

type stats = {
  mutable st_count : int;  (** space-saving counter (all touches) *)
  mutable st_err : int;  (** overcount bound inherited at takeover *)
  mutable st_conflicts : int;  (** rw-antidependency edges detected here *)
  mutable st_blame_in : int;  (** unsafe aborts blamed via the pivot in-edge *)
  mutable st_blame_out : int;  (** unsafe aborts blamed via the pivot out-edge *)
  mutable st_blame_fcw : int;  (** first-committer-wins aborts blocked here *)
  mutable st_lock_waits : int;  (** blocking lock acquisitions *)
  mutable st_lock_wait : float;  (** cumulative blocking sim-time, seconds *)
  mutable st_siread : int;  (** SIREAD grants (residency proxy) *)
  mutable st_promotions : int;  (** row→page promotions landing on this id *)
  mutable st_summarized : int;  (** summary-table folds touching this id *)
}

type t

(** [create ~capacity] with [capacity >= 1] (raises [Invalid_argument]
    otherwise). *)
val create : capacity:int -> t

val capacity : t -> int

(** Total updates ever applied (N), including evicted ones. *)
val total : t -> int

(** Currently tracked keys (<= capacity). *)
val cardinality : t -> int

(** Largest per-entry overcount currently tracked; always
    [<= total t / capacity t]. *)
val error_bound : t -> int

(** [touch t key] counts one occurrence and returns the (possibly fresh)
    stats cell so the caller can bump one attribution field. When the sketch
    is full and [key] untracked, the minimum-count entry is evicted
    (smallest key on ties) and its count inherited as the new entry's
    error. *)
val touch : t -> string -> stats

val find : t -> string -> stats option

(** All tracked entries, ordered by (count desc, key asc). *)
val entries : t -> (string * stats) list

(** First [k] of {!entries}. *)
val top : t -> int -> (string * stats) list

(** Fold [src] into [into] (capacities may differ; [into]'s is kept).
    Shared keys add all counters ([st_err] adds too — overcount bounds
    compose additively); fresh keys insert, evicting per the space-saving
    rule when full. Deterministic: [src] is absorbed in {!entries} order.
    Merging per-seed sketches in a fixed seed order therefore yields the
    same table on every run. *)
val merge : into:t -> t -> unit
