(** Root-cause attribution: fold abort certificates into the per-resource
    sketch and render the contention table / per-window blame series.

    Blame semantics per certificate edge role: an unsafe (SSI) abort blames
    the resource of the pivot's outgoing edge as [st_blame_out] (the edge
    that completed the dangerous structure) and the resource of the
    incoming edge as [st_blame_in] — one abort can blame up to two
    resources, one per role. First-committer-wins aborts blame the blocking
    resource as [st_blame_fcw]; those are fed live at the abort site
    ({!Obs.attrib_fcw}) and deliberately skipped here, so running
    {!blame} after a sketch-fed run never double-counts.

    Everything renders through {!Obs.res_id_escape} with fixed numeric
    formats, so equal inputs produce byte-identical output anywhere. *)

(** Fold the pivot-edge blame of the unsafe certificates into the sketch
    (each blamed resource is {!Sketch.touch}ed, so blame feeds the
    heavy-hitter ordering like every other site). *)
val blame : Sketch.t -> Obs.certificate list -> unit

(** Top-[top] entries (default all) — {!Sketch.top} with the table's
    ordering. *)
val table : ?top:int -> Sketch.t -> (string * Sketch.stats) list

(** One-line sketch summary: updates, capacity, tracked keys, the largest
    per-entry overcount and the analytic bound [N/capacity]. *)
val render_summary : Buffer.t -> Sketch.t -> unit

(** Aligned text contention table (header + one row per entry). *)
val render_table : Buffer.t -> ?top:int -> Sketch.t -> unit

(** CSV export of the same columns. *)
val to_csv : Buffer.t -> ?top:int -> Sketch.t -> unit

(** One JSON object per entry per line. *)
val to_ndjson : Buffer.t -> ?top:int -> Sketch.t -> unit

(** {1 Per-window blame series}

    The certificates folded onto the PR 8 timeline's window grid:
    [floor(ts / window)] clamped into [ceil(horizon / window)] windows
    (horizon defaults to the last certificate timestamp). *)

type wblame = {
  wb_window : int;
  wb_t0 : float;  (** window start, simulated seconds *)
  wb_resource : string;  (** raw canonical id (escape at render time) *)
  wb_in : int;  (** unsafe aborts blaming this resource via the in-edge *)
  wb_out : int;  (** ... via the out-edge *)
  wb_fcw : int;  (** FCW aborts blocked on this resource *)
}

(** Sorted by (window, resource); only (window, resource) pairs with any
    blame appear. *)
val blame_windows :
  window:float -> ?horizon:float -> Obs.certificate list -> wblame list

val windows_csv : Buffer.t -> wblame list -> unit

val windows_ndjson : Buffer.t -> wblame list -> unit
