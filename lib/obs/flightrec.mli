(** Always-on flight recorder: a fixed-capacity ring of recent events with
    anomaly triggers that freeze the ring and dump a self-contained
    post-mortem bundle.

    The ring is O(capacity) memory whatever the run length: a push over a
    full ring drops the oldest entry and counts it ({!drops}), so an
    operator can keep a recorder attached without retaining the full trace.
    Triggers fire at window boundaries while the event stream is consumed;
    the first firing freezes the ring (trigger-once) — later pushes are
    ignored and the frozen contents are exactly the events up to the end of
    the triggering window.

    Deterministic end to end: consumption is a pure fold over the stream
    (no clock, no RNG), and the bundle renders with fixed formats — the
    same seed yields byte-identical bundles anywhere. *)

type t

val create : capacity:int -> t

val capacity : t -> int

val length : t -> int

(** Oldest entries overwritten so far. *)
val drops : t -> int

val frozen : t -> bool

(** Append one event; drop-oldest over a full ring; no-op once frozen. *)
val push : t -> float -> Obs.event -> unit

val freeze : t -> unit

(** Ring contents, oldest first. *)
val contents : t -> (float * Obs.event) list

(** {1 Triggers} *)

type trigger =
  | Abort_storm of float
      (** per-window error-abort rate (aborts / (commits + aborts), the
          timeline's definition) at or above the threshold *)
  | Slo_violation of Timeline.slo
      (** any transaction class violating either target in a window *)
  | Regime of string
      (** first Page–Hinkley change point on the named timeline series
          (default parameters of {!Timeline.change_points}) *)

(** Accepted forms: ["abort_rate:X"], ["slo"] (defaults: abort rate 0.5,
    p95 0.1 s), ["slo:RATE:P95"], ["regime"] (series ["throughput"]),
    ["regime:SERIES"]. *)
val trigger_of_string : string -> (trigger, string) result

val trigger_to_string : trigger -> string

type incident = {
  in_trigger : string;  (** {!trigger_to_string} of the firing trigger *)
  in_window : int;  (** window index that fired *)
  in_ts : float;  (** end of the firing window, simulated seconds *)
  in_detail : string;  (** human-readable evidence, fixed format *)
}

(** Stream chronological [events] through a fresh recorder, evaluating
    [trigger] at every window boundary (and once at end of stream); freeze
    on the first firing. [horizon] bounds the window grid for the [Regime]
    timeline build. Returns the recorder and the incident, if any — with no
    incident the ring simply holds the last [capacity] events. *)
val run :
  capacity:int ->
  window:float ->
  ?horizon:float ->
  trigger:trigger ->
  (float * Obs.event) list ->
  Obs.certificate list ->
  t * incident option

(** Render the self-contained post-mortem bundle: trigger + incident
    header, the frozen ring (one {!Obs.event_json} line per event, drop
    counter included), the current top-[top] contention table with its
    sketch summary, and the DOT snapshot of the last certificate at or
    before the firing instant (["none"] when there is no such
    snapshot). *)
val write_bundle :
  Buffer.t ->
  recorder:t ->
  incident:incident ->
  sk:Sketch.t ->
  top:int ->
  certs:Obs.certificate list ->
  unit
