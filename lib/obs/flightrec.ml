(* Flight recorder: bounded ring of recent events + anomaly triggers that
   freeze it into a post-mortem bundle (see flightrec.mli and DESIGN.md
   "Attribution & flight recorder").

   Consumption is a pure chronological fold: the trigger state advances at
   window boundaries only, and the first firing freezes the ring before the
   next event is pushed — so the frozen contents are exactly the stream up
   to the end of the triggering window, independent of how the run was
   scheduled. *)

type t = {
  fr_cap : int;
  fr_ring : (float * Obs.event) option array;
  mutable fr_next : int; (* next write slot *)
  mutable fr_len : int;
  mutable fr_drops : int;
  mutable fr_frozen : bool;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Flightrec.create: capacity must be >= 1";
  {
    fr_cap = capacity;
    fr_ring = Array.make capacity None;
    fr_next = 0;
    fr_len = 0;
    fr_drops = 0;
    fr_frozen = false;
  }

let capacity t = t.fr_cap

let length t = t.fr_len

let drops t = t.fr_drops

let frozen t = t.fr_frozen

let push t ts e =
  if not t.fr_frozen then begin
    if t.fr_len = t.fr_cap then t.fr_drops <- t.fr_drops + 1 else t.fr_len <- t.fr_len + 1;
    t.fr_ring.(t.fr_next) <- Some (ts, e);
    t.fr_next <- (t.fr_next + 1) mod t.fr_cap
  end

let freeze t = t.fr_frozen <- true

let contents t =
  let out = ref [] in
  (* Newest entry sits just before fr_next; walk backwards fr_len slots. *)
  for i = 1 to t.fr_len do
    let slot = (t.fr_next - i + (2 * t.fr_cap)) mod t.fr_cap in
    match t.fr_ring.(slot) with Some ev -> out := ev :: !out | None -> ()
  done;
  !out

(* {1 Triggers} *)

type trigger = Abort_storm of float | Slo_violation of Timeline.slo | Regime of string

let num v = Printf.sprintf "%.9g" v

let trigger_to_string = function
  | Abort_storm x -> Printf.sprintf "abort_rate:%s" (num x)
  | Slo_violation s ->
      Printf.sprintf "slo:%s:%s" (num s.Timeline.slo_abort_rate) (num s.Timeline.slo_p95)
  | Regime series -> Printf.sprintf "regime:%s" series

let trigger_of_string spec =
  match String.split_on_char ':' spec with
  | [ "abort_rate"; x ] -> (
      match float_of_string_opt x with
      | Some v when v > 0.0 && v <= 1.0 -> Ok (Abort_storm v)
      | _ -> Error (Printf.sprintf "abort_rate threshold must be in (0,1]: %s" x))
  | [ "slo" ] -> Ok (Slo_violation { Timeline.slo_abort_rate = 0.5; slo_p95 = 0.1 })
  | [ "slo"; rate; p95 ] -> (
      match (float_of_string_opt rate, float_of_string_opt p95) with
      | Some r, Some p when r >= 0.0 && p > 0.0 ->
          Ok (Slo_violation { Timeline.slo_abort_rate = r; slo_p95 = p })
      | _ -> Error (Printf.sprintf "bad slo spec: %s" spec))
  | [ "regime" ] -> Ok (Regime "throughput")
  | [ "regime"; series ] ->
      if List.mem series Timeline.series_names then Ok (Regime series)
      else Error (Printf.sprintf "unknown timeline series: %s" series)
  | _ -> Error (Printf.sprintf "unknown trigger (want abort_rate:X | slo[:RATE:P95] | regime[:SERIES]): %s" spec)

type incident = {
  in_trigger : string;
  in_window : int;
  in_ts : float;
  in_detail : string;
}

(* Per-class accumulation for the SLO trigger (one window's worth). *)
type cls_state = { mutable cs_commits : int; mutable cs_aborts : int; cs_lat : Obs.hist }

(* Build (note, eval) for a trigger: [note] folds one event into the
   current window's state, [eval w] closes window [w] — returning the
   firing evidence if the predicate holds — and resets the state. *)
let make_trigger trigger ~window ?horizon events certs =
  match trigger with
  | Abort_storm thr ->
      let commits = ref 0 and aborts = ref 0 in
      let note _ts e =
        match e with
        | Obs.Txn_commit _ -> incr commits
        | Obs.Txn_abort { reason; _ } when reason <> "user-abort" -> incr aborts
        | _ -> ()
      in
      let eval _w =
        let c = !commits and a = !aborts in
        commits := 0;
        aborts := 0;
        if a > 0 && float_of_int a /. float_of_int (c + a) >= thr then
          Some
            (Printf.sprintf "abort-rate %s >= %s (%d error aborts / %d commits)"
               (num (float_of_int a /. float_of_int (c + a)))
               (num thr) a c)
        else None
      in
      (note, eval)
  | Slo_violation slo ->
      let tbl : (string, cls_state) Hashtbl.t = Hashtbl.create 8 in
      let state cls =
        match Hashtbl.find_opt tbl cls with
        | Some s -> s
        | None ->
            let s = { cs_commits = 0; cs_aborts = 0; cs_lat = Obs.hist_create () } in
            Hashtbl.add tbl cls s;
            s
      in
      let note _ts e =
        match e with
        | Obs.Class_outcome { cls; outcome; latency } -> (
            let s = state cls in
            match outcome with
            | "commit" | "user-abort" ->
                s.cs_commits <- s.cs_commits + 1;
                Obs.hist_add s.cs_lat latency
            | _ -> s.cs_aborts <- s.cs_aborts + 1)
        | _ -> ()
      in
      let eval _w =
        let classes =
          Hashtbl.fold (fun cls s acc -> (cls, s) :: acc) tbl []
          |> List.sort (fun (a, _) (b, _) -> compare a b)
        in
        Hashtbl.reset tbl;
        List.fold_left
          (fun acc (cls, s) ->
            match acc with
            | Some _ -> acc
            | None ->
                if s.cs_commits + s.cs_aborts = 0 then None
                else
                  let rate =
                    if s.cs_commits > 0 then
                      float_of_int s.cs_aborts /. float_of_int s.cs_commits
                    else if s.cs_aborts > 0 then infinity
                    else 0.0
                  in
                  let p95 =
                    if Obs.hist_count s.cs_lat = 0 then 0.0
                    else Obs.hist_percentile s.cs_lat 0.95
                  in
                  if rate > slo.Timeline.slo_abort_rate then
                    Some
                      (Printf.sprintf "class %s abort-rate %s > %s" cls (num rate)
                         (num slo.Timeline.slo_abort_rate))
                  else if p95 > slo.Timeline.slo_p95 then
                    Some
                      (Printf.sprintf "class %s p95 %s > %s" cls (num p95)
                         (num slo.Timeline.slo_p95))
                  else None)
          None classes
      in
      (note, eval)
  | Regime series ->
      (* Page–Hinkley is itself a streaming fold; running it over the built
         timeline first and replaying to the earliest mark gives the same
         firing window deterministically. *)
      let tl = Timeline.of_events ~window ?horizon events certs in
      let mark =
        match Timeline.change_points tl ~series with m :: _ -> Some m | [] -> None
      in
      let note _ts _e = () in
      let eval w =
        match mark with
        | Some mk when w >= mk.Timeline.mk_window ->
            Some
              (Printf.sprintf "page-hinkley %s mark on %s at window %d"
                 (match mk.Timeline.mk_direction with `Up -> "up" | `Down -> "down")
                 series mk.Timeline.mk_window)
        | _ -> None
      in
      (note, eval)

let run ~capacity ~window ?horizon ~trigger events certs =
  if not (window > 0.0) then invalid_arg "Flightrec.run: window width must be positive";
  let rc = create ~capacity in
  let idx ts =
    let i = int_of_float (Float.floor (ts /. window)) in
    if i < 0 then 0 else i
  in
  let note, eval = make_trigger trigger ~window ?horizon events certs in
  let fired = ref None in
  let cur = ref 0 in
  (* Close (evaluate + reset) every window in [!cur, target). *)
  let close_up_to target =
    while !fired = None && !cur < target do
      (match eval !cur with
      | Some detail ->
          freeze rc;
          fired :=
            Some
              {
                in_trigger = trigger_to_string trigger;
                in_window = !cur;
                in_ts = float_of_int (!cur + 1) *. window;
                in_detail = detail;
              }
      | None -> ());
      incr cur
    done
  in
  List.iter
    (fun (ts, e) ->
      if !fired = None then begin
        close_up_to (idx ts);
        if !fired = None then begin
          push rc ts e;
          note ts e
        end
      end)
    events;
  if !fired = None then close_up_to (!cur + 1);
  (rc, !fired)

(* {1 Bundle} *)

let write_bundle buf ~recorder ~incident ~sk ~top ~certs =
  Printf.bprintf buf "# flight-recorder post-mortem bundle\n";
  Printf.bprintf buf "trigger: %s\n" incident.in_trigger;
  Printf.bprintf buf "fired: window %d t=%s %s\n" incident.in_window (num incident.in_ts)
    incident.in_detail;
  Printf.bprintf buf "ring: %d events, %d dropped (capacity %d)\n" (length recorder)
    (drops recorder) (capacity recorder);
  Buffer.add_string buf "--- ring ---\n";
  List.iter
    (fun ev ->
      Buffer.add_string buf (Obs.event_json ev);
      Buffer.add_char buf '\n')
    (contents recorder);
  Buffer.add_string buf "--- contention ---\n";
  Attrib.render_summary buf sk;
  Attrib.render_table buf ~top sk;
  Buffer.add_string buf "--- dot ---\n";
  let dot =
    List.fold_left
      (fun acc c -> if c.Obs.c_ts <= incident.in_ts && c.Obs.c_dot <> "" then Some c.Obs.c_dot else acc)
      None certs
  in
  match dot with
  | Some d ->
      Buffer.add_string buf d;
      if String.length d = 0 || d.[String.length d - 1] <> '\n' then Buffer.add_char buf '\n'
  | None -> Buffer.add_string buf "none\n"
