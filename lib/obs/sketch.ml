(* Space-saving heavy-hitter sketch over canonical resource ids (see
   sketch.mli and DESIGN.md "Attribution & flight recorder").

   The stream-summary structure of the original paper keeps buckets of
   equal-count entries for O(1) eviction; at the capacities used here
   (hundreds of entries) a plain hash table with an O(capacity) minimum
   scan on eviction is simpler and fast enough — the scan only runs when
   the table is full AND the key is untracked, which on a skewed workload
   is the rare case by construction. *)

type stats = {
  mutable st_count : int;
  mutable st_err : int;
  mutable st_conflicts : int;
  mutable st_blame_in : int;
  mutable st_blame_out : int;
  mutable st_blame_fcw : int;
  mutable st_lock_waits : int;
  mutable st_lock_wait : float;
  mutable st_siread : int;
  mutable st_promotions : int;
  mutable st_summarized : int;
}

type t = {
  sk_capacity : int;
  sk_tbl : (string, stats) Hashtbl.t;
  mutable sk_total : int;
}

let stats_create ~count ~err =
  {
    st_count = count;
    st_err = err;
    st_conflicts = 0;
    st_blame_in = 0;
    st_blame_out = 0;
    st_blame_fcw = 0;
    st_lock_waits = 0;
    st_lock_wait = 0.0;
    st_siread = 0;
    st_promotions = 0;
    st_summarized = 0;
  }

let create ~capacity =
  if capacity < 1 then invalid_arg "Sketch.create: capacity must be >= 1";
  { sk_capacity = capacity; sk_tbl = Hashtbl.create capacity; sk_total = 0 }

let capacity t = t.sk_capacity

let total t = t.sk_total

let cardinality t = Hashtbl.length t.sk_tbl

let error_bound t = Hashtbl.fold (fun _ s acc -> max acc s.st_err) t.sk_tbl 0

(* Minimum-count entry, smallest key on ties. The full fold makes the
   choice independent of hash-table iteration order. *)
let victim t =
  Hashtbl.fold
    (fun k s acc ->
      match acc with
      | Some (k', s')
        when s'.st_count < s.st_count || (s'.st_count = s.st_count && k' < k) ->
          acc
      | _ -> Some (k, s))
    t.sk_tbl None

(* Insert [key] carrying [add] occurrences (and [err] pre-existing
   overcount), evicting per the space-saving rule when full. Shared by
   [touch] (add = 1) and [merge]. *)
let insert t key ~add ~err =
  if Hashtbl.length t.sk_tbl < t.sk_capacity then begin
    let s = stats_create ~count:add ~err in
    Hashtbl.add t.sk_tbl key s;
    s
  end
  else
    match victim t with
    | None -> assert false (* capacity >= 1 and the table is full *)
    | Some (vk, vs) ->
        Hashtbl.remove t.sk_tbl vk;
        (* Takeover: the newcomer inherits the evicted minimum count, which
           becomes (part of) its overcount bound. *)
        let s = stats_create ~count:(vs.st_count + add) ~err:(vs.st_count + err) in
        Hashtbl.add t.sk_tbl key s;
        s

let touch t key =
  t.sk_total <- t.sk_total + 1;
  match Hashtbl.find_opt t.sk_tbl key with
  | Some s ->
      s.st_count <- s.st_count + 1;
      s
  | None -> insert t key ~add:1 ~err:0

let find t key = Hashtbl.find_opt t.sk_tbl key

let entries t =
  Hashtbl.fold (fun k s acc -> (k, s) :: acc) t.sk_tbl []
  |> List.sort (fun (ka, sa) (kb, sb) ->
         if sa.st_count <> sb.st_count then compare sb.st_count sa.st_count
         else compare ka kb)

let top t k = List.filteri (fun i _ -> i < k) (entries t)

let add_into dst src =
  dst.st_count <- dst.st_count + src.st_count;
  dst.st_err <- dst.st_err + src.st_err;
  dst.st_conflicts <- dst.st_conflicts + src.st_conflicts;
  dst.st_blame_in <- dst.st_blame_in + src.st_blame_in;
  dst.st_blame_out <- dst.st_blame_out + src.st_blame_out;
  dst.st_blame_fcw <- dst.st_blame_fcw + src.st_blame_fcw;
  dst.st_lock_waits <- dst.st_lock_waits + src.st_lock_waits;
  dst.st_lock_wait <- dst.st_lock_wait +. src.st_lock_wait;
  dst.st_siread <- dst.st_siread + src.st_siread;
  dst.st_promotions <- dst.st_promotions + src.st_promotions;
  dst.st_summarized <- dst.st_summarized + src.st_summarized

let merge ~into src =
  into.sk_total <- into.sk_total + src.sk_total;
  List.iter
    (fun (key, s) ->
      match Hashtbl.find_opt into.sk_tbl key with
      | Some dst -> add_into dst s
      | None ->
          let dst = insert into key ~add:s.st_count ~err:s.st_err in
          (* [insert] seeded count and err; copy the payload on top. *)
          dst.st_conflicts <- s.st_conflicts;
          dst.st_blame_in <- s.st_blame_in;
          dst.st_blame_out <- s.st_blame_out;
          dst.st_blame_fcw <- s.st_blame_fcw;
          dst.st_lock_waits <- s.st_lock_waits;
          dst.st_lock_wait <- s.st_lock_wait;
          dst.st_siread <- s.st_siread;
          dst.st_promotions <- s.st_promotions;
          dst.st_summarized <- s.st_summarized)
    (entries src)
