(* TPC-C++ (§5.3): the TPC-C schema and five transactions, plus the Credit
   Check transaction that makes the mix non-serializable under SI.

   Simplifications follow §5.3.1: no terminal emulation or think times, no
   History table, total throughput reported (not tpmC), the constant w_tax
   cached client-side (so New Order does not read the Warehouse row), and an
   option to skip the year-to-date updates in Warehouse/District (which
   otherwise create write-write hotspots between Payment transactions).

   One further substitution, recorded in DESIGN.md: the "standard" data
   scale is reduced 10x (300 customers/district, 5000 items) so a simulated
   run fits in memory; the paper's own "tiny" scale (100 customers/district,
   1000 items) is exact. Buffer-pool misses for the large configurations are
   modelled by the engine's [read_miss] disk model rather than by data
   volume. Delivery processes one district's oldest order per transaction
   (the simplification of §2.8.1), giving the DLVY1/DLVY2 split of the SDG;
   Payment looks customers up by primary key only (TPC-C's 60%% by-last-name
   path is omitted, as is its secondary index). *)

open Core

(* {1 Schema} *)

let warehouse = "tc_warehouse" (* w            -> ytd *)

let district = "tc_district" (* w:d          -> next_o_id|ytd *)

let customer = "tc_customer" (* w:d:c        -> balance|credit_lim|delivery_cnt *)

(* The customer's credit status lives in its own table: §5.3.3 notes that
   with row-level locking the Credit Check / Payment conflicts would be
   write-write unless c_credit and c_balance are partitioned apart, and the
   TPC-C spec explicitly permits partitioning the Customer table. *)
let customer_credit = "tc_cust_credit" (* w:d:c -> "GC" | "BC" *)

let item = "tc_item" (* i            -> price *)

let stock = "tc_stock" (* w:i          -> qty|ytd|order_cnt *)

let orders = "tc_orders" (* w:d:o        -> c|carrier|ol_cnt *)

let new_order = "tc_new_order" (* w:d:o        -> "1" *)

let order_line = "tc_order_line" (* w:d:o:n      -> i|qty|amount|delivered *)

let cust_orders = "tc_cust_orders" (* w:d:c:o      -> "1" (customer order index) *)

let all_tables =
  [
    warehouse;
    district;
    customer;
    customer_credit;
    item;
    stock;
    orders;
    new_order;
    order_line;
    cust_orders;
  ]

(* {1 Keys and records} *)

let wkey w = Printf.sprintf "w%03d" w

let dkey w d = Printf.sprintf "w%03d:d%02d" w d

let ckey w d c = Printf.sprintf "w%03d:d%02d:c%05d" w d c

let ikey i = Printf.sprintf "i%06d" i

let skey w i = Printf.sprintf "w%03d:%s" w (ikey i)

let okey w d o = Printf.sprintf "w%03d:d%02d:o%08d" w d o

let olkey w d o n = Printf.sprintf "%s:%02d" (okey w d o) n

let cokey w d c o = Printf.sprintf "%s:o%08d" (ckey w d c) o

let fields s = String.split_on_char '|' s

let join = String.concat "|"

(* district *)
let district_row ~next_o ~ytd = join [ string_of_int next_o; string_of_int ytd ]

let parse_district s =
  match fields s with
  | [ next_o; ytd ] -> (int_of_string next_o, int_of_string ytd)
  | _ -> invalid_arg "district row"

(* customer: balance is money owed (grows with deliveries, shrinks with
   payments). *)
let customer_row ~balance ~credit_lim ~delivery_cnt =
  join [ string_of_int balance; string_of_int credit_lim; string_of_int delivery_cnt ]

let parse_customer s =
  match fields s with
  | [ b; lim; dc ] -> (int_of_string b, int_of_string lim, int_of_string dc)
  | _ -> invalid_arg "customer row"

let stock_row ~qty ~ytd ~cnt = join [ string_of_int qty; string_of_int ytd; string_of_int cnt ]

let parse_stock s =
  match fields s with
  | [ q; y; c ] -> (int_of_string q, int_of_string y, int_of_string c)
  | _ -> invalid_arg "stock row"

let order_row ~c ~carrier ~ol_cnt = join [ string_of_int c; string_of_int carrier; string_of_int ol_cnt ]

let parse_order s =
  match fields s with
  | [ c; car; n ] -> (int_of_string c, int_of_string car, int_of_string n)
  | _ -> invalid_arg "order row"

let ol_row ~i ~qty ~amount ~delivered =
  join [ string_of_int i; string_of_int qty; string_of_int amount; (if delivered then "1" else "0") ]

let parse_ol s =
  match fields s with
  | [ i; q; a; d ] -> (int_of_string i, int_of_string q, int_of_string a, d = "1")
  | _ -> invalid_arg "order line row"

(* {1 Data scaling (§5.3.6)} *)

type scale = {
  warehouses : int;
  districts : int;
  customers_per_district : int;
  items : int;
  initial_orders : int; (* preloaded orders per district *)
}

(* Standard scale, reduced 10x from the TPC-C cardinalities (see header). *)
let standard ~warehouses =
  { warehouses; districts = 10; customers_per_district = 300; items = 5000; initial_orders = 30 }

(* The paper's tiny scale: customers / 30, items / 100 (§5.3.6). *)
let tiny ~warehouses =
  { warehouses; districts = 10; customers_per_district = 100; items = 1000; initial_orders = 10 }

let setup db ~(scale : scale) () =
  List.iter (fun t -> ignore (Db.create_table db t)) all_tables;
  let st = Random.State.make [| 0x7ACC |] in
  Db.load db item (List.init scale.items (fun i -> (ikey i, string_of_int (100 + Random.State.int st 9900))));
  for w = 0 to scale.warehouses - 1 do
    Db.load db warehouse [ (wkey w, "0") ];
    Db.load db stock
      (List.init scale.items (fun i -> (skey w i, stock_row ~qty:(10 + Random.State.int st 91) ~ytd:0 ~cnt:0)));
    for d = 0 to scale.districts - 1 do
      Db.load db district [ (dkey w d, district_row ~next_o:(scale.initial_orders + 1) ~ytd:0) ];
      Db.load db customer
        (List.init scale.customers_per_district (fun c ->
             (ckey w d c, customer_row ~balance:0 ~credit_lim:50_000 ~delivery_cnt:0)));
      Db.load db customer_credit
        (List.init scale.customers_per_district (fun c -> (ckey w d c, "GC")));
      (* Preloaded orders: the most recent third are undelivered. *)
      let order_rows = ref [] and no_rows = ref [] and ol_rows = ref [] and co_rows = ref [] in
      for o = 1 to scale.initial_orders do
        let c = Random.State.int st scale.customers_per_district in
        let ol_cnt = 5 + Random.State.int st 11 in
        let delivered = o <= scale.initial_orders * 2 / 3 in
        order_rows :=
          (okey w d o, order_row ~c ~carrier:(if delivered then 1 else 0) ~ol_cnt) :: !order_rows;
        co_rows := (cokey w d c o, "1") :: !co_rows;
        if not delivered then no_rows := (okey w d o, "1") :: !no_rows;
        for n = 1 to ol_cnt do
          let i = Random.State.int st scale.items in
          let qty = 1 + Random.State.int st 10 in
          ol_rows := (olkey w d o n, ol_row ~i ~qty ~amount:(qty * 100) ~delivered) :: !ol_rows
        done
      done;
      Db.load db orders !order_rows;
      Db.load db new_order !no_rows;
      Db.load db order_line !ol_rows;
      Db.load db cust_orders !co_rows
    done
  done

(* {1 Helpers} *)

let read_exn = Txn.read_exn

let rand_w st (s : scale) = Random.State.int st s.warehouses

let rand_d st (s : scale) = Random.State.int st s.districts

(* TPC-C uses a non-uniform customer distribution; uniform keeps the
   contention profile close enough for the shapes we reproduce. *)
let rand_c st (s : scale) = Random.State.int st s.customers_per_district

(* {1 Transactions} *)

(* New Order (NEWO): ~43% of the mix. Reads the customer's credit status
   (the edge that closes the TPC-C++ cycle, §5.3.3), takes an order id from
   the district hotspot, inserts the order and its lines, and updates stock
   quantities. 1% of orders roll back (invalid item, per the TPC-C spec). *)
let new_order_txn (s : scale) st t =
  let w = rand_w st s and d = rand_d st s and c = rand_c st s in
  let ol_cnt = 5 + Random.State.int st 11 in
  (* The district update comes first so that the transaction's read view is
     chosen after the district lock is granted (§4.5): queued New Orders on
     the same district then never abort under first-committer-wins. *)
  let next_o, ytd = parse_district (Txn.read_for_update_exn t district (dkey w d)) in
  Txn.write t district (dkey w d) (district_row ~next_o:(next_o + 1) ~ytd);
  let credit = read_exn t customer_credit (ckey w d c) in
  ignore credit (* displayed on the operator terminal (Example 5) *);
  if Random.State.int st 100 = 0 then raise (Types.Abort Types.User_abort);
  let o = next_o in
  Txn.insert t orders (okey w d o) (order_row ~c ~carrier:0 ~ol_cnt);
  Txn.insert t new_order (okey w d o) "1";
  Txn.insert t cust_orders (cokey w d c o) "1";
  for n = 1 to ol_cnt do
    let i = Random.State.int st s.items in
    let supply_w =
      if s.warehouses > 1 && Random.State.int st 100 = 0 then rand_w st s else w
    in
    let price = int_of_string (read_exn t item (ikey i)) in
    let qty = 1 + Random.State.int st 10 in
    let sq, sytd, scnt = parse_stock (Txn.read_for_update_exn t stock (skey supply_w i)) in
    let sq' = if sq - qty >= 10 then sq - qty else sq - qty + 91 in
    Txn.write t stock (skey supply_w i) (stock_row ~qty:sq' ~ytd:(sytd + qty) ~cnt:(scnt + 1));
    Txn.insert t order_line (olkey w d o n) (ol_row ~i ~qty ~amount:(price * qty) ~delivered:false)
  done

(* Payment (PAY): ~43%. Reduces the customer's owed balance; optionally
   updates the warehouse and district year-to-date hotspots (§5.3.1). *)
let payment_txn ?(skip_ytd = false) (s : scale) st t =
  let w = rand_w st s and d = rand_d st s and c = rand_c st s in
  let amount = 100 + Random.State.int st 4900 in
  if not skip_ytd then begin
    let wytd = int_of_string (Txn.read_for_update_exn t warehouse (wkey w)) in
    Txn.write t warehouse (wkey w) (string_of_int (wytd + amount));
    let next_o, dytd = parse_district (Txn.read_for_update_exn t district (dkey w d)) in
    Txn.write t district (dkey w d) (district_row ~next_o ~ytd:(dytd + amount))
  end;
  let balance, lim, dc = parse_customer (Txn.read_for_update_exn t customer (ckey w d c)) in
  Txn.write t customer (ckey w d c)
    (customer_row ~balance:(balance - amount) ~credit_lim:lim ~delivery_cnt:dc)

(* Order Status (OSTAT): 4%, read-only. Latest order of a customer and its
   lines. *)
let order_status_txn (s : scale) st t =
  let w = rand_w st s and d = rand_d st s and c = rand_c st s in
  ignore (read_exn t customer (ckey w d c));
  let my_orders = Txn.scan ~lo:(cokey w d c 0) ~hi:(cokey w d c 99_999_999) t cust_orders in
  match List.rev my_orders with
  | [] -> ()
  | (co_key, _) :: _ ->
      (* recover o from the index key "w:d:c:oNNNNNNNN" *)
      let o = int_of_string (String.sub co_key (String.length co_key - 8) 8) in
      let _, _, ol_cnt = parse_order (read_exn t orders (okey w d o)) in
      for n = 1 to ol_cnt do
        ignore (read_exn t order_line (olkey w d o n))
      done

(* Delivery (DLVY): 4%. One district's oldest undelivered order (§2.8.1's
   one-order simplification); DLVY1 = nothing to deliver. *)
let delivery_txn (s : scale) st t =
  let w = rand_w st s and d = rand_d st s in
  let carrier = 1 + Random.State.int st 10 in
  match Txn.scan ~lo:(okey w d 0) ~hi:(okey w d 99_999_999) ~limit:1 t new_order with
  | [] -> () (* DLVY1 *)
  | (no_key, _) :: _ ->
      let o = int_of_string (String.sub no_key (String.length no_key - 8) 8) in
      ignore (Txn.delete t new_order no_key);
      let c, _, ol_cnt = parse_order (Txn.read_for_update_exn t orders (okey w d o)) in
      Txn.write t orders (okey w d o) (order_row ~c ~carrier ~ol_cnt);
      let total = ref 0 in
      for n = 1 to ol_cnt do
        let i, qty, amount, _ =
          parse_ol (Txn.read_for_update_exn t order_line (olkey w d o n))
        in
        total := !total + amount;
        Txn.write t order_line (olkey w d o n) (ol_row ~i ~qty ~amount ~delivered:true)
      done;
      let balance, lim, dc = parse_customer (Txn.read_for_update_exn t customer (ckey w d c)) in
      Txn.write t customer (ckey w d c)
        (customer_row ~balance:(balance + !total) ~credit_lim:lim ~delivery_cnt:(dc + 1))

(* Stock Level (SLEV): 4%, read-only. Distinct items in the district's last
   20 orders with stock below a threshold. *)
let stock_level_txn (s : scale) st t =
  let w = rand_w st s and d = rand_d st s in
  let threshold = 10 + Random.State.int st 11 in
  let next_o, _ = parse_district (read_exn t district (dkey w d)) in
  let lo_o = max 1 (next_o - 20) in
  let lines =
    Txn.scan ~lo:(olkey w d lo_o 0) ~hi:(olkey w d (next_o - 1) 99) t order_line
  in
  let low = Hashtbl.create 32 in
  List.iter
    (fun (_, v) ->
      let i, _, _, _ = parse_ol v in
      if not (Hashtbl.mem low i) then begin
        let q, _, _ = parse_stock (read_exn t stock (skey w i)) in
        if q < threshold then Hashtbl.replace low i ()
      end)
    lines;
  ignore (Hashtbl.length low)

(* Credit Check (CCHECK, Fig 5.1): 4% in TPC-C++. Sums the customer's
   undelivered new-order amounts, adds the owed balance, and updates the
   credit status — the transaction that creates the dangerous structures of
   Fig 5.3. *)
let credit_check_txn (s : scale) st t =
  let w = rand_w st s and d = rand_d st s and c = rand_c st s in
  (* Plain (non-locking) read of the balance: the vulnerable CCHECK -> PAY /
     CCHECK -> DLVY2 edges of Fig 5.3. *)
  let balance, lim, _ = parse_customer (read_exn t customer (ckey w d c)) in
  let my_orders = Txn.scan ~lo:(cokey w d c 0) ~hi:(cokey w d c 99_999_999) t cust_orders in
  let neworder_balance = ref 0 in
  List.iter
    (fun (co_key, _) ->
      let o = int_of_string (String.sub co_key (String.length co_key - 8) 8) in
      match Txn.read t new_order (okey w d o) with
      | None -> ()
      | Some _ ->
          let _, _, ol_cnt = parse_order (read_exn t orders (okey w d o)) in
          for n = 1 to ol_cnt do
            let _, _, amount, _ = parse_ol (read_exn t order_line (olkey w d o n)) in
            neworder_balance := !neworder_balance + amount
          done)
    my_orders;
  let credit = if balance + !neworder_balance > lim then "BC" else "GC" in
  Txn.write t customer_credit (ckey w d c) credit

(* {1 Mixes} *)

(* §5.3.4: 41% NEWO, 41% PAY, 4% each CCHECK, DLVY, OSTAT, SLEV. Setting
   [credit_check:false] gives plain TPC-C proportions (43/43/4/4/4). *)
let mix ?(credit_check = true) ?(skip_ytd = false) (s : scale) =
  let base w name f = Driver.program ~weight:w name f in
  let newo_pay_weight = if credit_check then 41.0 else 43.0 in
  [
    base newo_pay_weight "NEWO" (fun st t -> new_order_txn s st t);
    base newo_pay_weight "PAY" (fun st t -> payment_txn ~skip_ytd s st t);
    base 4.0 "DLVY" (fun st t -> delivery_txn s st t);
    Driver.program ~weight:4.0 ~read_only:true "OSTAT" (fun st t -> order_status_txn s st t);
    Driver.program ~weight:4.0 ~read_only:true "SLEV" (fun st t -> stock_level_txn s st t);
  ]
  @ (if credit_check then [ base 4.0 "CCHECK" (fun st t -> credit_check_txn s st t) ] else [])

(* §5.3.5: the Stock Level mix — 10 SLEV per NEWO, isolating the
   read-write conflict between them. *)
let stock_level_mix (s : scale) =
  [
    Driver.program ~weight:1.0 "NEWO" (fun st t -> new_order_txn s st t);
    Driver.program ~weight:10.0 ~read_only:true "SLEV" (fun st t -> stock_level_txn s st t);
  ]

(* {1 Consistency checks (TPC-C clause 3.3-style)} *)

exception Inconsistent of string

let latest_of db table key =
  match Mvstore.find_chain (Db.table_exn db table) key with
  | None -> None
  | Some chain -> ( match Mvstore.latest chain with Some { Mvstore.value; _ } -> value | None -> None)

(* Count of live (not deleted) rows of [table] in the inclusive key range,
   judged on the latest committed version of each chain. *)
let count_live db table ~lo ~hi =
  let n = ref 0 in
  ignore
    (Mvstore.scan_chains (Db.table_exn db table) ~lo ~hi (fun _ chain ->
         match Mvstore.latest chain with
         | Some { Mvstore.value = Some _; _ } -> incr n
         | _ -> ()));
  !n

(* Verify structural invariants of the final database state:
   - every order id below a district's next_o_id exists, none at or above;
   - every new_order entry points at an existing, undelivered order;
   - every order has exactly ol_cnt order lines;
   - delivered orders' lines are all marked delivered;
   - table cardinalities agree (TPC-C clause 3.3.2.2-3.3.2.5 shapes): per
     district, [orders] holds exactly next_o_id - 1 rows, [new_order]
     exactly the undelivered ones, and [order_line] exactly the sum of the
     orders' ol_cnt. *)
let check_consistency db ~(scale : scale) =
  for w = 0 to scale.warehouses - 1 do
    for d = 0 to scale.districts - 1 do
      let next_o, _ =
        match latest_of db district (dkey w d) with
        | Some v -> parse_district v
        | None -> raise (Inconsistent "missing district")
      in
      let undelivered = ref 0 and lines_expected = ref 0 in
      for o = 1 to next_o - 1 do
        match latest_of db orders (okey w d o) with
        | None -> raise (Inconsistent (Printf.sprintf "missing order %s" (okey w d o)))
        | Some v ->
            let _, carrier, ol_cnt = parse_order v in
            let delivered = carrier > 0 in
            if delivered && latest_of db new_order (okey w d o) <> None then
              raise (Inconsistent "delivered order still in new_order");
            if not delivered then incr undelivered;
            lines_expected := !lines_expected + ol_cnt;
            for n = 1 to ol_cnt do
              match latest_of db order_line (olkey w d o n) with
              | None -> raise (Inconsistent (Printf.sprintf "missing order line %s" (olkey w d o n)))
              | Some lv ->
                  let _, _, _, ld = parse_ol lv in
                  if delivered && not ld then
                    raise (Inconsistent "delivered order with undelivered line")
            done
      done;
      if latest_of db orders (okey w d next_o) <> None then
        raise (Inconsistent "order beyond next_o_id");
      let lo = okey w d 0 and hi = okey w d 99_999_999 in
      let n_orders = count_live db orders ~lo ~hi in
      if n_orders <> next_o - 1 then
        raise
          (Inconsistent
             (Printf.sprintf "%s: %d orders, next_o_id %d" (dkey w d) n_orders next_o));
      let n_new = count_live db new_order ~lo ~hi in
      if n_new <> !undelivered then
        raise
          (Inconsistent
             (Printf.sprintf "%s: %d new_order rows, %d undelivered orders" (dkey w d) n_new
                !undelivered));
      let n_lines = count_live db order_line ~lo:(olkey w d 0 0) ~hi:(olkey w d 99_999_999 99) in
      if n_lines <> !lines_expected then
        raise
          (Inconsistent
             (Printf.sprintf "%s: %d order lines, sum of ol_cnt %d" (dkey w d) n_lines
                !lines_expected))
    done
  done

(* The money invariant (TPC-C clause 3.3.2.1): each warehouse's
   year-to-date equals the sum of its districts' — Payment updates both in
   one transaction, so any isolation level that prevents lost updates must
   preserve the equality (under [skip_ytd] both sides stay zero). *)
let check_ytd db ~(scale : scale) =
  for w = 0 to scale.warehouses - 1 do
    let wytd =
      match latest_of db warehouse (wkey w) with
      | Some v -> int_of_string v
      | None -> raise (Inconsistent "missing warehouse")
    in
    let dytd = ref 0 in
    for d = 0 to scale.districts - 1 do
      match latest_of db district (dkey w d) with
      | Some v -> dytd := !dytd + snd (parse_district v)
      | None -> raise (Inconsistent "missing district")
    done;
    if wytd <> !dytd then
      raise
        (Inconsistent
           (Printf.sprintf "%s: warehouse ytd %d <> sum of district ytds %d" (wkey w) wytd !dytd))
  done
