(** TPC-C++ (§5.3): the TPC-C schema and transactions plus the Credit Check
    transaction that makes the mix non-serializable under SI.

    Simplifications per §5.3.1 and DESIGN.md: no terminal emulation or
    History table, w_tax cached, optional year-to-date updates, Delivery
    handles one district's oldest order per transaction, c_credit
    partitioned into its own table (§5.3.3), and the "standard" scale
    reduced 10x (the paper's "tiny" scale is exact). *)

open Core

(** {1 Tables} *)

val warehouse : string

val district : string

val customer : string

(** Credit status, partitioned from the customer row (§5.3.3). *)
val customer_credit : string

val item : string

val stock : string

val orders : string

val new_order : string

val order_line : string

(** Secondary index: customer -> order ids. *)
val cust_orders : string

val all_tables : string list

(** {1 Keys and records} *)

val wkey : int -> string

val dkey : int -> int -> string

val ckey : int -> int -> int -> string

val ikey : int -> string

val skey : int -> int -> string

val okey : int -> int -> int -> string

val olkey : int -> int -> int -> int -> string

val cokey : int -> int -> int -> int -> string

val district_row : next_o:int -> ytd:int -> string

val parse_district : string -> int * int

val customer_row : balance:int -> credit_lim:int -> delivery_cnt:int -> string

(** (balance, credit_lim, delivery_cnt) *)
val parse_customer : string -> int * int * int

val stock_row : qty:int -> ytd:int -> cnt:int -> string

val parse_stock : string -> int * int * int

val order_row : c:int -> carrier:int -> ol_cnt:int -> string

val parse_order : string -> int * int * int

val ol_row : i:int -> qty:int -> amount:int -> delivered:bool -> string

val parse_ol : string -> int * int * int * bool

(** {1 Data scaling (§5.3.6)} *)

type scale = {
  warehouses : int;
  districts : int;
  customers_per_district : int;
  items : int;
  initial_orders : int;
}

(** TPC-C cardinalities reduced 10x (see module header). *)
val standard : warehouses:int -> scale

(** The paper's tiny scale: customers / 30, items / 100 — exact. *)
val tiny : warehouses:int -> scale

val setup : Db.t -> scale:scale -> unit -> unit

(** {1 Transactions} (run inside a transaction; may raise Abort) *)

val new_order_txn : scale -> Random.State.t -> Txn.t -> unit

val payment_txn : ?skip_ytd:bool -> scale -> Random.State.t -> Txn.t -> unit

val order_status_txn : scale -> Random.State.t -> Txn.t -> unit

val delivery_txn : scale -> Random.State.t -> Txn.t -> unit

val stock_level_txn : scale -> Random.State.t -> Txn.t -> unit

(** Fig 5.1: sums the customer's undelivered order amounts plus the owed
    balance and updates the credit status — the §5.3.3 pivot. *)
val credit_check_txn : scale -> Random.State.t -> Txn.t -> unit

(** {1 Mixes} *)

(** §5.3.4 proportions (41/41/4/4/4/4); [credit_check:false] gives plain
    TPC-C; [skip_ytd] removes the Payment hotspots (§5.3.1). *)
val mix : ?credit_check:bool -> ?skip_ytd:bool -> scale -> Driver.program list

(** §5.3.5: 10 Stock Level per New Order. *)
val stock_level_mix : scale -> Driver.program list

(** {1 Consistency} *)

exception Inconsistent of string

(** TPC-C clause-3.3-style structural checks on the final state: order ids
    dense below each district counter, new_order entries undelivered, order
    lines complete and delivery flags consistent, and table cardinalities
    matching (orders = next_o_id - 1 per district, new_order = undelivered
    orders, order_line = sum of ol_cnt). *)
val check_consistency : Db.t -> scale:scale -> unit

(** Clause 3.3.2.1: warehouse year-to-date = sum of its districts'. *)
val check_ytd : Db.t -> scale:scale -> unit
