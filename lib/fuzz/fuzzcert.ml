(* Certificate coverage oracle: couples abort provenance to the fuzzer.

   A certified run executes a fuzz case once at SSI with a provenance sink
   attached, collecting the abort certificates the engine emits. Two
   properties are then checked against each case:

   - Oracle containment: every row-level rw edge cited by an [Ssi_pivot]
     certificate whose two endpoints both appear in the committed SSI
     history must exist as an Rw edge in the MVSG the offline checker
     builds from that same history. The runtime detector is conservative
     (it may cite edges involving aborted transactions, gap or page
     resources, or an Rfu writer that never wrote — those are filtered,
     not matched), but it must never invent a row antidependency between
     two committed transactions that the after-the-fact graph lacks.

   - Replay: the case's [Fuzzcase] codec line, parsed back and re-run,
     must reproduce byte-identical outcomes, the same history digest and
     the same certificate shapes in the same order. This makes every
     certificate a self-contained repro: the [repro] line in its JSON
     export replays to the same abort. *)

open Core.Types

(* Run one case at SSI with abort provenance enabled. Returns the engine
   result plus the certificates in emission order. *)
let certified_run (c : Fuzzcase.t) : Interleave.result * Obs.certificate list =
  let config = Fuzzcase.config_of_point c.Fuzzcase.cfg in
  let order = Fuzzcase.schedule_ops c.Fuzzcase.specs c.Fuzzcase.schedule in
  let obs = Obs.create ~trace:false ~metrics:false ~provenance:true () in
  let r =
    Interleave.run_interleaving ~config ~obs ~init:c.Fuzzcase.init ~ro:c.Fuzzcase.ro
      ~isolation:Serializable c.Fuzzcase.specs order
  in
  (r, Obs.certs obs)

(* "r/<table>/<key>" -> Some (table, key). *)
let row_of_resource res =
  let n = String.length res in
  if n < 2 || res.[0] <> 'r' || res.[1] <> '/' then None
  else
    match String.index_from_opt res 2 '/' with
    | None -> None
    | Some i -> Some (String.sub res 2 (i - 2), String.sub res (i + 1) (n - i - 1))

type edge_verdict =
  | Edge_matched  (** a matching Rw edge exists in the MVSG *)
  | Edge_skipped of string  (** not checkable against the oracle; why *)
  | Edge_missing of string  (** checkable but absent: an engine bug *)

let edge_verdict_is_missing = function Edge_missing _ -> true | _ -> false

(* Check one certificate edge against the MVSG of the committed history. *)
let check_edge ~history ~mvsg_edges (e : Obs.cert_edge) : edge_verdict =
  let committed id = List.exists (fun r -> r.h_id = id) history in
  let wrote id (table, key) =
    List.exists
      (fun r -> r.h_id = id && List.exists (fun (t, k) -> t = table && k = key) r.h_writes)
      history
  in
  match row_of_resource e.Obs.ce_resource with
  | None -> Edge_skipped "non-row resource"
  | Some (table, key) -> (
      if not (committed e.Obs.ce_reader) then Edge_skipped "reader not committed"
      else if not (committed e.Obs.ce_writer) then Edge_skipped "writer not committed"
      else
        match e.Obs.ce_source with
        | Obs.Page_stamp | Obs.Gap | Obs.Unknown_writer ->
            Edge_skipped "coarse-grained detection source"
        | Obs.Siread_vs_x when not (wrote e.Obs.ce_writer (table, key)) ->
            (* SELECT FOR UPDATE takes X without installing a version; the
               runtime edge is real but invisible to the version-order
               graph. *)
            Edge_skipped "writer holds X but installed no version"
        | Obs.Newer_version | Obs.Siread_vs_x ->
            if
              List.exists
                (fun (m : Mvsg.edge) ->
                  m.Mvsg.kind = Mvsg.Rw
                  && m.Mvsg.src = e.Obs.ce_reader
                  && m.Mvsg.dst = e.Obs.ce_writer
                  && m.Mvsg.table = table && m.Mvsg.key = key)
                mvsg_edges
            then Edge_matched
            else
              Edge_missing
                (Printf.sprintf "no Rw edge T%d->T%d on %s/%s in MVSG" e.Obs.ce_reader
                   e.Obs.ce_writer table key))

type cert_check = {
  cc_certs : int;  (** SSI certificates emitted for the case *)
  cc_edges_checked : int;  (** pivot edges eligible for oracle matching *)
  cc_edges_matched : int;
  cc_mismatches : string list;  (** oracle-containment failures *)
  cc_replay_ok : bool;
  cc_replay_error : string option;
}

let clean = function
  | { cc_mismatches = []; cc_replay_ok = true; _ } -> true
  | _ -> false

(* Replay the case through its codec line and compare against a reference
   run: outcomes, history digest and certificate shapes must all agree. *)
let replay_check (c : Fuzzcase.t) ~(reference : Interleave.result)
    ~(certs : Obs.certificate list) : bool * string option =
  let line = Fuzzcase.to_string c in
  match Fuzzcase.of_string line with
  | Error e -> (false, Some ("codec roundtrip failed: " ^ e))
  | Ok (c', _) -> (
      let r', certs' = certified_run c' in
      if r'.Interleave.outcomes <> reference.Interleave.outcomes then
        (false, Some "replay outcomes differ")
      else if
        Fuzzrun.history_digest r'.Interleave.history
        <> Fuzzrun.history_digest reference.Interleave.history
      then (false, Some "replay history digest differs")
      else
        let shapes l = List.map Obs.cert_shape l in
        match (shapes certs', shapes certs) with
        | a, b when a = b -> (true, None)
        | a, b ->
            ( false,
              Some
                (Printf.sprintf "replay certificates differ: [%s] vs [%s]"
                   (String.concat "; " a) (String.concat "; " b)) ))

(* Full per-case check: certified run, oracle containment for every pivot
   edge, codec replay. *)
let check_case (c : Fuzzcase.t) : cert_check =
  let r, certs = certified_run c in
  let history = r.Interleave.history in
  let mvsg_edges = Mvsg.edges (Mvsg.build history) in
  let checked = ref 0 and matched = ref 0 and mismatches = ref [] in
  let consider label (e : Obs.cert_edge option) =
    match e with
    | None -> ()
    | Some e -> (
        match check_edge ~history ~mvsg_edges e with
        | Edge_skipped _ -> ()
        | Edge_matched ->
            incr checked;
            incr matched
        | Edge_missing why ->
            incr checked;
            mismatches := Printf.sprintf "%s edge: %s" label why :: !mismatches)
  in
  List.iter
    (fun (cert : Obs.certificate) ->
      match cert.Obs.c_cert with
      | Obs.Ssi_pivot { sp_in_edge; sp_out_edge; _ } ->
          consider "in" sp_in_edge;
          consider "out" sp_out_edge
      | Obs.Deadlock_cycle _ | Obs.Fcw_block _ -> ())
    certs;
  let replay_ok, replay_error =
    (* Replay is the expensive half (a second certified run); certificates
       are what it certifies, so a cert-free case skips it. *)
    match certs with [] -> (true, None) | _ -> replay_check c ~reference:r ~certs
  in
  {
    cc_certs = List.length certs;
    cc_edges_checked = !checked;
    cc_edges_matched = !matched;
    cc_mismatches = List.rev !mismatches;
    cc_replay_ok = replay_ok;
    cc_replay_error = replay_error;
  }

type campaign = {
  ca_cases : int;
  ca_certified : int;  (** cases that emitted at least one certificate *)
  ca_certs : int;
  ca_edges_checked : int;
  ca_edges_matched : int;
  ca_failures : (string * string) list;  (** (codec line, reason) per failing case *)
}

(* Same per-case seeding as [Fuzz.run_shard], so a certified campaign over
   [(seed, cases, matrix)] visits the exact case stream of the differential
   campaign with those parameters. *)
let case_rng ~seed ~cases i = Random.State.make [| 0x5551f; (seed * cases) + i |]

(* Fixed-seed campaign: generate [cases] cases round-robin over the matrix
   and run the full per-case check on each. A failure records the case's
   codec line so it can be replayed from the command line. *)
let campaign ?(profile = Fuzzgen.default_profile) ~seed ~cases ~matrix () : campaign =
  let points = Array.of_list matrix in
  if Array.length points = 0 then invalid_arg "Fuzzcert.campaign: empty matrix";
  let total_certs = ref 0
  and certified = ref 0
  and checked = ref 0
  and matched = ref 0
  and failures = ref [] in
  for i = 0 to cases - 1 do
    let st = case_rng ~seed ~cases i in
    let cfg = points.(i mod Array.length points) in
    let c = Fuzzgen.case ~profile st ~cfg in
    let cc = check_case c in
    total_certs := !total_certs + cc.cc_certs;
    if cc.cc_certs > 0 then incr certified;
    checked := !checked + cc.cc_edges_checked;
    matched := !matched + cc.cc_edges_matched;
    if not (clean cc) then begin
      let reasons =
        cc.cc_mismatches
        @ match cc.cc_replay_error with Some e -> [ e ] | None -> []
      in
      failures := (Fuzzcase.to_string c, String.concat "; " reasons) :: !failures
    end
  done;
  {
    ca_cases = cases;
    ca_certified = !certified;
    ca_certs = !total_certs;
    ca_edges_checked = !checked;
    ca_edges_matched = !matched;
    ca_failures = List.rev !failures;
  }

(* Certificates of a fixed-seed campaign, each paired with its case's codec
   line (the repro): the raw material for the report's provenance section.
   No oracle/replay checking — use {!campaign} for that. *)
let collect_certs ?(profile = Fuzzgen.default_profile) ~seed ~cases ~matrix () :
    (Obs.certificate * string) list =
  let points = Array.of_list matrix in
  if Array.length points = 0 then invalid_arg "Fuzzcert.collect_certs: empty matrix";
  let out = ref [] in
  for i = 0 to cases - 1 do
    let st = case_rng ~seed ~cases i in
    let cfg = points.(i mod Array.length points) in
    let c = Fuzzgen.case ~profile st ~cfg in
    match certified_run c with
    | _, [] -> ()
    | _, certs ->
        let line = Fuzzcase.to_string c in
        List.iter (fun cert -> out := (cert, line) :: !out) certs
  done;
  List.rev !out
