(* Campaign driver: generate → differential check → shrink → repro file.

   A campaign is fully determined by (seed, cases, matrix, profile): the
   generator state is seeded once and each case runs under the next matrix
   point round-robin, so a failing seed replays the exact campaign. Any
   oracle violation is delta-debugged against the same violation class and
   kept as a (original, shrunk) pair for repro emission.

   With [shrink_anomalies] the driver additionally minimises committed SI
   anomalies and classifies the result — write skew (two-transaction rw
   cycle) and the read-only anomaly of Fekete et al. (a cycle through a
   transaction that wrote nothing) — until one example of each named class
   has been collected; these are the paper's two motivating histories,
   rediscovered from noise rather than hand-coded. *)

type failure = {
  f_case : Fuzzcase.t;
  f_violation : Fuzzrun.violation;
  f_shrunk : Fuzzcase.t;
}

type summary = {
  s_cases : int;
  s_si_anomalies : int;  (** SI committed a non-serializable history *)
  s_ssi_unsafe : int;  (** cases with at least one Unsafe abort under SSI *)
  s_false_positives : int;  (** §6.1.5: unnecessary unsafe aborts *)
  s_failures : failure list;
  s_anomalies : (string * Fuzzcase.t) list;  (** class name → shrunk SI example *)
}

(* Name the shape of a (shrunk) SI anomaly from its MVSG cycle. *)
let classify_anomaly (c : Fuzzcase.t) : string =
  let r = Fuzzrun.run_case ~isolation:Core.Types.Snapshot c in
  let g = Mvsg.build r.Interleave.history in
  match Mvsg.find_cycle g with
  | None -> "none"
  | Some cycle ->
      let distinct = List.sort_uniq compare cycle in
      let read_only t =
        match Mvsg.txn g t with Some h -> h.Core.Types.h_writes = [] | None -> false
      in
      if List.exists read_only distinct then "read-only-anomaly"
      else if List.length distinct = 2 then "write-skew"
      else "other"

type progress = { pr_done : int; pr_total : int; pr_anomalies : int; pr_unsafe : int }

(* {1 Sharded campaigns}

   A campaign is cut into fixed-size shards of contiguous case indices and
   each shard runs as one pool job. Two properties make the result
   independent of both the pool size and the shard size (and therefore
   byte-identical between [-j 1] and [-j N]):

   - Case [i] of a [(seed, cases)] campaign is generated from its own RNG
     state, seeded [seed * cases + i], so the case stream does not depend
     on who runs which range. (Before the parallel harness the whole
     campaign threaded one sequential RNG.)

   - Per-class shrunk SI anomalies are an associative merge: a shard
     records the first case whose *shrunk* form classifies as "write-skew"
     or "read-only-anomaly" (shrinking stops once the shard has both), and
     the merge keeps, per class, the record with the smallest case index.
     The smallest-index occurrence of a class is always shrunk by its own
     shard — a shard only skips shrinking after finding both classes at
     even smaller indices — so the merged result is exactly the campaign
     minimum however the cases are cut. Unnamed ("other") anomaly shapes
     are no longer collected: which of them got shrunk depended on scan
     order, so they could not survive sharding deterministically. *)

let named_classes = [ "write-skew"; "read-only-anomaly" ]

(* Partial result for one contiguous range of case indices. *)
type shard = {
  sh_lo : int;
  sh_cases : int;
  sh_si_anomalies : int;
  sh_ssi_unsafe : int;
  sh_false_positives : int;
  sh_failures : failure list; (* in case order *)
  sh_anomalies : (string * (int * Fuzzcase.t)) list; (* class -> (case idx, shrunk) *)
}

let case_rng ~seed ~cases i = Random.State.make [| 0x5551f; (seed * cases) + i |]

let run_shard ~profile ~shrink_anomalies ~seed ~cases ~points ~lo ~hi () : shard =
  let si_anomalies = ref 0 and unsafe = ref 0 and false_pos = ref 0 in
  let failures = ref [] in
  let anomalies = ref [] in
  let missing cls = List.assoc_opt cls !anomalies = None in
  for i = lo to hi - 1 do
    let st = case_rng ~seed ~cases i in
    let cfg = points.(i mod Array.length points) in
    let c = Fuzzgen.case ~profile st ~cfg in
    let v = Fuzzrun.check c in
    if v.Fuzzrun.v_si_anomaly then incr si_anomalies;
    if v.Fuzzrun.v_ssi_unsafe then incr unsafe;
    if v.Fuzzrun.v_false_positive then incr false_pos;
    (match v.Fuzzrun.v_violation with
    | Some viol ->
        let shrunk = Fuzzshrink.shrink ~keeps:(Fuzzrun.reproduces viol) c in
        failures := { f_case = c; f_violation = viol; f_shrunk = shrunk } :: !failures
    | None -> ());
    if shrink_anomalies && v.Fuzzrun.v_si_anomaly && List.exists missing named_classes then begin
      let shrunk = Fuzzshrink.shrink ~keeps:Fuzzrun.si_nonserializable c in
      let cls = classify_anomaly shrunk in
      if List.mem cls named_classes && missing cls then
        anomalies := (cls, (i, shrunk)) :: !anomalies
    end
  done;
  {
    sh_lo = lo;
    sh_cases = hi - lo;
    sh_si_anomalies = !si_anomalies;
    sh_ssi_unsafe = !unsafe;
    sh_false_positives = !false_pos;
    sh_failures = List.rev !failures;
    sh_anomalies = !anomalies;
  }

let default_shard_size = 250

let run_campaign ?pool ?(shard_size = default_shard_size)
    ?(profile = Fuzzgen.default_profile) ?(shrink_anomalies = false)
    ?(on_progress = fun (_ : progress) -> ()) ~seed ~cases ~matrix () : summary =
  if shard_size < 1 then invalid_arg "run_campaign: shard_size must be >= 1";
  let points = Array.of_list matrix in
  if Array.length points = 0 then invalid_arg "run_campaign: empty matrix";
  let rec ranges lo = if lo >= cases then [] else (lo, min cases (lo + shard_size)) :: ranges (lo + shard_size) in
  let thunks =
    List.map
      (fun (lo, hi) -> run_shard ~profile ~shrink_anomalies ~seed ~cases ~points ~lo ~hi)
      (ranges 0)
  in
  (* Progress streams per completed shard prefix, in case order (stderr
     liveness only; the summary below is what the stdout contract covers). *)
  let done_cases = ref 0 and done_anoms = ref 0 and done_unsafe = ref 0 in
  let report sh =
    done_cases := !done_cases + sh.sh_cases;
    done_anoms := !done_anoms + sh.sh_si_anomalies;
    done_unsafe := !done_unsafe + sh.sh_ssi_unsafe;
    on_progress
      { pr_done = !done_cases; pr_total = cases; pr_anomalies = !done_anoms; pr_unsafe = !done_unsafe }
  in
  let shards =
    match pool with
    | Some p -> Par.run ~on_result:(fun _ sh -> report sh) p thunks
    | None ->
        List.map
          (fun th ->
            let sh = th () in
            report sh;
            sh)
          thunks
  in
  let merged_anomalies =
    (* per class, the smallest case index across all shards; emitted in
       case-index order (= sequential discovery order) *)
    List.filter_map
      (fun cls ->
        List.concat_map (fun sh -> sh.sh_anomalies) shards
        |> List.filter_map (fun (c, ic) -> if c = cls then Some ic else None)
        |> function
        | [] -> None
        | ics ->
            let i, c = List.fold_left (fun (ai, ac) (bi, bc) -> if bi < ai then (bi, bc) else (ai, ac)) (List.hd ics) ics in
            Some (i, (cls, c)))
      named_classes
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map snd
  in
  let sum f = List.fold_left (fun acc sh -> acc + f sh) 0 shards in
  {
    s_cases = cases;
    s_si_anomalies = sum (fun sh -> sh.sh_si_anomalies);
    s_ssi_unsafe = sum (fun sh -> sh.sh_ssi_unsafe);
    s_false_positives = sum (fun sh -> sh.sh_false_positives);
    s_failures = List.concat_map (fun sh -> sh.sh_failures) shards;
    s_anomalies = merged_anomalies;
  }

(* {1 Repro files} *)

(* Serialize a case together with the history digests the three levels
   produce right now; replay verifies the digests byte-for-byte. *)
let repro_string ?(comment = []) (c : Fuzzcase.t) =
  let v = Fuzzrun.check c in
  let expect =
    List.map
      (fun r -> (Fuzzrun.level_name r.Fuzzrun.l_isolation, r.Fuzzrun.l_digest))
      v.Fuzzrun.v_reports
  in
  Fuzzcase.to_string ~expect ~comment c

type replay_check = {
  rc_level : string;
  rc_expected : string;
  rc_got : string;
  rc_ok : bool;
}

type replay_outcome = {
  rp_case : Fuzzcase.t;
  rp_checks : replay_check list;
  rp_violation : Fuzzrun.violation option;
  rp_reports : Fuzzrun.level_report list;
  rp_ok : bool;  (** all digests matched and no oracle violation *)
}

let replay_string content : (replay_outcome, string) result =
  Result.bind (Fuzzcase.of_string content) (fun (c, expect) ->
      let v = Fuzzrun.check c in
      let report lvl =
        List.find_opt
          (fun r -> Fuzzrun.level_name r.Fuzzrun.l_isolation = lvl)
          v.Fuzzrun.v_reports
      in
      match List.find_opt (fun (lvl, _) -> report lvl = None) expect with
      | Some (lvl, _) -> Error ("expect line references unknown level: " ^ lvl)
      | None ->
          let checks =
            List.map
              (fun (lvl, d) ->
                let r = Option.get (report lvl) in
                {
                  rc_level = lvl;
                  rc_expected = d;
                  rc_got = r.Fuzzrun.l_digest;
                  rc_ok = d = r.Fuzzrun.l_digest;
                })
              expect
          in
          Ok
            {
              rp_case = c;
              rp_checks = checks;
              rp_violation = v.Fuzzrun.v_violation;
              rp_reports = v.Fuzzrun.v_reports;
              rp_ok = List.for_all (fun rc -> rc.rc_ok) checks && v.Fuzzrun.v_violation = None;
            })
