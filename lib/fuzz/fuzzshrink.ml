(* Greedy delta-debugging of failing cases.

   [shrink ~keeps c] repeatedly tries structural reductions — drop a whole
   transaction, drop one operation, drop one initial row — accepting any
   candidate for which [keeps] still holds, until no single reduction
   applies. Each accepted candidate strictly decreases the total number of
   operations plus initial rows, so the fixpoint terminates.

   The predicate re-runs the whole differential matrix (or one SI run for
   anomaly minimisation), so cases are kept tiny by the generator and this
   pass mostly strips incidental noise: transactions not in the cycle, ops
   that never conflicted, rows nobody read. *)

(* Remove the [n]-th occurrence (0-based) of [x] from [l]. *)
let remove_occurrence x n l =
  let rec go n = function
    | [] -> []
    | y :: tl when y = x -> if n = 0 then tl else y :: go (n - 1) tl
    | y :: tl -> y :: go n tl
  in
  go n l

(* Drop transaction [i]: its spec, its ro flag, all its turns, and renumber
   schedule indices above [i]. Invalid if fewer than one txn would remain. *)
let drop_txn (c : Fuzzcase.t) i : Fuzzcase.t option =
  if List.length c.Fuzzcase.specs <= 1 then None
  else
    let drop_nth l = List.filteri (fun j _ -> j <> i) l in
    let schedule =
      List.filter_map
        (fun j -> if j = i then None else Some (if j > i then j - 1 else j))
        c.Fuzzcase.schedule
    in
    Some { c with Fuzzcase.specs = drop_nth c.Fuzzcase.specs; ro = drop_nth c.Fuzzcase.ro; schedule }

(* Drop operation [p] of transaction [j] and the matching turn: the (p+1)-th
   occurrence of [j] in the schedule corresponds to op [p] because turns are
   consumed in program order. Invalid if the txn would become empty (empty
   scripts are legal for the engine but never shrink-relevant; dropping the
   whole txn covers that). *)
let drop_op (c : Fuzzcase.t) j p : Fuzzcase.t option =
  let spec = List.nth c.Fuzzcase.specs j in
  if List.length spec <= 1 then None
  else
    let specs =
      List.mapi
        (fun idx s -> if idx = j then List.filteri (fun q _ -> q <> p) s else s)
        c.Fuzzcase.specs
    in
    Some { c with Fuzzcase.specs; schedule = remove_occurrence j p c.Fuzzcase.schedule }

let drop_init (c : Fuzzcase.t) p : Fuzzcase.t option =
  Some { c with Fuzzcase.init = List.filteri (fun q _ -> q <> p) c.Fuzzcase.init }

(* All single-step reductions of [c], cheapest-to-test first: whole
   transactions, then ops, then init rows. *)
let candidates (c : Fuzzcase.t) : Fuzzcase.t list =
  let txns = List.filter_map (fun i -> drop_txn c i) (List.init (List.length c.Fuzzcase.specs) Fun.id) in
  let ops =
    List.concat
      (List.mapi
         (fun j spec -> List.filter_map (fun p -> drop_op c j p) (List.init (List.length spec) Fun.id))
         c.Fuzzcase.specs)
  in
  let inits = List.filter_map (fun p -> drop_init c p) (List.init (List.length c.Fuzzcase.init) Fun.id) in
  txns @ ops @ inits

let rec shrink ~keeps (c : Fuzzcase.t) : Fuzzcase.t =
  match List.find_opt keeps (candidates c) with
  | Some c' -> shrink ~keeps c'
  | None -> c
