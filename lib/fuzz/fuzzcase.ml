(* A differential test case: transaction scripts, READ ONLY declarations,
   initial rows, a turn schedule, and the configuration point of the
   variant/ablation matrix it runs under — plus the deterministic
   line-based repro codec that round-trips all of it through a file.

   Repro format (one record per line, '#' comments ignored):

     ssi-fuzz-repro v3
     cfg granularity=row ssi=precise gap_locking=1 abort_early=1 \
         victim=pivot ro_refinement=0 upgrade_siread=1 memory_budget=0 \
         wal_flush=0 checkpoint_interval=0
     init k0=0
     txn ro=0 r(k0);w(k1);scan(k0,k2,1)
     txn ro=1 r(k1)
     schedule 0 0 1 0
     expect ssi <md5 of the serialized committed history>
     expect si <md5>
     expect s2pl <md5>

   Keys and values are restricted to [A-Za-z0-9_.\xff-]* so no escaping is
   needed; the generator only emits such names. *)

open Core

(* {1 The variant/ablation matrix} *)

type cfg_point = {
  granularity : Config.granularity;
  ssi : Config.ssi_variant;
  gap_locking : bool;  (** row mode only; forced off under Page *)
  abort_early : bool;  (** §3.7.1 *)
  victim : Config.victim_policy;  (** §3.7.2 *)
  ro_refinement : bool;  (** Ports & Grittner read-only optimisation *)
  upgrade_siread : bool;  (** §3.7.3 *)
  memory_budget : int;  (** bounded-memory mode budget; [0] = unbounded *)
  wal_flush : bool;  (** synchronous commit flushes (group commit) vs buffered WAL *)
  checkpoint_interval : int;  (** WAL checkpoint every k commits; [0] = off *)
}

let default_point =
  {
    granularity = Config.Row;
    ssi = Config.Precise;
    gap_locking = true;
    abort_early = true;
    victim = Config.Prefer_pivot;
    ro_refinement = false;
    upgrade_siread = true;
    memory_budget = 0;
    wal_flush = false;
    checkpoint_interval = 0;
  }

(* Every meaningful knob combination: 192 points (gap locking only exists in
   row mode; every point runs with the memory budget off and with a tiny
   budget that forces summarization and promotion on small cases). *)
let matrix_full =
  List.concat_map
    (fun granularity ->
      List.concat_map
        (fun ssi ->
          List.concat_map
            (fun gap_locking ->
              List.concat_map
                (fun abort_early ->
                  List.concat_map
                    (fun victim ->
                      List.concat_map
                        (fun ro_refinement ->
                          List.concat_map
                            (fun upgrade_siread ->
                              List.map
                                (fun memory_budget ->
                                  {
                                    default_point with
                                    granularity;
                                    ssi;
                                    gap_locking;
                                    abort_early;
                                    victim;
                                    ro_refinement;
                                    upgrade_siread;
                                    memory_budget;
                                  })
                                [ 0; 4 ])
                            [ true; false ])
                        [ false; true ])
                    [ Config.Prefer_pivot; Config.Prefer_younger ])
                [ true; false ])
            (if granularity = Config.Row then [ true; false ] else [ false ]))
        [ Config.Basic; Config.Precise ])
    [ Config.Row; Config.Page ]

(* The two prototype profiles of the paper (plus precise/basic on each). *)
let matrix_default =
  [
    default_point;
    { default_point with ssi = Config.Basic };
    { default_point with granularity = Config.Page; gap_locking = false };
    { default_point with granularity = Config.Page; gap_locking = false; ssi = Config.Basic };
  ]

let matrix_of_string = function
  | "full" -> Some matrix_full
  | "default" -> Some matrix_default
  | _ -> None

(* Engine configuration for a matrix point: the plain test substrate (no
   I/O waits, no kernel mutex, history recording on) with the point's knobs
   applied. A small fanout makes page-granularity runs span several pages
   even on tiny key domains; page mode uses a fast periodic deadlock
   detector, row mode the immediate one (as in the two prototypes). *)
let config_of_point p =
  {
    (Config.test ()) with
    Config.wal_mode =
      (if p.wal_flush then Wal.Flush_per_commit 0.01 else Wal.No_flush);
    checkpoint_interval =
      (if p.checkpoint_interval > 0 then Some p.checkpoint_interval else None);
    granularity = p.granularity;
    ssi = p.ssi;
    gap_locking = (p.gap_locking && p.granularity = Config.Row);
    abort_early = p.abort_early;
    victim = p.victim;
    ro_refinement = p.ro_refinement;
    upgrade_siread = p.upgrade_siread;
    memory_budget = (if p.memory_budget > 0 then Some p.memory_budget else None);
    (* Aggressive promotion so even tiny fuzz cases exercise row→page
       collapse when a budget is set. *)
    promote_threshold = 2;
    detection =
      (match p.granularity with
      | Config.Row -> Lockmgr.Immediate
      | Config.Page -> Lockmgr.Periodic 0.05);
    record_history = true;
    btree_fanout = 4;
  }

(* {1 The case itself} *)

type t = {
  specs : Interleave.spec list;
  ro : bool list;  (** declared READ ONLY at begin; same length as [specs] *)
  init : (string * string) list;  (** rows loaded before the run *)
  schedule : int list;
      (** turn order: transaction indices; index [i] appears exactly
          [List.length (List.nth specs i)] times *)
  cfg : cfg_point;
}

(* Pair each turn with its transaction's next pending operation — the
   (int * op) form {!Interleave.run_interleaving} takes. *)
let schedule_ops (specs : Interleave.spec list) (schedule : int list) =
  let pending = Array.of_list (List.map ref specs) in
  List.map
    (fun i ->
      match !(pending.(i)) with
      | op :: rest ->
          pending.(i) := rest;
          (i, op)
      | [] -> invalid_arg "schedule_ops: schedule has too many turns for a transaction")
    schedule

let total_ops c = List.fold_left (fun a s -> a + List.length s) 0 c.specs

(* Structural sanity of a case (also applied after parsing). *)
let validate c =
  let n = List.length c.specs in
  if List.length c.ro <> n then Error "ro/specs length mismatch"
  else if List.exists (fun i -> i < 0 || i >= n) c.schedule then
    Error "schedule index out of range"
  else
    let counts = Array.make (max 1 n) 0 in
    List.iter (fun i -> counts.(i) <- counts.(i) + 1) c.schedule;
    let ok = ref (Ok ()) in
    List.iteri
      (fun i s ->
        if counts.(i) <> List.length s then
          ok := Error (Printf.sprintf "schedule grants %d turns to txn %d with %d ops" counts.(i) i (List.length s)))
      c.specs;
    Result.map (fun () -> c) !ok

(* {1 Codec} *)

let granularity_to_string = function Config.Row -> "row" | Config.Page -> "page"

let variant_to_string = function Config.Basic -> "basic" | Config.Precise -> "precise"

let victim_to_string = function
  | Config.Prefer_pivot -> "pivot"
  | Config.Prefer_younger -> "younger"

let bool01 b = if b then "1" else "0"

let point_to_string p =
  Printf.sprintf
    "granularity=%s ssi=%s gap_locking=%s abort_early=%s victim=%s ro_refinement=%s \
     upgrade_siread=%s memory_budget=%d wal_flush=%s checkpoint_interval=%d"
    (granularity_to_string p.granularity)
    (variant_to_string p.ssi) (bool01 p.gap_locking) (bool01 p.abort_early)
    (victim_to_string p.victim) (bool01 p.ro_refinement) (bool01 p.upgrade_siread)
    p.memory_budget (bool01 p.wal_flush) p.checkpoint_interval

let point_of_string s =
  let ( let* ) = Result.bind in
  let fields =
    List.filter_map
      (fun tok ->
        match String.index_opt tok '=' with
        | Some i -> Some (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1))
        | None -> None)
      (String.split_on_char ' ' s)
  in
  let get k =
    match List.assoc_opt k fields with
    | Some v -> Ok v
    | None -> Error ("cfg: missing field " ^ k)
  in
  let get_bool k =
    let* v = get k in
    match v with "1" -> Ok true | "0" -> Ok false | _ -> Error ("cfg: bad bool " ^ k ^ "=" ^ v)
  in
  let* granularity =
    let* v = get "granularity" in
    match v with
    | "row" -> Ok Config.Row
    | "page" -> Ok Config.Page
    | _ -> Error ("cfg: bad granularity " ^ v)
  in
  let* ssi =
    let* v = get "ssi" in
    match v with
    | "basic" -> Ok Config.Basic
    | "precise" -> Ok Config.Precise
    | _ -> Error ("cfg: bad ssi " ^ v)
  in
  let* victim =
    let* v = get "victim" in
    match v with
    | "pivot" -> Ok Config.Prefer_pivot
    | "younger" -> Ok Config.Prefer_younger
    | _ -> Error ("cfg: bad victim " ^ v)
  in
  let* gap_locking = get_bool "gap_locking" in
  let* abort_early = get_bool "abort_early" in
  let* ro_refinement = get_bool "ro_refinement" in
  let* upgrade_siread = get_bool "upgrade_siread" in
  (* Fields added by later codec versions parse with their old default when
     missing, so v1 (no memory_budget) and v2 (no wal_flush /
     checkpoint_interval) repro files keep their original meaning. *)
  let opt_int k =
    match List.assoc_opt k fields with
    | None -> Ok 0
    | Some v -> (
        match int_of_string_opt v with
        | Some n when n >= 0 -> Ok n
        | _ -> Error ("cfg: bad " ^ k ^ " " ^ v))
  in
  let* memory_budget = opt_int "memory_budget" in
  let* checkpoint_interval = opt_int "checkpoint_interval" in
  let* wal_flush =
    match List.assoc_opt "wal_flush" fields with
    | None -> Ok false
    | Some "1" -> Ok true
    | Some "0" -> Ok false
    | Some v -> Error ("cfg: bad wal_flush " ^ v)
  in
  Ok
    {
      granularity;
      ssi;
      gap_locking;
      abort_early;
      victim;
      ro_refinement;
      upgrade_siread;
      memory_budget;
      wal_flush;
      checkpoint_interval;
    }

let op_of_string s : (Interleave.op, string) result =
  let open Interleave in
  let arg prefix =
    let p = String.length prefix in
    let l = String.length s in
    if l > p + 1 && String.sub s 0 (p + 1) = prefix ^ "(" && s.[l - 1] = ')' then
      Some (String.sub s (p + 1) (l - p - 2))
    else None
  in
  if s = "abort" then Ok Abort_op
  else
    match arg "scan" with
    | Some body -> (
        match String.split_on_char ',' body with
        | [ lo; hi; lim ] -> (
            let bound = function "-" -> None | k -> Some k in
            match lim with
            | "-" -> Ok (Scan (bound lo, bound hi, None))
            | n -> (
                match int_of_string_opt n with
                | Some v when v > 0 -> Ok (Scan (bound lo, bound hi, Some v))
                | _ -> Error ("bad scan limit: " ^ s)))
        | _ -> Error ("bad scan op: " ^ s))
    | None -> (
        match (arg "r", arg "w", arg "u", arg "ins", arg "del") with
        | Some k, _, _, _, _ -> Ok (R k)
        | _, Some k, _, _, _ -> Ok (W k)
        | _, _, Some k, _, _ -> Ok (Rfu k)
        | _, _, _, Some k, _ -> Ok (Insert k)
        | _, _, _, _, Some k -> Ok (Delete k)
        | _ -> Error ("unknown op: " ^ s))

let spec_of_string s : (Interleave.spec, string) result =
  if s = "" then Ok []
  else
    List.fold_right
      (fun tok acc ->
        Result.bind acc (fun ops -> Result.map (fun op -> op :: ops) (op_of_string tok)))
      (String.split_on_char ';' s)
      (Ok [])

(* v2 added the optional [memory_budget] cfg field; v3 added [wal_flush]
   and [checkpoint_interval] (durability knobs for the crash fuzzer). Older
   files are still accepted: missing fields parse to the old defaults, so
   every v1/v2 repro keeps its original meaning. *)
let magic = "ssi-fuzz-repro v3"
let magic_v2 = "ssi-fuzz-repro v2"
let magic_v1 = "ssi-fuzz-repro v1"

(* [expect] carries (level, digest) pairs verified on replay. *)
let to_string ?(expect = []) ?(comment = []) (c : t) =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  line "%s" magic;
  List.iter (fun cm -> line "# %s" cm) comment;
  line "cfg %s" (point_to_string c.cfg);
  List.iter (fun (k, v) -> line "init %s=%s" k v) c.init;
  List.iter2 (fun ro spec -> line "txn ro=%s %s" (bool01 ro) (Interleave.spec_to_string spec)) c.ro
    c.specs;
  line "schedule %s" (String.concat " " (List.map string_of_int c.schedule));
  List.iter (fun (lvl, digest) -> line "expect %s %s" lvl digest) expect;
  Buffer.contents b

let of_string content : (t * (string * string) list, string) result =
  let ( let* ) = Result.bind in
  let lines =
    List.filter
      (fun l -> l <> "" && l.[0] <> '#')
      (List.map String.trim (String.split_on_char '\n' content))
  in
  match lines with
  | [] -> Error "empty repro file"
  | first :: rest when first = magic || first = magic_v2 || first = magic_v1 ->
      let cfg = ref None in
      let init = ref [] in
      let txns = ref [] in
      let schedule = ref None in
      let expect = ref [] in
      let parse_line l =
        match String.index_opt l ' ' with
        | None -> Error ("bad line: " ^ l)
        | Some i -> (
            let kw = String.sub l 0 i in
            let body = String.sub l (i + 1) (String.length l - i - 1) in
            match kw with
            | "cfg" ->
                let* p = point_of_string body in
                cfg := Some p;
                Ok ()
            | "init" -> (
                match String.index_opt body '=' with
                | Some j ->
                    init :=
                      (String.sub body 0 j, String.sub body (j + 1) (String.length body - j - 1))
                      :: !init;
                    Ok ()
                | None -> Error ("bad init line: " ^ l))
            | "txn" -> (
                match String.split_on_char ' ' body with
                | ro_field :: spec_parts ->
                    let* ro =
                      match ro_field with
                      | "ro=1" -> Ok true
                      | "ro=0" -> Ok false
                      | _ -> Error ("bad txn ro field: " ^ l)
                    in
                    let* spec = spec_of_string (String.concat " " spec_parts) in
                    txns := (ro, spec) :: !txns;
                    Ok ()
                | [] -> Error ("bad txn line: " ^ l))
            | "schedule" ->
                let* ids =
                  List.fold_right
                    (fun tok acc ->
                      let* ids = acc in
                      match int_of_string_opt tok with
                      | Some v -> Ok (v :: ids)
                      | None -> Error ("bad schedule entry: " ^ tok))
                    (List.filter (( <> ) "") (String.split_on_char ' ' body))
                    (Ok [])
                in
                schedule := Some ids;
                Ok ()
            | "expect" -> (
                match String.split_on_char ' ' body with
                | [ lvl; digest ] ->
                    expect := (lvl, digest) :: !expect;
                    Ok ()
                | _ -> Error ("bad expect line: " ^ l))
            | _ -> Error ("unknown keyword: " ^ kw))
      in
      let* () =
        List.fold_left (fun acc l -> Result.bind acc (fun () -> parse_line l)) (Ok ()) rest
      in
      let* cfg = match !cfg with Some c -> Ok c | None -> Error "missing cfg line" in
      let* schedule =
        match !schedule with Some s -> Ok s | None -> Error "missing schedule line"
      in
      let txns = List.rev !txns in
      let case =
        {
          specs = List.map snd txns;
          ro = List.map fst txns;
          init = List.rev !init;
          schedule;
          cfg;
        }
      in
      let* case = validate case in
      Ok (case, List.rev !expect)
  | first :: _ -> Error ("bad magic line: " ^ first)
