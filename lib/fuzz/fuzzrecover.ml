(* Crash-recovery fuzz campaign: sweep deterministic crash points across
   generated workloads and hold recovery to a three-part oracle.

   Each case first runs to completion with a never-firing fault plan armed,
   which makes the WAL's since-arm trigger counters a census of the run's
   crashable points (appends, physical flushes, commit windows). Plans are
   then sampled inside that census — so every sampled plan is guaranteed to
   fire — and for each plan the case is re-run until the injected crash
   abandons the simulated machine. Recovery replays the WAL's durable
   prefix into a fresh engine and must satisfy:

   - Committed prefix: the recovered store byte-equals the reference store
     truncated to the recovered snapshot horizon. The WAL hardens epochs in
     order and commit records are appended in ts order, so the durable
     committed set is a ts-prefix of the reference run's commits; recovery
     must reproduce exactly that prefix — no lost committed write, no
     resurrected uncommitted one.

   - Horizon honesty: the recovered store exposes no version above the
     restored [last_commit_ts] (subsumed by the prefix check against the
     reference, kept as a self-contained guard on the recovered engine).

   - Continuation serializability: re-running the case's scripts against
     the recovered engine must yield an MVSG-acyclic combined history,
     where recovered committed transactions enter the graph as synthesized
     records (their reads are unknown — SIREAD locks are volatile — so they
     contribute write edges only, and the engine's conservative summary
     flags may only cause extra aborts, never admit a cycle).

   Campaigns shard exactly like {!Fuzz.run_campaign}: per-case RNG streams
   keyed by (seed, cases, index) and associative merges keep the summary
   byte-identical between [-j 1] and [-j N]. *)

open Core

(* Armed in the reference run: counts crashable events, never fires. *)
let probe_plan = Wal.Crash_on_append max_int

type crash_violation =
  | No_crash  (** a plan sampled inside the census failed to fire *)
  | Recover_error of string  (** recovery rejected the durable log *)
  | Store_mismatch of { expected : string; got : string }
      (** recovered store differs from the reference's committed prefix *)
  | Future_version  (** recovered store exposes a version above the horizon *)
  | Continuation_failure of string
      (** post-recovery run: MVSG cycle or an internal error *)

let violation_to_string = function
  | No_crash -> "sampled crash plan did not fire"
  | Recover_error e -> "recovery failed: " ^ e
  | Store_mismatch _ -> "recovered store differs from the committed prefix"
  | Future_version -> "recovered store exposes a version above the restored horizon"
  | Continuation_failure e -> "post-recovery continuation: " ^ e

type outcome = {
  o_plan : Wal.plan;
  o_report : Db.recovery_report option;  (** [None] when recovery itself failed *)
  o_violation : crash_violation option;
}

(* Recovered committed transactions re-enter the serialization graph as
   write-only records: reads are unrecoverable (SIREAD state is volatile),
   and a snapshot of [ts - 1] is the latest — hence least concurrent, hence
   most conservative for the *oracle* — view consistent with commit order. *)
let synthesize_committed records =
  let aborted = Hashtbl.create 8 in
  List.iter
    (function Wal.Abort { txn } -> Hashtbl.replace aborted txn () | _ -> ())
    records;
  let writes = Hashtbl.create 16 in
  let add txn table key =
    let prev = try Hashtbl.find writes txn with Not_found -> [] in
    Hashtbl.replace writes txn ((table, key) :: prev)
  in
  List.iter
    (function
      | Wal.Write { txn; table; key; _ } | Wal.Insert { txn; table; key; _ } ->
          add txn table key
      | Wal.Delete { txn; table; key } -> add txn table key
      | _ -> ())
    records;
  List.filter_map
    (function
      | Wal.Commit { txn; ts } when txn <> 0 && not (Hashtbl.mem aborted txn) ->
          let ws = try Hashtbl.find writes txn with Not_found -> [] in
          Some
            {
              Types.h_id = txn;
              h_isolation = Types.Serializable;
              h_snapshot = ts - 1;
              h_commit = ts;
              h_reads = [];
              h_writes = List.sort_uniq compare ws;
            }
      | _ -> None)
    records

(* Run [c] to completion with the census probe armed; the result's engine
   carries the since-arm counters the plan sampler draws from. *)
let reference_run (c : Fuzzcase.t) : Interleave.result =
  let config = Fuzzcase.config_of_point c.Fuzzcase.cfg in
  let order = Fuzzcase.schedule_ops c.Fuzzcase.specs c.Fuzzcase.schedule in
  Interleave.run_interleaving ~config ~init:c.Fuzzcase.init ~ro:c.Fuzzcase.ro
    ~crash:probe_plan ~isolation:Types.Serializable c.Fuzzcase.specs order

(* Sample fault plans from the census of a completed reference run: a
   couple of append points, a mid-flush tear when the mode flushes at all,
   and a commit window when any writer committed. Every plan indexes a
   1-based event count the crash run is guaranteed to reach. *)
let sample_plans rng (wal : Wal.t) : Wal.plan list =
  let appends = Wal.armed_appends wal in
  let flushes = Wal.armed_flushes wal in
  let windows = Wal.armed_windows wal in
  let plans = ref [] in
  if appends > 0 then begin
    plans := Wal.Crash_on_append (1 + Random.State.int rng appends) :: !plans;
    if appends > 1 then
      plans := Wal.Crash_on_append (1 + Random.State.int rng appends) :: !plans
  end;
  if flushes > 0 then
    plans :=
      Wal.Crash_mid_flush
        {
          flush = 1 + Random.State.int rng flushes;
          keep = Random.State.int rng 6;
          torn = Random.State.int rng 8;
        }
      :: !plans;
  if windows > 0 then
    plans := Wal.Crash_at_commit_window (1 + Random.State.int rng windows) :: !plans;
  List.sort_uniq compare !plans

(* Crash [c] at [plan], recover from the durable prefix, apply the oracle.
   [reference] must be a completed {!reference_run} of the same case. *)
let check_crash (c : Fuzzcase.t) ~(reference : Interleave.result) plan : outcome =
  let config = Fuzzcase.config_of_point c.Fuzzcase.cfg in
  let order = Fuzzcase.schedule_ops c.Fuzzcase.specs c.Fuzzcase.schedule in
  let r =
    Interleave.run_interleaving ~config ~init:c.Fuzzcase.init ~ro:c.Fuzzcase.ro
      ~crash:plan ~isolation:Types.Serializable c.Fuzzcase.specs order
  in
  if not r.Interleave.crashed then
    { o_plan = plan; o_report = None; o_violation = Some No_crash }
  else
    let log = Wal.durable_log (Db.wal r.Interleave.db) in
    match Db.recover ~config (Sim.create ()) ~log with
    | Error e -> { o_plan = plan; o_report = None; o_violation = Some (Recover_error e) }
    | Ok (db, report) ->
        let violation =
          let expected =
            Db.dump_store ~max_ts:report.Db.r_last_commit_ts reference.Interleave.db
          in
          let got = Db.dump_store db in
          if got <> expected then Some (Store_mismatch { expected; got })
          else if got <> Db.dump_store ~max_ts:report.Db.r_last_commit_ts db then
            Some Future_version
          else begin
            (* Continuation: the same scripts again, now against the
               recovered engine, judged together with the synthesized
               recovered commits. *)
            let recovered =
              match Wal.decode log with
              | Ok (records, _) -> synthesize_committed records
              | Error _ -> [] (* unreachable: recovery decoded the same log *)
            in
            let cont =
              Interleave.run_interleaving ~db ~ro:c.Fuzzcase.ro
                ~isolation:Types.Serializable c.Fuzzcase.specs order
            in
            let internal =
              List.find_map
                (function Some (Types.Internal_error e) -> Some e | _ -> None)
                cont.Interleave.outcomes
            in
            match internal with
            | Some e -> Some (Continuation_failure ("internal error: " ^ e))
            | None ->
                if Mvsg.is_serializable (recovered @ cont.Interleave.history) then None
                else Some (Continuation_failure "combined history has an MVSG cycle")
          end
        in
        { o_plan = plan; o_report = Some report; o_violation = violation }

(* {1 Sharded campaigns} *)

type failure = {
  cf_index : int;  (** case index within the campaign *)
  cf_case : Fuzzcase.t;
  cf_plan : Wal.plan;
  cf_violation : crash_violation;
}

type summary = {
  cs_cases : int;  (** generated cases *)
  cs_runs : int;  (** crash runs executed (sampled plans) *)
  cs_crashes : int;  (** runs whose plan fired (all of them, or it's a failure) *)
  cs_torn : int;  (** recoveries that discarded a torn trailing frame *)
  cs_committed : int;  (** committed transactions reinstalled, summed *)
  cs_in_doubt : int;  (** in-doubt transactions rolled back, summed *)
  cs_aborted : int;  (** logged-abort transactions dropped, summed *)
  cs_replayed : int;  (** log records replayed, summed *)
  cs_failures : failure list;
}

type progress = { cp_done : int; cp_total : int; cp_runs : int; cp_failures : int }

type shard = {
  sh_cases : int;
  sh_runs : int;
  sh_crashes : int;
  sh_torn : int;
  sh_committed : int;
  sh_in_doubt : int;
  sh_aborted : int;
  sh_replayed : int;
  sh_failures : failure list; (* in (case, plan) order *)
}

(* Distinct RNG family from the differential fuzzer so the two campaigns
   explore independent case streams at equal seeds. *)
let case_rng ~seed ~cases i = Random.State.make [| 0xC8A54; (seed * cases) + i |]

(* Durability knobs are resampled per case — deterministically from the
   case's own RNG stream — so a campaign sweeps buffered and synchronous
   WAL modes and checkpoint cadences whatever matrix it was given. *)
let durability_point rng (cfg : Fuzzcase.cfg_point) =
  {
    cfg with
    Fuzzcase.wal_flush = Random.State.bool rng;
    checkpoint_interval = [| 0; 0; 2; 3 |].(Random.State.int rng 4);
  }

let run_shard ~profile ~seed ~cases ~points ~lo ~hi () : shard =
  let runs = ref 0 and crashes = ref 0 and torn = ref 0 in
  let committed = ref 0 and in_doubt = ref 0 and aborted = ref 0 and replayed = ref 0 in
  let failures = ref [] in
  for i = lo to hi - 1 do
    let st = case_rng ~seed ~cases i in
    let cfg = durability_point st points.(i mod Array.length points) in
    let c = Fuzzgen.case ~profile st ~cfg in
    let reference = reference_run c in
    let plans = sample_plans st (Db.wal reference.Interleave.db) in
    List.iter
      (fun plan ->
        incr runs;
        let o = check_crash c ~reference plan in
        if o.o_violation <> Some No_crash then incr crashes;
        (match o.o_report with
        | Some rep ->
            if rep.Db.r_torn_bytes > 0 then incr torn;
            committed := !committed + rep.Db.r_committed;
            in_doubt := !in_doubt + rep.Db.r_in_doubt;
            aborted := !aborted + rep.Db.r_aborted;
            replayed := !replayed + rep.Db.r_replayed
        | None -> ());
        match o.o_violation with
        | Some v ->
            failures :=
              { cf_index = i; cf_case = c; cf_plan = plan; cf_violation = v } :: !failures
        | None -> ())
      plans
  done;
  {
    sh_cases = hi - lo;
    sh_runs = !runs;
    sh_crashes = !crashes;
    sh_torn = !torn;
    sh_committed = !committed;
    sh_in_doubt = !in_doubt;
    sh_aborted = !aborted;
    sh_replayed = !replayed;
    sh_failures = List.rev !failures;
  }

let run_campaign ?pool ?(shard_size = 250) ?(profile = Fuzzgen.default_profile)
    ?(on_progress = fun (_ : progress) -> ()) ~seed ~cases ~matrix () : summary =
  if shard_size < 1 then invalid_arg "Fuzzrecover.run_campaign: shard_size must be >= 1";
  let points = Array.of_list matrix in
  if Array.length points = 0 then invalid_arg "Fuzzrecover.run_campaign: empty matrix";
  let rec ranges lo =
    if lo >= cases then [] else (lo, min cases (lo + shard_size)) :: ranges (lo + shard_size)
  in
  let thunks =
    List.map (fun (lo, hi) -> run_shard ~profile ~seed ~cases ~points ~lo ~hi) (ranges 0)
  in
  let done_cases = ref 0 and done_runs = ref 0 and done_failures = ref 0 in
  let report sh =
    done_cases := !done_cases + sh.sh_cases;
    done_runs := !done_runs + sh.sh_runs;
    done_failures := !done_failures + List.length sh.sh_failures;
    on_progress
      {
        cp_done = !done_cases;
        cp_total = cases;
        cp_runs = !done_runs;
        cp_failures = !done_failures;
      }
  in
  let shards =
    match pool with
    | Some p -> Par.run ~on_result:(fun _ sh -> report sh) p thunks
    | None ->
        List.map
          (fun th ->
            let sh = th () in
            report sh;
            sh)
          thunks
  in
  let sum f = List.fold_left (fun acc sh -> acc + f sh) 0 shards in
  {
    cs_cases = cases;
    cs_runs = sum (fun sh -> sh.sh_runs);
    cs_crashes = sum (fun sh -> sh.sh_crashes);
    cs_torn = sum (fun sh -> sh.sh_torn);
    cs_committed = sum (fun sh -> sh.sh_committed);
    cs_in_doubt = sum (fun sh -> sh.sh_in_doubt);
    cs_aborted = sum (fun sh -> sh.sh_aborted);
    cs_replayed = sum (fun sh -> sh.sh_replayed);
    cs_failures = List.concat_map (fun sh -> sh.sh_failures) shards;
  }

(* {1 Repro files}

   A crash failure serializes as a v3 repro whose comment carries the fault
   plan; {!replay_string} re-arms it and re-applies the oracle. *)

let crash_comment plan = "crash " ^ Wal.plan_to_string plan

let plan_of_comment cm =
  match String.split_on_char ' ' (String.trim cm) with
  | [ "crash"; p ] -> Wal.plan_of_string p
  | _ -> None

let repro_string (f : failure) =
  Fuzzcase.to_string
    ~comment:[ crash_comment f.cf_plan; violation_to_string f.cf_violation ]
    f.cf_case

(* {1 One-shot demo}

   Deterministic single-case crash+recover+verify roundtrip for the CLI
   [recover] subcommand and the CI smoke rule: pick the first generated
   case (for the seed) that logs anything, crash it — by default halfway
   through its appends — recover, and run the full oracle. *)

type demo = { d_case : Fuzzcase.t; d_plan : Wal.plan; d_outcome : outcome }

let demo ?plan ~seed () : demo =
  let rec pick i =
    if i >= 100 then
      invalid_arg "Fuzzrecover.demo: no crashable case in the first 100 of this seed"
    else
      let st = case_rng ~seed ~cases:100 i in
      let cfg = durability_point st Fuzzcase.default_point in
      let c = Fuzzgen.case st ~cfg in
      let reference = reference_run c in
      if Wal.armed_appends (Db.wal reference.Interleave.db) > 0 then (c, reference)
      else pick (i + 1)
  in
  let c, reference = pick 0 in
  let plan =
    match plan with
    | Some p -> p
    | None ->
        let appends = Wal.armed_appends (Db.wal reference.Interleave.db) in
        Wal.Crash_on_append (max 1 ((appends + 1) / 2))
  in
  { d_case = c; d_plan = plan; d_outcome = check_crash c ~reference plan }

(* Replay a crash repro: parse the case, recover the plan from the first
   [# crash ...] comment, and run the oracle once. *)
let replay_string content : (outcome, string) result =
  let plan =
    List.find_map
      (fun l ->
        let l = String.trim l in
        if String.length l > 1 && l.[0] = '#' then
          plan_of_comment (String.sub l 1 (String.length l - 1))
        else None)
      (String.split_on_char '\n' content)
  in
  match plan with
  | None -> Error "no '# crash <plan>' comment in repro"
  | Some plan ->
      Result.bind (Fuzzcase.of_string content) (fun (c, _expect) ->
          let reference = reference_run c in
          Ok (check_crash c ~reference plan))
