(* Differential matrix runner and oracle.

   Each case executes under SSI, S2PL and SI with the same scripts, rows,
   schedule and configuration point; the recorded committed histories are
   then judged by the MVSG checker (lib/sercheck):

   - SSI and S2PL histories must be MVSG-serializable — a cycle is an
     engine bug, the property PostgreSQL's SSI was hardened against.
   - A non-serializable SI history must contain the Theorem 2 dangerous
     structure (consecutive concurrent rw-edges with T_out committing
     first); a cycle without one falsifies the theory the runtime detector
     is built on.
   - Abort reasons must match the level's taxonomy: Unsafe only under SSI,
     first-committer-wins only under SI/SSI, and Internal_error (including
     the harness's stuck-transaction marker) nowhere.

   Runs where SSI aborted a transaction Unsafe while SI committed the same
   schedule serializably are counted as false positives — the §6.1.5
   metric. *)

open Core.Types

let level_name = function
  | Serializable -> "ssi"
  | Snapshot -> "si"
  | S2pl -> "s2pl"
  | Read_committed -> "rc"

let level_of_name = function
  | "ssi" -> Some Serializable
  | "si" -> Some Snapshot
  | "s2pl" -> Some S2pl
  | "rc" -> Some Read_committed
  | _ -> None

(* Canonical one-line-per-transaction serialization of a committed history;
   replay compares digests of this string, so equality here is the
   "byte-for-byte identical history" of the repro contract. *)
let history_to_string (h : committed_record list) =
  String.concat "\n"
    (List.map
       (fun r ->
         Printf.sprintf "T%d %s snap=%d commit=%d reads=[%s] writes=[%s]" r.h_id
           (isolation_to_string r.h_isolation)
           r.h_snapshot r.h_commit
           (String.concat ";"
              (List.map
                 (fun rr -> Printf.sprintf "%s/%s@%d" rr.r_table rr.r_key rr.r_version)
                 r.h_reads))
           (String.concat ";" (List.map (fun (t, k) -> t ^ "/" ^ k) r.h_writes)))
       h)

let history_digest h = Digest.to_hex (Digest.string (history_to_string h))

(* Run one case at one isolation level. *)
let run_case ~isolation (c : Fuzzcase.t) : Interleave.result =
  let config = Fuzzcase.config_of_point c.Fuzzcase.cfg in
  let order = Fuzzcase.schedule_ops c.Fuzzcase.specs c.Fuzzcase.schedule in
  Interleave.run_interleaving ~config ~init:c.Fuzzcase.init ~ro:c.Fuzzcase.ro ~isolation
    c.Fuzzcase.specs order

(* Shrinking predicate for SI anomalies (cheap: one run, no matrix). *)
let si_nonserializable c = not (run_case ~isolation:Snapshot c).Interleave.serializable

type violation =
  | Non_serializable of isolation  (** SSI or S2PL committed a cyclic history *)
  | Theorem2_violation  (** cyclic SI history without the Fig 2.2 structure *)
  | Unexpected_abort of isolation * abort_reason
      (** Internal_error anywhere, Unsafe outside SSI, FCW under S2PL *)

let violation_to_string = function
  | Non_serializable iso ->
      Printf.sprintf "non-serializable committed history under %s" (isolation_to_string iso)
  | Theorem2_violation -> "non-serializable SI history without a Theorem 2 dangerous structure"
  | Unexpected_abort (iso, r) ->
      Printf.sprintf "unexpected abort under %s: %s" (isolation_to_string iso)
        (abort_reason_to_string r)

(* Two violations are "the same bug" for shrinking purposes if they have the
   same constructor and level. *)
let same_violation a b =
  match (a, b) with
  | Non_serializable x, Non_serializable y -> x = y
  | Theorem2_violation, Theorem2_violation -> true
  | Unexpected_abort (x, _), Unexpected_abort (y, _) -> x = y
  | _ -> false

type level_report = {
  l_isolation : isolation;
  l_outcomes : abort_reason option list;
  l_serializable : bool;
  l_digest : string;
  l_history_text : string;  (** the canonical serialization the digest is over *)
  l_violation : violation option;
}

let abort_allowed iso (r : abort_reason) =
  match (iso, r) with
  | _, (Deadlock | Duplicate_key | User_abort) -> true
  | (Snapshot | Serializable), Update_conflict -> true
  | Serializable, Unsafe -> true
  | _, Internal_error _ -> false
  | _, (Update_conflict | Unsafe) -> false

let report ~isolation (c : Fuzzcase.t) : level_report =
  let r = run_case ~isolation c in
  let bad_abort =
    List.find_map
      (function Some a when not (abort_allowed isolation a) -> Some a | _ -> None)
      r.Interleave.outcomes
  in
  let violation =
    match bad_abort with
    | Some a -> Some (Unexpected_abort (isolation, a))
    | None -> (
        match isolation with
        | Serializable | S2pl ->
            if not r.Interleave.serializable then Some (Non_serializable isolation) else None
        | Snapshot ->
            if
              (not r.Interleave.serializable)
              && not (Mvsg.check_theorem2 r.Interleave.history)
            then Some Theorem2_violation
            else None
        | Read_committed -> None)
  in
  {
    l_isolation = isolation;
    l_outcomes = r.Interleave.outcomes;
    l_serializable = r.Interleave.serializable;
    l_digest = history_digest r.Interleave.history;
    l_history_text = history_to_string r.Interleave.history;
    l_violation = violation;
  }

type verdict = {
  v_violation : violation option;  (** first violation across the three levels *)
  v_si_anomaly : bool;  (** SI committed a non-serializable history *)
  v_ssi_unsafe : bool;  (** some transaction aborted Unsafe under SSI *)
  v_false_positive : bool;
      (** SSI aborted Unsafe but SI ran the same schedule serializably with
          no error aborts: the unsafe abort was unnecessary (§6.1.5) *)
  v_reports : level_report list;  (** ssi, si, s2pl in that order *)
}

let check (c : Fuzzcase.t) : verdict =
  let ssi = report ~isolation:Serializable c in
  let si = report ~isolation:Snapshot c in
  let s2pl = report ~isolation:S2pl c in
  let reports = [ ssi; si; s2pl ] in
  let ssi_unsafe = List.exists (( = ) (Some Unsafe)) ssi.l_outcomes in
  let si_clean =
    si.l_serializable
    && List.for_all (function None | Some User_abort -> true | Some _ -> false) si.l_outcomes
  in
  {
    v_violation = List.find_map (fun r -> r.l_violation) reports;
    v_si_anomaly = not si.l_serializable;
    v_ssi_unsafe = ssi_unsafe;
    v_false_positive = ssi_unsafe && si_clean;
    v_reports = reports;
  }

(* The same-kind-of-failure predicate the shrinker minimises against. *)
let reproduces viol c =
  match (check c).v_violation with Some v -> same_violation viol v | None -> false
