(** Fixed-size domain-pool job runner for embarrassingly parallel
    simulation work (experiment sweeps, fuzz campaigns, seed batches).

    Design contract — parallelism must be observationally invisible:

    - Every job is an isolated deterministic world (its own {!Sim.t} and
      {!Db.t}); no state crosses domains except the job's return value.
    - Results are re-assembled in submission order, so output derived from
      them is byte-identical whatever the pool size or completion order.
    - A job that raises is captured; after the whole batch has run, the
      exception of the {e lowest-index} failing job is re-raised at the
      join point with its original backtrace. The sequential fallback
      ([size = 1]) behaves identically (all jobs still run).
    - Jobs may not submit further work to any pool (nested submission
      would deadlock a fixed-size pool); {!run} raises [Invalid_argument]
      when called from inside a job, on any pool, including in the
      sequential fallback — so misuse fails the same way at [-j 1] and
      [-j N]. *)

type t

(** [create n] builds a pool of total parallelism [n >= 1]: [n - 1] worker
    domains plus the submitting thread, which participates in every batch.
    [n = 1] spawns no domains at all: {!run} then executes jobs inline, in
    order — the [-j 1] fallback path. *)
val create : int -> t

(** Total parallelism the pool was created with. *)
val size : t -> int

(** [Domain.recommended_domain_count ()] — the default for [-j 0]. *)
val recommended : unit -> int

(** [run pool thunks] executes every thunk (in any order, on any domain)
    and returns their results in submission order. [?on_result i v] is
    called on the submitting thread, in submission order, as the completed
    prefix of the batch grows (streaming progress); delivery stops at the
    first failed job. [on_result] must not submit further work.

    Raises [Invalid_argument] if called from inside a job or after
    {!shutdown}; re-raises the lowest-index job exception after the batch
    completes. *)
val run : ?on_result:(int -> 'a -> unit) -> t -> (unit -> 'a) list -> 'a list

(** [map ?pool f xs]: {!run} over [List.map f xs] when [pool] is given;
    plain sequential [List.map f xs] when it is [None] (the un-plumbed
    path, usable from inside jobs). *)
val map : ?pool:t -> ('a -> 'b) -> 'a list -> 'b list

(** True while the calling domain is executing a pool job. *)
val inside_job : unit -> bool

(** Stop the workers and join their domains. Idempotent. The pool cannot
    be used afterwards. *)
val shutdown : t -> unit

(** [with_pool ~j f] runs [f] with a fresh pool of size [j], shutting it
    down on exit (including exceptional exit). *)
val with_pool : j:int -> (t -> 'a) -> 'a
