(* Fixed-size domain pool with a shared work queue.

   Concurrency story: one mutex [m] guards the queue, the stop flag and the
   per-batch completion counter. Workers block on [nonempty]; the submitter
   blocks on [progress]. Result slots are plain [option array]s written by
   exactly one job each and read by the submitter only after it has
   observed, under [m], that the slot's job finished — the mutex
   release/acquire pair publishes the write, so no atomics are needed.

   Only one batch can be in flight: [run] blocks until its batch drains,
   and nested submission from jobs is rejected (a job waiting on a full
   pool of workers that are all waiting on jobs is a deadlock; rejecting
   loudly at any size keeps [-j 1] and [-j N] behaviourally identical). *)

type t = {
  size : int;
  m : Mutex.t;
  nonempty : Condition.t; (* a job was queued, or the pool is stopping *)
  progress : Condition.t; (* a job finished *)
  queue : (unit -> unit) Queue.t;
  mutable stopping : bool;
  mutable remaining : int; (* jobs of the in-flight batch not yet finished *)
  mutable workers : unit Domain.t list;
}

let size t = t.size

let recommended () = Domain.recommended_domain_count ()

(* Domain-local "currently executing a pool job" flag, for nested-submission
   rejection. *)
let in_job_key = Domain.DLS.new_key (fun () -> false)

let inside_job () = Domain.DLS.get in_job_key

let exec_job (f : unit -> 'a) : 'a =
  Domain.DLS.set in_job_key true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set in_job_key false) f

let rec worker_loop t =
  Mutex.lock t.m;
  while Queue.is_empty t.queue && not t.stopping do
    Condition.wait t.nonempty t.m
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.m (* stopping *)
  else begin
    let job = Queue.pop t.queue in
    Mutex.unlock t.m;
    (* [job] is a completion-counting wrapper built by [run]; it never
       raises (user exceptions are captured into the batch's error slots). *)
    exec_job job;
    worker_loop t
  end

let create n =
  if n < 1 then invalid_arg "Par.create: size must be >= 1";
  let t =
    {
      size = n;
      m = Mutex.create ();
      nonempty = Condition.create ();
      progress = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      remaining = 0;
      workers = [];
    }
  in
  if n > 1 then t.workers <- List.init (n - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  Mutex.lock t.m;
  t.stopping <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.m;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ~j f =
  let t = create j in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Re-raise the lowest-index captured exception, if any. *)
let join_errors errors =
  Array.iter
    (function
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ())
    errors

let run (type a) ?on_result t (thunks : (unit -> a) list) : a list =
  if inside_job () then invalid_arg "Par.run: nested submission from inside a pool job";
  if t.stopping then invalid_arg "Par.run: pool is shut down";
  let thunks = Array.of_list thunks in
  let n = Array.length thunks in
  if n = 0 then []
  else begin
    let results : a option array = Array.make n None in
    let errors : (exn * Printexc.raw_backtrace) option array = Array.make n None in
    if t.size = 1 then begin
      (* Sequential fallback: same semantics as the pool — every job runs,
         streaming stops at the first failure, lowest-index error re-raised
         at the join. *)
      let failed = ref false in
      Array.iteri
        (fun i th ->
          match exec_job th with
          | v ->
              results.(i) <- Some v;
              if not !failed then Option.iter (fun f -> f i v) on_result
          | exception e ->
              errors.(i) <- Some (e, Printexc.get_raw_backtrace ());
              failed := true)
        thunks
    end
    else begin
      let wrap i th () =
        (match th () with
        | v -> results.(i) <- Some v
        | exception e -> errors.(i) <- Some (e, Printexc.get_raw_backtrace ()));
        Mutex.lock t.m;
        t.remaining <- t.remaining - 1;
        Condition.broadcast t.progress;
        Mutex.unlock t.m
      in
      Mutex.lock t.m;
      t.remaining <- n;
      Array.iteri (fun i th -> Queue.push (wrap i th) t.queue) thunks;
      Condition.broadcast t.nonempty;
      Mutex.unlock t.m;
      (* Streaming delivery: [next] is the first slot not yet reported; we
         report the completed prefix, in order, on this thread only, and
         stop for good at the first failed slot. *)
      let next = ref 0 in
      let deliver () =
        match on_result with
        | None -> ()
        | Some f ->
            let ready = ref [] in
            Mutex.lock t.m;
            let continue = ref true in
            while !continue && !next < n do
              if errors.(!next) <> None then begin
                continue := false;
                next := n (* stop reporting forever *)
              end
              else
                match results.(!next) with
                | Some v ->
                    ready := (!next, v) :: !ready;
                    incr next
                | None -> continue := false
            done;
            Mutex.unlock t.m;
            (* callbacks outside the lock, oldest first *)
            List.iter (fun (i, v) -> f i v) (List.rev !ready)
      in
      (* The submitting thread participates: drain the queue, then wait for
         stragglers running on worker domains. *)
      let rec drive () =
        Mutex.lock t.m;
        if not (Queue.is_empty t.queue) then begin
          let job = Queue.pop t.queue in
          Mutex.unlock t.m;
          exec_job job;
          deliver ();
          drive ()
        end
        else if t.remaining > 0 then begin
          Condition.wait t.progress t.m;
          Mutex.unlock t.m;
          deliver ();
          drive ()
        end
        else begin
          Mutex.unlock t.m;
          deliver ()
        end
      in
      drive ()
    end;
    join_errors errors;
    Array.to_list (Array.map Option.get results)
  end

let map ?pool f xs =
  match pool with
  | None -> List.map f xs
  | Some t -> run t (List.map (fun x () -> f x) xs)
