(* Crash-recovery subsystem tests (PR 6):

   - WAL frame-codec properties: roundtrip over arbitrary binary payloads,
     and the torn-tail contract — every strict prefix of a valid image
     decodes to a record-prefix with the remainder reported as torn, never
     as an error; in-bounds corruption is an error.
   - Durability boundaries in both WAL modes: a commit that returned under
     Flush_per_commit survives, one that crashed inside the commit window
     does not; in No_flush mode unhardened commits are lost by design and
     the checkpoint interval bounds the loss window.
   - Recovery semantics: in-doubt rollback, Commit-then-Abort replay (a
     Committing transaction rolled back after its records hit the log),
     conservative summary-table entries for recovered commits, and the
     publish-skip that lets the snapshot horizon advance past a rolled-back
     commit timestamp.
   - The reset_stats regression: a counter reset concurrent with an
     in-flight group flush must not lose the flushing batch.
   - The fixed-seed crash-point campaign: >= 10k crash runs with zero
     recovery-oracle failures, identical with and without a domain pool. *)

open Core

(* {1 Codec properties} *)

let gen_bytes =
  QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 0 255)) (int_bound 12))

let gen_record =
  let open QCheck.Gen in
  frequency
    [
      (2, map (fun txn -> Wal.Begin { txn }) small_nat);
      ( 4,
        map
          (fun (txn, (table, key, value)) -> Wal.Write { txn; table; key; value })
          (pair small_nat (triple gen_bytes gen_bytes gen_bytes)) );
      ( 2,
        map
          (fun (txn, (table, key, value)) -> Wal.Insert { txn; table; key; value })
          (pair small_nat (triple gen_bytes gen_bytes gen_bytes)) );
      ( 2,
        map
          (fun (txn, (table, key)) -> Wal.Delete { txn; table; key })
          (pair small_nat (pair gen_bytes gen_bytes)) );
      (3, map (fun (txn, ts) -> Wal.Commit { txn; ts }) (pair small_nat small_nat));
      (1, map (fun txn -> Wal.Abort { txn }) small_nat);
      ( 1,
        map
          (fun (watermark, next_ts) -> Wal.Checkpoint { watermark; next_ts })
          (pair small_nat small_nat) );
    ]

let arb_records =
  QCheck.make
    ~print:(fun rs -> String.escaped (Wal.encode rs))
    QCheck.Gen.(list_size (int_bound 12) gen_record)

let prop_codec_roundtrip =
  QCheck.Test.make ~name:"wal codec roundtrips arbitrary records" ~count:500 arb_records
    (fun rs -> Wal.decode (Wal.encode rs) = Ok (rs, 0))

let rec is_prefix xs ys =
  match (xs, ys) with
  | [], _ -> true
  | x :: xs', y :: ys' -> x = y && is_prefix xs' ys'
  | _ :: _, [] -> false

(* Truncation at *every* byte position: decode must succeed, return a
   prefix of the original records, and report exactly the bytes past the
   last whole frame as torn (inside the header the whole prefix is torn). *)
let prop_codec_torn_tail =
  QCheck.Test.make ~name:"every strict prefix decodes with an exact torn tail" ~count:200
    arb_records (fun rs ->
      let s = Wal.encode rs in
      let ok = ref true in
      for i = 0 to String.length s - 1 do
        let p = String.sub s 0 i in
        match Wal.decode p with
        | Error _ -> ok := false
        | Ok (rs', torn) ->
            if not (is_prefix rs' rs) then ok := false
            else if i < String.length Wal.header then begin
              if rs' <> [] || torn <> i then ok := false
            end
            else if String.length (Wal.encode rs') + torn <> i then ok := false
      done;
      !ok)

let test_codec_corruption () =
  let reject what s =
    match Wal.decode s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s accepted" what
  in
  reject "bad header" "ssi-wal v9\n5:B 123\n";
  let img = Wal.encode [ Wal.Begin { txn = 1 } ] in
  reject "junk length prefix" (img ^ "x:B 2\n");
  reject "unknown record tag" (img ^ "5:Z 1 2\n");
  reject "missing terminator" (img ^ "3:B 2?7:C 2 9\n");
  (* A clean image with trailing garbage that happens to be digits is a torn
     frame, not corruption. *)
  match Wal.decode (img ^ "12") with
  | Ok (rs, 2) when rs = [ Wal.Begin { txn = 1 } ] -> ()
  | _ -> Alcotest.fail "digit-only tail should decode as torn"

(* {1 Durability boundaries} *)

let flush_config =
  {
    (Config.test ()) with
    Config.wal_mode = Wal.Flush_per_commit 0.01;
    checkpoint_interval = None;
  }

let run_with_crash ?(config = Config.test ()) specs order crash =
  Interleave.run_interleaving ~config ~crash ~isolation:Types.Serializable specs order

let recover_result (r : Interleave.result) =
  match Db.recover (Sim.create ()) ~log:(Wal.durable_log (Db.wal r.Interleave.db)) with
  | Ok (db, rep) -> (db, rep)
  | Error e -> Alcotest.failf "recovery failed: %s" e

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* Flush_per_commit: txn 1's commit flushed and returned before txn 2
   crashed in its commit window — txn 1 must survive, txn 2 must not. *)
let test_flushed_commit_survives () =
  let specs = Interleave.[ [ W "x" ]; [ W "y" ] ] in
  let order = Interleave.[ (0, W "x"); (1, W "y") ] in
  let r = run_with_crash ~config:flush_config specs order (Wal.Crash_at_commit_window 2) in
  Alcotest.(check bool) "crashed" true r.Interleave.crashed;
  let db, rep = recover_result r in
  Alcotest.(check int) "load + txn1 recovered" 2 rep.Db.r_committed;
  let dump = Db.dump_store db in
  Alcotest.(check bool) "txn1's write survives" true (contains dump "2:t0");
  Alcotest.(check bool) "txn2's unflushed write does not" false (contains dump "2:t1")

(* Flush_per_commit: a commit that never returned (crash between commit-ts
   assignment and the flush) must not survive — nothing of the transaction
   reached the durable image. *)
let test_commit_window_crash_lost () =
  let specs = Interleave.[ [ W "x" ] ] in
  let order = Interleave.[ (0, W "x") ] in
  let r = run_with_crash ~config:flush_config specs order (Wal.Crash_at_commit_window 1) in
  Alcotest.(check bool) "crashed" true r.Interleave.crashed;
  let db, rep = recover_result r in
  Alcotest.(check int) "only the bulk load recovered" 1 rep.Db.r_committed;
  Alcotest.(check int) "nothing in doubt: records never hardened" 0 rep.Db.r_in_doubt;
  let dump = Db.dump_store db in
  Alcotest.(check bool) "x keeps its loaded value" true (contains dump "1:0");
  Alcotest.(check bool) "the crashed write is gone" false (contains dump "2:t0")

(* No_flush: commits are buffered only, so an unhardened commit is lost by
   design (the explicit expected-loss case) — but a checkpoint interval of 1
   hardens each commit right after it completes, bounding the loss window to
   the single in-flight transaction. *)
let test_no_flush_expected_loss () =
  let specs = Interleave.[ [ W "x" ]; [ W "y" ] ] in
  let order = Interleave.[ (0, W "x"); (1, W "y") ] in
  (* No checkpointing: everything after the bulk load is lost. *)
  let cfg = { (Config.test ()) with Config.checkpoint_interval = None } in
  let r = run_with_crash ~config:cfg specs order (Wal.Crash_at_commit_window 2) in
  let db, rep = recover_result r in
  Alcotest.(check int) "only the bulk load survives without checkpoints" 1 rep.Db.r_committed;
  Alcotest.(check bool) "txn1's commit lost" false (contains (Db.dump_store db) "2:t0");
  (* Checkpoint every commit: txn 1 was hardened by the checkpoint that
     followed its commit; only the in-flight txn 2 is lost. *)
  let cfg = { (Config.test ()) with Config.checkpoint_interval = Some 1 } in
  let r = run_with_crash ~config:cfg specs order (Wal.Crash_at_commit_window 2) in
  let db, rep = recover_result r in
  Alcotest.(check int) "checkpoint bounded the loss to one txn" 2 rep.Db.r_committed;
  let dump = Db.dump_store db in
  Alcotest.(check bool) "txn1 survives via the checkpoint" true (contains dump "2:t0");
  Alcotest.(check bool) "txn2 is the expected loss" false (contains dump "2:t1");
  Alcotest.(check int) "horizon restored from the checkpoint" 2 rep.Db.r_last_commit_ts

(* Mid-flush torn tail: keep Begin, tear the Write — the transaction is in
   doubt (no durable Commit) and must be rolled back entirely. *)
let test_torn_flush_in_doubt () =
  let specs = Interleave.[ [ W "x" ] ] in
  let order = Interleave.[ (0, W "x") ] in
  let r =
    run_with_crash ~config:flush_config specs order
      (Wal.Crash_mid_flush { flush = 1; keep = 1; torn = 3 })
  in
  let db, rep = recover_result r in
  Alcotest.(check int) "one txn in doubt" 1 rep.Db.r_in_doubt;
  Alcotest.(check bool) "torn bytes discarded" true (rep.Db.r_torn_bytes > 0);
  Alcotest.(check bool) "no write applied" false (contains (Db.dump_store db) "2:t0")

(* {1 Recovery semantics} *)

(* Commit-then-Abort: a transaction killed while Committing (after its
   records, including Commit, reached the log) appends a compensating Abort
   record; replay must drop it entirely and count it once. *)
let test_commit_then_abort_replay () =
  let log =
    Wal.encode
      [
        Wal.Begin { txn = 3 };
        Wal.Write { txn = 3; table = "t"; key = "k"; value = "v" };
        Wal.Commit { txn = 3; ts = 1 };
        Wal.Abort { txn = 3 };
      ]
  in
  match Db.recover (Sim.create ()) ~log with
  | Error e -> Alcotest.failf "recovery failed: %s" e
  | Ok (db, rep) ->
      Alcotest.(check int) "aborted once" 1 rep.Db.r_aborted;
      Alcotest.(check int) "nothing committed" 0 rep.Db.r_committed;
      Alcotest.(check int) "nothing in doubt" 0 rep.Db.r_in_doubt;
      Alcotest.(check bool) "write dropped" false (contains (Db.dump_store db) "1:k")

(* Recovered commits above the checkpoint watermark leave conservative
   summary entries (SIREADs are volatile, §4.8 / Ports & Grittner): the
   post-recovery engine must err toward aborting, not toward admitting. *)
let test_recovery_conservative_summary () =
  let log =
    Wal.encode
      [
        Wal.Begin { txn = 2 };
        Wal.Write { txn = 2; table = "t"; key = "k"; value = "v" };
        Wal.Commit { txn = 2; ts = 1 };
      ]
  in
  match Db.recover (Sim.create ()) ~log with
  | Error e -> Alcotest.failf "recovery failed: %s" e
  | Ok (db, rep) ->
      Alcotest.(check int) "committed" 1 rep.Db.r_committed;
      Alcotest.(check bool) "conservative summary entries exist" true (Db.summary_size db > 0)

(* Publish-skip: rolling back a Committing transaction must let the
   snapshot horizon advance past its allocated (now unused) timestamp. *)
let test_publish_skip_horizon () =
  let sim = Sim.create () in
  let db = Db.create sim in
  let a = Internal.alloc_commit_ts db in
  let b = Internal.alloc_commit_ts db in
  Internal.publish_commit_ts db b;
  Alcotest.(check int) "horizon held below the unpublished hole" 0 (Db.last_commit_ts db);
  (* the rollback path publish-skips the abandoned timestamp *)
  Internal.publish_commit_ts db a;
  Alcotest.(check int) "horizon jumps past the hole" b (Db.last_commit_ts db)

(* reset_stats concurrent with an in-flight group flush: the reset zeroes
   counters only; the sealed batch must still harden. *)
let test_reset_stats_inflight_flush () =
  let sim = Sim.create () in
  let wal = Wal.create sim ~mode:(Wal.Flush_per_commit 0.01) in
  Sim.spawn sim (fun () ->
      Wal.append wal (Wal.Begin { txn = 1 });
      Wal.commit_flush wal);
  Sim.spawn sim (fun () ->
      Sim.delay sim 0.005;
      (* mid-flight: the leader sealed the batch and is sleeping in the
         simulated flush latency *)
      Wal.reset_stats wal);
  Sim.run sim;
  (* the append predates the reset, so its counter is zeroed; the flush
     completes after and is counted afresh *)
  Alcotest.(check int) "append counter was reset" 0 (Wal.appends wal);
  Alcotest.(check int) "post-reset flush still counted" 1 (Wal.flushes wal);
  match Wal.decode (Wal.durable_log wal) with
  | Ok (rs, 0) when rs = [ Wal.Begin { txn = 1 } ] -> ()
  | _ -> Alcotest.fail "in-flight batch lost by a concurrent reset_stats"

(* {1 Repro codec cross-version} *)

(* v1 (no memory_budget) and v2 (no durability fields) repros must parse
   with the old defaults and roundtrip through the v3 magic unchanged. *)
let test_codec_v2_compat () =
  let v2 =
    "ssi-fuzz-repro v2\n\
     cfg granularity=row ssi=precise gap_locking=1 abort_early=1 victim=pivot \
     ro_refinement=0 upgrade_siread=1 memory_budget=4\n\
     init k0=0\n\
     txn ro=0 r(k0);w(k0)\n\
     schedule 0 0\n"
  in
  match Fuzzcase.of_string v2 with
  | Error e -> Alcotest.failf "v2 repro rejected: %s" e
  | Ok (c, _) -> (
      Alcotest.(check int) "v2 keeps its budget" 4 c.Fuzzcase.cfg.Fuzzcase.memory_budget;
      Alcotest.(check bool) "v2 parses as buffered WAL" false c.Fuzzcase.cfg.Fuzzcase.wal_flush;
      Alcotest.(check int) "v2 parses as checkpointing off" 0
        c.Fuzzcase.cfg.Fuzzcase.checkpoint_interval;
      let s = Fuzzcase.to_string c in
      Alcotest.(check bool) "re-emitted with the v3 magic" true
        (String.length s >= String.length Fuzzcase.magic
        && String.sub s 0 (String.length Fuzzcase.magic) = Fuzzcase.magic);
      match Fuzzcase.of_string s with
      | Ok (c', _) -> Alcotest.(check bool) "v2 -> v3 roundtrip" true (c = c')
      | Error e -> Alcotest.failf "v3 re-emit rejected: %s" e)

let test_codec_v3_durability_roundtrip () =
  let c =
    {
      Fuzzcase.specs = [ [ Interleave.W "k0" ] ];
      ro = [ false ];
      init = [ ("k0", "0") ];
      schedule = [ 0 ];
      cfg =
        { Fuzzcase.default_point with Fuzzcase.wal_flush = true; checkpoint_interval = 3 };
    }
  in
  match Fuzzcase.of_string (Fuzzcase.to_string c) with
  | Ok (c', _) ->
      Alcotest.(check bool) "wal_flush survives" true c'.Fuzzcase.cfg.Fuzzcase.wal_flush;
      Alcotest.(check int) "checkpoint_interval survives" 3
        c'.Fuzzcase.cfg.Fuzzcase.checkpoint_interval
  | Error e -> Alcotest.failf "v3 roundtrip failed: %s" e

(* {1 Campaigns} *)

(* The acceptance bar: >= 10k sampled crash points, every plan fires, zero
   recovery-oracle failures. Fixed seed, so this is one deterministic
   computation. *)
let test_campaign_10k () =
  let s =
    Fuzzrecover.run_campaign ~seed:1 ~cases:4250 ~matrix:Fuzzcase.matrix_full ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "at least 10k crash runs (got %d)" s.Fuzzrecover.cs_runs)
    true
    (s.Fuzzrecover.cs_runs >= 10_000);
  Alcotest.(check int) "every sampled plan fired" s.Fuzzrecover.cs_runs
    s.Fuzzrecover.cs_crashes;
  Alcotest.(check bool) "torn tails exercised" true (s.Fuzzrecover.cs_torn > 0);
  Alcotest.(check bool) "in-doubt rollbacks exercised" true (s.Fuzzrecover.cs_in_doubt > 0);
  Alcotest.(check int) "zero recovery-oracle failures" 0
    (List.length s.Fuzzrecover.cs_failures)

(* Shard/pool invariance: the campaign summary is identical sequentially,
   with a 3-domain pool, and across shard sizes. *)
let test_campaign_pool_invariance () =
  let fingerprint (s : Fuzzrecover.summary) =
    ( s.Fuzzrecover.cs_runs,
      s.Fuzzrecover.cs_crashes,
      s.Fuzzrecover.cs_torn,
      s.Fuzzrecover.cs_committed,
      s.Fuzzrecover.cs_in_doubt,
      s.Fuzzrecover.cs_replayed,
      List.length s.Fuzzrecover.cs_failures )
  in
  let seq =
    fingerprint (Fuzzrecover.run_campaign ~seed:3 ~cases:300 ~matrix:Fuzzcase.matrix_full ())
  in
  let odd_shards =
    fingerprint
      (Fuzzrecover.run_campaign ~shard_size:37 ~seed:3 ~cases:300
         ~matrix:Fuzzcase.matrix_full ())
  in
  Alcotest.(check bool) "shard-size invariant" true (seq = odd_shards);
  Par.with_pool ~j:3 (fun pool ->
      let par =
        fingerprint
          (Fuzzrecover.run_campaign ~pool ~seed:3 ~cases:300 ~matrix:Fuzzcase.matrix_full ())
      in
      Alcotest.(check bool) "pool invariant" true (seq = par))

(* A crash failure's repro roundtrips: serialize a synthetic failure, replay
   it, and get the same crash point and a passing oracle. *)
let test_crash_repro_roundtrip () =
  let d = Fuzzrecover.demo ~seed:1 () in
  let f =
    {
      Fuzzrecover.cf_index = 0;
      cf_case = d.Fuzzrecover.d_case;
      cf_plan = d.Fuzzrecover.d_plan;
      cf_violation = Fuzzrecover.No_crash;
    }
  in
  match Fuzzrecover.replay_string (Fuzzrecover.repro_string f) with
  | Error e -> Alcotest.failf "replay rejected: %s" e
  | Ok o ->
      Alcotest.(check bool) "same plan" true (o.Fuzzrecover.o_plan = d.Fuzzrecover.d_plan);
      Alcotest.(check bool) "oracle passes" true (o.Fuzzrecover.o_violation = None)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "recovery"
    [
      ( "codec",
        [
          qt prop_codec_roundtrip;
          qt prop_codec_torn_tail;
          Alcotest.test_case "corruption rejected" `Quick test_codec_corruption;
        ] );
      ( "durability",
        [
          Alcotest.test_case "flushed commit survives" `Quick test_flushed_commit_survives;
          Alcotest.test_case "commit-window crash lost" `Quick test_commit_window_crash_lost;
          Alcotest.test_case "no-flush expected loss, checkpoint bounds it" `Quick
            test_no_flush_expected_loss;
          Alcotest.test_case "torn flush leaves txn in doubt" `Quick test_torn_flush_in_doubt;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "commit-then-abort replay" `Quick test_commit_then_abort_replay;
          Alcotest.test_case "conservative summary entries" `Quick
            test_recovery_conservative_summary;
          Alcotest.test_case "publish-skip advances the horizon" `Quick
            test_publish_skip_horizon;
          Alcotest.test_case "reset_stats vs in-flight flush" `Quick
            test_reset_stats_inflight_flush;
        ] );
      ( "repro codec",
        [
          Alcotest.test_case "v2 compatibility" `Quick test_codec_v2_compat;
          Alcotest.test_case "v3 durability fields roundtrip" `Quick
            test_codec_v3_durability_roundtrip;
          Alcotest.test_case "crash repro roundtrip" `Quick test_crash_repro_roundtrip;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "pool/shard invariance" `Slow test_campaign_pool_invariance;
          Alcotest.test_case "10k crash points, zero failures" `Slow test_campaign_10k;
        ] );
    ]
