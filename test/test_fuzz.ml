(* Tests for the differential fuzzer: generator validity, repro codec
   roundtrips, campaign determinism, the oracle smoke (no violations on a
   fixed seed), anomaly rediscovery + shrinking, and replay.

   The campaign tests double as the fixed-seed fuzz smoke wired into
   [dune runtest]: several hundred cases across the full configuration
   matrix in well under the suite's time budget. *)

let gen_cases ~seed ~n =
  let st = Random.State.make [| 0x5551f; seed |] in
  let points = Array.of_list Fuzzcase.matrix_full in
  List.init n (fun i -> Fuzzgen.case st ~cfg:points.(i mod Array.length points))

let test_generator_produces_valid_cases () =
  List.iteri
    (fun i c ->
      (match Fuzzcase.validate c with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "case %d invalid: %s" i e);
      Alcotest.(check bool) "at least two txns" true (List.length c.Fuzzcase.specs >= 2);
      Alcotest.(check int) "ro flags match" (List.length c.Fuzzcase.specs)
        (List.length c.Fuzzcase.ro);
      Alcotest.(check int) "schedule covers all ops" (Fuzzcase.total_ops c)
        (List.length c.Fuzzcase.schedule))
    (gen_cases ~seed:3 ~n:200)

let test_codec_roundtrip () =
  List.iteri
    (fun i c ->
      let expect = [ ("ssi", "0123456789abcdef0123456789abcdef"); ("si", "00000000000000000000000000000000") ] in
      let s = Fuzzcase.to_string ~expect ~comment:[ "roundtrip"; "case" ] c in
      match Fuzzcase.of_string s with
      | Error e -> Alcotest.failf "case %d failed to parse: %s" i e
      | Ok (c', expect') ->
          if c' <> c then
            Alcotest.failf "case %d did not roundtrip:\n%s\nvs\n%s" i s (Fuzzcase.to_string c');
          Alcotest.(check (list (pair string string))) "expect lines preserved" expect expect')
    (gen_cases ~seed:4 ~n:200)

(* Codec v2 compatibility: a v1 repro (no memory_budget cfg field) must
   still parse — meaning budget off — and re-emit under the v2 magic; a
   budget-carrying case must survive the v2 roundtrip intact. *)
let test_codec_v1_compat () =
  let v1 =
    "ssi-fuzz-repro v1\n\
     cfg granularity=row ssi=precise gap_locking=1 abort_early=1 victim=pivot \
     ro_refinement=0 upgrade_siread=1\n\
     init k0=0\n\
     txn ro=0 r(k0)\n\
     schedule 0\n"
  in
  (match Fuzzcase.of_string v1 with
  | Error e -> Alcotest.failf "v1 repro rejected: %s" e
  | Ok (c, _) -> (
      Alcotest.(check int) "v1 parses as budget off" 0 c.Fuzzcase.cfg.Fuzzcase.memory_budget;
      let s = Fuzzcase.to_string c in
      Alcotest.(check bool) "re-emitted with the v2 magic" true
        (String.length s >= String.length Fuzzcase.magic
        && String.sub s 0 (String.length Fuzzcase.magic) = Fuzzcase.magic);
      match Fuzzcase.of_string s with
      | Ok (c', _) -> Alcotest.(check bool) "v1 -> v2 roundtrip" true (c = c')
      | Error e -> Alcotest.failf "v2 re-emit rejected: %s" e));
  let c2 =
    {
      (List.hd (gen_cases ~seed:8 ~n:1)) with
      Fuzzcase.cfg = { Fuzzcase.default_point with Fuzzcase.memory_budget = 7 };
    }
  in
  match Fuzzcase.of_string (Fuzzcase.to_string c2) with
  | Ok (c', _) ->
      Alcotest.(check int) "budget preserved" 7 c'.Fuzzcase.cfg.Fuzzcase.memory_budget
  | Error e -> Alcotest.failf "v2 roundtrip failed: %s" e

let test_codec_rejects_garbage () =
  let bad = [ ""; "not a repro"; "ssi-fuzz-repro v0\ncfg x"; Fuzzcase.magic ^ "\nbogus line here" ] in
  List.iter
    (fun s ->
      match Fuzzcase.of_string s with
      | Ok _ -> Alcotest.failf "parsed garbage: %S" s
      | Error _ -> ())
    bad

(* The headline oracle property: a fixed-seed campaign across the full
   96-point matrix finds NO violations — SSI and S2PL never commit a
   non-serializable history, SI anomalies always match Theorem 2, and abort
   reasons respect each level's taxonomy — while still exercising the
   interesting space (SI anomalies and unsafe aborts both occur). *)
let campaign = lazy (Fuzz.run_campaign ~seed:1 ~cases:600 ~matrix:Fuzzcase.matrix_full ())

let test_campaign_smoke () =
  let s = Lazy.force campaign in
  Alcotest.(check int) "cases run" 600 s.Fuzz.s_cases;
  (match s.Fuzz.s_failures with
  | [] -> ()
  | f :: _ ->
      Alcotest.failf "oracle violation: %s\n%s"
        (Fuzzrun.violation_to_string f.Fuzz.f_violation)
        (Fuzzcase.to_string f.Fuzz.f_shrunk));
  Alcotest.(check bool) "SI anomalies occur" true (s.Fuzz.s_si_anomalies > 0);
  Alcotest.(check bool) "SSI unsafe aborts occur" true (s.Fuzz.s_ssi_unsafe > 0);
  Alcotest.(check bool) "false positives are a subset of unsafe" true
    (s.Fuzz.s_false_positives <= s.Fuzz.s_ssi_unsafe)

(* Bounded-memory fuzz: every matrix point with the budget on (a tiny
   budget plus aggressive promotion, so summarization fires even on small
   cases). Summarization is conservative by construction, so the MVSG
   oracle must find zero violations; the cost may only show up as false
   positives (unnecessary unsafe aborts), whose rate the check message
   reports. *)
let test_campaign_bounded_budget () =
  let matrix =
    List.filter (fun p -> p.Fuzzcase.memory_budget > 0) Fuzzcase.matrix_full
  in
  Alcotest.(check int) "96 bounded matrix points" 96 (List.length matrix);
  let s = Fuzz.run_campaign ~seed:9 ~cases:10_000 ~matrix () in
  Alcotest.(check int) "cases run" 10_000 s.Fuzz.s_cases;
  (match s.Fuzz.s_failures with
  | [] -> ()
  | f :: _ ->
      Alcotest.failf "oracle violation under memory budget: %s\n%s"
        (Fuzzrun.violation_to_string f.Fuzz.f_violation)
        (Fuzzcase.to_string f.Fuzz.f_shrunk));
  let rate =
    if s.Fuzz.s_ssi_unsafe = 0 then 0.0
    else float_of_int s.Fuzz.s_false_positives /. float_of_int s.Fuzz.s_ssi_unsafe
  in
  Alcotest.(check bool)
    (Printf.sprintf "false-positive rate %.3f (%d of %d unsafe aborts)" rate
       s.Fuzz.s_false_positives s.Fuzz.s_ssi_unsafe)
    true
    (s.Fuzz.s_false_positives <= s.Fuzz.s_ssi_unsafe);
  Alcotest.(check bool) "bounded runs still exercise unsafe aborts" true (s.Fuzz.s_ssi_unsafe > 0)

let test_campaign_deterministic () =
  let run () =
    let s = Fuzz.run_campaign ~seed:7 ~cases:150 ~matrix:Fuzzcase.matrix_default () in
    (s.Fuzz.s_si_anomalies, s.Fuzz.s_ssi_unsafe, s.Fuzz.s_false_positives,
     List.length s.Fuzz.s_failures)
  in
  Alcotest.(check bool) "same seed, same campaign" true (run () = run ())

(* §2: the paper's two motivating histories, rediscovered from random noise
   and delta-debugged down to minimal examples. *)
let anomalies =
  lazy
    (Fuzz.run_campaign ~shrink_anomalies:true ~seed:2 ~cases:3000 ~matrix:Fuzzcase.matrix_full ())
      .Fuzz.s_anomalies

let check_anomaly cls =
  match List.assoc_opt cls (Lazy.force anomalies) with
  | None -> Alcotest.failf "campaign did not rediscover %s" cls
  | Some c ->
      Alcotest.(check bool) "minimal: at most 3 transactions" true
        (List.length c.Fuzzcase.specs <= 3);
      Alcotest.(check bool) "still an SI anomaly" true (Fuzzrun.si_nonserializable c);
      (* shrunken = no single reduction keeps the anomaly *)
      Alcotest.(check bool) "1-minimal" true
        (not (List.exists Fuzzrun.si_nonserializable (Fuzzshrink.candidates c)))

let test_rediscovers_write_skew () = check_anomaly "write-skew"

let test_rediscovers_read_only_anomaly () = check_anomaly "read-only-anomaly"

let test_shrunk_failures_reproduce () =
  (* The shrinker must preserve the violation class it minimises: check on a
     synthetic predicate (op-count parity), independent of engine bugs. *)
  List.iter
    (fun c ->
      let keeps c = Fuzzcase.total_ops c mod 2 = List.length c.Fuzzcase.init mod 2 in
      if keeps c then begin
        let c' = Fuzzshrink.shrink ~keeps c in
        Alcotest.(check bool) "predicate preserved" true (keeps c');
        Alcotest.(check bool) "no smaller candidate" true
          (not (List.exists keeps (Fuzzshrink.candidates c')));
        Alcotest.(check bool) "still valid" true (Result.is_ok (Fuzzcase.validate c'))
      end)
    (gen_cases ~seed:11 ~n:60)

let test_replay_roundtrip () =
  List.iter
    (fun c ->
      let s = Fuzz.repro_string ~comment:[ "replay test" ] c in
      match Fuzz.replay_string s with
      | Error e -> Alcotest.failf "replay parse error: %s" e
      | Ok r ->
          Alcotest.(check int) "three digest checks" 3 (List.length r.Fuzz.rp_checks);
          Alcotest.(check bool) "digests match byte-for-byte" true r.Fuzz.rp_ok)
    (gen_cases ~seed:5 ~n:40)

let test_replay_detects_divergence () =
  let c = List.hd (gen_cases ~seed:6 ~n:1) in
  let s = Fuzz.repro_string c in
  (* Corrupt one digest: replay must parse but flag the mismatch. *)
  let corrupted =
    String.concat "\n"
      (List.map
         (fun l ->
           if String.length l > 7 && String.sub l 0 7 = "expect " then
             String.sub l 0 (String.length l - 4) ^ "beef"
           else l)
         (String.split_on_char '\n' s))
  in
  (match Fuzz.replay_string corrupted with
  | Error e -> Alcotest.failf "corrupted digest should still parse: %s" e
  | Ok r ->
      Alcotest.(check bool) "mismatch detected" false r.Fuzz.rp_ok;
      Alcotest.(check bool) "some check failed" true
        (List.exists (fun rc -> not rc.Fuzz.rc_ok) r.Fuzz.rp_checks));
  (* An unknown level name is a parse-level error. *)
  let unknown = s ^ "expect bogus 0123456789abcdef0123456789abcdef\n" in
  match Fuzz.replay_string unknown with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown expect level should be rejected"

(* The campaign result must be a pure function of (seed, cases, matrix,
   profile): independent of how the case range is cut into shards and of
   whether a domain pool runs them. This is the lib-level half of the
   -j byte-identical guarantee (bin/dune diffs the CLI output too). *)
let test_campaign_shard_and_pool_invariant () =
  let campaign ?pool ?shard_size () =
    Fuzz.run_campaign ?pool ?shard_size ~shrink_anomalies:true ~seed:5 ~cases:400
      ~matrix:Fuzzcase.matrix_full ()
  in
  let fingerprint (s : Fuzz.summary) =
    ( s.Fuzz.s_cases,
      s.Fuzz.s_si_anomalies,
      s.Fuzz.s_ssi_unsafe,
      s.Fuzz.s_false_positives,
      List.map (fun f -> f.Fuzz.f_shrunk) s.Fuzz.s_failures,
      s.Fuzz.s_anomalies )
  in
  let base = campaign () in
  Alcotest.(check bool) "campaign found anomalies" true (base.Fuzz.s_si_anomalies > 0);
  let base_fp = fingerprint base in
  List.iter
    (fun shard_size ->
      Alcotest.(check bool)
        (Printf.sprintf "shard size %d" shard_size)
        true
        (fingerprint (campaign ~shard_size ()) = base_fp))
    [ 1; 37; 400; 10_000 ];
  Par.with_pool ~j:3 (fun pool ->
      Alcotest.(check bool) "pool -j 3" true (fingerprint (campaign ~pool ()) = base_fp);
      Alcotest.(check bool) "pool -j 3, shard size 59" true
        (fingerprint (campaign ~pool ~shard_size:59 ()) = base_fp))

let suite =
  [
    ("generator produces valid cases", `Quick, test_generator_produces_valid_cases);
    ("codec roundtrip", `Quick, test_codec_roundtrip);
    ("codec v1 compatibility", `Quick, test_codec_v1_compat);
    ("codec rejects garbage", `Quick, test_codec_rejects_garbage);
    ("campaign smoke: no oracle violations", `Quick, test_campaign_smoke);
    ("campaign with memory budget: no oracle violations", `Slow, test_campaign_bounded_budget);
    ("campaign deterministic", `Quick, test_campaign_deterministic);
    ("campaign shard/pool invariant", `Quick, test_campaign_shard_and_pool_invariant);
    ("rediscovers write skew", `Slow, test_rediscovers_write_skew);
    ("rediscovers read-only anomaly", `Slow, test_rediscovers_read_only_anomaly);
    ("shrinker minimises and preserves", `Quick, test_shrunk_failures_reproduce);
    ("replay roundtrip", `Quick, test_replay_roundtrip);
    ("replay detects divergence", `Quick, test_replay_detects_divergence);
  ]

let () = Alcotest.run "fuzz" [ ("fuzz", suite) ]
