(* Tests for the DPOR schedule explorer: cross-validation against full
   enumeration (the soundness oracle), the reduction criterion, the
   equivalence property over generated programs, streaming-enumeration
   regressions, and the reduction-metrics plumbing. *)

open Core

let levels = [ Types.Serializable; Types.Snapshot; Types.S2pl ]

let level_name = Types.isolation_to_string

let canonical_specs =
  [
    ("paper", Interleave.paper_spec);
    ("write-skew", Interleave.write_skew_spec);
    ("read-only", Interleave.read_only_anomaly_spec);
  ]

(* {1 Cross-validation: canonical specs × prototype matrix × levels}

   The explorer's whole claim: on every program small enough to enumerate,
   the DPOR digest set equals the full-enumeration digest set, at every
   isolation level and matrix point. *)

let test_cross_validate_canonical () =
  List.iter
    (fun cfg ->
      let config = Fuzzcase.config_of_point cfg in
      List.iter
        (fun (sname, spec) ->
          List.iter
            (fun iso ->
              let v = Explore.cross_validate ~config ~isolation:iso spec in
              let label =
                Printf.sprintf "%s/%s/%s" (Fuzzcase.point_to_string cfg) sname (level_name iso)
              in
              Alcotest.(check (list string)) (label ^ " digest sets equal") v.Explore.v_full
                v.Explore.v_dpor;
              Alcotest.(check bool)
                (Printf.sprintf "%s executed %d <= bound %d" label v.Explore.v_stats.Explore.executed
                   v.Explore.v_stats.Explore.bound)
                true
                (v.Explore.v_stats.Explore.executed <= v.Explore.v_stats.Explore.bound))
            levels)
        canonical_specs)
    Fuzzcase.matrix_default

(* {1 Reduction criterion}

   On the 5-transaction §4.7 chain the explorer must execute at most a
   quarter of the multinomial bound (the acceptance threshold; in practice
   it lands near 5%). *)

let test_reduction_factor () =
  let _, st = Explore.explore ~isolation:Types.Serializable Interleave.paper_spec_5 in
  Alcotest.(check int) "bound is the multinomial count" 5040 st.Explore.bound;
  Alcotest.(check bool)
    (Printf.sprintf "executed %d <= bound/4 = %d" st.Explore.executed (st.Explore.bound / 4))
    true
    (st.Explore.executed <= st.Explore.bound / 4)

(* {1 Explored schedules carry no MVSG violation}

   Serializable-guaranteeing levels must stay anomaly-free on every
   schedule the explorer actually runs — checked via the [on_run] oracle,
   not just via digests. *)

let test_no_mvsg_violations_explored () =
  List.iter
    (fun iso ->
      List.iter
        (fun (sname, spec) ->
          let violations = ref 0 in
          let _ =
            Explore.explore ~isolation:iso
              ~on_run:(fun r -> if not r.Interleave.serializable then incr violations)
              spec
          in
          Alcotest.(check int)
            (Printf.sprintf "%s/%s: MVSG violations among explored schedules" sname
               (level_name iso))
            0 !violations)
        (("write-skew-3", Interleave.write_skew_spec_3) :: canonical_specs))
    [ Types.Serializable; Types.S2pl ]

(* {1 Equivalence property over generated programs}

   A fixed-seed Fuzzgen stream of small (≤ 3 txns, ≤ 3 ops each) programs
   across the granularity × variant matrix: for every case and level the
   DPOR digest set must equal full enumeration. Inserts, deletes, scans and
   user aborts are all in the generator's vocabulary, so this exercises gap
   and page footprints, not just point reads/writes. *)

let test_equivalence_property () =
  let st = Random.State.make [| 0xD9_0E |] in
  let profile = { Fuzzgen.p_max_txns = 3; p_max_ops = 3; p_max_keys = 4 } in
  let points = Array.of_list Fuzzcase.matrix_default in
  for i = 0 to 11 do
    let cfg = points.(i mod Array.length points) in
    let case = Fuzzgen.case ~profile st ~cfg in
    let config = Fuzzcase.config_of_point cfg in
    let iso = List.nth levels (i mod 3) in
    let v =
      Explore.cross_validate ~config ~init:case.Fuzzcase.init ~ro:case.Fuzzcase.ro
        ~isolation:iso case.Fuzzcase.specs
    in
    let label =
      Printf.sprintf "case %d [%s] %s under %s" i
        (String.concat " | " (List.map Interleave.spec_to_string case.Fuzzcase.specs))
        (Fuzzcase.point_to_string cfg) (level_name iso)
    in
    Alcotest.(check (list string)) (label ^ ": digest sets equal") v.Explore.v_full
      v.Explore.v_dpor
  done

(* {1 Parallel frontier determinism} *)

let test_parallel_determinism () =
  let seq, st1 = Explore.explore ~isolation:Types.Serializable Interleave.read_only_anomaly_spec in
  let par, st4 =
    Par.with_pool ~j:4 (fun pool ->
        Explore.explore ~pool ~isolation:Types.Serializable Interleave.read_only_anomaly_spec)
  in
  Alcotest.(check (list string)) "digests identical at -j 1 and -j 4" seq par;
  Alcotest.(check int) "schedule counts identical" st1.Explore.executed st4.Explore.executed;
  Alcotest.(check int) "backtracks identical" st1.Explore.backtracks st4.Explore.backtracks

(* {1 Streaming enumeration regressions (satellite: sweep memory)}

   [interleavings_seq] must enumerate lazily: taking a handful of schedules
   of a 369600-schedule spec may not allocate anything near the
   materialized list's footprint, and the streamed count must equal the
   closed-form multinomial. *)

let test_streaming_count () =
  let n = Seq.fold_left (fun a _ -> a + 1) 0 (Interleave.interleavings_seq Interleave.paper_spec_5) in
  Alcotest.(check int) "streamed count = multinomial" 5040 n;
  Alcotest.(check int) "closed form agrees" 5040
    (Interleave.count_interleavings Interleave.paper_spec_5);
  Alcotest.(check int) "write-skew 4-cycle bound" 369600
    (Interleave.count_interleavings Interleave.write_skew_spec_4)

let test_streaming_is_lazy () =
  (* A full materialization of write_skew_spec_4 is 369600 schedules × 12
     ops ≈ hundreds of MB of list cells. Taking the first 10 must stay
     under a loose 8 MB ceiling (one path through the merge tree plus
     per-element overhead). *)
  let before = Gc.allocated_bytes () in
  let taken = ref 0 in
  let seq = ref (Interleave.interleavings_seq Interleave.write_skew_spec_4) in
  (try
     for _ = 1 to 10 do
       match !seq () with
       | Seq.Nil -> raise Exit
       | Seq.Cons (sched, rest) ->
           assert (List.length sched = 12);
           incr taken;
           seq := rest
     done
   with Exit -> ());
  let allocated = Gc.allocated_bytes () -. before in
  Alcotest.(check int) "took 10 schedules" 10 !taken;
  Alcotest.(check bool)
    (Printf.sprintf "allocated %.0f bytes for 10 of 369600 schedules" allocated)
    true
    (allocated < 8_000_000.)

(* {1 Reduction metrics through Obs} *)

let test_obs_metrics () =
  let obs = Obs.create () in
  let _, st = Explore.explore ~obs ~isolation:Types.Snapshot Interleave.write_skew_spec in
  let m = Obs.metrics obs in
  Alcotest.(check int) "m_explored = executed" st.Explore.executed m.Obs.m_explored;
  Alcotest.(check int) "m_explore_bound = bound" st.Explore.bound m.Obs.m_explore_bound;
  Alcotest.(check int) "m_backtracks = backtracks" st.Explore.backtracks m.Obs.m_backtracks;
  Alcotest.(check int) "m_sleep_hits = sleep hits" st.Explore.sleep_hits m.Obs.m_sleep_hits;
  let rendered = Fmt.str "%a" Obs.pp_metrics m in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "pp_metrics shows the exploration line" true
    (contains rendered "exploration:")

let () =
  Alcotest.run "explore"
    [
      ( "dpor",
        [
          ("cross-validate canonical specs x matrix", `Slow, test_cross_validate_canonical);
          ("reduction factor on the 5-chain", `Quick, test_reduction_factor);
          ("no MVSG violations among explored schedules", `Slow, test_no_mvsg_violations_explored);
          ("equivalence property on generated programs", `Slow, test_equivalence_property);
          ("parallel frontier determinism", `Quick, test_parallel_determinism);
        ] );
      ( "streaming",
        [
          ("streamed enumeration count", `Quick, test_streaming_count);
          ("enumeration is lazy", `Quick, test_streaming_is_lazy);
        ] );
      ("metrics", [ ("reduction metrics through Obs", `Quick, test_obs_metrics) ]);
    ]
