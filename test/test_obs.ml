(* Observability subsystem tests: trace determinism (benchmark numbers are
   byte-identical with tracing on or off), Chrome-trace JSON well-formedness,
   metric counters, the user-abort stats split, the commit-weighted mean
   response aggregation, crash safety of the Committing state, LIMIT-scan
   footprints, and the linear (non-quadratic) retention of committed
   transaction records. *)

open Core
open Testutil

let si = Types.Snapshot

let ssi = Types.Serializable

(* {1 Helpers} *)

let sibench_cfg =
  {
    Driver.default_config with
    Driver.isolation = ssi;
    mpl = 5;
    warmup = 0.05;
    duration = 0.2;
  }

let sibench_make_db sim =
  let db = Db.create ~config:(Config.innodb ()) sim in
  Sibench.setup db ~items:20 ();
  db

let run_sibench ?obs () = Driver.run_once ?obs ~make_db:sibench_make_db ~mix:(Sibench.mix ~items:20 ()) sibench_cfg

let trace_to_string obs =
  let file = Filename.temp_file "ssi_trace" ".json" in
  Obs.write_trace_file file obs;
  let ic = open_in_bin file in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  Sys.remove file;
  s

(* Minimal JSON well-formedness check: quote/escape-aware bracket balance,
   pure-ASCII output (all non-ASCII bytes must have been \u-escaped), and no
   raw control characters inside strings. *)
let check_json s =
  let depth = ref 0 in
  let in_str = ref false in
  let esc = ref false in
  let ok = ref true in
  String.iter
    (fun ch ->
      if Char.code ch >= 0x80 then ok := false;
      if !in_str then
        if !esc then esc := false
        else if ch = '\\' then esc := true
        else if ch = '"' then in_str := false
        else if Char.code ch < 0x20 then ok := false
        else ()
      else
        match ch with
        | '"' -> in_str := true
        | '[' | '{' -> incr depth
        | ']' | '}' ->
            decr depth;
            if !depth < 0 then ok := false
        | _ -> ())
    s;
  !ok && !depth = 0 && not !in_str

(* {1 Tentpole: determinism and trace format} *)

(* Tracing must not change any benchmark number: same commits, same abort
   counts, same response times, with or without a trace+metrics sink. *)
let test_trace_does_not_perturb () =
  let plain = run_sibench () in
  let obs = Obs.create ~trace:true () in
  let traced = run_sibench ~obs () in
  Alcotest.(check int) "commits" plain.Driver.commits traced.Driver.commits;
  Alcotest.(check int) "deadlocks" plain.Driver.deadlocks traced.Driver.deadlocks;
  Alcotest.(check int) "conflicts" plain.Driver.conflicts traced.Driver.conflicts;
  Alcotest.(check int) "unsafe" plain.Driver.unsafe traced.Driver.unsafe;
  Alcotest.(check (float 0.0)) "mean response" plain.Driver.mean_response traced.Driver.mean_response;
  Alcotest.(check int) "retained" plain.Driver.end_retained traced.Driver.end_retained;
  Alcotest.(check bool) "events were recorded" true (Obs.event_count obs > 0)

(* Two traced runs of the same seed produce byte-identical trace files. *)
let test_trace_deterministic () =
  let o1 = Obs.create ~trace:true () in
  let o2 = Obs.create ~trace:true () in
  ignore (run_sibench ~obs:o1 ());
  ignore (run_sibench ~obs:o2 ());
  Alcotest.(check int) "same event count" (Obs.event_count o1) (Obs.event_count o2);
  Alcotest.(check string) "byte-identical traces" (trace_to_string o1) (trace_to_string o2)

let test_trace_json_valid () =
  let obs = Obs.create ~trace:true () in
  ignore (run_sibench ~obs ());
  let s = trace_to_string obs in
  Alcotest.(check bool) "starts as array" true (String.length s > 0 && s.[0] = '[');
  Alcotest.(check bool) "well-formed JSON, ASCII only" true (check_json s)

(* The gap-supremum resource name contains raw \xff bytes; a traced scan
   must escape them (the exporter emits ÿ). *)
let test_trace_escapes_gap_supremum () =
  let obs = Obs.create ~trace:true () in
  let env = make_env ~tables:[ "t" ] ~rows:[ ("t", [ ("a", "1") ]) ] () in
  Db.set_obs env.db obs;
  Sim.spawn env.sim (fun () ->
      ignore (atomically env ssi (fun t -> Txn.scan t "t")));
  Sim.run env.sim;
  let s = trace_to_string obs in
  Alcotest.(check bool) "valid JSON" true (check_json s);
  let contains_sub s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  (* Resource ids render through the shared [Obs.res_id_escape] (canonical
     %HH form) in every exporter, the Chrome trace included. *)
  Alcotest.(check bool) "supremum gap resource escaped" true (contains_sub s "%ff%ff(sup)")

let test_metrics_populated () =
  let obs = Obs.create () in
  let r = run_sibench ~obs () in
  let m = Obs.metrics obs in
  Alcotest.(check bool) "commit latencies recorded" true (Obs.hist_count m.Obs.m_commit_latency > 0);
  Alcotest.(check bool) "conflict edges recorded" true (Obs.conflict_total m > 0);
  Alcotest.(check bool) "siread high-water mark" true (m.Obs.m_siread_hwm > 0);
  Alcotest.(check bool) "retained high-water mark" true (m.Obs.m_retained_hwm > 0);
  (* run_once snapshots the same metrics into the result *)
  Alcotest.(check int) "result carries the metrics" (Obs.conflict_total m)
    (Obs.conflict_total r.Driver.metrics)

(* Conflict-source split: a plain rw conflict through SIREAD-vs-X and a
   newer-version read land in different counters. *)
let test_conflict_sources_split () =
  let obs = Obs.create () in
  let env = make_env ~tables:[ "t" ] ~rows:[ ("t", [ ("x", "0"); ("y", "0") ]) ] () in
  Db.set_obs env.db obs;
  (* T1 reads x then writes y; T2 writes x after T1's read: T1 -rw-> T2 via
     mark_siread_holders (Siread_vs_x). *)
  let r1 =
    script env ~at:0.0 ~gap:0.05 ~isolation:ssi
      [ (fun t -> ignore (Txn.read t "t" "x")); (fun t -> Txn.write t "t" "y" "1") ]
  in
  let r2 = script env ~at:0.01 ~isolation:ssi [ (fun t -> Txn.write t "t" "x" "1") ] in
  run_procs env [];
  check_outcome "T1 commits" Committed r1;
  check_outcome "T2 commits" Committed r2;
  let m = Obs.metrics obs in
  Alcotest.(check bool) "siread-x edges counted" true (m.Obs.m_conflict_siread_x > 0);
  Alcotest.(check int) "no page-stamp edges in row mode" 0 m.Obs.m_conflict_page_stamp

(* {1 Stats satellites} *)

(* User aborts are booked under their own counter, not aborts_other, and are
   not double-counted as commits at the Db level. *)
let test_user_abort_stats_split () =
  let env = make_env ~tables:[ "t" ] () in
  Sim.spawn env.sim (fun () ->
      match
        Db.run env.db si (fun t ->
            Txn.write t "t" "k" "v";
            raise (Types.Abort Types.User_abort))
      with
      | Ok () -> Alcotest.fail "expected user abort"
      | Error r ->
          Alcotest.(check string) "reason" "user-abort" (Types.abort_reason_to_string r));
  Sim.run env.sim;
  let s = Db.stats env.db in
  Alcotest.(check int) "commits" 0 s.Internal.commits;
  Alcotest.(check int) "aborts_user" 1 s.Internal.aborts_user;
  Alcotest.(check int) "aborts_other" 0 s.Internal.aborts_other;
  Alcotest.(check int) "no leaked active txn" 0 (Db.active_count env.db);
  Alcotest.(check int) "locks released" 0 (Db.lock_table_size env.db)

(* Driver level: a program that always rolls back counts as completed work
   with user_aborts tracked, and contributes nothing to aborts_per_commit. *)
let test_driver_user_abort_counter () =
  let mix =
    [
      Driver.program "rollback" (fun _st t ->
          Txn.write t "t" "k" "v";
          raise (Types.Abort Types.User_abort));
    ]
  in
  let make_db sim =
    let db = Db.create ~config:(Config.test ()) sim in
    ignore (Db.create_table db "t");
    db
  in
  let cfg = { Driver.default_config with Driver.mpl = 2; warmup = 0.01; duration = 0.1 } in
  let r = Driver.run_once ~make_db ~mix cfg in
  Alcotest.(check bool) "progresses" true (r.Driver.commits > 10);
  Alcotest.(check int) "all completions were rollbacks" r.Driver.commits r.Driver.user_aborts;
  Alcotest.(check int) "not booked as errors" 0 r.Driver.other_aborts;
  Alcotest.(check (float 0.0)) "aborts_per_commit excludes user aborts" 0.0
    r.Driver.aborts_per_commit;
  match r.Driver.programs with
  | [ ps ] ->
      Alcotest.(check int) "per-program user aborts" r.Driver.user_aborts ps.Driver.ps_user_aborts;
      Alcotest.(check int) "per-program latency hist" r.Driver.commits
        (Obs.hist_count ps.Driver.ps_latency)
  | _ -> Alcotest.fail "expected one program entry"

(* s_mean_response must be the commit-weighted mean of per-seed means. *)
let test_weighted_mean_response () =
  let seeds = [ 1; 2; 3 ] in
  let results =
    List.map
      (fun seed ->
        Driver.run_once ~make_db:sibench_make_db ~mix:(Sibench.mix ~items:20 ())
          { sibench_cfg with Driver.seed })
      seeds
  in
  let total = List.fold_left (fun a r -> a + r.Driver.commits) 0 results in
  let expected =
    List.fold_left
      (fun a r -> a +. (r.Driver.mean_response *. float_of_int r.Driver.commits))
      0.0 results
    /. float_of_int total
  in
  let s =
    Driver.run_seeds ~make_db:sibench_make_db ~mix:(Sibench.mix ~items:20 ()) ~seeds sibench_cfg
  in
  Alcotest.(check (float 1e-12)) "commit-weighted mean response" expected s.Driver.s_mean_response;
  (* with_metrics merges per-run metrics into the summary *)
  let sm =
    Driver.run_seeds ~with_metrics:true ~make_db:sibench_make_db
      ~mix:(Sibench.mix ~items:20 ()) ~seeds sibench_cfg
  in
  match sm.Driver.s_metrics with
  | None -> Alcotest.fail "expected merged metrics"
  | Some m ->
      Alcotest.(check bool) "merged commit count covers all seeds" true
        (Obs.hist_count m.Obs.m_commit_latency >= total)

(* {1 Committing crash safety} *)

(* Rolling back a transaction already flipped to Committing (the state
   between the commit-time flag check and publication) must release its
   locks and forget it — previously rollback_now was a no-op here and the
   transaction leaked in db.active with its locks held forever. *)
let test_rollback_committing_txn () =
  let env = make_env ~tables:[ "t" ] () in
  Sim.spawn env.sim (fun () ->
      let t = Db.begin_txn env.db ssi in
      Txn.write t "t" "k" "v";
      t.Internal.state <- Internal.Committing;
      Txn.abort t);
  Sim.run env.sim;
  Alcotest.(check int) "no leaked active txn" 0 (Db.active_count env.db);
  Alcotest.(check int) "locks released" 0 (Db.lock_table_size env.db);
  Alcotest.(check int) "booked as user abort" 1 (Db.stats env.db).Internal.aborts_user

(* An internal error raised mid-commit (here: the table vanishes between the
   write and the commit-time install) aborts cleanly instead of leaking the
   Committing transaction. *)
let test_commit_internal_error_no_leak () =
  let env = make_env ~tables:[ "t" ] () in
  Sim.spawn env.sim (fun () ->
      match
        Db.run env.db ssi (fun t ->
            Txn.write t "t" "k" "v";
            Hashtbl.remove env.db.Internal.tables "t")
      with
      | Ok () -> Alcotest.fail "commit should have failed"
      | Error (Types.Internal_error _) -> ()
      | Error r -> Alcotest.failf "unexpected abort: %s" (Types.abort_reason_to_string r));
  Sim.run env.sim;
  Alcotest.(check int) "no leaked active txn" 0 (Db.active_count env.db);
  Alcotest.(check int) "locks released" 0 (Db.lock_table_size env.db);
  Alcotest.(check int) "no retained record" 0 (Db.retained_count env.db)

(* {1 LIMIT scans (satellite: pin result set and lock footprint)} *)

let limit_rows = ("t", [ ("a", "1"); ("c", "3"); ("e", "5") ])

let holds env owner r = Lockmgr.holds_of (Db.locks env.db) ~owner r

(* LIMIT stops at the n-th visible row. The own buffered insert "b" created
   an index entry, so the scan visits a then b and stops there: the result
   is the two smallest visible rows and the SIREAD footprint covers exactly
   the visited prefix — rows/gaps a and b, no row c, no terminal gap. *)
let test_limit_scan_own_insert_in_prefix () =
  let env = make_env ~tables:[ "t" ] ~rows:[ limit_rows ] () in
  let tid = ref 0 in
  Sim.spawn env.sim (fun () ->
      let t = Db.begin_txn env.db ssi in
      tid := Txn.id t;
      Txn.insert t "t" "b" "2";
      let r = Txn.scan ~limit:2 t "t" in
      Alcotest.(check (list (pair string string)))
        "limit-2 returns the two smallest visible rows" [ ("a", "1"); ("b", "2") ] r;
      Alcotest.(check bool) "siread row a" true (List.mem Lockmgr.Siread (holds env !tid "r/t/a"));
      Alcotest.(check bool) "siread gap a" true (List.mem Lockmgr.Siread (holds env !tid "g/t/a"));
      Alcotest.(check bool) "siread row b" true (List.mem Lockmgr.Siread (holds env !tid "r/t/b"));
      Alcotest.(check bool) "siread gap b" true (List.mem Lockmgr.Siread (holds env !tid "g/t/b"));
      (* the insert's own gap lock (X on the gap before c) is expected;
         what must NOT be there is any scan SIREAD past the prefix *)
      Alcotest.(check bool) "no siread on row c" false
        (List.mem Lockmgr.Siread (holds env !tid "r/t/c"));
      Alcotest.(check bool) "row e untouched" true (holds env !tid "r/t/e" = []);
      Alcotest.(check bool) "no terminal gap" true (holds env !tid "g/t/\xff\xff(sup)" = []);
      Txn.commit t);
  Sim.run env.sim

(* An own insert beyond the examined prefix must not leak into the result. *)
let test_limit_scan_own_insert_beyond_prefix () =
  let env = make_env ~tables:[ "t" ] ~rows:[ limit_rows ] () in
  Sim.spawn env.sim (fun () ->
      ignore
        (atomically env ssi (fun t ->
             Txn.insert t "t" "z" "26";
             let r = Txn.scan ~limit:2 t "t" in
             Alcotest.(check (list (pair string string)))
               "z lies beyond the visited prefix" [ ("a", "1"); ("c", "3") ] r)));
  Sim.run env.sim

(* An own buffered delete hides the row; the scan keeps going and still
   counts only visible rows against the limit. *)
let test_limit_scan_own_delete () =
  let env = make_env ~tables:[ "t" ] ~rows:[ limit_rows ] () in
  Sim.spawn env.sim (fun () ->
      ignore
        (atomically env ssi (fun t ->
             ignore (Txn.delete t "t" "a");
             let r = Txn.scan ~limit:1 t "t" in
             Alcotest.(check (list (pair string string)))
               "deleted row skipped, next visible returned" [ ("c", "3") ] r)));
  Sim.run env.sim

(* A limit larger than the table exhausts the scan: the terminal
   (supremum) gap lock must be taken, exactly as for an unlimited scan. *)
let test_limit_scan_underflow_takes_terminal_gap () =
  let env = make_env ~tables:[ "t" ] ~rows:[ limit_rows ] () in
  let tid = ref 0 in
  Sim.spawn env.sim (fun () ->
      let t = Db.begin_txn env.db ssi in
      tid := Txn.id t;
      let r = Txn.scan ~limit:10 t "t" in
      Alcotest.(check int) "all rows returned" 3 (List.length r);
      Alcotest.(check bool) "supremum gap locked" true
        (List.mem Lockmgr.Siread (holds env !tid "g/t/\xff\xff(sup)"));
      Txn.commit t);
  Sim.run env.sim

(* {1 Log-bucket histogram boundary determinism (satellite)} *)

(* Bucket [i] covers [2^i, 2^{i+1}) ns, lower-inclusive. The old
   [Float.log2]-based bucketing put boundary values (exactly 2^i ns) in
   bucket i-1 or i depending on libm rounding; the [Float.frexp] version is
   exact, so these values are pinned, not ranged. *)
let test_hist_bucket_pinned () =
  let buckets = Array.length (Obs.hist_create ()).Obs.h_b in
  let cases =
    [
      (0.0, 0);
      (0.5, 0);
      (* sub-ns clamps *)
      (1.0, 0);
      (1.5, 0);
      (2.0, 1);
      (* first boundary *)
      (3.999999, 1);
      (4.0, 2);
      (1023.999, 9);
      (1024.0, 10);
      (* the microsecond boundary *)
      (1048576.0, 20);
      (Float.infinity, buckets - 1);
      (Float.nan, 0);
    ]
  in
  List.iter
    (fun (ns, want) ->
      Alcotest.(check int) (Printf.sprintf "bucket(%h ns)" ns) want (Obs.hist_bucket_of_ns ns))
    cases;
  (* Every exact power of two lands in its own bucket... *)
  for i = 0 to buckets - 1 do
    Alcotest.(check int)
      (Printf.sprintf "2^%d ns" i)
      i
      (Obs.hist_bucket_of_ns (Float.ldexp 1.0 i))
  done;
  (* ...and the largest float strictly below the boundary in the previous
     one, i.e. the split is deterministic on both sides. *)
  for i = 1 to buckets - 1 do
    Alcotest.(check int)
      (Printf.sprintf "pred(2^%d) ns" i)
      (i - 1)
      (Obs.hist_bucket_of_ns (Float.pred (Float.ldexp 1.0 i)))
  done

(* hist_add takes seconds; 2^-30 s = 2^0 ns on the nose must hit bucket 0
   via the same exact path (the ns conversion multiplies by 1e9, so use a
   value whose product is an exact boundary). *)
let test_hist_add_boundary_via_seconds () =
  let h = Obs.hist_create () in
  Obs.hist_add h 1.024e-6 (* = 1024 ns exactly *);
  Alcotest.(check int) "boundary latency in one bucket" 1 h.Obs.h_b.(10);
  Alcotest.(check int) "and only that bucket" 0 h.Obs.h_b.(9)

(* {1 Percentile interpolation, pinned}

   hist_percentile interpolates linearly inside the target bucket and clamps
   to hist_max. Every expectation below is an exact float: samples sit on
   power-of-two bucket boundaries, so lo/hi/frac are all exact dyadics and
   the estimate is reproducible bit for bit. *)
let feq = Alcotest.float 1e-12

let test_hist_percentile_interpolated () =
  (* two samples in bucket 10 ([1024, 2048) ns), two in bucket 12
     ([4096, 8192) ns) *)
  let h = Obs.hist_create () in
  List.iter (Obs.hist_add h) [ 1.024e-6; 1.024e-6; 4.096e-6; 4.096e-6 ];
  (* p25 -> rank 1 of 2 in bucket 10: 1024 + 1/2 * 1024 = 1536 ns *)
  Alcotest.check feq "p25 interpolates mid-bucket" 1.536e-6 (Obs.hist_percentile h 0.25);
  (* p50 -> rank 2 of 2 in bucket 10: the upper edge, 2048 ns *)
  Alcotest.check feq "p50 reaches the bucket edge" 2.048e-6 (Obs.hist_percentile h 0.50);
  (* p100 -> rank 2 of 2 in bucket 12: 8192 ns, clamped to the true max *)
  Alcotest.check feq "p100 clamps to hist_max" 4.096e-6 (Obs.hist_percentile h 1.0)

let test_hist_percentile_single_sample () =
  (* n=1: every percentile is the sample itself (edge estimate clamped to
     hist_max) *)
  let h = Obs.hist_create () in
  Obs.hist_add h 5e-7;
  List.iter
    (fun p ->
      Alcotest.check feq
        (Printf.sprintf "p%.0f of singleton" (100.0 *. p))
        5e-7 (Obs.hist_percentile h p))
    [ 0.0; 0.5; 0.99; 1.0 ]

let test_hist_percentile_inf_nan () =
  (* inf lands in the last bucket; its interpolated edge is 2^64 ns, which
     is finite, so the estimate stays finite even though hist_max is inf *)
  let h = Obs.hist_create () in
  Obs.hist_add h Float.infinity;
  Alcotest.check feq "inf sample pins to 2^64 ns"
    (1e-9 *. Float.ldexp 1.0 64)
    (Obs.hist_percentile h 1.0);
  (* nan clamps into bucket 0 and never becomes hist_max, so the clamp
     yields exactly 0 *)
  let h2 = Obs.hist_create () in
  Obs.hist_add h2 Float.nan;
  Alcotest.check feq "nan sample clamps to 0" 0.0 (Obs.hist_percentile h2 1.0);
  (* empty histogram is 0 by definition *)
  Alcotest.check feq "empty hist" 0.0 (Obs.hist_percentile (Obs.hist_create ()) 0.5)

(* {1 Retention is linear (the Queue fix)} *)

(* 10k commits while a long-running reader pins the cleanup horizon: every
   committed record must be retained (10k of them), and the whole run —
   10k O(1) appends plus 10k O(1) blocked cleanup probes — completes
   instantly. Before the fix the per-commit list append made this pass
   quadratic (~50M list cells copied). After the reader finishes, the next
   commit drains the backlog in one pass. *)
let test_retention_linear_10k () =
  let config = { (Config.test ()) with Config.record_history = false } in
  let env = make_env ~config ~tables:[ "t" ] ~rows:[ ("t", [ ("pin", "0"); ("k", "0") ]) ] () in
  let n = 10_000 in
  let reader_done = ref false in
  Sim.spawn env.sim (fun () ->
      ignore
        (atomically env ssi (fun t ->
             ignore (Txn.read t "t" "pin");
             (* hold the snapshot across all writer commits *)
             Sim.delay env.sim 100.0));
      reader_done := true);
  Sim.spawn env.sim (fun () ->
      Sim.delay env.sim 0.001;
      for i = 1 to n do
        ignore (Db.run env.db si (fun t -> Txn.write t "t" "k" (string_of_int i)))
      done;
      Alcotest.(check bool) "reader still pins the horizon" false !reader_done;
      Alcotest.(check bool)
        (Printf.sprintf "all %d committed records retained" n)
        true
        (Db.retained_count env.db >= n);
      (* Let the reader finish, then one more commit drains the backlog. *)
      Sim.delay env.sim 200.0;
      ignore (Db.run env.db si (fun t -> Txn.write t "t" "k" "done"));
      Alcotest.(check bool) "backlog drained after the pin lifts" true
        (Db.retained_count env.db < 10));
  Sim.run env.sim;
  Alcotest.(check int) "commits" (n + 2) (Db.stats env.db).Internal.commits

(* Bounded-memory twin of the pinned-snapshot test: same 10k commits under a
   pinned reader, but with [memory_budget] set. The writers are SSI
   read-modify-writes over a fixed 32-key universe, so each retained record
   holds a SIREAD and the sentinel pool stays bounded by the key universe.
   Retained records plus live SIREAD lock-table entries must never exceed
   the budget — summarization, not the cleanup horizon, bounds memory. *)
let test_retention_bounded_10k () =
  let budget = 64 in
  let config =
    {
      (Config.test ()) with
      Config.record_history = false;
      memory_budget = Some budget;
      promote_threshold = 4;
    }
  in
  let keys = Array.init 32 (fun i -> Printf.sprintf "k%02d" i) in
  let rows = ("t", ("pin", "0") :: (Array.to_list keys |> List.map (fun k -> (k, "0")))) in
  let env = make_env ~config ~tables:[ "t" ] ~rows:[ rows ] () in
  let n = 10_000 in
  let max_pressure = ref 0 in
  Sim.spawn env.sim (fun () ->
      ignore
        (atomically env ssi (fun t ->
             ignore (Txn.read t "t" "pin");
             (* a run of point reads on consecutive keys exercises row→page
                promotion under the budget *)
             for i = 0 to 11 do
               ignore (Txn.read t "t" keys.(i))
             done;
             Sim.delay env.sim 100.0)));
  Sim.spawn env.sim (fun () ->
      Sim.delay env.sim 0.001;
      for i = 1 to n do
        ignore
          (Db.run env.db ssi (fun t ->
               let k = keys.(i mod 32) in
               ignore (Txn.read t "t" k);
               Txn.write t "t" k (string_of_int i)));
        let p = Db.retained_count env.db + Db.siread_entry_count env.db in
        if p > !max_pressure then max_pressure := p
      done;
      Alcotest.(check bool)
        (Printf.sprintf "retained+siread entries stayed <= %d (max %d)" budget !max_pressure)
        true (!max_pressure <= budget);
      Alcotest.(check bool) "summarization ran" true (Db.summarized_count env.db > 0);
      Alcotest.(check bool) "promotion ran" true (Db.promotion_count env.db > 0);
      (* Let the pin lift, then one commit drains records and summary. *)
      Sim.delay env.sim 200.0;
      ignore (Db.run env.db si (fun t -> Txn.write t "t" "pin" "done"));
      Alcotest.(check bool) "records drained after the pin lifts" true
        (Db.retained_count env.db < 10);
      Alcotest.(check int) "summary drained after the pin lifts" 0 (Db.summary_size env.db));
  Sim.run env.sim;
  Alcotest.(check int) "all commits went through" (n + 2) (Db.stats env.db).Internal.commits

let () =
  Alcotest.run "obs"
    [
      ( "tracing",
        [
          ("trace does not perturb results", `Quick, test_trace_does_not_perturb);
          ("trace deterministic across runs", `Quick, test_trace_deterministic);
          ("trace is well-formed JSON", `Quick, test_trace_json_valid);
          ("gap supremum bytes escaped", `Quick, test_trace_escapes_gap_supremum);
        ] );
      ( "metrics",
        [
          ("metrics populated by a run", `Quick, test_metrics_populated);
          ("conflict sources split", `Quick, test_conflict_sources_split);
        ] );
      ( "stats",
        [
          ("user abort split (db)", `Quick, test_user_abort_stats_split);
          ("user abort counter (driver)", `Quick, test_driver_user_abort_counter);
          ("weighted mean response", `Quick, test_weighted_mean_response);
        ] );
      ( "crash-safety",
        [
          ("rollback of a Committing txn", `Quick, test_rollback_committing_txn);
          ("internal error mid-commit", `Quick, test_commit_internal_error_no_leak);
        ] );
      ( "limit-scans",
        [
          ("own insert in prefix", `Quick, test_limit_scan_own_insert_in_prefix);
          ("own insert beyond prefix", `Quick, test_limit_scan_own_insert_beyond_prefix);
          ("own delete hides row", `Quick, test_limit_scan_own_delete);
          ("underflow takes terminal gap", `Quick, test_limit_scan_underflow_takes_terminal_gap);
        ] );
      ( "histogram",
        [
          ("bucket boundaries pinned", `Quick, test_hist_bucket_pinned);
          ("boundary latency via hist_add", `Quick, test_hist_add_boundary_via_seconds);
          ("percentile interpolation pinned", `Quick, test_hist_percentile_interpolated);
          ("percentile of a single sample", `Quick, test_hist_percentile_single_sample);
          ("percentile inf/nan/empty", `Quick, test_hist_percentile_inf_nan);
        ] );
      ( "retention",
        [
          ("10k commits under a pinned snapshot", `Quick, test_retention_linear_10k);
          ("10k commits under a memory budget", `Quick, test_retention_bounded_10k);
        ] );
    ]
