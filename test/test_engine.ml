(* Semantic tests of the transaction engine: SI behaviour and anomalies,
   the SSI algorithm (write skew, read-only anomaly, phantoms, false
   positives), S2PL, and transaction lifecycle management. *)

open Core
open Testutil

let si = Types.Snapshot

let ssi = Types.Serializable

let s2pl = Types.S2pl

let rc = Types.Read_committed

let accounts = ("acct", [ ("x", "50"); ("y", "50") ])

let read_int t table k = int_of_string (Txn.read_exn t table k)

let write_int t table k v = Txn.write t table k (string_of_int v)

(* {1 Snapshot isolation semantics} *)

let test_read_own_writes () =
  let env = make_env ~tables:[ "t" ] () in
  Sim.spawn env.sim (fun () ->
      ignore
        (atomically env si (fun t ->
             Txn.write t "t" "a" "1";
             Alcotest.(check (option string)) "own write visible" (Some "1") (Txn.read t "t" "a"))));
  Sim.run env.sim;
  Alcotest.(check (option string)) "committed" (Some "1") (peek env "t" "a")

let test_repeatable_read_under_si () =
  let env = make_env ~tables:[ "acct" ] ~rows:[ accounts ] () in
  let seen = ref [] in
  let r1 =
    script env ~at:0.0 ~gap:0.05 ~isolation:si
      [
        (fun t -> seen := read_int t "acct" "x" :: !seen);
        (fun t -> seen := read_int t "acct" "x" :: !seen);
      ]
  in
  let r2 = script env ~at:0.01 ~isolation:si [ (fun t -> write_int t "acct" "x" 99) ] in
  run_procs env [];
  check_outcome "reader commits" Committed r1;
  check_outcome "writer commits" Committed r2;
  Alcotest.(check (list int)) "same value twice despite concurrent commit" [ 50; 50 ]
    (List.rev !seen)

let test_read_committed_sees_latest () =
  let env = make_env ~tables:[ "acct" ] ~rows:[ accounts ] () in
  let seen = ref [] in
  let r1 =
    script env ~at:0.0 ~gap:0.05 ~isolation:rc
      [
        (fun t -> seen := read_int t "acct" "x" :: !seen);
        (fun t -> seen := read_int t "acct" "x" :: !seen);
      ]
  in
  let _ = script env ~at:0.01 ~isolation:rc [ (fun t -> write_int t "acct" "x" 99) ] in
  run_procs env [];
  check_outcome "reader commits" Committed r1;
  Alcotest.(check (list int)) "second read sees new value" [ 50; 99 ] (List.rev !seen)

let test_no_dirty_reads () =
  let env = make_env ~tables:[ "acct" ] ~rows:[ accounts ] () in
  let seen = ref (-1) in
  (* Writer holds its uncommitted change for a while. *)
  let _ =
    script env ~at:0.0 ~gap:0.1 ~isolation:si
      [ (fun t -> write_int t "acct" "x" 666); (fun _ -> ()) ]
  in
  let r = script env ~at:0.05 ~isolation:si [ (fun t -> seen := read_int t "acct" "x") ] in
  run_procs env [];
  check_outcome "reader ok" Committed r;
  Alcotest.(check int) "uncommitted write invisible" 50 !seen

let test_first_committer_wins () =
  let env = make_env ~tables:[ "acct" ] ~rows:[ accounts ] () in
  (* Both read first so their snapshots predate both writes. *)
  let r1 =
    script env ~at:0.0 ~gap:0.05 ~isolation:si
      [ (fun t -> ignore (read_int t "acct" "x")); (fun t -> write_int t "acct" "x" 1) ]
  in
  let r2 =
    script env ~at:0.01 ~gap:0.05 ~isolation:si
      [ (fun t -> ignore (read_int t "acct" "x")); (fun t -> write_int t "acct" "x" 2) ]
  in
  run_procs env [];
  check_outcome "first writer commits" Committed r1;
  check_outcome "second writer aborts" (Aborted Types.Update_conflict) r2;
  Alcotest.(check (option int)) "first write survives" (Some 1) (peek_int env "acct" "x")

let test_lazy_snapshot_single_statement () =
  (* §4.5: a transaction whose first operation is the update chooses its
     snapshot after acquiring the lock, so it never aborts under FCW. *)
  let env = make_env ~tables:[ "acct" ] ~rows:[ accounts ] () in
  let incr_x t =
    let v = read_int t "acct" "x" in
    Sim.delay env.sim 0.02;
    write_int t "acct" "x" (v + 1)
  in
  let r1 = script env ~at:0.0 ~isolation:si [ incr_x ] in
  let r2 = script env ~at:0.001 ~isolation:si [ incr_x ] in
  run_procs env [];
  check_outcome "first increment" Committed r1;
  (* The read fixes T2's snapshot before the write lock: it must abort. *)
  check_outcome "read-then-write increment aborts" (Aborted Types.Update_conflict) r2;
  (* Blind single-statement writes never abort under FCW. *)
  let env2 = make_env ~tables:[ "acct" ] ~rows:[ accounts ] () in
  let w t = Txn.write t "acct" "x" "blind" in
  let r3 = script env2 ~at:0.0 ~gap:0.02 ~isolation:si [ w ] in
  let r4 = script env2 ~at:0.001 ~gap:0.02 ~isolation:si [ w ] in
  run_procs env2 [];
  check_outcome "blind write 1" Committed r3;
  check_outcome "blind write 2 never FCW-aborts" Committed r4

let withdraw_sum from amount t =
  let x = int_of_string (Txn.read_exn t "acct" "x")
  and y = int_of_string (Txn.read_exn t "acct" "y") in
  if x + y > amount then
    Txn.write t "acct" from
      (string_of_int ((if from = "x" then x else y) - amount))

let test_write_skew_allowed_under_si () =
  (* Example 2 of the paper: the canonical x + y > 0 write skew. *)
  let env = make_env ~tables:[ "acct" ] ~rows:[ accounts ] () in
  let r1 = script env ~at:0.0 ~gap:0.02 ~isolation:si [ withdraw_sum "x" 70 ] in
  let r2 = script env ~at:0.005 ~gap:0.02 ~isolation:si [ withdraw_sum "y" 80 ] in
  run_procs env [];
  check_outcome "T1 commits" Committed r1;
  check_outcome "T2 commits (anomaly!)" Committed r2;
  let x = Option.get (peek_int env "acct" "x") and y = Option.get (peek_int env "acct" "y") in
  Alcotest.(check bool) "constraint violated under SI" true (x + y <= 0)

let test_write_skew_prevented_under_ssi () =
  let env = make_env ~tables:[ "acct" ] ~rows:[ accounts ] () in
  let r1 = script env ~at:0.0 ~gap:0.02 ~isolation:ssi [ withdraw_sum "x" 70 ] in
  let r2 = script env ~at:0.005 ~gap:0.02 ~isolation:ssi [ withdraw_sum "y" 80 ] in
  run_procs env [];
  let outcomes = List.sort compare [ outcome_to_string !r1; outcome_to_string !r2 ] in
  Alcotest.(check (list string))
    "exactly one unsafe abort"
    [ "aborted:unsafe"; "committed" ]
    outcomes;
  let x = Option.get (peek_int env "acct" "x") and y = Option.get (peek_int env "acct" "y") in
  Alcotest.(check bool) "constraint holds" true (x + y > 0)

let test_ssi_sequential_never_aborts () =
  let env = make_env ~tables:[ "acct" ] ~rows:[ accounts ] () in
  Sim.spawn env.sim (fun () ->
      for i = 1 to 20 do
        ignore
          (atomically env ssi (fun t ->
               let x = read_int t "acct" "x" in
               write_int t "acct" "x" (x + i)))
      done);
  Sim.run env.sim;
  Alcotest.(check int) "no aborts" 0 (Db.stats env.db).Internal.aborts_unsafe;
  Alcotest.(check int) "20 commits" 20 (Db.stats env.db).Internal.commits;
  Alcotest.(check (option int)) "sum applied" (Some (50 + 210)) (peek_int env "acct" "x")

let test_read_only_anomaly_prevented () =
  (* Example 3 (Fekete et al. 2004): Tin read-only, interleaved so it sees
     Tout's effects but not Tpivot's. Under SSI one transaction aborts. *)
  let env = make_env ~tables:[ "t" ] ~rows:[ ("t", [ ("x", "0"); ("y", "0"); ("z", "0") ]) ] () in
  (* Order: b_p r_p(y); T_out runs & commits; T_in reads x,z & commits;
     w_p(x); c_p. *)
  let r_pivot =
    script env ~at:0.0 ~gap:0.1 ~isolation:ssi
      [ (fun t -> ignore (read_int t "t" "y")); (fun t -> write_int t "t" "x" 1) ]
  in
  let r_out =
    script env ~at:0.02 ~gap:0.01 ~isolation:ssi
      [ (fun t -> write_int t "t" "y" 2); (fun t -> write_int t "t" "z" 2) ]
  in
  let r_in =
    script env ~at:0.06 ~gap:0.01 ~isolation:ssi
      [ (fun t -> ignore (read_int t "t" "x")); (fun t -> ignore (read_int t "t" "z")) ]
  in
  run_procs env [];
  check_outcome "Tout commits" Committed r_out;
  check_outcome "Tin commits" Committed r_in;
  check_outcome "pivot aborts" (Aborted Types.Unsafe) r_pivot

let test_fig38_false_positive_modes () =
  (* Fig 3.8: serializable as {Tin, Tpivot, Tout}; the basic algorithm
     aborts the pivot, the precise algorithm (§3.6) commits all three. *)
  let run_with variant =
    let config = { (Config.test ()) with Config.ssi = variant } in
    let env =
      make_env ~config ~tables:[ "t" ] ~rows:[ ("t", [ ("x", "0"); ("y", "0"); ("z", "0") ]) ] ()
    in
    (* Timeline: r_in(x)@0; r_p(y)@0.01; r_in(z)@0.03, c_in@0.06;
       w_p(x)@0.11; w_out(y)@0.12, w_out(z)@0.13, c_out@0.14; c_p@0.21. *)
    let r_in =
      script env ~at:0.0 ~gap:0.03 ~isolation:ssi
        [ (fun t -> ignore (read_int t "t" "x")); (fun t -> ignore (read_int t "t" "z")) ]
    in
    let r_pivot =
      script env ~at:0.01 ~gap:0.1 ~isolation:ssi
        [ (fun t -> ignore (read_int t "t" "y")); (fun t -> write_int t "t" "x" 1) ]
    in
    let r_out =
      script env ~at:0.12 ~gap:0.01 ~isolation:ssi
        [ (fun t -> write_int t "t" "y" 2); (fun t -> write_int t "t" "z" 2) ]
    in
    run_procs env [];
    (!r_in, !r_pivot, !r_out)
  in
  let in_b, pivot_b, out_b = run_with Config.Basic in
  Alcotest.check outcome_testable "basic: Tin commits" Committed in_b;
  Alcotest.check outcome_testable "basic: Tout commits" Committed out_b;
  Alcotest.check outcome_testable "basic: pivot false-positive abort" (Aborted Types.Unsafe)
    pivot_b;
  let in_p, pivot_p, out_p = run_with Config.Precise in
  Alcotest.check outcome_testable "precise: Tin commits" Committed in_p;
  Alcotest.check outcome_testable "precise: Tout commits" Committed out_p;
  Alcotest.check outcome_testable "precise: pivot commits (no false positive)" Committed pivot_p

let test_pivot_aborts_at_commit_when_late () =
  (* Without abort-early, the dangerous structure is only caught by the
     commit-time check of Fig 3.2/3.10. *)
  let config = { (Config.test ()) with Config.abort_early = false } in
  let env = make_env ~config ~tables:[ "acct" ] ~rows:[ accounts ] () in
  let r1 = script env ~at:0.0 ~gap:0.02 ~isolation:ssi [ withdraw_sum "x" 70 ] in
  let r2 = script env ~at:0.005 ~gap:0.02 ~isolation:ssi [ withdraw_sum "y" 80 ] in
  run_procs env [];
  let outcomes = List.sort compare [ outcome_to_string !r1; outcome_to_string !r2 ] in
  Alcotest.(check (list string)) "still exactly one unsafe abort"
    [ "aborted:unsafe"; "committed" ] outcomes

(* {1 Phantoms} *)

let shift_rows = ("duty", [ ("d1", "on"); ("d2", "on") ])

(* Example 1 of the paper: both doctors go to reserve, each checking that
   another doctor remains on duty. The check is a predicate read. *)
let doctor_off name t =
  let on_duty = List.filter (fun (_, v) -> v = "on") (Txn.scan t "duty") in
  if List.length on_duty > 1 then Txn.write t "duty" name "reserve"

let test_doctors_anomaly_under_si () =
  let env = make_env ~tables:[ "duty" ] ~rows:[ shift_rows ] () in
  let r1 = script env ~at:0.0 ~gap:0.02 ~isolation:si [ doctor_off "d1" ] in
  let r2 = script env ~at:0.005 ~gap:0.02 ~isolation:si [ doctor_off "d2" ] in
  run_procs env [];
  check_outcome "T1 commits" Committed r1;
  check_outcome "T2 commits" Committed r2;
  Alcotest.(check (option string)) "nobody on duty (anomaly)" (Some "reserve") (peek env "duty" "d1");
  Alcotest.(check (option string)) "nobody on duty (anomaly)" (Some "reserve") (peek env "duty" "d2")

let test_doctors_prevented_under_ssi () =
  let env = make_env ~tables:[ "duty" ] ~rows:[ shift_rows ] () in
  let r1 = script env ~at:0.0 ~gap:0.02 ~isolation:ssi [ doctor_off "d1" ] in
  let r2 = script env ~at:0.005 ~gap:0.02 ~isolation:ssi [ doctor_off "d2" ] in
  run_procs env [];
  let outcomes = List.sort compare [ outcome_to_string !r1; outcome_to_string !r2 ] in
  Alcotest.(check (list string)) "one aborts" [ "aborted:unsafe"; "committed" ] outcomes;
  let on_duty = [ peek env "duty" "d1"; peek env "duty" "d2" ] in
  Alcotest.(check bool) "someone still on duty" true (List.mem (Some "on") on_duty)

let test_insert_phantom_skew_under_si_vs_ssi () =
  (* Both transactions scan an empty range and insert if it was empty: under
     SI both insert; under SSI (gap locking) at most one commits. *)
  let attempt isolation =
    let env = make_env ~tables:[ "m" ] ~rows:[ ("m", [ ("z-fence", "1") ]) ] () in
    let insert_if_empty key t =
      let rows = Txn.scan ~lo:"a" ~hi:"b" t "m" in
      if rows = [] then Txn.insert t "m" key "marker"
    in
    let r1 = script env ~at:0.0 ~gap:0.02 ~isolation [ insert_if_empty "a1" ] in
    let r2 = script env ~at:0.005 ~gap:0.02 ~isolation [ insert_if_empty "a2" ] in
    run_procs env [];
    (!r1, !r2)
  in
  let a, b = attempt si in
  Alcotest.check outcome_testable "SI: both commit (phantom skew)" Committed a;
  Alcotest.check outcome_testable "SI: both commit (phantom skew)" Committed b;
  let a, b = attempt ssi in
  let outcomes = List.sort compare [ outcome_to_string a; outcome_to_string b ] in
  (* One must fail: either an unsafe abort or a deadlock on gap X locks. *)
  Alcotest.(check bool) "SSI: not both committed" true (outcomes <> [ "committed"; "committed" ])

(* Retained gap SIREADs (§3.3 + §3.5): a committed scanner's next-key gap
   SIREAD must keep aborting a pivot that inserts a phantom into the scanned
   range after the scanner commits. B reads x and later inserts into the
   range A scanned; D updates x and commits (B's out-edge, committed); A
   scans and commits after D but before B's insert, so B's incoming edge
   comes only from A's *retained* gap SIREAD. B sits between two committed
   neighbours with commit(D) <= commit(A): unsafe, even in precise mode.
   Regression: dropping gap SIREADs at commit (or in release_all's
   keep_siread path) would let B commit a phantom write skew. *)
let test_committed_gap_siread_aborts_phantom_pivot () =
  let env = make_env ~tables:[ "m" ] ~rows:[ ("m", [ ("x", "0"); ("z-fence", "1") ]) ] () in
  let rb =
    script env ~at:0.0 ~gap:0.1 ~isolation:ssi
      [
        (fun t -> ignore (Txn.read t "m" "x"));
        (fun t -> Txn.insert t "m" "a1" "phantom");
      ]
  in
  let rd = script env ~at:0.02 ~isolation:ssi [ (fun t -> Txn.write t "m" "x" "1") ] in
  let ra =
    script env ~at:0.04 ~isolation:ssi
      [
        (fun t ->
          Alcotest.(check (list (pair string string)))
            "scanned range is empty" [] (Txn.scan ~lo:"a" ~hi:"b" t "m"));
      ]
  in
  run_procs env [];
  check_outcome "D commits" Committed rd;
  check_outcome "A commits" Committed ra;
  check_outcome "B aborts unsafe" (Aborted Types.Unsafe) rb;
  Alcotest.(check (option string)) "no phantom row" None (peek env "m" "a1")

let test_scan_sees_own_inserts () =
  let env = make_env ~tables:[ "t" ] () in
  Sim.spawn env.sim (fun () ->
      ignore
        (atomically env ssi (fun t ->
             Txn.insert t "t" "b" "2";
             Txn.insert t "t" "a" "1";
             let rows = Txn.scan t "t" in
             Alcotest.(check (list (pair string string)))
               "own inserts in order"
               [ ("a", "1"); ("b", "2") ]
               rows)));
  Sim.run env.sim

let test_scan_skips_own_deletes () =
  let env = make_env ~tables:[ "t" ] ~rows:[ ("t", [ ("a", "1"); ("b", "2") ]) ] () in
  Sim.spawn env.sim (fun () ->
      ignore
        (atomically env ssi (fun t ->
             Alcotest.(check bool) "delete existing" true (Txn.delete t "t" "a");
             let rows = Txn.scan t "t" in
             Alcotest.(check (list (pair string string))) "deleted row gone" [ ("b", "2") ] rows)));
  Sim.run env.sim;
  Alcotest.(check (option string)) "tombstone committed" None (peek env "t" "a")

let test_duplicate_insert_aborts () =
  let env = make_env ~tables:[ "t" ] ~rows:[ ("t", [ ("a", "1") ]) ] () in
  let r = script env ~at:0.0 ~isolation:ssi [ (fun t -> Txn.insert t "t" "a" "2") ] in
  run_procs env [];
  check_outcome "duplicate key" (Aborted Types.Duplicate_key) r

(* {1 S2PL} *)

let test_s2pl_reader_blocks_writer () =
  let env = make_env ~tables:[ "acct" ] ~rows:[ accounts ] () in
  let write_done_at = ref (-1.0) in
  let _ =
    script env ~at:0.0 ~gap:0.5 ~isolation:s2pl
      [ (fun t -> ignore (read_int t "acct" "x")); (fun _ -> ()) ]
  in
  (* Reader holds S(x) until commit at ~1.0; the writer must wait. *)
  Sim.spawn env.sim (fun () ->
      Sim.delay env.sim 0.1;
      ignore (atomically env s2pl (fun t -> write_int t "acct" "x" 7));
      write_done_at := Sim.now env.sim);
  Sim.run ~until:1.0e6 env.sim;
  Alcotest.(check bool) "writer blocked until reader committed" true (!write_done_at > 0.9)

let test_si_reader_does_not_block_writer () =
  let env = make_env ~tables:[ "acct" ] ~rows:[ accounts ] () in
  let write_done_at = ref (-1.0) in
  let _ =
    script env ~at:0.0 ~gap:0.5 ~isolation:ssi
      [ (fun t -> ignore (read_int t "acct" "x")); (fun _ -> ()) ]
  in
  Sim.spawn env.sim (fun () ->
      Sim.delay env.sim 0.1;
      ignore (atomically env ssi (fun t -> write_int t "acct" "x" 7));
      write_done_at := Sim.now env.sim);
  Sim.run ~until:1.0e6 env.sim;
  Alcotest.(check bool) "writer proceeded immediately" true
    (!write_done_at > 0.0 && !write_done_at < 0.2)

let test_s2pl_write_skew_prevented () =
  let env = make_env ~tables:[ "acct" ] ~rows:[ accounts ] () in
  let r1 = script env ~at:0.0 ~gap:0.02 ~isolation:s2pl [ withdraw_sum "x" 70 ] in
  let r2 = script env ~at:0.005 ~gap:0.02 ~isolation:s2pl [ withdraw_sum "y" 80 ] in
  run_procs env [];
  ignore (r1, r2);
  let x = Option.get (peek_int env "acct" "x") and y = Option.get (peek_int env "acct" "y") in
  Alcotest.(check bool) "constraint holds under S2PL" true (x + y > 0)

let test_s2pl_deadlock_reported () =
  let env = make_env ~tables:[ "acct" ] ~rows:[ accounts ] () in
  let r1 =
    script env ~at:0.0 ~gap:0.05 ~isolation:s2pl
      [ (fun t -> write_int t "acct" "x" 1); (fun t -> write_int t "acct" "y" 1) ]
  in
  let r2 =
    script env ~at:0.01 ~gap:0.05 ~isolation:s2pl
      [ (fun t -> write_int t "acct" "y" 2); (fun t -> write_int t "acct" "x" 2) ]
  in
  run_procs env [];
  let outcomes = List.sort compare [ outcome_to_string !r1; outcome_to_string !r2 ] in
  Alcotest.(check (list string)) "one deadlock victim" [ "aborted:deadlock"; "committed" ] outcomes;
  Alcotest.(check int) "stats counted" 1 (Db.stats env.db).Internal.aborts_deadlock

(* {1 Mixed isolation (§3.8)} *)

let test_mixed_si_queries_ssi_updates () =
  let env = make_env ~tables:[ "acct" ] ~rows:[ accounts ] () in
  let q_result = ref [] in
  let q =
    script env ~at:0.0 ~gap:0.05 ~isolation:si
      [
        (fun t -> q_result := read_int t "acct" "x" :: !q_result);
        (fun t -> q_result := read_int t "acct" "y" :: !q_result);
      ]
  in
  let w1 =
    script env ~at:0.01 ~gap:0.01 ~isolation:ssi
      [ (fun t -> write_int t "acct" "x" (read_int t "acct" "x" + 1)) ]
  in
  let w2 =
    script env ~at:0.02 ~gap:0.01 ~isolation:ssi
      [ (fun t -> write_int t "acct" "y" (read_int t "acct" "y" + 1)) ]
  in
  run_procs env [];
  check_outcome "query commits" Committed q;
  check_outcome "update 1 commits" Committed w1;
  check_outcome "update 2 commits" Committed w2;
  Alcotest.(check int) "no unsafe aborts" 0 (Db.stats env.db).Internal.aborts_unsafe

(* {1 Lifecycle} *)

let test_suspended_cleanup () =
  let env = make_env ~tables:[ "acct" ] ~rows:[ accounts ] () in
  Sim.spawn env.sim (fun () ->
      (* An SSI reader commits while another transaction overlaps it: it must
         be suspended with its SIREAD locks retained. *)
      let overlapper = Db.begin_txn env.db ssi in
      ignore (Txn.read overlapper "acct" "y");
      (* Reads y and writes x: the SIREAD on y is retained (the x SIREAD
         would have been upgraded away, §3.7.3), so it must suspend. *)
      ignore
        (atomically env ssi (fun t ->
             ignore (read_int t "acct" "y");
             write_int t "acct" "x" 51));
      Alcotest.(check int) "one suspended" 1 (Db.suspended_count env.db);
      Alcotest.(check bool) "siread locks retained" true (Db.lock_table_size env.db > 0);
      (* When the overlapper finishes, the next commit cleans up. *)
      Txn.commit overlapper;
      ignore (atomically env ssi (fun t -> ignore (read_int t "acct" "x")));
      Alcotest.(check int) "cleaned up" 0 (Db.suspended_count env.db));
  Sim.run ~until:1.0e6 env.sim

let test_gc_after_updates () =
  let env = make_env ~tables:[ "acct" ] ~rows:[ accounts ] () in
  Sim.spawn env.sim (fun () ->
      for i = 1 to 10 do
        ignore (atomically env ssi (fun t -> write_int t "acct" "x" i))
      done);
  Sim.run ~until:1.0e6 env.sim;
  let table = Db.table_exn env.db "acct" in
  Alcotest.(check bool) "versions accumulated" true (Mvstore.version_count table > 2);
  ignore (Db.gc env.db);
  Alcotest.(check int) "one version per key after gc" 2 (Mvstore.version_count table);
  Alcotest.(check (option int)) "latest survives" (Some 10) (peek_int env "acct" "x")

let test_user_abort_rolls_back () =
  let env = make_env ~tables:[ "acct" ] ~rows:[ accounts ] () in
  Sim.spawn env.sim (fun () ->
      let r =
        Db.run env.db ssi (fun t ->
            write_int t "acct" "x" 0;
            raise (Types.Abort Types.User_abort))
      in
      Alcotest.(check bool) "reported" true (r = Error Types.User_abort));
  Sim.run ~until:1.0e6 env.sim;
  Alcotest.(check (option int)) "write discarded" (Some 50) (peek_int env "acct" "x");
  Alcotest.(check int) "no lock leak" 0 (Db.lock_table_size env.db)

let test_run_retry () =
  let env = make_env ~tables:[ "acct" ] ~rows:[ accounts ] () in
  let n = ref 0 in
  let _ = script env ~at:0.0 ~gap:0.02 ~isolation:ssi [ withdraw_sum "x" 70 ] in
  Sim.spawn env.sim (fun () ->
      Sim.delay env.sim 0.005;
      let r =
        Db.run_retry env.db ssi (fun t ->
            incr n;
            Sim.delay env.sim 0.02;
            let x = read_int t "acct" "x" and y = read_int t "acct" "y" in
            if x + y > 80 then write_int t "acct" "y" (y - 80))
      in
      Alcotest.(check bool) "retry eventually commits" true (r = Ok ()));
  Sim.run ~until:1.0e6 env.sim;
  Alcotest.(check bool) "at least one attempt" true (!n >= 1)

let test_blocked_writer_aborts_on_wake () =
  (* T2 blocks on T1's X lock with an old snapshot; when T1 commits, T2 wakes
     and must abort with Update_conflict. *)
  let env = make_env ~tables:[ "acct" ] ~rows:[ accounts ] () in
  let r1 =
    script env ~at:0.0 ~gap:0.1 ~isolation:ssi
      [ (fun t -> write_int t "acct" "x" 1); (fun _ -> ()) ]
  in
  let r2 =
    script env ~at:0.01 ~gap:0.01 ~isolation:ssi
      [ (fun t -> ignore (read_int t "acct" "y")); (fun t -> write_int t "acct" "x" 2) ]
  in
  run_procs env [];
  check_outcome "holder commits" Committed r1;
  check_outcome "blocked writer aborts on wake" (Aborted Types.Update_conflict) r2

let suite =
  [
    ("read own writes", `Quick, test_read_own_writes);
    ("repeatable read under SI", `Quick, test_repeatable_read_under_si);
    ("read committed sees latest", `Quick, test_read_committed_sees_latest);
    ("no dirty reads", `Quick, test_no_dirty_reads);
    ("first committer wins", `Quick, test_first_committer_wins);
    ("lazy snapshot (4.5)", `Quick, test_lazy_snapshot_single_statement);
    ("write skew allowed under SI", `Quick, test_write_skew_allowed_under_si);
    ("write skew prevented under SSI", `Quick, test_write_skew_prevented_under_ssi);
    ("sequential SSI never aborts", `Quick, test_ssi_sequential_never_aborts);
    ("read-only anomaly prevented", `Quick, test_read_only_anomaly_prevented);
    ("Fig 3.8 false positive: basic vs precise", `Quick, test_fig38_false_positive_modes);
    ("pivot aborts at commit without abort-early", `Quick, test_pivot_aborts_at_commit_when_late);
    ("doctors anomaly under SI (Example 1)", `Quick, test_doctors_anomaly_under_si);
    ("doctors prevented under SSI", `Quick, test_doctors_prevented_under_ssi);
    ("insert phantom skew SI vs SSI", `Quick, test_insert_phantom_skew_under_si_vs_ssi);
    ( "committed gap SIREAD aborts phantom pivot",
      `Quick,
      test_committed_gap_siread_aborts_phantom_pivot );
    ("scan sees own inserts", `Quick, test_scan_sees_own_inserts);
    ("scan skips own deletes", `Quick, test_scan_skips_own_deletes);
    ("duplicate insert aborts", `Quick, test_duplicate_insert_aborts);
    ("S2PL reader blocks writer", `Quick, test_s2pl_reader_blocks_writer);
    ("SI reader does not block writer", `Quick, test_si_reader_does_not_block_writer);
    ("S2PL write skew prevented", `Quick, test_s2pl_write_skew_prevented);
    ("S2PL deadlock reported", `Quick, test_s2pl_deadlock_reported);
    ("mixed SI queries + SSI updates (3.8)", `Quick, test_mixed_si_queries_ssi_updates);
    ("suspended transaction cleanup", `Quick, test_suspended_cleanup);
    ("gc after updates", `Quick, test_gc_after_updates);
    ("user abort rolls back", `Quick, test_user_abort_rolls_back);
    ("run_retry", `Quick, test_run_retry);
    ("blocked writer aborts on wake", `Quick, test_blocked_writer_aborts_on_wake);
  ]

let () = Alcotest.run "engine" [ ("engine", suite) ]
