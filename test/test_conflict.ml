(* Regression tests for victim selection in Conflict.mark (§3.7.2).

   The abort-early path used to choose the Prefer_younger victim with
   [List.hd (List.filter is_active ...)], which raises if no endpoint is
   Active at selection time. Selection is now total by construction; these
   tests pin the chosen victim for each policy and exercise every
   combination of endpoint states to prove no combination can crash the
   marker. *)

open Core

let config ~victim =
  { (Config.test ()) with Config.abort_early = true; victim; ssi = Config.Basic }

(* Begin two transactions, force [reader]'s two conflict flags on so the new
   edge makes it dangerous under Basic mode, then record reader->writer. *)
let mark_dangerous env ~self_is_reader =
  let t1 = Db.begin_txn env.Testutil.db Types.Serializable in
  Sim.delay env.Testutil.sim 0.01;
  let t2 = Db.begin_txn env.Testutil.db Types.Serializable in
  t1.Internal.in_conflict <- Internal.Self_conflict;
  t1.Internal.out_conflict <- Internal.Self_conflict;
  let self = if self_is_reader then t1 else t2 in
  Conflict.mark ~source:Obs.Newer_version ~resource:"r/a/x" ~self ~reader:t1 ~writer:t2;
  (t1, t2)

let test_prefer_younger_picks_younger () =
  let env = Testutil.make_env ~config:(config ~victim:Config.Prefer_younger) () in
  Testutil.run_procs env
    [
      (fun () ->
        (* self is the reader (the older, surviving endpoint): the younger
           writer must be doomed, not the pivot. *)
        let t1, t2 = mark_dangerous env ~self_is_reader:true in
        Alcotest.(check bool) "older endpoint survives" true (t1.Internal.doomed = None);
        Alcotest.(check bool)
          "younger endpoint doomed Unsafe" true
          (t2.Internal.doomed = Some Types.Unsafe));
    ]

let test_prefer_pivot_picks_pivot () =
  let env = Testutil.make_env ~config:(config ~victim:Config.Prefer_pivot) () in
  Testutil.run_procs env
    [
      (fun () ->
        (* self is the writer: the dangerous reader (the pivot) is doomed. *)
        let t1, t2 = mark_dangerous env ~self_is_reader:false in
        Alcotest.(check bool)
          "pivot doomed Unsafe" true
          (t1.Internal.doomed = Some Types.Unsafe);
        Alcotest.(check bool) "non-pivot survives" true (t2.Internal.doomed = None));
    ]

let test_self_victim_raises () =
  let env = Testutil.make_env ~config:(config ~victim:Config.Prefer_pivot) () in
  Testutil.run_procs env
    [
      (fun () ->
        (* When the victim is the transaction running the marking code, it
           aborts itself by raising rather than setting [doomed]. *)
        match mark_dangerous env ~self_is_reader:true with
        | _ -> Alcotest.fail "expected Abort Unsafe for self-victim"
        | exception Types.Abort Types.Unsafe -> ());
    ]

(* Totality: whatever states the endpoints are in when the edge is recorded
   (they can leave Active between detection and selection in principle),
   marking must never raise an unexpected exception. *)
let test_selection_total_for_all_states () =
  let states = [ Internal.Active; Internal.Committing; Internal.Committed; Internal.Aborted ] in
  List.iter
    (fun victim ->
      List.iter
        (fun s1 ->
          List.iter
            (fun s2 ->
              let env = Testutil.make_env ~config:(config ~victim) () in
              Testutil.run_procs env
                [
                  (fun () ->
                    let t1 = Db.begin_txn env.Testutil.db Types.Serializable in
                    Sim.delay env.Testutil.sim 0.01;
                    let t2 = Db.begin_txn env.Testutil.db Types.Serializable in
                    t1.Internal.in_conflict <- Internal.Self_conflict;
                    t1.Internal.out_conflict <- Internal.Self_conflict;
                    t2.Internal.in_conflict <- Internal.Self_conflict;
                    t2.Internal.out_conflict <- Internal.Self_conflict;
                    t1.Internal.state <- s1;
                    t2.Internal.state <- s2;
                    match
                      Conflict.mark ~source:Obs.Newer_version ~resource:"r/a/x" ~self:t2
                        ~reader:t1 ~writer:t2
                    with
                    | () -> ()
                    | exception Types.Abort _ -> () (* legitimate self-abort *));
                ])
            states)
        states)
    [ Config.Prefer_pivot; Config.Prefer_younger ]

let () =
  Alcotest.run "conflict"
    [
      ( "victim-selection",
        [
          Alcotest.test_case "prefer-younger picks younger" `Quick
            test_prefer_younger_picks_younger;
          Alcotest.test_case "prefer-pivot picks pivot" `Quick test_prefer_pivot_picks_pivot;
          Alcotest.test_case "self victim raises Abort" `Quick test_self_victim_raises;
          Alcotest.test_case "selection total for all endpoint states" `Quick
            test_selection_total_for_all_states;
        ] );
    ]
