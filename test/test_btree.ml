(* Tests for the B+tree substrate, including model-based property tests
   against a sorted association list. *)

let key i = Printf.sprintf "k%06d" i

let test_empty () =
  let t = Btree.create ~fanout:4 () in
  Alcotest.(check int) "empty length" 0 (Btree.length t);
  Alcotest.(check (option string)) "find missing" None (Btree.find t "x");
  Alcotest.(check (option string)) "min" None (Btree.min_key t);
  Alcotest.(check (option string)) "max" None (Btree.max_key t);
  Alcotest.(check (option string)) "succ" None (Btree.successor t "a");
  Btree.check_invariants t

let test_insert_find () =
  let t = Btree.create ~fanout:4 () in
  for i = 0 to 99 do
    ignore (Btree.insert t (key i) i)
  done;
  Btree.check_invariants t;
  Alcotest.(check int) "length" 100 (Btree.length t);
  for i = 0 to 99 do
    Alcotest.(check (option int)) "find" (Some i) (Btree.find t (key i))
  done;
  Alcotest.(check (option int)) "find absent" None (Btree.find t "zzz")

let test_replace () =
  let t = Btree.create ~fanout:4 () in
  ignore (Btree.insert t "a" 1);
  ignore (Btree.insert t "a" 2);
  Alcotest.(check int) "no duplicate" 1 (Btree.length t);
  Alcotest.(check (option int)) "replaced" (Some 2) (Btree.find t "a")

let test_splits_grow_height () =
  let t = Btree.create ~fanout:4 () in
  Alcotest.(check int) "height 1" 1 (Btree.height t);
  let grew = ref false in
  for i = 0 to 199 do
    let access = Btree.insert t (key i) i in
    if access.Btree.modified <> [] then grew := true
  done;
  Btree.check_invariants t;
  Alcotest.(check bool) "splits happened" true !grew;
  Alcotest.(check bool) "height grew" true (Btree.height t > 2);
  Alcotest.(check bool) "many pages" true (Btree.page_count t > 50)

let test_root_split_reports_new_root () =
  let t = Btree.create ~fanout:4 () in
  let old_root = Btree.root_id t in
  let saw_new_root = ref false in
  for i = 0 to 20 do
    let access = Btree.insert t (key i) i in
    if List.mem (Btree.root_id t) access.Btree.modified && Btree.root_id t <> old_root then
      saw_new_root := true
  done;
  Alcotest.(check bool) "root changed" true (Btree.root_id t <> old_root);
  Alcotest.(check bool) "new root reported as modified" true !saw_new_root

let test_descent_path () =
  let t = Btree.create ~fanout:4 () in
  for i = 0 to 199 do
    ignore (Btree.insert t (key i) i)
  done;
  let _, access = Btree.find_path t (key 57) in
  Alcotest.(check int) "path length = height" (Btree.height t) (List.length access.Btree.path);
  Alcotest.(check int) "first is root" (Btree.root_id t) (List.hd access.Btree.path)

let test_reverse_and_random_insertion_orders () =
  let mk order =
    let t = Btree.create ~fanout:5 () in
    List.iter (fun i -> ignore (Btree.insert t (key i) i)) order;
    Btree.check_invariants t;
    Btree.to_list t
  in
  let fwd = mk (List.init 150 Fun.id) in
  let rev = mk (List.rev (List.init 150 Fun.id)) in
  let st = Random.State.make [| 7 |] in
  let shuffled =
    List.map snd
      (List.sort compare (List.map (fun i -> (Random.State.bits st, i)) (List.init 150 Fun.id)))
  in
  let rnd = mk shuffled in
  Alcotest.(check bool) "reverse = forward" true (fwd = rev);
  Alcotest.(check bool) "random = forward" true (fwd = rnd)

let test_remove () =
  let t = Btree.create ~fanout:4 () in
  for i = 0 to 49 do
    ignore (Btree.insert t (key i) i)
  done;
  for i = 0 to 49 do
    if i mod 2 = 0 then Alcotest.(check bool) "removed" true (Btree.remove t (key i))
  done;
  Alcotest.(check bool) "remove absent" false (Btree.remove t (key 0));
  Btree.check_invariants t;
  Alcotest.(check int) "half left" 25 (Btree.length t);
  for i = 0 to 49 do
    let expect = if i mod 2 = 0 then None else Some i in
    Alcotest.(check (option int)) "post-remove find" expect (Btree.find t (key i))
  done

let test_successor () =
  let t = Btree.create ~fanout:4 () in
  List.iter (fun i -> ignore (Btree.insert t (key i) i)) [ 10; 20; 30; 40 ];
  Alcotest.(check (option string)) "succ below min" (Some (key 10)) (Btree.successor t "");
  Alcotest.(check (option string)) "succ of member" (Some (key 20)) (Btree.successor t (key 10));
  Alcotest.(check (option string)) "succ between" (Some (key 20)) (Btree.successor t (key 15));
  Alcotest.(check (option string)) "succ of max" None (Btree.successor t (key 40))

let test_successor_across_leaves () =
  let t = Btree.create ~fanout:4 () in
  for i = 0 to 99 do
    ignore (Btree.insert t (key (2 * i)) i)
  done;
  for i = 0 to 98 do
    Alcotest.(check (option string))
      "successor of odd key"
      (Some (key ((2 * i) + 2)))
      (Btree.successor t (key ((2 * i) + 1)))
  done

let test_range_scan () =
  let t = Btree.create ~fanout:4 () in
  for i = 0 to 99 do
    ignore (Btree.insert t (key i) i)
  done;
  let got = ref [] in
  Btree.iter_range t ~lo:(key 10) ~hi:(key 19) (fun _ v -> got := v :: !got);
  Alcotest.(check (list int)) "range 10..19" (List.init 10 (fun i -> 10 + i)) (List.rev !got);
  let all = ref 0 in
  Btree.iter_range t (fun _ _ -> incr all);
  Alcotest.(check int) "unbounded" 100 !all;
  let empty = ref 0 in
  Btree.iter_range t ~lo:(key 50) ~hi:(key 49) (fun _ _ -> incr empty);
  Alcotest.(check int) "empty range" 0 !empty

let test_range_access_leaves () =
  let t = Btree.create ~fanout:4 () in
  for i = 0 to 99 do
    ignore (Btree.insert t (key i) i)
  done;
  let access = Btree.iter_range_access t ~lo:(key 0) ~hi:(key 99) (fun _ _ -> ()) in
  (* A scan over everything must visit every leaf. *)
  let leaves = List.length access.Btree.leaves in
  Alcotest.(check bool) "visits many leaves" true (leaves >= 25);
  let point = Btree.iter_range_access t ~lo:(key 5) ~hi:(key 5) (fun _ _ -> ()) in
  Alcotest.(check int) "point scan one leaf" 1 (List.length point.Btree.leaves)

let test_min_max () =
  let t = Btree.create ~fanout:4 () in
  for i = 5 to 95 do
    ignore (Btree.insert t (key i) i)
  done;
  Alcotest.(check (option string)) "min" (Some (key 5)) (Btree.min_key t);
  Alcotest.(check (option string)) "max" (Some (key 95)) (Btree.max_key t)


let test_empty_string_key () =
  let t = Btree.create ~fanout:4 () in
  ignore (Btree.insert t "" 0);
  ignore (Btree.insert t "a" 1);
  Alcotest.(check (option int)) "empty key stored" (Some 0) (Btree.find t "");
  Alcotest.(check (option string)) "min is empty" (Some "") (Btree.min_key t);
  Alcotest.(check (option string)) "successor of empty" (Some "a") (Btree.successor t "")

let test_long_and_binary_keys () =
  let t = Btree.create ~fanout:4 () in
  let keys = [ String.make 500 'z'; "\x00\x01"; "\xff\xfe"; "middle" ] in
  List.iteri (fun i k -> ignore (Btree.insert t k i)) keys;
  Btree.check_invariants t;
  List.iteri (fun i k -> Alcotest.(check (option int)) "roundtrip" (Some i) (Btree.find t k)) keys

let test_scan_early_exit () =
  let t = Btree.create ~fanout:4 () in
  for i = 0 to 99 do
    ignore (Btree.insert t (key i) i)
  done;
  let seen = ref 0 in
  let access =
    Btree.iter_range_access t (fun _ _ ->
        incr seen;
        if !seen >= 5 then raise Exit)
  in
  Alcotest.(check int) "stopped after five" 5 !seen;
  (* five keys span at most three tiny leaves; a full scan visits ~30+ *)
  Alcotest.(check bool) "visited only a prefix of leaves" true
    (List.length access.Btree.leaves <= 3)

let test_remove_then_reinsert () =
  let t = Btree.create ~fanout:4 () in
  for i = 0 to 29 do
    ignore (Btree.insert t (key i) i)
  done;
  for i = 0 to 29 do
    ignore (Btree.remove t (key i))
  done;
  Alcotest.(check int) "emptied" 0 (Btree.length t);
  Btree.check_invariants t;
  for i = 0 to 29 do
    ignore (Btree.insert t (key i) (i * 2))
  done;
  Btree.check_invariants t;
  Alcotest.(check (option int)) "reinserted" (Some 14) (Btree.find t (key 7))

(* Model-based qcheck properties: a script of inserts/removes against the
   tree must agree with a reference assoc-list model. *)

type op = Insert of int * int | Remove of int | Find of int

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (5, map2 (fun k v -> Insert (k, v)) (int_bound 200) (int_bound 1000));
        (2, map (fun k -> Remove k) (int_bound 200));
        (3, map (fun k -> Find k) (int_bound 200));
      ])

let show_op = function
  | Insert (k, v) -> Printf.sprintf "Insert(%d,%d)" k v
  | Remove k -> Printf.sprintf "Remove(%d)" k
  | Find k -> Printf.sprintf "Find(%d)" k

let arb_ops = QCheck.make ~print:QCheck.Print.(list show_op) QCheck.Gen.(list_size (int_bound 400) op_gen)

let prop_model ops =
  let t = Btree.create ~fanout:4 () in
  let model = Hashtbl.create 64 in
  List.for_all
    (fun op ->
      match op with
      | Insert (k, v) ->
          ignore (Btree.insert t (key k) v);
          Hashtbl.replace model (key k) v;
          true
      | Remove k ->
          let a = Btree.remove t (key k) in
          let b = Hashtbl.mem model (key k) in
          Hashtbl.remove model (key k);
          a = b
      | Find k -> Btree.find t (key k) = Hashtbl.find_opt model (key k))
    ops
  &&
  (Btree.check_invariants t;
   let sorted_model =
     List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) model [])
   in
   Btree.to_list t = sorted_model)

let prop_successor_matches_model ops =
  let t = Btree.create ~fanout:4 () in
  let model = Hashtbl.create 64 in
  List.iter
    (function
      | Insert (k, v) ->
          ignore (Btree.insert t (key k) v);
          Hashtbl.replace model (key k) v
      | Remove k ->
          ignore (Btree.remove t (key k));
          Hashtbl.remove model (key k)
      | Find _ -> ())
    ops;
  let keys = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) model []) in
  List.for_all
    (fun probe ->
      let expected = List.find_opt (fun k -> k > key probe) keys in
      Btree.successor t (key probe) = expected)
    (List.init 20 (fun i -> i * 10))

(* Range scans after a random insert/remove script agree with the sorted
   assoc-list model, for a grid of [lo, hi) probes including empty, point,
   partial and full ranges. *)
let prop_scan_matches_model ops =
  let t = Btree.create ~fanout:4 () in
  let model = Hashtbl.create 64 in
  List.iter
    (function
      | Insert (k, v) ->
          ignore (Btree.insert t (key k) v);
          Hashtbl.replace model (key k) v
      | Remove k ->
          ignore (Btree.remove t (key k));
          Hashtbl.remove model (key k)
      | Find _ -> ())
    ops;
  let sorted = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) model []) in
  let probes =
    (None, None)
    :: List.concat_map
         (fun lo -> List.map (fun hi -> (Some (key lo), Some (key hi))) [ lo - 1; lo; lo + 17; 300 ])
         [ 0; 13; 100; 199 ]
  in
  List.for_all
    (fun (lo, hi) ->
      let expected =
        List.filter
          (fun (k, _) ->
            (match lo with None -> true | Some l -> k >= l)
            && match hi with None -> true | Some h -> k <= h)
          sorted
      in
      let got =
        List.rev (Btree.fold_range t ?lo ?hi ~init:[] ~f:(fun acc k v -> (k, v) :: acc))
      in
      got = expected)
    probes

(* Structural bounds for insert-only scripts: splits leave every page at
   least half full, so an N-key tree with fanout f has at most
   ~N / floor((f+1)/2) leaves and logarithmic height. (Removal voids the
   occupancy bound by design — deletion is lazy — so the bound is only
   asserted before any Remove.) *)
let prop_insert_only_bounds keys =
  let fanout = 4 in
  let t = Btree.create ~fanout () in
  List.iter (fun k -> ignore (Btree.insert t (key k) k)) keys;
  Btree.check_invariants t;
  let n = Btree.length t in
  let min_fill = (fanout + 1) / 2 in
  let max_leaves = max 1 (n / min_fill * 2) in
  (* height h implies at least 2^(h-2) leaves (internal nodes keep >= 2
     children after a split), so h <= 2 + log2(leaves). *)
  let max_height = 2 + int_of_float (ceil (log (float_of_int (max 2 max_leaves)) /. log 2.0)) in
  Btree.page_count t <= (2 * max_leaves) + max_height
  && Btree.height t <= max_height
  && n = List.length (List.sort_uniq compare keys)

(* Every page id other than the initial root 0 is allocated by a split, and
   every split must be reported in the access footprint: the union of
   reported (old, new) pairs accounts for every page in the tree. The engine
   relies on this to carry SIREAD locks and page stamps across splits. *)
let prop_splits_reported keys =
  let t = Btree.create ~fanout:4 () in
  let reported = Hashtbl.create 64 in
  Hashtbl.replace reported 0 ();
  List.for_all
    (fun k ->
      let access = Btree.insert t (key k) k in
      List.for_all
        (fun (old_id, new_id) ->
          let fresh = not (Hashtbl.mem reported new_id) in
          Hashtbl.replace reported new_id ();
          (* the old side must already be a known page, and both must be
             listed as structurally modified *)
          fresh && Hashtbl.mem reported old_id
          && List.mem old_id access.Btree.modified
          && List.mem new_id access.Btree.modified)
        access.Btree.splits)
    keys
  && List.for_all (Hashtbl.mem reported) (Btree.all_pages t)

let arb_keys =
  QCheck.make
    ~print:QCheck.Print.(list int)
    QCheck.Gen.(list_size (int_bound 500) (int_bound 300))

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck.Test.make ~count:200 ~name:"btree agrees with assoc model" arb_ops prop_model;
      QCheck.Test.make ~count:100 ~name:"successor agrees with model" arb_ops
        prop_successor_matches_model;
      QCheck.Test.make ~count:100 ~name:"range scans agree with model" arb_ops
        prop_scan_matches_model;
      QCheck.Test.make ~count:100 ~name:"insert-only occupancy and height bounds" arb_keys
        prop_insert_only_bounds;
      QCheck.Test.make ~count:100 ~name:"splits fully reported in access" arb_keys
        prop_splits_reported;
    ]

let suite =
  [
    ("empty tree", `Quick, test_empty);
    ("insert and find", `Quick, test_insert_find);
    ("replace existing", `Quick, test_replace);
    ("splits grow height", `Quick, test_splits_grow_height);
    ("root split reported", `Quick, test_root_split_reports_new_root);
    ("descent path", `Quick, test_descent_path);
    ("insertion order independence", `Quick, test_reverse_and_random_insertion_orders);
    ("remove", `Quick, test_remove);
    ("successor", `Quick, test_successor);
    ("successor across leaves", `Quick, test_successor_across_leaves);
    ("range scan", `Quick, test_range_scan);
    ("range access leaves", `Quick, test_range_access_leaves);
    ("min and max", `Quick, test_min_max);
    ("empty string key", `Quick, test_empty_string_key);
    ("long and binary keys", `Quick, test_long_and_binary_keys);
    ("scan early exit", `Quick, test_scan_early_exit);
    ("remove then reinsert", `Quick, test_remove_then_reinsert);
  ]

let () = Alcotest.run "btree" [ ("btree", suite); ("btree-props", qcheck_tests) ]
