(* Root-cause attribution: space-saving sketch guarantees (qcheck'd against
   an exact counter), blame-pass edge-role semantics, the canonical
   resource-id escape, and the flight recorder (ring arithmetic, trigger
   evaluation, bundle determinism).

   Everything here is synthetic — events and certificates are constructed
   directly, so each expectation is exact. End-to-end coverage of the live
   feed sites lives in the engine tests and the -j1/-j4 CI diff rules. *)

let feq = Alcotest.float 1e-9

let has_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* {1 Synthetic helpers} *)

let edge ?(source = Obs.Siread_vs_x) resource =
  { Obs.ce_reader = 1; ce_writer = 2; ce_source = source; ce_resource = resource }

let pivot_cert ~ts ?(reason = "unsafe") ?in_edge ?out_edge ?(dot = "") () =
  {
    Obs.c_ts = ts;
    c_reason = reason;
    c_cert =
      Obs.Ssi_pivot
        {
          sp_victim = 3;
          sp_policy = "prefer-pivot";
          sp_pivot = 3;
          sp_t_in = Some 1;
          sp_in_state = Obs.Ep_committed;
          sp_t_out = Some 2;
          sp_out_state = Obs.Ep_committed;
          sp_in_edge = in_edge;
          sp_out_edge = out_edge;
        };
    c_dot = dot;
  }

let fcw_cert ~ts resource =
  {
    Obs.c_ts = ts;
    c_reason = "update-conflict";
    c_cert =
      Obs.Fcw_block
        {
          fb_txn = 1;
          fb_resource = resource;
          fb_blocking_commit = 5;
          fb_blocking_writer = 2;
          fb_snapshot = 3;
        };
    c_dot = "";
  }

let commit ~ts = (ts, Obs.Txn_commit { txn = 1; start = 0.0; commit_ts = 1; n_writes = 1 })

let abort ~ts reason = (ts, Obs.Txn_abort { txn = 1; start = 0.0; reason })

let cls ~ts name outcome latency = (ts, Obs.Class_outcome { cls = name; outcome; latency })

let ev i = Obs.Txn_begin { txn = i; iso = "ssi"; ro = false }

(* {1 Sketch: space-saving guarantees} *)

(* Skewed key stream over a 26-key universe with an 8-entry sketch, so
   evictions actually happen. *)
let arb_keys =
  QCheck.make
    ~print:(fun l -> String.concat "," l)
    QCheck.Gen.(
      list_size (int_range 1 400)
        (map (Printf.sprintf "k%02d") (oneof [ int_bound 3; int_bound 25 ])))

let prop_sketch_bounds =
  QCheck.Test.make ~name:"space-saving bounds vs exact counts" ~count:300 arb_keys
    (fun keys ->
      let cap = 8 in
      let sk = Sketch.create ~capacity:cap in
      List.iter (fun k -> ignore (Sketch.touch sk k)) keys;
      let n = List.length keys in
      let exact : (string, int) Hashtbl.t = Hashtbl.create 32 in
      List.iter
        (fun k ->
          Hashtbl.replace exact k (1 + Option.value (Hashtbl.find_opt exact k) ~default:0))
        keys;
      if Sketch.total sk <> n then QCheck.Test.fail_report "total <> stream length";
      if Sketch.cardinality sk > cap then QCheck.Test.fail_report "cardinality > capacity";
      if Sketch.error_bound sk > n / cap then
        QCheck.Test.fail_reportf "error bound %d > N/capacity %d" (Sketch.error_bound sk)
          (n / cap);
      (* every tracked entry brackets its true frequency *)
      List.iter
        (fun (k, s) ->
          let t = Option.value (Hashtbl.find_opt exact k) ~default:0 in
          if not (t <= s.Sketch.st_count && s.Sketch.st_count <= t + s.Sketch.st_err) then
            QCheck.Test.fail_reportf "count bracket violated for %s: true %d, count %d, err %d"
              k t s.Sketch.st_count s.Sketch.st_err)
        (Sketch.entries sk);
      (* the top-k list is a superset of the exact heavy hitters *)
      Hashtbl.iter
        (fun k t ->
          if t > n / cap && Sketch.find sk k = None then
            QCheck.Test.fail_reportf "heavy hitter %s (freq %d > %d) not tracked" k t (n / cap))
        exact;
      true)

let prop_sketch_merge_deterministic =
  QCheck.Test.make ~name:"merge is deterministic and adds totals" ~count:200 arb_keys
    (fun keys ->
      let cap = 8 in
      let n = List.length keys in
      let half = n / 2 in
      let part p =
        let sk = Sketch.create ~capacity:cap in
        List.iteri (fun i k -> if (i < half) = p then ignore (Sketch.touch sk k)) keys;
        sk
      in
      let merged () =
        let into = Sketch.create ~capacity:cap in
        Sketch.merge ~into (part true);
        Sketch.merge ~into (part false);
        into
      in
      let a = merged () and b = merged () in
      if Sketch.total a <> n then QCheck.Test.fail_report "merged total <> sum of parts";
      let shape sk =
        List.map (fun (k, s) -> (k, s.Sketch.st_count, s.Sketch.st_err)) (Sketch.entries sk)
      in
      if shape a <> shape b then QCheck.Test.fail_report "same merge, different tables";
      true)

let test_evict_deterministic () =
  let sk = Sketch.create ~capacity:2 in
  let sa = Sketch.touch sk "a" in
  sa.Sketch.st_conflicts <- 7;
  ignore (Sketch.touch sk "b");
  (* full sketch, fresh key: evicts the min-count entry, smallest key on
     ties ("a"), inherits its count as the error and resets the payload *)
  let sc = Sketch.touch sk "c" in
  Alcotest.(check bool) "a evicted" true (Sketch.find sk "a" = None);
  Alcotest.(check int) "c inherits count" 2 sc.Sketch.st_count;
  Alcotest.(check int) "c err = victim count" 1 sc.Sketch.st_err;
  Alcotest.(check int) "payload reset on takeover" 0 sc.Sketch.st_conflicts;
  Alcotest.(check (list string))
    "entries ordered (count desc, key asc)" [ "c"; "b" ]
    (List.map fst (Sketch.entries sk))

(* {1 Blame pass} *)

let test_blame_roles () =
  let sk = Sketch.create ~capacity:8 in
  Attrib.blame sk
    [
      pivot_cert ~ts:0.01 ~in_edge:(edge "r/t/a") ~out_edge:(edge "r/t/b") ();
      pivot_cert ~ts:0.02 ~out_edge:(edge "r/t/b") ();
      (* non-unsafe certificates carry no pivot blame *)
      pivot_cert ~ts:0.03 ~reason:"doomed" ~in_edge:(edge "r/t/a") ~out_edge:(edge "r/t/b") ();
      (* FCW is fed live at the abort site; the post-hoc pass must skip it *)
      fcw_cert ~ts:0.04 "r/t/c";
    ];
  let stat k = Option.get (Sketch.find sk k) in
  Alcotest.(check int) "in-edge blame on a" 1 (stat "r/t/a").Sketch.st_blame_in;
  Alcotest.(check int) "out-edge blame on b" 2 (stat "r/t/b").Sketch.st_blame_out;
  Alcotest.(check int) "no stray in-blame on b" 0 (stat "r/t/b").Sketch.st_blame_in;
  Alcotest.(check bool) "fcw cert skipped" true (Sketch.find sk "r/t/c" = None);
  Alcotest.(check int) "one touch per blamed edge" 3 (Sketch.total sk)

let test_blame_windows () =
  let rows =
    Attrib.blame_windows ~window:0.05 ~horizon:0.1
      [
        pivot_cert ~ts:0.01 ~in_edge:(edge "r/t/a") ~out_edge:(edge "r/t/b") ();
        fcw_cert ~ts:0.07 "r/t/b";
        pivot_cert ~ts:0.08 ~in_edge:(edge "r/t/b") ~out_edge:(edge "r/t/b") ();
      ]
  in
  let shape r =
    (r.Attrib.wb_window, r.Attrib.wb_resource, r.Attrib.wb_in, r.Attrib.wb_out, r.Attrib.wb_fcw)
  in
  Alcotest.(check (list (pair int (pair string (pair int (pair int int))))))
    "rows sorted by (window, resource), roles split"
    [
      (0, ("r/t/a", (1, (0, 0))));
      (0, ("r/t/b", (0, (1, 0))));
      (1, ("r/t/b", (1, (1, 1))));
    ]
    (List.map
       (fun r ->
         let w, res, i, o, f = shape r in
         (w, (res, (i, (o, f)))))
       rows);
  Alcotest.check feq "window 1 starts at 0.05" 0.05 (List.nth rows 2).Attrib.wb_t0;
  let buf = Buffer.create 128 in
  Attrib.windows_csv buf rows;
  let lines = String.split_on_char '\n' (Buffer.contents buf) in
  Alcotest.(check string)
    "csv header" "window,t0,resource,blame_in,blame_out,blame_fcw" (List.hd lines);
  Alcotest.(check int) "csv rows" 3 (List.length lines - 2)

(* {1 Canonical resource-id escape} *)

let test_escape_pins () =
  Alcotest.(check string)
    "gap supremum" "g/t/%ff%ff(sup)"
    (Obs.res_id_escape "g/t/\xff\xff(sup)");
  Alcotest.(check string) "percent" "r/t/a%25b" (Obs.res_id_escape "r/t/a%b");
  Alcotest.(check string) "comma" "r/t/a%2cb" (Obs.res_id_escape "r/t/a,b");
  Alcotest.(check string) "quote and backslash" "%22%5c" (Obs.res_id_escape "\"\\");
  Alcotest.(check string) "plain id untouched" "p/sb_account/372" (Obs.res_id_escape "p/sb_account/372")

let prop_escape_embeddable =
  QCheck.Test.make ~name:"escape output embeds verbatim in CSV/JSON/DOT" ~count:500
    (QCheck.make ~print:String.escaped
       QCheck.Gen.(string_size ~gen:(map Char.chr (int_bound 255)) (int_bound 24)))
    (fun s ->
      String.for_all
        (fun c ->
          Char.code c >= 0x21 && Char.code c < 0x7f && c <> ',' && c <> '"' && c <> '\\')
        (Obs.res_id_escape s))

(* {1 Flight recorder: ring} *)

let test_ring_wraparound () =
  let r = Flightrec.create ~capacity:3 in
  for i = 1 to 5 do
    Flightrec.push r (float_of_int i) (ev i)
  done;
  Alcotest.(check int) "length saturates" 3 (Flightrec.length r);
  Alcotest.(check int) "oldest dropped" 2 (Flightrec.drops r);
  Alcotest.(check (list (Alcotest.float 0.0)))
    "contents oldest first" [ 3.0; 4.0; 5.0 ]
    (List.map fst (Flightrec.contents r))

let test_ring_freeze () =
  let r = Flightrec.create ~capacity:3 in
  for i = 1 to 5 do
    Flightrec.push r (float_of_int i) (ev i)
  done;
  Flightrec.freeze r;
  Flightrec.push r 6.0 (ev 6);
  Alcotest.(check bool) "frozen" true (Flightrec.frozen r);
  Alcotest.(check int) "push after freeze ignored" 3 (Flightrec.length r);
  Alcotest.(check int) "drop counter untouched" 2 (Flightrec.drops r);
  Alcotest.(check (list (Alcotest.float 0.0)))
    "contents unchanged" [ 3.0; 4.0; 5.0 ]
    (List.map fst (Flightrec.contents r))

(* {1 Flight recorder: triggers} *)

let test_abort_storm_fires () =
  let events =
    [
      (* window 0: healthy *)
      commit ~ts:0.01;
      commit ~ts:0.02;
      (* window 1: 1 commit, 1 error abort -> rate 0.5 *)
      commit ~ts:0.06;
      abort ~ts:0.07 "unsafe";
      (* window 2: past the firing boundary, must stay out of the ring *)
      commit ~ts:0.12;
    ]
  in
  let rc, inc =
    Flightrec.run ~capacity:16 ~window:0.05 ~trigger:(Flightrec.Abort_storm 0.4) events []
  in
  match inc with
  | None -> Alcotest.fail "abort storm did not fire"
  | Some i ->
      Alcotest.(check int) "fires on window 1" 1 i.Flightrec.in_window;
      Alcotest.check feq "incident ts = end of window" 0.1 i.Flightrec.in_ts;
      Alcotest.(check bool) "detail names the rate" true (has_sub i.Flightrec.in_detail "abort-rate 0.5");
      Alcotest.(check bool) "ring frozen" true (Flightrec.frozen rc);
      Alcotest.(check int) "ring holds exactly the pre-fire stream" 4 (Flightrec.length rc)

let test_abort_storm_user_excluded () =
  let events =
    [ commit ~ts:0.01; abort ~ts:0.02 "user-abort"; abort ~ts:0.03 "user-abort" ]
  in
  let rc, inc =
    Flightrec.run ~capacity:16 ~window:0.05 ~trigger:(Flightrec.Abort_storm 0.1) events []
  in
  Alcotest.(check bool) "application rollbacks are not a storm" true (inc = None);
  Alcotest.(check bool) "ring left running" false (Flightrec.frozen rc);
  Alcotest.(check int) "ring holds the tail" 3 (Flightrec.length rc)

let test_abort_storm_final_window () =
  (* end of stream must close the final partial window *)
  let _, inc =
    Flightrec.run ~capacity:4 ~window:0.05 ~trigger:(Flightrec.Abort_storm 0.4)
      [ abort ~ts:0.01 "unsafe" ]
      []
  in
  match inc with
  | None -> Alcotest.fail "final partial window not evaluated"
  | Some i ->
      Alcotest.(check int) "window 0" 0 i.Flightrec.in_window;
      Alcotest.check feq "ts = end of window 0" 0.05 i.Flightrec.in_ts

let test_slo_trigger_fires () =
  let events =
    [
      cls ~ts:0.01 "pay" "commit" 0.01;
      cls ~ts:0.02 "pay" "unsafe" 0.015;
      cls ~ts:0.03 "pay" "unsafe" 0.02;
      cls ~ts:0.04 "browse" "commit" 0.01;
    ]
  in
  let slo = { Timeline.slo_abort_rate = 0.5; slo_p95 = 10.0 } in
  let _, inc =
    Flightrec.run ~capacity:8 ~window:0.05 ~trigger:(Flightrec.Slo_violation slo) events []
  in
  match inc with
  | None -> Alcotest.fail "slo violation did not fire"
  | Some i ->
      Alcotest.(check bool) "detail names the class" true (has_sub i.Flightrec.in_detail "class pay");
      Alcotest.(check int) "fires on window 0" 0 i.Flightrec.in_window

let test_trigger_parse () =
  (match Flightrec.trigger_of_string "abort_rate:0.25" with
  | Ok (Flightrec.Abort_storm x) -> Alcotest.check feq "threshold" 0.25 x
  | _ -> Alcotest.fail "abort_rate:0.25 rejected");
  (match Flightrec.trigger_of_string "slo" with
  | Ok (Flightrec.Slo_violation s) ->
      Alcotest.check feq "default rate" 0.5 s.Timeline.slo_abort_rate;
      Alcotest.check feq "default p95" 0.1 s.Timeline.slo_p95
  | _ -> Alcotest.fail "slo rejected");
  (match Flightrec.trigger_of_string "slo:0.2:0.05" with
  | Ok (Flightrec.Slo_violation s) ->
      Alcotest.check feq "rate" 0.2 s.Timeline.slo_abort_rate;
      Alcotest.check feq "p95" 0.05 s.Timeline.slo_p95
  | _ -> Alcotest.fail "slo:0.2:0.05 rejected");
  (match Flightrec.trigger_of_string "regime" with
  | Ok (Flightrec.Regime s) -> Alcotest.(check string) "default series" "throughput" s
  | _ -> Alcotest.fail "regime rejected");
  List.iter
    (fun bad ->
      match Flightrec.trigger_of_string bad with
      | Ok _ -> Alcotest.failf "accepted %s" bad
      | Error _ -> ())
    [ "abort_rate:1.5"; "abort_rate:0"; "regime:bogus-series"; "garbage"; "slo:x:y" ]

(* {1 Bundle} *)

let test_bundle_deterministic () =
  let dot = "digraph ssi {\n  \"t1\" -> \"t3\";\n}\n" in
  let certs =
    [
      pivot_cert ~ts:0.03 ~in_edge:(edge "r/t/a") ~out_edge:(edge "r/t/b") ~dot ();
      (* a later snapshot, after the firing instant: must not be picked *)
      pivot_cert ~ts:0.2 ~in_edge:(edge "r/t/z") ~out_edge:(edge "r/t/z")
        ~dot:"digraph late {}\n" ();
    ]
  in
  let sk = Sketch.create ~capacity:8 in
  Attrib.blame sk certs;
  let events = [ commit ~ts:0.01; abort ~ts:0.03 "unsafe" ] in
  let rc, inc =
    Flightrec.run ~capacity:4 ~window:0.05 ~trigger:(Flightrec.Abort_storm 0.4) events certs
  in
  let incident =
    match inc with Some i -> i | None -> Alcotest.fail "expected an incident"
  in
  let render () =
    let b = Buffer.create 512 in
    Flightrec.write_bundle b ~recorder:rc ~incident ~sk ~top:5 ~certs;
    Buffer.contents b
  in
  let a = render () and b = render () in
  Alcotest.(check string) "bundle renders byte-identically" a b;
  List.iter
    (fun sub -> Alcotest.(check bool) (Printf.sprintf "bundle has %S" sub) true (has_sub a sub))
    [
      "# flight-recorder post-mortem bundle";
      "trigger: abort_rate:0.4";
      "--- ring ---";
      "--- contention ---";
      "sketch: updates=";
      "--- dot ---";
      "digraph ssi";
    ];
  Alcotest.(check bool) "post-incident snapshot excluded" false (has_sub a "digraph late");
  (* no snapshot at or before the firing instant -> explicit "none" *)
  let b2 = Buffer.create 512 in
  Flightrec.write_bundle b2 ~recorder:rc ~incident ~sk ~top:5
    ~certs:[ pivot_cert ~ts:0.2 ~out_edge:(edge "r/t/z") ~dot:"digraph late {}\n" () ];
  Alcotest.(check bool) "missing snapshot renders none" true
    (has_sub (Buffer.contents b2) "--- dot ---\nnone\n")

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "attrib"
    [
      ( "sketch",
        [
          qt prop_sketch_bounds;
          qt prop_sketch_merge_deterministic;
          Alcotest.test_case "deterministic eviction + payload reset" `Quick
            test_evict_deterministic;
        ] );
      ( "blame",
        [
          Alcotest.test_case "edge roles, fcw skipped" `Quick test_blame_roles;
          Alcotest.test_case "per-window series" `Quick test_blame_windows;
        ] );
      ( "escape",
        [
          Alcotest.test_case "canonical pins" `Quick test_escape_pins;
          qt prop_escape_embeddable;
        ] );
      ( "ring",
        [
          Alcotest.test_case "wraparound drops oldest" `Quick test_ring_wraparound;
          Alcotest.test_case "freeze stops the world" `Quick test_ring_freeze;
        ] );
      ( "triggers",
        [
          Alcotest.test_case "abort storm fires at the boundary" `Quick test_abort_storm_fires;
          Alcotest.test_case "user aborts excluded" `Quick test_abort_storm_user_excluded;
          Alcotest.test_case "final partial window evaluated" `Quick
            test_abort_storm_final_window;
          Alcotest.test_case "slo violation fires" `Quick test_slo_trigger_fires;
          Alcotest.test_case "trigger parsing" `Quick test_trigger_parse;
        ] );
      ("bundle", [ Alcotest.test_case "deterministic, self-contained" `Quick test_bundle_deterministic ]);
    ]
