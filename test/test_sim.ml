(* Tests for the discrete-event simulator substrate. *)

let test_pqueue_ordering () =
  let q = Pqueue.create () in
  Pqueue.push q ~time:3.0 ~seq:1 "c";
  Pqueue.push q ~time:1.0 ~seq:2 "a";
  Pqueue.push q ~time:2.0 ~seq:3 "b";
  Alcotest.(check (option (pair (float 0.0) string))) "peek" (Some (1.0, "a")) (Pqueue.peek q);
  let order = List.init 3 (fun _ -> match Pqueue.pop q with Some (_, x) -> x | None -> "?") in
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] order;
  Alcotest.(check bool) "empty" true (Pqueue.is_empty q)

let test_pqueue_fifo_ties () =
  let q = Pqueue.create () in
  for i = 1 to 100 do
    Pqueue.push q ~time:1.0 ~seq:i i
  done;
  let out = List.init 100 (fun _ -> match Pqueue.pop q with Some (_, x) -> x | None -> -1) in
  Alcotest.(check (list int)) "seq order on equal times" (List.init 100 (fun i -> i + 1)) out

let test_pqueue_random_heap_property () =
  let q = Pqueue.create () in
  let st = Random.State.make [| 42 |] in
  let times = List.init 500 (fun i -> (Random.State.float st 100.0, i)) in
  List.iter (fun (tm, i) -> Pqueue.push q ~time:tm ~seq:i tm) times;
  let rec drain last acc =
    match Pqueue.pop q with
    | None -> List.rev acc
    | Some (tm, _) ->
        Alcotest.(check bool) "non-decreasing" true (tm >= last);
        drain tm (tm :: acc)
  in
  let out = drain neg_infinity [] in
  Alcotest.(check int) "all drained" 500 (List.length out)

let test_delay_ordering () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.spawn sim (fun () ->
      Sim.delay sim 2.0;
      log := ("b", Sim.now sim) :: !log);
  Sim.spawn sim (fun () ->
      Sim.delay sim 1.0;
      log := ("a", Sim.now sim) :: !log;
      Sim.delay sim 2.0;
      log := ("c", Sim.now sim) :: !log);
  Sim.run sim;
  Alcotest.(check (list (pair string (float 0.0))))
    "interleaving by simulated time"
    [ ("a", 1.0); ("b", 2.0); ("c", 3.0) ]
    (List.rev !log)

let test_run_until () =
  let sim = Sim.create () in
  let count = ref 0 in
  let rec tick () =
    Sim.delay sim 1.0;
    incr count;
    tick ()
  in
  Sim.spawn sim tick;
  Sim.run ~until:10.5 sim;
  Alcotest.(check int) "ticks until horizon" 10 !count;
  Alcotest.(check (float 0.0)) "clock stops at horizon" 10.5 (Sim.now sim)

(* Stopping at a horizon must not consume the first event beyond it: a
   later [run] picks up exactly where the clock stopped. *)
let test_run_until_resumes () =
  let sim = Sim.create () in
  let fired = ref [] in
  List.iter
    (fun d -> Sim.spawn sim (fun () -> Sim.delay sim d; fired := d :: !fired))
    [ 0.25; 0.75; 1.25 ];
  Sim.run ~until:0.5 sim;
  Alcotest.(check (list (float 0.0))) "only pre-horizon events" [ 0.25 ] (List.rev !fired);
  Sim.run sim;
  Alcotest.(check (list (float 0.0)))
    "post-horizon events survive the pause" [ 0.25; 0.75; 1.25 ] (List.rev !fired);
  Alcotest.(check (float 0.0)) "clock at last event" 1.25 (Sim.now sim)

let test_cond_broadcast () =
  let sim = Sim.create () in
  let c = Sim.cond () in
  let woken = ref 0 in
  for _ = 1 to 3 do
    Sim.spawn sim (fun () ->
        Sim.wait sim c;
        incr woken)
  done;
  Sim.spawn sim (fun () ->
      Sim.delay sim 5.0;
      Sim.broadcast sim c);
  Sim.run sim;
  Alcotest.(check int) "all woken" 3 !woken

let test_cond_signal_fifo () =
  let sim = Sim.create () in
  let c = Sim.cond () in
  let order = ref [] in
  for i = 1 to 3 do
    Sim.spawn sim (fun () ->
        Sim.delay sim (float_of_int i *. 0.1);
        Sim.wait sim c;
        order := i :: !order)
  done;
  Sim.spawn sim (fun () ->
      Sim.delay sim 1.0;
      Sim.signal sim c;
      Sim.delay sim 1.0;
      Sim.signal sim c;
      Sim.delay sim 1.0;
      Sim.signal sim c);
  Sim.run sim;
  Alcotest.(check (list int)) "FIFO wakeups" [ 1; 2; 3 ] (List.rev !order)

let test_kill_raises () =
  let sim = Sim.create () in
  let saved = ref None in
  let caught = ref false in
  Sim.spawn sim (fun () ->
      try Sim.suspend sim (fun w -> saved := Some w)
      with Failure m ->
        caught := true;
        Alcotest.(check string) "message" "killed" m);
  Sim.spawn sim (fun () ->
      Sim.delay sim 1.0;
      match !saved with Some w -> Sim.kill sim w (Failure "killed") | None -> Alcotest.fail "no waker");
  Sim.run sim;
  Alcotest.(check bool) "exception delivered" true !caught

let test_wake_then_kill_noop () =
  let sim = Sim.create () in
  let saved = ref None in
  let resumed = ref false in
  Sim.spawn sim (fun () ->
      Sim.suspend sim (fun w -> saved := Some w);
      resumed := true);
  Sim.spawn sim (fun () ->
      Sim.delay sim 1.0;
      let w = Option.get !saved in
      Sim.wake sim w;
      Sim.kill sim w Exit (* must be ignored *));
  Sim.run sim;
  Alcotest.(check bool) "woken normally" true !resumed

let test_resource_capacity () =
  let sim = Sim.create () in
  let r = Resource.create sim ~name:"cpu" ~capacity:2 in
  let finished = ref [] in
  for i = 1 to 4 do
    Sim.spawn sim (fun () ->
        Resource.use r 1.0 (fun () -> ());
        finished := (i, Sim.now sim) :: !finished)
  done;
  Sim.run sim;
  let times = List.map snd (List.rev !finished) in
  (* 2 servers, 4 jobs of 1s: two finish at t=1, two at t=2. *)
  Alcotest.(check (list (float 0.0))) "completion times" [ 1.0; 1.0; 2.0; 2.0 ] times;
  Alcotest.(check (float 1e-9)) "busy time" 4.0 (Resource.busy_time r)

let test_resource_fifo () =
  let sim = Sim.create () in
  let r = Resource.create sim ~name:"mutex" ~capacity:1 in
  let order = ref [] in
  for i = 1 to 5 do
    Sim.spawn sim (fun () ->
        Sim.delay sim (float_of_int i *. 0.01);
        Resource.use r 1.0 (fun () -> order := i :: !order))
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "FIFO service order" [ 1; 2; 3; 4; 5 ] (List.rev !order)

let test_resource_utilisation () =
  let sim = Sim.create () in
  let r = Resource.create sim ~name:"cpu" ~capacity:1 in
  Sim.spawn sim (fun () -> Resource.consume r 2.0);
  Sim.run sim;
  Alcotest.(check (float 1e-9)) "50%% utilisation over 4s" 0.5 (Resource.utilisation r ~elapsed:4.0)

let test_wal_no_flush () =
  let sim = Sim.create () in
  let wal = Wal.create sim ~mode:Wal.No_flush in
  let t = ref (-1.0) in
  Sim.spawn sim (fun () ->
      Wal.append wal (Wal.Begin { txn = 1 });
      Wal.commit_flush wal;
      t := Sim.now sim);
  Sim.run sim;
  Alcotest.(check (float 0.0)) "instant" 0.0 !t;
  Alcotest.(check int) "no physical flush" 0 (Wal.flushes wal)

let test_wal_group_commit () =
  let sim = Sim.create () in
  let wal = Wal.create sim ~mode:(Wal.Flush_per_commit 0.010) in
  let completion = ref [] in
  (* First committer starts a flush; 9 more arrive during it and share the
     second flush. *)
  for i = 1 to 10 do
    Sim.spawn sim (fun () ->
        Sim.delay sim (float_of_int i *. 0.0001);
        Wal.append wal (Wal.Begin { txn = 1 });
        Wal.commit_flush wal;
        completion := (i, Sim.now sim) :: !completion)
  done;
  Sim.run sim;
  Alcotest.(check int) "two physical flushes for ten commits" 2 (Wal.flushes wal);
  let t1 = List.assoc 1 !completion and t10 = List.assoc 10 !completion in
  Alcotest.(check bool) "leader done after one latency" true (abs_float (t1 -. 0.0101) < 1e-9);
  Alcotest.(check bool) "followers done after second flush" true (abs_float (t10 -. 0.0201) < 1e-9)

let test_wal_sequential_flushes () =
  let sim = Sim.create () in
  let wal = Wal.create sim ~mode:(Wal.Flush_per_commit 0.010) in
  let done_at = ref [] in
  Sim.spawn sim (fun () ->
      for _ = 1 to 3 do
        Wal.append wal (Wal.Begin { txn = 1 });
        Wal.commit_flush wal;
        done_at := Sim.now sim :: !done_at
      done);
  Sim.run sim;
  Alcotest.(check int) "three flushes" 3 (Wal.flushes wal);
  Alcotest.(check (list (float 1e-9))) "10ms apart" [ 0.01; 0.02; 0.03 ] (List.rev !done_at)

let test_determinism () =
  let run_once () =
    let sim = Sim.create () in
    let r = Resource.create sim ~name:"cpu" ~capacity:2 in
    let trace = Buffer.create 64 in
    for i = 1 to 5 do
      Sim.spawn sim (fun () ->
          let st = Random.State.make [| i |] in
          for _ = 1 to 5 do
            Resource.use r (Random.State.float st 0.1) (fun () -> ());
            Buffer.add_string trace (Printf.sprintf "%d@%.6f;" i (Sim.now sim))
          done)
    done;
    Sim.run sim;
    Buffer.contents trace
  in
  Alcotest.(check string) "identical traces" (run_once ()) (run_once ())


let test_schedule_callbacks () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.schedule sim ~after:2.0 (fun () -> log := "b" :: !log);
  Sim.schedule sim ~after:1.0 (fun () -> log := "a" :: !log);
  Sim.run sim;
  Alcotest.(check (list string)) "callback ordering" [ "a"; "b" ] (List.rev !log)

let test_yield_interleaves () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.spawn sim (fun () ->
      log := 1 :: !log;
      Sim.yield sim;
      log := 3 :: !log);
  Sim.spawn sim (fun () -> log := 2 :: !log);
  Sim.run sim;
  Alcotest.(check (list int)) "yield lets the other run" [ 1; 2; 3 ] (List.rev !log)

let test_nested_spawn () =
  let sim = Sim.create () in
  let done_ = ref false in
  Sim.spawn sim (fun () ->
      Sim.delay sim 1.0;
      Sim.spawn sim (fun () ->
          Sim.delay sim 1.0;
          done_ := true));
  Sim.run sim;
  Alcotest.(check bool) "child process ran" true !done_;
  Alcotest.(check (float 1e-9)) "time advanced" 2.0 (Sim.now sim)

let test_live_procs_accounting () =
  let sim = Sim.create () in
  Sim.spawn sim (fun () -> Sim.delay sim 1.0);
  Sim.spawn sim (fun () -> Sim.delay sim 2.0);
  Alcotest.(check int) "spawned" 2 (Sim.live_procs sim);
  Sim.run sim;
  Alcotest.(check int) "all finished" 0 (Sim.live_procs sim)

(* Property: under random arrivals, group commit never loses a committer
   (everyone returns after a flush that covers their append), and the number
   of physical flushes never exceeds the number of commits. *)
let prop_group_commit arrivals =
  let sim = Sim.create () in
  let wal = Wal.create sim ~mode:(Wal.Flush_per_commit 0.01) in
  let completed = ref 0 in
  List.iter
    (fun a ->
      let at = float_of_int a /. 10000.0 in
      Sim.spawn sim (fun () ->
          Sim.delay sim at;
          Wal.append wal (Wal.Begin { txn = 1 });
          let t0 = Sim.now sim in
          Wal.commit_flush wal;
          assert (Sim.now sim >= t0 +. 0.01 -. 1e-12);
          incr completed))
    arrivals;
  Sim.run sim;
  !completed = List.length arrivals
  && Wal.flushes wal <= List.length arrivals
  && (arrivals = [] || Wal.flushes wal >= 1)

let qcheck_group_commit =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"group commit covers every committer"
       QCheck.(list_of_size Gen.(int_bound 30) (int_bound 300))
       prop_group_commit)

let suite =
  [
    ("pqueue ordering", `Quick, test_pqueue_ordering);
    ("pqueue fifo ties", `Quick, test_pqueue_fifo_ties);
    ("pqueue random heap property", `Quick, test_pqueue_random_heap_property);
    ("delay ordering", `Quick, test_delay_ordering);
    ("run until horizon", `Quick, test_run_until);
    ("run resumes past horizon", `Quick, test_run_until_resumes);
    ("cond broadcast", `Quick, test_cond_broadcast);
    ("cond signal fifo", `Quick, test_cond_signal_fifo);
    ("kill raises in process", `Quick, test_kill_raises);
    ("wake then kill is noop", `Quick, test_wake_then_kill_noop);
    ("resource capacity", `Quick, test_resource_capacity);
    ("resource fifo", `Quick, test_resource_fifo);
    ("resource utilisation", `Quick, test_resource_utilisation);
    ("wal no flush", `Quick, test_wal_no_flush);
    ("wal group commit", `Quick, test_wal_group_commit);
    ("wal sequential flushes", `Quick, test_wal_sequential_flushes);
    ("determinism", `Quick, test_determinism);
    ("schedule callbacks", `Quick, test_schedule_callbacks);
    ("yield interleaves", `Quick, test_yield_interleaves);
    ("nested spawn", `Quick, test_nested_spawn);
    ("live procs accounting", `Quick, test_live_procs_accounting);
  ]
  @ [ qcheck_group_commit ]

let () = Alcotest.run "sim" [ ("sim", suite) ]
