(* Abort-provenance tests: certificate shapes pinned for the three abort
   families (SSI pivot on write skew, S2PL-style deadlock cycle,
   first-committer-wins), DOT snapshot well-formedness, JSON export
   well-formedness, and the fuzzer coupling — a fixed-seed certified
   campaign in which every row-level pivot edge must exist in the MVSG
   oracle's graph and every certificate-bearing case must replay through
   its codec line to identical outcomes and certificate shapes. *)

open Core
open Testutil

let ssi = Types.Serializable

let si = Types.Snapshot

let prov_obs () = Obs.create ~trace:false ~metrics:false ~provenance:true ()

(* Quote/escape-aware JSON sanity (same discipline as test_obs). *)
let check_json s =
  let depth = ref 0 and in_str = ref false and esc = ref false and ok = ref true in
  String.iter
    (fun ch ->
      if Char.code ch >= 0x80 then ok := false;
      if !in_str then
        if !esc then esc := false
        else if ch = '\\' then esc := true
        else if ch = '"' then in_str := false
        else if Char.code ch < 0x20 then ok := false
        else ()
      else
        match ch with
        | '"' -> in_str := true
        | '[' | '{' -> incr depth
        | ']' | '}' ->
            decr depth;
            if !depth < 0 then ok := false
        | _ -> ())
    s;
  !ok && !depth = 0 && not !in_str

let check_dot msg dot =
  match Obs.dot_validate dot with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: invalid DOT (%s):\n%s" msg e dot

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* {1 SSI pivot certificate on classic write skew} *)

(* Schedule both reads of both transactions before either write. T0 commits
   first, becoming a committed pivot (in-edge from T1's read of k0, out-edge
   to T1's write of k1); T1's final write must then abort Unsafe and emit an
   [Ssi_pivot] certificate naming T0 as the pivot and T1 as the victim. *)
let write_skew_order =
  Interleave.[ (0, R "x"); (0, R "y"); (1, R "x"); (1, R "y"); (0, W "x"); (1, W "y") ]

let run_write_skew () =
  let obs = prov_obs () in
  let r =
    Interleave.run_interleaving ~obs ~isolation:ssi Interleave.write_skew_spec write_skew_order
  in
  (r, Obs.certs obs)

let test_write_skew_cert_shape () =
  let r, certs = run_write_skew () in
  (match r.Interleave.outcomes with
  | [ None; Some Types.Unsafe ] -> ()
  | o ->
      Alcotest.failf "unexpected outcomes: %s"
        (String.concat ","
           (List.map
              (function None -> "commit" | Some a -> Types.abort_reason_to_string a)
              o)));
  match certs with
  | [ c ] -> (
      Alcotest.(check string) "reason" "unsafe" c.Obs.c_reason;
      match c.Obs.c_cert with
      | Obs.Ssi_pivot
          {
            sp_victim;
            sp_pivot;
            sp_policy;
            sp_t_in;
            sp_t_out;
            sp_in_edge;
            sp_out_edge;
            sp_in_state;
            sp_out_state;
            _;
          } ->
          (* In the 2-transaction write skew both transactions are pivots of
             the rw cycle; the marking transaction becomes dangerous when the
             second edge lands and, under abort-early + prefer-pivot,
             self-aborts: victim = pivot, and both neighbours are the other
             (already committed) transaction. *)
          Alcotest.(check int) "victim is the pivot" sp_pivot sp_victim;
          Alcotest.(check int) "cert_victim agrees" sp_victim (Obs.cert_victim c);
          Alcotest.(check string) "policy" "prefer-pivot" sp_policy;
          let other =
            match sp_t_in with Some o -> o | None -> Alcotest.fail "t_in missing"
          in
          Alcotest.(check bool) "neighbour is the other txn" true (other <> sp_pivot);
          Alcotest.(check (option int)) "t_out is the same neighbour" (Some other) sp_t_out;
          Alcotest.(check bool) "both endpoint states committed" true
            (sp_in_state = Obs.Ep_committed && sp_out_state = Obs.Ep_committed);
          let edge name e (reader, writer) =
            match e with
            | None -> Alcotest.failf "missing %s edge" name
            | Some e ->
                Alcotest.(check int) (name ^ " reader") reader e.Obs.ce_reader;
                Alcotest.(check int) (name ^ " writer") writer e.Obs.ce_writer;
                Alcotest.(check bool)
                  (name ^ " row resource") true
                  (String.length e.Obs.ce_resource > 2
                  && String.sub e.Obs.ce_resource 0 2 = "r/")
          in
          edge "in" sp_in_edge (other, sp_pivot);
          edge "out" sp_out_edge (sp_pivot, other)
      | _ -> Alcotest.fail "expected an Ssi_pivot certificate")
  | certs -> Alcotest.failf "expected exactly one certificate, got %d" (List.length certs)

let test_write_skew_cert_exports () =
  let _, certs = run_write_skew () in
  let c = List.hd certs in
  Alcotest.(check bool) "JSON export well-formed" true (check_json (Obs.cert_to_json c));
  Alcotest.(check bool) "shape names the pivot structure" true
    (String.length (Obs.cert_shape c) > 0 && contains_sub (Obs.cert_shape c) "ssi-pivot");
  check_dot "pivot snapshot" c.Obs.c_dot;
  Alcotest.(check bool) "snapshot is the ssi digraph" true (contains_sub c.Obs.c_dot "digraph ssi");
  Alcotest.(check bool) "snapshot carries an rw edge" true (contains_sub c.Obs.c_dot "rw:")

(* Two provenance runs of the same schedule emit byte-identical
   certificates (JSON and DOT included) — the repro contract. *)
let test_certs_deterministic () =
  let _, c1 = run_write_skew () in
  let _, c2 = run_write_skew () in
  Alcotest.(check (list string))
    "byte-identical certificate exports"
    (List.map Obs.cert_to_json c1) (List.map Obs.cert_to_json c2)

(* Provenance off (the default sink): same run, no certificates, outcomes
   unchanged. *)
let test_provenance_off_is_free () =
  let obs = Obs.create () in
  let r =
    Interleave.run_interleaving ~obs ~isolation:ssi Interleave.write_skew_spec write_skew_order
  in
  let r_plain, certs = run_write_skew () in
  Alcotest.(check int) "no certificates collected" 0 (Obs.cert_count obs);
  Alcotest.(check bool) "outcomes identical with provenance on" true
    (r.Interleave.outcomes = r_plain.Interleave.outcomes);
  Alcotest.(check bool) "provenance run did certify" true (certs <> [])

(* {1 Deadlock certificate} *)

let test_deadlock_cert () =
  let config = { (Config.test ()) with Config.detection = Lockmgr.Immediate } in
  let env = make_env ~config ~tables:[ "t" ] ~rows:[ ("t", [ ("x", "0"); ("y", "0") ]) ] () in
  let obs = prov_obs () in
  Db.set_obs env.db obs;
  (* T1: w(x) .. w(y); T2: w(y) .. w(x) — T2's second write closes the
     cycle, so immediate detection kills T2 at the request. *)
  let r1 =
    script env ~at:0.0 ~gap:0.02 ~isolation:si
      [ (fun t -> Txn.write t "t" "x" "1"); (fun t -> Txn.write t "t" "y" "1") ]
  in
  let r2 =
    script env ~at:0.005 ~gap:0.02 ~isolation:si
      [ (fun t -> Txn.write t "t" "y" "2"); (fun t -> Txn.write t "t" "x" "2") ]
  in
  run_procs env [];
  check_outcome "T1 commits" Committed r1;
  check_outcome "T2 deadlocks" (Aborted Types.Deadlock) r2;
  match Obs.certs obs with
  | [ c ] -> (
      Alcotest.(check string) "reason" "deadlock" c.Obs.c_reason;
      match c.Obs.c_cert with
      | Obs.Deadlock_cycle { dc_victim; dc_cycle; dc_waits } ->
          Alcotest.(check int) "cycle has both owners" 2 (List.length (List.sort_uniq compare dc_cycle));
          Alcotest.(check bool) "victim heads the cycle" true (List.hd dc_cycle = dc_victim);
          Alcotest.(check bool) "victim's blocked resource recorded" true
            (List.mem_assoc dc_victim dc_waits);
          Alcotest.(check bool) "shape counts the cycle" true
            (contains_sub (Obs.cert_shape c) "deadlock");
          check_dot "waits-for snapshot" c.Obs.c_dot;
          Alcotest.(check bool) "waits-for digraph" true
            (contains_sub c.Obs.c_dot "digraph deadlock")
      | _ -> Alcotest.fail "expected a Deadlock_cycle certificate")
  | certs -> Alcotest.failf "expected exactly one certificate, got %d" (List.length certs)

(* {1 First-committer-wins certificate} *)

let test_fcw_cert () =
  let env = make_env ~tables:[ "t" ] ~rows:[ ("t", [ ("x", "0") ]) ] () in
  let obs = prov_obs () in
  Db.set_obs env.db obs;
  let t2_id = ref (-1) in
  (* T2 overwrites x and commits inside T1's [read .. write] window. *)
  let r1 =
    script env ~at:0.0 ~gap:0.05 ~isolation:si
      [ (fun t -> ignore (Txn.read t "t" "x")); (fun t -> Txn.write t "t" "x" "1") ]
  in
  let r2 =
    script env ~at:0.01 ~isolation:si
      [
        (fun t ->
          t2_id := Txn.id t;
          Txn.write t "t" "x" "2");
      ]
  in
  run_procs env [];
  check_outcome "T2 commits" Committed r2;
  check_outcome "T1 hits first-committer-wins" (Aborted Types.Update_conflict) r1;
  match Obs.certs obs with
  | [ c ] -> (
      Alcotest.(check string) "reason" "update-conflict" c.Obs.c_reason;
      match c.Obs.c_cert with
      | Obs.Fcw_block { fb_resource; fb_blocking_writer; fb_blocking_commit; fb_snapshot; _ } ->
          Alcotest.(check string) "resource" "r/t/x" fb_resource;
          Alcotest.(check int) "blocking writer is T2" !t2_id fb_blocking_writer;
          Alcotest.(check bool) "blocking version is post-snapshot" true
            (fb_blocking_commit > fb_snapshot);
          Alcotest.(check bool) "shape names the resource kind" true
            (contains_sub (Obs.cert_shape c) "fcw")
      | _ -> Alcotest.fail "expected an Fcw_block certificate")
  | certs -> Alcotest.failf "expected exactly one certificate, got %d" (List.length certs)

(* {1 Live dependency-graph snapshots} *)

let test_db_dot_snapshot () =
  let env = make_env ~tables:[ "t" ] ~rows:[ ("t", [ ("x", "0"); ("y", "0") ]) ] () in
  let obs = prov_obs () in
  Db.set_obs env.db obs;
  Sim.spawn env.sim (fun () ->
      let t1 = Db.begin_txn env.db ssi in
      let t2 = Db.begin_txn env.db ssi in
      ignore (Txn.read t1 "t" "x");
      Txn.write t2 "t" "x" "1";
      let dot = Db.dot_snapshot env.db in
      check_dot "live snapshot" dot;
      Alcotest.(check bool) "both txns present" true
        (contains_sub dot (Printf.sprintf "T%d" (Txn.id t1))
        && contains_sub dot (Printf.sprintf "T%d" (Txn.id t2)));
      Alcotest.(check bool) "rw edge rendered" true (contains_sub dot "rw:");
      Txn.commit t2;
      Txn.commit t1);
  Sim.run env.sim

(* {1 Fuzzer coupling (satellite): certified campaign against the MVSG
   oracle} *)

(* A hand-built write-skew fuzz case exercises the whole chain: certified
   run, oracle filter, codec replay. *)
let write_skew_case =
  Interleave.
    {
      Fuzzcase.specs = [ [ R "k0"; R "k1"; W "k0" ]; [ R "k0"; R "k1"; W "k1" ] ];
      ro = [ false; false ];
      init = [ ("k0", "0"); ("k1", "0") ];
      schedule = [ 0; 0; 1; 1; 0; 1 ];
      cfg = Fuzzcase.default_point;
    }

let test_certified_case_clean () =
  let cc = Fuzzcert.check_case write_skew_case in
  Alcotest.(check bool) "emits a certificate" true (cc.Fuzzcert.cc_certs > 0);
  Alcotest.(check (list string)) "no oracle mismatches" [] cc.Fuzzcert.cc_mismatches;
  Alcotest.(check bool) "replays through its codec line" true cc.Fuzzcert.cc_replay_ok

(* The acceptance campaign: 1000 fixed-seed cases over the default matrix.
   Every row-level edge cited by an SSI certificate with both endpoints
   committed must appear as an Rw edge in the oracle MVSG, and every
   certificate-bearing case must replay byte-identically. *)
let test_certified_campaign_1k () =
  let ca = Fuzzcert.campaign ~seed:20080605 ~cases:1000 ~matrix:Fuzzcase.matrix_default () in
  Alcotest.(check int) "cases run" 1000 ca.Fuzzcert.ca_cases;
  Alcotest.(check bool) "campaign produced certificates" true (ca.Fuzzcert.ca_certs > 0);
  Alcotest.(check bool) "oracle-checkable edges found" true (ca.Fuzzcert.ca_edges_checked > 0);
  Alcotest.(check int) "every checked edge matched"
    ca.Fuzzcert.ca_edges_checked ca.Fuzzcert.ca_edges_matched;
  (match ca.Fuzzcert.ca_failures with
  | [] -> ()
  | (line, why) :: _ ->
      Alcotest.failf "%d failing case(s); first: %s\n%s"
        (List.length ca.Fuzzcert.ca_failures) why line);
  Alcotest.(check bool) "a sizeable share of cases certified" true
    (ca.Fuzzcert.ca_certified > 20)

let () =
  Alcotest.run "provenance"
    [
      ( "ssi-pivot",
        [
          ("write-skew certificate shape", `Quick, test_write_skew_cert_shape);
          ("JSON and DOT exports", `Quick, test_write_skew_cert_exports);
          ("certificates deterministic", `Quick, test_certs_deterministic);
          ("provenance off emits nothing", `Quick, test_provenance_off_is_free);
        ] );
      ( "deadlock",
        [ ("cycle certificate", `Quick, test_deadlock_cert) ] );
      ( "fcw",
        [ ("blocking-version certificate", `Quick, test_fcw_cert) ] );
      ( "snapshots",
        [ ("live DOT snapshot", `Quick, test_db_dot_snapshot) ] );
      ( "fuzz-coupling",
        [
          ("hand-built write-skew case", `Quick, test_certified_case_clean);
          ("1k-case certified campaign", `Slow, test_certified_campaign_1k);
        ] );
    ]
