(* Tests for the domain-pool job runner (lib/par): submission-order results
   under adversarial job durations, exception propagation from worker
   domains, pool reuse, the -j 1 sequential fallback, nested-submission
   rejection, and the streaming on_result contract. These are the properties
   the byte-identical [-j 1] vs [-j N] output guarantee rests on. *)

exception Boom of int

(* Jobs that finish in reverse submission order: later jobs sleep less, so
   any completion-order leak shows up as a permuted result list. *)
let adversarial_jobs n =
  List.init n (fun i ->
      fun () ->
        Unix.sleepf (0.002 *. float_of_int (n - i));
        i * i)

let expected n = List.init n (fun i -> i * i)

let test_order_adversarial () =
  Par.with_pool ~j:4 (fun p ->
      Alcotest.(check (list int)) "submission order" (expected 12) (Par.run p (adversarial_jobs 12)))

let test_sequential_fallback () =
  Par.with_pool ~j:1 (fun p ->
      Alcotest.(check int) "size 1" 1 (Par.size p);
      Alcotest.(check (list int)) "same results" (expected 8) (Par.run p (adversarial_jobs 8)))

let test_pool_reuse () =
  Par.with_pool ~j:3 (fun p ->
      for batch = 1 to 5 do
        let n = 3 + batch in
        Alcotest.(check (list int))
          (Printf.sprintf "batch %d" batch)
          (expected n) (Par.run p (adversarial_jobs n))
      done)

let check_raises_boom k jobs =
  List.iter
    (fun j ->
      Par.with_pool ~j (fun p ->
          match Par.run p jobs with
          | _ -> Alcotest.failf "-j %d: expected Boom %d" j k
          | exception Boom i -> Alcotest.(check int) (Printf.sprintf "-j %d victim" j) k i))
    [ 1; 4 ]

let test_exception_propagation () =
  (* One failing job: its exception crosses the domain boundary intact. *)
  check_raises_boom 2
    (List.init 6 (fun i -> fun () -> if i = 2 then raise (Boom i) else i))

let test_lowest_index_exception () =
  (* Several failures: deterministically the lowest-index one is re-raised,
     even when a higher-index job fails first in wall-clock time. *)
  check_raises_boom 1
    (List.init 6 (fun i ->
         fun () ->
           if i = 5 then raise (Boom i)
           else begin
             Unix.sleepf (0.005 *. float_of_int (6 - i));
             if i = 1 || i = 3 then raise (Boom i) else i
           end))

let test_nested_submission_rejected () =
  List.iter
    (fun j ->
      Par.with_pool ~j (fun p ->
          match Par.run p [ (fun () -> Par.run p [ (fun () -> 0) ]) ] with
          | _ -> Alcotest.failf "-j %d: nested run must be rejected" j
          | exception Invalid_argument _ -> ());
      (* ... even against a *different* pool *)
      Par.with_pool ~j (fun p ->
          Par.with_pool ~j:1 (fun q ->
              match Par.run p [ (fun () -> Par.run q [ (fun () -> 0) ]) ] with
              | _ -> Alcotest.failf "-j %d: cross-pool nested run must be rejected" j
              | exception Invalid_argument _ -> ())))
    [ 1; 3 ]

let test_inside_job_flag () =
  Par.with_pool ~j:2 (fun p ->
      Alcotest.(check bool) "outside" false (Par.inside_job ());
      let flags = Par.run p (List.init 4 (fun _ -> Par.inside_job)) in
      Alcotest.(check (list bool)) "inside" [ true; true; true; true ] flags;
      Alcotest.(check bool) "restored" false (Par.inside_job ()))

let test_on_result_streams_in_order () =
  List.iter
    (fun j ->
      Par.with_pool ~j (fun p ->
          let seen = ref [] in
          let out =
            Par.run ~on_result:(fun i v -> seen := (i, v) :: !seen) p (adversarial_jobs 10)
          in
          Alcotest.(check (list int)) "results" (expected 10) out;
          Alcotest.(check (list (pair int int)))
            (Printf.sprintf "-j %d: streamed prefix in order" j)
            (List.init 10 (fun i -> (i, i * i)))
            (List.rev !seen)))
    [ 1; 4 ]

let test_map () =
  Alcotest.(check (list int)) "map without pool" [ 2; 4; 6 ] (Par.map (fun x -> 2 * x) [ 1; 2; 3 ]);
  Par.with_pool ~j:3 (fun p ->
      Alcotest.(check (list int))
        "map with pool" [ 2; 4; 6 ]
        (Par.map ~pool:p (fun x -> 2 * x) [ 1; 2; 3 ]))

let test_shutdown_idempotent () =
  let p = Par.create 3 in
  ignore (Par.run p (adversarial_jobs 4));
  Par.shutdown p;
  Par.shutdown p;
  match Par.run p [ (fun () -> 0) ] with
  | _ -> Alcotest.fail "run after shutdown must be rejected"
  | exception Invalid_argument _ -> ()

(* End to end through a real consumer: a parallel Driver.run_seeds summary
   equals the sequential one (the lib-level half of the -j determinism
   contract; bin/dune diffs the CLI output too). *)
let test_run_seeds_pool_equivalence () =
  let make_db sim =
    let db = Core.Db.create ~config:(Core.Config.bdb ()) sim in
    Sibench.setup db ~items:20 ();
    db
  in
  let mix = Sibench.mix ~items:20 () in
  let cfg =
    {
      Driver.default_config with
      Driver.isolation = Core.Types.Serializable;
      mpl = 4;
      warmup = 0.05;
      duration = 0.2;
    }
  in
  let seeds = [ 1; 2; 3; 4 ] in
  let seq = Driver.run_seeds ~make_db ~mix ~seeds cfg in
  let par = Par.with_pool ~j:4 (fun p -> Driver.run_seeds ~pool:p ~make_db ~mix ~seeds cfg) in
  Alcotest.(check (float 0.0)) "throughput" seq.Driver.s_throughput par.Driver.s_throughput;
  Alcotest.(check (float 0.0)) "ci" seq.Driver.s_ci par.Driver.s_ci;
  Alcotest.(check (float 0.0)) "mean response" seq.Driver.s_mean_response par.Driver.s_mean_response;
  Alcotest.(check (float 0.0)) "unsafe rate" seq.Driver.s_unsafe_rate par.Driver.s_unsafe_rate

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "order under adversarial durations" `Quick test_order_adversarial;
          Alcotest.test_case "-j 1 sequential fallback" `Quick test_sequential_fallback;
          Alcotest.test_case "pool reuse across batches" `Quick test_pool_reuse;
          Alcotest.test_case "exception crosses domain" `Quick test_exception_propagation;
          Alcotest.test_case "lowest-index exception wins" `Quick test_lowest_index_exception;
          Alcotest.test_case "nested submission rejected" `Quick test_nested_submission_rejected;
          Alcotest.test_case "inside_job flag" `Quick test_inside_job_flag;
          Alcotest.test_case "on_result streams ordered prefix" `Quick
            test_on_result_streams_in_order;
          Alcotest.test_case "map" `Quick test_map;
          Alcotest.test_case "shutdown idempotent" `Quick test_shutdown_idempotent;
        ] );
      ( "consumers",
        [
          Alcotest.test_case "run_seeds pool = sequential" `Quick
            test_run_seeds_pool_equivalence;
        ] );
    ]
