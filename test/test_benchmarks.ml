(* Tests for the three benchmarks: program semantics, invariants under
   serializable algorithms, known anomalies under SI, and driver plumbing. *)

open Core
open Testutil

let mk_env ?config () =
  let config = match config with Some c -> c | None -> Config.test () in
  let sim = Sim.create () in
  let db = Db.create ~config sim in
  { sim; db }

(* {1 SmallBank} *)

let smallbank_env ?config ?(customers = 10) () =
  let env = mk_env ?config () in
  Smallbank.setup env.db ~customers ();
  env

let test_smallbank_programs () =
  let env = smallbank_env () in
  Sim.spawn env.sim (fun () ->
      let n0 = Smallbank.name_of 0 and n1 = Smallbank.name_of 1 in
      let bal = atomically env Types.Serializable (fun t -> Smallbank.bal n0 t) in
      Alcotest.(check int) "initial balance" 20_000 bal;
      atomically env Types.Serializable (fun t -> Smallbank.dc n0 500 t);
      atomically env Types.Serializable (fun t -> Smallbank.ts n0 300 t);
      let bal = atomically env Types.Serializable (fun t -> Smallbank.bal n0 t) in
      Alcotest.(check int) "after deposits" 20_800 bal;
      atomically env Types.Serializable (fun t -> Smallbank.amg n0 n1 t);
      let bal0 = atomically env Types.Serializable (fun t -> Smallbank.bal n0 t) in
      let bal1 = atomically env Types.Serializable (fun t -> Smallbank.bal n1 t) in
      Alcotest.(check int) "amalgamated source" 0 bal0;
      Alcotest.(check int) "amalgamated target" 40_800 bal1;
      (* WriteCheck with sufficient funds: no penalty. *)
      atomically env Types.Serializable (fun t -> Smallbank.wc n1 800 t);
      let bal1 = atomically env Types.Serializable (fun t -> Smallbank.bal n1 t) in
      Alcotest.(check int) "check cashed without penalty" 40_000 bal1;
      (* Overdraft: $1 penalty. *)
      atomically env Types.Serializable (fun t -> Smallbank.wc n0 100 t);
      let bal0 = atomically env Types.Serializable (fun t -> Smallbank.bal n0 t) in
      Alcotest.(check int) "overdraft penalty" (-101) bal0);
  Sim.run ~until:1e6 env.sim

let test_smallbank_ts_overdraft_rolls_back () =
  let env = smallbank_env () in
  Sim.spawn env.sim (fun () ->
      let n = Smallbank.name_of 2 in
      let r = Db.run env.db Types.Serializable (fun t -> Smallbank.ts n (-999_999) t) in
      Alcotest.(check bool) "user abort" true (r = Error Types.User_abort);
      let bal = atomically env Types.Serializable (fun t -> Smallbank.bal n t) in
      Alcotest.(check int) "unchanged" 20_000 bal);
  Sim.run ~until:1e6 env.sim

(* The SmallBank anomaly of §2.8.4 (after Fekete et al. 2004): Bal sees a
   state (TS's new saving but WC's old checking) that no serial order of
   {WC, TS, Bal} can produce — WC is the pivot of Bal -> WC -> TS. Timeline:
   WC reads early and commits late; TS commits in between; Bal reads after
   TS's commit but before WC's. *)
let smallbank_skew isolation =
  let env = smallbank_env ~customers:2 () in
  let n = Smallbank.name_of 0 in
  Sim.spawn env.sim (fun () ->
      atomically env Types.Serializable (fun t ->
          Txn.write t Smallbank.saving "id000000" "100";
          Txn.write t Smallbank.checking "id000000" "0"));
  Sim.run ~until:1e6 env.sim;
  Db.clear_history env.db;
  let bal_saw = ref (-1) in
  (* WC(80): reads at ~0.00, writes checking at ~0.08, commits ~0.16. *)
  let r_wc =
    script env ~at:0.0 ~gap:0.08 ~isolation
      [
        (fun t ->
          let s = int_of_string (Txn.read_exn t Smallbank.saving "id000000") in
          let c = int_of_string (Txn.read_exn t Smallbank.checking "id000000") in
          ignore (s, c));
        (fun t -> Txn.write t Smallbank.checking "id000000" (string_of_int (0 - 80)));
      ]
  in
  (* TS(-50): runs and commits at ~0.02. *)
  let r_ts = script env ~at:0.02 ~gap:0.005 ~isolation [ (fun t -> Smallbank.ts n (-50) t) ] in
  (* Bal: reads at ~0.05, after TS committed, before WC commits. *)
  let r_bal =
    script env ~at:0.05 ~gap:0.005 ~isolation [ (fun t -> bal_saw := Smallbank.bal n t) ]
  in
  run_procs env [];
  (!r_wc, !r_ts, !r_bal, !bal_saw, Db.history env.db)

let test_smallbank_skew_si () =
  let r_wc, r_ts, r_bal, bal_saw, history = smallbank_skew Types.Snapshot in
  Alcotest.check outcome_testable "WC commits" Committed r_wc;
  Alcotest.check outcome_testable "TS commits" Committed r_ts;
  Alcotest.check outcome_testable "Bal commits" Committed r_bal;
  Alcotest.(check int) "Bal saw TS's saving but not WC's checking" 50 bal_saw;
  Alcotest.(check bool) "history is not serializable" false (Mvsg.is_serializable history)

let test_smallbank_skew_ssi () =
  let r_wc, r_ts, r_bal, _, history = smallbank_skew Types.Serializable in
  let outcomes =
    List.sort compare [ outcome_to_string r_wc; outcome_to_string r_ts; outcome_to_string r_bal ]
  in
  Alcotest.(check bool) "not all three committed" true
    (outcomes <> [ "committed"; "committed"; "committed" ]);
  Alcotest.(check bool) "committed history serializable" true (Mvsg.is_serializable history)

let test_smallbank_driver_all_levels () =
  List.iter
    (fun isolation ->
      let make_db sim =
        let db = Db.create ~config:{ (Config.test ()) with Config.record_history = false } sim in
        Smallbank.setup db ~customers:50 ();
        db
      in
      let r =
        Driver.run_once ~make_db
          ~mix:(Smallbank.mix ~customers:50 ())
          {
            Driver.default_config with
            Driver.isolation;
            mpl = 5;
            warmup = 0.05;
            duration = 0.3;
          }
      in
      Alcotest.(check bool)
        (Types.isolation_to_string isolation ^ " commits")
        true (r.Driver.commits > 100))
    [ Types.Snapshot; Types.Serializable; Types.S2pl ]

let test_smallbank_history_serializable_under_ssi () =
  let make_db sim =
    let db = Db.create ~config:(Config.test ()) sim in
    Smallbank.setup db ~customers:5 ();
    db
  in
  let sim = Sim.create () in
  let db = make_db sim in
  for client = 1 to 4 do
    Sim.spawn sim (fun () ->
        let st = Random.State.make [| 77; client |] in
        let mix = Smallbank.mix ~customers:5 () in
        for _ = 1 to 15 do
          let prog = Driver.pick mix st in
          ignore (Db.run_retry db Types.Serializable (prog.Driver.p_body st));
          Sim.delay sim (Random.State.float st 0.001)
        done)
  done;
  Sim.run ~until:1e6 sim;
  Alcotest.(check bool) "history serializable" true (Mvsg.is_serializable (Db.history db))

(* {1 sibench} *)

let test_sibench_query_update () =
  let env = mk_env () in
  Sibench.setup env.db ~items:20 ();
  Sim.spawn env.sim (fun () ->
      let q = atomically env Types.Serializable (fun t -> Sibench.query t) in
      Alcotest.(check (option (pair string int))) "min is row 0" (Some (Sibench.key_of 0, 0)) q;
      let st = Random.State.make [| 1 |] in
      atomically env Types.Serializable (fun t -> Sibench.update ~items:20 st t);
      ());
  Sim.run ~until:1e6 env.sim;
  Alcotest.(check int) "one increment" (Sibench.initial_total ~items:20 + 1) (Sibench.total env.db)

let test_sibench_updates_never_lost () =
  (* Every committed update adds exactly 1 to the table total (no lost
     updates) under every isolation level. *)
  List.iter
    (fun isolation ->
      let items = 10 in
      let sim = Sim.create () in
      let db = Db.create ~config:(Config.test ()) sim in
      Sibench.setup db ~items ();
      let committed = ref 0 in
      for client = 1 to 6 do
        Sim.spawn sim (fun () ->
            let st = Random.State.make [| 5; client |] in
            for _ = 1 to 20 do
              (match Db.run db isolation (fun t -> Sibench.update ~items st t) with
              | Ok () -> incr committed
              | Error _ -> ());
              Sim.delay sim (Random.State.float st 0.0005)
            done)
      done;
      Sim.run ~until:1e6 sim;
      Alcotest.(check int)
        (Types.isolation_to_string isolation ^ ": total = initial + commits")
        (Sibench.initial_total ~items + !committed)
        (Sibench.total db))
    [ Types.Snapshot; Types.Serializable; Types.S2pl ]

let test_sibench_no_unsafe_aborts () =
  (* §5.2: a single rw edge in the SDG — no write skew is possible, so
     Serializable SI should almost never abort queries or updates with the
     unsafe error at modest contention, and never deadlock. *)
  let make_db sim =
    let db = Db.create ~config:{ (Config.test ()) with Config.record_history = false } sim in
    Sibench.setup db ~items:100 ();
    db
  in
  let r =
    Driver.run_once ~make_db
      ~mix:(Sibench.mix ~items:100 ())
      {
        Driver.default_config with
        Driver.isolation = Types.Serializable;
        mpl = 4;
        warmup = 0.05;
        duration = 0.3;
      }
  in
  Alcotest.(check bool) "committed work" true (r.Driver.commits > 100);
  Alcotest.(check int) "no deadlocks" 0 r.Driver.deadlocks

(* {1 TPC-C++} *)

let small_scale =
  { Tpcc.warehouses = 1; districts = 2; customers_per_district = 5; items = 50; initial_orders = 6 }

let tpcc_env ?config () =
  let env = mk_env ?config () in
  Tpcc.setup env.db ~scale:small_scale ();
  env

let test_tpcc_setup_consistent () =
  let env = tpcc_env () in
  Tpcc.check_consistency env.db ~scale:small_scale

let test_tpcc_new_order () =
  let env = tpcc_env () in
  Sim.spawn env.sim (fun () ->
      let st = Random.State.make [| 3 |] in
      let before =
        atomically env Types.Serializable (fun t ->
            fst (Tpcc.parse_district (Txn.read_exn t Tpcc.district (Tpcc.dkey 0 0))))
      in
      (* Run new orders until one targets district 0 (random d in 0..1). *)
      let placed = ref 0 in
      for _ = 1 to 10 do
        match Db.run env.db Types.Serializable (fun t -> Tpcc.new_order_txn small_scale st t) with
        | Ok () -> incr placed
        | Error Types.User_abort -> () (* 1% invalid item rollback *)
        | Error r -> Alcotest.failf "unexpected abort %s" (Types.abort_reason_to_string r)
      done;
      let after =
        atomically env Types.Serializable (fun t ->
            fst (Tpcc.parse_district (Txn.read_exn t Tpcc.district (Tpcc.dkey 0 0))))
      in
      Alcotest.(check bool) "district counter advanced" true (after >= before);
      Alcotest.(check bool) "orders placed" true (!placed > 5));
  Sim.run ~until:1e6 env.sim;
  Tpcc.check_consistency env.db ~scale:small_scale

let test_tpcc_delivery_clears_new_order () =
  let env = tpcc_env () in
  Sim.spawn env.sim (fun () ->
      let st = Random.State.make [| 4 |] in
      (* Deliver everything (enough attempts for both districts). *)
      for _ = 1 to 40 do
        ignore (Db.run_retry env.db Types.Serializable (fun t -> Tpcc.delivery_txn small_scale st t))
      done;
      let remaining =
        atomically env Types.Serializable (fun t -> List.length (Txn.scan t Tpcc.new_order))
      in
      Alcotest.(check int) "all orders delivered" 0 remaining);
  Sim.run ~until:1e6 env.sim;
  Tpcc.check_consistency env.db ~scale:small_scale

let test_tpcc_credit_check_sets_status () =
  let env = tpcc_env () in
  Sim.spawn env.sim (fun () ->
      (* Force customer 0/0/0 over their limit via owed balance, then run
         the real credit-check transaction until it hits that customer. *)
      atomically env Types.Serializable (fun t ->
          Txn.write t Tpcc.customer (Tpcc.ckey 0 0 0)
            (Tpcc.customer_row ~balance:60_000 ~credit_lim:50_000 ~delivery_cnt:0));
      let st = Random.State.make [| 9 |] in
      for _ = 1 to 30 do
        ignore (Db.run_retry env.db Types.Serializable (fun t ->
            Tpcc.credit_check_txn small_scale st t))
      done;
      let credit =
        atomically env Types.Serializable (fun t ->
            Txn.read_exn t Tpcc.customer_credit (Tpcc.ckey 0 0 0))
      in
      Alcotest.(check string) "bad credit detected" "BC" credit);
  Sim.run ~until:1e6 env.sim

let run_tpcc_mixed ?(scale = small_scale) ?mix ~isolation ~seed () =
  let config = Config.test () in
  let sim = Sim.create () in
  let db = Db.create ~config sim in
  Tpcc.setup db ~scale ();
  let mix = match mix with Some m -> m | None -> Tpcc.mix ~credit_check:true scale in
  for client = 1 to 5 do
    Sim.spawn sim (fun () ->
        let st = Random.State.make [| seed; client |] in
        for _ = 1 to 12 do
          let prog = Driver.pick mix st in
          ignore (Db.run_retry db isolation (prog.Driver.p_body st));
          Sim.delay sim (Random.State.float st 0.001)
        done)
  done;
  Sim.run ~until:1e6 sim;
  db

(* An extra-hot variant for anomaly hunting: one district, two customers,
   and a mix dominated by the NEWO/CCHECK write-skew pair of §5.3.3. *)
let hot_scale =
  { Tpcc.warehouses = 1; districts = 1; customers_per_district = 2; items = 30; initial_orders = 4 }

let hot_mix =
  [
    Driver.program ~weight:3.0 "NEWO" (fun st t -> Tpcc.new_order_txn hot_scale st t);
    Driver.program ~weight:3.0 "CCHECK" (fun st t -> Tpcc.credit_check_txn hot_scale st t);
    Driver.program ~weight:1.0 "PAY" (fun st t -> Tpcc.payment_txn hot_scale st t);
    Driver.program ~weight:1.0 "DLVY" (fun st t -> Tpcc.delivery_txn hot_scale st t);
  ]

let test_tpcc_ssi_serializable_and_consistent () =
  for seed = 1 to 5 do
    let db = run_tpcc_mixed ~isolation:Types.Serializable ~seed () in
    Tpcc.check_consistency db ~scale:small_scale;
    if not (Mvsg.is_serializable (Db.history db)) then
      Alcotest.failf "seed %d: TPC-C++ SSI history not serializable" seed
  done;
  (* Also under the hottest contention. *)
  for seed = 1 to 8 do
    let db =
      run_tpcc_mixed ~scale:hot_scale ~mix:hot_mix ~isolation:Types.Serializable ~seed ()
    in
    if not (Mvsg.is_serializable (Db.history db)) then
      Alcotest.failf "hot seed %d: TPC-C++ SSI history not serializable" seed
  done

let test_tpcc_si_eventually_non_serializable () =
  (* §5.3.3: with Credit Check in the mix, SI admits non-serializable
     executions; high contention (two customers, one district) exposes
     them. *)
  let anomalous = ref 0 in
  for seed = 1 to 12 do
    let db = run_tpcc_mixed ~scale:hot_scale ~mix:hot_mix ~isolation:Types.Snapshot ~seed () in
    if not (Mvsg.is_serializable (Db.history db)) then incr anomalous
  done;
  Alcotest.(check bool) "anomalies appear under SI" true (!anomalous > 0)

let test_tpcc_driver_smoke () =
  let scale = Tpcc.tiny ~warehouses:1 in
  let make_db sim =
    let db = Db.create ~config:{ (Config.test ()) with Config.record_history = false } sim in
    Tpcc.setup db ~scale ();
    db
  in
  List.iter
    (fun isolation ->
      let r =
        Driver.run_once ~make_db ~mix:(Tpcc.mix scale)
          {
            Driver.default_config with
            Driver.isolation;
            mpl = 4;
            warmup = 0.05;
            duration = 0.3;
          }
      in
      Alcotest.(check bool)
        (Types.isolation_to_string isolation ^ " tpcc commits")
        true (r.Driver.commits > 50))
    [ Types.Snapshot; Types.Serializable; Types.S2pl ]

let test_tpcc_stock_level_mix () =
  let scale = Tpcc.tiny ~warehouses:1 in
  let make_db sim =
    let db = Db.create ~config:{ (Config.test ()) with Config.record_history = false } sim in
    Tpcc.setup db ~scale ();
    db
  in
  let r =
    Driver.run_once ~make_db
      ~mix:(Tpcc.stock_level_mix scale)
      {
        Driver.default_config with
        Driver.isolation = Types.Serializable;
        mpl = 3;
        warmup = 0.05;
        duration = 0.3;
      }
  in
  let slev = Option.value ~default:0 (List.assoc_opt "SLEV" r.Driver.per_program) in
  let newo = Option.value ~default:0 (List.assoc_opt "NEWO" r.Driver.per_program) in
  Alcotest.(check bool) "SLEV dominates 10:1" true (slev > 4 * max 1 newo)


let test_tpcc_invariants_all_levels () =
  (* TPC-C clause-3.3 consistency conditions after concurrent runs (MPL 5)
     under every isolation level: warehouse YTD = sum of district YTDs
     (3.3.2.1) and the order / new_order / order_line cardinality
     invariants (3.3.2.2-3.3.2.5). Even plain SI preserves these — every
     invariant-coupled update (Payment's two YTD rows, New Order's
     district counter + inserts) happens inside one transaction, and
     first-committer-wins forbids lost updates; the violations SI does
     admit are serializability anomalies, which the next test pins down. *)
  List.iter
    (fun isolation ->
      for seed = 1 to 3 do
        let db = run_tpcc_mixed ~isolation ~seed () in
        (try Tpcc.check_consistency db ~scale:small_scale
         with Tpcc.Inconsistent msg ->
           Alcotest.failf "%s seed %d: %s" (Types.isolation_to_string isolation) seed msg);
        try Tpcc.check_ytd db ~scale:small_scale
        with Tpcc.Inconsistent msg ->
          Alcotest.failf "%s seed %d: %s" (Types.isolation_to_string isolation) seed msg
      done)
    [ Types.Snapshot; Types.Serializable; Types.S2pl ]

let test_tpcc_plain_si_anomaly_free () =
  (* Fig 2.8 / §2.8.1: the plain TPC-C mix (no Credit Check) has no
     dangerous structure in its SDG, so SI admits no non-serializable
     execution of it — the motivating observation the TPC-C++ extension
     (§5.3) was designed to break. Checked dynamically under the hottest
     contention profile (one district, two customers), where the CCHECK
     variant of this mix demonstrably does produce anomalies
     ([test_tpcc_si_eventually_non_serializable]). *)
  let plain_hot_mix =
    [
      Driver.program ~weight:3.0 "NEWO" (fun st t -> Tpcc.new_order_txn hot_scale st t);
      Driver.program ~weight:3.0 "PAY" (fun st t -> Tpcc.payment_txn hot_scale st t);
      Driver.program ~weight:1.0 "DLVY" (fun st t -> Tpcc.delivery_txn hot_scale st t);
      Driver.program ~weight:1.0 ~read_only:true "OSTAT" (fun st t ->
          Tpcc.order_status_txn hot_scale st t);
      Driver.program ~weight:1.0 ~read_only:true "SLEV" (fun st t ->
          Tpcc.stock_level_txn hot_scale st t);
    ]
  in
  for seed = 1 to 12 do
    let db =
      run_tpcc_mixed ~scale:hot_scale ~mix:plain_hot_mix ~isolation:Types.Snapshot ~seed ()
    in
    if not (Mvsg.is_serializable (Db.history db)) then
      Alcotest.failf "seed %d: plain TPC-C produced an SI anomaly" seed;
    try Tpcc.check_ytd db ~scale:hot_scale
    with Tpcc.Inconsistent msg -> Alcotest.failf "seed %d: %s" seed msg
  done

let test_tpcc_s2pl_consistent () =
  for seed = 1 to 3 do
    let db = run_tpcc_mixed ~isolation:Types.S2pl ~seed () in
    Tpcc.check_consistency db ~scale:small_scale;
    if not (Mvsg.is_serializable (Db.history db)) then
      Alcotest.failf "seed %d: S2PL TPC-C++ history not serializable" seed
  done

let test_smallbank_fixes_prevent_anomaly_dynamically () =
  (* The static fixes of 2.8.5, run at plain SI, must prevent the
     Bal/WC/TS anomaly that unfixed SI admits (cross-validation of the SDG
     analysis with the engine). We re-run the smallbank_skew scenario with
     each fix applied to the transaction bodies. *)
  List.iter
    (fun (name, fix) ->
      let env = smallbank_env ~customers:2 () in
      let n = Smallbank.name_of 0 in
      Sim.spawn env.sim (fun () ->
          atomically env Types.Serializable (fun t ->
              Txn.write t Smallbank.saving "id000000" "100";
              Txn.write t Smallbank.checking "id000000" "0"));
      Sim.run ~until:1e6 env.sim;
      Db.clear_history env.db;
      let _ =
        script env ~at:0.0 ~gap:0.08 ~isolation:Types.Snapshot
          [ (fun t -> Smallbank.wc ~fix n 80 t) ]
      in
      let _ =
        script env ~at:0.02 ~gap:0.005 ~isolation:Types.Snapshot
          [ (fun t -> Smallbank.ts ~fix n (-50) t) ]
      in
      let _ =
        script env ~at:0.05 ~gap:0.005 ~isolation:Types.Snapshot
          [ (fun t -> ignore (Smallbank.bal ~fix n t)) ]
      in
      run_procs env [];
      Alcotest.(check bool)
        (name ^ " keeps SI serializable")
        true
        (Mvsg.is_serializable (Db.history env.db)))
    [
      ("MaterializeWT", Smallbank.Materialize_wt);
      ("PromoteWT", Smallbank.Promote_wt);
      ("MaterializeBW", Smallbank.Materialize_bw);
      ("PromoteBW", Smallbank.Promote_bw);
    ]


let test_tpcc_order_status_and_stock_level () =
  let env = tpcc_env () in
  Sim.spawn env.sim (fun () ->
      let st = Random.State.make [| 21 |] in
      (* Both read-only transactions must run cleanly against the initial
         data for many parameter draws. *)
      for _ = 1 to 20 do
        (match Db.run ~read_only:true env.db Types.Serializable (fun t ->
             Tpcc.order_status_txn small_scale st t) with
        | Ok () -> ()
        | Error r -> Alcotest.failf "OSTAT aborted: %s" (Types.abort_reason_to_string r));
        match Db.run ~read_only:true env.db Types.Serializable (fun t ->
            Tpcc.stock_level_txn small_scale st t) with
        | Ok () -> ()
        | Error r -> Alcotest.failf "SLEV aborted: %s" (Types.abort_reason_to_string r)
      done);
  Sim.run ~until:1e6 env.sim;
  Alcotest.(check int) "read-only txns leave no aborts" 0
    (Db.stats env.db).Internal.aborts_unsafe

let test_tpcc_payment_updates_balance () =
  let env = tpcc_env () in
  Sim.spawn env.sim (fun () ->
      let before =
        atomically env Types.Serializable (fun t ->
            let b, _, _ = Tpcc.parse_customer (Txn.read_exn t Tpcc.customer (Tpcc.ckey 0 0 0)) in
            b)
      in
      (* Drive payments until customer 0/0/0 receives one. *)
      let st = Random.State.make [| 31 |] in
      for _ = 1 to 60 do
        ignore (Db.run_retry env.db Types.Serializable (fun t ->
            Tpcc.payment_txn small_scale st t))
      done;
      let after =
        atomically env Types.Serializable (fun t ->
            let b, _, _ = Tpcc.parse_customer (Txn.read_exn t Tpcc.customer (Tpcc.ckey 0 0 0)) in
            b)
      in
      Alcotest.(check bool) "some payment reduced the balance" true (after <= before));
  Sim.run ~until:1e6 env.sim

let test_gc_under_concurrency_preserves_snapshots () =
  (* GC must never reclaim a version an active snapshot still needs. *)
  let env = smallbank_env ~customers:3 () in
  Sim.spawn env.sim (fun () ->
      let reader = Db.begin_txn env.db Types.Snapshot in
      let v0 = int_of_string (Txn.read_exn reader Smallbank.checking "id000000") in
      (* Concurrent writers churn versions; GC runs in between. *)
      for i = 1 to 10 do
        ignore (atomically env Types.Serializable (fun t ->
            Txn.write t Smallbank.checking "id000000" (string_of_int i)));
        ignore (Db.gc env.db)
      done;
      let v1 = int_of_string (Txn.read_exn reader Smallbank.checking "id000000") in
      Txn.commit reader;
      Alcotest.(check int) "snapshot stable across gc" v0 v1);
  Sim.run ~until:1e6 env.sim

(* {1 Driver} *)

let test_driver_stats () =
  Alcotest.(check (pair (float 1e-9) (float 1e-9))) "ci of constant" (5.0, 0.0)
    (Stats.ci95 [ 5.0; 5.0; 5.0 ]);
  let m, ci = Stats.ci95 [ 1.0; 2.0; 3.0 ] in
  Alcotest.(check (float 1e-9)) "mean" 2.0 m;
  Alcotest.(check bool) "ci positive" true (ci > 0.0);
  Alcotest.(check (float 1e-9)) "stddev" 1.0 (Stats.stddev [ 1.0; 2.0; 3.0 ])

let test_driver_window () =
  (* Throughput counted only inside the measurement window. *)
  let make_db sim =
    let db = Db.create ~config:(Config.test ()) sim in
    Sibench.setup db ~items:10 ();
    db
  in
  let r =
    Driver.run_once ~make_db
      ~mix:(Sibench.mix ~items:10 ())
      { Driver.default_config with Driver.mpl = 1; warmup = 0.1; duration = 0.1 }
  in
  let r2 =
    Driver.run_once ~make_db
      ~mix:(Sibench.mix ~items:10 ())
      { Driver.default_config with Driver.mpl = 1; warmup = 0.1; duration = 0.2 }
  in
  Alcotest.(check bool) "longer window, more commits" true (r2.Driver.commits > r.Driver.commits);
  let tput_ratio = r2.Driver.throughput /. r.Driver.throughput in
  Alcotest.(check bool) "throughput roughly stable" true (tput_ratio > 0.7 && tput_ratio < 1.4)

let suite =
  [
    ("smallbank program semantics", `Quick, test_smallbank_programs);
    ("smallbank TS overdraft rolls back", `Quick, test_smallbank_ts_overdraft_rolls_back);
    ("smallbank write skew under SI", `Quick, test_smallbank_skew_si);
    ("smallbank skew prevented under SSI", `Quick, test_smallbank_skew_ssi);
    ("smallbank driver all levels", `Slow, test_smallbank_driver_all_levels);
    ("smallbank SSI history serializable", `Slow, test_smallbank_history_serializable_under_ssi);
    ("sibench query and update", `Quick, test_sibench_query_update);
    ("sibench updates never lost", `Slow, test_sibench_updates_never_lost);
    ("sibench no unsafe aborts", `Slow, test_sibench_no_unsafe_aborts);
    ("tpcc setup consistent", `Quick, test_tpcc_setup_consistent);
    ("tpcc new order", `Quick, test_tpcc_new_order);
    ("tpcc delivery clears new_order", `Quick, test_tpcc_delivery_clears_new_order);
    ("tpcc credit check sets status", `Quick, test_tpcc_credit_check_sets_status);
    ("tpcc SSI serializable + consistent", `Slow, test_tpcc_ssi_serializable_and_consistent);
    ("tpcc SI eventually non-serializable", `Slow, test_tpcc_si_eventually_non_serializable);
    ("tpcc driver smoke", `Slow, test_tpcc_driver_smoke);
    ("tpcc stock level mix", `Slow, test_tpcc_stock_level_mix);
    ("tpcc S2PL consistent", `Slow, test_tpcc_s2pl_consistent);
    ("tpcc invariants at MPL 5, all levels", `Slow, test_tpcc_invariants_all_levels);
    ("tpcc plain mix SI-anomaly-free (fig 2.8)", `Slow, test_tpcc_plain_si_anomaly_free);
    ("smallbank fixes prevent anomaly", `Quick, test_smallbank_fixes_prevent_anomaly_dynamically);
    ("tpcc order status and stock level", `Quick, test_tpcc_order_status_and_stock_level);
    ("tpcc payment updates balance", `Quick, test_tpcc_payment_updates_balance);
    ("gc preserves active snapshots", `Quick, test_gc_under_concurrency_preserves_snapshots);
    ("driver stats", `Quick, test_driver_stats);
    ("driver measurement window", `Slow, test_driver_window);
  ]

let () = Alcotest.run "benchmarks" [ ("benchmarks", suite) ]
