(* Timeline telemetry: window arithmetic, densification, wasted-work
   conservation, per-class SLO accounting and the Page–Hinkley detector.

   Synthetic-event tests pin exact values: with dyadic window widths
   (0.25 s) the window index floor(ts/w) is exact, so every expectation is
   an integer or an exact float — no tolerance games. End-to-end tests run
   the real driver under a tracing sink and check the structural
   invariants (conservation, purity, merge determinism) instead. *)

open Core

let feq = Alcotest.float 1e-9

(* {1 Synthetic-event helpers} *)

let commit ~ts ~start =
  (ts, Obs.Txn_commit { txn = 1; start; commit_ts = 1; n_writes = 1 })

let abort ~ts ~start reason = (ts, Obs.Txn_abort { txn = 1; start; reason })

let mem ~ts ~siread ~retained ~summary =
  ( ts,
    Obs.Mem_sample
      { siread; retained_siread = retained; retained_record = 0; summary } )

let cls ~ts name outcome latency = (ts, Obs.Class_outcome { cls = name; outcome; latency })

(* {1 Window boundaries} *)

(* Windows are [k*w, (k+1)*w): an event exactly on a boundary belongs to
   the upper window; events at or past the horizon clamp into the last
   window instead of growing the array. *)
let test_window_boundaries () =
  let w = 0.25 in
  let events =
    [
      commit ~ts:0.0 ~start:0.0;
      (* window 0, first instant *)
      commit ~ts:0.249999 ~start:0.0;
      (* still window 0 *)
      commit ~ts:0.25 ~start:0.0;
      (* exactly the boundary: window 1 *)
      commit ~ts:0.75 ~start:0.5;
      (* window 3 *)
      commit ~ts:1.0 ~start:0.9;
      (* at the horizon: clamps into window 3 *)
      commit ~ts:9.9 ~start:9.0;
      (* far past the horizon: clamps too *)
    ]
  in
  let tl = Timeline.of_events ~window:w ~horizon:1.0 events [] in
  Alcotest.(check int) "window count = horizon/w" 4 (Array.length tl.Timeline.tl_windows);
  Alcotest.check feq "width preserved" w tl.Timeline.tl_width;
  let commits = Array.map (fun b -> b.Timeline.w_commits) tl.Timeline.tl_windows in
  Alcotest.(check (array int)) "per-window commit counts" [| 2; 1; 0; 3 |] commits;
  (* throughput is commits/width *)
  let tput = Timeline.series tl "throughput" in
  Alcotest.check feq "throughput window 0" 8.0 tput.(0);
  Alcotest.check feq "throughput window 2" 0.0 tput.(2)

let test_window_count_minimum () =
  (* no events, tiny horizon: still one window; empty-event list with no
     horizon defaults to last-ts 0 *)
  let tl = Timeline.of_events ~window:0.25 [] [] in
  Alcotest.(check int) "minimum one window" 1 (Array.length tl.Timeline.tl_windows);
  Alcotest.(check int) "empty window" 0 tl.Timeline.tl_windows.(0).Timeline.w_commits

(* {1 Abort taxonomy and wasted work (synthetic)} *)

let test_reason_taxonomy_and_work () =
  let w = 0.25 in
  let events =
    [
      commit ~ts:0.1 ~start:0.0;
      (* 0.1 s committed work in window 0 *)
      abort ~ts:0.2 ~start:0.05 "deadlock";
      abort ~ts:0.3 ~start:0.1 "update-conflict";
      abort ~ts:0.35 ~start:0.1 "unsafe";
      abort ~ts:0.4 ~start:0.1 "user-abort";
      abort ~ts:0.45 ~start:0.2 "internal: boom";
    ]
  in
  let tl = Timeline.of_events ~window:w ~horizon:0.5 events [] in
  let b0 = tl.Timeline.tl_windows.(0) and b1 = tl.Timeline.tl_windows.(1) in
  Alcotest.(check int) "deadlock in w0" 1 b0.Timeline.w_aborts.Timeline.rc_deadlock;
  Alcotest.(check int) "fcw in w1" 1 b1.Timeline.w_aborts.Timeline.rc_fcw;
  Alcotest.(check int) "unsafe in w1" 1 b1.Timeline.w_aborts.Timeline.rc_unsafe;
  Alcotest.(check int) "user in w1" 1 b1.Timeline.w_aborts.Timeline.rc_user;
  Alcotest.(check int) "other in w1" 1 b1.Timeline.w_aborts.Timeline.rc_other;
  Alcotest.check feq "committed work w0" 0.1 b0.Timeline.w_work_committed;
  Alcotest.check feq "wasted work w0 = deadlock span" 0.15 b0.Timeline.w_work_wasted;
  (* w1 wasted = 0.2 + 0.25 + 0.3 + 0.25 *)
  Alcotest.check feq "wasted work w1" 1.0 b1.Timeline.w_work_wasted;
  let tt = Timeline.totals tl in
  Alcotest.(check int) "total error aborts" 4 tt.Timeline.tt_aborts;
  Alcotest.(check int) "total user aborts" 1 tt.Timeline.tt_user;
  Alcotest.check feq "total wasted" 1.15 tt.Timeline.tt_work_wasted

(* {1 Unsafe-abort granularity split} *)

let gedge resource =
  { Obs.ce_reader = 1; ce_writer = 2; ce_source = Obs.Siread_vs_x; ce_resource = resource }

let gcert ~ts ?in_edge ?out_edge () =
  {
    Obs.c_ts = ts;
    c_reason = "unsafe";
    c_cert =
      Obs.Ssi_pivot
        {
          sp_victim = 3;
          sp_policy = "prefer-pivot";
          sp_pivot = 3;
          sp_t_in = Some 1;
          sp_in_state = Obs.Ep_committed;
          sp_t_out = Some 2;
          sp_out_state = Obs.Ep_committed;
          sp_in_edge = in_edge;
          sp_out_edge = out_edge;
        };
    c_dot = "";
  }

(* Certificates split each window's unsafe aborts by blamed-resource
   granularity (canonical id prefix, out-edge preferred, falling back to
   the in-edge), and both attribution axes must sum with their
   unattributed slot back to rc_unsafe — nothing vanishes from a split. *)
let test_unsafe_granularity_split () =
  let w = 0.25 in
  let events =
    [
      abort ~ts:0.1 ~start:0.0 "unsafe";
      abort ~ts:0.15 ~start:0.0 "unsafe";
      abort ~ts:0.2 ~start:0.0 "unsafe";
      (* no certificate: must land in the unattributed slot *)
      abort ~ts:0.3 ~start:0.0 "unsafe";
    ]
  in
  let certs =
    [
      gcert ~ts:0.1 ~out_edge:(gedge "r/t/k1") ();
      (* unrecognisable out-edge prefix: granularity falls back to the
         in-edge (a page id) *)
      gcert ~ts:0.15 ~out_edge:(gedge "x?bogus") ~in_edge:(gedge "p/t/3") ();
      gcert ~ts:0.3 ~out_edge:(gedge "g/t/k9") ();
    ]
  in
  let tl = Timeline.of_events ~window:w ~horizon:0.5 events certs in
  let b0 = tl.Timeline.tl_windows.(0) and b1 = tl.Timeline.tl_windows.(1) in
  Alcotest.(check (array int))
    "w0 row/page/gap/unattributed" [| 1; 1; 0; 1 |] b0.Timeline.w_unsafe_gran;
  Alcotest.(check (array int))
    "w1 row/page/gap/unattributed" [| 0; 0; 1; 0 |] b1.Timeline.w_unsafe_gran;
  let gran = Timeline.series tl "unsafe-res-page" in
  Alcotest.(check (array (float 0.0))) "series view" [| 1.0; 0.0 |] gran;
  Array.iter
    (fun b ->
      let sum = Array.fold_left ( + ) 0 in
      Alcotest.(check int)
        "granularity split conserves rc_unsafe" b.Timeline.w_aborts.Timeline.rc_unsafe
        (sum b.Timeline.w_unsafe_gran);
      Alcotest.(check int)
        "source split conserves rc_unsafe" b.Timeline.w_aborts.Timeline.rc_unsafe
        (sum b.Timeline.w_unsafe_src))
    tl.Timeline.tl_windows

(* {1 Gauge densification} *)

(* A window with no Mem_sample carries the previous window's gauge forward;
   a window before the first sample stays 0. *)
let test_gauge_densification () =
  let events =
    [
      mem ~ts:0.3 ~siread:10 ~retained:5 ~summary:1;
      (* window 1 *)
      mem ~ts:0.35 ~siread:12 ~retained:6 ~summary:2;
      (* same window: last sample wins *)
      mem ~ts:1.1 ~siread:3 ~retained:1 ~summary:2;
      (* window 4 *)
    ]
  in
  let tl = Timeline.of_events ~window:0.25 ~horizon:1.5 events [] in
  let siread = Timeline.series tl "siread" in
  Alcotest.(check (array (float 0.0)))
    "siread gauges densified"
    [| 0.0; 12.0; 12.0; 12.0; 3.0; 3.0 |]
    siread;
  let retained = Timeline.series tl "retained" in
  Alcotest.check feq "retained carries forward" 6.0 retained.(3)

(* {1 Per-class SLO arithmetic} *)

let test_slo_eval () =
  let events =
    [
      (* class A: window 0 has 4 commits 1 abort (rate 0.25), fast;
         window 1 has 1 commit 0 aborts but slow p95 *)
      cls ~ts:0.1 "A" "commit" 0.001;
      cls ~ts:0.1 "A" "commit" 0.001;
      cls ~ts:0.1 "A" "commit" 0.001;
      cls ~ts:0.1 "A" "commit" 0.001;
      cls ~ts:0.1 "A" "unsafe" 0.002;
      cls ~ts:0.3 "A" "commit" 0.5;
      (* class B: only error aborts in window 0 -> infinite abort rate *)
      cls ~ts:0.05 "B" "deadlock" 0.01;
      cls ~ts:0.06 "B" "deadlock" 0.01;
    ]
  in
  let tl = Timeline.of_events ~window:0.25 ~horizon:0.5 events [] in
  let slo = { Timeline.slo_abort_rate = 0.5; slo_p95 = 0.1 } in
  match Timeline.slo_eval tl slo with
  | [ a; b ] ->
      Alcotest.(check string) "classes sorted" "A" a.Timeline.sr_class;
      Alcotest.(check int) "A active windows" 2 a.Timeline.sr_active;
      (* window 0: rate 1/4 <= 0.5 ok, p95 0.001 ok; window 1: rate 0 ok,
         p95 ~0.5 > 0.1 -> one p95 violation *)
      Alcotest.(check int) "A violations" 1 a.Timeline.sr_violations;
      Alcotest.(check int) "A p95 violations" 1 a.Timeline.sr_p95_viol;
      Alcotest.(check int) "A abort violations" 0 a.Timeline.sr_abort_viol;
      Alcotest.check feq "A time in violation" 0.25 a.Timeline.sr_time_in_violation;
      Alcotest.check feq "A worst abort rate" 0.25 a.Timeline.sr_worst_abort_rate;
      Alcotest.(check string) "B second" "B" b.Timeline.sr_class;
      Alcotest.(check int) "B active windows" 1 b.Timeline.sr_active;
      Alcotest.(check int) "B abort violations (infinite rate)" 1 b.Timeline.sr_abort_viol;
      Alcotest.(check bool)
        "B worst rate is infinite" true
        (b.Timeline.sr_worst_abort_rate = Float.infinity)
  | l -> Alcotest.failf "expected 2 class reports, got %d" (List.length l)

(* {1 Page–Hinkley change points} *)

(* A clean step up must fire one Up mark shortly after the step; the same
   detector on a stationary series must stay silent. Both cases are exact:
   the fold is pure float arithmetic over pinned inputs. *)
let step_timeline () =
  (* 20 windows of commits: 10 windows at 4/window, then 10 at 40/window *)
  let events =
    List.concat
      (List.init 20 (fun i ->
           let n = if i < 10 then 4 else 40 in
           let ts = (0.25 *. float_of_int i) +. 0.1 in
           List.init n (fun _ -> commit ~ts ~start:ts)))
  in
  Timeline.of_events ~window:0.25 ~horizon:5.0 events []

let test_change_point_step () =
  let tl = step_timeline () in
  match Timeline.change_points tl ~series:"throughput" with
  | [ mk ] ->
      Alcotest.(check string) "series name" "throughput" mk.Timeline.mk_series;
      Alcotest.(check bool) "direction up" true (mk.Timeline.mk_direction = `Up);
      Alcotest.(check bool)
        (Printf.sprintf "mark near the step (window %d)" mk.Timeline.mk_window)
        true
        (mk.Timeline.mk_window >= 10 && mk.Timeline.mk_window <= 12);
      Alcotest.check feq "ts = window start" (0.25 *. float_of_int mk.Timeline.mk_window)
        mk.Timeline.mk_ts
  | l -> Alcotest.failf "expected exactly 1 mark, got %d" (List.length l)

let test_change_point_stationary () =
  (* constant 8 commits per window: no alarm *)
  let events =
    List.concat
      (List.init 20 (fun i ->
           let ts = (0.25 *. float_of_int i) +. 0.1 in
           List.init 8 (fun _ -> commit ~ts ~start:ts)))
  in
  let tl = Timeline.of_events ~window:0.25 ~horizon:5.0 events [] in
  Alcotest.(check int)
    "stationary series stays silent" 0
    (List.length (Timeline.change_points tl ~series:"throughput"));
  (* all-zero series: lambda defaults to 0, detector disabled, no marks *)
  let empty = Timeline.of_events ~window:0.25 ~horizon:5.0 [] [] in
  Alcotest.(check int)
    "all-zero series stays silent" 0
    (List.length (Timeline.change_points empty ~series:"throughput"))

let test_change_point_down () =
  (* mirrored step: 40 then 4 per window fires a Down mark *)
  let events =
    List.concat
      (List.init 20 (fun i ->
           let n = if i < 10 then 40 else 4 in
           let ts = (0.25 *. float_of_int i) +. 0.1 in
           List.init n (fun _ -> commit ~ts ~start:ts)))
  in
  let tl = Timeline.of_events ~window:0.25 ~horizon:5.0 events [] in
  match Timeline.change_points tl ~series:"throughput" with
  | mk :: _ -> Alcotest.(check bool) "direction down" true (mk.Timeline.mk_direction = `Down)
  | [] -> Alcotest.fail "expected a Down mark"

(* {1 End-to-end: driver run under a tracing sink} *)

let sibench_make_db sim =
  let db = Db.create ~config:(Config.innodb ()) sim in
  Sibench.setup db ~items:50 ();
  db

let run_traced ?(seed = 1) () =
  let obs = Obs.create ~trace:true ~provenance:true () in
  let cfg =
    {
      Driver.default_config with
      Driver.isolation = Types.Serializable;
      mpl = 6;
      warmup = 0.05;
      duration = 0.2;
      seed;
    }
  in
  let r =
    Driver.run_once ~obs ~make_db:sibench_make_db ~mix:(Sibench.mix ~items:50 ()) cfg
  in
  (obs, r)

(* Conservation, end to end: the driver itself fails the run if the ledger
   is out of balance, and the reported split must cover all committed
   response time (the commit side of the ledger covers the whole run,
   warmup included, so it dominates the timeline's own committed sum). *)
let test_work_conservation_e2e () =
  let obs, r = run_traced () in
  Alcotest.(check bool) "some committed work" true (r.Driver.work_committed > 0.0);
  let tl = Option.get (Timeline.of_obs ~window:0.05 ~horizon:0.25 obs) in
  let tt = Timeline.totals tl in
  (* the timeline's commit-span sum is derived from the same events, so it
     must equal the engine ledger's committed side exactly: both are sums
     of the identical (ts - start) floats in the same order *)
  Alcotest.check feq "timeline committed work = engine ledger"
    r.Driver.work_committed tt.Timeline.tt_work_committed;
  Alcotest.check feq "timeline wasted work = engine ledger" r.Driver.work_wasted
    tt.Timeline.tt_work_wasted

(* In-flight accounting: a transaction still open when the profile is taken
   shows up in wp_in_flight and the conservation check still balances. *)
let test_work_in_flight () =
  let sim = Sim.create () in
  let db = Db.create ~config:(Config.test ()) sim in
  ignore (Db.create_table db "t");
  Db.load db "t" [ ("k", "0") ];
  Sim.spawn sim (fun () ->
      ignore
        (Db.run db Types.Serializable (fun t ->
             ignore (Txn.read t "t" "k");
             Sim.delay sim 1.0)));
  (* run only until 0.5: the reader is still open *)
  Sim.run ~until:0.5 sim;
  let wp = Db.work_profile db in
  Alcotest.(check bool) "in-flight span open" true (wp.Db.wp_in_flight > 0.0);
  Alcotest.(check bool) "conserved with open txn" true (Db.work_conserved db);
  Sim.run sim;
  let wp2 = Db.work_profile db in
  Alcotest.check feq "drained to zero in-flight" 0.0 wp2.Db.wp_in_flight;
  Alcotest.(check bool) "conserved after drain" true (Db.work_conserved db);
  Alcotest.(check bool) "span banked as committed" true (wp2.Db.wp_committed >= 1.0)

(* reset_stats regression (the PR 6 lesson, extended to the work ledger):
   a mid-flight reset must zero the sums AND rebase the ledger over open
   transactions, or every later conservation check fails. *)
let test_reset_stats_rebases_ledger () =
  let sim = Sim.create () in
  let db = Db.create ~config:(Config.test ()) sim in
  ignore (Db.create_table db "t");
  Db.load db "t" [ ("k", "0") ];
  Sim.spawn sim (fun () ->
      ignore
        (Db.run db Types.Serializable (fun t ->
             ignore (Txn.read t "t" "k");
             Sim.delay sim 1.0)));
  Sim.run ~until:0.5 sim;
  Db.reset_stats db;
  let wp = Db.work_profile db in
  Alcotest.check feq "committed zeroed" 0.0 wp.Db.wp_committed;
  Alcotest.check feq "wasted zeroed" 0.0 wp.Db.wp_wasted;
  Alcotest.(check bool) "conserved immediately after reset" true (Db.work_conserved db);
  Sim.run sim;
  Alcotest.(check bool) "conserved after the open txn commits" true (Db.work_conserved db);
  (* the full span (including pre-reset time) lands on the committed side *)
  Alcotest.(check bool) "span banked post-reset" true ((Db.work_profile db).Db.wp_committed >= 1.0)

(* {1 Purity and merge} *)

let test_of_obs_requires_tracing () =
  Alcotest.(check bool)
    "metrics-only sink yields no timeline" true
    (Timeline.of_obs ~window:0.1 (Obs.create ~metrics:true ()) = None);
  Alcotest.(check bool)
    "disabled sink yields no timeline" true
    (Timeline.of_obs ~window:0.1 Obs.disabled = None)

let csv tl =
  let buf = Buffer.create 1024 in
  Timeline.to_csv buf tl;
  Buffer.contents buf

let test_merge_order_insensitive () =
  let mk seed = Option.get (Timeline.of_obs ~window:0.05 ~horizon:0.25 (fst (run_traced ~seed ()))) in
  let a = mk 1 and b = mk 2 and c = mk 3 in
  Alcotest.(check string)
    "merge is order-insensitive (CSV bytes)"
    (csv (Timeline.merge [ a; b; c ]))
    (csv (Timeline.merge [ c; a; b ]));
  Alcotest.check_raises "merge [] rejected"
    (Invalid_argument "Timeline.merge: empty list") (fun () ->
      ignore (Timeline.merge []))

let test_merge_width_mismatch () =
  let a = Timeline.of_events ~window:0.25 ~horizon:0.5 [] [] in
  let b = Timeline.of_events ~window:0.5 ~horizon:0.5 [] [] in
  Alcotest.check_raises "width mismatch rejected"
    (Invalid_argument "Timeline.merge: window widths differ") (fun () ->
      ignore (Timeline.merge [ a; b ]))

(* Trace capture does not perturb the run: results with and without the
   timeline's tracing sink are identical (the standing obs contract,
   re-checked here because the timeline leans on it). *)
let test_timeline_off_purity () =
  let _, traced = run_traced () in
  let bare =
    Driver.run_once ~make_db:sibench_make_db ~mix:(Sibench.mix ~items:50 ())
      {
        Driver.default_config with
        Driver.isolation = Types.Serializable;
        mpl = 6;
        warmup = 0.05;
        duration = 0.2;
        seed = 1;
      }
  in
  Alcotest.(check int) "same commits" bare.Driver.commits traced.Driver.commits;
  Alcotest.check feq "same committed work" bare.Driver.work_committed
    traced.Driver.work_committed;
  Alcotest.check feq "same wasted work" bare.Driver.work_wasted traced.Driver.work_wasted

(* {1 Export formats} *)

let test_csv_and_ndjson_shape () =
  let tl =
    Timeline.of_events ~window:0.25 ~horizon:0.5
      [ commit ~ts:0.1 ~start:0.0; cls ~ts:0.1 "A" "commit" 0.1 ]
      []
  in
  let text = csv tl in
  let lines = String.split_on_char '\n' (String.trim text) in
  Alcotest.(check int) "header + one row per window" 3 (List.length lines);
  let header = List.hd lines in
  Alcotest.(check bool) "header starts with window,t0" true
    (String.length header > 9 && String.sub header 0 9 = "window,t0");
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " in header") true
        (List.exists (String.equal name) (String.split_on_char ',' header)))
    Timeline.series_names;
  let buf = Buffer.create 256 in
  Timeline.to_ndjson buf tl;
  let nd = String.split_on_char '\n' (String.trim (Buffer.contents buf)) in
  Alcotest.(check int) "one json object per window" 2 (List.length nd);
  (* counter records are valid extra records for the trace writer: one per
     series per window *)
  let recs = Timeline.counter_records ~columns:[ "throughput"; "commits" ] tl in
  Alcotest.(check int) "2 series x 2 windows" 4 (List.length recs)

let () =
  Alcotest.run "timeline"
    [
      ( "windows",
        [
          ("boundary exactness", `Quick, test_window_boundaries);
          ("minimum window count", `Quick, test_window_count_minimum);
          ("reason taxonomy and work", `Quick, test_reason_taxonomy_and_work);
          ("unsafe granularity split", `Quick, test_unsafe_granularity_split);
          ("gauge densification", `Quick, test_gauge_densification);
        ] );
      ("slo", [ ("per-class arithmetic", `Quick, test_slo_eval) ]);
      ( "change-points",
        [
          ("step up detected", `Quick, test_change_point_step);
          ("stationary silent", `Quick, test_change_point_stationary);
          ("step down detected", `Quick, test_change_point_down);
        ] );
      ( "wasted-work",
        [
          ("conservation end to end", `Quick, test_work_conservation_e2e);
          ("in-flight accounting", `Quick, test_work_in_flight);
          ("reset_stats rebases the ledger", `Quick, test_reset_stats_rebases_ledger);
        ] );
      ( "structure",
        [
          ("of_obs requires tracing", `Quick, test_of_obs_requires_tracing);
          ("merge order-insensitive", `Quick, test_merge_order_insensitive);
          ("merge width mismatch", `Quick, test_merge_width_mismatch);
          ("tracing does not perturb results", `Quick, test_timeline_off_purity);
          ("csv/ndjson/counter shapes", `Quick, test_csv_and_ndjson_shape);
        ] );
    ]
