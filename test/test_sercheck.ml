(* Tests for the serializability checker: MVSG construction, cycle
   detection, Theorem 2 verification, the §4.7 exhaustive-interleaving
   methodology, and randomized whole-engine serializability properties. *)

open Core
open Types

let mk_txn ~id ~snap ~commit ~reads ~writes =
  {
    h_id = id;
    h_isolation = Serializable;
    h_snapshot = snap;
    h_commit = commit;
    h_reads = List.map (fun (t, k, v) -> { r_table = t; r_key = k; r_version = v }) reads;
    h_writes = writes;
  }

let test_empty_history () =
  Alcotest.(check bool) "empty serializable" true (Mvsg.is_serializable [])

let test_serial_chain () =
  (* T1 writes x@1; T2 reads x@1 and writes x@2: wr + ww edges, no cycle. *)
  let h =
    [
      mk_txn ~id:1 ~snap:0 ~commit:1 ~reads:[] ~writes:[ ("t", "x") ];
      mk_txn ~id:2 ~snap:1 ~commit:2 ~reads:[ ("t", "x", 1) ] ~writes:[ ("t", "x") ];
    ]
  in
  let g = Mvsg.build h in
  Alcotest.(check bool) "serializable" true (Mvsg.is_serializable h);
  let kinds = List.sort compare (List.map (fun e -> Mvsg.edge_kind_to_string e.Mvsg.kind) (Mvsg.edges g)) in
  Alcotest.(check (list string)) "edges" [ "wr"; "ww" ] kinds

let test_write_skew_cycle () =
  (* Both read x@0,y@0 under snapshot 0; T1 writes x@1, T2 writes y@2. *)
  let h =
    [
      mk_txn ~id:1 ~snap:0 ~commit:1
        ~reads:[ ("t", "x", 0); ("t", "y", 0) ]
        ~writes:[ ("t", "x") ];
      mk_txn ~id:2 ~snap:0 ~commit:2
        ~reads:[ ("t", "x", 0); ("t", "y", 0) ]
        ~writes:[ ("t", "y") ];
    ]
  in
  Alcotest.(check bool) "not serializable" false (Mvsg.is_serializable h);
  let g = Mvsg.build h in
  (match Mvsg.find_cycle g with
  | Some cycle -> Alcotest.(check int) "2-cycle" 2 (List.length (List.sort_uniq compare cycle))
  | None -> Alcotest.fail "expected a cycle");
  Alcotest.(check bool) "theorem 2 pattern present" true (Mvsg.check_theorem2 h);
  Alcotest.(check bool) "dangerous structure found" true (Mvsg.dangerous_structures g <> [])

let test_rw_only_between_concurrent () =
  (* Reader sees x@0 but writer committed before reader began: serial order
     exists (reader first), but the rw edge still orders them. *)
  let h =
    [
      mk_txn ~id:1 ~snap:5 ~commit:6 ~reads:[ ("t", "x", 0) ] ~writes:[];
      mk_txn ~id:2 ~snap:0 ~commit:1 ~reads:[] ~writes:[ ("t", "x") ];
    ]
  in
  (* Reader with snapshot 5 reading version 0 of x while version 1 exists
     cannot happen in a real SI history; but the graph must still handle it:
     rw edge 1 -> 2, acyclic. *)
  Alcotest.(check bool) "acyclic" true (Mvsg.is_serializable h)

let test_three_txn_read_only_anomaly_graph () =
  (* Example 3 shape: Tpivot(r y@0, w x)@3, Tout(w y, w z)@1, Tin(r x@0,
     r z@1)@2. Cycle: pivot ->rw y-> out ->wr z-> in ->rw x-> pivot. *)
  let h =
    [
      mk_txn ~id:10 ~snap:0 ~commit:3 ~reads:[ ("t", "y", 0) ] ~writes:[ ("t", "x") ];
      mk_txn ~id:20 ~snap:0 ~commit:1 ~reads:[] ~writes:[ ("t", "y"); ("t", "z") ];
      mk_txn ~id:30 ~snap:1 ~commit:2 ~reads:[ ("t", "x", 0); ("t", "z", 1) ] ~writes:[];
    ]
  in
  Alcotest.(check bool) "non-serializable" false (Mvsg.is_serializable h);
  Alcotest.(check bool) "theorem 2 holds" true (Mvsg.check_theorem2 h);
  let ds = Mvsg.dangerous_structures (Mvsg.build h) in
  Alcotest.(check bool) "pivot identified" true
    (List.exists (fun d -> d.Mvsg.t_pivot = 10) ds)

(* {1 Exhaustive interleavings (§4.7)} *)

let test_interleaving_count () =
  (* 1 + 2 + 1 ops: 4!/(1!2!1!) = 12 interleavings. *)
  let n = List.length (Interleave.interleavings Interleave.paper_spec) in
  Alcotest.(check int) "multinomial count" 12 n;
  let n2 = List.length (Interleave.interleavings Interleave.write_skew_spec) in
  Alcotest.(check int) "6!/(3!3!) = 20" 20 n2

let test_paper_spec_detection () =
  (* The §4.7 set is a dependency *path* — always serializable — but SSI
     must still detect the consecutive conflicts on T2 in the concurrent
     interleavings. *)
  let si = Interleave.sweep ~isolation:Snapshot Interleave.paper_spec in
  Alcotest.(check int) "all interleavings commit under SI" si.Interleave.total
    si.Interleave.all_committed;
  Alcotest.(check int) "and all are serializable (path, not cycle)" 0
    si.Interleave.non_serializable;
  let ssi = Interleave.sweep ~isolation:Serializable Interleave.paper_spec in
  Alcotest.(check int) "no non-serializable execution survives" 0 ssi.Interleave.non_serializable;
  Alcotest.(check bool) "pivot conflicts detected in some interleavings" true
    (ssi.Interleave.unsafe_aborts > 0);
  Alcotest.(check bool) "most interleavings commit" true
    (ssi.Interleave.all_committed * 2 > ssi.Interleave.total)

let test_read_only_anomaly_spec_si_has_anomalies () =
  let s = Interleave.sweep ~isolation:Snapshot Interleave.read_only_anomaly_spec in
  Alcotest.(check int) "all interleavings commit under SI" s.Interleave.total
    s.Interleave.all_committed;
  Alcotest.(check bool) "some interleavings are non-serializable" true
    (s.Interleave.non_serializable > 0);
  let ssi = Interleave.sweep ~isolation:Serializable Interleave.read_only_anomaly_spec in
  Alcotest.(check int) "SSI admits none" 0 ssi.Interleave.non_serializable;
  Alcotest.(check bool) "SSI aborts something" true (ssi.Interleave.unsafe_aborts > 0)

let test_write_skew_spec_sweep () =
  let si = Interleave.sweep ~isolation:Snapshot Interleave.write_skew_spec in
  Alcotest.(check bool) "SI: write skew appears" true (si.Interleave.non_serializable > 0);
  let ssi = Interleave.sweep ~isolation:Serializable Interleave.write_skew_spec in
  Alcotest.(check int) "SSI: never" 0 ssi.Interleave.non_serializable;
  let s2pl = Interleave.sweep ~isolation:S2pl Interleave.write_skew_spec in
  Alcotest.(check int) "S2PL: never" 0 s2pl.Interleave.non_serializable

let test_si_cycles_satisfy_theorem2 () =
  (* Every non-serializable SI interleaving exhibits the dangerous
     structure with Tout committing first (Theorem 2). *)
  List.iter
    (fun spec ->
      List.iter
        (fun order ->
          let r = Interleave.run_interleaving ~isolation:Snapshot spec order in
          if not r.Interleave.serializable then
            Alcotest.(check bool) "theorem 2" true (Mvsg.check_theorem2 r.Interleave.history))
        (Interleave.interleavings spec))
    [ Interleave.paper_spec; Interleave.write_skew_spec; Interleave.read_only_anomaly_spec ]

let test_basic_mode_more_aborts_than_precise () =
  let sweep variant =
    let config =
      { (Config.test ()) with Config.ssi = variant; Config.record_history = true }
    in
    Interleave.sweep ~config ~isolation:Serializable Interleave.paper_spec
  in
  let basic = sweep Config.Basic and precise = sweep Config.Precise in
  Alcotest.(check int) "basic also admits no anomaly" 0 basic.Interleave.non_serializable;
  Alcotest.(check bool) "precise never aborts more than basic" true
    (precise.Interleave.unsafe_aborts <= basic.Interleave.unsafe_aborts)

let matrix_config ~gran ~variant =
  {
    (Config.test ()) with
    Config.granularity = gran;
    ssi = variant;
    detection =
      (match gran with
      | Config.Row -> Lockmgr.Immediate
      | Config.Page -> Lockmgr.Periodic 0.05);
    record_history = true;
    btree_fanout = 4;
  }

let test_sweep_matrix_granularity_variant () =
  (* The §4.7 methodology across the full prototype matrix, driven by the
     DPOR explorer rather than full enumeration: both lock granularities
     (InnoDB rows, Berkeley DB pages) and both SSI variants must admit no
     non-serializable execution of any motivating spec — checked by the
     MVSG oracle on every schedule the explorer actually runs, which by
     cross-validation (test_explore) covers every semantic outcome of the
     multinomial set. The 4-transaction variants extend the matrix past
     what enumerating 180–2520 schedules per cell used to cover; the
     Basic-vs-Precise abort comparison lives in
     [test_basic_mode_more_aborts_than_precise] (it needs the identical
     schedule set per variant that only [Interleave.sweep] guarantees). *)
  let specs =
    [
      ("paper", Interleave.paper_spec);
      ("write-skew", Interleave.write_skew_spec);
      ("read-only", Interleave.read_only_anomaly_spec);
      ("paper-4", Interleave.paper_spec_4);
      ("write-skew-3", Interleave.write_skew_spec_3);
      ("read-only-4", Interleave.read_only_anomaly_spec_4);
    ]
  in
  List.iter
    (fun (gname, gran) ->
      List.iter
        (fun (vname, variant) ->
          let config = matrix_config ~gran ~variant in
          List.iter
            (fun (sname, spec) ->
              let violations = ref 0 in
              let _, st =
                Explore.explore ~config ~isolation:Serializable
                  ~on_run:(fun r -> if not r.Interleave.serializable then incr violations)
                  spec
              in
              Alcotest.(check int)
                (Printf.sprintf "%s/%s/%s admits no anomaly" gname vname sname)
                0 !violations;
              Alcotest.(check bool)
                (Printf.sprintf "%s/%s/%s executed %d <= bound %d" gname vname sname
                   st.Explore.executed st.Explore.bound)
                true
                (st.Explore.executed <= st.Explore.bound))
            specs)
        [ ("basic", Config.Basic); ("precise", Config.Precise) ])
    [ ("row", Config.Row); ("page", Config.Page) ]

let test_explore_large_specs () =
  (* The specs full enumeration cannot afford: the 5-transaction §4.7 chain
     (5040 schedules is still enumerable, but 369600 for the write-skew
     4-cycle is not in a CI budget). Under row granularity with immediate
     deadlock detection the engine is begin-order independent, so DPOR's
     race analysis must both stay exhaustive over semantic outcomes (no
     anomaly admitted by either SSI variant) and actually reduce: at most a
     quarter of the multinomial bound executed. Page granularity is
     excluded here on purpose — its periodic kill-the-youngest detector
     makes transaction begins order-dependent, which collapses the
     reduction (see [Explore.needs_begin_marker]). *)
  List.iter
    (fun (vname, variant) ->
      let config = matrix_config ~gran:Config.Row ~variant in
      List.iter
        (fun (sname, spec, bound) ->
          let violations = ref 0 in
          let _, st =
            Explore.explore ~config ~isolation:Serializable
              ~on_run:(fun r -> if not r.Interleave.serializable then incr violations)
              spec
          in
          Alcotest.(check int)
            (Printf.sprintf "row/%s/%s admits no anomaly" vname sname)
            0 !violations;
          Alcotest.(check int)
            (Printf.sprintf "row/%s/%s multinomial bound" vname sname)
            bound st.Explore.bound;
          Alcotest.(check bool)
            (Printf.sprintf "row/%s/%s executed %d <= bound/4 = %d" vname sname
               st.Explore.executed (bound / 4))
            true
            (st.Explore.executed <= bound / 4))
        [
          ("paper-5", Interleave.paper_spec_5, 5040);
          ("write-skew-4", Interleave.write_skew_spec_4, 369600);
        ])
    [ ("basic", Config.Basic); ("precise", Config.Precise) ]

(* {1 Blocking schedules} *)

let test_blocking_deadlock () =
  (* Crossed write orders: T0 holds x and wants y, T1 holds y and wants x.
     The scheduler must park both, the detector must kill exactly one, and
     the survivor's history must be serializable. *)
  let spec = [ [ Interleave.W "x"; Interleave.W "y" ]; [ Interleave.W "y"; Interleave.W "x" ] ] in
  let order =
    [ (0, Interleave.W "x"); (1, Interleave.W "y"); (0, Interleave.W "y"); (1, Interleave.W "x") ]
  in
  List.iter
    (fun isolation ->
      let r = Interleave.run_interleaving ~isolation spec order in
      let commits = List.length (List.filter (( = ) None) r.Interleave.outcomes) in
      let deadlocks = List.length (List.filter (( = ) (Some Deadlock)) r.Interleave.outcomes) in
      Alcotest.(check int) "one commit" 1 commits;
      Alcotest.(check int) "one deadlock victim" 1 deadlocks;
      Alcotest.(check bool) "survivor history serializable" true r.Interleave.serializable)
    [ S2pl; Snapshot; Serializable ]

let test_blocking_fcw_after_wait () =
  (* T1 takes its snapshot, then blocks behind T0's X lock on x; when T0
     commits and the lock is granted, first-committer-wins must see T0's
     newly committed version and abort T1 — the resumed transaction may not
     act on its pre-wait view. *)
  let spec = [ [ Interleave.W "x"; Interleave.R "y" ]; [ Interleave.R "y"; Interleave.W "x" ] ] in
  let order =
    [ (0, Interleave.W "x"); (1, Interleave.R "y"); (1, Interleave.W "x"); (0, Interleave.R "y") ]
  in
  let r = Interleave.run_interleaving ~isolation:Snapshot spec order in
  Alcotest.(check bool) "T0 commits" true (List.nth r.Interleave.outcomes 0 = None);
  Alcotest.(check bool) "T1 aborts on first-committer-wins" true
    (List.nth r.Interleave.outcomes 1 = Some Update_conflict);
  Alcotest.(check bool) "serializable" true r.Interleave.serializable

(* {1 Random-order sampling uniformity} *)

let test_random_order_uniform () =
  (* Scripts of lengths (2,1,1): 4!/2! = 12 equally likely interleavings.
     [random_order] weights the next transaction by its remaining-operation
     count, which makes each complete merge uniform over the multinomial
     set; the old uniform-over-transactions rule oversampled orders that
     exhaust the short transactions late, badly enough that this chi-square
     check rejects it with certainty at this sample size. Fixed seed, so the
     test is deterministic. *)
  let spec =
    [ [ Interleave.R "a"; Interleave.W "a" ]; [ Interleave.R "b" ]; [ Interleave.R "c" ] ]
  in
  Alcotest.(check int) "12 interleavings" 12 (List.length (Interleave.interleavings spec));
  let counts = Hashtbl.create 12 in
  let n = 12_000 in
  let st = Random.State.make [| 42 |] in
  for _ = 1 to n do
    let key =
      String.concat "" (List.map (fun (i, _) -> string_of_int i) (Interleave.random_order st spec))
    in
    Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
  done;
  Alcotest.(check int) "every interleaving sampled" 12 (Hashtbl.length counts);
  let expected = float_of_int n /. 12.0 in
  let chi2 =
    Hashtbl.fold
      (fun _ c acc -> acc +. (((float_of_int c -. expected) ** 2.0) /. expected))
      counts 0.0
  in
  (* 99.9th percentile of chi-square with 11 degrees of freedom. *)
  Alcotest.(check bool) (Printf.sprintf "chi2 = %.2f < 31.26" chi2) true (chi2 < 31.26)

(* {1 Random transaction sets} *)

(* Generate a random 3-transaction spec in which each key has at most one
   writer (so no operation blocks and a single process can drive any
   interleaving), plus random reads. *)
let spec_gen =
  QCheck.Gen.(
    let keys = [ "x"; "y"; "z"; "w" ] in
    let* owners = flatten_l (List.map (fun _ -> int_range (-1) 2) keys) in
    let ops_for t =
      let writes =
        List.concat (List.map2 (fun k o -> if o = t then [ Interleave.W k ] else []) keys owners)
      in
      let* read_keys = flatten_l (List.map (fun k -> pair (bool) (return k)) keys) in
      let reads = List.filter_map (fun (b, k) -> if b then Some (Interleave.R k) else None) read_keys in
      (* random order of reads and writes, capped at 3 ops to bound the
         interleaving space *)
      let* shuffled = shuffle_l (reads @ writes) in
      return (List.filteri (fun i _ -> i < 3) shuffled)
    in
    let* t0 = ops_for 0 in
    let* t1 = ops_for 1 in
    let* t2 = ops_for 2 in
    return [ t0; t1; t2 ])

let show_spec spec =
  String.concat " || "
    (List.map
       (fun ops ->
         String.concat ";" (List.map Interleave.op_to_string ops))
       spec)

let arb_spec = QCheck.make ~print:show_spec spec_gen

(* For sampled random interleavings of random specs: SSI never commits a
   non-serializable history, and every non-serializable SI history contains
   the Theorem 2 dangerous structure. *)
let prop_random_specs spec =
  let st = Random.State.make [| Hashtbl.hash spec |] in
  List.for_all
    (fun _ ->
      let order = Interleave.random_order st spec in
      let ssi = Interleave.run_interleaving ~isolation:Serializable spec order in
      let si = Interleave.run_interleaving ~isolation:Snapshot spec order in
      ssi.Interleave.serializable
      && (si.Interleave.serializable || Mvsg.check_theorem2 si.Interleave.history))
    (List.init 10 Fun.id)

let qcheck_random_specs =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"random specs: SSI serializable, SI satisfies theorem 2"
       arb_spec prop_random_specs)

(* {1 Randomized whole-engine properties} *)

(* A contention-heavy random workload: each transaction reads two random hot
   keys and conditionally writes one of them — a write-skew generator. *)
let random_workload ~seed ~isolation ~clients ~txns =
  let config = { (Config.test ()) with Config.record_history = true } in
  let sim = Sim.create () in
  let db = Db.create ~config sim in
  ignore (Db.create_table db "t");
  let nkeys = 4 in
  Db.load db "t" (List.init nkeys (fun i -> (Printf.sprintf "k%d" i, "100")));
  for c = 1 to clients do
    Sim.spawn sim (fun () ->
        let st = Random.State.make [| seed; c |] in
        for _ = 1 to txns do
          Sim.delay sim (Random.State.float st 0.002);
          ignore
            (Db.run db isolation (fun t ->
                 let k1 = Printf.sprintf "k%d" (Random.State.int st nkeys) in
                 let k2 = Printf.sprintf "k%d" (Random.State.int st nkeys) in
                 let v1 = int_of_string (Option.value ~default:"0" (Txn.read t "t" k1)) in
                 Sim.delay sim (Random.State.float st 0.002);
                 let v2 = int_of_string (Option.value ~default:"0" (Txn.read t "t" k2)) in
                 if v1 + v2 > 0 then Txn.write t "t" k1 (string_of_int (v1 - 10))))
        done)
  done;
  Sim.run ~until:1.0e6 sim;
  Db.history db

let test_random_ssi_always_serializable () =
  for seed = 1 to 15 do
    let h = random_workload ~seed ~isolation:Serializable ~clients:4 ~txns:10 in
    if not (Mvsg.is_serializable h) then
      Alcotest.failf "seed %d produced a non-serializable SSI history" seed
  done

let test_random_s2pl_always_serializable () =
  for seed = 1 to 10 do
    let h = random_workload ~seed ~isolation:S2pl ~clients:4 ~txns:10 in
    if not (Mvsg.is_serializable h) then
      Alcotest.failf "seed %d produced a non-serializable S2PL history" seed
  done

let test_random_si_eventually_anomalous () =
  let anomalous = ref 0 in
  for seed = 1 to 15 do
    let h = random_workload ~seed ~isolation:Snapshot ~clients:4 ~txns:10 in
    if not (Mvsg.is_serializable h) then incr anomalous
  done;
  Alcotest.(check bool) "SI produces anomalies under contention" true (!anomalous > 0)

let test_random_si_theorem2 () =
  for seed = 1 to 15 do
    let h = random_workload ~seed ~isolation:Snapshot ~clients:4 ~txns:10 in
    Alcotest.(check bool) "theorem 2 on every SI history" true (Mvsg.check_theorem2 h)
  done

let suite =
  [
    ("empty history", `Quick, test_empty_history);
    ("serial chain", `Quick, test_serial_chain);
    ("write skew cycle", `Quick, test_write_skew_cycle);
    ("rw edge acyclic case", `Quick, test_rw_only_between_concurrent);
    ("read-only anomaly graph", `Quick, test_three_txn_read_only_anomaly_graph);
    ("interleaving count", `Quick, test_interleaving_count);
    ("paper spec detection (4.7)", `Quick, test_paper_spec_detection);
    ("read-only anomaly spec sweep", `Quick, test_read_only_anomaly_spec_si_has_anomalies);
    ("write skew spec sweep", `Quick, test_write_skew_spec_sweep);
    ("SI cycles satisfy theorem 2", `Quick, test_si_cycles_satisfy_theorem2);
    ("basic vs precise abort counts", `Quick, test_basic_mode_more_aborts_than_precise);
    ("explore matrix: granularity x variant", `Quick, test_sweep_matrix_granularity_variant);
    ("explore 4-5 txn specs beyond enumeration", `Quick, test_explore_large_specs);
    ("blocking: crossed writes deadlock", `Quick, test_blocking_deadlock);
    ("blocking: FCW after lock wait", `Quick, test_blocking_fcw_after_wait);
    ("random_order is uniform (chi-square)", `Quick, test_random_order_uniform);
    ("random SSI always serializable", `Slow, test_random_ssi_always_serializable);
    ("random S2PL always serializable", `Slow, test_random_s2pl_always_serializable);
    ("random SI eventually anomalous", `Slow, test_random_si_eventually_anomalous);
    ("random SI satisfies theorem 2", `Slow, test_random_si_theorem2);
    ("random specs property", `Slow, fun () -> ());
  ]
  @ [ qcheck_random_specs ]

let () = Alcotest.run "sercheck" [ ("sercheck", suite) ]
