(* The sibench microbenchmark (§5.2): one table of I rows; a query that
   scans every row and returns the id with the smallest value, and an update
   that increments one uniformly random row. There is a single rw edge in
   the SDG (query -> update), so no deadlocks and no write skew — the
   benchmark isolates the cost of read-write conflict handling:
   S2PL blocks, SI ignores, SSI tracks SIREAD locks. *)

open Core

let table = "sitest"

let key_of i = Printf.sprintf "row%06d" i

let setup db ~items () =
  ignore (Db.create_table db table);
  Db.load db table (List.init items (fun i -> (key_of i, string_of_int i)))

(* SELECT id FROM sitest ORDER BY value ASC LIMIT 1 *)
let query t =
  let best = ref None in
  List.iter
    (fun (k, v) ->
      let v = int_of_string v in
      match !best with
      | Some (_, bv) when bv <= v -> ()
      | _ -> best := Some (k, v))
    (Txn.scan t table);
  !best

(* UPDATE sitest SET value = value + 1 WHERE id = :id *)
let update ~items st t =
  let k = key_of (Random.State.int st items) in
  let v = int_of_string (Txn.read_for_update_exn t table k) in
  Txn.write t table k (string_of_int (v + 1))

(* [queries_per_update] = 1 is the mixed workload of §6.3.1; 10 is the
   query-mostly workload of §6.3.2. *)
let mix ~items ?(queries_per_update = 1) () =
  [
    Driver.program ~weight:(float_of_int queries_per_update) ~read_only:true "query"
      (fun _st t -> ignore (query t));
    Driver.program ~weight:1.0 "update" (fun st t -> update ~items st t);
  ]

(* Sum of all values: each committed update adds exactly 1, so
   total - initial = number of committed updates — the consistency probe
   used by the tests. *)
let total db =
  let t = Db.table_exn db table in
  Btree.fold_range (Mvstore.index t) ?lo:None ?hi:None ~init:0 ~f:(fun acc _ chain ->
      match Mvstore.latest chain with
      | Some { Mvstore.value = Some v; _ } -> acc + int_of_string v
      | _ -> acc)

let initial_total ~items = items * (items - 1) / 2
