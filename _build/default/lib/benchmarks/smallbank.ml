(* The SmallBank benchmark (Alomari et al. 2008a; §2.8.2, §5.1).

   Three tables: Account(Name -> CustomerID), Saving(CustomerID -> Balance),
   Checking(CustomerID -> Balance). Five transaction programs (Bal, DC, TS,
   Amg, WC) run in a uniform mix. The SDG (Fig 2.9) has the dangerous
   structure Bal -> WC -> TS -> Bal with WriteCheck as pivot, so the mix is
   not serializable under plain SI.

   §2.8.5's four static fixes are provided as program variants so the
   ablation benchmarks can compare them against Serializable SI. *)

open Core

let account = "sb_account"

let saving = "sb_saving"

let checking = "sb_checking"

let conflict = "sb_conflict" (* the materialised-conflict table (§2.6.1) *)

type fix = No_fix | Materialize_wt | Promote_wt | Materialize_bw | Promote_bw

let name_of i = Printf.sprintf "cust%06d" i

let id_of i = Printf.sprintf "id%06d" i

(* Populate the schema for [customers] accounts, each with both balances
   set to [initial_balance] (cents). *)
let setup db ~customers ?(initial_balance = 10_000) () =
  List.iter
    (fun t -> ignore (Db.create_table db t))
    [ account; saving; checking; conflict ];
  let rows f = List.init customers f in
  Db.load db account (rows (fun i -> (name_of i, id_of i)));
  Db.load db saving (rows (fun i -> (id_of i, string_of_int initial_balance)));
  Db.load db checking (rows (fun i -> (id_of i, string_of_int initial_balance)));
  Db.load db conflict (rows (fun i -> (id_of i, "0")))

let lookup_id t name = Txn.read_exn t account name

let get_int t table key = int_of_string (Txn.read_exn t table key)

(* Locking read for read-modify-write sequences (the engine-level behaviour
   of an SQL UPDATE): avoids S->X upgrade deadlocks under S2PL and engages
   the §4.5 lazy-snapshot path under SI/SSI. *)
let get_int_fu t table key = int_of_string (Txn.read_for_update_exn t table key)

let put_int t table key v = Txn.write t table key (string_of_int v)

let touch_conflict t id = put_int t conflict id (get_int_fu t conflict id + 1)

(* {1 The five programs} *)

(* Balance (Bal): total balance of one customer; read-only unless a fix
   promotes/materialises its conflicts. *)
let bal ?(fix = No_fix) name t =
  let id = lookup_id t name in
  let s = get_int t saving id in
  let c = get_int t checking id in
  (match fix with
  | Materialize_bw -> touch_conflict t id
  | Promote_bw -> put_int t checking id c (* identity write (Fig 2.10) *)
  | No_fix | Materialize_wt | Promote_wt -> ());
  s + c

(* DepositChecking (DC): increase the checking balance. *)
let dc name v t =
  if v < 0 then raise (Types.Abort Types.User_abort);
  let id = lookup_id t name in
  put_int t checking id (get_int_fu t checking id + v)

(* TransactSaving (TS): deposit or withdraw on the savings account. *)
let ts ?(fix = No_fix) name v t =
  let id = lookup_id t name in
  let s = get_int_fu t saving id + v in
  if s < 0 then raise (Types.Abort Types.User_abort);
  (match fix with Materialize_wt -> touch_conflict t id | _ -> ());
  put_int t saving id s

(* Amalgamate (Amg): move all funds of customer 1 to customer 2. Exclusive
   locks (the locking reads) are acquired in canonical key order, so two
   concurrent Amg transactions cannot deadlock — crossed Amg pairs under the
   0.5s periodic deadlock detector would otherwise stall whole lock queues
   and dominate the measurements. *)
let amg name1 name2 t =
  let id1 = lookup_id t name1 in
  let id2 = lookup_id t name2 in
  let s1 = get_int_fu t saving id1 in
  let lo = min id1 id2 and hi = max id1 id2 in
  let c_lo = get_int_fu t checking lo in
  let c_hi = get_int_fu t checking hi in
  let c1 = if lo = id1 then c_lo else c_hi in
  let c2 = if lo = id2 then c_lo else c_hi in
  put_int t checking id2 (c2 + s1 + c1);
  put_int t saving id1 0;
  put_int t checking id1 0

(* WriteCheck (WC): write a check, charging a $1 penalty on overdraft — the
   pivot of the SmallBank SDG. *)
(* WC runs SELECT over both balances and then UPDATEs checking: under S2PL
   the checking read takes a shared lock that is later upgraded — the
   upgrade-deadlock source behind the S2PL collapse of Fig 6.1. Under SI and
   SSI the reads take no blocking locks. The saving read is the vulnerable
   WC -> TS edge of the SDG. *)
let wc ?(fix = No_fix) name v t =
  let id = lookup_id t name in
  let s = get_int t saving id in
  let c = get_int t checking id in
  (match fix with
  | Materialize_wt | Materialize_bw -> touch_conflict t id
  | Promote_wt -> put_int t saving id s (* identity write on Saving *)
  | No_fix | Promote_bw -> ());
  if s + c < v then put_int t checking id (c - v - 1) else put_int t checking id (c - v)

(* {1 Workload mix} *)

(* The uniform 20% mix of §5.1.1; [ops_per_txn] > 1 gives the "complex
   transactions" workload of §6.1.4: each transaction performs N primitive
   read/write operations' worth of SmallBank work (programs are drawn from
   the mix until their combined primitive operation count reaches N — a
   SmallBank program is 3-7 primitive operations, so N = 10 is two to three
   programs per transaction). *)
let mix ?(fix = No_fix) ~customers ?(ops_per_txn = 1) () =
  let random_name st = name_of (Random.State.int st customers) in
  let random_amount st = 1 + Random.State.int st 100 in
  (* Returns the program's primitive read+write operation count. *)
  let one_op st t =
    match Random.State.int st 5 with
    | 0 ->
        ignore (bal ~fix (random_name st) t);
        3
    | 1 ->
        dc (random_name st) (random_amount st) t;
        3
    | 2 ->
        ts ~fix (random_name st) (random_amount st) t;
        3
    | 3 ->
        let n1 = random_name st in
        let n2 = random_name st in
        if n1 <> n2 then amg n1 n2 t;
        7
    | _ ->
        wc ~fix (random_name st) (random_amount st) t;
        4
  in
  (* Bal is declared READ ONLY when the fix variant leaves it a pure query,
     enabling the read-only snapshot refinement. *)
  let bal_ro = match fix with No_fix | Materialize_wt | Promote_wt -> true | _ -> false in
  if ops_per_txn = 1 then
    [
      Driver.program ~read_only:bal_ro "Bal" (fun st t -> ignore (bal ~fix (random_name st) t));
      Driver.program "DC" (fun st t -> dc (random_name st) (random_amount st) t);
      Driver.program "TS" (fun st t -> ts ~fix (random_name st) (random_amount st) t);
      Driver.program "Amg" (fun st t ->
          let n1 = random_name st in
          let n2 = random_name st in
          if n1 <> n2 then amg n1 n2 t);
      Driver.program "WC" (fun st t -> wc ~fix (random_name st) (random_amount st) t);
    ]
  else
    [
      Driver.program "Multi"
        (fun st t ->
          let done_ops = ref 0 in
          while !done_ops < ops_per_txn do
            done_ops := !done_ops + one_op st t
          done);
    ]

(* Total money across all accounts — conserved by Bal/Amg/WC+DC pairs is not
   an invariant of the mix (deposits and checks change totals), but the
   overdraft penalty logic gives the serializability probe used in tests:
   under a serializable schedule, a customer whose combined balance covers
   the check never pays the penalty. *)
let total_money db =
  let sum table =
    let t = Db.table_exn db table in
    Btree.fold_range (Mvstore.index t) ?lo:None ?hi:None ~init:0 ~f:(fun acc _ chain ->
        match Mvstore.latest chain with
        | Some { Mvstore.value = Some v; _ } -> acc + int_of_string v
        | _ -> acc)
  in
  sum saving + sum checking
