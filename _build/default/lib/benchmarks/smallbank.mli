(** The SmallBank benchmark (Alomari et al. 2008; §2.8.2, §5.1).

    Three tables — Account(Name -> CustomerID), Saving and Checking
    (CustomerID -> Balance) — and five transaction programs run in a uniform
    mix. Fig 2.9's SDG has the dangerous structure Bal -> WC -> TS -> Bal
    with WriteCheck as pivot, so the mix is not serializable under plain SI.
    The §2.8.5 static fixes are available as program variants. *)

open Core

val account : string

val saving : string

val checking : string

(** The materialised-conflict table used by the Materialize* fixes (§2.6.1). *)
val conflict : string

(** §2.8.5's application-level modifications that make the mix serializable
    under plain SI (the alternative Serializable SI replaces). *)
type fix = No_fix | Materialize_wt | Promote_wt | Materialize_bw | Promote_bw

val name_of : int -> string

val id_of : int -> string

(** Create and populate the four tables. Balances are in cents. *)
val setup : Db.t -> customers:int -> ?initial_balance:int -> unit -> unit

(** {1 The five programs} (run inside a transaction; may raise Abort) *)

(** Balance: total of both accounts; read-only unless a fix applies. *)
val bal : ?fix:fix -> string -> Txn.t -> int

(** DepositChecking: rolls back (User_abort) on negative amounts. *)
val dc : string -> int -> Txn.t -> unit

(** TransactSaving: deposit/withdraw; rolls back on overdraft. *)
val ts : ?fix:fix -> string -> int -> Txn.t -> unit

(** Amalgamate: move all funds from customer 1 to customer 2. *)
val amg : string -> string -> Txn.t -> unit

(** WriteCheck: cash a check with a $1 overdraft penalty — the pivot. *)
val wc : ?fix:fix -> string -> int -> Txn.t -> unit

(** The uniform 20% mix (§5.1.1); [ops_per_txn > 1] gives the complex
    transactions of §6.1.4. *)
val mix : ?fix:fix -> customers:int -> ?ops_per_txn:int -> unit -> Driver.program list

(** Sum of all committed balances (final-state inspection). *)
val total_money : Db.t -> int
