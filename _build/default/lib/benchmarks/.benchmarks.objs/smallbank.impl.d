lib/benchmarks/smallbank.ml: Btree Core Db Driver List Mvstore Printf Random Txn Types
