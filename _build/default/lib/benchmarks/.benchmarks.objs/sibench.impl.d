lib/benchmarks/sibench.ml: Btree Core Db Driver List Mvstore Printf Random Txn
