lib/benchmarks/sibench.mli: Core Db Driver Random Txn
