lib/benchmarks/tpcc.ml: Core Db Driver Hashtbl List Mvstore Printf Random String Txn Types
