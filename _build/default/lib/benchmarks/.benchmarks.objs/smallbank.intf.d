lib/benchmarks/smallbank.mli: Core Db Driver Txn
