lib/benchmarks/tpcc.mli: Core Db Driver Random Txn
