(** The sibench microbenchmark (§5.2): a single table of [items] rows; a
    query scanning every row for the minimum value, and an update
    incrementing one uniform random row. The SDG has a single rw edge, so no
    deadlocks or write skew are possible — the benchmark isolates the cost
    of read-write conflict handling across the three algorithms. *)

open Core

val table : string

val key_of : int -> string

val setup : Db.t -> items:int -> unit -> unit

(** SELECT id FROM sitest ORDER BY value ASC LIMIT 1 (scans all rows). *)
val query : Txn.t -> (string * int) option

(** UPDATE sitest SET value = value + 1 WHERE id = :random. *)
val update : items:int -> Random.State.t -> Txn.t -> unit

(** [queries_per_update]: 1 = the mixed workload (§6.3.1); 10 = query-mostly
    (§6.3.2). *)
val mix : items:int -> ?queries_per_update:int -> unit -> Driver.program list

(** Sum of all values: equals {!initial_total} plus the number of committed
    updates — the lost-update probe used in tests. *)
val total : Db.t -> int

val initial_total : items:int -> int
