lib/sercheck/mvsg.mli: Core Format
