lib/sercheck/mvsg.ml: Core Fmt Hashtbl List Option
