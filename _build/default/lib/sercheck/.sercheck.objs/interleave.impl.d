lib/sercheck/interleave.ml: Array Config Core Db List Lockmgr Mvsg Printf Random Sim String Txn Types
