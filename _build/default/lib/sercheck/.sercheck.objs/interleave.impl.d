lib/sercheck/interleave.ml: Array Config Core Db List Mvsg Printf Random Sim Txn Types
