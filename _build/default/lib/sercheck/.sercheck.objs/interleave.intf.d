lib/sercheck/interleave.mli: Core Random
