(** Multiversion serialization graph (MVSG) checker (§2.5.1).

    Builds the dependency graph of a committed-transaction history recorded
    by the engine ([Config.record_history]) and decides conflict
    serializability. This is the paper's §3.1.1 "after-the-fact analysis
    tool", used here to validate the engine: SSI/S2PL histories must always
    be serializable; SI histories exhibit the known anomalies. *)

open Core.Types

type edge_kind =
  | Ww  (** version order: src installed an earlier version than dst *)
  | Wr  (** dst read the version src installed *)
  | Rw  (** anti-dependency: src read a version older than dst's write *)

val edge_kind_to_string : edge_kind -> string

type edge = { src : int; dst : int; kind : edge_kind; table : string; key : string }

val pp_edge : Format.formatter -> edge -> unit

type t

val build : committed_record list -> t

val edges : t -> edge list

val txn : t -> int -> committed_record option

(** Committed transactions with overlapping [begin, commit) intervals. *)
val concurrent : committed_record -> committed_record -> bool

(** A cycle as transaction ids, or [None] if serializable. *)
val find_cycle : t -> int list option

val is_serializable : committed_record list -> bool

(** The Fig 2.2 pattern: consecutive concurrent rw edges through a pivot. *)
type dangerous = { t_in : int; t_pivot : int; t_out : int }

val dangerous_structures : t -> dangerous list

(** Empirical Theorem 2 check: a cyclic history must contain a dangerous
    structure whose outgoing transaction committed first. True for
    serializable histories. *)
val check_theorem2 : committed_record list -> bool
