(** Exhaustive interleaving tester, replicating §4.7: run every (or a random
    sample of) interleavings of small transaction scripts against a fresh
    engine and verify serializability outcomes per isolation level.

    Scripts must have no cross-transaction write-write conflicts so that no
    operation blocks (like the paper's test sets); a single simulator process
    then drives any interleaving. *)

type op = R of string | W of string  (** keys in the single table "t" *)

type spec = op list

val table : string

(** All merges of the scripts' operation sequences (multinomial count —
    keep the specs small), each op tagged with its transaction index. *)
val interleavings : spec list -> (int * op) list list

(** One random merge, for sampled sweeps. *)
val random_order : Random.State.t -> spec list -> (int * op) list

type result = {
  outcomes : Core.Types.abort_reason option list;  (** [None] = committed *)
  history : Core.Types.committed_record list;
  serializable : bool;
}

(** Execute one interleaving at the given isolation; every key starts at
    "0"; each transaction commits after its last operation. *)
val run_interleaving :
  ?config:Core.Config.t ->
  isolation:Core.Types.isolation ->
  spec list ->
  (int * op) list ->
  result

type summary = {
  total : int;
  all_committed : int;
  non_serializable : int;
  unsafe_aborts : int;
  other_aborts : int;
}

(** Run every interleaving and summarise. *)
val sweep : ?config:Core.Config.t -> isolation:Core.Types.isolation -> spec list -> summary

(** The paper's §4.7 detection set: T1: r(x); T2: r(y) w(x); T3: w(y) —
    a dependency path, always serializable, but SSI must flag T2. *)
val paper_spec : spec list

(** Classic write skew: both read x and y; one writes x, the other y. *)
val write_skew_spec : spec list

(** Example 3 (read-only anomaly): some interleavings are genuinely
    non-serializable under SI. *)
val read_only_anomaly_spec : spec list
