(* Multiversion serialization graph (MVSG) construction and cycle checking
   over committed-transaction histories recorded by the engine (§2.5.1).

   Under snapshot-style timestamps, versions of an item are totally ordered
   by commit timestamp, which makes the MVSG simple:
   - ww: Ti installed a version of x and Tj installed a later one;
   - wr: Tj read the version Ti installed;
   - rw (anti-dependency): Ti read a version of x older than the one Tj
     installed. This is the only edge allowed between concurrent
     transactions, drawn dashed in the paper's figures.

   The checker also identifies "dangerous structures" (Fig 2.2): two
   consecutive rw edges T_in -> T_pivot -> T_out inside a cycle, with each
   pair concurrent — the pattern SSI detects at runtime. *)

open Core.Types

type edge_kind = Ww | Wr | Rw

let edge_kind_to_string = function Ww -> "ww" | Wr -> "wr" | Rw -> "rw"

type edge = {
  src : int; (* h_id of the source transaction *)
  dst : int;
  kind : edge_kind;
  table : string;
  key : string;
}

let pp_edge fmt e =
  Fmt.pf fmt "T%d -%s-> T%d on %s/%s" e.src (edge_kind_to_string e.kind) e.dst e.table e.key

type t = {
  txns : (int, committed_record) Hashtbl.t;
  edges : edge list;
}

let edges t = t.edges

let txn t id = Hashtbl.find_opt t.txns id

(* Committed transactions are concurrent if their [begin, commit) intervals
   intersect: begin(a) < commit(b) and begin(b) < commit(a). *)
let concurrent a b = a.h_snapshot < b.h_commit && b.h_snapshot < a.h_commit

let build (history : committed_record list) =
  let txns = Hashtbl.create 64 in
  List.iter (fun h -> Hashtbl.replace txns h.h_id h) history;
  (* Writers per item, sorted by commit timestamp. *)
  let writers : (string * string, committed_record list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun h ->
      List.iter
        (fun item ->
          let cur = Option.value ~default:[] (Hashtbl.find_opt writers item) in
          Hashtbl.replace writers item (h :: cur))
        h.h_writes)
    history;
  Hashtbl.filter_map_inplace
    (fun _ ws -> Some (List.sort (fun a b -> compare a.h_commit b.h_commit) ws))
    writers;
  let edges = ref [] in
  let add src dst kind (table, key) =
    if src <> dst then edges := { src; dst; kind; table; key } :: !edges
  in
  (* ww edges between consecutive versions. *)
  Hashtbl.iter
    (fun item ws ->
      let rec go = function
        | a :: (b :: _ as rest) ->
            add a.h_id b.h_id Ww item;
            go rest
        | _ -> []
      in
      ignore (go ws))
    writers;
  (* wr and rw edges from reads. *)
  List.iter
    (fun reader ->
      List.iter
        (fun { r_table; r_key; r_version } ->
          let item = (r_table, r_key) in
          let ws = Option.value ~default:[] (Hashtbl.find_opt writers item) in
          List.iter
            (fun w ->
              if w.h_commit = r_version then add w.h_id reader.h_id Wr item
              else if w.h_commit > r_version then add reader.h_id w.h_id Rw item)
            ws)
        reader.h_reads)
    history;
  { txns; edges = List.rev !edges }

(* Find a cycle in the edge set, as a list of transaction ids (first = last
   implied). Returns [None] if the graph is acyclic (serializable). *)
let find_cycle t =
  let adj = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt adj e.src) in
      Hashtbl.replace adj e.src (e.dst :: cur))
    t.edges;
  let color = Hashtbl.create 64 in
  (* 1 = on stack, 2 = done *)
  let exception Found of int list in
  let rec dfs path node =
    match Hashtbl.find_opt color node with
    | Some 2 -> ()
    | Some 1 ->
        (* [path] holds the stack (most recent first); the cycle is the
           prefix up to and including [node]. *)
        let rec take acc = function
          | [] -> acc
          | x :: rest -> if x = node then x :: acc else take (x :: acc) rest
        in
        raise (Found (take [] path))
    | _ ->
        Hashtbl.replace color node 1;
        List.iter (dfs (node :: path)) (Option.value ~default:[] (Hashtbl.find_opt adj node));
        Hashtbl.replace color node 2
  in
  try
    Hashtbl.iter (fun id _ -> dfs [] id) t.txns;
    None
  with Found cycle -> Some cycle

let is_serializable history = find_cycle (build history) = None

(* Dangerous structures (Fig 2.2): consecutive vulnerable rw edges
   T_in -> T_pivot -> T_out with each pair concurrent. Theorem 2 says every
   cycle in an SI history contains one; {!check_theorem2} verifies that. *)
type dangerous = { t_in : int; t_pivot : int; t_out : int }

let dangerous_structures t =
  let rw_concurrent =
    List.filter
      (fun e ->
        e.kind = Rw
        &&
        match (txn t e.src, txn t e.dst) with
        | Some a, Some b -> concurrent a b
        | _ -> false)
      t.edges
  in
  List.concat_map
    (fun e1 ->
      List.filter_map
        (fun e2 ->
          if e1.dst = e2.src && e1.src <> e1.dst && e2.src <> e2.dst then
            Some { t_in = e1.src; t_pivot = e1.dst; t_out = e2.dst }
          else None)
        rw_concurrent)
    rw_concurrent

(* Empirical check of Theorem 2 (Fekete et al. 2005): if the history has a
   cycle, some pivot with two consecutive concurrent rw edges exists, and
   among (t_in, t_pivot, t_out) the outgoing transaction commits first. *)
let check_theorem2 history =
  let t = build history in
  match find_cycle t with
  | None -> true
  | Some _ ->
      let ds = dangerous_structures t in
      ds <> []
      && List.exists
           (fun { t_in; t_pivot; t_out } ->
             match (txn t t_in, txn t t_pivot, txn t t_out) with
             | Some tin, Some tpivot, Some tout ->
                 tout.h_commit <= tin.h_commit && tout.h_commit <= tpivot.h_commit
             | _ -> false)
           ds
