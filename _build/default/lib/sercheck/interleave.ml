(* Exhaustive interleaving tester, replicating the methodology of §4.7:
   generate every interleaving of a set of small transactions, execute each
   against a fresh database, and check that (a) the committed prefix is
   always serializable under SSI/S2PL, and (b) the known anomalies appear
   under SI.

   Transactions here are straight-line read/write scripts with no
   write-write conflicts across transactions (like the paper's test sets),
   so no operation blocks and the whole interleaving can be driven from a
   single simulator process. *)

open Core

type op = R of string | W of string (* keys in a single table "t" *)

type spec = op list

let table = "t"

(* All merges of the transactions' op sequences, each op tagged with its
   transaction index. Count = multinomial coefficient; keep specs small. *)
let interleavings (specs : spec list) : (int * op) list list =
  let rec go (pending : (int * op list) list) =
    if List.for_all (fun (_, ops) -> ops = []) pending then [ [] ]
    else
      List.concat_map
        (fun (i, ops) ->
          match ops with
          | [] -> []
          | op :: rest ->
              let pending' =
                List.map (fun (j, ops') -> if j = i then (j, rest) else (j, ops')) pending
              in
              List.map (fun tail -> (i, op) :: tail) (go pending'))
        pending
  in
  go (List.mapi (fun i s -> (i, s)) specs)

(* A single random merge of the op sequences, for sampled sweeps where the
   full interleaving set is too large. *)
let random_order st (specs : spec list) : (int * op) list =
  let pending = Array.of_list (List.map (fun s -> ref s) specs) in
  let order = ref [] in
  let total = List.fold_left (fun a s -> a + List.length s) 0 specs in
  for _ = 1 to total do
    let nonempty =
      Array.to_list pending
      |> List.mapi (fun i r -> (i, r))
      |> List.filter (fun (_, r) -> !r <> [])
    in
    let i, r = List.nth nonempty (Random.State.int st (List.length nonempty)) in
    match !r with
    | op :: rest ->
        r := rest;
        order := (i, op) :: !order
    | [] -> assert false
  done;
  List.rev !order

type result = {
  outcomes : (Types.abort_reason option) list; (* None = committed, per txn *)
  history : Types.committed_record list;
  serializable : bool;
}

(* Execute one interleaving at [isolation]; initial value "0" for every key
   mentioned. Each transaction commits right after its last operation. *)
let run_interleaving ?config ~isolation (specs : spec list) (order : (int * op) list) : result =
  let config =
    match config with Some c -> c | None -> { (Config.test ()) with Config.record_history = true }
  in
  let sim = Sim.create () in
  let db = Db.create ~config sim in
  ignore (Db.create_table db table);
  let keys =
    List.sort_uniq compare
      (List.concat_map (List.map (function R k | W k -> k)) specs)
  in
  Db.load db table (List.map (fun k -> (k, "0")) keys);
  let n = List.length specs in
  let outcomes = Array.make n None in
  let remaining = Array.of_list (List.map List.length specs) in
  Sim.spawn sim (fun () ->
      let txns = Array.init n (fun _ -> None) in
      List.iter
        (fun (i, op) ->
          match outcomes.(i) with
          | Some _ -> remaining.(i) <- remaining.(i) - 1 (* already aborted; skip *)
          | None -> (
              let txn =
                match txns.(i) with
                | Some t -> t
                | None ->
                    let t = Db.begin_txn db isolation in
                    txns.(i) <- Some t;
                    t
              in
              match
                (match op with
                | R k -> ignore (Txn.read txn table k)
                | W k -> Txn.write txn table k (Printf.sprintf "t%d" i));
                remaining.(i) <- remaining.(i) - 1;
                if remaining.(i) = 0 then Txn.commit txn
              with
              | () -> ()
              | exception Types.Abort r ->
                  outcomes.(i) <- Some r;
                  remaining.(i) <- remaining.(i) - 1))
        order);
  Sim.run ~until:1.0e6 sim;
  let history = Db.history db in
  {
    outcomes = Array.to_list outcomes;
    history;
    serializable = Mvsg.is_serializable history;
  }

type summary = {
  total : int;
  all_committed : int; (* interleavings where every transaction committed *)
  non_serializable : int; (* ... and the result was not serializable *)
  unsafe_aborts : int; (* interleavings with at least one Unsafe abort *)
  other_aborts : int;
}

(* Run every interleaving of [specs] at [isolation] and summarise. *)
let sweep ?config ~isolation specs =
  let all = interleavings specs in
  List.fold_left
    (fun acc order ->
      let r = run_interleaving ?config ~isolation specs order in
      let committed_all = List.for_all (( = ) None) r.outcomes in
      {
        total = acc.total + 1;
        all_committed = (acc.all_committed + if committed_all then 1 else 0);
        non_serializable =
          (acc.non_serializable + if not r.serializable then 1 else 0);
        unsafe_aborts =
          (acc.unsafe_aborts
          + if List.exists (( = ) (Some Types.Unsafe)) r.outcomes then 1 else 0);
        other_aborts =
          (acc.other_aborts
          +
          if
            List.exists
              (function Some r when r <> Types.Unsafe -> true | _ -> false)
              r.outcomes
          then 1
          else 0);
      })
    { total = 0; all_committed = 0; non_serializable = 0; unsafe_aborts = 0; other_aborts = 0 }
    all

(* The paper's §4.7 test set: T1: r(x); T2: r(y) w(x); T3: w(y). Note that
   this set forms a *path* T1 -> T2 -> T3 in the dependency graph, never a
   cycle: every execution is serializable, but SSI still flags T2 as a pivot
   in some interleavings — the paper used it to verify that conflicts are
   detected in all code paths. *)
let paper_spec = [ [ R "x" ]; [ R "y"; W "x" ]; [ W "y" ] ]

(* Classic write skew: T1: r(x) r(y) w(x); T2: r(x) r(y) w(y). *)
let write_skew_spec = [ [ R "x"; R "y"; W "x" ]; [ R "x"; R "y"; W "y" ] ]

(* Example 3 (read-only anomaly): Tpivot: r(y) w(x); Tout: w(y) w(z);
   Tin: r(x) r(z). Some interleavings are genuinely non-serializable. *)
let read_only_anomaly_spec =
  [ [ R "y"; W "x" ]; [ W "y"; W "z" ]; [ R "x"; R "z" ] ]
