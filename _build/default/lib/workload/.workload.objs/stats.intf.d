lib/workload/stats.mli:
