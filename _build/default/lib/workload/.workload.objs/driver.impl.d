lib/workload/driver.ml: Core Db List Random Sim Stats Txn Types
