lib/workload/driver.ml: Core Db Hashtbl List Obs Random Sim Stats Txn Types
