lib/workload/driver.mli: Core Obs Random Sim
