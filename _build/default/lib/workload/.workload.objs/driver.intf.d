lib/workload/driver.mli: Core Random Sim
