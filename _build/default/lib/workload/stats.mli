(** Mean / standard deviation / 95% confidence intervals across seeds, as in
    the paper's plots (§6.1.1: "all graphs include 95% confidence
    intervals"). *)

val mean : float list -> float

(** Sample standard deviation (n-1); 0 for fewer than two samples. *)
val stddev : float list -> float

(** Two-sided Student t critical value at 95% for [n] samples. *)
val t95 : int -> float

(** [(mean, halfwidth)] of the 95% confidence interval. *)
val ci95 : float list -> float * float
