(* Small statistics helpers for the benchmark harness: means and 95%
   confidence intervals across seeds, as in the paper's plots ("all graphs
   include 95% confidence intervals", §6.1.1). *)

let mean xs =
  match xs with [] -> 0.0 | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean xs in
      let n = float_of_int (List.length xs) in
      let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
      sqrt (ss /. (n -. 1.0))

(* Two-sided Student t critical values at 95% for n-1 degrees of freedom. *)
let t95 n =
  match n with
  | 0 | 1 -> 0.0
  | 2 -> 12.706
  | 3 -> 4.303
  | 4 -> 3.182
  | 5 -> 2.776
  | 6 -> 2.571
  | 7 -> 2.447
  | 8 -> 2.365
  | 9 -> 2.306
  | 10 -> 2.262
  | _ -> 2.0

(* Mean and 95% confidence half-width. *)
let ci95 xs =
  let n = List.length xs in
  let m = mean xs in
  if n < 2 then (m, 0.0) else (m, t95 n *. stddev xs /. sqrt (float_of_int n))
