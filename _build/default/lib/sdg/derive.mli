(** Automatic SDG derivation from program read/write specifications — a
    small-scale version of the syntactic analysis of Jorwekar et al. 2007
    (§2.6.4).

    Items are (table, parameter-tuple) pairs with symbolic parameters; the
    derivation enumerates every injective matching between two programs'
    parameters and marks an rw edge vulnerable if some matching yields a
    read-write overlap with no write-write overlap — reproducing §2.8.4's
    reasoning (e.g. WriteCheck -> Amalgamate is rw but never vulnerable). *)

type item = { table : string; params : string list }

type program = {
  name : string;
  params : string list;
  reads : item list;
  writes : item list;
}

val item : string -> string list -> item

(** All injective partial maps from the first parameter list to the second
    (the ways two invocations could share arguments). *)
val scenarios : string list -> string list -> (string * string) list list

(** (ww, wr, rw, rw-vulnerable) existence over all scenarios from the first
    program to the second. *)
val analyse : program -> program -> bool * bool * bool * bool

(** Derive the full SDG, including self-edges between two instances of the
    same program with independent parameters. *)
val derive : program list -> Sdg.t
