(** The static dependency graphs studied in the paper. SmallBank graphs are
    derived automatically from program specifications; the TPC-C graphs are
    encoded from Figs 2.8 and 5.3 (their full derivation needs the
    flow-sensitive reasoning the paper also did by hand). *)

(** The five SmallBank program specifications of §2.8.2. *)
val smallbank_programs : Derive.program list

(** Fig 2.9: dangerous, pivot = WC. *)
val smallbank : unit -> Sdg.t

(** §2.8.5 fixes — all dangerous-structure-free: *)

val smallbank_materialize_wt : unit -> Sdg.t

val smallbank_promote_wt : unit -> Sdg.t

val smallbank_materialize_bw : unit -> Sdg.t

(** Fig 2.10: note the ww edges Bal now has with every Checking writer. *)
val smallbank_promote_bw : unit -> Sdg.t

(** Fig 2.8: vulnerable edges but no dangerous structure — TPC-C is
    serializable under SI (Fekete et al. 2005). *)
val tpcc : unit -> Sdg.t

(** Fig 5.3: Credit Check added; pivots are CCHECK and NEWO (§5.3.3). *)
val tpccpp : unit -> Sdg.t
