(* Automatic SDG derivation from program read/write specifications — a small
   version of the syntactic analysis of Jorwekar et al. 2007 (§2.6.4).

   A program touches items identified by (table, parameter tuple), where
   parameters are symbolic names (e.g. WriteCheck(N) reads Saving(N) and
   writes Checking(N)). Two items from different program instances can be
   the same row only if their tables match and their parameter tuples are
   identified by the scenario under consideration.

   To decide whether an rw conflict between P1 and P2 is vulnerable, we
   enumerate every injective partial matching of P1's parameters to P2's
   parameters (every way two invocations could share arguments): the edge is
   vulnerable if some scenario yields a read-write overlap without a
   write-write overlap — exactly the reasoning of §2.8.4 (the WriteCheck ->
   Amalgamate edge is *not* vulnerable because any shared Saving row forces
   a shared Checking write). *)

type item = { table : string; params : string list }

type program = {
  name : string;
  params : string list;
  reads : item list;
  writes : item list;
}

let item table params = { table; params }

(* All injective partial maps from [ps1] to [ps2]. *)
let scenarios ps1 ps2 =
  let rec go = function
    | [] -> [ [] ]
    | p :: rest ->
        let tails = go rest in
        let unmapped = tails in
        let mapped =
          List.concat_map
            (fun q ->
              List.filter_map
                (fun tail -> if List.exists (fun (_, q') -> q' = q) tail then None else Some ((p, q) :: tail))
                tails)
            ps2
        in
        unmapped @ mapped
  in
  go ps1

(* Same row under a scenario: tables equal and parameter tuples identified
   pointwise by the map (unmapped parameters denote distinct fresh values). *)
let same_item map i1 i2 =
  i1.table = i2.table
  && List.length i1.params = List.length i2.params
  && List.for_all2 (fun p q -> List.assoc_opt p map = Some q) i1.params i2.params

let overlap map items1 items2 =
  List.exists (fun i1 -> List.exists (fun i2 -> same_item map i1 i2) items2) items1

(* Conflicts from P1 to P2 over all scenarios. Returns (ww, wr, rw,
   rw_vulnerable) existence flags. *)
let analyse p1 p2 =
  let maps = scenarios p1.params p2.params in
  List.fold_left
    (fun (ww, wr, rw, vul) map ->
      let ww' = overlap map p1.writes p2.writes in
      let wr' = overlap map p1.writes p2.reads in
      let rw' = overlap map p1.reads p2.writes in
      (* Vulnerable: in this scenario an rw conflict occurs with no ww
         conflict forcing first-committer-wins. *)
      let vul' = rw' && not ww' in
      (ww || ww', wr || wr', rw || rw', vul || vul'))
    (false, false, false, false) maps

(* Build the SDG of a set of programs, including self-edges (two instances
   of the same program with independent parameters). *)
let derive programs =
  let edges = ref [] in
  List.iter
    (fun p1 ->
      List.iter
        (fun p2 ->
          (* For self-pairs, rename p2's parameters apart. *)
          let p2' =
            if p1.name = p2.name then begin
              let rename p = p ^ "'" in
              let rename_item (i : item) = { i with params = List.map rename i.params } in
              {
                p2 with
                params = List.map rename p2.params;
                reads = List.map rename_item p2.reads;
                writes = List.map rename_item p2.writes;
              }
            end
            else p2
          in
          let ww, wr, rw, vul = analyse p1 p2' in
          if ww then edges := Sdg.ww p1.name p2.name :: !edges;
          if wr then edges := Sdg.wr p1.name p2.name :: !edges;
          if rw then edges := Sdg.rw ~vulnerable:vul p1.name p2.name :: !edges)
        programs)
    programs;
  Sdg.make ~programs:(List.map (fun p -> p.name) programs) ~edges:!edges
