(* Static Dependency Graphs (§2.6, Fekete et al. 2005).

   Nodes are transaction *programs*; an edge P1 -> P2 records that some
   execution can produce a dependency from a transaction of P1 to one of P2.
   An rw edge is "vulnerable" if the rw conflict can occur between
   *concurrent* transactions (i.e. it is not shadowed by a write-write
   conflict on the same parameters, which first-committer-wins would
   serialise). Definition 1: the graph has a dangerous structure if there
   are vulnerable edges R -> P -> Q with Q = R or a path Q ->* R; Theorem 3:
   no dangerous structure implies every SI execution is serializable. *)

type kind = Ww | Wr | Rw

type edge = {
  src : string;
  dst : string;
  kind : kind;
  vulnerable : bool; (* only meaningful for Rw *)
}

type t = {
  programs : string list;
  edges : edge list;
}

let make ~programs ~edges =
  List.iter
    (fun e ->
      if not (List.mem e.src programs && List.mem e.dst programs) then
        invalid_arg ("Sdg.make: edge references unknown program " ^ e.src ^ "->" ^ e.dst))
    edges;
  { programs; edges }

let programs t = t.programs

let edges t = t.edges

let rw ?(vulnerable = true) src dst = { src; dst; kind = Rw; vulnerable }

let ww src dst = { src; dst; kind = Ww; vulnerable = false }

let wr src dst = { src; dst; kind = Wr; vulnerable = false }

(* Reflexive transitive closure over all edges. *)
let reaches t =
  let succ p = List.filter_map (fun e -> if e.src = p then Some e.dst else None) t.edges in
  fun from target ->
    if from = target then true
    else begin
      let visited = Hashtbl.create 16 in
      let rec dfs p =
        if p = target then true
        else if Hashtbl.mem visited p then false
        else begin
          Hashtbl.replace visited p ();
          List.exists dfs (succ p)
        end
      in
      List.exists dfs (succ from)
    end

type dangerous = { d_in : string; d_pivot : string; d_out : string }

(* Definition 1: vulnerable R -> P and vulnerable P -> Q with (Q, R) in the
   reflexive transitive closure. *)
let dangerous_structures t =
  let vulnerable = List.filter (fun e -> e.kind = Rw && e.vulnerable) t.edges in
  let reaches = reaches t in
  List.concat_map
    (fun e1 ->
      List.filter_map
        (fun e2 ->
          if e1.dst = e2.src && reaches e2.dst e1.src then
            Some { d_in = e1.src; d_pivot = e1.dst; d_out = e2.dst }
          else None)
        vulnerable)
    vulnerable

let has_dangerous_structure t = dangerous_structures t <> []

(* Programs appearing as the pivot of some dangerous structure — the
   transactions to modify (or run at S2PL, per Fekete 2005). *)
let pivots t =
  List.sort_uniq compare (List.map (fun d -> d.d_pivot) (dangerous_structures t))

(* {1 Edge rewriting for the §2.6 fixes} *)

(* Materialize or promote the conflict on a vulnerable edge: both sides now
   write a common item, so the rw edge gains a ww companion and stops being
   vulnerable (Figs 2.5/2.6). The caller is responsible for adding any other
   edges the modification introduces (e.g. promotion turning a query into an
   update, Fig 2.10). *)
let break_edge t ~src ~dst =
  let edges =
    List.map
      (fun e ->
        if e.src = src && e.dst = dst && e.kind = Rw then { e with vulnerable = false } else e)
      t.edges
  in
  { t with edges = ww src dst :: edges }

let pp fmt t =
  Fmt.pf fmt "@[<v>";
  List.iter
    (fun e ->
      let k = match e.kind with Ww -> "ww" | Wr -> "wr" | Rw -> if e.vulnerable then "rw!" else "rw" in
      Fmt.pf fmt "%s -%s-> %s@," e.src k e.dst)
    t.edges;
  Fmt.pf fmt "@]"
