(* The static dependency graphs studied in the paper, both as program
   specifications for {!Derive} (SmallBank, §2.8.2-2.8.5) and as manually
   encoded graphs (TPC-C Fig 2.8 and TPC-C++ Fig 5.3, whose full derivation
   needs flow-sensitive reasoning the paper also did by hand). *)

open Derive

(* {1 SmallBank (§2.8.2)} *)

let bal =
  {
    name = "Bal";
    params = [ "N" ];
    reads = [ item "Account" [ "N" ]; item "Saving" [ "N" ]; item "Checking" [ "N" ] ];
    writes = [];
  }

let dc =
  {
    name = "DC";
    params = [ "N" ];
    reads = [ item "Account" [ "N" ]; item "Checking" [ "N" ] ];
    writes = [ item "Checking" [ "N" ] ];
  }

let ts =
  {
    name = "TS";
    params = [ "N" ];
    reads = [ item "Account" [ "N" ]; item "Saving" [ "N" ] ];
    writes = [ item "Saving" [ "N" ] ];
  }

let amg =
  {
    name = "Amg";
    params = [ "N1"; "N2" ];
    reads =
      [
        item "Account" [ "N1" ];
        item "Account" [ "N2" ];
        item "Saving" [ "N1" ];
        item "Checking" [ "N1" ];
        item "Checking" [ "N2" ];
      ];
    writes = [ item "Saving" [ "N1" ]; item "Checking" [ "N1" ]; item "Checking" [ "N2" ] ];
  }

let wc =
  {
    name = "WC";
    params = [ "N" ];
    reads = [ item "Account" [ "N" ]; item "Saving" [ "N" ]; item "Checking" [ "N" ] ];
    writes = [ item "Checking" [ "N" ] ];
  }

let smallbank_programs = [ bal; dc; ts; amg; wc ]

(* Fig 2.9, derived automatically. *)
let smallbank () = Derive.derive smallbank_programs

(* The §2.8.5 fixes, as program modifications: *)

(* MaterializeWT: WC and TS both update Conflict(CustomerID). *)
let smallbank_materialize_wt () =
  let add_conflict p = { p with writes = item "Conflict" [ "N" ] :: p.writes } in
  Derive.derive [ bal; dc; add_conflict ts; amg; add_conflict wc ]

(* PromoteWT: WC adds an identity write to Saving. *)
let smallbank_promote_wt () =
  let wc' = { wc with writes = item "Saving" [ "N" ] :: wc.writes } in
  Derive.derive [ bal; dc; ts; amg; wc' ]

(* MaterializeBW: Bal and WC both update Conflict(CustomerID). *)
let smallbank_materialize_bw () =
  let add_conflict p = { p with writes = item "Conflict" [ "N" ] :: p.writes } in
  Derive.derive [ add_conflict bal; dc; ts; amg; add_conflict wc ]

(* PromoteBW: Bal adds an identity write to Checking (Fig 2.10) — note this
   turns the query into an update and adds ww conflicts with everything. *)
let smallbank_promote_bw () =
  let bal' = { bal with writes = [ item "Checking" [ "N" ] ] } in
  Derive.derive [ bal'; dc; ts; amg; wc ]

(* {1 TPC-C (Fig 2.8) and TPC-C++ (Fig 5.3), encoded from the figures} *)

let tpcc_programs = [ "NEWO"; "PAY"; "DLVY1"; "DLVY2"; "OSTAT"; "SLEV" ]

let tpcc_edges =
  Sdg.
    [
      (* write-write conflicts (bold in the figure) *)
      ww "NEWO" "NEWO" (* D.NEXT *);
      ww "PAY" "PAY" (* W.YTD, C.BAL *);
      ww "DLVY2" "DLVY2" (* NO / O / C.BAL *);
      ww "PAY" "DLVY2" (* C.BAL *);
      ww "DLVY2" "PAY";
      ww "NEWO" "DLVY2" (* NewOrder rows: inserted by NEWO, deleted by DLVY2 *);
      ww "DLVY2" "NEWO";
      (* write-read conflicts *)
      wr "NEWO" "OSTAT";
      wr "NEWO" "SLEV";
      wr "NEWO" "DLVY2";
      wr "PAY" "OSTAT";
      wr "DLVY2" "OSTAT";
      (* vulnerable anti-dependencies (dashed): read-only programs reading
         data the updaters modify *)
      rw "OSTAT" "NEWO";
      rw "OSTAT" "PAY";
      rw "OSTAT" "DLVY2";
      rw "SLEV" "NEWO";
      (* DLVY2's reads of NO/O rows are shadowed by its deletes (ww) *)
      rw ~vulnerable:false "DLVY2" "NEWO";
    ]

(* Fig 2.8: acyclic in the vulnerable sense — no dangerous structure, hence
   TPC-C is serializable under SI (Fekete et al. 2005). *)
let tpcc () = Sdg.make ~programs:tpcc_programs ~edges:tpcc_edges

(* Fig 5.3: adding Credit Check (§5.3.2). CCHECK reads the NewOrder table
   (inserted by NEWO) and c_balance (written by PAY and DLVY2), and writes
   c_credit (read by NEWO). *)
let tpccpp () =
  let open Sdg in
  make
    ~programs:("CCHECK" :: tpcc_programs)
    ~edges:
      (tpcc_edges
      @ [
          ww "CCHECK" "CCHECK" (* same customer row *);
          wr "CCHECK" "NEWO" (* c_credit *);
          wr "NEWO" "CCHECK" (* NO rows *);
          wr "PAY" "CCHECK" (* c_balance *);
          wr "DLVY2" "CCHECK";
          rw "CCHECK" "NEWO" (* reads NO rows NEWO inserts *);
          rw "CCHECK" "PAY" (* reads c_balance PAY updates *);
          rw "CCHECK" "DLVY2";
          rw "NEWO" "CCHECK" (* reads c_credit CCHECK updates *);
        ])
