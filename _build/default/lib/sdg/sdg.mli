(** Static Dependency Graphs (§2.6; Fekete et al. 2005).

    Nodes are transaction {e programs}; an rw edge is {e vulnerable} if the
    anti-dependency can occur between concurrent transactions. Definition 1:
    a dangerous structure is vulnerable R -> P -> Q with Q = R or a path
    Q ->* R; Theorem 3: without one, every SI execution is serializable. *)

type kind = Ww | Wr | Rw

type edge = { src : string; dst : string; kind : kind; vulnerable : bool }

type t

(** Build a graph; raises [Invalid_argument] on edges to unknown programs. *)
val make : programs:string list -> edges:edge list -> t

val programs : t -> string list

val edges : t -> edge list

(** Vulnerable (default) or shielded anti-dependency edge. *)
val rw : ?vulnerable:bool -> string -> string -> edge

val ww : string -> string -> edge

val wr : string -> string -> edge

type dangerous = { d_in : string; d_pivot : string; d_out : string }

(** All Definition 1 triples. *)
val dangerous_structures : t -> dangerous list

val has_dangerous_structure : t -> bool

(** Programs at the junction of two consecutive vulnerable edges — the
    transactions to modify (§2.6) or run at S2PL (Fekete 2005). *)
val pivots : t -> string list

(** Apply a §2.6 fix to one edge: both programs now write a common item, so
    the rw edge stops being vulnerable and gains a ww companion. *)
val break_edge : t -> src:string -> dst:string -> t

val pp : Format.formatter -> t -> unit
