lib/sdg/derive.ml: List Sdg
