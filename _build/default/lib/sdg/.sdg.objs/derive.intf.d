lib/sdg/derive.mli: Sdg
