lib/sdg/sdg.mli: Format
