lib/sdg/catalog.ml: Derive Sdg
