lib/sdg/catalog.mli: Derive Sdg
