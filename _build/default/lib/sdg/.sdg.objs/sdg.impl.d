lib/sdg/sdg.ml: Fmt Hashtbl List
