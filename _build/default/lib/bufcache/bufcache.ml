(* LRU buffer cache over B+tree pages.

   The paper's substrates (Berkeley DB's memory pool, InnoDB's buffer pool)
   serve every page access through a fixed-size cache; the large-data TPC-C
   configurations of §6.4.1 are I/O bound because the working set misses.
   This module models that: each page touch either hits (free) or misses,
   paying a disk read through the shared disk resource; evicting a dirty
   page pays a disk write first.

   The engine uses it when [Config.buffer_pool] is set; otherwise the
   probabilistic [read_miss] model stands in (see DESIGN.md). *)

type page = string * int (* table, page id *)

type node = {
  key : page;
  mutable dirty : bool;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  sim : Sim.t;
  capacity : int;
  disk : Resource.t;
  read_latency : float;
  write_latency : float;
  nodes : (page, node) Hashtbl.t;
  mutable head : node option; (* most recently used *)
  mutable tail : node option; (* least recently used *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable dirty_writebacks : int;
}

let create sim ~capacity ~disk ?(read_latency = 0.004) ?(write_latency = 0.004) () =
  if capacity < 1 then invalid_arg "Bufcache.create: capacity must be >= 1";
  {
    sim;
    capacity;
    disk;
    read_latency;
    write_latency;
    nodes = Hashtbl.create (2 * capacity);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
    dirty_writebacks = 0;
  }

let size t = Hashtbl.length t.nodes

(* Unlink a node from the LRU list. *)
let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

(* Evict the least-recently-used page; a dirty victim is written back
   first (charged to the evicting process, like a foreground flush). *)
let evict_one t =
  match t.tail with
  | None -> ()
  | Some victim ->
      unlink t victim;
      Hashtbl.remove t.nodes victim.key;
      t.evictions <- t.evictions + 1;
      if victim.dirty then begin
        t.dirty_writebacks <- t.dirty_writebacks + 1;
        Resource.consume t.disk t.write_latency
      end

(* Touch a page: LRU hit is free; a miss pays a disk read and may evict.
   [dirty] marks the page as modified (write-back on eviction). Must run in
   a simulator process. *)
let touch ?(dirty = false) t ~table ~page =
  let key = (table, page) in
  match Hashtbl.find_opt t.nodes key with
  | Some n ->
      t.hits <- t.hits + 1;
      if dirty then n.dirty <- true;
      if t.head != Some n then begin
        unlink t n;
        push_front t n
      end
  | None ->
      t.misses <- t.misses + 1;
      if Hashtbl.length t.nodes >= t.capacity then evict_one t;
      Resource.consume t.disk t.read_latency;
      (* Re-check: another process may have faulted the page in while we
         waited on the disk. *)
      (match Hashtbl.find_opt t.nodes key with
      | Some n ->
          if dirty then n.dirty <- true;
          if t.head != Some n then begin
            unlink t n;
            push_front t n
          end
      | None ->
          let n = { key; dirty; prev = None; next = None } in
          Hashtbl.replace t.nodes key n;
          push_front t n)

let evict_one_nosim t =
  match t.tail with
  | None -> ()
  | Some victim ->
      unlink t victim;
      Hashtbl.remove t.nodes victim.key;
      t.evictions <- t.evictions + 1

(* Warm the cache without simulated I/O (initial load). Fills up to
   capacity in the order given; later pages are more recently used. *)
let prewarm t pages =
  List.iter
    (fun (table, page) ->
      let key = (table, page) in
      if not (Hashtbl.mem t.nodes key) then begin
        if Hashtbl.length t.nodes >= t.capacity then evict_one_nosim t;
        let n = { key; dirty = false; prev = None; next = None } in
        Hashtbl.replace t.nodes key n;
        push_front t n
      end)
    pages

let hits t = t.hits

let misses t = t.misses

let evictions t = t.evictions

let dirty_writebacks t = t.dirty_writebacks

let hit_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 1.0 else float_of_int t.hits /. float_of_int total

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0;
  t.dirty_writebacks <- 0

(* LRU order, most recent first (for tests). *)
let lru_order t =
  let rec go acc = function None -> List.rev acc | Some n -> go (n.key :: acc) n.next in
  go [] t.head
