(** LRU buffer cache over B+tree pages.

    Models the fixed-size page caches of the paper's substrates (Berkeley
    DB's memory pool, InnoDB's buffer pool): a page touch either hits (free)
    or misses and pays a disk read through the shared {!Resource}; evicting
    a dirty page pays a disk write first. Enabled in the engine via
    [Config.buffer_pool]; see DESIGN.md for the probabilistic fallback. *)

type t

val create :
  Sim.t ->
  capacity:int ->
  disk:Resource.t ->
  ?read_latency:float ->
  ?write_latency:float ->
  unit ->
  t

(** Pages currently cached. *)
val size : t -> int

(** Touch a page (simulator process context): hit is free, miss pays a disk
    read and may evict the LRU page (write-back first if dirty). [dirty]
    marks the page modified. *)
val touch : ?dirty:bool -> t -> table:string -> page:int -> unit

(** Fault pages in without simulated I/O (initial load); caps at capacity. *)
val prewarm : t -> (string * int) list -> unit

(** {1 Statistics} *)

val hits : t -> int

val misses : t -> int

val evictions : t -> int

val dirty_writebacks : t -> int

(** Hits / (hits + misses); 1.0 when untouched. *)
val hit_rate : t -> float

val reset_stats : t -> unit

(** Cached pages, most recently used first (for tests). *)
val lru_order : t -> (string * int) list
