(* Random transaction-program generator.

   Programs are straight-line scripts over a small key domain k0..k{d-1}:
   point reads and blind writes, locking reads, inclusive range scans with
   optional LIMIT, inserts of possibly-fresh keys, deletes, and
   user-requested rollbacks. Domains are kept tiny (2-5 keys, 2-4
   transactions, 1-4 operations each) so contention — write skew shapes,
   phantom windows, dangerous structures — is the common case rather than
   the rare one, and so counterexample shrinking has little left to do.

   Everything is drawn from an explicit [Random.State.t]; a campaign seeded
   once replays byte-identically. *)

type profile = {
  p_max_txns : int;  (** 2..n transactions per case *)
  p_max_ops : int;  (** 1..n operations per transaction *)
  p_max_keys : int;  (** key domain size 2..n *)
}

let default_profile = { p_max_txns = 4; p_max_ops = 4; p_max_keys = 5 }

let key_name i = Printf.sprintf "k%d" i

(* One operation. Read-only scripts draw only reads and scans. *)
let gen_op st ~nkeys ~ro : Interleave.op =
  let key () = key_name (Random.State.int st nkeys) in
  let scan () =
    let bound () = if Random.State.bool st then Some (key ()) else None in
    let lo = bound () and hi = bound () in
    let limit = if Random.State.int st 3 = 0 then Some (1 + Random.State.int st 2) else None in
    Interleave.Scan (lo, hi, limit)
  in
  if ro then if Random.State.int st 4 = 0 then scan () else Interleave.R (key ())
  else
    match Random.State.int st 100 with
    | x when x < 32 -> Interleave.R (key ())
    | x when x < 58 -> Interleave.W (key ())
    | x when x < 64 -> Interleave.Rfu (key ())
    | x when x < 76 -> scan ()
    | x when x < 88 -> Interleave.Insert (key ())
    | _ -> Interleave.Delete (key ())

let gen_spec st ~nkeys ~max_ops ~ro : Interleave.spec =
  let n_ops = 1 + Random.State.int st max_ops in
  let ops = List.init n_ops (fun _ -> gen_op st ~nkeys ~ro) in
  (* occasionally end with a user rollback (work that must leave no trace) *)
  if Random.State.int st 12 = 0 then ops @ [ Interleave.Abort_op ] else ops

(* A uniform random merge of the scripts' turn sequences: the next turn goes
   to transaction [i] with probability remaining_i / total_remaining (see
   Interleave.random_order for why this is uniform over interleavings). *)
let gen_schedule st (lengths : int list) : int list =
  let remaining = Array.of_list lengths in
  let total = ref (Array.fold_left ( + ) 0 remaining) in
  let order = ref [] in
  while !total > 0 do
    let u = Random.State.int st !total in
    let i = ref 0 and acc = ref 0 in
    while u >= !acc + remaining.(!i) do
      acc := !acc + remaining.(!i);
      incr i
    done;
    remaining.(!i) <- remaining.(!i) - 1;
    order := !i :: !order;
    decr total
  done;
  List.rev !order

(* One case under the given matrix point. *)
let case ?(profile = default_profile) st ~(cfg : Fuzzcase.cfg_point) : Fuzzcase.t =
  let nkeys = 2 + Random.State.int st (max 1 (profile.p_max_keys - 1)) in
  let n_txns = 2 + Random.State.int st (max 1 (profile.p_max_txns - 1)) in
  let ro = List.init n_txns (fun _ -> Random.State.int st 5 = 0) in
  let specs = List.map (fun ro -> gen_spec st ~nkeys ~max_ops:profile.p_max_ops ~ro) ro in
  (* Preload most keys so reads/deletes usually find rows; leave some
     absent so inserts create fresh keys and scans cross real gaps. *)
  let init =
    List.filter_map
      (fun i -> if Random.State.int st 4 < 3 then Some (key_name i, "0") else None)
      (List.init nkeys Fun.id)
  in
  let schedule = gen_schedule st (List.map List.length specs) in
  { Fuzzcase.specs; ro; init; schedule; cfg }
