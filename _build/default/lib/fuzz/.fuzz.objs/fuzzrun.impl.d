lib/fuzz/fuzzrun.ml: Core Digest Fuzzcase Interleave List Mvsg Printf String
