lib/fuzz/fuzzshrink.ml: Fun Fuzzcase List
