lib/fuzz/fuzzgen.ml: Array Fun Fuzzcase Interleave List Printf Random
