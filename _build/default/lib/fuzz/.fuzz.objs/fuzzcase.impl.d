lib/fuzz/fuzzcase.ml: Array Buffer Config Core Interleave List Lockmgr Printf Result String
