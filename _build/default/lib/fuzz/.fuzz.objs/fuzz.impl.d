lib/fuzz/fuzz.ml: Array Core Fuzzcase Fuzzgen Fuzzrun Fuzzshrink Interleave List Mvsg Option Random Result
