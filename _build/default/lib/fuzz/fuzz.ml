(* Campaign driver: generate → differential check → shrink → repro file.

   A campaign is fully determined by (seed, cases, matrix, profile): the
   generator state is seeded once and each case runs under the next matrix
   point round-robin, so a failing seed replays the exact campaign. Any
   oracle violation is delta-debugged against the same violation class and
   kept as a (original, shrunk) pair for repro emission.

   With [shrink_anomalies] the driver additionally minimises committed SI
   anomalies and classifies the result — write skew (two-transaction rw
   cycle) and the read-only anomaly of Fekete et al. (a cycle through a
   transaction that wrote nothing) — until one example of each named class
   has been collected; these are the paper's two motivating histories,
   rediscovered from noise rather than hand-coded. *)

type failure = {
  f_case : Fuzzcase.t;
  f_violation : Fuzzrun.violation;
  f_shrunk : Fuzzcase.t;
}

type summary = {
  s_cases : int;
  s_si_anomalies : int;  (** SI committed a non-serializable history *)
  s_ssi_unsafe : int;  (** cases with at least one Unsafe abort under SSI *)
  s_false_positives : int;  (** §6.1.5: unnecessary unsafe aborts *)
  s_failures : failure list;
  s_anomalies : (string * Fuzzcase.t) list;  (** class name → shrunk SI example *)
}

(* Name the shape of a (shrunk) SI anomaly from its MVSG cycle. *)
let classify_anomaly (c : Fuzzcase.t) : string =
  let r = Fuzzrun.run_case ~isolation:Core.Types.Snapshot c in
  let g = Mvsg.build r.Interleave.history in
  match Mvsg.find_cycle g with
  | None -> "none"
  | Some cycle ->
      let distinct = List.sort_uniq compare cycle in
      let read_only t =
        match Mvsg.txn g t with Some h -> h.Core.Types.h_writes = [] | None -> false
      in
      if List.exists read_only distinct then "read-only-anomaly"
      else if List.length distinct = 2 then "write-skew"
      else "other"

type progress = { pr_done : int; pr_total : int; pr_anomalies : int; pr_unsafe : int }

let run_campaign ?(profile = Fuzzgen.default_profile) ?(shrink_anomalies = false)
    ?(on_progress = fun (_ : progress) -> ()) ~seed ~cases ~matrix () : summary =
  let st = Random.State.make [| 0x5551f; seed |] in
  let points = Array.of_list matrix in
  if Array.length points = 0 then invalid_arg "run_campaign: empty matrix";
  let si_anomalies = ref 0 and unsafe = ref 0 and false_pos = ref 0 in
  let failures = ref [] in
  let anomalies = ref [] in
  let missing cls = List.assoc_opt cls !anomalies = None in
  for i = 0 to cases - 1 do
    let cfg = points.(i mod Array.length points) in
    let c = Fuzzgen.case ~profile st ~cfg in
    let v = Fuzzrun.check c in
    if v.Fuzzrun.v_si_anomaly then incr si_anomalies;
    if v.Fuzzrun.v_ssi_unsafe then incr unsafe;
    if v.Fuzzrun.v_false_positive then incr false_pos;
    (match v.Fuzzrun.v_violation with
    | Some viol ->
        let shrunk = Fuzzshrink.shrink ~keeps:(Fuzzrun.reproduces viol) c in
        failures := { f_case = c; f_violation = viol; f_shrunk = shrunk } :: !failures
    | None -> ());
    if
      shrink_anomalies && v.Fuzzrun.v_si_anomaly
      && (missing "write-skew" || missing "read-only-anomaly")
    then begin
      let shrunk = Fuzzshrink.shrink ~keeps:Fuzzrun.si_nonserializable c in
      let cls = classify_anomaly shrunk in
      if cls <> "none" && missing cls then anomalies := (cls, shrunk) :: !anomalies
    end;
    if (i + 1) mod 500 = 0 then
      on_progress
        { pr_done = i + 1; pr_total = cases; pr_anomalies = !si_anomalies; pr_unsafe = !unsafe }
  done;
  {
    s_cases = cases;
    s_si_anomalies = !si_anomalies;
    s_ssi_unsafe = !unsafe;
    s_false_positives = !false_pos;
    s_failures = List.rev !failures;
    s_anomalies = List.rev !anomalies;
  }

(* {1 Repro files} *)

(* Serialize a case together with the history digests the three levels
   produce right now; replay verifies the digests byte-for-byte. *)
let repro_string ?(comment = []) (c : Fuzzcase.t) =
  let v = Fuzzrun.check c in
  let expect =
    List.map
      (fun r -> (Fuzzrun.level_name r.Fuzzrun.l_isolation, r.Fuzzrun.l_digest))
      v.Fuzzrun.v_reports
  in
  Fuzzcase.to_string ~expect ~comment c

type replay_check = {
  rc_level : string;
  rc_expected : string;
  rc_got : string;
  rc_ok : bool;
}

type replay_outcome = {
  rp_case : Fuzzcase.t;
  rp_checks : replay_check list;
  rp_violation : Fuzzrun.violation option;
  rp_reports : Fuzzrun.level_report list;
  rp_ok : bool;  (** all digests matched and no oracle violation *)
}

let replay_string content : (replay_outcome, string) result =
  Result.bind (Fuzzcase.of_string content) (fun (c, expect) ->
      let v = Fuzzrun.check c in
      let report lvl =
        List.find_opt
          (fun r -> Fuzzrun.level_name r.Fuzzrun.l_isolation = lvl)
          v.Fuzzrun.v_reports
      in
      match List.find_opt (fun (lvl, _) -> report lvl = None) expect with
      | Some (lvl, _) -> Error ("expect line references unknown level: " ^ lvl)
      | None ->
          let checks =
            List.map
              (fun (lvl, d) ->
                let r = Option.get (report lvl) in
                {
                  rc_level = lvl;
                  rc_expected = d;
                  rc_got = r.Fuzzrun.l_digest;
                  rc_ok = d = r.Fuzzrun.l_digest;
                })
              expect
          in
          Ok
            {
              rp_case = c;
              rp_checks = checks;
              rp_violation = v.Fuzzrun.v_violation;
              rp_reports = v.Fuzzrun.v_reports;
              rp_ok = List.for_all (fun rc -> rc.rc_ok) checks && v.Fuzzrun.v_violation = None;
            })
