(** Deterministic discrete-event simulator.

    The simulator replaces the OS threads and hardware of the paper's testbed:
    client sessions, the deadlock detector and the log flusher are processes;
    CPU, disk and mutexes are {!Resource} values layered on top. All events
    run on one OS thread in a total deterministic order, so code between two
    simulator calls is atomic — the moral equivalent of holding a latch. *)

type t

(** Handle to a suspended process; used by lock queues and condition
    variables to resume (or kill) it later. *)
type waker

val create : unit -> t

(** Current simulated time, in seconds. *)
val now : t -> float

(** Number of processes spawned and not yet finished. *)
val live_procs : t -> int

(** Number of events still queued. *)
val pending_events : t -> int

(** [spawn t f] creates a process running [f ()]; it starts when the event
    loop reaches the current time. Uncaught exceptions propagate out of
    {!run}. *)
val spawn : t -> (unit -> unit) -> unit

(** [schedule t ~after thunk] runs [thunk] (plain callback, not a process)
    [after] seconds from now. *)
val schedule : t -> after:float -> (unit -> unit) -> unit

(** Advance simulated time by [dt] seconds (process context only). *)
val delay : t -> float -> unit

(** Let other ready processes run at the same timestamp. *)
val yield : t -> unit

(** [suspend t register] parks the calling process and passes its waker to
    [register]; the process resumes when {!wake} is called on the waker, or
    raises when {!kill} is called. *)
val suspend : t -> (waker -> unit) -> unit

(** Resume a suspended process. No-op if it was already woken or killed. *)
val wake : t -> waker -> unit

(** Resume a suspended process by raising [exn] inside it. No-op if the waker
    already fired. *)
val kill : t -> waker -> exn -> unit

(** Whether the waker has already been woken or killed. *)
val waker_fired : waker -> bool

(** {1 Condition variables} *)

type cond

val cond : unit -> cond

val wait : t -> cond -> unit

(** Wake every waiter. *)
val broadcast : t -> cond -> unit

(** Wake one waiter (FIFO). *)
val signal : t -> cond -> unit

(** Run the event loop until no events remain or simulated time would pass
    [until] (the clock then stops exactly at [until]). *)
val run : ?until:float -> t -> unit
