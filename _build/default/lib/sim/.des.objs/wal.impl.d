lib/sim/wal.ml: Sim
