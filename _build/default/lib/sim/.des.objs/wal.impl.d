lib/sim/wal.ml: Obs Sim
