lib/sim/sim.mli:
