lib/sim/resource.ml: Queue Sim
