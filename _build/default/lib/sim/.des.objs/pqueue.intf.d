lib/sim/pqueue.mli:
