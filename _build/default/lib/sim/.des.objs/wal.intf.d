lib/sim/wal.mli: Sim
