lib/sim/wal.mli: Obs Sim
