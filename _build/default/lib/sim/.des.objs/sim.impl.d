lib/sim/sim.ml: Effect List Pqueue
