lib/sim/resource.mli: Sim
