(** Deterministic binary min-heap used as the simulator's event queue.

    Entries are ordered by [time]; ties are broken by the strictly increasing
    [seq] number supplied at push time, so two runs of the same program pop
    events in exactly the same order. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

(** [push t ~time ~seq payload] inserts an event. [seq] must be unique and
    increasing across pushes to keep ordering total. *)
val push : 'a t -> time:float -> seq:int -> 'a -> unit

(** Smallest (time, payload) without removing it. *)
val peek : 'a t -> (float * 'a) option

(** Remove and return the smallest (time, payload). *)
val pop : 'a t -> (float * 'a) option
