(* Binary min-heap keyed by (time, sequence-number); the sequence number
   makes event ordering total and hence the simulation deterministic. *)

type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
}

let create () = { data = [||]; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t entry =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let cap' = max 16 (2 * cap) in
    let data' = Array.make cap' entry in
    Array.blit t.data 0 data' 0 t.size;
    t.data <- data'
  end

let push t ~time ~seq payload =
  let entry = { time; seq; payload } in
  grow t entry;
  t.data.(t.size) <- entry;
  t.size <- t.size + 1;
  (* sift up *)
  let rec up i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if before t.data.(i) t.data.(parent) then begin
        let tmp = t.data.(i) in
        t.data.(i) <- t.data.(parent);
        t.data.(parent) <- tmp;
        up parent
      end
    end
  in
  up (t.size - 1)

let peek t = if t.size = 0 then None else Some (t.data.(0).time, t.data.(0).payload)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      let rec down i =
        let l = (2 * i) + 1 and r = (2 * i) + 2 in
        let smallest = ref i in
        if l < t.size && before t.data.(l) t.data.(!smallest) then smallest := l;
        if r < t.size && before t.data.(r) t.data.(!smallest) then smallest := r;
        if !smallest <> i then begin
          let tmp = t.data.(i) in
          t.data.(i) <- t.data.(!smallest);
          t.data.(!smallest) <- tmp;
          down !smallest
        end
      in
      down 0
    end;
    Some (top.time, top.payload)
  end
