(* Write-ahead log with group commit.

   Commit durability dominates transaction response time in the paper's
   "long transactions" experiments (Fig 6.2-6.5): a synchronous log flush
   costs ~10ms, but one physical flush hardens every record appended before
   it was issued, so concurrent committers share flushes (group commit,
   enabled by default in both Berkeley DB and InnoDB). *)

type mode =
  | No_flush (* commit returns once the record is buffered (Fig 6.1) *)
  | Flush_per_commit of float (* synchronous flush with given latency *)

type t = {
  sim : Sim.t;
  mode : mode;
  mutable epoch : int; (* current open batch *)
  mutable flushed : int; (* highest hardened batch *)
  mutable flusher_active : bool;
  flushed_cond : Sim.cond;
  mutable appends : int;
  mutable flushes : int;
  mutable obs : Obs.t; (* observability sink; Obs.disabled costs one branch *)
}

let create sim ~mode =
  {
    sim;
    mode;
    epoch = 0;
    flushed = -1;
    flusher_active = false;
    flushed_cond = Sim.cond ();
    appends = 0;
    flushes = 0;
    obs = Obs.disabled;
  }

let set_obs t obs = t.obs <- obs

let mode t = t.mode

(* Buffer a log record; cheap, cost accounted by the caller's CPU model. *)
let append t = t.appends <- t.appends + 1

let rec ensure_flushed t ~latency ~upto =
  if t.flushed >= upto then ()
  else if t.flusher_active then begin
    Sim.wait t.sim t.flushed_cond;
    ensure_flushed t ~latency ~upto
  end
  else begin
    (* Become the flush leader: seal the open batch, write it, repeat while
       our own record is still unhardened. *)
    t.flusher_active <- true;
    let target = t.epoch in
    t.epoch <- t.epoch + 1;
    Sim.delay t.sim latency;
    t.flushes <- t.flushes + 1;
    t.flushed <- target;
    Obs.record_wal_flush t.obs;
    if Obs.tracing t.obs then
      Obs.emit t.obs ~ts:(Sim.now t.sim) (Obs.Wal_flush { epoch = target; latency });
    t.flusher_active <- false;
    Sim.broadcast t.sim t.flushed_cond;
    ensure_flushed t ~latency ~upto
  end

(* Make every record appended so far durable; returns when a flush covering
   the caller's batch completes. *)
let commit_flush t =
  match t.mode with
  | No_flush -> ()
  | Flush_per_commit latency -> ensure_flushed t ~latency ~upto:t.epoch

let appends t = t.appends

let flushes t = t.flushes

let reset_stats t =
  t.appends <- 0;
  t.flushes <- 0
