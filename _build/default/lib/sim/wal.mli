(** Simulated write-ahead log with group commit.

    In [No_flush] mode a commit only buffers its record (the paper's
    Fig 6.1 configuration, standing in for battery-backed storage). In
    [Flush_per_commit latency] mode a commit blocks until a physical flush
    covering its record completes; concurrent committers share one flush
    (group commit), so throughput rises with MPL even on one disk. *)

type mode =
  | No_flush
  | Flush_per_commit of float  (** flush latency in simulated seconds *)

type t

val create : Sim.t -> mode:mode -> t

(** Attach an observability sink (flush events and the flush counter).
    Default {!Obs.disabled}. *)
val set_obs : t -> Obs.t -> unit

val mode : t -> mode

(** Buffer one log record into the open batch. *)
val append : t -> unit

(** Block until every record appended so far is durable (no-op for
    [No_flush]). *)
val commit_flush : t -> unit

(** {1 Statistics} *)

val appends : t -> int

(** Physical flushes performed; [appends / flushes] is the group-commit
    batching factor. *)
val flushes : t -> int

val reset_stats : t -> unit
