lib/core/txn.ml: Exec Internal Types
