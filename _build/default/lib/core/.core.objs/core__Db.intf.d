lib/core/db.mli: Bufcache Config Internal Lockmgr Mvstore Resource Sim Types Wal
