lib/core/db.mli: Bufcache Config Internal Lockmgr Mvstore Obs Resource Sim Types Wal
