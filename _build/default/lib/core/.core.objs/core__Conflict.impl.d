lib/core/conflict.ml: Config Internal List Lockmgr Obs Sim Types
