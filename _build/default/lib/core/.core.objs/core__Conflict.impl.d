lib/core/conflict.ml: Config Internal List Lockmgr Types
