lib/core/internal.ml: Btree Bufcache Config Hashtbl List Lockmgr Mvstore Printf Random Resource Sim Types Wal
