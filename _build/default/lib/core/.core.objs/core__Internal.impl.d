lib/core/internal.ml: Btree Bufcache Config Hashtbl List Lockmgr Mvstore Obs Printf Queue Random Resource Sim Types Wal
