lib/core/exec.ml: Btree Config Conflict Hashtbl Internal List Lockmgr Mvstore Obs Option Queue Resource Sim Types Wal
