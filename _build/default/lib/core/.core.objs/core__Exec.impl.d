lib/core/exec.ml: Btree Config Conflict Hashtbl Internal List Lockmgr Mvstore Option Resource Types Wal
