lib/core/config.ml: Lockmgr Wal
