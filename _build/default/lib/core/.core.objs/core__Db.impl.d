lib/core/db.ml: Btree Bufcache Config Exec Hashtbl Internal List Lockmgr Mvstore Option Random Resource Sim Types Wal
