lib/core/db.ml: Btree Bufcache Config Exec Hashtbl Internal List Lockmgr Mvstore Obs Option Queue Random Resource Sim Types Wal
