lib/core/types.ml:
