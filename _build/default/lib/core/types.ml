(** Shared public types of the transaction engine. *)

(** Concurrency control algorithm requested per transaction (§2, §3):
    - [Read_committed]: reads see the latest committed version, no read locks.
    - [Snapshot]: snapshot isolation with first-committer-wins (§2.5).
    - [Serializable]: the paper's Serializable Snapshot Isolation (§3) —
      SI plus SIREAD-based rw-dependency tracking and unsafe aborts.
    - [S2pl]: strict two-phase locking with next-key locking (§2.2.1). *)
type isolation = Read_committed | Snapshot | Serializable | S2pl

let isolation_to_string = function
  | Read_committed -> "RC"
  | Snapshot -> "SI"
  | Serializable -> "SSI"
  | S2pl -> "S2PL"

(** Why a transaction aborted. Matches the error taxonomy of the paper's
    evaluation (Fig 6.1(b) etc.): deadlocks, first-committer-wins conflicts
    and the new "unsafe" errors introduced by Serializable SI. *)
type abort_reason =
  | Deadlock  (** lock-wait cycle (S2PL, or SI write-write waits) *)
  | Update_conflict  (** first-committer-wins violation (SI/SSI) *)
  | Unsafe  (** dangerous structure detected by Serializable SI *)
  | Duplicate_key  (** insert of an existing live key *)
  | User_abort  (** application-requested rollback *)
  | Internal_error of string

let abort_reason_to_string = function
  | Deadlock -> "deadlock"
  | Update_conflict -> "update-conflict"
  | Unsafe -> "unsafe"
  | Duplicate_key -> "duplicate-key"
  | User_abort -> "user-abort"
  | Internal_error m -> "internal: " ^ m

(** Raised by transaction operations; the transaction is already rolled back
    when this escapes. *)
exception Abort of abort_reason

(** {1 History records}

    When [record_history] is enabled, the engine logs every committed
    transaction so the serializability checker can build the multiversion
    serialization graph (§2.5.1). A read is identified by the commit
    timestamp of the version it observed ([0] = initial database state). *)

type read_record = { r_table : string; r_key : string; r_version : int }

type committed_record = {
  h_id : int;
  h_isolation : isolation;
  h_snapshot : int;  (** begin timestamp (read view) *)
  h_commit : int;  (** commit timestamp *)
  h_reads : read_record list;
  h_writes : (string * string) list;  (** (table, key); version ts = h_commit *)
}
