(** Transaction operations. All functions must be called from a simulator
    process; they may block (lock waits, CPU, log flushes) and raise
    {!Types.Abort} — in which case the transaction has already been rolled
    back. *)

type t = Internal.txn

let id (t : t) = t.Internal.id

let isolation (t : t) = t.Internal.isolation

let is_active (t : t) = t.Internal.state = Internal.Active

(** Read view (begin timestamp), if already assigned — assignment is lazy per
    §4.5. *)
let snapshot (t : t) = t.Internal.snapshot

let commit_ts (t : t) = t.Internal.commit_ts

(** Point read. [None] if the key is absent (or deleted) in this
    transaction's view. *)
let read t table key = Exec.do_read t table key

(** Read, raising [Abort (Internal_error _)] if absent — for keys that must
    exist. *)
let read_exn t table key =
  match Exec.do_read t table key with
  | Some v -> v
  | None -> raise (Types.Abort (Types.Internal_error ("missing key " ^ table ^ "/" ^ key)))

(** Blind write (update): sets the value of [key]. *)
let write t table key value = Exec.do_write t table key value

(** Locking read (SELECT ... FOR UPDATE): acquires the exclusive lock before
    reading, so a following {!write} cannot block or upgrade-deadlock. Under
    SI/SSI the read view is chosen after the lock (§4.5), so transactions
    that start with a locking read never abort under first-committer-wins. *)
let read_for_update t table key = Exec.do_read_for_update t table key

let read_for_update_exn t table key =
  match read_for_update t table key with
  | Some v -> v
  | None -> raise (Types.Abort (Types.Internal_error ("missing key " ^ table ^ "/" ^ key)))

(** Insert a fresh key; aborts with [Duplicate_key] if a live version
    exists. Takes next-key gap locks for phantom safety (Fig 3.7). *)
let insert t table key value = Exec.do_insert t table key value

(** Delete a key (writes a tombstone). Returns whether it existed in this
    transaction's view. *)
let delete t table key = Exec.do_delete t table key

(** Predicate read: all live (key, value) pairs with [lo <= key <= hi]
    (inclusive, both optional), in key order, including this transaction's
    own uncommitted writes. Performs next-key gap locking (Fig 3.6).
    [limit] stops the scan after that many visible rows (a LIMIT query);
    gap locks then cover only the examined prefix. *)
let scan ?lo ?hi ?limit t table = Exec.do_scan ?lo ?hi ?limit t table

(** Read-modify-write helper: read [key], apply [f], write the result. *)
let update t table key f =
  let v = read t table key in
  match f v with Some v' -> write t table key v' | None -> ()

let commit t = Exec.do_commit t

(** Roll back voluntarily. *)
let abort t = Exec.do_rollback t Types.User_abort
