(* In-memory B+tree with leaf chaining.

   This is the ordered-index substrate standing in for Berkeley DB's Btree
   access method and InnoDB's clustered index. Every operation reports which
   pages (node ids) it touched and which it structurally modified, so the
   transaction engine can lock at page granularity and reproduce the paper's
   Berkeley DB results, where root-page splits conflict with every concurrent
   reader (§6.1.5).

   Deletion removes the key from its leaf without rebalancing (lazy
   deletion); the MVCC layer above keeps tombstone version chains in place,
   so index entries are removed only by garbage collection and underflow is
   harmless. *)

type 'a leaf = {
  lid : int;
  mutable lkeys : string array;
  mutable lvals : 'a array;
  mutable lnext : 'a leaf option;
}

type 'a node = Leaf of 'a leaf | Internal of 'a internal

and 'a internal = {
  iid : int;
  mutable ikeys : string array; (* separators, length = #children - 1 *)
  mutable ichildren : 'a node array;
}

type 'a t = {
  mutable root : 'a node;
  fanout : int; (* max keys per leaf and max children per internal *)
  mutable next_id : int;
  mutable size : int;
}

type access = {
  path : int list; (* page ids on the descent, root first *)
  leaves : int list; (* leaf pages visited (scans may visit several) *)
  modified : int list; (* pages structurally modified by splits *)
  splits : (int * int) list; (* (old page, new sibling) pairs from splits *)
}

let no_access = { path = []; leaves = []; modified = []; splits = [] }

let node_id = function Leaf l -> l.lid | Internal n -> n.iid

let fresh_id t =
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  id

let create ?(fanout = 64) () =
  if fanout < 4 then invalid_arg "Btree.create: fanout must be >= 4";
  let t = { root = Leaf { lid = 0; lkeys = [||]; lvals = [||]; lnext = None }; fanout; next_id = 1; size = 0 } in
  t

let length t = t.size

let fanout t = t.fanout

let root_id t = node_id t.root

(* Index of the child covering [key]: the number of separators <= key. *)
let child_index n key =
  let keys = n.ikeys in
  let lo = ref 0 and hi = ref (Array.length keys) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if keys.(mid) <= key then lo := mid + 1 else hi := mid
  done;
  !lo

(* Position of [key] in a sorted array, or the insertion point.
   Returns (index, found). *)
let search_keys keys key =
  let lo = ref 0 and hi = ref (Array.length keys) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if keys.(mid) < key then lo := mid + 1 else hi := mid
  done;
  let i = !lo in
  (i, i < Array.length keys && keys.(i) = key)

let array_insert a i x =
  let n = Array.length a in
  let b = Array.make (n + 1) x in
  Array.blit a 0 b 0 i;
  Array.blit a i b (i + 1) (n - i);
  b

let array_remove a i =
  let n = Array.length a in
  let b = Array.sub a 0 (n - 1) in
  Array.blit a (i + 1) b i (n - 1 - i);
  b

let rec descend_to_leaf node key acc =
  match node with
  | Leaf l -> (l, List.rev (l.lid :: acc))
  | Internal n -> descend_to_leaf n.ichildren.(child_index n key) key (n.iid :: acc)

let find_path t key =
  let leaf, path = descend_to_leaf t.root key [] in
  let i, found = search_keys leaf.lkeys key in
  let v = if found then Some leaf.lvals.(i) else None in
  (v, { path; leaves = [ leaf.lid ]; modified = []; splits = [] })

let find t key = fst (find_path t key)

let mem t key = find t key <> None

(* Result of inserting into a subtree: possibly a promoted separator and a
   new right sibling for the parent to absorb, plus modified page ids. *)
type 'a split = (string * 'a node) option

let split_leaf t l : string * 'a node =
  let n = Array.length l.lkeys in
  let mid = (n + 1) / 2 in
  let right =
    {
      lid = fresh_id t;
      lkeys = Array.sub l.lkeys mid (n - mid);
      lvals = Array.sub l.lvals mid (n - mid);
      lnext = l.lnext;
    }
  in
  l.lkeys <- Array.sub l.lkeys 0 mid;
  l.lvals <- Array.sub l.lvals 0 mid;
  l.lnext <- Some right;
  (right.lkeys.(0), Leaf right)

let split_internal t n : string * 'a node =
  let nk = Array.length n.ikeys in
  let mid = nk / 2 in
  let promoted = n.ikeys.(mid) in
  let right =
    {
      iid = fresh_id t;
      ikeys = Array.sub n.ikeys (mid + 1) (nk - mid - 1);
      ichildren = Array.sub n.ichildren (mid + 1) (Array.length n.ichildren - mid - 1);
    }
  in
  n.ikeys <- Array.sub n.ikeys 0 mid;
  n.ichildren <- Array.sub n.ichildren 0 (mid + 1);
  (promoted, Internal right)

(* [insert_rec] returns (replaced_existing, split, modified_ids, splits).
   [splits] pairs each split page with its freshly allocated right sibling so
   the engine above can carry page stamps and SIREAD locks across the split
   (entries that lived on the old page may now live on the new one). *)
let rec insert_rec t node key v : bool * 'a split * int list * (int * int) list =
  match node with
  | Leaf l ->
      let i, found = search_keys l.lkeys key in
      if found then begin
        l.lvals.(i) <- v;
        (true, None, [], [])
      end
      else begin
        l.lkeys <- array_insert l.lkeys i key;
        l.lvals <- array_insert l.lvals i v;
        if Array.length l.lkeys > t.fanout then begin
          let sep, right = split_leaf t l in
          (false, Some (sep, right), [ l.lid; node_id right ], [ (l.lid, node_id right) ])
        end
        else (false, None, [], [])
      end
  | Internal n -> (
      let ci = child_index n key in
      let replaced, split, modified, splits = insert_rec t n.ichildren.(ci) key v in
      match split with
      | None -> (replaced, None, modified, splits)
      | Some (sep, right) ->
          n.ikeys <- array_insert n.ikeys ci sep;
          n.ichildren <- array_insert n.ichildren (ci + 1) right;
          if Array.length n.ichildren > t.fanout then begin
            let sep', right' = split_internal t n in
            ( replaced,
              Some (sep', right'),
              n.iid :: node_id right' :: modified,
              (n.iid, node_id right') :: splits )
          end
          else (replaced, None, n.iid :: modified, splits))

let insert t key v =
  let _, path_acc = descend_to_leaf t.root key [] in
  let replaced, split, modified, splits = insert_rec t t.root key v in
  if not replaced then t.size <- t.size + 1;
  let modified, splits =
    match split with
    | None -> (modified, splits)
    | Some (sep, right) ->
        (* Root split: the tree grows a level. *)
        let old_root_id = node_id t.root in
        let new_root =
          Internal { iid = fresh_id t; ikeys = [| sep |]; ichildren = [| t.root; right |] }
        in
        let id = node_id new_root in
        t.root <- new_root;
        (id :: modified, (old_root_id, id) :: splits)
  in
  {
    path = path_acc;
    leaves = [ List.nth path_acc (List.length path_acc - 1) ];
    modified;
    splits;
  }

let remove t key =
  let rec go node =
    match node with
    | Leaf l ->
        let i, found = search_keys l.lkeys key in
        if found then begin
          l.lkeys <- array_remove l.lkeys i;
          l.lvals <- array_remove l.lvals i;
          true
        end
        else false
    | Internal n -> go n.ichildren.(child_index n key)
  in
  let removed = go t.root in
  if removed then t.size <- t.size - 1;
  removed

let rec leftmost_leaf = function
  | Leaf l -> l
  | Internal n -> leftmost_leaf n.ichildren.(0)

let min_key t =
  let rec first_nonempty l =
    if Array.length l.lkeys > 0 then Some l.lkeys.(0)
    else match l.lnext with None -> None | Some l' -> first_nonempty l'
  in
  first_nonempty (leftmost_leaf t.root)

let max_key t =
  let rec go node =
    match node with
    | Leaf l -> if Array.length l.lkeys = 0 then None else Some l.lkeys.(Array.length l.lkeys - 1)
    | Internal n -> go n.ichildren.(Array.length n.ichildren - 1)
  in
  (* Lazy deletion can empty a rightmost leaf; fall back to a full scan of
     the leaf chain in that unlikely case. *)
  match go t.root with
  | Some k -> Some k
  | None ->
      let best = ref None in
      let rec walk l =
        if Array.length l.lkeys > 0 then best := Some l.lkeys.(Array.length l.lkeys - 1);
        match l.lnext with None -> () | Some l' -> walk l'
      in
      walk (leftmost_leaf t.root);
      !best

(* Least key strictly greater than [key], if any. *)
let successor t key =
  let leaf, _ = descend_to_leaf t.root key [] in
  let rec from_leaf l i =
    if i < Array.length l.lkeys then
      if l.lkeys.(i) > key then Some l.lkeys.(i) else from_leaf l (i + 1)
    else match l.lnext with None -> None | Some l' -> from_leaf l' 0
  in
  let i, _ = search_keys leaf.lkeys key in
  from_leaf leaf i

(* Inclusive range iteration; [f] may not modify the tree. Returns the access
   footprint (descent path for [lo] plus all leaves visited). *)
let iter_range_access t ?lo ?hi f =
  let start_key = match lo with Some k -> k | None -> "" in
  let leaf, path = descend_to_leaf t.root start_key [] in
  let leaves = ref [] in
  let rec walk l i =
    if i = 0 then leaves := l.lid :: !leaves;
    if i < Array.length l.lkeys then begin
      let k = l.lkeys.(i) in
      let below_hi = match hi with None -> true | Some h -> k <= h in
      if below_hi then begin
        let above_lo = match lo with None -> true | Some lo -> k >= lo in
        if above_lo then f k l.lvals.(i);
        walk l (i + 1)
      end
    end
    else
      match l.lnext with
      | None -> ()
      | Some l' -> (
          (* Only continue if the next leaf can contain in-range keys. *)
          match hi with
          | Some h when Array.length l'.lkeys > 0 && l'.lkeys.(0) > h -> ()
          | _ -> walk l' 0)
  in
  (* [f] may raise [Exit] to stop the scan early (LIMIT queries); the access
     footprint then covers only the pages actually visited. *)
  (try walk leaf 0 with Exit -> ());
  { path; leaves = List.rev !leaves; modified = []; splits = [] }

let iter_range t ?lo ?hi f = ignore (iter_range_access t ?lo ?hi f)

let fold_range t ?lo ?hi ~init ~f =
  let acc = ref init in
  iter_range t ?lo ?hi (fun k v -> acc := f !acc k v);
  !acc

let to_list t =
  List.rev (fold_range t ?lo:None ?hi:None ~init:[] ~f:(fun acc k v -> (k, v) :: acc))

let height t =
  let rec go node acc = match node with Leaf _ -> acc | Internal n -> go n.ichildren.(0) (acc + 1) in
  go t.root 1

(* All page ids in the tree, internals before their children (BFS-ish
   depth-first order). *)
let all_pages t =
  let acc = ref [] in
  let rec go node =
    acc := node_id node :: !acc;
    match node with Leaf _ -> () | Internal n -> Array.iter go n.ichildren
  in
  go t.root;
  List.rev !acc

let page_count t =
  let rec go node acc =
    match node with
    | Leaf _ -> acc + 1
    | Internal n -> Array.fold_left (fun acc c -> go c acc) (acc + 1) n.ichildren
  in
  go t.root 0

exception Invariant_violation of string

let check_invariants t =
  let fail fmt = Fmt.kstr (fun s -> raise (Invariant_violation s)) fmt in
  let check_sorted keys what =
    Array.iteri
      (fun i k -> if i > 0 && keys.(i - 1) >= k then fail "%s keys not strictly sorted" what)
      keys
  in
  let rec depth node = match node with Leaf _ -> 1 | Internal n -> 1 + depth n.ichildren.(0) in
  let d = depth t.root in
  let count = ref 0 in
  let rec go node level ~lo ~hi =
    match node with
    | Leaf l ->
        if level <> d then fail "leaf at level %d, expected %d" level d;
        if Array.length l.lkeys <> Array.length l.lvals then fail "leaf key/val mismatch";
        if Array.length l.lkeys > t.fanout then
          fail "leaf overflow: %d keys for fanout %d" (Array.length l.lkeys) t.fanout;
        check_sorted l.lkeys "leaf";
        Array.iter
          (fun k ->
            (match lo with Some lo when k < lo -> fail "leaf key below bound" | _ -> ());
            match hi with Some hi when k >= hi -> fail "leaf key above bound" | _ -> ())
          l.lkeys;
        count := !count + Array.length l.lkeys
    | Internal n ->
        let nk = Array.length n.ikeys and nc = Array.length n.ichildren in
        if nc <> nk + 1 then fail "internal child count %d for %d keys" nc nk;
        if nc > t.fanout then fail "internal overflow";
        check_sorted n.ikeys "internal";
        for i = 0 to nc - 1 do
          let lo' = if i = 0 then lo else Some n.ikeys.(i - 1) in
          let hi' = if i = nc - 1 then hi else Some n.ikeys.(i) in
          go n.ichildren.(i) (level + 1) ~lo:lo' ~hi:hi'
        done
  in
  go t.root 1 ~lo:None ~hi:None;
  if !count <> t.size then fail "size %d but counted %d keys" t.size !count;
  (* Leaf chain must enumerate exactly the sorted key set. *)
  let chain = ref [] in
  let rec walk l =
    Array.iter (fun k -> chain := k :: !chain) l.lkeys;
    match l.lnext with None -> () | Some l' -> walk l'
  in
  walk (leftmost_leaf t.root);
  let chain = List.rev !chain in
  if List.length chain <> t.size then fail "leaf chain length mismatch";
  ignore (List.fold_left (fun prev k ->
      (match prev with Some p when p >= k -> fail "leaf chain out of order" | _ -> ());
      Some k) None chain)
