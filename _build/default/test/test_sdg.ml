(* Tests for the static dependency graph analysis (§2.6, §2.8): Definition 1
   dangerous structures, the automatic derivation on SmallBank, and the
   TPC-C / TPC-C++ catalog graphs. *)

let find_edge g src dst kind =
  List.find_opt
    (fun e -> e.Sdg.src = src && e.Sdg.dst = dst && e.Sdg.kind = kind)
    (Sdg.edges g)

let has_vulnerable g src dst =
  match find_edge g src dst Sdg.Rw with Some e -> e.Sdg.vulnerable | None -> false

let has_rw g src dst = find_edge g src dst Sdg.Rw <> None

let has_ww g src dst = find_edge g src dst Sdg.Ww <> None

(* {1 Basic Definition 1 mechanics} *)

let test_simple_dangerous_triple () =
  (* R -rw!-> P -rw!-> Q with Q -wr-> R closing the cycle. *)
  let g =
    Sdg.make ~programs:[ "R"; "P"; "Q" ]
      ~edges:[ Sdg.rw "R" "P"; Sdg.rw "P" "Q"; Sdg.wr "Q" "R" ]
  in
  Alcotest.(check bool) "dangerous" true (Sdg.has_dangerous_structure g);
  Alcotest.(check (list string)) "pivot is P" [ "P" ] (Sdg.pivots g)

let test_q_equals_r () =
  (* Two-node write skew: R -rw!-> P -rw!-> R; Q = R needs no extra path. *)
  let g = Sdg.make ~programs:[ "R"; "P" ] ~edges:[ Sdg.rw "R" "P"; Sdg.rw "P" "R" ] in
  Alcotest.(check bool) "dangerous" true (Sdg.has_dangerous_structure g);
  Alcotest.(check (list string)) "both pivots" [ "P"; "R" ] (Sdg.pivots g)

let test_no_return_path_is_safe () =
  (* R -rw!-> P -rw!-> Q but no path Q ->* R: Definition 1(c) fails. *)
  let g = Sdg.make ~programs:[ "R"; "P"; "Q" ] ~edges:[ Sdg.rw "R" "P"; Sdg.rw "P" "Q" ] in
  Alcotest.(check bool) "safe" false (Sdg.has_dangerous_structure g)

let test_nonvulnerable_edges_do_not_count () =
  let g =
    Sdg.make ~programs:[ "R"; "P"; "Q" ]
      ~edges:[ Sdg.rw ~vulnerable:false "R" "P"; Sdg.rw "P" "Q"; Sdg.wr "Q" "R" ]
  in
  Alcotest.(check bool) "safe" false (Sdg.has_dangerous_structure g)

let test_break_edge () =
  let g =
    Sdg.make ~programs:[ "R"; "P"; "Q" ]
      ~edges:[ Sdg.rw "R" "P"; Sdg.rw "P" "Q"; Sdg.wr "Q" "R" ]
  in
  Alcotest.(check bool) "fixed by breaking in-edge" false
    (Sdg.has_dangerous_structure (Sdg.break_edge g ~src:"R" ~dst:"P"));
  Alcotest.(check bool) "fixed by breaking out-edge" false
    (Sdg.has_dangerous_structure (Sdg.break_edge g ~src:"P" ~dst:"Q"))

(* {1 SmallBank derivation (Fig 2.9)} *)

let test_smallbank_vulnerable_edges () =
  let g = Catalog.smallbank () in
  (* Bal is read-only: all its rw out-edges are vulnerable. *)
  List.iter
    (fun dst ->
      Alcotest.(check bool) ("Bal->" ^ dst ^ " vulnerable") true (has_vulnerable g "Bal" dst))
    [ "DC"; "TS"; "WC"; "Amg" ];
  Alcotest.(check bool) "WC->TS vulnerable" true (has_vulnerable g "WC" "TS");
  (* The subtle case of §2.8.4: WC->Amg rw exists but every scenario that
     creates it also creates a ww conflict on Checking. *)
  Alcotest.(check bool) "WC->Amg rw exists" true (has_rw g "WC" "Amg");
  Alcotest.(check bool) "WC->Amg not vulnerable" false (has_vulnerable g "WC" "Amg");
  (* Read-modify-write programs shadow their rw edges with ww. *)
  Alcotest.(check bool) "DC->DC not vulnerable" false (has_vulnerable g "DC" "DC");
  Alcotest.(check bool) "TS->Amg not vulnerable" false (has_vulnerable g "TS" "Amg")

let test_smallbank_pivot_is_writecheck () =
  let g = Catalog.smallbank () in
  Alcotest.(check bool) "dangerous" true (Sdg.has_dangerous_structure g);
  Alcotest.(check (list string)) "WC is the only pivot" [ "WC" ] (Sdg.pivots g);
  (* The dangerous cycle of §2.8.4: Bal -> WC -> TS -> Bal. *)
  Alcotest.(check bool) "Bal->WC->TS structure found" true
    (List.exists
       (fun d -> d.Sdg.d_in = "Bal" && d.Sdg.d_pivot = "WC" && d.Sdg.d_out = "TS")
       (Sdg.dangerous_structures g))

let test_smallbank_fixes_remove_danger () =
  List.iter
    (fun (name, g) ->
      Alcotest.(check bool) (name ^ " removes all dangerous structures") false
        (Sdg.has_dangerous_structure g))
    [
      ("MaterializeWT", Catalog.smallbank_materialize_wt ());
      ("PromoteWT", Catalog.smallbank_promote_wt ());
      ("MaterializeBW", Catalog.smallbank_materialize_bw ());
      ("PromoteBW", Catalog.smallbank_promote_bw ());
    ]

let test_promote_bw_adds_ww_conflicts () =
  (* Fig 2.10: promotion turns Bal into an update, adding ww edges from Bal
     to every program that writes Checking. *)
  let g = Catalog.smallbank_promote_bw () in
  List.iter
    (fun dst ->
      Alcotest.(check bool) ("Bal ww " ^ dst) true (has_ww g "Bal" dst))
    [ "WC"; "DC"; "Amg"; "Bal" ];
  (* MaterializeWT leaves Bal a pure query. *)
  let g' = Catalog.smallbank_materialize_wt () in
  Alcotest.(check bool) "MaterializeWT keeps Bal read-only" false (has_ww g' "Bal" "WC")

(* {1 TPC-C and TPC-C++} *)

let test_tpcc_safe () =
  let g = Catalog.tpcc () in
  Alcotest.(check bool) "TPC-C has no dangerous structure" false
    (Sdg.has_dangerous_structure g);
  Alcotest.(check (list string)) "no pivots" [] (Sdg.pivots g);
  (* but it does have vulnerable edges — they are just not consecutive. *)
  Alcotest.(check bool) "SLEV->NEWO vulnerable" true (has_vulnerable g "SLEV" "NEWO")

let test_tpccpp_dangerous () =
  let g = Catalog.tpccpp () in
  Alcotest.(check bool) "TPC-C++ has dangerous structures" true
    (Sdg.has_dangerous_structure g);
  let pivots = Sdg.pivots g in
  Alcotest.(check (list string)) "pivots are CCHECK and NEWO (§5.3.3)" [ "CCHECK"; "NEWO" ]
    pivots;
  (* The simple 2-cycle: CCHECK -> NEWO -> CCHECK. *)
  Alcotest.(check bool) "credit-check/new-order cycle" true
    (List.exists
       (fun d -> d.Sdg.d_pivot = "NEWO" && d.Sdg.d_in = "CCHECK" && d.Sdg.d_out = "CCHECK")
       (Sdg.dangerous_structures g))

(* Cross-validation: the SmallBank dangerous structure predicted statically
   is realised dynamically — the write-skew tests in test_engine do this for
   the Bal/WC/TS programs; here we check the derived pivot matches the
   transaction SSI aborts in the engine tests (WriteCheck). This keeps the
   static and dynamic layers honest with each other. *)
let test_static_dynamic_consistency () =
  let g = Catalog.smallbank () in
  Alcotest.(check (list string)) "static pivot = WC" [ "WC" ] (Sdg.pivots g)

let suite =
  [
    ("dangerous triple", `Quick, test_simple_dangerous_triple);
    ("Q = R write skew", `Quick, test_q_equals_r);
    ("no return path is safe", `Quick, test_no_return_path_is_safe);
    ("non-vulnerable edges ignored", `Quick, test_nonvulnerable_edges_do_not_count);
    ("break_edge fixes danger", `Quick, test_break_edge);
    ("SmallBank vulnerable edges (Fig 2.9)", `Quick, test_smallbank_vulnerable_edges);
    ("SmallBank pivot is WriteCheck", `Quick, test_smallbank_pivot_is_writecheck);
    ("SmallBank fixes remove danger (§2.8.5)", `Quick, test_smallbank_fixes_remove_danger);
    ("PromoteBW adds ww conflicts (Fig 2.10)", `Quick, test_promote_bw_adds_ww_conflicts);
    ("TPC-C safe (Fig 2.8)", `Quick, test_tpcc_safe);
    ("TPC-C++ dangerous (Fig 5.3)", `Quick, test_tpccpp_dangerous);
    ("static/dynamic consistency", `Quick, test_static_dynamic_consistency);
  ]

let () = Alcotest.run "sdg" [ ("sdg", suite) ]
